"""Experiment profile — cost attribution of one put/get round (Fig. 3 as
a six-way breakdown instead of two aggregate bars).

Shape claims reproduced via the profiler rather than the drivers' own
timers — an independent derivation from the span trace:

* the attributed phases reconcile exactly with end-to-end time,
* direct mode's completion window is dominated by PCIe round trips to the
  system-memory notification queue (Table I), pollOnGPU's is not,
* host-controlled WR generation is negligible next to the GPU's (§V-B1).
"""

import pytest

from repro.perf import profile_pingpong

pytestmark = [pytest.mark.quick]

MODES = ("dev2dev-direct", "dev2dev-pollOnGPU", "dev2dev-hostControlled")


@pytest.fixture(scope="module")
def profiles():
    return {mode: profile_pingpong("extoll", mode, 64, iterations=8,
                                   warmup=2)
            for mode in MODES}


def test_profile_regenerate(benchmark, profiles):
    result = benchmark.pedantic(lambda: profiles, rounds=1, iterations=1)
    benchmark.extra_info["phase_us_per_iteration"] = {
        mode: {c.name: round(c.us / p.iterations, 3) for c in p.phases}
        for mode, p in result.items()
    }


def test_attribution_reconciles_exactly(profiles):
    for mode, p in profiles.items():
        assert p.reconciles, (mode, p.reconciliation_error)


def test_direct_mode_polls_over_pcie(profiles):
    direct, devmem = profiles["dev2dev-direct"], profiles["dev2dev-pollOnGPU"]
    assert direct.per_iteration_us("completion-mmio") > \
        3.0 * devmem.per_iteration_us("completion-mmio")
    # ...and that PCIe cost is why direct loses the latency race.
    assert direct.point.latency > devmem.point.latency


def test_host_posting_negligible(profiles):
    gpu = profiles["dev2dev-direct"].per_iteration_us("wqe-generation")
    host = profiles["dev2dev-hostControlled"].per_iteration_us("wqe-generation")
    assert host < 0.5 * gpu


def test_wire_time_identical_across_modes(profiles):
    """The control-flow mode moves WR generation and polling around; the
    64 B payload's wire time is mode-independent."""
    wires = [p.per_iteration_us("wire") for p in profiles.values()]
    assert max(wires) < 2.0 * min(wires)
