"""Experiment fig4a/fig4b — Fig. 4: InfiniBand latency and bandwidth.

Shape claims reproduced (§V-B1):

* GPU-initiated latency is much higher than CPU-initiated, especially for
  small messages (the ~442-instruction single-thread WQE build),
* 'in contrast to EXTOLL's RMA, for Infiniband the location of the
  communication resources ... makes only a small difference',
* bandwidth is limited to ~1 GB/s and decreases for larger messages (same
  PCIe P2P effect as EXTOLL).
"""

import pytest

from repro.analysis import fig4a_ib_latency, fig4b_ib_bandwidth
from repro.units import KIB, MIB

from .conftest import series_to_dict

LAT_SIZES = [16, 256, 4 * KIB, 64 * KIB]
BW_SIZES = [4 * KIB, 64 * KIB, 256 * KIB, 4 * MIB]


@pytest.fixture(scope="module")
def latency_data():
    return series_to_dict(fig4a_ib_latency(sizes=LAT_SIZES, iterations=10))


@pytest.fixture(scope="module")
def bandwidth_data():
    return series_to_dict(fig4b_ib_bandwidth(sizes=BW_SIZES))


def test_fig4a_regenerate(benchmark, latency_data):
    result = benchmark.pedantic(lambda: latency_data, rounds=1, iterations=1)
    benchmark.extra_info["latency_us"] = {
        label: {size: round(v * 1e6, 2) for size, v in row.items()}
        for label, row in result.items()
    }


def test_fig4a_gpu_latency_much_higher_than_host(latency_data):
    """GPU-initiated vs CPU-initiated at small sizes."""
    for size in (16, 256):
        gpu = latency_data["dev2dev-bufOnGPU"][size]
        host = latency_data["dev2dev-hostControlled"][size]
        assert gpu / host > 1.6, size


def test_fig4a_buffer_location_makes_small_difference(latency_data):
    """'the location of the communication resources, here the queues, makes
    only a small difference' — well under the GPU-vs-host gap."""
    for size in LAT_SIZES:
        on_gpu = latency_data["dev2dev-bufOnGPU"][size]
        on_host = latency_data["dev2dev-bufOnHost"][size]
        assert abs(on_host - on_gpu) / on_gpu < 0.45, size


def test_fig4a_host_controlled_fastest(latency_data):
    for size in LAT_SIZES:
        host = latency_data["dev2dev-hostControlled"][size]
        for label, row in latency_data.items():
            assert host <= row[size] * 1.001, (label, size)


def test_fig4b_regenerate(benchmark, bandwidth_data):
    result = benchmark.pedantic(lambda: bandwidth_data, rounds=1, iterations=1)
    benchmark.extra_info["mb_per_s"] = {
        label: {size: round(v, 1) for size, v in row.items()}
        for label, row in result.items()
    }


def test_fig4b_bandwidth_limited_to_about_1gb(bandwidth_data):
    """'The bandwidth is limited to about 1GB/s.'"""
    for label, row in bandwidth_data.items():
        peak = max(row.values())
        assert peak < 1600, label
    best = max(max(row.values()) for row in bandwidth_data.values())
    assert best > 800


def test_fig4b_bandwidth_decreases_for_large_messages(bandwidth_data):
    for label in ("dev2dev-bufOnGPU", "dev2dev-hostControlled"):
        row = bandwidth_data[label]
        assert row[4 * MIB] < row[256 * KIB] * 0.85, label


def test_fig4b_gpu_and_host_reach_similar_peaks(bandwidth_data):
    """At mid sizes GPU- and host-initiated bandwidth converge (the ~2 KiB
    crossover of §V-B2 extends to larger messages)."""
    size = 256 * KIB
    gpu = bandwidth_data["dev2dev-bufOnGPU"][size]
    host = bandwidth_data["dev2dev-hostControlled"][size]
    assert 0.6 <= gpu / host <= 1.7


def test_fig4b_assisted_trails_at_small_sizes(bandwidth_data):
    assert (bandwidth_data["dev2dev-assisted"][4 * KIB]
            < bandwidth_data["dev2dev-hostControlled"][4 * KIB])
