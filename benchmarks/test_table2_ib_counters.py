"""Experiment tab2 — Table II: InfiniBand buffer-placement counters.

Shape claims reproduced (§V-B3):

* buffer placement makes a much smaller counter difference than EXTOLL's
  polling choice: slightly more sysmem traffic with buffers on host, but
  L2 traffic and instruction counts are close between the two variants,
* polling work is dominated by L2 hits (the last-element poll in device
  memory) in *both* variants,
* instruction counts per iteration are an order of magnitude above EXTOLL's
  (~1,100/iteration vs ~250-500), driven by WQE generation + CQ handling.
"""

import pytest

from repro.analysis import PAPER_TABLE2, table2_ib_buffers
from repro.core import measure_extoll_polling_counters

ITERATIONS = 100


@pytest.fixture(scope="module")
def reports():
    return table2_ib_buffers(iterations=ITERATIONS)


def test_table2_regenerate(benchmark, reports):
    on_host, on_gpu = reports
    result = benchmark.pedantic(lambda: reports, rounds=1, iterations=1)
    benchmark.extra_info["buffer_on_host"] = on_host.counters.as_dict()
    benchmark.extra_info["buffer_on_gpu"] = on_gpu.counters.as_dict()
    benchmark.extra_info["paper"] = PAPER_TABLE2


def test_host_buffers_cause_more_sysmem_traffic(reports):
    on_host, on_gpu = reports
    assert (on_host.counters.sysmem_read_transactions
            > on_gpu.counters.sysmem_read_transactions)
    assert (on_host.counters.sysmem_write_transactions
            > on_gpu.counters.sysmem_write_transactions)


def test_difference_smaller_than_extoll(reports):
    """'The difference is considerably smaller than for the EXTOLL RMA
    unit': compare instruction-count ratios across the placement choice."""
    on_host, on_gpu = reports
    ib_ratio = (on_host.counters.instructions_executed
                / on_gpu.counters.instructions_executed)
    ex_sys, ex_dev = measure_extoll_polling_counters(iterations=20)
    extoll_ratio = (ex_sys.counters.instructions_executed
                    / ex_dev.counters.instructions_executed)
    assert abs(ib_ratio - 1.0) < abs(extoll_ratio - 1.0)


def test_l2_dominates_in_both_variants(reports):
    """Both variants poll the last element in device memory, so L2 reads
    dwarf sysmem reads."""
    for report in reports:
        c = report.counters
        assert c.l2_read_requests > 2 * max(c.sysmem_read_transactions, 1)
        assert c.l2_read_hits / c.l2_read_requests > 0.8


def test_instruction_counts_close_between_variants(reports):
    on_host, on_gpu = reports
    ratio = (on_host.counters.instructions_executed
             / on_gpu.counters.instructions_executed)
    assert 0.7 <= ratio <= 1.4


def test_ib_iteration_cost_far_above_extoll(reports):
    """'It seems that the work request generation for Infiniband requires a
    lot more overhead' — per-iteration instructions vs EXTOLL devmem mode."""
    on_host, _on_gpu = reports
    per_iter = on_host.counters.instructions_executed / ITERATIONS
    assert per_iter > 500


def test_counters_land_in_paper_magnitudes(reports):
    on_host, on_gpu = reports
    checks = [
        (on_host.counters.instructions_executed,
         PAPER_TABLE2["Buffer on Host"]["instructions_executed"]),
        (on_gpu.counters.instructions_executed,
         PAPER_TABLE2["Buffer on GPU"]["instructions_executed"]),
        (on_host.counters.sysmem_read_transactions,
         PAPER_TABLE2["Buffer on Host"]["sysmem_read_transactions"]),
    ]
    for measured, paper in checks:
        assert paper / 5 <= measured <= paper * 5, (measured, paper)
