"""Experiment tab1 — Table I: EXTOLL polling counters (100 iters, 1 KiB).

Shape claims reproduced (§V-A3):

* system-memory polling: *all* polling traffic is sysmem reads; no global
  loads; writes ≈ WR posting + notification freeing + read-pointer updates,
* device-memory polling: ZERO sysmem reads; sysmem writes = exactly the
  3 x 64-bit WR stores per iteration (paper: 303 for 100 iterations);
  polling runs out of the L2 (hit rate dominates),
* notification polling executes ~2x the instructions of flag polling.
"""

import pytest

from repro.analysis import PAPER_TABLE1, table1_extoll_polling

ITERATIONS = 100


@pytest.fixture(scope="module")
def reports():
    sysmem, devmem = table1_extoll_polling(iterations=ITERATIONS)
    return sysmem, devmem


def test_table1_regenerate(benchmark, reports):
    sysmem, devmem = reports
    result = benchmark.pedantic(lambda: reports, rounds=1, iterations=1)
    benchmark.extra_info["system_memory"] = sysmem.counters.as_dict()
    benchmark.extra_info["device_memory"] = devmem.counters.as_dict()
    benchmark.extra_info["paper"] = PAPER_TABLE1


def test_device_polling_has_zero_sysmem_reads(reports):
    _sysmem, devmem = reports
    assert devmem.counters.sysmem_read_transactions == 0


def test_device_polling_writes_exactly_the_wr(reports):
    """'Polling on device memory causes 3 system memory write operations per
    iteration which is exactly the size of the WR (3x64 bit values).'"""
    _sysmem, devmem = reports
    assert devmem.counters.sysmem_write_transactions == 3 * ITERATIONS


def test_sysmem_polling_reads_dominate(reports):
    sysmem, _devmem = reports
    assert sysmem.counters.sysmem_read_transactions > 10 * ITERATIONS
    assert (sysmem.counters.sysmem_read_transactions
            > sysmem.counters.sysmem_write_transactions)


def test_sysmem_polling_never_uses_l2(reports):
    """'Polling on notifications in system memory cannot use the L2 cache
    at all.'"""
    sysmem, _devmem = reports
    assert sysmem.counters.l2_read_hits == 0
    assert sysmem.counters.global_load_accesses == 0


def test_device_polling_hits_l2(reports):
    """'Polling on the last received element ... can be kept in the L2
    cache'; most accesses hit."""
    _sysmem, devmem = reports
    c = devmem.counters
    assert c.l2_read_requests > 0
    assert c.l2_read_hits / c.l2_read_requests > 0.9


def test_notification_polling_executes_about_twice_the_instructions(reports):
    """'Polling on notifications leads to twice as much instructions.'"""
    sysmem, devmem = reports
    ratio = (sysmem.counters.instructions_executed
             / devmem.counters.instructions_executed)
    assert 1.5 <= ratio <= 2.8


def test_counters_land_in_paper_magnitudes(reports):
    """Per-iteration counters within ~4x of the paper's values for the
    metrics that define the story."""
    sysmem, devmem = reports
    checks = [
        (sysmem.counters.sysmem_read_transactions,
         PAPER_TABLE1["system memory"]["sysmem_read_transactions"]),
        (devmem.counters.global_load_accesses,
         PAPER_TABLE1["device memory"]["global_load_accesses"]),
        (devmem.counters.l2_read_hits,
         PAPER_TABLE1["device memory"]["l2_read_hits"]),
        (sysmem.counters.instructions_executed,
         PAPER_TABLE1["system memory"]["instructions_executed"]),
        (devmem.counters.instructions_executed,
         PAPER_TABLE1["device memory"]["instructions_executed"]),
    ]
    for measured, paper in checks:
        assert paper / 4 <= measured <= paper * 4, (measured, paper)
