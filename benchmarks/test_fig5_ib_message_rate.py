"""Experiment fig5 — Fig. 5: InfiniBand message rate, 64 B messages.

Shape claims reproduced (§V-B2):

* blocks ≈ kernels ('There is no difference whether the communication is
  started from different blocks or kernels'),
* 'for 32 connections almost the same message rate can be reached as for
  host-initiated data transfers' — per-QP WR generation parallelizes,
* 'The message rate of the host-assisted version remains constant for more
  than four connection pairs' — one proxy thread blocks all aspirants.
"""

import pytest

from repro.analysis import fig5_ib_message_rate

from .conftest import series_to_dict

COUNTS = [1, 4, 8, 16, 32]


@pytest.fixture(scope="module")
def rate_data():
    return series_to_dict(fig5_ib_message_rate(
        connection_counts=COUNTS, per_connection=60))


def test_fig5_regenerate(benchmark, rate_data):
    result = benchmark.pedantic(lambda: rate_data, rounds=1, iterations=1)
    benchmark.extra_info["messages_per_s"] = {
        label: {n: round(v) for n, v in row.items()}
        for label, row in result.items()
    }


def test_fig5_blocks_equal_kernels(rate_data):
    for n in COUNTS:
        blocks = rate_data["dev2dev-blocks"][n]
        kernels = rate_data["dev2dev-kernels"][n]
        assert abs(blocks - kernels) / blocks < 0.15


def test_fig5_gpu_reaches_host_rate_at_32_connections(rate_data):
    """The headline: with a QP per block, WR generation parallelizes until
    GPU-initiated rates match host-initiated ones."""
    gpu = rate_data["dev2dev-blocks"][32]
    host = rate_data["dev2dev-hostControlled"][32]
    assert 0.75 <= gpu / host <= 1.4


def test_fig5_gpu_scales_with_connections(rate_data):
    row = rate_data["dev2dev-blocks"]
    assert row[4] > 2.5 * row[1]
    assert row[32] > 1.3 * row[8]


def test_fig5_gpu_far_below_host_at_one_connection(rate_data):
    assert (rate_data["dev2dev-blocks"][1]
            < 0.5 * rate_data["dev2dev-hostControlled"][1])


def test_fig5_assisted_constant_beyond_four_pairs(rate_data):
    """'remains constant for more than four connection pairs.'"""
    row = rate_data["dev2dev-assisted"]
    for n in (8, 16, 32):
        assert abs(row[n] - row[4]) / row[4] < 0.2, n


def test_fig5_assisted_is_slowest_at_scale(rate_data):
    for n in (8, 16, 32):
        assisted = rate_data["dev2dev-assisted"][n]
        assert assisted < rate_data["dev2dev-blocks"][n]
        assert assisted < rate_data["dev2dev-hostControlled"][n]
