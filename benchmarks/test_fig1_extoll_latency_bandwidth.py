"""Experiment fig1a/fig1b — Fig. 1: EXTOLL latency and bandwidth.

Shape claims reproduced (§V-A1):

* GPU-controlled (direct) small-message latency ≈ 2x host-controlled,
* pollOnGPU drops latency below the host-assisted variant,
* latency ordering: hostControlled < pollOnGPU < assisted < direct (small),
* bandwidth peaks near the FPGA link rate (~800 MB/s) and *drops* for
  messages larger than 1 MiB (PCIe P2P read pathology),
* assisted bandwidth trails at small/medium sizes (per-message handshake).
"""

import pytest

from repro.analysis import fig1a_extoll_latency, fig1b_extoll_bandwidth
from repro.units import KIB, MIB

from .conftest import series_to_dict

LAT_SIZES = [16, 256, 4 * KIB, 64 * KIB]
BW_SIZES = [4 * KIB, 64 * KIB, 256 * KIB, 4 * MIB]


@pytest.fixture(scope="module")
def latency_data():
    return series_to_dict(fig1a_extoll_latency(sizes=LAT_SIZES, iterations=10))


@pytest.fixture(scope="module")
def bandwidth_data():
    return series_to_dict(fig1b_extoll_bandwidth(sizes=BW_SIZES))


def test_fig1a_regenerate(benchmark, latency_data):
    def read():
        return latency_data

    result = benchmark.pedantic(read, rounds=1, iterations=1)
    benchmark.extra_info["latency_us"] = {
        label: {size: round(v * 1e6, 2) for size, v in row.items()}
        for label, row in result.items()
    }


def test_fig1a_direct_is_about_twice_host_controlled(latency_data):
    direct = latency_data["dev2dev-direct"][16]
    host = latency_data["dev2dev-hostControlled"][16]
    assert 1.5 <= direct / host <= 3.5


def test_fig1a_poll_on_gpu_beats_assisted(latency_data):
    """'The resulting latency drops significantly and is even lower than
    host-assisted put operations.'"""
    for size in (16, 256):
        assert (latency_data["dev2dev-pollOnGPU"][size]
                < latency_data["dev2dev-assisted"][size])


def test_fig1a_host_controlled_always_fastest(latency_data):
    """'CPU-controlled put/get operations always perform better.'"""
    for size in LAT_SIZES:
        host = latency_data["dev2dev-hostControlled"][size]
        for label, row in latency_data.items():
            assert host <= row[size] * 1.001, (label, size)


def test_fig1a_latency_grows_with_size(latency_data):
    for label, row in latency_data.items():
        assert row[64 * KIB] > row[16]


def test_fig1b_regenerate(benchmark, bandwidth_data):
    def read():
        return bandwidth_data

    result = benchmark.pedantic(read, rounds=1, iterations=1)
    benchmark.extra_info["mb_per_s"] = {
        label: {size: round(v, 1) for size, v in row.items()}
        for label, row in result.items()
    }


def test_fig1b_peak_bandwidth_near_link_rate(bandwidth_data):
    """The FPGA card peaks around 800 MB/s."""
    peak = max(bandwidth_data["dev2dev-hostControlled"].values())
    assert 600 <= peak <= 1000


def test_fig1b_bandwidth_drops_past_1mib(bandwidth_data):
    """'The bandwidth drops for message sizes larger than 1MB.'"""
    for label in ("dev2dev-direct", "dev2dev-hostControlled"):
        row = bandwidth_data[label]
        assert row[4 * MIB] < row[256 * KIB] * 0.85, label


def test_fig1b_gap_between_gpu_and_cpu_control(bandwidth_data):
    """'There is still a gap between GPU and CPU-controlled RMA transfers'
    at small sizes, closing at large sizes."""
    small = 4 * KIB
    assert (bandwidth_data["dev2dev-direct"][small]
            <= bandwidth_data["dev2dev-hostControlled"][small] * 1.001)
    large = 4 * MIB
    ratio = (bandwidth_data["dev2dev-direct"][large]
             / bandwidth_data["dev2dev-hostControlled"][large])
    assert 0.9 <= ratio <= 1.1


def test_fig1b_assisted_trails(bandwidth_data):
    for size in (4 * KIB, 64 * KIB):
        assert (bandwidth_data["dev2dev-assisted"][size]
                < bandwidth_data["dev2dev-hostControlled"][size])
