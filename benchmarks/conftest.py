"""Shared helpers for the benchmark suite.

Every file here regenerates one of the paper's tables or figures and asserts
the *shape* of the result — who wins, by roughly what factor, where the
crossovers/saturations are.  Absolute values are recorded via
``benchmark.extra_info`` so EXPERIMENTS.md can be refreshed from a run.
"""

from __future__ import annotations

from typing import Dict, List

import pytest


@pytest.hookimpl(trylast=True)
def pytest_collection_modifyitems(config, items):
    """Keep the shape-assertion tests running under ``--benchmark-only``.

    pytest-benchmark skips tests that don't request its fixture, but here the
    assertions ARE the experiment: they consume the module-scoped fixtures
    that the ``*_regenerate`` benchmarks time, and they pin the paper's
    claims.  Remove the plugin's auto-skip for items in this directory.
    """
    for item in items:
        if "benchmarks" not in str(getattr(item, "path", "")):
            continue
        item.own_markers = [
            m for m in item.own_markers
            if not (m.name == "skip"
                    and "benchmark-only" in str(m.kwargs.get("reason", "")))
        ]


def series_to_dict(series_list) -> Dict[str, Dict[int, float]]:
    """{label: {x: y}} with y = latency(s) / MB/s / msgs/s depending on point."""
    out: Dict[str, Dict[int, float]] = {}
    for s in series_list:
        row: Dict[int, float] = {}
        for p in s.points:
            if hasattr(p, "latency"):
                row[p.size] = p.latency
            elif hasattr(p, "mb_per_s"):
                row[p.size] = p.mb_per_s
            else:
                row[p.connections] = p.messages_per_s
        out[s.label] = row
    return out


def monotone_fraction(values: List[float], increasing: bool = True) -> float:
    """Fraction of consecutive pairs ordered as requested."""
    if len(values) < 2:
        return 1.0
    good = 0
    for a, b in zip(values, values[1:]):
        good += (b >= a) if increasing else (b <= a)
    return good / (len(values) - 1)
