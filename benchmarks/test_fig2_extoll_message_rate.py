"""Experiment fig2 — Fig. 2: EXTOLL message rate, 64 B messages.

Shape claims reproduced (§V-A2):

* posting from parallel CUDA blocks ≈ launching one kernel per stream,
* message rate scales with connection pairs for the GPU-controlled methods,
* host-assisted saturates (single proxy thread serves all connections) and
  trails host-controlled,
* 'both CPU-controlled data transfers are still faster' at every count.
"""

import pytest

from repro.analysis import fig2_extoll_message_rate

from .conftest import series_to_dict

COUNTS = [1, 4, 8, 16, 32]


@pytest.fixture(scope="module")
def rate_data():
    return series_to_dict(fig2_extoll_message_rate(
        connection_counts=COUNTS, per_connection=60))


def test_fig2_regenerate(benchmark, rate_data):
    result = benchmark.pedantic(lambda: rate_data, rounds=1, iterations=1)
    benchmark.extra_info["messages_per_s"] = {
        label: {n: round(v) for n, v in row.items()}
        for label, row in result.items()
    }


def test_fig2_blocks_equal_kernels(rate_data):
    """'Posting descriptors with multiple CUDA blocks performs similar as
    launching CUDA kernels with different streams.'"""
    for n in COUNTS:
        blocks = rate_data["dev2dev-blocks"][n]
        kernels = rate_data["dev2dev-kernels"][n]
        assert abs(blocks - kernels) / blocks < 0.15


def test_fig2_gpu_rate_scales_with_connections(rate_data):
    row = rate_data["dev2dev-blocks"]
    assert row[4] > 2.0 * row[1]
    assert row[16] > 1.5 * row[4]


def test_fig2_host_controlled_fastest(rate_data):
    """'Nonetheless, both CPU-controlled data transfers are still faster.'"""
    for n in COUNTS:
        host = rate_data["dev2dev-hostControlled"][n]
        assert host >= rate_data["dev2dev-blocks"][n] * 0.99
        assert host >= rate_data["dev2dev-kernels"][n] * 0.99


def test_fig2_assisted_saturates(rate_data):
    """Host-assisted flat beyond ~4 pairs: one thread serves everyone."""
    row = rate_data["dev2dev-assisted"]
    assert row[32] < row[4] * 1.3


def test_fig2_assisted_below_host_controlled(rate_data):
    """'Host-assisted transfers ... performs worse than host-controlled
    operations due to synchronization overhead.'"""
    for n in COUNTS:
        assert (rate_data["dev2dev-assisted"][n]
                < rate_data["dev2dev-hostControlled"][n])


def test_fig2_rates_in_paper_decades(rate_data):
    """Fig. 2's axis spans 1e4..2e6 msgs/s; every curve lives there."""
    for label, row in rate_data.items():
        for n, rate in row.items():
            assert 1e4 < rate < 1e7, (label, n, rate)
