"""Experiment fig3 — Fig. 3: polling time vs WR-generation time per size.

Shape claims reproduced (§V-A3):

* small messages: system-memory polling needs ~10x the posting time while
  device-memory polling needs only a few x,
* the ratio grows with message size for both approaches (the data transfer
  becomes the dominating fraction) and the two curves converge,
* the ratio spans several orders of magnitude over 4 B .. 64 MiB (the
  paper's y-axis runs 1..10000).
"""

import pytest

from repro.analysis import fig3_polling_ratio
from repro.units import KIB, MIB

pytestmark = [pytest.mark.quick]

SIZES = [16, 1 * KIB, 64 * KIB, 1 * MIB, 16 * MIB]


@pytest.fixture(scope="module")
def ratio_data():
    series = fig3_polling_ratio(sizes=SIZES, iterations=4)
    return {s.label: {p.size: p.poll_to_post_ratio for p in s.points}
            for s in series}


def test_fig3_regenerate(benchmark, ratio_data):
    result = benchmark.pedantic(lambda: ratio_data, rounds=1, iterations=1)
    benchmark.extra_info["poll_to_post_ratio"] = {
        label: {size: round(v, 2) for size, v in row.items()}
        for label, row in result.items()
    }


def test_fig3_sysmem_ratio_about_10x_at_small_sizes(ratio_data):
    """'For small messages, polling on system memory needs ten times the
    time than it is needed to post the WR.'"""
    assert 5 <= ratio_data["system memory"][16] <= 30


def test_fig3_devmem_cheaper_than_sysmem_at_small_sizes(ratio_data):
    for size in (16, 1 * KIB):
        assert ratio_data["device memory"][size] < ratio_data["system memory"][size]


def test_fig3_ratio_grows_with_size(ratio_data):
    for label, row in ratio_data.items():
        assert row[16 * MIB] > 50 * row[16], label


def test_fig3_approaches_converge_at_large_sizes(ratio_data):
    """'For rather large messages both approaches perform similar.'"""
    big = 16 * MIB
    a, b = ratio_data["system memory"][big], ratio_data["device memory"][big]
    assert 0.6 <= a / b <= 1.6


def test_fig3_spans_paper_decades(ratio_data):
    """Ratios run from single digits to thousands across the size sweep."""
    values = [v for row in ratio_data.values() for v in row.values()]
    assert min(values) < 20
    assert max(values) > 1000
