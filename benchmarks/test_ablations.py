"""Experiment abl-* — ablations of the design choices §VI calls out.

Each test toggles one mechanism and checks the direction and rough size of
the effect, substantiating the paper's claims for future put/get APIs.
"""

import pytest

from repro.analysis import (
    ablate_asic_nic,
    ablate_connection_sharing,
    ablate_endianness_conversion,
    ablate_future_interface,
    ablate_notification_placement,
    ablate_p2p_pathology,
)


@pytest.fixture(scope="module")
def notification_placement():
    return ablate_notification_placement(iterations=15)


@pytest.fixture(scope="module")
def endianness():
    return ablate_endianness_conversion(iterations=15)


@pytest.fixture(scope="module")
def p2p():
    return ablate_p2p_pathology()


@pytest.fixture(scope="module")
def sharing():
    return ablate_connection_sharing(connections=8, per_connection=50)


def test_abl_notification_placement(benchmark, notification_placement):
    """Moving the completion signal from host to device memory cuts latency
    (§VI claim 3: control traffic over PCIe must be minimized)."""
    r = benchmark.pedantic(lambda: notification_placement, rounds=1, iterations=1)
    benchmark.extra_info["direct_latency_s"] = r.baseline
    benchmark.extra_info["poll_on_gpu_latency_s"] = r.variant
    assert r.improvement > 1.15


def test_abl_endianness_conversion(benchmark, endianness):
    """Static pre-conversion of constant WQE fields reduces both the
    instruction count and the posting latency."""
    r = benchmark.pedantic(lambda: endianness, rounds=1, iterations=1)
    benchmark.extra_info.update({k: v for k, v in r.items()})
    assert r["optimized_instructions"] < r["full_conversion_instructions"]
    assert r["optimized_latency"] <= r["full_conversion_latency"]


def test_abl_p2p_pathology(benchmark, p2p):
    """Disabling the P2P read degradation removes the >1 MiB bandwidth drop
    (the effect behind the tails of Figs. 1b and 4b)."""
    r = benchmark.pedantic(lambda: p2p, rounds=1, iterations=1)
    benchmark.extra_info["with_pathology_mb_s"] = r.baseline
    benchmark.extra_info["without_pathology_mb_s"] = r.variant
    assert r.variant > r.baseline * 1.2


def test_abl_connection_sharing(benchmark, sharing):
    """Private per-block connections beat funneling through a single proxy
    (§VI claim 2: interfaces must be thread-collaborative)."""
    r = benchmark.pedantic(lambda: sharing, rounds=1, iterations=1)
    benchmark.extra_info["shared_proxy_msgs_s"] = r.baseline
    benchmark.extra_info["private_connections_msgs_s"] = r.variant
    assert r.variant > r.baseline * 1.3


def test_abl_future_interface(benchmark):
    """Implementing all three §VI claims (wide posting + device-resident
    notification queues) recovers a large share of the GPU-vs-CPU gap."""
    r = benchmark.pedantic(lambda: ablate_future_interface(iterations=15),
                           rounds=1, iterations=1)
    benchmark.extra_info["direct_latency_s"] = r.baseline
    benchmark.extra_info["future_latency_s"] = r.variant
    assert r.improvement > 1.25


def test_abl_asic_nic(benchmark):
    """'We expect future ASIC implementations to improve performance
    significantly' (§V): 700 MHz / 128-bit vs the 157 MHz FPGA."""
    r = benchmark.pedantic(lambda: ablate_asic_nic(iterations=10),
                           rounds=1, iterations=1)
    benchmark.extra_info["fpga_latency_s"] = r.baseline
    benchmark.extra_info["asic_latency_s"] = r.variant
    assert r.improvement > 1.2
