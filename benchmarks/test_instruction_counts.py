"""Experiment inst — §V-B3 single-operation instruction counts.

'It requires 442 instructions to post a work request and 283 to poll for
the completion.'  These are measured by executing exactly one operation on
an otherwise-idle simulated GPU, not asserted from constants.
"""

import pytest

from repro.analysis import PAPER_SINGLE_OP, single_op_costs
from repro.ib import (
    post_send_instruction_cost,
    post_send_instruction_cost_static_optimized,
)

pytestmark = [pytest.mark.quick]


@pytest.fixture(scope="module")
def costs():
    return single_op_costs()


def test_regenerate(benchmark, costs):
    result = benchmark.pedantic(lambda: costs, rounds=1, iterations=1)
    benchmark.extra_info["measured"] = result
    benchmark.extra_info["paper"] = PAPER_SINGLE_OP


def test_post_send_is_442_instructions(costs):
    assert costs["ibv_post_send"] == PAPER_SINGLE_OP["ibv_post_send"] == 442


def test_poll_cq_is_283_instructions(costs):
    assert costs["ibv_poll_cq"] == PAPER_SINGLE_OP["ibv_poll_cq"] == 283


def test_extoll_post_is_tens_of_instructions(costs):
    """EXTOLL posting is an order of magnitude cheaper — the BAR-burst
    design the discussion (§VI) advocates."""
    assert 10 <= costs["extoll_post"] <= 80
    assert costs["ibv_post_send"] / costs["extoll_post"] > 5


def test_static_conversion_optimization_saves_instructions():
    """The paper's optimization: 'we used static converted values where
    possible' — constant fields converted once."""
    full = post_send_instruction_cost()
    optimized = post_send_instruction_cost_static_optimized()
    assert optimized < full
    assert full - optimized >= 2 * 14  # at least two fields' swap cost
