"""Tests for the analysis layer: figure/table generators and ablations.

These run tiny grids — full paper-sized grids are exercised by the
benchmark suite.
"""

import pytest

from repro.analysis import (
    ablate_notification_placement,
    ablate_p2p_pathology,
    fig1a_extoll_latency,
    fig2_extoll_message_rate,
    fig4a_ib_latency,
    single_op_costs,
    table1_extoll_polling,
)
from repro.analysis.figures import _iters, _sizes
from repro.units import KIB


def test_sizes_helper_scales_grid():
    sizes = [1, 2, 4, 8, 16, 32, 64, 128]
    small = _sizes(sizes, 0.4)
    assert len(small) < len(sizes)
    assert small[-1] == 128  # largest point always kept
    assert _sizes(sizes, 1.0) == sizes


def test_iters_helper_caps_large_messages():
    assert _iters(20, 64, 1.0) == 20
    assert _iters(20, 64 * 1024 * 1024, 1.0) == 2


def test_fig1a_generator_produces_four_series():
    series = fig1a_extoll_latency(sizes=[64, 1 * KIB], iterations=4)
    assert len(series) == 4
    labels = {s.label for s in series}
    assert labels == {"dev2dev-direct", "dev2dev-pollOnGPU",
                      "dev2dev-assisted", "dev2dev-hostControlled"}
    for s in series:
        assert [p.size for p in s.points] == [64, 1 * KIB]
        assert all(p.latency > 0 for p in s.points)


def test_fig2_generator_counts_and_rates():
    series = fig2_extoll_message_rate(connection_counts=[1, 2],
                                      per_connection=20)
    assert len(series) == 4
    for s in series:
        assert [p.connections for p in s.points] == [1, 2]
        assert all(p.messages_per_s > 0 for p in s.points)


def test_fig4a_generator_uses_right_buffer_locations():
    series = fig4a_ib_latency(sizes=[64], iterations=4)
    assert {s.label for s in series} == {
        "dev2dev-bufOnGPU", "dev2dev-bufOnHost", "dev2dev-assisted",
        "dev2dev-hostControlled"}


def test_table1_driver_small():
    sysmem, devmem = table1_extoll_polling(iterations=10)
    assert sysmem.counters.sysmem_read_transactions > 0
    assert devmem.counters.sysmem_read_transactions == 0


def test_single_op_costs_keys():
    ops = single_op_costs()
    assert set(ops) == {"extoll_post", "ibv_post_send", "ibv_poll_cq"}


def test_ablation_notification_placement_direction():
    r = ablate_notification_placement(iterations=6)
    assert r.baseline > r.variant  # pollOnGPU is faster
    assert r.improvement > 1.0


def test_ablation_p2p_direction():
    r = ablate_p2p_pathology(count=4)
    assert r.variant > r.baseline  # disabling the pathology raises bandwidth
