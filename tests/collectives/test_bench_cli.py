"""The collectives benchmark driver, CLI, trace reconciliation, and the
all-reduce scaling analysis."""

import json

import pytest

from repro.analysis.collectives import (
    allreduce_scaling,
    render_scaling,
    scaling_report,
)
from repro.collectives import CollectiveMode, build_communicator, run_collective
from repro.collectives.bench import render_results
from repro.collectives.cli import main as cli_main, reconcile_trace, run_traced_collective
from repro.obs import SpanTracer
from repro.obs.export import chrome_trace_events, validate_chrome_trace


def test_result_accounting():
    cluster, comm = build_communicator(4, 64)
    r = run_collective(cluster, comm, "all-gather", 64,
                       iterations=3, warmup=1)
    assert r.correct
    assert r.iterations == 3
    assert r.point.latency > 0
    # 4 ranks x 3 steps x 64B x 3 iterations of injected payload.
    assert r.bandwidth.bytes_moved == 4 * 3 * 64 * 3
    assert r.bandwidth.elapsed == pytest.approx(r.point.latency * 3)
    table = render_results([r])
    assert "all-gather" in table and "OK" in table


def test_traced_run_reconciles_within_one_percent():
    tracer, result = run_traced_collective(
        "all-reduce", 4, 64, CollectiveMode.POLL_ON_GPU, "auto",
        iterations=3, warmup=1)
    assert result.correct
    recon = reconcile_trace(tracer, "all-reduce", result)
    assert recon["ok"], recon
    assert recon["rel_err"] <= 0.01
    # The trace itself must be structurally loadable.
    events = chrome_trace_events(tracer)
    validate_chrome_trace(events)
    phase_spans = [s for s in tracer.spans
                   if s.category == "phase" and s.name == "all-reduce"]
    assert len(phase_spans) == result.iterations


def test_traced_run_direct_mode():
    tracer, result = run_traced_collective(
        "barrier", 3, 64, CollectiveMode.DIRECT, "auto",
        iterations=2, warmup=1)
    assert result.correct
    assert reconcile_trace(tracer, "barrier", result)["ok"]


def test_cli_quick_sweep(capsys):
    assert cli_main(["--quick"]) == 0
    out = capsys.readouterr().out
    assert "all-reduce" in out and "barrier" in out
    assert "FAIL" not in out


def test_cli_trace_export(tmp_path, capsys):
    out_path = tmp_path / "coll.json"
    rc = cli_main(["--trace", str(out_path), "--op", "all-reduce",
                   "--nodes", "3", "--sizes", "64",
                   "--iterations", "2", "--warmup", "1"])
    assert rc == 0
    doc = json.loads(out_path.read_text())
    validate_chrome_trace(doc["traceEvents"])
    out = capsys.readouterr().out
    assert "rel err" in out and "MISMATCH" not in out


def test_cli_rejects_unknown_op():
    with pytest.raises(SystemExit):
        cli_main(["--op", "transpose"])


def test_allreduce_scaling_analysis():
    points = allreduce_scaling(node_counts=(2, 4), iterations=2, warmup=1)
    report = scaling_report(points)
    assert report["steps_ok"]
    assert report["numerics_ok"]
    assert report["ratio_ok"], [p.step_ratio for p in points]
    assert [p.steps for p in points] == [2, 6]
    text = render_scaling(points)
    assert "OK" in text and "FAIL" not in text
