"""Correctness and scaling of the ring collectives.

The numerics checks run the real simulated datapath end to end: device (or
host) threads post puts through the BAR pages, payloads cross the fabric,
and the final values every rank holds are compared against exact expected
results computed in plain Python.
"""

import pytest

from repro.collectives import (
    CollectiveMode,
    build_communicator,
    collective_mode,
    run_collective,
)
from repro.collectives.algorithms import halo_exchange
from repro.collectives.bench import (OPS, op_connectivity, op_max_payload,
                                     pattern)
from repro.errors import BenchmarkError

FAST = dict(iterations=2, warmup=1)


def run(op, nodes, size=64, mode=CollectiveMode.POLL_ON_GPU,
        topology="auto", **kw):
    cluster, comm = build_communicator(
        nodes, size, mode, topology,
        connectivity=op_connectivity(op),
        max_payload=op_max_payload(op, nodes, size))
    return run_collective(cluster, comm, op, size, **{**FAST, **kw})


# -- numerics across node counts ---------------------------------------------------

@pytest.mark.parametrize("nodes", [2, 4, 8])
def test_all_reduce_correct_and_2n_minus_2_steps(nodes):
    result = run("all-reduce", nodes)
    assert result.correct
    assert result.steps == 2 * (nodes - 1)


@pytest.mark.parametrize("op", OPS)
def test_every_op_correct_on_four_nodes(op):
    result = run(op, 4)
    assert result.correct
    assert result.nodes == 4


@pytest.mark.parametrize("nodes", [3, 5])
def test_odd_rings(nodes):
    assert run("all-gather", nodes).correct
    assert run("all-reduce", nodes).correct


def test_step_counts():
    assert run("barrier", 4).steps == 2
    assert run("broadcast", 4).steps == 1        # at most one send per rank
    assert run("all-gather", 4).steps == 3       # N-1
    assert run("halo", 4).steps == 2             # one per neighbor


# -- modes -------------------------------------------------------------------------

@pytest.mark.parametrize("mode", list(CollectiveMode))
def test_all_reduce_every_mode(mode):
    result = run("all-reduce", 3, mode=mode)
    assert result.correct
    assert result.steps == 4
    assert result.mode == mode.value


@pytest.mark.parametrize("mode", list(CollectiveMode))
def test_halo_every_mode(mode):
    assert run("halo", 4, mode=mode).correct


def test_mode_parsing():
    assert collective_mode("hostControlled") is CollectiveMode.HOST_CONTROLLED
    with pytest.raises(BenchmarkError):
        collective_mode("dev2dev-nope")


# -- topologies --------------------------------------------------------------------

@pytest.mark.parametrize("topology", ["ring", "full", "switch"])
def test_all_reduce_on_each_topology(topology):
    result = run("all-reduce", 4, topology=topology)
    assert result.correct
    assert result.topology == topology


def test_switch_relay_costs_latency():
    direct = run("all-reduce", 4, topology="full")
    relayed = run("all-reduce", 4, topology="switch")
    assert relayed.correct and direct.correct
    assert relayed.point.latency > direct.point.latency


# -- halo exchange details ---------------------------------------------------------

def test_halo_non_periodic_boundaries():
    nodes, size = 4, 32
    cluster, comm = build_communicator(nodes, size)
    ghosts = {}

    def body(ctx, rc):
        (left, right), _steps = yield from halo_exchange(
            ctx, rc, pattern(rc.rank, 2 * size), size, periodic=False)
        ghosts[rc.rank] = (left, right)

    handles = comm.launch(body)
    cluster.sim.run_until_complete(*handles, limit=1.0)
    assert ghosts[0][0] is None                      # no neighbor past rank 0
    assert ghosts[nodes - 1][1] is None
    for r in range(1, nodes):
        assert ghosts[r][0] == pattern(r - 1, 2 * size)[-size:]
    for r in range(nodes - 1):
        assert ghosts[r][1] == pattern(r + 1, 2 * size)[:size]


# -- broadcast root ----------------------------------------------------------------

def test_broadcast_from_nonzero_root():
    from repro.collectives.algorithms import broadcast
    nodes, size = 4, 24
    cluster, comm = build_communicator(nodes, size)
    finals = {}

    def body(ctx, rc):
        data = pattern(99, size) if rc.rank == 2 else None
        out, _steps = yield from broadcast(ctx, rc, data, root=2)
        finals[rc.rank] = out

    handles = comm.launch(body)
    cluster.sim.run_until_complete(*handles, limit=1.0)
    assert all(finals[r] == pattern(99, size) for r in range(nodes))


# -- validation --------------------------------------------------------------------

def test_non_neighbor_channel_rejected():
    cluster, comm = build_communicator(4, 64)
    with pytest.raises(BenchmarkError, match="ring neighbors"):
        comm.channel(0, 2)


def test_bad_sizes_rejected():
    with pytest.raises(BenchmarkError):
        build_communicator(4, 0)
    with pytest.raises(BenchmarkError):
        build_communicator(4, 12)   # not a multiple of 8
    with pytest.raises(BenchmarkError):
        run_collective(*build_communicator(2, 64), "transpose", 64)


def test_single_node_communicator_rejected():
    with pytest.raises(Exception):
        build_communicator(1, 64)
