"""Reductions beyond sum: max/min/prod through BOTH all-reduce datapaths.

The same (op, schedule, association order) must produce bit-identical
finals whether the reduction runs over PR 2's device-driven channel ring
or PR 7's triggered-MPI chain DAG — floats are not associative, so this
only holds because both paths reduce in the same fixed order.
"""

from __future__ import annotations

import pytest

from repro.collectives import CollectiveMode, build_communicator
from repro.collectives.algorithms import (
    REDUCE_OPS,
    _unpack,
    resolve_reduce_op,
    ring_all_reduce,
)
from repro.collectives.bench import vector
from repro.errors import BenchmarkError
from repro.mpi import MpiCommunicator, MpiConfig, iallreduce
from repro.cluster import build_extoll_cluster
from repro.sim import Simulator

OPS = sorted(REDUCE_OPS)


def test_op_table():
    assert set(OPS) == {"sum", "max", "min", "prod"}
    assert resolve_reduce_op("max")(2.0, 5.0) == 5.0
    assert resolve_reduce_op("prod")(3.0, 4.0) == 12.0
    with pytest.raises(BenchmarkError, match="unknown reduction op"):
        resolve_reduce_op("xor")


def _ring_finals(nodes, size, op, seed=23):
    sim = Simulator(seed=seed)
    cluster, comm = build_communicator(nodes, size,
                                       mode=CollectiveMode.POLL_ON_GPU,
                                       sim=sim)
    finals = {}

    def body(ctx, rc):
        out, _steps = yield from ring_all_reduce(
            ctx, rc, vector(rc.rank, rc.size, size), op=op)
        finals[rc.rank] = out

    handles = comm.launch(body)
    cluster.sim.run_until_complete(*handles, limit=1.0)
    return finals


def _mpi_finals(nodes, size, op, seed=23):
    sim = Simulator(seed=seed)
    cluster = build_extoll_cluster(sim=sim, num_nodes=nodes,
                                   topology="ring")
    comm = MpiCommunicator(cluster, config=MpiConfig(
        connectivity="ring", eager_threshold=256, slot_size=512))
    reqs = [iallreduce(comm, rank, vector(rank.rank, nodes, size), op=op)
            for rank in comm.ranks]
    comm.wait(*reqs)
    comm.check_async_errors()
    return {rank.rank: _unpack(reqs[rank.rank].data)
            for rank in comm.ranks}


@pytest.mark.parametrize("op", OPS)
def test_ring_all_reduce_matches_elementwise_reference(op):
    nodes, size = 4, 128
    finals = _ring_finals(nodes, size, op)
    vectors = [vector(r, nodes, size) for r in range(nodes)]
    combine = REDUCE_OPS[op]
    for col, column in enumerate(zip(*vectors)):
        expected = column[0]
        for v in column[1:]:
            expected = combine(expected, v)
        for rank in range(nodes):
            assert finals[rank][col] == pytest.approx(expected)


@pytest.mark.parametrize("op", OPS)
def test_both_datapaths_bit_exact(op):
    """The cross-check: channel ring vs triggered-MPI chains, exact ==."""
    nodes, size = 4, 128
    ring = _ring_finals(nodes, size, op)
    mpi = _mpi_finals(nodes, size, op)
    for rank in range(nodes):
        assert mpi[rank] == ring[rank]      # bitwise, not approx


def test_unknown_op_rejected_by_the_mpi_path():
    from repro.errors import MpiError
    with pytest.raises(MpiError, match="unknown reduction op"):
        _mpi_finals(4, 64, "median")
