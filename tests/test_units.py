"""Unit tests for the units/conversion helpers."""

import pytest

from repro.units import (
    GIB,
    KIB,
    MIB,
    bytes_per_second,
    cycles,
    format_size,
    format_time,
    mb_per_s,
    messages_per_second,
)


def test_size_constants():
    assert KIB == 1024
    assert MIB == 1024 ** 2
    assert GIB == 1024 ** 3


def test_bytes_per_second():
    assert bytes_per_second(1000, 0.001) == pytest.approx(1e6)
    with pytest.raises(ValueError):
        bytes_per_second(1, 0.0)


def test_mb_per_s_is_decimal_megabytes():
    assert mb_per_s(800_000_000, 1.0) == pytest.approx(800.0)


def test_messages_per_second():
    assert messages_per_second(64, 0.001) == pytest.approx(64000)
    with pytest.raises(ValueError):
        messages_per_second(1, -1.0)


def test_cycles():
    assert cycles(157, 157e6) == pytest.approx(1e-6)
    with pytest.raises(ValueError):
        cycles(1, 0.0)


@pytest.mark.parametrize("nbytes,label", [
    (4, "4B"), (1024, "1KiB"), (256 * KIB, "256KiB"),
    (4 * MIB, "4MiB"), (2 * GIB, "2GiB"), (1500, "1500B"),
])
def test_format_size(nbytes, label):
    assert format_size(nbytes) == label


@pytest.mark.parametrize("seconds,contains", [
    (2.5, "2.500s"), (3e-3, "3.000ms"), (4.2e-6, "4.200us"), (150e-9, "150.0ns"),
])
def test_format_time(seconds, contains):
    assert format_time(seconds) == contains


def test_format_time_negative():
    assert format_time(-1e-6) == "-1.000us"
