"""Shared fixtures/helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.memory import (
    HOST_DRAM_BASE,
    MMIO_BASE,
    AddressMap,
    Memory,
    MemorySpace,
    MmioWindow,
)
from repro.gpu import Gpu, GpuConfig
from repro.pcie import PcieFabric
from repro.sim import Simulator, join_result
from repro.units import KIB, MIB


class MiniNode:
    """A single node with host memory, one GPU, and a scratch MMIO window —
    enough substrate for GPU/CPU unit tests without the full cluster."""

    def __init__(self, gpu_config: GpuConfig | None = None):
        self.sim = Simulator()
        self.amap = AddressMap()
        self.host = Memory("host", HOST_DRAM_BASE, 16 * MIB, MemorySpace.HOST_DRAM)
        self.amap.add(self.host)
        self.mmio = MmioWindow("dev-bar", MMIO_BASE, 64 * KIB)
        self.amap.add(self.mmio)
        self.fabric = PcieFabric(self.sim, self.amap)
        self.fabric.claim(self.fabric.root, self.host)
        gpu_cfg = gpu_config or GpuConfig(dram_bytes=16 * MIB)
        self.gpu = Gpu(self.sim, "gpu0", gpu_cfg)
        gpu_port = self.fabric.attach("gpu0")
        self.gpu.attach_port(gpu_port)
        nic_port = self.fabric.attach("nic0")
        self.fabric.claim(nic_port, self.mmio)
        self.nic_port = nic_port

    def run(self, gen=None, until=None):
        """Run the simulation; if ``gen`` given, run it as a process and
        return its result."""
        if gen is None:
            self.sim.run(until=until)
            return None
        proc = self.sim.process(gen)
        self.sim.run(until=until)
        return join_result(proc)


@pytest.fixture
def node():
    return MiniNode()
