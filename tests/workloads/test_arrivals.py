"""Property tests for the seeded arrival processes.

The contract the open-loop generator leans on: a process is a pure
function of (kind, rate, seed, knobs) — same parameters, same gap stream,
forever — and both kinds converge to the configured mean rate.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

import pytest

from repro.errors import BenchmarkError
from repro.workloads import (
    ARRIVALS,
    BurstyArrivals,
    MAX_BURST,
    PoissonArrivals,
    arrival_process,
)

RATES = st.floats(min_value=1e2, max_value=1e7, allow_nan=False,
                  allow_infinity=False)
SEEDS = st.integers(min_value=0, max_value=2**31)
KINDS = st.sampled_from(sorted(ARRIVALS))


@given(kind=KINDS, rate=RATES, seed=SEEDS)
@settings(max_examples=60, deadline=None)
def test_same_seed_replays_identically(kind, rate, seed):
    a = arrival_process(kind, rate, seed)
    b = arrival_process(kind, rate, seed)
    assert a.gaps(100) == b.gaps(100)


@given(kind=KINDS, rate=RATES, seed=SEEDS)
@settings(max_examples=40, deadline=None)
def test_reset_rewinds_to_the_first_gap(kind, rate, seed):
    proc = arrival_process(kind, rate, seed)
    first = proc.gaps(50)
    proc.gaps(7)            # advance some more
    proc.reset()
    assert proc.gaps(50) == first


@given(kind=KINDS, rate=RATES, seed=SEEDS)
@settings(max_examples=40, deadline=None)
def test_gaps_are_finite_and_non_negative(kind, rate, seed):
    proc = arrival_process(kind, rate, seed)
    for gap in proc.gaps(200):
        assert gap >= 0.0
        assert gap < float("inf")


@given(rate=RATES, seed=SEEDS)
@settings(max_examples=30, deadline=None)
def test_different_kinds_draw_from_independent_streams(rate, seed):
    """Kind participates in the RNG seed, so poisson and bursty never
    alias even with identical (rate, seed)."""
    poisson = arrival_process("poisson", rate, seed)
    bursty = arrival_process("bursty", rate, seed)
    assert poisson.gaps(20) != bursty.gaps(20)


@pytest.mark.parametrize("kind,tolerance", [("poisson", 0.05),
                                            ("bursty", 0.25)])
@pytest.mark.parametrize("rate", [1e3, 5e4])
def test_mean_interarrival_converges_to_rate(kind, tolerance, rate):
    """Long-run mean gap ~ 1/rate.  Bursty gets a wider band: Pareto(1.5)
    burst lengths have infinite variance, so convergence is slow by
    design (the clumping is the point)."""
    proc = arrival_process(kind, rate, seed=3)
    n = 20000
    mean = sum(proc.gaps(n)) / n
    assert mean == pytest.approx(1.0 / rate, rel=tolerance)


def test_arrival_times_are_cumulative_and_increasing():
    proc = PoissonArrivals(1e4, seed=1)
    times = list(proc.arrival_times(100))
    assert len(times) == 100
    assert all(b >= a for a, b in zip(times, times[1:]))
    proc.reset()
    assert times[-1] == pytest.approx(sum(proc.gaps(100)))


def test_bursty_clumps_more_than_poisson():
    """Same mean, fatter tail: the bursty process's max/mean gap ratio
    must exceed Poisson's (idle OFF periods vs memoryless smoothness)."""
    rate, n = 1e4, 5000
    p = PoissonArrivals(rate, seed=5).gaps(n)
    b = BurstyArrivals(rate, seed=5).gaps(n)
    assert max(b) / (sum(b) / n) > max(p) / (sum(p) / n)


def test_burst_lengths_are_capped():
    proc = BurstyArrivals(1e4, seed=0, alpha=1.01)   # near-infinite tail
    for _ in range(2000):
        proc.next_gap()
        assert proc._burst_remaining <= MAX_BURST - 1


def test_validation_errors():
    with pytest.raises(BenchmarkError, match="unknown arrival process"):
        arrival_process("adversarial", 1e4)
    with pytest.raises(BenchmarkError, match="rate must be > 0"):
        PoissonArrivals(0.0)
    with pytest.raises(BenchmarkError, match="burst_factor"):
        BurstyArrivals(1e4, burst_factor=1.0)
    with pytest.raises(BenchmarkError, match="alpha"):
        BurstyArrivals(1e4, alpha=1.0)
