"""The open-loop generator end to end: the full workload x control-mode
grid, queueing visibility, fault recovery, determinism, and the
trace<->histogram reconciliation the telemetry integration promises."""

from __future__ import annotations

import pytest

from repro.errors import BenchmarkError
from repro.faults import FaultPlan
from repro.sim import Simulator
from repro.telemetry import TelemetryPlane
from repro.workloads import (
    MODES,
    WORKLOADS,
    WorkloadRun,
    WorkloadStats,
    WorkloadTransport,
    exact_percentile,
    reconcile,
    saturation_sweep,
)

FAST = dict(nodes=4, size=64, requests=3)


def closed(workload, mode, **kw):
    return WorkloadRun(workload, mode, loop="closed",
                       **{**FAST, **kw}).execute()


# -- the grid ---------------------------------------------------------------------

@pytest.mark.parametrize("workload", sorted(WORKLOADS))
@pytest.mark.parametrize("mode", MODES)
def test_every_workload_under_every_mode(workload, mode):
    """The acceptance grid: all four app workloads complete and verify
    rank-by-rank under all four control modes."""
    result = closed(workload, mode)
    assert result.verified
    assert result.stats.completed == FAST["requests"]
    assert result.stats.failures == 0
    assert len(result.latencies) == FAST["requests"]
    assert result.mean_service > 0


@pytest.mark.parametrize("workload,mode", [
    ("psfanin", "mpi"),          # rendezvous-size payloads over MPI
    ("kvcache", "engine"),       # engine-posted puts on slot rings
    ("moe", "hostControlled"),
])
def test_grid_under_packet_loss(workload, mode):
    """The PR 3 faults grid: with reliable channels armed, injected loss
    and corruption never change the answer — only the latency."""
    plan = FaultPlan.uniform(loss=0.05, corrupt=0.02, seed=9)
    result = closed(workload, mode, fault_plan=plan, reliable=True, seed=4)
    assert result.verified


def test_loss_costs_latency_but_not_correctness():
    plan = FaultPlan.uniform(loss=0.05, seed=9)
    clean = closed("moe", "engine", reliable=True, seed=4)
    lossy = closed("moe", "engine", fault_plan=plan, reliable=True, seed=4)
    assert clean.verified and lossy.verified
    assert lossy.mean_service > clean.mean_service


# -- open vs closed loop ----------------------------------------------------------

def test_open_loop_exposes_queueing_delay():
    """The tentpole property: at 0.9x the service rate the open loop's
    p99 must exceed the closed loop's, because requests queue behind
    in-flight ones — the thing a closed loop cannot show."""
    base = closed("moe", "hostControlled", requests=24)
    rate = 0.9 / base.mean_service
    open_run = WorkloadRun("moe", "hostControlled", nodes=4, size=64,
                           requests=24, loop="open", rate=rate).execute()
    assert open_run.verified
    assert open_run.p99 > base.p99
    assert open_run.mean_wait > 0
    # Closed-loop waits are zero by construction.
    assert base.mean_wait == 0.0


def test_open_loop_arrivals_ignore_completions():
    """Overdriven at 4x the service rate, arrivals outpace completions:
    the queue must actually build (max depth > 1)."""
    base = closed("psfanin", "hostControlled", requests=8)
    run = WorkloadRun("psfanin", "hostControlled", nodes=4, size=64,
                      requests=16, loop="open",
                      rate=4.0 / base.mean_service)
    seen_depth = []
    original = run.transport.start_request

    def spy(req, on_done):
        seen_depth.append(run.stats.queue_depth)
        original(req, on_done)

    run.transport.start_request = spy
    result = run.execute()
    assert result.verified
    assert run.stats.issued == 16
    assert result.last_arrival < result.last_completion
    # At 4x overdrive, later dispatches find requests already queued.
    assert max(seen_depth) > 0


def test_deterministic_replay():
    """Same seed, same configuration -> bit-identical latency sequences,
    for both arrival kinds."""
    for arrival in ("poisson", "bursty"):
        runs = [WorkloadRun("kvcache", "engine", nodes=4, size=64,
                            requests=10, loop="open", arrival=arrival,
                            rate=2e4, seed=13).execute()
                for _ in range(2)]
        assert runs[0].latencies == runs[1].latencies
        assert runs[0].last_completion == runs[1].last_completion


# -- telemetry integration --------------------------------------------------------

def test_reconciliation_within_one_percent():
    sim = Simulator(seed=2)
    plane = TelemetryPlane(sim, interval=20e-6)
    run = WorkloadRun("trainstep", "engine", nodes=4, size=64,
                      requests=8, loop="open", rate=2e4, seed=2, sim=sim)
    plane.watch_workloads(run)
    plane.start()
    result = run.execute()
    plane.stop()
    recon = reconcile(result, plane.recorder)
    assert recon["ok"]
    assert recon["span_count"] == len(result.latencies)
    assert recon["sum_err"] <= 0.01
    # The engine mode also exports its posting-path counters.
    assert any(n.startswith("workload.engine.")
               for n in plane.sampler.bank.names())
    assert "workload.completed" in plane.sampler.bank.names()


def test_telemetry_never_perturbs_the_run():
    kw = dict(nodes=4, size=64, requests=8, loop="open", rate=2e4, seed=2)
    bare = WorkloadRun("trainstep", "engine", **kw).execute()
    sim = Simulator(seed=2)
    plane = TelemetryPlane(sim, interval=20e-6)
    run = WorkloadRun("trainstep", "engine", sim=sim, **kw)
    plane.watch_workloads(run)
    plane.start()
    instrumented = run.execute()
    plane.stop()
    assert plane.sampler.ticks > 0
    assert bare.latencies == instrumented.latencies
    assert bare.last_completion == instrumented.last_completion


# -- saturation sweep -------------------------------------------------------------

def test_saturation_knee_and_efficiency():
    sweep = saturation_sweep("psfanin", "hostControlled", nodes=4, size=64,
                             requests=12, fractions=(0.5, 1.2), seed=7)
    assert sweep.base_rate == pytest.approx(1.0 / sweep.closed.mean_service)
    below, above = sweep.points
    assert below.efficiency >= 0.95         # keeps up below the knee
    assert above.efficiency < 1.0           # saturated past the knee
    assert sweep.knee == below.offered
    doc = sweep.as_dict()
    assert doc["knee"] == below.offered
    assert len(doc["points"]) == 2
    assert {"offered", "offered_measured", "achieved", "efficiency",
            "p99"} <= set(doc["points"][0])


# -- measurement plumbing ---------------------------------------------------------

def test_exact_percentile():
    values = [float(v) for v in range(1, 101)]
    assert exact_percentile(values, 50) == 50.0
    assert exact_percentile(values, 99) == 99.0
    assert exact_percentile(values, 100) == 100.0
    assert exact_percentile([], 99) == 0.0
    with pytest.raises(BenchmarkError):
        exact_percentile(values, 101)


def test_stats_follow_the_sampler_protocol():
    stats = WorkloadStats()
    before = stats.snapshot()
    stats.issued += 5
    stats.completed += 3
    stats.queue_depth = 2
    diff = stats.diff(before)
    assert diff["issued"] == 5
    assert diff["completed"] == 3
    assert diff["queue_depth"] == 2         # gauge: level, not delta
    assert set(WorkloadStats.GAUGES) == {"queue_depth", "inflight"}


def test_validation_errors():
    with pytest.raises(BenchmarkError, match="single-shot"):
        run = WorkloadRun("moe", "hostControlled", loop="closed", **FAST)
        run.execute()
        run.execute()
    with pytest.raises(BenchmarkError, match="rate > 0"):
        WorkloadRun("moe", "hostControlled", loop="open", rate=0.0, **FAST)
    with pytest.raises(BenchmarkError, match="loop discipline"):
        WorkloadRun("moe", "hostControlled", loop="sideways", **FAST)
    with pytest.raises(BenchmarkError, match="reliable=True"):
        WorkloadRun("moe", "hostControlled", loop="closed",
                    fault_plan=FaultPlan.uniform(loss=0.01), **FAST)
    with pytest.raises(BenchmarkError, match="unknown workload mode"):
        WorkloadRun("moe", "smoke-signals", loop="closed", **FAST)
    with pytest.raises(BenchmarkError, match="multiple of 8"):
        WorkloadRun("moe", "engine", loop="closed", nodes=4, size=63,
                    requests=2)
