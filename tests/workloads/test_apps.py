"""The application workload suite: registry, op scripts, and knobs."""

from __future__ import annotations

import inspect

import pytest

from repro.errors import BenchmarkError
from repro.workloads import WORKLOADS, WorkloadRun, get_workload

EXPECTED = {"trainstep", "moe", "kvcache", "psfanin", "pingpong",
            "allreduce"}


def test_registry_holds_the_suite():
    assert set(WORKLOADS) == EXPECTED
    for name, workload in WORKLOADS.items():
        assert workload.name == name
        assert workload.connectivity in ("ring", "full")
        assert workload.min_nodes >= 2
        assert workload.description
        assert workload.request_bytes(4, 256) > 0


def test_scripts_are_generators_of_op_words():
    """Every workload script is a plain generator over the three-word
    vocabulary — the write-once form each control mode interprets."""
    for workload in WORKLOADS.values():
        gen = workload.script(0, 0, 4, 64)
        assert inspect.isgenerator(gen)
        op = next(gen)
        assert op[0] in ("send", "recv", "compute")
        gen.close()


def test_get_workload_unknown_name():
    with pytest.raises(BenchmarkError, match="unknown workload"):
        get_workload("btree")


def test_knob_overrides_change_the_workload():
    """A zero-overlap training step exposes its full compute charge, so
    its service time must exceed the fully-overlapped variant's."""
    hidden = get_workload("trainstep", compute_instr=4000, overlap=1.0)
    exposed = get_workload("trainstep", compute_instr=4000, overlap=0.0)
    assert hidden.knobs["overlap"] == 1.0
    assert exposed.knobs["overlap"] == 0.0
    kw = dict(nodes=4, size=64, requests=2, loop="closed")
    fast = WorkloadRun(hidden, "hostControlled", **kw).execute()
    slow = WorkloadRun(exposed, "hostControlled", **kw).execute()
    assert fast.verified and slow.verified
    assert slow.mean_service > fast.mean_service


def test_verify_rejects_wrong_results():
    for workload in WORKLOADS.values():
        assert not workload.verify(0, 0, 4, 64, None)
        assert not workload.verify(0, 0, 4, 64, b"garbage")
