"""``python -m repro workloads`` — verdicts, artifacts, and exit codes."""

from __future__ import annotations

import json
import os

import pytest

from repro.workloads.cli import main

QUICK = ["--quick", "--workload", "psfanin", "--mode", "hostControlled"]


def test_quick_cell_passes(capsys):
    assert main(QUICK) == 0
    out = capsys.readouterr().out
    assert "[PASS] zero-cost when disarmed" in out
    assert "[PASS] deterministic replay" in out
    assert "[PASS] all results exact" in out
    assert "[PASS] open-loop p99 >= closed-loop p99" in out
    assert "[PASS] trace<->histogram reconciliation <= 1%" in out
    assert "[FAIL]" not in out


def test_json_document(capsys):
    assert main(QUICK + ["--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["ok"] and not doc["breached"]
    (cell,) = doc["cells"]
    assert cell["workload"] == "psfanin"
    assert cell["open_ge_closed"]
    assert cell["reconcile"]["ok"]
    assert cell["open"]["p99"] >= cell["closed"]["p99"]
    assert all(v["ok"] for v in doc["verdicts"])


def test_force_breach_dumps_artifacts(tmp_path, capsys):
    out = tmp_path / "artifacts"
    assert main(QUICK + ["--force-breach", "--out", str(out)]) == 1
    assert (out / "slo-report.json").stat().st_size > 0
    assert (out / "flight-record-0.json").stat().st_size > 0
    report = json.loads((out / "slo-report.json").read_text())
    assert report["breached"]
    assert report["ok"]     # forced breach is an SLO event, not a bug
    capsys.readouterr()


def test_no_telemetry_skips_planes(capsys):
    assert main(QUICK + ["--no-telemetry"]) == 0
    out = capsys.readouterr().out
    assert "reconciliation" not in out
    assert "zero-cost" not in out
    assert "[PASS] deterministic replay" in out


def test_knee_report(capsys):
    assert main(QUICK + ["--knee", "--requests", "8"]) == 0
    out = capsys.readouterr().out
    assert "saturation knee" in out
    assert "eff" in out


def test_custom_slo_breaches(capsys):
    # An impossible tail bound must breach and exit 1.
    rc = main(QUICK + ["--no-presets", "--slo",
                       "p99:span.workload.request<1e-12"])
    capsys.readouterr()
    assert rc == 1


def test_faulted_cell_still_verifies(capsys):
    assert main(QUICK + ["--loss", "0.03"]) == 0
    assert "[FAIL]" not in capsys.readouterr().out


def test_bad_selection_is_an_argparse_error(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["--workload", "btree"])
    assert exc.value.code == 2
    capsys.readouterr()
