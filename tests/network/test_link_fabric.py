"""Unit + property tests for network links and the fabric."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import NetworkError
from repro.network import NetLinkConfig, NetworkFabric, Packet, PacketKind
from repro.sim import Simulator, join_result
from repro.units import KIB, US


def make_pair(sim=None, config=None):
    sim = sim or Simulator()
    fabric = NetworkFabric(sim)
    a, b = fabric.connect(0, 1, config)
    return sim, a, b


def pkt(payload=b"", src=0, dst=1, header=32):
    return Packet(PacketKind.RMA_PUT, src, dst, header, payload)


def test_packet_crosses_link():
    sim, a, b = make_pair()

    def sender():
        yield from a.send(pkt(b"hello"))

    def receiver():
        p = yield b.recv()
        return p.payload

    sim.process(sender())
    rx = sim.process(receiver())
    sim.run()
    assert join_result(rx) == b"hello"


def test_delivery_takes_latency_plus_serialization():
    cfg = NetLinkConfig(bandwidth=1e9, latency=1e-6)
    sim, a, b = make_pair(config=cfg)

    def sender():
        yield from a.send(pkt(b"\x00" * 968))  # 968+32 = 1000 wire bytes

    def receiver():
        p = yield b.recv()
        return sim.now

    sim.process(sender())
    rx = sim.process(receiver())
    sim.run()
    # 1000B at 1GB/s = 1us serialization + 1us latency = 2us.
    assert join_result(rx) == pytest.approx(2e-6, rel=1e-6)


def test_in_order_delivery():
    sim, a, b = make_pair()
    received = []

    def sender():
        for i in range(20):
            yield from a.send(pkt(bytes([i])))

    def receiver():
        for _ in range(20):
            p = yield b.recv()
            received.append(p.payload[0])

    sim.process(sender())
    sim.process(receiver())
    sim.run()
    assert received == list(range(20))


def test_duplex_no_cross_interference():
    """Both directions full rate simultaneously."""
    cfg = NetLinkConfig(bandwidth=1e9, latency=0.0)
    sim, a, b = make_pair(config=cfg)
    done = {}

    def sender(ep, tag):
        yield from ep.send(pkt(b"\x00" * (1000 - 32)))
        done[tag] = sim.now

    sim.process(sender(a, "a"))
    sim.process(sender(b, "b"))
    sim.run()
    assert done["a"] == pytest.approx(1e-6)
    assert done["b"] == pytest.approx(1e-6)


def test_same_direction_packets_serialize():
    cfg = NetLinkConfig(bandwidth=1e9, latency=0.0)
    sim, a, b = make_pair(config=cfg)
    done = []

    def sender(tag):
        yield from a.send(pkt(b"\x00" * (1000 - 32)))
        done.append((tag, sim.now))

    sim.process(sender("x"))
    sim.process(sender("y"))
    sim.run()
    assert done[0][1] == pytest.approx(1e-6)
    assert done[1][1] == pytest.approx(2e-6)


def test_fabric_rejects_self_connection():
    sim = Simulator()
    fabric = NetworkFabric(sim)
    with pytest.raises(NetworkError):
        fabric.connect(0, 0)


def test_fabric_rejects_duplicate_connection():
    sim = Simulator()
    fabric = NetworkFabric(sim)
    fabric.connect(0, 1)
    with pytest.raises(NetworkError):
        fabric.connect(1, 0)


def test_fabric_endpoint_lookup():
    sim = Simulator()
    fabric = NetworkFabric(sim)
    a, b = fabric.connect(3, 7)
    assert fabric.endpoint(3) is a
    assert fabric.endpoint(7) is b
    with pytest.raises(NetworkError):
        fabric.endpoint(42)
    assert fabric.link_between(7, 3) is a.link


@settings(max_examples=30, deadline=None)
@given(st.lists(st.binary(min_size=0, max_size=64), min_size=1, max_size=30))
def test_property_all_payloads_arrive_in_order(payloads):
    sim, a, b = make_pair()
    received = []

    def sender():
        for p in payloads:
            yield from a.send(pkt(p))

    def receiver():
        for _ in payloads:
            got = yield b.recv()
            received.append(got.payload)

    sim.process(sender())
    sim.process(receiver())
    sim.run()
    assert received == payloads
