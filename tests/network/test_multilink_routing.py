"""Multi-link fabric routing: registries, BFS routes, store-and-forward.

Satellite coverage for the N-node fabric generalization: a node on several
links keeps one endpoint per link, routers relay transit packets, and the
per-router counters account for every packet exactly once.
"""

import pytest

from repro.errors import NetworkError
from repro.network import NetworkFabric, Packet, PacketKind
from repro.sim import Simulator, join_result


def pkt(src, dst, payload=b""):
    return Packet(PacketKind.RMA_PUT, src, dst, 32, payload)


def make_ring(n, sim=None):
    sim = sim or Simulator()
    fabric = NetworkFabric(sim)
    for i in range(n):
        fabric.connect(i, (i + 1) % n)
    routers = [fabric.make_router(i) for i in range(n)]
    fabric.compute_routes()
    return sim, fabric, routers


def make_star(n, sim=None):
    """n leaf nodes around a pure-transit switch with id ``n``."""
    sim = sim or Simulator()
    fabric = NetworkFabric(sim)
    for i in range(n):
        fabric.connect(i, n)
    fabric.make_router(n)
    fabric.compute_routes()
    return sim, fabric


def test_multi_link_node_keeps_all_endpoints():
    sim = Simulator()
    fabric = NetworkFabric(sim)
    fabric.connect(0, 1)
    fabric.connect(0, 2)
    fabric.connect(0, 3)
    assert fabric.neighbors(0) == [1, 2, 3]
    # Each (node, peer) pair resolves to a distinct endpoint on the right link.
    eps = [fabric.endpoint(0, peer) for peer in (1, 2, 3)]
    assert len({id(e) for e in eps}) == 3
    for ep, peer in zip(eps, (1, 2, 3)):
        assert ep.node_id == 0
        assert ep.peer_id == peer
        assert ep.link is fabric.link_between(0, peer)


def test_bare_endpoint_lookup_rejects_multi_link_nodes():
    sim = Simulator()
    fabric = NetworkFabric(sim)
    fabric.connect(0, 1)
    fabric.connect(0, 2)
    with pytest.raises(NetworkError, match="is on 2 links"):
        fabric.endpoint(0)
    # Single-link nodes keep the unambiguous seed-era lookup.
    assert fabric.endpoint(1).peer_id == 0
    with pytest.raises(NetworkError):
        fabric.endpoint(0, 42)


def test_ring_all_pairs_reachability():
    n = 5
    sim, fabric, routers = make_ring(n)
    received = []

    def receiver(router, count):
        for _ in range(count):
            p = yield router.recv()
            received.append((p.src_node, p.dst_node, p.payload))

    def sender(router, dst):
        yield from router.send(pkt(router.node_id, dst,
                                   bytes([router.node_id, dst])))

    for src in range(n):
        for dst in range(n):
            if src != dst:
                sim.process(sender(routers[src], dst))
    rx = [sim.process(receiver(routers[node], n - 1)) for node in range(n)]
    sim.run_until_complete(*rx, limit=1.0)
    assert len(received) == n * (n - 1)
    assert {(s, d) for (s, d, _pl) in received} \
        == {(s, d) for s in range(n) for d in range(n) if s != d}
    for s, d, payload in received:
        assert payload == bytes([s, d])


def test_relayed_path_preserves_order():
    # 0 -> 2 on a 4-ring goes through a relay either way; a burst must
    # arrive in send order.
    sim, fabric, routers = make_ring(4)
    received = []

    def sender():
        for i in range(25):
            yield from routers[0].send(pkt(0, 2, bytes([i])))

    def receiver():
        for _ in range(25):
            p = yield routers[2].recv()
            received.append(p.payload[0])

    sim.process(sender())
    rx = sim.process(receiver())
    sim.run_until_complete(rx, limit=1.0)
    assert received == list(range(25))


def test_ring_routes_take_shortest_path_and_count_hops():
    # On a 4-ring, 0->1 is direct (no forwards); 0->2 is two hops (exactly
    # one relay); ties (two equal paths) break toward the lower peer id.
    sim, fabric, routers = make_ring(4)
    assert routers[0].next_hop(1).peer_id == 1
    assert routers[0].next_hop(3).peer_id == 3
    assert routers[0].next_hop(2).peer_id == 1  # tie: via 1, not via 3

    def sender():
        yield from routers[0].send(pkt(0, 2, b"x"))

    def receiver():
        p = yield routers[2].recv()
        return sim.now

    sim.process(sender())
    rx = sim.process(receiver())
    sim.run_until_complete(rx, limit=1.0)
    assert join_result(rx) > 0
    assert routers[1].packets_forwarded == 1     # the single relay
    assert routers[1].packets_terminated == 0
    assert routers[2].packets_terminated == 1
    assert routers[3].packets_forwarded == 0


def test_relay_adds_forwarding_latency():
    sim1, fabric1, routers1 = make_ring(4)

    def send_direct():
        yield from routers1[0].send(pkt(0, 1, b"d"))

    def recv_direct():
        yield routers1[1].recv()
        return sim1.now

    sim1.process(send_direct())
    direct = sim1.process(recv_direct())
    sim1.run_until_complete(direct, limit=1.0)

    sim2, fabric2, routers2 = make_ring(4)

    def send_hop():
        yield from routers2[0].send(pkt(0, 2, b"h"))

    def recv_hop():
        yield routers2[2].recv()
        return sim2.now

    sim2.process(send_hop())
    hopped = sim2.process(recv_hop())
    sim2.run_until_complete(hopped, limit=1.0)
    # Two link crossings + the store-and-forward delay beat one crossing.
    assert join_result(hopped) > 2 * join_result(direct)


def test_switch_star_pure_transit_counters():
    n = 4
    sim, fabric = make_star(n)
    switch = fabric.router(n)
    leaves = [fabric.endpoint(i, n) for i in range(n)]
    received = {i: [] for i in range(n)}

    def sender(src):
        for dst in range(n):
            if dst != src:
                yield from leaves[src].send(pkt(src, dst, bytes([src])))

    def receiver(dst):
        for _ in range(n - 1):
            p = yield leaves[dst].recv()
            received[dst].append(p.src_node)

    rx = []
    for i in range(n):
        sim.process(sender(i))
        rx.append(sim.process(receiver(i)))
    sim.run_until_complete(*rx, limit=1.0)
    total = n * (n - 1)
    # The switch's own id terminates nothing: every packet is transit.
    assert switch.packets_forwarded == total
    assert switch.packets_terminated == 0
    for dst in range(n):
        assert sorted(received[dst]) == [s for s in range(n) if s != dst]


def test_compute_routes_rejects_partitioned_fabric():
    sim = Simulator()
    fabric = NetworkFabric(sim)
    fabric.connect(0, 1)
    fabric.connect(2, 3)    # disconnected island
    fabric.make_router(0)
    with pytest.raises(NetworkError, match="unreachable"):
        fabric.compute_routes()


def test_router_rejects_duplicate_link_and_unknown_route():
    sim = Simulator()
    fabric = NetworkFabric(sim)
    fabric.connect(0, 1)
    router = fabric.make_router(0)
    with pytest.raises(NetworkError):
        router.add_link(fabric.endpoint(0, 1))
    with pytest.raises(NetworkError):
        router.next_hop(9)
    with pytest.raises(NetworkError):
        router.set_route(9, 5)
    with pytest.raises(NetworkError):
        fabric.make_router(0)


def test_attachment_prefers_router():
    sim = Simulator()
    fabric = NetworkFabric(sim)
    fabric.connect(0, 1)
    router = fabric.make_router(0)
    assert fabric.attachment(0) is router
    assert fabric.attachment(1) is fabric.endpoint(1)
