"""Unit + property tests for Memory and Allocator."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import AllocationError
from repro.memory import Allocator, AddressRange, Memory, MemorySpace


def make_mem(size=0x10000, base=0x1000):
    return Memory("m", base, size, MemorySpace.HOST_DRAM)


def test_memory_physical_addressing():
    mem = make_mem()
    mem.write_u64(0x1008, 0xDEADBEEF)
    assert mem.read_u64(0x1008) == 0xDEADBEEF
    assert mem.read(0x1008, 4) == bytes([0xEF, 0xBE, 0xAD, 0xDE])


def test_alloc_returns_aligned_ranges():
    alloc = Allocator(make_mem(), alignment=256)
    r1 = alloc.alloc(100)
    r2 = alloc.alloc(100)
    assert r1.base % 256 == 0
    assert r2.base % 256 == 0
    assert not r1.overlaps(r2)


def test_alloc_exhaustion():
    alloc = Allocator(make_mem(size=1024, base=0), alignment=16)
    alloc.alloc(1024)
    with pytest.raises(AllocationError):
        alloc.alloc(1)


def test_free_then_realloc_reuses_space():
    alloc = Allocator(make_mem(size=4096, base=0), alignment=16)
    r = alloc.alloc(4096)
    alloc.free(r)
    r2 = alloc.alloc(4096)
    assert r2.base == r.base


def test_double_free_rejected():
    alloc = Allocator(make_mem())
    r = alloc.alloc(64)
    alloc.free(r)
    with pytest.raises(AllocationError):
        alloc.free(r)


def test_foreign_free_rejected():
    alloc = Allocator(make_mem())
    with pytest.raises(AllocationError):
        alloc.free(AddressRange(0x1000, 64))


def test_free_size_mismatch_rejected():
    alloc = Allocator(make_mem())
    r = alloc.alloc(64)
    with pytest.raises(AllocationError):
        alloc.free(AddressRange(r.base, 32))


def test_nonpositive_alloc_rejected():
    alloc = Allocator(make_mem())
    with pytest.raises(AllocationError):
        alloc.alloc(0)


def test_non_power_of_two_alignment_rejected():
    with pytest.raises(AllocationError):
        Allocator(make_mem(), alignment=100)


def test_owns():
    alloc = Allocator(make_mem())
    r = alloc.alloc(64)
    assert alloc.owns(r.base)
    assert alloc.owns(r.base + 63)
    assert not alloc.owns(r.base + 64)


def test_coalescing_allows_big_realloc():
    alloc = Allocator(make_mem(size=4096, base=0), alignment=16)
    parts = [alloc.alloc(1024) for _ in range(4)]
    for p in parts:
        alloc.free(p)
    big = alloc.alloc(4096)  # only possible if free blocks coalesced
    assert big.size == 4096


@given(st.lists(st.integers(min_value=1, max_value=2048), min_size=1, max_size=30))
def test_property_allocations_never_overlap(sizes):
    """No two live allocations overlap, and accounting is conserved."""
    alloc = Allocator(make_mem(size=0x100000, base=0), alignment=64)
    live = []
    for i, size in enumerate(sizes):
        r = alloc.alloc(size)
        for other in live:
            assert not r.overlaps(other)
        live.append(r)
        if i % 3 == 2:  # free every third allocation to churn the free list
            alloc.free(live.pop(0))
    assert alloc.bytes_live == sum(r.size for r in live)


@given(st.lists(st.integers(min_value=1, max_value=512), min_size=1, max_size=20))
def test_property_free_all_restores_capacity(sizes):
    mem = make_mem(size=0x40000, base=0)
    alloc = Allocator(mem, alignment=64)
    ranges = [alloc.alloc(s) for s in sizes]
    for r in ranges:
        alloc.free(r)
    assert alloc.bytes_free == mem.range.size
    assert alloc.bytes_live == 0
