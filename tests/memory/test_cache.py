"""Unit + property tests for the L2 cache model."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError
from repro.memory import Cache, CacheConfig


def small_cache(ways=2, sets=4, line=32):
    return Cache(CacheConfig(size_bytes=ways * sets * line, line_bytes=line, ways=ways))


def test_first_read_misses_second_hits():
    c = small_cache()
    hits, misses = c.read(0x40, 8)
    assert (hits, misses) == (0, 1)
    hits, misses = c.read(0x40, 8)
    assert (hits, misses) == (1, 0)


def test_write_allocates_then_read_hits():
    """The pollOnGPU pattern: NIC-visible flag written, then polled — resident."""
    c = small_cache()
    c.write(0x100, 8)
    hits, misses = c.read(0x100, 8)
    assert (hits, misses) == (1, 0)


def test_invalidate_forces_remiss():
    c = small_cache()
    c.read(0x40, 8)
    assert c.contains(0x40)
    dropped = c.invalidate(0x40, 8)
    assert dropped == 1
    hits, misses = c.read(0x40, 8)
    assert (hits, misses) == (0, 1)


def test_multi_sector_access_counts_each_sector():
    c = small_cache(line=32)
    hits, misses = c.read(0x0, 128)  # 4 sectors
    assert (hits, misses) == (0, 4)
    assert c.stats.read_requests == 4


def test_unaligned_access_spanning_two_sectors():
    c = small_cache(line=32)
    hits, misses = c.read(30, 4)  # crosses the 32B boundary
    assert misses == 2


def test_lru_eviction_within_set():
    c = small_cache(ways=2, sets=1, line=32)
    c.read(0 * 32, 1)
    c.read(1 * 32, 1)
    c.read(2 * 32, 1)          # evicts line 0 (LRU)
    assert not c.contains(0)
    assert c.contains(32)
    assert c.contains(64)


def test_lru_touch_refreshes():
    c = small_cache(ways=2, sets=1, line=32)
    c.read(0, 1)
    c.read(32, 1)
    c.read(0, 1)               # refresh line 0
    c.read(64, 1)              # should evict line 32, not line 0
    assert c.contains(0)
    assert not c.contains(32)


def test_stats_accumulate_and_reset():
    c = small_cache()
    c.read(0, 1)
    c.read(0, 1)
    c.write(64, 1)
    assert c.stats.read_requests == 2
    assert c.stats.read_hits == 1
    assert c.stats.write_requests == 1
    c.stats.reset()
    assert c.stats.read_requests == 0


def test_flush_empties_cache():
    c = small_cache()
    c.read(0, 64)
    assert c.resident_sectors > 0
    c.flush()
    assert c.resident_sectors == 0


def test_default_config_is_kepler_sized():
    c = Cache()
    assert c.config.size_bytes == 1536 * 1024
    assert c.config.line_bytes == 32


def test_bad_geometry_rejected():
    with pytest.raises(ConfigError):
        CacheConfig(size_bytes=1000, line_bytes=32, ways=16)
    with pytest.raises(ConfigError):
        CacheConfig(size_bytes=0)
    with pytest.raises(ConfigError):
        CacheConfig(size_bytes=48 * 1024, line_bytes=48, ways=16)


@given(st.lists(st.integers(min_value=0, max_value=2**20), min_size=1, max_size=200))
def test_property_hits_plus_misses_equals_requests(addrs):
    c = Cache(CacheConfig(size_bytes=16 * 1024, line_bytes=32, ways=4))
    for a in addrs:
        c.read(a, 4)
    s = c.stats
    assert s.read_hits + s.read_misses == s.read_requests
    assert c.resident_sectors <= c.config.num_sets * c.config.ways


@given(st.lists(st.integers(min_value=0, max_value=2**16), min_size=1, max_size=100))
def test_property_immediate_rereference_always_hits(addrs):
    c = Cache(CacheConfig(size_bytes=16 * 1024, line_bytes=32, ways=4))
    for a in addrs:
        c.read(a, 1)
        hits, misses = c.read(a, 1)
        assert (hits, misses) == (1, 0)
