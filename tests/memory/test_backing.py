"""Unit + property tests for ByteStore."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import AddressError
from repro.memory import ByteStore


def test_starts_zeroed():
    store = ByteStore(64)
    assert store.read(0, 64) == bytes(64)


def test_write_read_roundtrip():
    store = ByteStore(32)
    store.write(4, b"hello")
    assert store.read(4, 5) == b"hello"
    assert store.read(0, 4) == bytes(4)


def test_out_of_bounds_read_rejected():
    store = ByteStore(16)
    with pytest.raises(AddressError):
        store.read(10, 8)


def test_out_of_bounds_write_rejected():
    store = ByteStore(16)
    with pytest.raises(AddressError):
        store.write(15, b"toolong")


def test_negative_offset_rejected():
    store = ByteStore(16)
    with pytest.raises(AddressError):
        store.read(-1, 2)


def test_zero_size_store_rejected():
    with pytest.raises(AddressError):
        ByteStore(0)


def test_u32_little_endian():
    store = ByteStore(8)
    store.write_u32(0, 0x01020304)
    assert store.read(0, 4) == bytes([0x04, 0x03, 0x02, 0x01])
    assert store.read_u32(0) == 0x01020304


def test_u64_roundtrip_and_truncation():
    store = ByteStore(16)
    store.write_u64(8, 0x1_FFFF_FFFF_FFFF_FFFF)  # truncates to 64 bits
    assert store.read_u64(8) == 0xFFFF_FFFF_FFFF_FFFF


def test_fill():
    store = ByteStore(16)
    store.fill(4, 8, 0xAB)
    assert store.read(4, 8) == bytes([0xAB] * 8)
    assert store.read(0, 4) == bytes(4)


def test_copy_between_stores():
    a = ByteStore(32)
    b = ByteStore(32)
    a.write(0, b"payload!")
    ByteStore.copy(a, 0, b, 8, 8)
    assert b.read(8, 8) == b"payload!"


def test_copy_within():
    store = ByteStore(32)
    store.write(0, b"abcd")
    store.copy_within(0, 16, 4)
    assert store.read(16, 4) == b"abcd"


def test_view_writes_through():
    store = ByteStore(16)
    view = store.view(4, 4)
    view[:] = 0xFF
    assert store.read(4, 4) == b"\xff\xff\xff\xff"


@given(
    size=st.integers(min_value=1, max_value=4096),
    data=st.binary(min_size=1, max_size=256),
    offset=st.integers(min_value=0, max_value=4096),
)
def test_property_roundtrip_or_bounds_error(size, data, offset):
    """Any in-bounds write reads back exactly; out-of-bounds raises."""
    store = ByteStore(size)
    if offset + len(data) <= size:
        store.write(offset, data)
        assert store.read(offset, len(data)) == data
    else:
        with pytest.raises(AddressError):
            store.write(offset, data)


@given(value=st.integers(min_value=0, max_value=2**64 - 1))
def test_property_u64_roundtrip(value):
    store = ByteStore(8)
    store.write_u64(0, value)
    assert store.read_u64(0) == value


@given(
    st.lists(
        st.tuples(st.integers(0, 56), st.integers(0, 2**64 - 1)),
        min_size=1, max_size=20,
    )
)
def test_property_last_write_wins(writes):
    """Sequential u64 writes: reading any offset reflects the latest
    overlapping write, modeled against a reference bytearray."""
    store = ByteStore(64)
    ref = bytearray(64)
    for off, val in writes:
        store.write_u64(off, val)
        ref[off:off + 8] = val.to_bytes(8, "little")
    assert store.read(0, 64) == bytes(ref)
