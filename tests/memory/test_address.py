"""Unit tests for AddressRange and AddressMap."""

import pytest

from repro.errors import AddressError
from repro.memory import AddressMap, AddressRange, Memory, MemorySpace


def test_range_contains():
    r = AddressRange(0x1000, 0x100)
    assert r.contains(0x1000)
    assert r.contains(0x10FF)
    assert not r.contains(0x1100)
    assert r.contains(0x1080, 0x80)
    assert not r.contains(0x1080, 0x81)


def test_range_end_and_offset():
    r = AddressRange(0x1000, 0x100)
    assert r.end == 0x1100
    assert r.offset_of(0x1010) == 0x10
    with pytest.raises(AddressError):
        r.offset_of(0x2000)


def test_range_overlap():
    a = AddressRange(0, 16)
    b = AddressRange(15, 16)
    c = AddressRange(16, 16)
    assert a.overlaps(b)
    assert not a.overlaps(c)
    assert b.overlaps(c)


def test_range_split():
    r = AddressRange(0, 10)
    parts = list(r.split(4))
    assert [(p.base, p.size) for p in parts] == [(0, 4), (4, 4), (8, 2)]


def test_range_split_invalid_chunk():
    with pytest.raises(AddressError):
        list(AddressRange(0, 10).split(0))


def test_bad_ranges_rejected():
    with pytest.raises(AddressError):
        AddressRange(-1, 10)
    with pytest.raises(AddressError):
        AddressRange(0, 0)


def test_map_resolves_to_target_and_offset():
    amap = AddressMap()
    mem = Memory("host", 0x1000, 0x1000, MemorySpace.HOST_DRAM)
    amap.add(mem)
    target, offset = amap.resolve(0x1800, 8)
    assert target is mem
    assert offset == 0x800


def test_map_rejects_overlapping_targets():
    amap = AddressMap()
    amap.add(Memory("a", 0, 0x100, MemorySpace.HOST_DRAM))
    with pytest.raises(AddressError):
        amap.add(Memory("b", 0x80, 0x100, MemorySpace.GPU_DRAM))


def test_map_unmapped_address():
    amap = AddressMap()
    with pytest.raises(AddressError):
        amap.resolve(0x42)


def test_map_straddling_access_rejected():
    amap = AddressMap()
    amap.add(Memory("a", 0, 0x100, MemorySpace.HOST_DRAM))
    amap.add(Memory("b", 0x100, 0x100, MemorySpace.GPU_DRAM))
    with pytest.raises(AddressError):
        amap.resolve(0xF8, 16)


def test_space_of():
    amap = AddressMap()
    amap.add(Memory("host", 0, 0x100, MemorySpace.HOST_DRAM))
    amap.add(Memory("gpu", 0x100, 0x100, MemorySpace.GPU_DRAM))
    assert amap.space_of(0x10) is MemorySpace.HOST_DRAM
    assert amap.space_of(0x110) is MemorySpace.GPU_DRAM
