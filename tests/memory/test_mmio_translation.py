"""Unit + property tests for MMIO windows and translation tables."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import AddressError, TranslationError
from repro.memory import AddressRange, MmioWindow, TranslationTable


# --- MmioWindow -------------------------------------------------------------

def test_mmio_write_handler_invoked_with_relative_offset():
    win = MmioWindow("bar", 0x4000, 0x100)
    calls = []
    win.on_write(0x10, 0x20, lambda off, data: calls.append((off, data)))
    win.write(0x18, b"\x01\x02")
    assert calls == [(0x8, b"\x01\x02")]


def test_mmio_unhandled_write_lands_in_store():
    win = MmioWindow("bar", 0, 0x100)
    win.write(0x40, b"scratch")
    assert win.read(0x40, 7) == b"scratch"


def test_mmio_read_handler_overrides_store():
    win = MmioWindow("bar", 0, 0x100)
    win.on_read(0, 8, lambda off, length: b"\xaa" * length)
    win.write(0, b"\x00" * 8)
    assert win.read(0, 8) == b"\xaa" * 8


def test_mmio_handler_overlap_rejected():
    win = MmioWindow("bar", 0, 0x100)
    win.on_write(0, 0x10, lambda o, d: None)
    with pytest.raises(AddressError):
        win.on_write(0x8, 0x10, lambda o, d: None)


def test_mmio_handled_write_still_updates_store():
    win = MmioWindow("bar", 0, 0x100)
    win.on_write(0, 0x10, lambda o, d: None)
    win.write(0, b"\x42")
    assert win.read(0x0, 1) == b"\x42"


def test_find_handler():
    win = MmioWindow("bar", 0, 0x100)
    h = lambda o, d: None
    win.on_write(0x20, 0x10, h)
    assert win.find_handler(0x28) is h
    assert win.find_handler(0x00) is None


# --- TranslationTable ----------------------------------------------------------

def test_translate_basic():
    tt = TranslationTable("atu")
    tt.map(AddressRange(0x10000, 0x1000), physical_base=0x2000_0000)
    assert tt.translate(0x10010) == 0x2000_0010
    assert tt.translate(0x10FFF) == 0x2000_0FFF


def test_translate_fault():
    tt = TranslationTable("atu")
    with pytest.raises(TranslationError):
        tt.translate(0x42)


def test_translate_straddle_rejected():
    tt = TranslationTable("atu")
    tt.map(AddressRange(0, 0x1000), physical_base=0)
    with pytest.raises(TranslationError):
        tt.translate(0xFF8, 16)


def test_overlapping_mapping_rejected():
    tt = TranslationTable("atu")
    tt.map(AddressRange(0, 0x1000), physical_base=0)
    with pytest.raises(TranslationError):
        tt.map(AddressRange(0x800, 0x1000), physical_base=0x8000)


def test_readonly_mapping_blocks_writes():
    tt = TranslationTable("atu")
    tt.map(AddressRange(0, 0x1000), physical_base=0, writable=False)
    assert tt.translate(0x10) == 0x10
    with pytest.raises(TranslationError):
        tt.translate(0x10, write=True)


def test_unmap():
    tt = TranslationTable("atu")
    rng = AddressRange(0, 0x1000)
    tt.map(rng, physical_base=0)
    tt.unmap(rng)
    with pytest.raises(TranslationError):
        tt.translate(0x10)
    with pytest.raises(TranslationError):
        tt.unmap(rng)


def test_try_translate_returns_none_on_fault():
    tt = TranslationTable("atu")
    assert tt.try_translate(0x10) is None


@given(
    base=st.integers(min_value=0, max_value=2**40),
    size=st.integers(min_value=1, max_value=2**20),
    phys=st.integers(min_value=0, max_value=2**40),
    probe=st.integers(min_value=0, max_value=2**20 - 1),
)
def test_property_translation_preserves_offsets(base, size, phys, probe):
    """translate(v) - phys == v - base for every v in the mapping."""
    tt = TranslationTable()
    tt.map(AddressRange(base, size), physical_base=phys)
    v = base + (probe % size)
    assert tt.translate(v) - phys == v - base
