"""Sampler tests: tick cadence, source protocols, windowed histograms."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.sim import Simulator
from repro.telemetry import Sampler


class FakeStats:
    """Minimal snapshot()/diff() stats source with one gauge."""

    GAUGES = ("depth",)

    def __init__(self):
        self.total = 0
        self.depth = 0

    def snapshot(self):
        return {"total": self.total, "depth": self.depth}

    def diff(self, earlier):
        return {"total": self.total - earlier["total"], "depth": self.depth}


def test_ticks_at_fixed_cadence_and_records_event_deltas():
    sim = Simulator()
    sampler = Sampler(sim, interval=1e-6)
    sampler.start()
    sim.run(until=10.5e-6)
    assert sampler.ticks == 10
    assert list(sampler.tick_times) == pytest.approx(
        [k * 1e-6 for k in range(1, 11)])
    events = sampler.series("sim.events")
    assert events is not None and events.kind == "counter"
    # Every processed event is attributed to exactly one window.
    assert events.total() == sim.events_processed


def test_watch_stats_splits_counters_from_gauges():
    sim = Simulator()
    stats = FakeStats()
    sampler = Sampler(sim, interval=1e-6)
    sampler.watch_stats("eng", stats)

    def bump(total, depth):
        stats.total += total
        stats.depth = depth

    sim.call_later(0.5e-6, lambda: bump(3, 2))
    sim.call_later(2.5e-6, lambda: bump(4, 1))
    sampler.start()
    sim.run(until=4.5e-6)

    counters = sampler.series("eng.total")
    gauges = sampler.series("eng.depth")
    assert counters.kind == "counter" and gauges.kind == "gauge"
    # First tick snapshots absolutes, later ticks record deltas; the sum
    # still reconstructs the final total.
    assert counters.total() == stats.total == 7
    assert [p.value for p in counters.points()] == [3, 0, 4, 0]
    assert gauges.last.value == 1
    assert gauges.value_at(1e-6) == 2


def test_watch_counters_diffs_consecutive_reads():
    sim = Simulator()
    state = {"bytes": 0}
    sampler = Sampler(sim, interval=1e-6)
    sampler.watch_counters("net", lambda: dict(state))
    for k in (1, 2, 3):
        sim.call_later(k * 1e-6 - 0.5e-6,
                       (lambda kk=k: state.__setitem__("bytes", 100 * kk)))
    sampler.start()
    sim.run(until=3.5e-6)
    series = sampler.series("net.bytes")
    assert [p.value for p in series.points()] == [100, 100, 100]
    assert series.total() == state["bytes"]


def test_watch_gauge_samples_levels():
    sim = Simulator()
    sampler = Sampler(sim, interval=1e-6)
    sampler.watch_gauge("queue.depth", lambda: sim.now * 1e6)
    sampler.start()
    sim.run(until=3.5e-6)
    series = sampler.series("queue.depth")
    assert series.kind == "gauge"
    assert [p.value for p in series.points()] == pytest.approx([1, 2, 3])


def test_window_histogram_reconstructs_per_window_distributions():
    """Samples observed between ticks k and k+1 belong to the window
    ``(t_k, t_{k+1}]`` — differencing retained states must honour that."""
    sim = Simulator()
    registry = MetricsRegistry()
    sampler = Sampler(sim, interval=1e-6)
    sampler.watch_registry(registry)
    hist = registry.histogram("lat")
    sim.call_later(0.5e-6, lambda: hist.observe(10.0))   # window 1
    sim.call_later(1.5e-6, lambda: hist.observe(20.0))   # window 2
    sim.call_later(1.7e-6, lambda: hist.observe(21.0))   # window 2
    sampler.start()
    sim.run(until=3.5e-6)

    assert sampler.histogram_names() == ["lat"]
    w1 = sampler.window_histogram("lat", 0.0, 1e-6)
    w2 = sampler.window_histogram("lat", 1e-6, 2e-6)
    w3 = sampler.window_histogram("lat", 2e-6, 3e-6)
    assert (w1.count, w2.count, w3.count) == (1, 2, 0)
    assert w1.min == w1.max == 10.0
    # Window min/max are octave estimates clamped to live extremes: 20 and
    # 21 share the (16, 32] bucket, so the window min reads as 16.
    assert w2.max == 21.0 and 10.0 <= w2.min <= 20.0
    # Whole-history percentile goes through the one shared implementation.
    assert sampler.percentile("lat", 0.0) == 10.0
    assert sampler.percentile("lat", 100.0) == 21.0
    # Percentile restricted to window 2 only sees window 2.
    assert sampler.percentile("lat", 100.0, 1e-6, 2e-6) == 21.0


def test_window_histogram_unknown_or_future_window():
    sim = Simulator()
    registry = MetricsRegistry()
    sampler = Sampler(sim, interval=1e-6)
    sampler.watch_registry(registry)
    registry.histogram("lat").observe(1.0)
    sampler.start()
    sim.run(until=1.5e-6)
    assert sampler.window_histogram("nope", 0.0, 1e-6) is None
    # No retained state at or before w1 yet -> None, not an empty guess.
    assert sampler.window_histogram("lat", -2e-6, 0.5e-6) is None


def test_stop_disarms_and_heap_drains():
    sim = Simulator()
    sampler = Sampler(sim, interval=1e-6)
    sampler.start()
    sim.run(until=2.5e-6)
    assert sampler.ticks == 2
    sampler.stop()
    sim.run()          # pending tick fires as a no-op; schedule drains
    assert sampler.ticks == 2


def test_on_tick_hook_sees_every_sample():
    sim = Simulator()
    sampler = Sampler(sim, interval=1e-6)
    seen = []
    sampler.on_tick.append(lambda s, t: seen.append(t))
    sampler.start()
    sim.run(until=3.5e-6)
    assert seen == pytest.approx([1e-6, 2e-6, 3e-6])


def test_bad_interval_rejected():
    with pytest.raises(ValueError):
        Sampler(Simulator(), interval=0.0)
