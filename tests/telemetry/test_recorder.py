"""Flight-recorder tests: bounded rings, exact aggregates, trip triggers,
and tail-equivalence with a full tracer."""

import json

import pytest

from repro.obs.tracer import SpanTracer
from repro.sim import Simulator
from repro.telemetry import FlightRecorder


def _spans_workload(sim, tracer_target, n=10):
    """Schedule n one-shot spans at 1us intervals (durations of zero are
    fine: the histogram buckets zero explicitly)."""
    for k in range(n):
        sim.call_later((k + 1) * 1e-6,
                       (lambda kk=k: tracer_target.begin(
                           "phase", "work", step=kk).end()))


def test_rings_bound_retention_but_aggregates_stay_exact():
    sim = Simulator()
    rec = FlightRecorder(capacity=4)
    sim.set_tracer(rec)
    _spans_workload(sim, rec, n=10)
    sim.run()
    # Only the last 4 spans are retained...
    assert len(rec.spans) == 4
    assert [s.attrs["step"] for s in rec.spans] == [6, 7, 8, 9]
    # ...but the folded histogram saw all 10 (aggregates are unbounded).
    assert rec.metrics.histogram("span.phase.work").count == 10


def test_retained_spans_are_the_tail_of_a_full_trace():
    """The dump-reconciliation property the monitor CLI checks: run the
    same schedule under a full SpanTracer and under the recorder — the
    recorder's spans must be exactly the full trace's tail."""
    def run(tracer):
        sim = Simulator()
        sim.set_tracer(tracer)
        _spans_workload(sim, tracer, n=12)
        sim.run()
        return [(s.category, s.name, s.track, s.begin, s.end)
                for s in tracer.spans]

    full = run(SpanTracer())
    tail = run(FlightRecorder(capacity=5))
    assert len(full) == 12
    assert tail == full[-5:]


def test_trigger_instant_trips_and_dumps():
    sim = Simulator()
    rec = FlightRecorder(capacity=8)
    sim.set_tracer(rec)
    dumps = []
    rec.on_trip.append(lambda reason, dump: dumps.append((reason, dump)))
    sim.call_later(1e-6, lambda: rec.instant("net", "packet-drop"))
    sim.call_later(2e-6, lambda: rec.instant("fault", "retry-exhausted",
                                             detail="conn 3"))
    sim.run()
    assert rec.tripped
    assert len(rec.trips) == 1            # packet-drop is not a trigger
    assert rec.trips[0]["reason"] == "fault/retry-exhausted"
    assert rec.trips[0]["time"] == pytest.approx(2e-6)
    reason, dump = dumps[0]
    assert reason == "fault/retry-exhausted"
    assert dump["detail"] == {"detail": "conn 3"}
    # The dump holds the context BEFORE the failure, drop included.
    assert [i["name"] for i in dump["instants"]] == \
        ["packet-drop", "retry-exhausted"]


def test_custom_triggers():
    sim = Simulator()
    rec = FlightRecorder(triggers=("packet-drop",))
    sim.set_tracer(rec)
    sim.call_later(1e-6, lambda: rec.instant("fault", "retry-exhausted"))
    sim.call_later(2e-6, lambda: rec.instant("net", "packet-drop"))
    sim.run()
    assert [t["reason"] for t in rec.trips] == ["net/packet-drop"]


def test_manual_trip_dump_is_json_safe_and_sees_open_spans():
    sim = Simulator()
    rec = FlightRecorder(capacity=8)
    sim.set_tracer(rec)
    _spans_workload(sim, rec, n=2)
    sim.call_later(3e-6, lambda: rec.begin("rma", "stuck-put"))  # never ends
    sim.run()
    dump = rec.trip("slo:test", detail={"why": "unit test"})
    json.dumps(dump)                      # must round-trip
    assert dump["reason"] == "slo:test"
    assert dump["capacity"] == 8
    assert len(dump["spans"]) == 2
    assert [o["name"] for o in dump["open_spans"]] == ["stuck-put"]
    assert dump["counters"] == rec.metrics.counter_values()
    assert rec.tripped


def test_capacity_validated():
    with pytest.raises(ValueError):
        FlightRecorder(capacity=0)
