"""The uniform snapshot()/diff() stats protocol the sampler polls.

Every watchable stats object must expose: ``snapshot() -> {name: number}``
(flat, JSON-safe), ``diff(earlier)`` (counters delta'd, GAUGES passed
through as levels), and a ``GAUGES`` class attribute naming the
level-valued keys.
"""

import random

from repro.engine import EngineStats
from repro.faults.injector import FaultInjector, LinkFaultState
from repro.faults.plan import FaultPlan
from repro.sim import Simulator


def _link_state(sim):
    """A LinkFaultState off the wire: snapshot() only reads counters."""
    return LinkFaultState(sim, link=None, cfg=None, rng=random.Random(0))


def _check_protocol(obj):
    snap = obj.snapshot()
    assert isinstance(snap, dict) and snap
    assert all(isinstance(v, (int, float)) for v in snap.values())
    gauges = type(obj).GAUGES
    assert set(gauges) <= set(snap)
    # diff against one's own snapshot: counters go to zero, gauges keep
    # their level.
    d = obj.diff(snap)
    for key, value in d.items():
        assert value == (snap[key] if key in gauges else 0), key
    return snap


def test_engine_stats_protocol():
    stats = EngineStats(messages=10, wrs=12, doorbells=3, inflight=4)
    snap = _check_protocol(stats)
    assert snap["messages"] == 10 and snap["inflight"] == 4

    stats.messages += 5
    stats.inflight = 2
    d = stats.diff(snap)
    assert d["messages"] == 5        # counter: windowed delta
    assert d["inflight"] == 2        # gauge: current level, not 2 - 4
    assert d["doorbells"] == 0


def test_fault_injector_protocol_counts_links_down():
    sim = Simulator()
    injector = FaultInjector(sim, FaultPlan.none())
    injector.states["0-1"] = s01 = _link_state(sim)
    injector.states["1-2"] = s12 = _link_state(sim)
    snap = _check_protocol(injector)
    assert snap["links_down"] == 0

    s01.drops = 3
    s12.drops = 2
    s12.down_depth = 1               # link currently down
    d = injector.diff(snap)
    assert d["drops"] == 5
    assert d["links_down"] == 1      # gauge: one link currently down


def test_link_fault_state_snapshot_is_flat():
    state = _link_state(Simulator())
    state.drops, state.delays, state.down_depth = 2, 1, 1
    snap = state.snapshot()
    assert snap["drops"] == 2 and snap["delays"] == 1
    assert snap["up"] == 0           # bool rendered as a 0/1 gauge level


def test_communicator_protocol_aggregates_reliability():
    from repro.collectives import Communicator
    from repro.collectives.bench import build_communicator

    assert Communicator.GAUGES == ("outstanding",)
    sim = Simulator(seed=3)
    _cluster, comm = build_communicator(2, 64, sim=sim, reliable=True)
    snap = _check_protocol(comm)
    for key in ("retransmits", "timeouts", "ack_replays", "exhausted",
                "outstanding"):
        assert key in snap
