"""TelemetryPlane tests: wiring, SLO-breach trips the recorder, reporting."""

from repro.sim import Simulator
from repro.telemetry import Objective, TelemetryPlane


def _busy(sim, until, step=0.3e-6):
    """Keep the event loop busy so sample windows see activity."""
    t = step
    while t < until:
        sim.call_later(t, lambda: None)
        t += step


def test_plane_installs_recorder_as_the_tracer():
    sim = Simulator()
    plane = TelemetryPlane(sim, interval=1e-6)
    assert sim.tracer is plane.recorder
    plane.start()
    _busy(sim, 3.5e-6)
    sim.run(until=3.5e-6)
    assert plane.sampler.ticks == 3
    assert "sim.events" in plane.report()["series"]
    assert not plane.breached


def test_first_slo_breach_trips_the_flight_recorder_once():
    sim = Simulator()
    # Impossible objective: the event loop always does work per window.
    obj = Objective("impossible", "sim.events", "total", "<=", 0.0,
                    budget=0.0)
    plane = TelemetryPlane(sim, interval=1e-6, objectives=[obj])
    plane.start()
    _busy(sim, 5.5e-6)
    sim.run(until=5.5e-6)

    assert plane.breached
    monitor = plane.monitors[0]
    assert monitor.breaches >= 2              # kept breaching...
    assert len(plane.recorder.trips) == 1     # ...but tripped once
    assert plane.recorder.trips[0]["reason"] == "slo:impossible"
    assert len(plane.dumps) == 1
    assert plane.dumps[0]["detail"]["status"] == "breach"


def test_model_instrumentation_feeds_the_plane():
    sim = Simulator()
    plane = TelemetryPlane(sim, interval=1e-6)
    plane.add_objective(Objective("tail", "span.rma.put", "p99", "<", 1e-6,
                                  budget=0.0))
    trc = sim.tracer

    def put(duration):
        span = trc.begin("rma", "put")
        sim.call_later(duration, span.end)

    sim.call_later(0.2e-6, lambda: put(0.1e-6))     # fast put, window 1
    sim.call_later(1.2e-6, lambda: put(5e-6))       # slow put, breaches
    plane.start()
    sim.run(until=8.5e-6)

    v = plane.verdicts()[0]
    assert v["status"] == "breach"
    assert plane.recorder.tripped
    # The breach dump retains the offending span.
    names = {s["name"] for s in plane.dumps[0]["spans"]}
    assert "put" in names


def test_watch_fabric_records_per_link_byte_series():
    class FakeLink:
        def __init__(self):
            self.bytes_sent = []

    class FakeFabric:
        def __init__(self):
            self._links = {("n0", "n1"): FakeLink(), ("n1", "n2"): FakeLink()}

        def links(self):
            return self._links

    sim = Simulator()
    fabric = FakeFabric()
    plane = TelemetryPlane(sim, interval=1e-6)
    plane.watch_fabric(fabric, bandwidth=1e9)
    link = fabric.links()[("n0", "n1")]
    sim.call_later(0.5e-6, lambda: link.bytes_sent.append(4096))
    sim.call_later(1.5e-6, lambda: link.bytes_sent.append(2048))
    plane.start()
    sim.run(until=2.5e-6)

    series = plane.sampler.series("link.n0-n1.bytes")
    assert [p.value for p in series.points()] == [4096, 2048]
    assert plane.sampler.series("link.n1-n2.bytes").total() == 0
    assert plane.link_bandwidth == 1e9


def test_stop_lets_the_schedule_drain():
    sim = Simulator()
    plane = TelemetryPlane(sim, interval=1e-6)
    plane.start()
    sim.run(until=2.5e-6)
    plane.stop()
    sim.run()                                 # no re-armed tick left behind
    assert plane.sampler.ticks == 2


def test_render_mentions_objectives_and_trips():
    sim = Simulator()
    obj = Objective("impossible", "sim.events", "total", "<=", 0.0,
                    budget=0.0)
    plane = TelemetryPlane(sim, interval=1e-6, objectives=[obj])
    plane.start()
    _busy(sim, 2.5e-6)
    sim.run(until=2.5e-6)
    text = plane.render()
    assert "impossible" in text
    assert "breach" in text
    assert "flight recorder trips" in text
    report = plane.report()
    assert report["dumps"] == 1
    assert report["objectives"][0]["status"] == "breach"
