"""Unit tests for ring-buffered time series and their window semantics."""

import pytest

from repro.telemetry import Series, SeriesBank


def test_counter_series_totals_and_rate():
    s = Series("msgs", "counter")
    for t, v in ((1.0, 10), (2.0, 20), (3.0, 30)):
        s.append(t, v)
    assert s.total() == 60
    assert s.rate(0.0, 3.0) == pytest.approx(20.0)
    assert s.rate(1.0, 3.0) == pytest.approx(25.0)   # excludes the t=1 point


def test_window_is_half_open_on_the_left():
    """A sample stamped t covers (t - interval, t]: window(w0, w1) takes
    strictly-after w0, up to AND INCLUDING w1 — the sampler boundary."""
    s = Series("x", "counter")
    for t in (1.0, 2.0, 3.0, 4.0):
        s.append(t, 1)
    assert [p.time for p in s.window(1.0, 3.0)] == [2.0, 3.0]
    assert [p.time for p in s.window(0.0, 1.0)] == [1.0]
    assert s.window(3.0, 3.0) == []              # degenerate window: empty
    assert [p.time for p in s.window(3.5, 10.0)] == [4.0]


def test_adjacent_windows_partition_the_points():
    """Consecutive sampler windows (w, w+i] must cover every point exactly
    once — the off-by-one the boundary convention exists to prevent."""
    s = Series("x", "counter")
    times = [0.5 * k for k in range(1, 21)]
    for t in times:
        s.append(t, 1)
    edges = [0.0, 2.5, 5.0, 7.5, 10.0]
    seen = []
    for w0, w1 in zip(edges, edges[1:]):
        seen.extend(p.time for p in s.window(w0, w1))
    assert seen == times


def test_ring_eviction_keeps_the_newest():
    s = Series("x", "gauge", capacity=3)
    for t in range(10):
        s.append(float(t), t)
    assert len(s) == 3
    assert [p.value for p in s.points()] == [7, 8, 9]
    assert s.capacity == 3


def test_time_must_not_go_backwards():
    s = Series("x", "counter")
    s.append(2.0, 1)
    with pytest.raises(ValueError):
        s.append(1.0, 1)


def test_gauge_value_at():
    s = Series("depth", "gauge")
    s.append(1.0, 5.0)
    s.append(3.0, 7.0)
    assert s.value_at(0.5) is None
    assert s.value_at(1.0) == 5.0
    assert s.value_at(2.9) == 5.0
    assert s.value_at(3.0) == 7.0


def test_bad_kind_and_capacity_rejected():
    with pytest.raises(ValueError):
        Series("x", "rate")
    with pytest.raises(ValueError):
        Series("x", "counter", capacity=0)


def test_bank_creates_on_first_use_and_pins_kind():
    bank = SeriesBank(capacity=16)
    s = bank.series("a", "counter")
    assert bank.series("a", "counter") is s
    with pytest.raises(ValueError):
        bank.series("a", "gauge")
    bank.record("b", "gauge", 1.0, 2.0)
    assert bank.get("b").last.value == 2.0
    assert bank.names() == ["a", "b"]
    assert len(bank) == 2
