"""End-to-end tests for ``python -m repro monitor``."""

import json
import os

from repro.telemetry.cli import main as monitor_main


def test_pingpong_quick_passes_and_prints_verdicts(capsys):
    rc = monitor_main(["pingpong", "--quick"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "pingpong dev2dev-direct" in out
    assert "telemetry:" in out
    assert "samples @" in out
    assert "pass" in out


def test_no_telemetry_runs_bare(capsys):
    rc = monitor_main(["pingpong", "--quick", "--no-telemetry"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "pingpong dev2dev-direct" in out
    assert "telemetry:" not in out


def test_verify_non_perturbation(capsys):
    rc = monitor_main(["pingpong", "--quick", "--verify"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "[PASS] non-perturbation" in out


def test_force_breach_exits_1_and_writes_artifacts(tmp_path, capsys):
    out_dir = str(tmp_path / "artifacts")
    rc = monitor_main(["pingpong", "--quick", "--force-breach",
                       "--out", out_dir])
    out = capsys.readouterr().out
    assert rc == 1
    assert "breach" in out

    for name in ("timeseries.json", "metrics.prom", "slo-report.json",
                 "flight-record-0.json"):
        assert os.path.exists(os.path.join(out_dir, name)), name

    with open(os.path.join(out_dir, "slo-report.json")) as fh:
        report = json.load(fh)
    assert any(v["status"] == "breach" for v in report["objectives"])
    assert report["dumps"] >= 1

    with open(os.path.join(out_dir, "flight-record-0.json")) as fh:
        dump = json.load(fh)
    assert dump["reason"].startswith("slo:")
    assert "spans" in dump and "counters" in dump

    with open(os.path.join(out_dir, "timeseries.json")) as fh:
        ts = json.load(fh)
    assert "sim.events" in ts["series"]

    with open(os.path.join(out_dir, "metrics.prom")) as fh:
        prom = fh.read()
    assert "repro_" in prom and "_total" in prom


def test_custom_slo_spec(capsys):
    rc = monitor_main(["pingpong", "--quick", "--no-presets",
                       "--slo", "total:sim.events>=1"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "total:sim.events" in out    # the custom objective was evaluated


def test_faults_breaches_and_reconciles(tmp_path, capsys):
    out_dir = str(tmp_path / "faults")
    rc = monitor_main(["faults", "--quick", "--loss", "0.05",
                       "--reconcile", "--out", out_dir])
    out = capsys.readouterr().out
    # Seeded loss trips the zero-budget fault objectives.
    assert rc == 1
    assert "breach" in out
    assert "[PASS] dump reconciliation" in out
    assert os.path.exists(os.path.join(out_dir, "flight-record-0.json"))
