"""SLO tests: objective parsing, burn-rate verdicts, zero-budget stickiness,
activity gating for lower-bound objectives."""

import pytest

from repro.errors import ConfigError
from repro.obs.metrics import MetricsRegistry
from repro.sim import Simulator
from repro.telemetry import Objective, Sampler, SloMonitor, render_verdicts


def _sampler_with(series_points, hist_values=(), interval=1e-6):
    """A sampler fed deterministically: ``series_points`` maps a series
    name to [(time, value, kind)], ``hist_values`` is [(time, value)] for a
    'lat' histogram.  Returns (sim, sampler, run_until)."""
    sim = Simulator()
    sampler = Sampler(sim, interval=interval)
    state = {}
    names = sorted(series_points)
    counter_names = [n for n in names
                     if all(k == "counter" for _, _, k in series_points[n])]
    if counter_names:
        sampler.watch_counters("", lambda: {n: state.get(n, 0)
                                            for n in counter_names})
    for name in names:
        pts = series_points[name]
        if name in counter_names:
            for t, v, _ in pts:
                sim.call_later(t, (lambda n=name, vv=v:
                                   state.__setitem__(
                                       n, state.get(n, 0) + vv)))
        else:
            sampler.watch_gauge(name, lambda n=name: state.get(n, 0.0))
            for t, v, _ in pts:
                sim.call_later(t, (lambda n=name, vv=v:
                                   state.__setitem__(n, vv)))
    if hist_values:
        registry = MetricsRegistry()
        sampler.watch_registry(registry)
        hist = registry.histogram("lat")
        for t, v in hist_values:
            sim.call_later(t, (lambda vv=v: hist.observe(vv)))
    return sim, sampler


# -- Objective ------------------------------------------------------------------


def test_objective_validation():
    with pytest.raises(ConfigError):
        Objective("bad-op", "m", "rate", "==", 1.0)
    with pytest.raises(ConfigError):
        Objective("bad-kind", "m", "median", "<", 1.0)
    with pytest.raises(ConfigError):
        Objective("bad-budget", "m", "rate", "<", 1.0, budget=1.0)
    Objective("ok", "m", "p99.9", "<", 1.0, budget=0.5)


def test_percentile_kind_parsing():
    assert Objective("x", "m", "p99", "<", 1.0)._percentile_q() == 99.0
    assert Objective("x", "m", "p50", "<", 1.0)._percentile_q() == 50.0
    # pNNN digits are nines shorthand: p999 = 99.9, p9999 = 99.99.
    assert Objective("x", "m", "p999", "<", 1.0)._percentile_q() == \
        pytest.approx(99.9)
    assert Objective("x", "m", "rate", "<", 1.0)._percentile_q() is None


def test_parse_cli_shorthand():
    o = Objective.parse("p99:span.rma.wr-put<10e-6", budget=0.2)
    assert (o.kind, o.metric, o.op, o.threshold, o.budget) == \
        ("p99", "span.rma.wr-put", "<", 10e-6, 0.2)
    o = Objective.parse("rate:engine.messages>=6e6")
    assert (o.kind, o.op, o.threshold) == ("rate", ">=", 6e6)
    with pytest.raises(ConfigError):
        Objective.parse("rate:engine.messages")       # no operator
    with pytest.raises(ConfigError):
        Objective.parse("engine.messages<1")          # no kind
    with pytest.raises(ConfigError):
        Objective.parse("rate:engine.messages<fast")  # bad threshold


# -- live evaluation --------------------------------------------------------------


def test_upper_bound_counts_breaches_per_window():
    sim, sampler = _sampler_with(
        {"drops": [(0.5e-6, 0, "counter"), (1.5e-6, 3, "counter"),
                   (2.5e-6, 0, "counter")]})
    monitor = SloMonitor(Objective("no drops", "drops", "total", "<=", 0.0,
                                   budget=0.0))
    sampler.on_tick.append(monitor.observe)
    sampler.start()
    sim.run(until=3.5e-6)
    assert monitor.evaluated == 3
    assert monitor.breaches == 1
    assert monitor.verdict()["status"] == "breach"


def test_zero_budget_breach_is_sticky():
    """One breach with budget=0 stays 'breach' even after many clean
    windows — there is no window over which a zero budget recovers."""
    sim, sampler = _sampler_with(
        {"drops": [(0.5e-6, 5, "counter")]})
    monitor = SloMonitor(Objective("no drops", "drops", "total", "<=", 0.0,
                                   budget=0.0), short_windows=3)
    sampler.on_tick.append(monitor.observe)
    sampler.start()
    sim.run(until=20.5e-6)
    short, long_ = monitor.burn_rates()
    assert short == 0.0                      # recent windows are clean
    assert monitor.verdict()["status"] == "breach"


def test_nonzero_budget_uses_multi_window_burn():
    sim, sampler = _sampler_with(
        {"depth": [(0.2e-6, 9.0, "gauge")]})
    obj = Objective("depth", "depth", "gauge", "<", 10.0, budget=0.25)
    # All windows pass -> pass.
    monitor = SloMonitor(obj, short_windows=4)
    sampler.on_tick.append(monitor.observe)
    sampler.start()
    sim.run(until=8.5e-6)
    assert monitor.verdict()["status"] == "pass"


def test_burn_rate_pass_warn_breach():
    """10 windows, budget 25%, short window 5: where the breaches land in
    time decides pass vs warn vs breach."""
    def run(breach_ticks):
        sim = Simulator()
        sampler = Sampler(sim, interval=1e-6)
        sampler.watch_gauge(
            "depth",
            lambda: 99.0 if round(sim.now / 1e-6) in breach_ticks else 1.0)
        monitor = SloMonitor(Objective("d", "depth", "gauge", "<", 10.0,
                                       budget=0.25), short_windows=5)
        sampler.on_tick.append(monitor.observe)
        sampler.start()
        sim.run(until=10.5e-6)
        assert monitor.evaluated == 10
        return monitor

    # 2 early breaches: long burn 20% <= budget, recent windows clean.
    early = run({1, 2})
    assert early.breaches == 2
    assert early.verdict()["status"] == "pass"

    # 4 early breaches: long burn 40% over budget, but it recovered
    # (short burn 0%) -> warn, not breach.
    bleed = run({1, 2, 3, 4})
    assert bleed.verdict()["status"] == "warn"

    # 3 breaches at the end: short 60% and long 30% both over -> breach.
    late = run({8, 9, 10})
    assert late.breaches == 3
    assert late.verdict()["status"] == "breach"


def test_lower_bound_skips_idle_windows():
    """rate >= X must not fail during setup/drain windows with zero
    activity: no demand is not zero service."""
    sim, sampler = _sampler_with(
        {"msgs": [(3.5e-6, 100, "counter"), (4.5e-6, 100, "counter")]})
    monitor = SloMonitor(Objective("rate", "msgs", "rate", ">=", 5e7,
                                   budget=0.0))
    sampler.on_tick.append(monitor.observe)
    sampler.start()
    sim.run(until=8.5e-6)
    # Only the two active windows were judged (100 / 1us = 1e8 >= 5e7).
    assert monitor.evaluated == 2
    assert monitor.breaches == 0
    assert monitor.verdict()["status"] == "pass"


def test_upper_bound_still_sees_idle_windows():
    sim, sampler = _sampler_with(
        {"msgs": [(1.5e-6, 100, "counter")]})
    monitor = SloMonitor(Objective("quiet", "msgs", "total", "<=", 10.0,
                                   budget=0.0))
    sampler.on_tick.append(monitor.observe)
    sampler.start()
    sim.run(until=4.5e-6)
    assert monitor.evaluated == 4            # idle windows judged too
    assert monitor.breaches == 1


def test_percentile_objective_over_window_histogram():
    sim, sampler = _sampler_with(
        {}, hist_values=[(0.5e-6, 1e-6), (1.5e-6, 50e-6), (2.5e-6, 2e-6)])
    monitor = SloMonitor(Objective("tail", "lat", "p99", "<", 10e-6,
                                   budget=0.0))
    sampler.on_tick.append(monitor.observe)
    sampler.start()
    sim.run(until=3.5e-6)
    assert monitor.evaluated == 3
    assert monitor.breaches == 1             # only the 50us window
    assert monitor.verdict()["status"] == "breach"


def test_no_data_verdict_and_render():
    monitor = SloMonitor(Objective("ghost", "nothing", "rate", "<", 1.0))
    v = monitor.verdict()
    assert v["status"] == "no-data"
    table = render_verdicts([v])
    assert "ghost" in table and "no-data" in table
