"""Unit tests for the interval algebra in repro.obs.query."""

import pytest

from repro.obs import clip, coverage, merge, overlap, phase_windows, span_intervals, subtract
from repro.obs.cli import run_traced_pingpong


def test_merge_unions_and_sorts():
    assert merge([(3.0, 4.0), (1.0, 2.0), (1.5, 2.5)]) == [(1.0, 2.5), (3.0, 4.0)]


def test_merge_drops_zero_length_and_joins_touching():
    assert merge([(1.0, 1.0), (1.0, 2.0), (2.0, 3.0)]) == [(1.0, 3.0)]


def test_clip_restricts_to_window():
    ivs = [(0.0, 2.0), (3.0, 5.0), (6.0, 7.0)]
    assert clip(ivs, (1.0, 6.0)) == [(1.0, 2.0), (3.0, 5.0)]


def test_subtract_removes_covered_time():
    windows = [(0.0, 10.0)]
    cover = [(2.0, 3.0), (5.0, 7.0)]
    assert subtract(windows, cover) == [(0.0, 2.0), (3.0, 5.0), (7.0, 10.0)]
    # Removing the remainder too leaves nothing.
    assert subtract(subtract(windows, cover), subtract(windows, cover)) == []


def test_subtract_cover_overhanging_both_ends():
    assert subtract([(1.0, 2.0)], [(0.0, 3.0)]) == []
    assert subtract([(1.0, 4.0)], [(0.0, 2.0), (3.0, 5.0)]) == [(2.0, 3.0)]


def test_coverage_totals_disjoint_intervals():
    assert coverage([(0.0, 1.0), (2.0, 4.5)]) == pytest.approx(3.5)
    assert coverage([]) == 0.0


def test_overlap_is_merged_intersection():
    ivs = [(0.0, 2.0), (2.5, 3.5)]
    windows = [(1.0, 3.0), (3.25, 5.0)]
    assert overlap(ivs, windows) == [(1.0, 2.0), (2.5, 3.0), (3.25, 3.5)]
    # Touching windows merge back into one piece.
    assert overlap(ivs, [(1.0, 3.0), (3.0, 5.0)]) == [(1.0, 2.0), (2.5, 3.5)]


def test_partition_identity_on_a_real_trace():
    """clip + subtract must partition a window exactly: covered + remainder
    == window, on real span data with thousands of intervals."""
    tracer, _ = run_traced_pingpong("extoll", "dev2dev-direct", 64, 4, 1)
    polling = phase_windows(tracer, "polling")
    pcie = merge(span_intervals(tracer, category="pcie"))
    inside = overlap(pcie, polling)
    rest = subtract(polling, inside)
    assert coverage(inside) + coverage(rest) == pytest.approx(
        coverage(polling), rel=1e-12)


def test_span_intervals_filters():
    tracer, _ = run_traced_pingpong("extoll", "dev2dev-direct", 64, 3, 1)
    all_phase = span_intervals(tracer, category="phase")
    wrgen = span_intervals(tracer, category="phase", name="wr-generation")
    ping_only = span_intervals(tracer, category="phase", track="ping")
    assert len(wrgen) == 3
    assert len(all_phase) >= len(wrgen)
    assert all_phase == ping_only  # pingpong phases live on the ping track
    assert wrgen == sorted(wrgen)
    big = span_intervals(tracer, category="pcie",
                         predicate=lambda s: s.duration > 0)
    assert all(e > b for b, e in big)


# -- boundary semantics shared with the telemetry sampler ---------------------------

def test_clip_at_exact_window_edges_drops_degenerate_slivers():
    """An interval that only TOUCHES a window edge contributes zero time
    and must vanish, not survive as a (x, x) sliver."""
    assert clip([(1.0, 2.0)], (2.0, 3.0)) == []
    assert clip([(2.0, 3.0)], (1.0, 2.0)) == []
    assert clip([(1.0, 2.0)], (1.0, 2.0)) == [(1.0, 2.0)]
    assert clip([(1.0, 2.0)], (2.0, 2.0)) == []


def test_adjacent_windows_partition_coverage_exactly():
    """Clipping to consecutive sampler windows never double-counts or
    loses the time of spans crossing (or ending exactly on) window edges —
    the off-by-one this suite pins down."""
    spans = [(0.5, 1.5), (2.0, 3.0), (3.0, 4.0), (4.25, 4.75), (5.0, 7.0)]
    edges = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]
    per_window = [coverage(clip(spans, (w0, w1)))
                  for w0, w1 in zip(edges, edges[1:])]
    assert sum(per_window) == pytest.approx(coverage(merge(spans)))
    assert per_window == pytest.approx([0.5, 0.5, 1.0, 1.0, 0.5, 1.0, 1.0])


def test_span_ending_on_a_window_edge_belongs_left_of_it():
    """Interval algebra uses half-open [begin, end): a span ending at the
    edge is entirely in the earlier window, mirroring the sampler's
    (w0, w1] counter convention (one owner per boundary event)."""
    spans = [(1.0, 2.0)]
    assert coverage(clip(spans, (0.0, 2.0))) == pytest.approx(1.0)
    assert coverage(clip(spans, (2.0, 4.0))) == 0.0


# -- zero-width spans and identical-timestamp ordering ------------------------------

def test_merge_drops_zero_width_everywhere():
    """Zero-width [x, x) intervals contribute nothing — standalone, glued
    to a real interval's edge, or inside one."""
    assert merge([(1.0, 1.0)]) == []
    assert merge([(1.0, 1.0), (2.0, 2.0)]) == []
    assert merge([(1.0, 2.0), (1.0, 1.0), (2.0, 2.0), (1.5, 1.5)]) \
        == [(1.0, 2.0)]
    assert coverage(merge([(1.0, 1.0), (1.0, 2.0)])) == pytest.approx(1.0)


def test_merge_identical_timestamps_is_order_independent():
    """Intervals sharing begin (or begin == another's end) must merge to
    the same disjoint list no matter the input order."""
    import itertools
    intervals = [(1.0, 3.0), (1.0, 2.0), (1.0, 1.0), (3.0, 4.0), (0.5, 1.0)]
    expect = merge(intervals)
    assert expect == [(0.5, 4.0)]
    for perm in itertools.permutations(intervals):
        assert merge(perm) == expect


def test_merge_same_begin_takes_longest_end():
    assert merge([(1.0, 1.5), (1.0, 4.0), (1.0, 2.0)]) == [(1.0, 4.0)]
    assert merge([(1.0, 4.0), (1.0, 1.0)]) == [(1.0, 4.0)]


def test_subtract_with_zero_width_windows_and_cover():
    """A zero-width window yields nothing; a zero-width cover removes
    nothing (it would otherwise split a window into a degenerate pair)."""
    assert subtract([(1.0, 1.0)], [(0.0, 5.0)]) == []
    assert subtract([(1.0, 1.0)], []) == []
    # Zero-width cover entries are not produced by merge(), but subtract
    # must still never emit degenerate slivers around them.
    out = subtract([(0.0, 2.0)], [(1.0, 1.0)])
    assert coverage(out) == pytest.approx(2.0)
    assert all(e > b for b, e in out)


def test_overlap_zero_width_window_contributes_nothing():
    assert overlap([(0.0, 10.0)], [(5.0, 5.0)]) == []
    assert overlap([(3.0, 3.0)], [(0.0, 10.0)]) == []


def test_span_intervals_sorts_identical_begin_deterministically():
    """Spans opening at the same instant (common: a zero-cost phase next
    to a real one) sort by (begin, end) — stable across runs, zero-width
    first."""
    class _T:
        pass
    class _S:
        def __init__(self, b, e):
            self.category, self.name, self.track = "c", "n", "t"
            self.begin, self.end = b, e
    t = _T()
    t.spans = [_S(2.0, 3.0), _S(2.0, 2.0), _S(1.0, 1.0), _S(2.0, 2.5)]
    got = span_intervals(t)
    assert got == [(1.0, 1.0), (2.0, 2.0), (2.0, 2.5), (2.0, 3.0)]
    # and the pipeline end-state ignores the zero-width ones entirely
    assert merge(got) == [(2.0, 3.0)]
