"""Unit tests for the interval algebra in repro.obs.query."""

import pytest

from repro.obs import clip, coverage, merge, overlap, phase_windows, span_intervals, subtract
from repro.obs.cli import run_traced_pingpong


def test_merge_unions_and_sorts():
    assert merge([(3.0, 4.0), (1.0, 2.0), (1.5, 2.5)]) == [(1.0, 2.5), (3.0, 4.0)]


def test_merge_drops_zero_length_and_joins_touching():
    assert merge([(1.0, 1.0), (1.0, 2.0), (2.0, 3.0)]) == [(1.0, 3.0)]


def test_clip_restricts_to_window():
    ivs = [(0.0, 2.0), (3.0, 5.0), (6.0, 7.0)]
    assert clip(ivs, (1.0, 6.0)) == [(1.0, 2.0), (3.0, 5.0)]


def test_subtract_removes_covered_time():
    windows = [(0.0, 10.0)]
    cover = [(2.0, 3.0), (5.0, 7.0)]
    assert subtract(windows, cover) == [(0.0, 2.0), (3.0, 5.0), (7.0, 10.0)]
    # Removing the remainder too leaves nothing.
    assert subtract(subtract(windows, cover), subtract(windows, cover)) == []


def test_subtract_cover_overhanging_both_ends():
    assert subtract([(1.0, 2.0)], [(0.0, 3.0)]) == []
    assert subtract([(1.0, 4.0)], [(0.0, 2.0), (3.0, 5.0)]) == [(2.0, 3.0)]


def test_coverage_totals_disjoint_intervals():
    assert coverage([(0.0, 1.0), (2.0, 4.5)]) == pytest.approx(3.5)
    assert coverage([]) == 0.0


def test_overlap_is_merged_intersection():
    ivs = [(0.0, 2.0), (2.5, 3.5)]
    windows = [(1.0, 3.0), (3.25, 5.0)]
    assert overlap(ivs, windows) == [(1.0, 2.0), (2.5, 3.0), (3.25, 3.5)]
    # Touching windows merge back into one piece.
    assert overlap(ivs, [(1.0, 3.0), (3.0, 5.0)]) == [(1.0, 2.0), (2.5, 3.5)]


def test_partition_identity_on_a_real_trace():
    """clip + subtract must partition a window exactly: covered + remainder
    == window, on real span data with thousands of intervals."""
    tracer, _ = run_traced_pingpong("extoll", "dev2dev-direct", 64, 4, 1)
    polling = phase_windows(tracer, "polling")
    pcie = merge(span_intervals(tracer, category="pcie"))
    inside = overlap(pcie, polling)
    rest = subtract(polling, inside)
    assert coverage(inside) + coverage(rest) == pytest.approx(
        coverage(polling), rel=1e-12)


def test_span_intervals_filters():
    tracer, _ = run_traced_pingpong("extoll", "dev2dev-direct", 64, 3, 1)
    all_phase = span_intervals(tracer, category="phase")
    wrgen = span_intervals(tracer, category="phase", name="wr-generation")
    ping_only = span_intervals(tracer, category="phase", track="ping")
    assert len(wrgen) == 3
    assert len(all_phase) >= len(wrgen)
    assert all_phase == ping_only  # pingpong phases live on the ping track
    assert wrgen == sorted(wrgen)
    big = span_intervals(tracer, category="pcie",
                         predicate=lambda s: s.duration > 0)
    assert all(e > b for b, e in big)
