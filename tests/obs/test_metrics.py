"""Unit tests for counters, histograms, and the registry."""

import pytest

from repro.obs import MetricsRegistry
from repro.sim import NULL_METRICS


def test_counter_increments():
    reg = MetricsRegistry()
    c = reg.counter("pcie.tlps")
    c.inc()
    c.inc(3)
    assert c.value == 4
    assert reg.counter("pcie.tlps") is c  # same instance on re-access


def test_histogram_summary_stats():
    reg = MetricsRegistry()
    h = reg.histogram("polls")
    for v in (1.0, 2.0, 3.0):
        h.observe(v)
    assert h.count == 3
    assert h.mean == pytest.approx(2.0)
    assert h.min == 1.0 and h.max == 3.0


def test_histogram_power_of_two_buckets():
    h = MetricsRegistry().histogram("x")
    # bucket e holds 2**(e-1) < value <= 2**e; exact powers land in their
    # own bucket, one above lands in the next.
    h.observe(4.0)      # e=2
    h.observe(4.0001)   # e=3
    h.observe(0.25)     # e=-2
    h.observe(0.0)      # non-positive: e=0 by convention
    assert h.buckets == {2: 1, 3: 1, -2: 1, 0: 1}


def test_snapshot_and_render():
    reg = MetricsRegistry()
    reg.counter("a").inc(7)
    reg.histogram("b").observe(2.0)
    snap = reg.snapshot()
    assert snap["a"] == 7
    assert snap["b"]["count"] == 1 and snap["b"]["mean"] == pytest.approx(2.0)
    text = reg.render()
    assert "a" in text and "7" in text and "n=1" in text
    reg.clear()
    assert reg.snapshot() == {}
    assert reg.render() == "(no metrics recorded)"


def test_null_metrics_swallow_everything():
    NULL_METRICS.counter("x").inc(10)
    NULL_METRICS.histogram("y").observe(1.0)
    assert NULL_METRICS.snapshot() == {}
