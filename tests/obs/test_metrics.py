"""Unit tests for counters, histograms, and the registry."""

import pytest

from repro.obs import MetricsRegistry
from repro.sim import NULL_METRICS


def test_counter_increments():
    reg = MetricsRegistry()
    c = reg.counter("pcie.tlps")
    c.inc()
    c.inc(3)
    assert c.value == 4
    assert reg.counter("pcie.tlps") is c  # same instance on re-access


def test_histogram_summary_stats():
    reg = MetricsRegistry()
    h = reg.histogram("polls")
    for v in (1.0, 2.0, 3.0):
        h.observe(v)
    assert h.count == 3
    assert h.mean == pytest.approx(2.0)
    assert h.min == 1.0 and h.max == 3.0


def test_histogram_power_of_two_buckets():
    h = MetricsRegistry().histogram("x")
    # bucket e holds 2**(e-1) < value <= 2**e; exact powers land in their
    # own bucket, one above lands in the next.
    h.observe(4.0)      # e=2
    h.observe(4.0001)   # e=3
    h.observe(0.25)     # e=-2
    h.observe(0.0)      # non-positive: e=0 by convention
    assert h.buckets == {2: 1, 3: 1, -2: 1, 0: 1}


def test_snapshot_and_render():
    reg = MetricsRegistry()
    reg.counter("a").inc(7)
    reg.histogram("b").observe(2.0)
    snap = reg.snapshot()
    assert snap["a"] == 7
    assert snap["b"]["count"] == 1 and snap["b"]["mean"] == pytest.approx(2.0)
    text = reg.render()
    assert "a" in text and "7" in text and "n=1" in text
    reg.clear()
    assert reg.snapshot() == {}
    assert reg.render() == "(no metrics recorded)"


def test_null_metrics_swallow_everything():
    NULL_METRICS.counter("x").inc(10)
    NULL_METRICS.histogram("y").observe(1.0)
    assert NULL_METRICS.snapshot() == {}


def test_histogram_percentile_from_buckets():
    h = MetricsRegistry().histogram("lat")
    for v in (1.0, 2.0, 4.0, 8.0, 16.0):
        h.observe(v)
    assert h.percentile(0) == 1.0
    assert h.percentile(100) == 16.0
    # p50 falls in the middle bucket; the octave estimate stays within it.
    assert 2.0 <= h.percentile(50) <= 4.0
    # Estimates are clamped to the observed range and monotone in q.
    qs = [h.percentile(q) for q in (10, 25, 50, 75, 90, 99)]
    assert qs == sorted(qs)
    assert all(1.0 <= v <= 16.0 for v in qs)


def test_histogram_percentile_single_sample_and_bounds():
    h = MetricsRegistry().histogram("one")
    h.observe(3.0)
    for q in (0, 50, 99, 100):
        assert h.percentile(q) == 3.0
    with pytest.raises(ValueError):
        h.percentile(101)
    with pytest.raises(ValueError):
        h.percentile(-1)


def test_empty_histogram_is_json_safe():
    """An empty histogram must never leak min=inf / max=-inf into dumps."""
    import json

    reg = MetricsRegistry()
    reg.histogram("never-observed")
    snap = reg.snapshot()
    assert snap["never-observed"] == {
        "count": 0, "sum": 0.0, "min": None, "max": None, "mean": None,
        "p50": None, "p90": None, "p99": None}
    text = json.dumps(snap)  # would raise / emit Infinity otherwise
    assert "Infinity" not in text
    assert h_is_empty_rendered(reg)
    assert h_percentile_none(reg)


def h_is_empty_rendered(reg):
    return "n=0" in reg.render()


def h_percentile_none(reg):
    return reg.histogram("never-observed").percentile(99) is None


def test_snapshot_includes_percentiles():
    reg = MetricsRegistry()
    h = reg.histogram("polls")
    for v in (1.0, 1.0, 1.0, 1.0, 50.0):
        h.observe(v)
    snap = reg.snapshot()["polls"]
    assert snap["p50"] == 1.0
    assert snap["p99"] == pytest.approx(50.0, rel=0.5)
    assert snap["p50"] <= snap["p90"] <= snap["p99"]


def test_registry_diff_counters_and_histograms():
    reg = MetricsRegistry()
    reg.counter("tlps").inc(5)
    reg.histogram("polls").observe(10.0)
    before = reg.snapshot()

    reg.counter("tlps").inc(3)
    reg.counter("fresh").inc(2)            # created after the snapshot
    reg.histogram("polls").observe(20.0)
    reg.histogram("polls").observe(30.0)
    reg.timeline("link").record(1.0, 0.0)

    d = reg.diff(before)
    assert d["tlps"] == 3
    assert d["fresh"] == 2
    assert d["polls"]["count"] == 2
    assert d["polls"]["sum"] == pytest.approx(50.0)
    assert d["polls"]["mean"] == pytest.approx(25.0)
    assert d["link"]["points"] == [[1.0, 0.0]]
    # No activity since: all deltas go to zero/None.
    d2 = reg.diff(reg.snapshot())
    assert d2["tlps"] == 0 and d2["fresh"] == 0
    assert d2["polls"] == {"count": 0, "sum": pytest.approx(0.0), "mean": None}
    assert d2["link"]["points"] == []


def test_diff_supports_shared_registry_across_runs():
    """The bench-harness idiom: one registry shared by sequential runs,
    per-run deltas via snapshot/diff, no clear() in between."""
    reg = MetricsRegistry()
    totals = []
    for run in range(3):
        before = reg.snapshot()
        reg.counter("net.packets").inc(10 * (run + 1))
        totals.append(reg.diff(before)["net.packets"])
    assert totals == [10, 20, 30]
    assert reg.counter("net.packets").value == 60


# -- windowed views (telemetry sampler substrate) -----------------------------------

def test_histogram_state_delta_roundtrip():
    from repro.obs.metrics import Histogram

    h = Histogram("lat")
    for v in (1.0, 2.0, 4.0):
        h.observe(v)
    earlier = h.state()
    for v in (8.0, 9.0):
        h.observe(v)

    window = Histogram.delta("lat", h.state(), earlier)
    assert window.count == 2
    assert window.total == pytest.approx(17.0)
    assert window.mean == pytest.approx(8.5)
    # Both samples sit in the (4, 8] and (8, 16] octaves.
    assert window.percentile(100.0) == 9.0
    # Delta with no earlier state reproduces the whole histogram.
    whole = Histogram.delta("lat", h.state())
    assert whole.count == h.count
    assert whole.percentile(50.0) == pytest.approx(h.percentile(50.0))


def test_histogram_delta_empty_window_and_percentile_edges():
    from repro.obs.metrics import Histogram

    h = Histogram("lat")
    h.observe(10.0)
    s = h.state()
    empty = Histogram.delta("lat", s, s)      # adjacent sampler ticks,
    assert empty.count == 0                   # nothing observed between
    assert empty.percentile(50.0) is None

    h.observe(20.0)
    single = Histogram.delta("lat", h.state(), s)
    assert single.count == 1
    # Single-sample window: every q returns that octave's clamped sample.
    assert single.percentile(0.0) == single.percentile(99.0) \
        == single.percentile(100.0)


def test_histogram_delta_rejects_non_prefix_state():
    from repro.obs.metrics import Histogram

    h = Histogram("lat")
    h.observe(10.0)
    h.observe(10.0)
    later = h.state()
    h2 = Histogram("lat")
    h2.observe(10.0)
    with pytest.raises(ValueError):
        Histogram.delta("lat", h2.state(), later)   # count went backwards


def test_histogram_delta_skips_stale_zero_count_buckets():
    from repro.obs.metrics import Histogram

    h = Histogram("lat")
    h.observe(1.0)       # occupies the low octave...
    earlier = h.state()
    h.observe(100.0)     # ...window only holds the high octave
    h.observe(100.0)
    window = Histogram.delta("lat", h.state(), earlier)
    assert window.count == 2
    # The low octave's delta is zero, so it is absent from the window; the
    # percentile walk must only see the (64, 128] octave.
    assert sorted(window.buckets) == [7]
    assert 64.0 <= window.percentile(99.0) <= 100.0


def test_diff_partitions_counts_across_sampler_windows():
    """The sampler's boundary invariant: consecutive snapshot()/diff()
    windows attribute every count to exactly one window — including counts
    landing exactly ON a snapshot boundary (they belong to the window that
    snapshots after them)."""
    reg = MetricsRegistry()
    windows = []
    expect = [3, 0, 5]
    before = reg.snapshot()
    for n in expect:
        reg.counter("ops").inc(n) if n else None
        snap = reg.snapshot()
        windows.append(reg.diff(before)["ops"])
        before = snap
    assert windows == expect
    assert sum(windows) == reg.counter("ops").value


def test_diff_histogram_windows_partition_observations():
    reg = MetricsRegistry()
    h = reg.histogram("polls")
    per_window = [(1.0, 2.0), (), (4.0, 8.0, 16.0)]
    before = reg.snapshot()
    counts = []
    for values in per_window:
        for v in values:
            h.observe(v)
        snap = reg.snapshot()
        counts.append(reg.diff(before)["polls"]["count"])
        before = snap
    assert counts == [2, 0, 3]
    assert sum(counts) == h.count
