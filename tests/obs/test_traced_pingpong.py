"""End-to-end: trace a ping-pong run, export it, reconcile the phases.

This is the tentpole acceptance check as a test: a traced dev2dev-direct
64 B ping-pong must yield a structurally valid Chrome trace whose summed
WR-generation / polling span durations match the driver's own
``LatencyPoint.post_time`` / ``poll_time`` within 1%.
"""

import json

import pytest

from repro.obs import chrome_trace_events, reconcile_with_point, validate_chrome_trace
from repro.obs.cli import main as trace_main, run_traced_pingpong

ITER, WARMUP = 8, 2


@pytest.fixture(scope="module")
def traced_direct():
    return run_traced_pingpong("extoll", "dev2dev-direct", 64, ITER, WARMUP)


def test_phases_reconcile_within_one_percent(traced_direct):
    tracer, point = traced_direct
    res = reconcile_with_point(tracer, point, ITER)
    assert res["ok"], res
    for phase in ("wr-generation", "polling"):
        assert res["phases"][phase]["rel_err"] <= 0.01


def test_phase_span_count_matches_measured_iterations(traced_direct):
    tracer, _ = traced_direct
    # One span per measured iteration, warmup excluded.
    assert len(tracer.spans_named("wr-generation")) == ITER
    assert len(tracer.spans_named("polling")) == ITER


def test_trace_covers_every_layer(traced_direct):
    tracer, _ = traced_direct
    cats = {s.category for s in tracer.spans}
    # GPU posts the WR, the NIC requester/completer move it, PCIe and the
    # wire carry it: the timeline must show all of them.
    assert {"phase", "bench", "rma", "rma.api", "pcie", "net", "dma"} <= cats
    # The benchmark drivers must close every span they open; hardware spans
    # may legitimately still be in flight when the simulation completes
    # (e.g. the pong side's final MWr TLP), and those are simply not
    # exported.
    assert not [s for s in tracer.open_spans()
                if s.category in ("phase", "bench", "rma.api", "ib.api")]


def test_chrome_export_is_structurally_valid(traced_direct):
    tracer, _ = traced_direct
    events = chrome_trace_events(tracer)
    validate_chrome_trace(events)
    ph = [e["ph"] for e in events]
    assert ph.count("B") == ph.count("E") == len(tracer.spans)
    assert ph.count("i") == len(tracer.instants)
    per_tid_last = {}
    for e in events:
        if e["ph"] == "M":
            continue
        assert e["ts"] >= per_tid_last.get(e["tid"], 0.0)
        per_tid_last[e["tid"]] = e["ts"]


def test_metrics_capture_wire_traffic(traced_direct):
    tracer, _ = traced_direct
    snap = tracer.metrics.snapshot()
    assert snap["rma.puts"] > 0
    assert snap["net.wire_bytes"] > 0
    assert snap["pcie.wire_bytes"] > 0


def test_trace_cli_writes_valid_json(tmp_path, capsys):
    out = tmp_path / "trace.json"
    rc = trace_main(["--mode", "dev2dev-direct", "--size", "64",
                     "--iterations", "6", "--warmup", "1",
                     "--out", str(out), "--timeline", "--timeline-limit", "5"])
    assert rc == 0
    doc = json.loads(out.read_text())
    validate_chrome_trace(doc["traceEvents"])
    text = capsys.readouterr().out
    assert "reconcile wr-generation" in text and "OK" in text


def test_trace_cli_ib_fabric(tmp_path):
    out = tmp_path / "trace.json"
    rc = trace_main(["--fabric", "ib", "--mode", "dev2dev-bufOnHost",
                     "--size", "64", "--iterations", "6", "--warmup", "1",
                     "--out", str(out)])
    assert rc == 0
    doc = json.loads(out.read_text())
    validate_chrome_trace(doc["traceEvents"])
    names = {e["name"] for e in doc["traceEvents"]}
    assert "doorbell" in names and "wqe-exec" in names


def test_trace_cli_rejects_unknown_mode():
    with pytest.raises(SystemExit):
        trace_main(["--mode", "no-such-mode", "--out", "/dev/null"])


def test_category_filter_restricts_trace():
    tracer, _ = run_traced_pingpong("extoll", "dev2dev-direct", 64, 4, 1)
    from repro.obs import SpanTracer
    filtered = SpanTracer(categories=["phase"])
    filtered, _ = run_traced_pingpong("extoll", "dev2dev-direct", 64, 4, 1,
                                      filtered)
    assert {s.category for s in filtered.spans} == {"phase"}
    assert len(filtered.spans) < len(tracer.spans)
