"""Unit tests for the hierarchical span tracer."""

import pytest

from repro.obs import NULL_SPAN, SpanTracer
from repro.sim import Simulator


class FakeClock:
    """Minimal stand-in for a simulator: just a settable ``now``."""

    def __init__(self):
        self.now = 0.0


def test_span_records_begin_end_and_duration():
    clock = FakeClock()
    trc = SpanTracer(sim=clock)
    span = trc.begin("cat", "work", track="t0", bytes=64)
    clock.now = 2.5
    span.end(status="done")
    assert len(trc.spans) == 1
    rec = trc.spans[0]
    assert rec.begin == 0.0 and rec.end == 2.5
    assert rec.duration == pytest.approx(2.5)
    assert rec.attrs == {"bytes": 64, "status": "done"}
    assert rec.track == "t0" and rec.depth == 0 and rec.parent_id is None


def test_span_nesting_sets_parent_and_depth():
    clock = FakeClock()
    trc = SpanTracer(sim=clock)
    outer = trc.begin("cat", "outer", track="t")
    clock.now = 1.0
    inner = trc.begin("cat", "inner", track="t")
    clock.now = 2.0
    inner.end()
    clock.now = 3.0
    outer.end()

    inner_rec = trc.spans_named("inner")[0]
    outer_rec = trc.spans_named("outer")[0]
    assert inner_rec.parent_id == outer_rec.span_id
    assert inner_rec.depth == 1 and outer_rec.depth == 0
    assert trc.children_of(outer_rec) == [inner_rec]


def test_tracks_are_independent_stacks():
    clock = FakeClock()
    trc = SpanTracer(sim=clock)
    a = trc.begin("cat", "a", track="row0")
    b = trc.begin("cat", "b", track="row1")
    # b is NOT a child of a — different track, different stack.
    assert b.parent_id is None and b.depth == 0
    b.end()
    a.end()
    assert trc.tracks() == ["row0", "row1"]


def test_category_filter_returns_null_span_and_reparents():
    clock = FakeClock()
    trc = SpanTracer(sim=clock, categories={"keep"})
    outer = trc.begin("keep", "outer")
    skipped = trc.begin("drop", "skipped")
    assert skipped is NULL_SPAN
    inner = trc.begin("keep", "inner")
    # The filtered-out middle span never joined the stack, so ``inner``
    # parents to ``outer`` directly.
    assert inner.parent_id == outer.span_id
    inner.end()
    skipped.end()  # no-op
    outer.end()
    assert [s.name for s in trc.spans] == ["inner", "outer"]


def test_context_manager_records_error_attr():
    trc = SpanTracer(sim=FakeClock())
    with pytest.raises(RuntimeError):
        with trc.begin("cat", "failing"):
            raise RuntimeError("boom")
    rec = trc.spans[0]
    assert "RuntimeError" in rec.attrs["error"]


def test_open_spans_reports_leaks_and_clear_resets():
    trc = SpanTracer(sim=FakeClock())
    span = trc.begin("cat", "leaked")
    assert trc.open_spans() == [span]
    trc.clear()
    assert trc.open_spans() == []
    assert trc.spans == [] and trc.instants == []


def test_max_spans_drops_beyond_cap():
    clock = FakeClock()
    trc = SpanTracer(sim=clock, max_spans=2)
    for i in range(4):
        trc.begin("cat", f"s{i}").end()
        trc.instant("cat", f"i{i}")
    assert len(trc.spans) == 2
    assert len(trc.instants) == 2
    assert trc.dropped == 4


def test_window_filter_applies_to_spans_and_instants():
    clock = FakeClock()
    trc = SpanTracer(sim=clock, min_time=1.0, max_time=3.0)
    early = trc.begin("cat", "ends-too-early")
    clock.now = 0.5
    early.end()                      # ends before min_time: filtered
    span = trc.begin("cat", "in-window")
    clock.now = 2.0
    span.end()
    trc.instant("cat", "in")         # t=2.0: kept
    clock.now = 3.5
    late = trc.begin("cat", "begins-too-late")
    clock.now = 4.0
    late.end()                       # begins after max_time: filtered
    trc.instant("cat", "out")        # t=4.0: filtered
    assert [s.name for s in trc.spans] == ["in-window"]
    assert [i.name for i in trc.instants] == ["in"]


def test_rebind_rebases_clock_monotonically():
    sim1, sim2 = Simulator(), Simulator()
    trc = SpanTracer()
    trc.bind(sim1)

    def body(sim, label):
        span = trc.begin("cat", label)
        yield sim.timeout(5.0)
        span.end()

    sim1.process(body(sim1, "first"))
    sim1.run()
    trc.bind(sim2)  # sim2's clock restarts at 0; tracer must not go backwards
    sim2.process(body(sim2, "second"))
    sim2.run()

    first, second = trc.spans_named("first")[0], trc.spans_named("second")[0]
    assert first.end == pytest.approx(5.0)
    assert second.begin >= first.end
    assert second.duration == pytest.approx(5.0)


def test_stale_span_from_previous_binding_is_dropped():
    # A span begun under one simulator whose ``end`` only fires after the
    # tracer moved on (e.g. a ``finally`` run when the dead simulator's
    # generators are collected) must not be recorded: its end would be
    # stamped with the new simulator's clock and overlap live spans.
    sim1, sim2 = Simulator(), Simulator()
    trc = SpanTracer()
    trc.bind(sim1)
    stale = trc.begin("pcie", "in-flight", track="link.up")
    trc.bind(sim2)
    live = trc.begin("pcie", "fresh", track="link.up")
    stale.end()  # late end from the dead run: ignored
    live.end()
    assert [s.name for s in trc.spans] == ["fresh"]
    assert live.parent_id is None  # rebind also cleared the stale stack


def test_simulator_installs_tracer_and_null_by_default():
    sim = Simulator()
    assert not sim.tracer.enabled  # default: the inert null tracer
    trc = SpanTracer()
    sim2 = Simulator(tracer=trc)
    assert sim2.tracer is trc and trc.sim is sim2


def test_sink_receives_span_records():
    seen = []
    trc = SpanTracer(sim=FakeClock(), sink=seen.append)
    trc.begin("cat", "s").end()
    trc.instant("cat", "i")
    assert [type(r).__name__ for r in seen] == ["SpanRecord", "InstantRecord"]
