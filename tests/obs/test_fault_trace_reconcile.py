"""Chrome-trace <-> counter reconciliation with the reliability layer armed.

Bridges the observability and fault-injection test suites: run a lossy
collective with ``reliable=True`` channels, a ``FaultPlan`` attached, and a
``SpanTracer`` installed, then require the three books to balance:

* ``fault/retransmit`` instants in the trace == the reliability engines'
  retransmit counters == the ``faults.retransmits`` metric,
* ``fault/drop`` (+ ``corrupt``/``delay``) instants == the injector's
  per-link ``fault.<link>.<what>`` counters == its Python-side totals,
* the exported Chrome trace stays structurally valid with all of the
  above embedded.

The run itself must still be *correct* — reliability recovers every drop.
"""

import json

import pytest

from repro.analysis.faults import reconcile_retransmits, run_chaos_point
from repro.collectives.comm import CollectiveMode
from repro.obs import (
    SpanTracer,
    chrome_trace_events,
    validate_chrome_trace,
    write_chrome_trace,
)

LOSS = 0.05


@pytest.fixture(scope="module")
def lossy_run():
    tracer = SpanTracer()
    point, comm, injector = run_chaos_point(
        CollectiveMode.POLL_ON_GPU, 64, loss=LOSS, tracer=tracer)
    return tracer, point, comm, injector


def _instants(tracer, name):
    return [i for i in tracer.instants
            if i.category == "fault" and i.name == name]


def test_run_is_correct_and_actually_faulty(lossy_run):
    _, point, _, injector = lossy_run
    assert point.correct
    assert injector.drops > 0, "5% loss produced no drops — test is vacuous"
    assert point.retransmits > 0


def test_retransmit_instants_match_engine_counters(lossy_run):
    tracer, point, comm, _ = lossy_run
    recon = reconcile_retransmits(tracer, comm)
    assert recon["ok"], recon
    assert recon["traced"] == point.retransmits
    assert tracer.metrics.snapshot()["faults.retransmits"] == point.retransmits


def test_drop_instants_match_per_link_counters(lossy_run):
    tracer, _, _, injector = lossy_run
    snap = tracer.metrics.snapshot()
    for what, total in (("drop:loss", injector.drops),
                        ("corrupt", injector.corruptions)):
        traced = len(_instants(tracer, what))
        counted = sum(v for k, v in snap.items()
                      if k.startswith("fault.") and k.endswith(f".{what}")
                      and isinstance(v, int))
        assert traced == counted == total


def test_chrome_trace_valid_with_faults_embedded(lossy_run, tmp_path):
    tracer, _, _, _ = lossy_run
    events = chrome_trace_events(tracer)
    validate_chrome_trace(events)
    path = tmp_path / "lossy.json"
    write_chrome_trace(tracer, str(path))
    doc = json.loads(path.read_text())
    fault_events = [e for e in doc["traceEvents"]
                    if e.get("cat") == "fault"]
    assert fault_events, "fault instants missing from the exported trace"
    # The embedded metrics snapshot must agree with the live registry.
    assert doc["otherData"]["metrics"]["faults.retransmits"] == \
        tracer.metrics.snapshot()["faults.retransmits"]


def test_snapshot_diff_isolates_second_run(lossy_run):
    """A second lossy run on the same tracer diffs cleanly: the per-run
    retransmit delta matches the second run's own count (the registry is
    shared and never reset)."""
    tracer, _, _, _ = lossy_run
    before = tracer.metrics.snapshot()
    point2, comm2, _ = run_chaos_point(
        CollectiveMode.POLL_ON_GPU, 64, loss=LOSS, seed=7, plan_seed=7,
        tracer=tracer)
    delta = tracer.metrics.diff(before)
    assert point2.correct
    assert delta["faults.retransmits"] == point2.retransmits
    assert tracer.metrics.snapshot()["faults.retransmits"] == \
        before["faults.retransmits"] + point2.retransmits
