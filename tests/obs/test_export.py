"""Unit tests for the Chrome-trace / timeline / breakdown exporters."""

import io
import json

import pytest

from repro.core import LatencyPoint
from repro.obs import (
    SpanTracer,
    chrome_trace_events,
    phase_breakdown,
    reconcile_with_point,
    render_breakdown,
    render_timeline,
    validate_chrome_trace,
    write_chrome_trace,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0


def _nested_tracer():
    clock = FakeClock()
    trc = SpanTracer(sim=clock)
    outer = trc.begin("cat", "outer", track="t")
    clock.now = 1e-6
    inner = trc.begin("cat", "inner", track="t")
    clock.now = 2e-6
    trc.instant("cat", "tick", track="t")
    clock.now = 3e-6
    inner.end()
    clock.now = 4e-6
    outer.end()
    return trc


def test_chrome_events_pair_and_nest():
    events = chrome_trace_events(_nested_tracer())
    validate_chrome_trace(events)  # raises on any structural problem
    phs = [(e["ph"], e.get("name")) for e in events]
    assert ("M", "thread_name") in phs
    # LIFO order on the timeline: outer opens, inner opens, inner closes.
    timed = [(e["ph"], e["name"]) for e in events if e["ph"] in "BEi"]
    assert timed == [("B", "outer"), ("B", "inner"), ("i", "tick"),
                     ("E", "inner"), ("E", "outer")]
    # Timestamps are microseconds and non-decreasing.
    ts = [e["ts"] for e in events if e["ph"] in "BEi"]
    assert ts == sorted(ts) == [0.0, 1.0, 2.0, 3.0, 4.0]


def test_zero_duration_span_keeps_be_adjacent():
    clock = FakeClock()
    trc = SpanTracer(sim=clock)
    outer = trc.begin("cat", "outer", track="t")
    trc.begin("cat", "instantaneous", track="t").end()  # zero duration at t=0
    clock.now = 1e-6
    outer.end()
    events = chrome_trace_events(trc)
    validate_chrome_trace(events)
    timed = [(e["ph"], e["name"]) for e in events if e["ph"] in "BE"]
    assert timed == [("B", "outer"), ("B", "instantaneous"),
                     ("E", "instantaneous"), ("E", "outer")]


def test_validate_rejects_mispaired_and_unclosed():
    with pytest.raises(ValueError, match="E without B"):
        validate_chrome_trace([{"ph": "E", "name": "x", "ts": 0, "tid": 1}])
    with pytest.raises(ValueError, match="unclosed"):
        validate_chrome_trace([{"ph": "B", "name": "x", "ts": 0, "tid": 1}])
    with pytest.raises(ValueError, match="mispaired"):
        validate_chrome_trace([
            {"ph": "B", "name": "x", "ts": 0, "tid": 1},
            {"ph": "E", "name": "y", "ts": 1, "tid": 1},
        ])
    with pytest.raises(ValueError, match="backwards"):
        validate_chrome_trace([
            {"ph": "B", "name": "x", "ts": 5, "tid": 1},
            {"ph": "E", "name": "x", "ts": 1, "tid": 1},
        ])


def test_write_chrome_trace_roundtrip(tmp_path):
    trc = _nested_tracer()
    trc.metrics.counter("c").inc(2)
    path = tmp_path / "trace.json"
    doc = write_chrome_trace(trc, str(path))
    loaded = json.loads(path.read_text())
    assert loaded == json.loads(json.dumps(doc))
    assert loaded["otherData"]["metrics"]["c"] == 2
    validate_chrome_trace(loaded["traceEvents"])
    # Stream variant.
    buf = io.StringIO()
    write_chrome_trace(trc, buf)
    assert json.loads(buf.getvalue())["traceEvents"] == loaded["traceEvents"]


def test_render_timeline_orders_and_limits():
    trc = _nested_tracer()
    text = render_timeline(trc)
    lines = text.splitlines()
    assert len(lines) == 3  # two spans + one instant
    assert "outer" in lines[0] and "inner" in lines[1] and "tick" in lines[2]
    assert render_timeline(trc, limit=1).count("\n") == 0
    assert render_timeline(SpanTracer(sim=FakeClock())) == "(empty trace)"


def test_phase_breakdown_and_render():
    clock = FakeClock()
    trc = SpanTracer(sim=clock)
    for dur in (1e-6, 3e-6):
        span = trc.begin("phase", "wr-generation", track="ping")
        clock.now += dur
        span.end()
    stats = phase_breakdown(trc)
    assert set(stats) == {"wr-generation"}
    s = stats["wr-generation"]
    assert s.count == 2
    assert s.total == pytest.approx(4e-6)
    assert s.mean == pytest.approx(2e-6)
    assert s.min == pytest.approx(1e-6) and s.max == pytest.approx(3e-6)
    text = render_breakdown(stats)
    assert "wr-generation" in text and "4.000us" in text


def test_reconcile_with_point_tolerance():
    clock = FakeClock()
    trc = SpanTracer(sim=clock)
    for name, dur in (("wr-generation", 2e-6), ("polling", 8e-6)):
        for _ in range(10):
            span = trc.begin("phase", name, track="ping")
            clock.now += dur
            span.end()
    point = LatencyPoint(size=64, latency=10e-6, post_time=2e-6, poll_time=8e-6)
    res = reconcile_with_point(trc, point, iterations=10)
    assert res["ok"]
    assert res["phases"]["wr-generation"]["rel_err"] == pytest.approx(0.0)
    # A point whose timings disagree by >1% must fail.
    bad = LatencyPoint(size=64, latency=10e-6, post_time=2.5e-6, poll_time=8e-6)
    assert not reconcile_with_point(trc, bad, iterations=10)["ok"]


def test_write_chrome_trace_creates_parent_directories(tmp_path):
    """--trace deep/new/dir/trace.json must not require pre-made dirs."""
    tracer = _nested_tracer()
    out = tmp_path / "deep" / "new" / "dir" / "trace.json"
    doc = write_chrome_trace(tracer, str(out))
    assert out.exists()
    with open(out) as fh:
        assert json.load(fh)["traceEvents"] == doc["traceEvents"]
