"""Waterfall / blame renderers and the annotated Chrome trace."""

from __future__ import annotations

import json

from repro.causal.critpath import RunAnalysis, extract_path
from repro.causal.dag import CausalDag
from repro.causal.export import (annotated_trace_events, render_blame,
                                 render_slack, render_waterfall,
                                 write_annotated_trace)

from .test_dag import make_trace, one_message_rows


def _analysis():
    dag = CausalDag(make_trace(one_message_rows()))
    return dag, RunAnalysis(paths=[extract_path(dag, 0)])


def test_waterfall_tells_the_whole_story():
    _, analysis = _analysis()
    text = render_waterfall(analysis.paths[0], title="req 0")
    assert text.startswith("req 0\n=====")
    assert "13 hops" in text.splitlines()[2]
    # One line per segment, forward in time, with blame + edge marks.
    assert "dlv -> rcd" in text
    assert "<=remote" in text
    assert "(waited" in text
    # The per-rank view names rank 0 the straggler (owned time, not
    # latest finisher).
    assert "rank 0:" in text and "<-- straggler" in text
    straggler_line = next(line for line in text.splitlines()
                          if "straggler" in line and "rank" in line)
    assert "rank 0" in straggler_line


def test_blame_table_orders_and_totals():
    _, analysis = _analysis()
    text = render_blame(analysis.blame(), analysis.paths[0].total)
    lines = text.splitlines()
    assert lines[-1].split()[0] == "total"
    assert "100.00%" in lines[-1]
    body = "\n".join(lines)
    assert body.index("data-dma") < body.index("compute") < body.index("app")


def test_slack_histogram_counts_stragglers():
    _, analysis = _analysis()
    text = render_slack(analysis)
    assert "rank 0:" in text and "rank 1:" in text
    assert "straggler in 1/1 requests" in text
    empty = render_slack(RunAnalysis(paths=[]))
    assert "no per-rank" in empty


class _FakeTracer:
    """Just enough SpanTracer surface for the Chrome exporter."""

    def __init__(self, flows):
        self.flows = flows
        self.spans = []
        self.instants = []

    def tracks(self):
        return []


def test_annotated_trace_overlays_critpath_arrows(tmp_path):
    flows = make_trace(one_message_rows())
    dag = CausalDag(flows)
    analysis = RunAnalysis(paths=[extract_path(dag, 0)])
    tracer = _FakeTracer(flows)
    events = annotated_trace_events(tracer, analysis)
    arrows = [ev for ev in events if ev.get("cat") == "critpath"]
    starts = [ev for ev in arrows if ev["ph"] == "s"]
    ends = [ev for ev in arrows if ev["ph"] == "f"]
    # Cross-actor hops only; every start pairs with one finish by id.
    assert starts and len(starts) == len(ends)
    assert sorted(ev["id"] for ev in starts) == \
        sorted(ev["id"] for ev in ends)
    for ev in ends:
        assert ev["bp"] == "e"
    # Timestamps are sorted (Perfetto requirement after the merge).
    ts = [ev["ts"] for ev in events if "ts" in ev]
    assert ts == sorted(ts)

    out = tmp_path / "deep" / "trace.json"   # parent dir must be created
    doc = write_annotated_trace(tracer, analysis, str(out))
    on_disk = json.loads(out.read_text())
    assert on_disk["otherData"]["requests"] == [0]
    assert on_disk["otherData"]["blame"] == {
        k: v for k, v in doc["otherData"]["blame"].items()}
    assert any(ev.get("cat") == "critpath"
               for ev in on_disk["traceEvents"])
