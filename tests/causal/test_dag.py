"""CausalDag walk rules over synthetic flow-event sequences.

Every rule the backward walk relies on, checked against hand-built
traces: actor program order, same-wave address ladders, the chain-fired
``pst`` exception, cross-node joins, the (time, seq) happens-before
filter, and the req/rank bracket bookkeeping.
"""

from __future__ import annotations

import pytest

from repro.causal.dag import CausalDag
from repro.causal.events import KNOWN_KINDS
from repro.errors import CausalError
from repro.obs.tracer import FlowRecord


def make_trace(rows):
    """rows: (time, kind, actor[, addr[, attrs]]) -> FlowRecords with
    emission-order seq, exactly as a SpanTracer would have stamped them."""
    flows = []
    for seq, row in enumerate(rows):
        time, kind, actor = row[0], row[1], row[2]
        addr = row[3] if len(row) > 3 else None
        attrs = row[4] if len(row) > 4 else {}
        flows.append(FlowRecord(seq, time, kind, actor, addr, attrs))
    return flows


A = (1, 0x1000)        # one message's address key (dst_node, dst_nla)


def one_message_rows():
    """req 0: rank 0 puts one message to rank 1; rank 1 computes on it."""
    return [
        (0.0, "req.begin", "driver", None, {"req": 0}),
        (0.0, "rank.begin", "n0", None, {"req": 0}),
        (0.0, "rank.begin", "n1", None, {"req": 0}),
        (1.0, "snd", "n0"),
        (2.0, "crd", "n0"),
        (3.0, "stg", "n0", A),
        (4.0, "pst", "n0", A, {"via": "mmio"}),
        (5.0, "txr", "nic0.rma", A),
        (6.0, "txd", "nic0.rma", A),
        (2.5, "rcv", "n1", A),
        (7.0, "rxs", "nic1.rma", A),
        (8.0, "dlv", "nic1.rma", A),
        (9.0, "rcd", "n1", A, {"via": "poll"}),
        (10.0, "cmp", "n1"),
        (4.5, "rank.end", "n0", None, {"req": 0}),
        (10.5, "rank.end", "n1", None, {"req": 0}),
        (11.0, "req.end", "driver", None, {"req": 0}),
    ]


@pytest.fixture()
def dag():
    return CausalDag(make_trace(one_message_rows()))


def _by_kind(dag, kind, actor=None):
    for ev in dag.flows:
        if ev.kind == kind and (actor is None or ev.actor == actor):
            return ev
    raise AssertionError(f"no {kind} in trace")


def test_brackets_and_requests(dag):
    assert dag.requests() == [0]
    begin, end = dag.bracket(0)
    assert (begin.kind, end.kind) == ("req.begin", "req.end")
    assert len(dag.rank_ends(0)) == 2
    assert len(dag.rank_begins(0)) == 2
    with pytest.raises(CausalError, match="no complete"):
        dag.bracket(7)


def test_actor_program_order(dag):
    crd = _by_kind(dag, "crd")
    assert dag.actor_pred(crd).kind == "snd"
    first = _by_kind(dag, "rank.begin", "n0")
    assert dag.actor_pred(first) is None


def test_ladder_wave_pairing(dag):
    dlv = _by_kind(dag, "dlv")
    assert dag.wave(dlv) == 0
    assert dag.wave_pred("rxs", dlv).kind == "rxs"
    txr = _by_kind(dag, "txr")
    assert dag.predecessor(txr).kind == "pst"
    txd = _by_kind(dag, "txd")
    assert dag.predecessor(txd).kind == "txr"


def test_cross_node_join_picks_the_late_delivery(dag):
    """rcd's candidates are its actor pred (rcv @2.5) and the same-wave
    dlv (@8.0); the critical predecessor is the LATER one — the remote
    delivery the receiver actually waited for."""
    rcd = _by_kind(dag, "rcd")
    pred = dag.predecessor(rcd)
    assert pred.kind == "dlv"
    assert pred.actor == "nic1.rma"


def test_req_end_takes_the_latest_rank_end(dag):
    end = _by_kind(dag, "req.end")
    pred = dag.predecessor(end)
    assert pred.kind == "rank.end" and pred.actor == "n1"


def test_req_begin_is_the_walk_terminus(dag):
    begin = _by_kind(dag, "req.begin")
    assert dag.candidates(begin) == []
    assert dag.predecessor(begin) is None


def test_happens_before_filter_rejects_future_candidates():
    """A same-address dlv stamped AFTER the rcd (possible only in a
    malformed trace) must not be offered as a predecessor."""
    rows = [
        (0.0, "rcv", "n1", A),
        (1.0, "rcd", "n1", A, {"via": "poll"}),
        (2.0, "dlv", "nic1.rma", A),
    ]
    dag = CausalDag(make_trace(rows))
    rcd = dag.flows[1]
    assert [c.kind for c in dag.candidates(rcd)] == ["rcv"]


def test_equal_time_ties_break_on_emission_seq():
    rows = [
        (0.0, "req.begin", "driver", None, {"req": 0}),
        (0.0, "rank.begin", "n0", None, {"req": 0}),
    ]
    dag = CausalDag(make_trace(rows))
    assert dag.predecessor(dag.flows[1]).kind == "req.begin"
    # ...and never the other way around: req.begin has no candidates.
    assert dag.candidates(dag.flows[0]) == []


def test_chain_fired_pst_walks_to_its_own_staging():
    """A chain-fired pst must hop to THIS message's stg, not follow the
    trigger unit's program order into another chain's history."""
    B = (1, 0x2000)
    rows = [
        (0.0, "stg", "n0", A),
        (0.5, "stg", "n0", B),
        (1.0, "chain.fire", "nic0.trig"),
        (2.0, "pst", "nic0.trig", A, {"via": "chain"}),
        (3.0, "pst", "nic0.trig", B, {"via": "chain"}),
    ]
    dag = CausalDag(make_trace(rows))
    pst_b = dag.flows[4]
    pred = dag.predecessor(pst_b)
    assert pred.kind == "stg" and pred.addr == B


def test_mmio_pst_uses_actor_order_and_staging():
    dag = CausalDag(make_trace(one_message_rows()))
    pst = _by_kind(dag, "pst")
    kinds = {c.kind for c in dag.candidates(pst)}
    assert kinds == {"stg"}            # actor pred IS the stg here
    assert dag.predecessor(pst).kind == "stg"


def test_snd_done_joins_on_requester_completion():
    rows = [
        (0.0, "pst", "n0", A, {"via": "mmio"}),
        (1.0, "txr", "nic0.rma", A),
        (2.0, "txd", "nic0.rma", A),
        (3.0, "snd.done", "n0", A),
    ]
    dag = CausalDag(make_trace(rows))
    done = dag.flows[3]
    pred = dag.predecessor(done)
    assert pred.kind == "txd"          # the latest of {pst, txd, txr}


def test_unknown_kinds_are_flagged_not_fatal():
    dag = CausalDag(make_trace([(0.0, "zap", "n0")]))
    assert dag.unknown_kinds == {"zap"}
    assert "zap" not in KNOWN_KINDS


def test_second_wave_pairs_with_second_wave():
    """Two messages reusing one address: the i-th dlv pairs with the i-th
    rxs, never the first one seen."""
    rows = [
        (0.0, "rxs", "nic1.rma", A),
        (1.0, "dlv", "nic1.rma", A),
        (2.0, "rxs", "nic1.rma", A),
        (3.0, "dlv", "nic1.rma", A),
    ]
    dag = CausalDag(make_trace(rows))
    second_dlv = dag.flows[3]
    assert dag.wave(second_dlv) == 1
    assert dag.wave_pred("rxs", second_dlv).seq == 2
