"""Critical-path extraction: telescoping, blame partition, stragglers.

All on the synthetic one-message trace from test_dag (hand-checkable
numbers), plus the failure modes extract_path must refuse to paper over.
"""

from __future__ import annotations

import pytest

from repro.causal.critpath import (PARTITION_TOLERANCE, RunAnalysis,
                                   analyze_run, extract_path)
from repro.causal.dag import CausalDag
from repro.errors import CausalError

from .test_dag import A, make_trace, one_message_rows


@pytest.fixture()
def path():
    return extract_path(CausalDag(make_trace(one_message_rows())), 0)


def test_path_telescopes_to_the_bracket(path):
    assert path.events[0].kind == "req.begin"
    assert path.events[-1].kind == "req.end"
    assert path.total == 11.0
    assert len(path.segments) == len(path.events) - 1
    # Consecutive segments share their boundary event...
    for left, right in zip(path.segments, path.segments[1:]):
        assert left.ev is right.pred
    # ...so the partition residual is float-roundoff at most.
    assert path.partition_residual() <= PARTITION_TOLERANCE


def test_reconcile_is_exact_against_the_bracket_time(path):
    recon = path.reconcile(11.0)
    assert recon["ok"]
    assert recon["error"] == 0.0
    assert recon["hops"] == len(path.segments)
    # A measurement the path does NOT telescope to must fail loudly.
    assert not path.reconcile(11.5)["ok"]


def test_blame_partition_hand_check(path):
    cats = path.categories()
    assert cats["wqe-generation"] == 2.0      # crd + stg
    assert cats["doorbell-mmio"] == 1.0       # pst via=mmio
    assert cats["data-dma"] == 2.0            # txr + dlv
    assert cats["wire"] == 2.0                # txd + rxs
    assert cats["completion-polling"] == 1.0  # rcd via=poll
    assert cats["compute"] == 1.0             # cmp
    assert cats["app"] == 2.0                 # snd + rank.end + req.end
    assert sum(cats.values()) == path.total
    shares = path.shares()
    assert abs(sum(shares.values()) - 1.0) < 1e-12


def test_cross_node_join_reports_the_receivers_wait(path):
    joins = [s for s in path.segments if s.edge == "blocked-on-remote"]
    assert len(joins) == 1
    (join,) = joins
    assert (join.pred.kind, join.ev.kind) == ("dlv", "rcd")
    # rcv was stamped at 2.5, the delivery landed at 8.0.
    assert join.wait == pytest.approx(5.5)
    assert path.remote_wait() == pytest.approx(5.5)


def test_straggler_is_path_time_ownership_not_latest_finisher(path):
    """rank 1 finishes last (rank.end @10.5 vs @4.5) but rank 0 owns more
    on-path time (its send-side staging rides the whole path) — the
    straggler call must follow the owned time."""
    assert path.rank_slack == {0: 6.5, 1: 0.5}
    assert path.rank_time[0] > path.rank_time[1]
    assert path.straggler == 0


def test_blocked_on_credit_segments():
    rows = [
        (0.0, "req.begin", "driver", None, {"req": 0}),
        (0.0, "rank.begin", "n0", None, {"req": 0}),
        (1.0, "snd", "n0"),
        (4.0, "crd", "n0", None, {"gated": True, "waited_on": A}),
        (5.0, "stg", "n0", A),
        (5.5, "rank.end", "n0", None, {"req": 0}),
        (6.0, "req.end", "driver", None, {"req": 0}),
    ]
    path = extract_path(CausalDag(make_trace(rows)), 0)
    seg = next(s for s in path.segments if s.ev.kind == "crd")
    assert seg.category == "blocked-on-credit"
    assert seg.edge == "blocked-on-credit"
    assert path.categories()["blocked-on-credit"] == 3.0


def test_dead_end_raises_instead_of_guessing():
    """An uninstrumented emission site (dlv with no rxs behind it and no
    actor history) must be a CausalError, not a silent short path."""
    rows = [
        (0.0, "req.begin", "driver", None, {"req": 0}),
        (1.0, "rcv", "n1", A),
        (2.0, "dlv", "nic1.rma", A),
        (3.0, "rcd", "n1", A, {"via": "poll"}),
        (3.5, "rank.end", "n1", None, {"req": 0}),
        (4.0, "req.end", "driver", None, {"req": 0}),
    ]
    with pytest.raises(CausalError, match="dead-ends"):
        extract_path(CausalDag(make_trace(rows)), 0)


def test_run_analysis_aggregates_and_gates():
    dag = CausalDag(make_trace(one_message_rows()))
    analysis = RunAnalysis(paths=[extract_path(dag, 0)])
    blame = analysis.blame()
    cats = list(blame)
    # Report order: the transport phases come before compute/app.
    assert cats.index("data-dma") < cats.index("compute") < cats.index("app")
    assert sum(blame.values()) == pytest.approx(11.0)
    assert abs(sum(analysis.blame_shares().values()) - 1.0) < 1e-12
    assert analysis.stragglers() == {0: 0}
    assert analysis.slack_histograms() == {0: [6.5], 1: [0.5]}
    recon = analysis.reconcile([11.0])
    assert recon["ok"] and recon["max_error"] == 0.0
    with pytest.raises(CausalError, match="no measured service time"):
        analysis.reconcile([])


def test_analyze_run_requires_brackets():
    class Empty:
        flows = []

    with pytest.raises(CausalError, match="no req.begin/req.end"):
        analyze_run(Empty())
