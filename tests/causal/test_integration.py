"""End-to-end acceptance: real runs, exact reconciliation, non-perturbation.

The issue's gates, as tests: every control mode's ping-pong paths must
reconcile at exactly 0% against the workload's own service times, the
disarmed (NullTracer) replay must be bit-identical, a forced compute
skew must flip the straggler call, and the CLI must turn gate failures
into exit status 2.
"""

from __future__ import annotations

import json

import pytest

from repro.causal.cli import main as critpath_main
from repro.causal.critpath import analyze_run
from repro.obs import SpanTracer
from repro.sim import Simulator
from repro.workloads.apps import get_workload
from repro.workloads.generator import WorkloadRun
from repro.workloads.transport import MODES


def _run(mode, workload="pingpong", nodes=2, traced=True, **knobs):
    sim = Simulator(seed=0)
    tracer = None
    if traced:
        tracer = SpanTracer(sim, categories=("causal", "workload"))
        sim.set_tracer(tracer)
    run = WorkloadRun(get_workload(workload, **knobs), mode, nodes=nodes,
                      size=64, requests=2, loop="closed", seed=0, sim=sim)
    return run.execute(), tracer


@pytest.mark.parametrize("mode", MODES)
def test_pingpong_reconciles_exactly_in_every_mode(mode):
    result, tracer = _run(mode)
    assert result.verified
    analysis = analyze_run(tracer)
    recon = analysis.reconcile(result.service_times)
    assert recon["ok"], recon
    assert recon["max_error"] == 0.0
    assert recon["max_residual"] <= 1e-9
    # Something real crossed the wire on every path.
    for path in analysis.paths:
        assert len(path.segments) > 4
        assert path.total > 0


@pytest.mark.parametrize("mode", ("hostControlled", "mpi"))
def test_null_tracer_replay_is_bit_identical(mode):
    traced, _ = _run(mode)
    bare, _ = _run(mode, traced=False)
    assert bare.latencies == traced.latencies
    assert bare.service_times == traced.service_times
    assert bare.waits == traced.waits


def test_forced_skew_flips_the_straggler_call():
    _, fair = _run("hostControlled", "allreduce", nodes=4)
    result, skewed = _run("hostControlled", "allreduce", nodes=4,
                          skew_rank=2, skew_instr=20000)
    assert result.verified
    analysis = analyze_run(skewed)
    assert set(analysis.stragglers().values()) == {2}
    # The skewed run still reconciles exactly — blame, not breakage.
    assert analysis.reconcile(result.service_times)["max_error"] == 0.0
    # And the fair run does NOT already blame rank 2 everywhere.
    fair_calls = set(analyze_run(fair).stragglers().values())
    assert fair_calls != {2}


def test_cli_gates_and_json_report(capsys, tmp_path):
    out = tmp_path / "artifacts"
    rc = critpath_main(["pingpong", "--modes", "hostControlled",
                        "--requests", "1", "--verify", "--reconcile",
                        "--out", str(out), "--json"])
    report = json.loads(capsys.readouterr().out)
    assert rc == 0
    cell = report["modes"]["hostControlled"]
    assert cell["reconcile"]["ok"]
    assert cell["verify_bit_identical"]
    assert (out / "critpath-pingpong-hostControlled.json").stat().st_size
    assert (out / "critpath-pingpong-hostControlled.txt").stat().st_size


def test_cli_wrong_straggler_expectation_exits_2(capsys):
    rc = critpath_main(["pingpong", "--modes", "hostControlled",
                        "--requests", "1", "--expect-straggler", "7"])
    captured = capsys.readouterr()
    assert rc == 2
    assert "FAIL" in captured.out
