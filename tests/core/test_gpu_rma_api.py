"""Unit tests for the GPU-resident EXTOLL RMA API."""

import pytest

from repro import build_extoll_cluster
from repro.core import (
    GpuNotificationCursor,
    gpu_rma_poll_last_element,
    gpu_rma_post,
    gpu_rma_wait_notification,
    setup_extoll_connection,
)
from repro.errors import RmaError
from repro.extoll import NotifyFlags, RmaOp, RmaUnitKind, RmaWorkRequest
from repro.units import KIB, US


@pytest.fixture
def testbed():
    cluster = build_extoll_cluster()
    conn = setup_extoll_connection(cluster, 4 * KIB)
    return cluster, conn


def put_wr(conn, size=64, flags=NotifyFlags.REQUESTER):
    return RmaWorkRequest(op=RmaOp.PUT, port=conn.a.port.port_id, dst_node=1,
                          src_nla=conn.a.send_nla.base,
                          dst_nla=conn.b.recv_nla.base, size=size, flags=flags)


def test_post_is_three_sysmem_stores(testbed):
    cluster, conn = testbed
    wr = put_wr(conn, flags=NotifyFlags.NONE)
    gpu = conn.a.node.gpu

    def kernel(ctx):
        yield from gpu_rma_post(ctx, conn.a.port.page_addr, wr)

    before = gpu.counters.snapshot()
    h = gpu.launch(kernel)
    cluster.sim.run_until_complete(h, limit=1.0)
    diff = gpu.counters.diff(before)
    assert diff.sysmem_write_transactions == 3
    assert diff.sysmem_read_transactions == 0


def test_post_moves_data_end_to_end(testbed):
    cluster, conn = testbed
    conn.a.node.gpu.dram.write(conn.a.send_buf.base, b"Z" * 64)
    wr = put_wr(conn, flags=NotifyFlags.NONE)

    def kernel(ctx):
        yield from gpu_rma_post(ctx, conn.a.port.page_addr, wr)
        yield from ctx.fence_system()

    h = conn.a.node.gpu.launch(kernel)
    cluster.sim.run_until_complete(h, limit=1.0)
    cluster.sim.run(until=cluster.sim.now + 100 * US)
    assert conn.b.node.gpu.dram.read(conn.b.recv_buf.base, 64) == b"Z" * 64


def test_wait_notification_consumes_and_frees(testbed):
    cluster, conn = testbed
    wr = put_wr(conn)

    def kernel(ctx):
        cursor = conn.a.requester_cursor()
        yield from gpu_rma_post(ctx, conn.a.port.page_addr, wr)
        note, polls = yield from gpu_rma_wait_notification(ctx, cursor)
        return note, polls, cursor.read_index

    h = conn.a.node.gpu.launch(kernel)
    cluster.sim.run_until_complete(h, limit=1.0)
    note, polls, read_index = h.block_result(0)
    assert note.unit is RmaUnitKind.REQUESTER
    assert polls >= 1
    assert read_index == 1
    # The slot was freed (zeroed) and the read pointer published.
    q = conn.a.port.requester_queue
    host = conn.a.node.host_mem
    assert host.read_u64(q.slot_addr(0)) == 0
    cluster.sim.run(until=cluster.sim.now + 50 * US)  # drain posted stores
    assert host.read_u32(q.read_ptr_addr) == 1


def test_wait_notification_max_polls(testbed):
    cluster, conn = testbed

    def kernel(ctx):
        cursor = conn.a.requester_cursor()
        yield from gpu_rma_wait_notification(ctx, cursor, max_polls=5)

    h = conn.a.node.gpu.launch(kernel)
    cluster.sim.run(until=cluster.sim.now + 500 * US)
    assert not h.ok
    with pytest.raises(RmaError):
        raise h.value


def test_poll_last_element_sees_put(testbed):
    cluster, conn = testbed

    def sender(ctx):
        yield from ctx.store_u64(conn.a.send_buf.base + 56, 0xFEED)
        yield from gpu_rma_post(ctx, conn.a.port.page_addr,
                                put_wr(conn, flags=NotifyFlags.NONE))

    def receiver(ctx):
        polls = yield from gpu_rma_poll_last_element(
            ctx, conn.b.recv_buf.base + 56, 0xFEED)
        return polls

    hs = conn.a.node.gpu.launch(sender)
    hr = conn.b.node.gpu.launch(receiver)
    cluster.sim.run_until_complete(hs, hr, limit=1.0)
    assert hr.block_result(0) >= 1


def test_sequential_notifications_arrive_in_order(testbed):
    cluster, conn = testbed
    wr = put_wr(conn)

    def kernel(ctx):
        cursor = conn.a.requester_cursor()
        seqs = []
        for _ in range(5):
            yield from gpu_rma_post(ctx, conn.a.port.page_addr, wr)
            note, _ = yield from gpu_rma_wait_notification(ctx, cursor)
            seqs.append(note.seq)
        return seqs

    h = conn.a.node.gpu.launch(kernel)
    cluster.sim.run_until_complete(h, limit=1.0)
    seqs = h.block_result(0)
    assert seqs == sorted(seqs)
    assert len(set(seqs)) == 5
