"""Unit tests for result containers and table rendering."""

import math

import pytest

from repro.core import (
    BandwidthPoint,
    CounterReport,
    LatencyPoint,
    RatePoint,
    Series,
    render_bandwidth_table,
    render_counter_table,
    render_latency_table,
    render_rate_table,
)
from repro.gpu import CounterSet
from repro.units import KIB


def test_latency_point_units_and_ratio():
    p = LatencyPoint(size=64, latency=5e-6, post_time=1e-6, poll_time=4e-6)
    assert p.latency_us == pytest.approx(5.0)
    assert p.poll_to_post_ratio == pytest.approx(4.0)


def test_latency_point_ratio_nan_when_neither_phase_measured():
    p = LatencyPoint(size=64, latency=5e-6)
    assert math.isnan(p.poll_to_post_ratio)


def test_latency_point_ratio_inf_when_only_polling_measured():
    # Polling took time but no posting time was recorded: the ratio is
    # unbounded, not undefined (and must not raise ZeroDivisionError).
    p = LatencyPoint(size=64, latency=5e-6, post_time=0.0, poll_time=3e-6)
    assert p.poll_to_post_ratio == float("inf")


def test_latency_point_ratio_negative_post_time_treated_as_unmeasured():
    p = LatencyPoint(size=64, latency=5e-6, post_time=-1e-9, poll_time=3e-6)
    assert p.poll_to_post_ratio == float("inf")
    p = LatencyPoint(size=64, latency=5e-6, post_time=-1e-9, poll_time=0.0)
    assert math.isnan(p.poll_to_post_ratio)


def test_bandwidth_point_rate():
    p = BandwidthPoint(size=1024, bytes_moved=10_000_000, elapsed=0.01)
    assert p.mb_per_s == pytest.approx(1000.0)


def test_rate_point():
    p = RatePoint(connections=4, messages=400, elapsed=0.001)
    assert p.messages_per_s == pytest.approx(400_000)


def test_series_by_x_uses_size_or_connections():
    s = Series("x", [LatencyPoint(size=64, latency=1e-6)])
    assert 64 in s.by_x()
    r = Series("y", [RatePoint(connections=8, messages=1, elapsed=1.0)])
    assert 8 in r.by_x()


def test_render_latency_table_contains_all_cells():
    s1 = Series("modeA", [LatencyPoint(size=64, latency=2e-6),
                          LatencyPoint(size=1 * KIB, latency=4e-6)])
    s2 = Series("modeB", [LatencyPoint(size=64, latency=3e-6)])
    text = render_latency_table([s1, s2], "My Title")
    assert "My Title" in text
    assert "64B" in text and "1KiB" in text
    assert "2.00us" in text and "4.00us" in text and "3.00us" in text
    assert "-" in text  # missing modeB @ 1KiB


def test_render_bandwidth_table():
    s = Series("m", [BandwidthPoint(size=1024, bytes_moved=10**7, elapsed=0.01)])
    text = render_bandwidth_table([s], "BW")
    assert "1000.0MB/s" in text


def test_render_rate_table():
    s = Series("m", [RatePoint(connections=4, messages=400, elapsed=0.001)])
    text = render_rate_table([s], "Rate")
    assert "400,000/s" in text


def test_render_counter_table_matches_paper_layout():
    counters = CounterSet(sysmem_read_transactions=4368,
                          instructions_executed=46413)
    report = CounterReport("system memory", 100, counters)
    text = render_counter_table([report], "Table I")
    assert "sysmem reads (32B accesses)" in text
    assert "4,368" in text
    assert "instruction executed" in text
    assert "46,413" in text


def test_counter_report_per_iteration():
    counters = CounterSet(sysmem_write_transactions=300)
    report = CounterReport("device memory", 100, counters)
    assert report.per_iteration("sysmem_write_transactions") == 3.0


def test_counter_set_arithmetic():
    a = CounterSet(instructions_executed=10, l2_read_hits=5)
    b = CounterSet(instructions_executed=3, l2_read_hits=1)
    assert (a + b).instructions_executed == 13
    assert a.diff(b).l2_read_hits == 4
    snap = a.snapshot()
    a.instructions_executed += 100
    assert snap.instructions_executed == 10
    a.reset()
    assert a.instructions_executed == 0
