"""Integration tests for the ping-pong benchmark programs (all modes)."""

import pytest

from repro import build_extoll_cluster, build_ib_cluster
from repro.core import (
    ExtollMode,
    IbMode,
    run_extoll_pingpong,
    run_ib_pingpong,
    setup_extoll_connection,
    setup_ib_connection,
)
from repro.errors import BenchmarkError
from repro.units import KIB


IB_LOCATION = {
    IbMode.BUF_ON_GPU: "gpu",
    IbMode.BUF_ON_HOST: "host",
    IbMode.ASSISTED: "host",
    IbMode.HOST_CONTROLLED: "host",
}


@pytest.mark.parametrize("mode", list(ExtollMode))
def test_extoll_pingpong_runs_every_mode(mode):
    cluster = build_extoll_cluster()
    conn = setup_extoll_connection(cluster, 4 * KIB)
    p = run_extoll_pingpong(cluster, conn, mode, 256, iterations=5, warmup=1)
    assert 0 < p.latency < 1e-3
    assert p.post_time > 0
    assert p.poll_time > 0


@pytest.mark.parametrize("mode", list(IbMode))
def test_ib_pingpong_runs_every_mode(mode):
    cluster = build_ib_cluster()
    conn = setup_ib_connection(cluster, 4 * KIB,
                               buffer_location=IB_LOCATION[mode])
    p = run_ib_pingpong(cluster, conn, mode, 256, iterations=5, warmup=1)
    assert 0 < p.latency < 1e-3


def test_extoll_latency_ordering_small_messages():
    """hostControlled < pollOnGPU < assisted < direct (§V-A1)."""
    lat = {}
    for mode in ExtollMode:
        cluster = build_extoll_cluster()
        conn = setup_extoll_connection(cluster, 4 * KIB)
        lat[mode] = run_extoll_pingpong(cluster, conn, mode, 16,
                                        iterations=8, warmup=2).latency
    assert lat[ExtollMode.HOST_CONTROLLED] < lat[ExtollMode.POLL_ON_GPU]
    assert lat[ExtollMode.POLL_ON_GPU] < lat[ExtollMode.ASSISTED]
    assert lat[ExtollMode.ASSISTED] < lat[ExtollMode.DIRECT]


def test_ib_host_beats_gpu_modes():
    lat = {}
    for mode in (IbMode.BUF_ON_GPU, IbMode.HOST_CONTROLLED):
        cluster = build_ib_cluster()
        conn = setup_ib_connection(cluster, 4 * KIB,
                                   buffer_location=IB_LOCATION[mode])
        lat[mode] = run_ib_pingpong(cluster, conn, mode, 16,
                                    iterations=8, warmup=2).latency
    assert lat[IbMode.HOST_CONTROLLED] < lat[IbMode.BUF_ON_GPU]


def test_pingpong_moves_real_payload():
    """The pollOnGPU ping-pong leaves the last iteration's marker in both
    receive buffers — data actually moved, in both directions."""
    cluster = build_extoll_cluster()
    conn = setup_extoll_connection(cluster, 4 * KIB)
    iters, warmup = 6, 1
    run_extoll_pingpong(cluster, conn, ExtollMode.POLL_ON_GPU, 256,
                        iterations=iters, warmup=warmup)
    total = iters + warmup
    for end in (conn.a, conn.b):
        marker = end.node.gpu.dram.read_u64(end.recv_buf.base + 256 - 8)
        assert marker == total


def test_minimum_message_sizes():
    for size in (4, 8):
        cluster = build_extoll_cluster()
        conn = setup_extoll_connection(cluster, 4 * KIB)
        p = run_extoll_pingpong(cluster, conn, ExtollMode.POLL_ON_GPU, size,
                                iterations=4, warmup=1)
        assert p.latency > 0


def test_latency_grows_with_message_size():
    lats = []
    for size in (64, 16 * KIB, 64 * KIB):
        cluster = build_extoll_cluster()
        conn = setup_extoll_connection(cluster, 64 * KIB)
        lats.append(run_extoll_pingpong(
            cluster, conn, ExtollMode.HOST_CONTROLLED, size,
            iterations=4, warmup=1).latency)
    assert lats[0] < lats[1] < lats[2]


def test_invalid_arguments_rejected():
    cluster = build_extoll_cluster()
    conn = setup_extoll_connection(cluster, 4 * KIB)
    with pytest.raises(BenchmarkError):
        run_extoll_pingpong(cluster, conn, ExtollMode.DIRECT, 0)
    with pytest.raises(BenchmarkError):
        run_extoll_pingpong(cluster, conn, ExtollMode.DIRECT, 64, iterations=0)
    with pytest.raises(BenchmarkError):
        run_extoll_pingpong(cluster, conn, ExtollMode.DIRECT, 64 * KIB)  # > buffer


def test_fig3_phase_split_present():
    cluster = build_extoll_cluster()
    conn = setup_extoll_connection(cluster, 4 * KIB)
    p = run_extoll_pingpong(cluster, conn, ExtollMode.DIRECT, 1 * KIB,
                            iterations=6, warmup=1)
    assert p.poll_time > p.post_time  # polling dominates (§V-A3)
    assert p.poll_to_post_ratio > 1.0
