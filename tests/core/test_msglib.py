"""Tests for the GPU messaging library (the §VIII future-work layer)."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import build_extoll_cluster
from repro.core.msglib import Channel, ChannelEnd, create_channel, gpu_recv, gpu_send
from repro.errors import BenchmarkError
from repro.sim import join_result


def make_channel(slot_size=256, slots=8):
    cluster = build_extoll_cluster()
    chan = create_channel(cluster, slot_size=slot_size, slots=slots)
    return cluster, chan


def run_pair(cluster, chan, messages):
    """Send `messages` from node 0 to node 1; return what node 1 received."""
    fwd = chan.end_for_sender(0)
    rev = chan.end_for_sender(1)

    def sender(ctx):
        for msg in messages:
            yield from gpu_send(ctx, fwd, msg)

    def receiver(ctx):
        got = []
        for _ in messages:
            data = yield from gpu_recv(ctx, fwd, rev)
            got.append(data)
        return got

    hs = cluster.a.gpu.launch(sender)
    hr = cluster.b.gpu.launch(receiver)
    cluster.sim.run_until_complete(hs, hr, limit=30.0)
    return hr.block_result(0)


def test_single_message_roundtrip():
    cluster, chan = make_channel()
    got = run_pair(cluster, chan, [b"hello, gpu messaging"])
    assert got == [b"hello, gpu messaging"]


def test_many_messages_in_order_with_wraparound():
    cluster, chan = make_channel(slots=4)
    msgs = [f"message-{i:03d}".encode() for i in range(20)]  # 5x ring depth
    assert run_pair(cluster, chan, msgs) == msgs


def test_flow_control_blocks_fast_sender():
    """A sender racing far ahead of a slow receiver must not overwrite
    unconsumed slots."""
    cluster, chan = make_channel(slots=4)
    fwd = chan.end_for_sender(0)
    rev = chan.end_for_sender(1)
    msgs = [bytes([i]) * 32 for i in range(16)]

    def sender(ctx):
        for msg in msgs:
            yield from gpu_send(ctx, fwd, msg)

    def slow_receiver(ctx):
        got = []
        for _ in msgs:
            yield from ctx.alu(5000)  # dawdle before each receive
            got.append((yield from gpu_recv(ctx, fwd, rev)))
        return got

    hs = cluster.a.gpu.launch(sender)
    hr = cluster.b.gpu.launch(slow_receiver)
    cluster.sim.run_until_complete(hs, hr, limit=30.0)
    assert hr.block_result(0) == msgs


def test_bidirectional_traffic():
    cluster, chan = make_channel()
    a2b = chan.end_for_sender(0)
    b2a = chan.end_for_sender(1)

    def node_a(ctx):
        yield from gpu_send(ctx, a2b, b"ping from A")
        reply = yield from gpu_recv(ctx, b2a, a2b)
        return reply

    def node_b(ctx):
        msg = yield from gpu_recv(ctx, a2b, b2a)
        yield from gpu_send(ctx, b2a, b"re: " + msg)

    ha = cluster.a.gpu.launch(node_a)
    hb = cluster.b.gpu.launch(node_b)
    cluster.sim.run_until_complete(ha, hb, limit=30.0)
    assert ha.block_result(0) == b"re: ping from A"


def test_empty_and_full_slot_payloads():
    cluster, chan = make_channel(slot_size=64)
    fwd = chan.end_for_sender(0)
    full = bytes(range(56))  # slot_size - header
    assert run_pair(cluster, chan, [b"x", full, b"yy"]) == [b"x", full, b"yy"]


def test_oversized_message_rejected():
    cluster, chan = make_channel(slot_size=64)
    fwd = chan.end_for_sender(0)

    def sender(ctx):
        yield from gpu_send(ctx, fwd, bytes(57))

    h = cluster.a.gpu.launch(sender)
    cluster.sim.run(until=cluster.sim.now + 1e-3)
    assert not h.ok
    with pytest.raises(BenchmarkError):
        raise h.value


def test_bad_channel_geometry_rejected():
    cluster = build_extoll_cluster()
    with pytest.raises(BenchmarkError):
        create_channel(cluster, slot_size=8)
    with pytest.raises(BenchmarkError):
        create_channel(cluster, slot_size=63)
    with pytest.raises(BenchmarkError):
        create_channel(cluster, slots=1)


def test_no_pcie_polling_anywhere():
    """§VI claims: arrival and credit polling run out of device memory, so
    the GPUs issue zero PCIe reads."""
    cluster, chan = make_channel(slots=4)
    msgs = [bytes([i]) * 16 for i in range(12)]
    run_pair(cluster, chan, msgs)
    assert cluster.a.gpu.counters.sysmem_read_transactions == 0
    assert cluster.b.gpu.counters.sysmem_read_transactions == 0


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(msgs=st.lists(st.binary(min_size=0, max_size=120), min_size=1,
                     max_size=12))
def test_property_arbitrary_messages_arrive_intact(msgs):
    cluster, chan = make_channel(slot_size=128, slots=4)
    assert run_pair(cluster, chan, msgs) == msgs
