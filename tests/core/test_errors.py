"""The exception hierarchy: one catchable root, specific fault subtypes."""

import inspect

import pytest

from repro import errors
from repro.errors import (
    ConfigError,
    CorruptionError,
    FaultError,
    ReproError,
    RetryExhaustedError,
)


def all_error_classes():
    return [obj for _, obj in inspect.getmembers(errors, inspect.isclass)
            if issubclass(obj, Exception) and obj.__module__ == errors.__name__]


def test_every_library_error_derives_from_repro_error():
    classes = all_error_classes()
    assert classes, "no exception classes found in repro.errors"
    for cls in classes:
        assert issubclass(cls, ReproError), f"{cls.__name__} escapes the root"


def test_every_error_is_documented():
    for cls in all_error_classes():
        assert cls.__doc__ and cls.__doc__.strip(), f"{cls.__name__} undocumented"


def test_fault_hierarchy():
    assert issubclass(FaultError, ReproError)
    for leaf in (RetryExhaustedError, CorruptionError):
        assert issubclass(leaf, FaultError)
    # One except-clause catches the whole reliability layer.
    with pytest.raises(FaultError):
        raise RetryExhaustedError("gave up after 16 retries")
    with pytest.raises(ReproError):
        raise CorruptionError("payload CRC mismatch")


def test_config_validation_uses_config_error():
    from repro.faults import ReliabilityConfig
    with pytest.raises(ConfigError):
        ReliabilityConfig(timeout=-1.0)
    with pytest.raises(ConfigError):
        ReliabilityConfig(backoff=0.5)
    with pytest.raises(ConfigError):
        ReliabilityConfig(max_retries=0)
