"""Integration tests for bandwidth and message-rate programs."""

import pytest

from repro import build_extoll_cluster, build_ib_cluster
from repro.core import (
    ExtollMode,
    IbMode,
    RateMethod,
    default_message_count,
    run_extoll_bandwidth,
    run_extoll_message_rate,
    run_ib_bandwidth,
    run_ib_message_rate,
    setup_extoll_connection,
    setup_extoll_connections,
    setup_ib_connection,
    setup_ib_connections,
)
from repro.errors import BenchmarkError
from repro.units import KIB, MIB


def test_extoll_bandwidth_all_modes_positive():
    for mode in (ExtollMode.DIRECT, ExtollMode.ASSISTED,
                 ExtollMode.HOST_CONTROLLED):
        cluster = build_extoll_cluster()
        conn = setup_extoll_connection(cluster, 64 * KIB)
        p = run_extoll_bandwidth(cluster, conn, mode, 16 * KIB, count=8)
        assert p.mb_per_s > 10


def test_extoll_bandwidth_rejects_pollongpu():
    """'this is only applicable for the ping-pong test' (§V-A1)."""
    cluster = build_extoll_cluster()
    conn = setup_extoll_connection(cluster, 4 * KIB)
    with pytest.raises(BenchmarkError):
        run_extoll_bandwidth(cluster, conn, ExtollMode.POLL_ON_GPU, 1 * KIB)


def test_ib_bandwidth_all_modes_positive():
    for mode, loc in [(IbMode.BUF_ON_GPU, "gpu"), (IbMode.BUF_ON_HOST, "host"),
                      (IbMode.ASSISTED, "host"),
                      (IbMode.HOST_CONTROLLED, "host")]:
        cluster = build_ib_cluster()
        conn = setup_ib_connection(cluster, 64 * KIB, buffer_location=loc)
        p = run_ib_bandwidth(cluster, conn, mode, 16 * KIB, count=8)
        assert p.mb_per_s > 10


def test_bandwidth_increases_with_size_then_saturates():
    values = []
    for size in (1 * KIB, 64 * KIB, 512 * KIB):
        cluster = build_extoll_cluster()
        conn = setup_extoll_connection(cluster, 512 * KIB)
        values.append(run_extoll_bandwidth(
            cluster, conn, ExtollMode.HOST_CONTROLLED, size, count=8).mb_per_s)
    assert values[0] < values[1] <= values[2] * 1.05
    assert values[2] < 1000  # bounded by the FPGA link


def test_bandwidth_p2p_drop_beyond_1mib():
    small = None
    big = None
    cluster = build_extoll_cluster()
    conn = setup_extoll_connection(cluster, 4 * MIB)
    small = run_extoll_bandwidth(cluster, conn, ExtollMode.HOST_CONTROLLED,
                                 256 * KIB, count=8).mb_per_s
    cluster2 = build_extoll_cluster()
    conn2 = setup_extoll_connection(cluster2, 4 * MIB)
    big = run_extoll_bandwidth(cluster2, conn2, ExtollMode.HOST_CONTROLLED,
                               4 * MIB, count=4).mb_per_s
    assert big < small * 0.85


def test_default_message_count_bounds():
    assert default_message_count(1) == 48
    assert default_message_count(8 * MIB) == 8
    assert 8 <= default_message_count(1 * MIB) <= 48


@pytest.mark.parametrize("method", list(RateMethod))
def test_extoll_message_rate_all_methods(method):
    cluster = build_extoll_cluster()
    conns = setup_extoll_connections(cluster, 4 * KIB, 2)
    p = run_extoll_message_rate(cluster, conns, method, per_connection=20)
    assert p.messages == 40
    assert p.messages_per_s > 1e4


@pytest.mark.parametrize("method", list(RateMethod))
def test_ib_message_rate_all_methods(method):
    loc = "gpu" if method in (RateMethod.BLOCKS, RateMethod.KERNELS) else "host"
    cluster = build_ib_cluster()
    conns = setup_ib_connections(cluster, 4 * KIB, 2, buffer_location=loc)
    p = run_ib_message_rate(cluster, conns, method, per_connection=20)
    assert p.messages == 40
    assert p.messages_per_s > 1e4


def test_message_rate_blocks_equals_kernels():
    rates = {}
    for method in (RateMethod.BLOCKS, RateMethod.KERNELS):
        cluster = build_extoll_cluster()
        conns = setup_extoll_connections(cluster, 4 * KIB, 4)
        rates[method] = run_extoll_message_rate(
            cluster, conns, method, per_connection=30).messages_per_s
    a, b = rates[RateMethod.BLOCKS], rates[RateMethod.KERNELS]
    assert abs(a - b) / a < 0.15


def test_message_rate_scales_with_connections():
    rates = []
    for n in (1, 4):
        cluster = build_extoll_cluster()
        conns = setup_extoll_connections(cluster, 4 * KIB, n)
        rates.append(run_extoll_message_rate(
            cluster, conns, RateMethod.BLOCKS, per_connection=30).messages_per_s)
    assert rates[1] > 2 * rates[0]


def test_message_rate_rejects_empty_inputs():
    cluster = build_extoll_cluster()
    conns = setup_extoll_connections(cluster, 4 * KIB, 1)
    with pytest.raises(BenchmarkError):
        run_extoll_message_rate(cluster, [], RateMethod.BLOCKS)
    with pytest.raises(BenchmarkError):
        run_extoll_message_rate(cluster, conns, RateMethod.BLOCKS,
                                per_connection=0)
