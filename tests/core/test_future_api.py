"""Tests for the §VI future-interface implementation."""

import pytest

from repro import build_extoll_cluster
from repro.core import (
    ExtollMode,
    gpu_rma_post_wide,
    run_extoll_pingpong,
    run_future_extoll_pingpong,
    setup_extoll_connection,
    setup_future_extoll_connection,
)
from repro.errors import BenchmarkError
from repro.extoll import NotifyFlags, RmaOp, RmaWorkRequest
from repro.memory import MemorySpace
from repro.units import KIB, US


def test_future_queues_live_in_gpu_memory():
    cluster = build_extoll_cluster()
    conn = setup_future_extoll_connection(cluster, 4 * KIB)
    for end in (conn.a, conn.b):
        q = end.port.requester_queue
        space = end.node.address_map.space_of(q.slot_addr(0))
        assert space is MemorySpace.GPU_DRAM


def test_wide_post_is_one_sysmem_transaction():
    cluster = build_extoll_cluster()
    conn = setup_future_extoll_connection(cluster, 4 * KIB)
    gpu = conn.a.node.gpu
    wr = RmaWorkRequest(op=RmaOp.PUT, port=conn.a.port.port_id, dst_node=1,
                        src_nla=conn.a.send_nla.base,
                        dst_nla=conn.b.recv_nla.base, size=64,
                        flags=NotifyFlags.NONE)

    def kernel(ctx):
        yield from gpu_rma_post_wide(ctx, conn.a.port.page_addr, wr)

    before = gpu.counters.snapshot()
    h = gpu.launch(kernel)
    cluster.sim.run_until_complete(h, limit=1.0)
    diff = gpu.counters.diff(before)
    assert diff.sysmem_write_transactions == 1  # vs 3 for the scalar path


def test_wide_post_still_triggers_transfer():
    cluster = build_extoll_cluster()
    conn = setup_future_extoll_connection(cluster, 4 * KIB)
    conn.a.node.gpu.dram.write(conn.a.send_buf.base, b"W" * 64)
    wr = RmaWorkRequest(op=RmaOp.PUT, port=conn.a.port.port_id, dst_node=1,
                        src_nla=conn.a.send_nla.base,
                        dst_nla=conn.b.recv_nla.base, size=64,
                        flags=NotifyFlags.NONE)

    def kernel(ctx):
        yield from gpu_rma_post_wide(ctx, conn.a.port.page_addr, wr)
        yield from ctx.fence_system()

    h = conn.a.node.gpu.launch(kernel)
    cluster.sim.run_until_complete(h, limit=1.0)
    cluster.sim.run(until=cluster.sim.now + 100 * US)
    assert conn.b.node.gpu.dram.read(conn.b.recv_buf.base, 64) == b"W" * 64


def test_future_pingpong_runs_and_beats_direct():
    size = 256
    cluster = build_extoll_cluster()
    conn = setup_extoll_connection(cluster, 4 * KIB)
    direct = run_extoll_pingpong(cluster, conn, ExtollMode.DIRECT, size,
                                 iterations=8, warmup=2)
    cluster2 = build_extoll_cluster()
    conn2 = setup_future_extoll_connection(cluster2, 4 * KIB)
    future = run_future_extoll_pingpong(cluster2, conn2, size,
                                        iterations=8, warmup=2)
    assert future.latency < direct.latency * 0.85


def test_future_polling_runs_out_of_l2():
    cluster = build_extoll_cluster()
    conn = setup_future_extoll_connection(cluster, 4 * KIB)
    gpu = conn.a.node.gpu
    before = gpu.counters.snapshot()
    run_future_extoll_pingpong(cluster, conn, 256, iterations=10, warmup=0)
    diff = gpu.counters.diff(before)
    # Wide WR posts are the only sysmem stores; no sysmem polling reads.
    assert diff.sysmem_write_transactions == 10
    assert diff.sysmem_read_transactions == 0
    assert diff.l2_read_hits > 0


def test_future_pingpong_validation():
    cluster = build_extoll_cluster()
    conn = setup_future_extoll_connection(cluster, 4 * KIB)
    with pytest.raises(BenchmarkError):
        run_future_extoll_pingpong(cluster, conn, 0)
    with pytest.raises(BenchmarkError):
        run_future_extoll_pingpong(cluster, conn, 64 * KIB)
    with pytest.raises(BenchmarkError):
        run_future_extoll_pingpong(cluster, conn, 64, iterations=0)
