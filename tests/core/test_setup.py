"""Unit tests for connection setup builders."""

import pytest

from repro import build_extoll_cluster, build_ib_cluster
from repro.errors import BenchmarkError
from repro.core import (
    setup_extoll_connection,
    setup_extoll_connections,
    setup_ib_connection,
    setup_ib_connections,
)
from repro.memory import MemorySpace
from repro.units import KIB


def test_extoll_connection_has_registered_gpu_buffers():
    cluster = build_extoll_cluster()
    conn = setup_extoll_connection(cluster, 8 * KIB)
    for end in (conn.a, conn.b):
        # Payload buffers live in GPU device memory (dev2dev).
        assert end.node.gpu.dram.range.contains(end.send_buf.base,
                                                end.send_buf.size)
        # NLAs translate back to the physical buffers.
        atu = end.node.nic.atu
        assert atu.translate(end.send_nla.base) == end.send_buf.base
        assert atu.translate(end.recv_nla.base) == end.recv_buf.base


def test_extoll_control_resources_mapped_into_gpu():
    cluster = build_extoll_cluster()
    conn = setup_extoll_connection(cluster, 4 * KIB)
    for end in (conn.a, conn.b):
        uva = end.node.gpu.uva
        assert uva.try_translate(end.port.page_addr) is not None
        assert uva.try_translate(end.port.requester_queue.slot_addr(0)) is not None
        assert uva.try_translate(end.flag_page.base) is not None


def test_extoll_connections_use_matching_port_ids():
    cluster = build_extoll_cluster()
    conns = setup_extoll_connections(cluster, 4 * KIB, 3)
    for i, conn in enumerate(conns):
        assert conn.a.port.port_id == i
        assert conn.b.port.port_id == i


def test_extoll_peer_of():
    cluster = build_extoll_cluster()
    conn = setup_extoll_connection(cluster, 4 * KIB)
    assert conn.peer_of(conn.a) is conn.b
    assert conn.peer_of(conn.b) is conn.a


def test_ib_connection_rkey_exchange():
    cluster = build_ib_cluster()
    conn = setup_ib_connection(cluster, 4 * KIB)
    assert conn.a.remote_recv_addr == conn.b.recv_buf.base
    assert conn.b.remote_recv_addr == conn.a.recv_buf.base
    # The exchanged rkeys validate against the peer's MR table.
    conn.b.node.nic.mr_table.validate_remote(
        conn.a.rkey_remote, conn.a.remote_recv_addr, 64)
    conn.a.node.nic.mr_table.validate_remote(
        conn.b.rkey_remote, conn.b.remote_recv_addr, 64)


@pytest.mark.parametrize("location,space", [("gpu", MemorySpace.GPU_DRAM),
                                            ("host", MemorySpace.HOST_DRAM)])
def test_ib_queue_buffers_placed_as_requested(location, space):
    cluster = build_ib_cluster()
    conn = setup_ib_connection(cluster, 4 * KIB, buffer_location=location)
    for end in (conn.a, conn.b):
        amap = end.node.address_map
        assert amap.space_of(end.qp.sq_buffer.base) is space
        assert amap.space_of(end.qp.send_cq.buffer.base) is space


def test_ib_qps_connected_rts():
    from repro.ib import QpState
    cluster = build_ib_cluster()
    conn = setup_ib_connection(cluster, 4 * KIB)
    assert conn.a.qp.state is QpState.RTS
    assert conn.b.qp.state is QpState.RTS
    assert conn.a.qp.remote_qp_num == conn.b.qp.qp_num


def test_bad_inputs_rejected():
    cluster = build_extoll_cluster()
    with pytest.raises(BenchmarkError):
        setup_extoll_connections(cluster, 4 * KIB, 0)
    cluster2 = build_ib_cluster()
    with pytest.raises(BenchmarkError):
        setup_ib_connection(cluster2, 4 * KIB, buffer_location="tape")
    with pytest.raises(BenchmarkError):
        setup_ib_connections(cluster2, 4 * KIB, 0)


def test_many_connections_allocate_disjoint_resources():
    cluster = build_extoll_cluster()
    conns = setup_extoll_connections(cluster, 4 * KIB, 8)
    pages = {c.a.port.page_addr for c in conns}
    bufs = {c.a.send_buf.base for c in conns} | {c.a.recv_buf.base for c in conns}
    assert len(pages) == 8
    assert len(bufs) == 16
