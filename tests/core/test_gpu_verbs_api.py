"""Unit tests for the GPU-resident InfiniBand Verbs API."""

import pytest

from repro import build_ib_cluster
from repro.core import (
    gpu_poll_cq,
    gpu_poll_last_element,
    gpu_post_send,
    gpu_wait_cq,
    setup_ib_connection,
)
from repro.errors import VerbsError
from repro.ib import IbOpcode, WcOpcode, WcStatus, Wqe
from repro.units import KIB, US


@pytest.fixture(params=["gpu", "host"])
def testbed(request):
    cluster = build_ib_cluster()
    conn = setup_ib_connection(cluster, 4 * KIB,
                               buffer_location=request.param)
    return cluster, conn, request.param


def write_wqe(conn, size=64, wr_id=1):
    return Wqe(opcode=IbOpcode.RDMA_WRITE, wr_id=wr_id,
               local_addr=conn.a.send_buf.base, lkey=conn.a.lkey, length=size,
               remote_addr=conn.a.remote_recv_addr, rkey=conn.a.rkey_remote)


def test_gpu_post_send_completes(testbed):
    cluster, conn, _loc = testbed
    conn.a.node.gpu.dram.write(conn.a.send_buf.base, b"V" * 64)

    def kernel(ctx):
        idx = yield from gpu_post_send(ctx, conn.a.node.nic, conn.a.qp,
                                       write_wqe(conn), 0)
        cqe, polls = yield from gpu_wait_cq(ctx, conn.a.send_cq_consumer())
        return idx, cqe, polls

    h = conn.a.node.gpu.launch(kernel)
    cluster.sim.run_until_complete(h, limit=1.0)
    idx, cqe, polls = h.block_result(0)
    assert idx == 1
    assert cqe.status is WcStatus.SUCCESS
    assert cqe.opcode is WcOpcode.RDMA_WRITE
    assert cqe.wr_id == 1
    cluster.sim.run(until=cluster.sim.now + 100 * US)
    assert conn.b.node.gpu.dram.read(conn.b.recv_buf.base, 64) == b"V" * 64


def test_gpu_post_costs_442_instructions_unoptimized(testbed):
    cluster, conn, _loc = testbed
    gpu = conn.a.node.gpu
    marks = {}

    def kernel(ctx):
        before = gpu.counters.snapshot()
        yield from gpu_post_send(ctx, conn.a.node.nic, conn.a.qp,
                                 write_wqe(conn), 0, optimized=False)
        marks["instr"] = gpu.counters.diff(before).instructions_executed

    h = gpu.launch(kernel)
    cluster.sim.run_until_complete(h, limit=1.0)
    assert marks["instr"] == 442


def test_gpu_poll_cq_miss_is_cheap(testbed):
    cluster, conn, _loc = testbed
    gpu = conn.a.node.gpu
    marks = {}

    def kernel(ctx):
        before = gpu.counters.snapshot()
        cqe = yield from gpu_poll_cq(ctx, conn.a.send_cq_consumer())
        marks["instr"] = gpu.counters.diff(before).instructions_executed
        return cqe

    h = gpu.launch(kernel)
    cluster.sim.run_until_complete(h, limit=1.0)
    assert h.block_result(0) is None
    assert marks["instr"] < 30  # far below the 283 of a successful poll


def test_wqe_lands_in_selected_buffer(testbed):
    cluster, conn, loc = testbed

    def kernel(ctx):
        yield from gpu_post_send(ctx, conn.a.node.nic, conn.a.qp,
                                 write_wqe(conn, wr_id=9), 0)
        yield from gpu_wait_cq(ctx, conn.a.send_cq_consumer())

    gpu = conn.a.node.gpu
    before = gpu.counters.snapshot()
    h = gpu.launch(kernel)
    cluster.sim.run_until_complete(h, limit=1.0)
    diff = gpu.counters.diff(before)
    if loc == "host":
        # Eight WQE stores + doorbell cross PCIe.
        assert diff.sysmem_write_transactions >= 9
    else:
        # Only the doorbell crosses PCIe; WQE stays in device memory.
        assert diff.sysmem_write_transactions == 1
        assert diff.global_store_accesses >= 8


def test_gpu_wait_cq_max_polls(testbed):
    cluster, conn, _loc = testbed

    def kernel(ctx):
        yield from gpu_wait_cq(ctx, conn.a.send_cq_consumer(), max_polls=4)

    h = conn.a.node.gpu.launch(kernel)
    cluster.sim.run(until=cluster.sim.now + 500 * US)
    assert not h.ok
    with pytest.raises(VerbsError):
        raise h.value


def test_ping_pong_markers_via_poll_last_element(testbed):
    cluster, conn, _loc = testbed

    def sender(ctx):
        yield from ctx.store_u64(conn.a.send_buf.base + 56, 0xBEEF)
        yield from gpu_post_send(ctx, conn.a.node.nic, conn.a.qp,
                                 write_wqe(conn), 0)
        yield from gpu_wait_cq(ctx, conn.a.send_cq_consumer())

    def receiver(ctx):
        polls = yield from gpu_poll_last_element(
            ctx, conn.b.recv_buf.base + 56, 0xBEEF)
        return polls

    hs = conn.a.node.gpu.launch(sender)
    hr = conn.b.node.gpu.launch(receiver)
    cluster.sim.run_until_complete(hs, hr, limit=1.0)
    assert hr.block_result(0) >= 1
