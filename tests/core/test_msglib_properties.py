"""Property tests: msglib slot arithmetic must hold for ANY ring geometry
and arbitrarily large sequence numbers (seq wraparound)."""

from hypothesis import given, strategies as st

from repro.core.msglib import _HEADER_BYTES, _LEN_MASK, _SEQ_SHIFT, ChannelEnd


def make_end(slot_size, slots):
    return ChannelEnd(src_node_id=0, dst_node_id=1, port_id=0, page_addr=0,
                      staging=None, staging_nla=None, credit_word=None,
                      credit_word_nla=None, ring=None, ring_nla=None,
                      slot_size=slot_size, slots=slots)


slot_sizes = st.integers(min_value=2, max_value=512).map(lambda w: w * 8)
slot_counts = st.integers(min_value=1, max_value=256)
seqs = st.integers(min_value=1, max_value=2**48 - 1)


@given(slot_sizes, slot_counts, seqs)
def test_slot_offset_stays_inside_the_ring(slot_size, slots, seq):
    end = make_end(slot_size, slots)
    off = end.slot_offset(seq)
    assert 0 <= off < slots * slot_size
    assert off % slot_size == 0


@given(slot_sizes, slot_counts, seqs)
def test_slot_offset_is_periodic_in_ring_depth(slot_size, slots, seq):
    end = make_end(slot_size, slots)
    assert end.slot_offset(seq) == end.slot_offset(seq + slots)
    assert end.slot_offset(seq) == end.slot_offset(seq + 7 * slots)


@given(slot_sizes, slot_counts, seqs)
def test_window_of_live_seqs_maps_to_distinct_slots(slot_size, slots, seq):
    """Flow control admits at most ``slots`` unacknowledged messages; all of
    them must occupy distinct slots or retransmission would clobber live
    data."""
    end = make_end(slot_size, slots)
    offsets = {end.slot_offset(s) for s in range(seq, seq + slots)}
    assert len(offsets) == slots


@given(slot_sizes, seqs)
def test_header_roundtrips_seq_and_length(slot_size, seq):
    end = make_end(slot_size, 8)
    for length in (0, 1, end.payload_capacity):
        header = (seq << _SEQ_SHIFT) | length
        assert header >> _SEQ_SHIFT == seq
        assert header & _LEN_MASK == length


@given(slot_sizes)
def test_payload_capacity_leaves_room_for_the_header(slot_size):
    end = make_end(slot_size, 4)
    assert end.payload_capacity == slot_size - _HEADER_BYTES
    assert 0 < end.payload_capacity < slot_size
    # Any legal payload length fits in the header's length field.
    assert end.payload_capacity <= _LEN_MASK
