"""Connections must be reusable across measurements (like long-lived ports
and QPs in the real libraries)."""

import pytest

from repro import build_extoll_cluster, build_ib_cluster
from repro.core import (
    ExtollMode,
    IbMode,
    RateMethod,
    run_extoll_bandwidth,
    run_extoll_message_rate,
    run_extoll_pingpong,
    run_ib_bandwidth,
    run_ib_pingpong,
    setup_extoll_connection,
    setup_extoll_connections,
    setup_ib_connection,
)
from repro.units import KIB


@pytest.mark.parametrize("mode", list(ExtollMode))
def test_extoll_pingpong_reuse_same_connection(mode):
    cluster = build_extoll_cluster()
    conn = setup_extoll_connection(cluster, 4 * KIB)
    first = run_extoll_pingpong(cluster, conn, mode, 256, iterations=4, warmup=1)
    second = run_extoll_pingpong(cluster, conn, mode, 256, iterations=4, warmup=1)
    assert first.latency > 0
    assert second.latency > 0
    # Same configuration, same connection: latencies agree closely.
    assert abs(second.latency - first.latency) / first.latency < 0.3


@pytest.mark.parametrize("mode,loc", [(IbMode.BUF_ON_GPU, "gpu"),
                                      (IbMode.HOST_CONTROLLED, "host")])
def test_ib_pingpong_reuse_same_connection(mode, loc):
    cluster = build_ib_cluster()
    conn = setup_ib_connection(cluster, 4 * KIB, buffer_location=loc)
    first = run_ib_pingpong(cluster, conn, mode, 256, iterations=4, warmup=1)
    second = run_ib_pingpong(cluster, conn, mode, 256, iterations=4, warmup=1)
    assert second.latency > 0
    assert abs(second.latency - first.latency) / first.latency < 0.3


def test_size_sweep_on_one_connection():
    """The natural benchmarking pattern: one connection, many sizes."""
    cluster = build_extoll_cluster()
    conn = setup_extoll_connection(cluster, 64 * KIB)
    lats = []
    for size in (64, 1 * KIB, 16 * KIB, 64 * KIB):
        p = run_extoll_pingpong(cluster, conn, ExtollMode.POLL_ON_GPU, size,
                                iterations=4, warmup=1)
        lats.append(p.latency)
    assert lats == sorted(lats)  # monotone in size


def test_mixed_modes_on_one_connection():
    cluster = build_extoll_cluster()
    conn = setup_extoll_connection(cluster, 4 * KIB)
    host = run_extoll_pingpong(cluster, conn, ExtollMode.HOST_CONTROLLED, 64,
                               iterations=4, warmup=1)
    direct = run_extoll_pingpong(cluster, conn, ExtollMode.DIRECT, 64,
                                 iterations=4, warmup=1)
    assert direct.latency > host.latency


def test_bandwidth_then_pingpong_reuse():
    cluster = build_extoll_cluster()
    conn = setup_extoll_connection(cluster, 16 * KIB)
    bw = run_extoll_bandwidth(cluster, conn, ExtollMode.HOST_CONTROLLED,
                              4 * KIB, count=6)
    pp = run_extoll_pingpong(cluster, conn, ExtollMode.HOST_CONTROLLED, 4 * KIB,
                             iterations=4, warmup=1)
    assert bw.mb_per_s > 0
    assert pp.latency > 0


def test_ib_bandwidth_reuse():
    cluster = build_ib_cluster()
    conn = setup_ib_connection(cluster, 16 * KIB, buffer_location="host")
    b1 = run_ib_bandwidth(cluster, conn, IbMode.HOST_CONTROLLED, 4 * KIB, count=6)
    b2 = run_ib_bandwidth(cluster, conn, IbMode.HOST_CONTROLLED, 4 * KIB, count=6)
    assert abs(b2.mb_per_s - b1.mb_per_s) / b1.mb_per_s < 0.2


def test_message_rate_reuse():
    cluster = build_extoll_cluster()
    conns = setup_extoll_connections(cluster, 4 * KIB, 2)
    r1 = run_extoll_message_rate(cluster, conns, RateMethod.BLOCKS,
                                 per_connection=15)
    r2 = run_extoll_message_rate(cluster, conns, RateMethod.BLOCKS,
                                 per_connection=15)
    assert abs(r2.messages_per_s - r1.messages_per_s) / r1.messages_per_s < 0.25
