"""Integration tests for the Table I/II counter programs (small runs)."""

import pytest

from repro.core import (
    measure_extoll_polling_counters,
    measure_ib_buffer_counters,
    measure_single_op_instructions,
)

ITER = 20


@pytest.fixture(scope="module")
def table1():
    return measure_extoll_polling_counters(iterations=ITER)


@pytest.fixture(scope="module")
def table2():
    return measure_ib_buffer_counters(iterations=ITER)


def test_table1_labels(table1):
    sysmem, devmem = table1
    assert sysmem.label == "system memory"
    assert devmem.label == "device memory"
    assert sysmem.iterations == devmem.iterations == ITER


def test_table1_sysmem_vs_devmem_structure(table1):
    sysmem, devmem = table1
    assert devmem.counters.sysmem_read_transactions == 0
    assert devmem.counters.sysmem_write_transactions == 3 * ITER
    assert sysmem.counters.sysmem_read_transactions > 0
    assert sysmem.counters.l2_read_requests == 0
    assert devmem.counters.l2_read_hits > 0


def test_table1_instruction_ratio(table1):
    sysmem, devmem = table1
    ratio = (sysmem.counters.instructions_executed
             / devmem.counters.instructions_executed)
    assert ratio > 1.3


def test_table2_structure(table2):
    on_host, on_gpu = table2
    assert on_host.label == "Buffer on Host"
    assert (on_host.counters.sysmem_read_transactions
            > on_gpu.counters.sysmem_read_transactions)
    for r in table2:
        assert r.counters.instructions_executed > 300 * ITER


def test_single_op_instruction_costs():
    ops = measure_single_op_instructions()
    assert ops["ibv_post_send"] == 442
    assert ops["ibv_poll_cq"] == 283
    assert ops["extoll_post"] < 100
