"""Property-based end-to-end tests for the InfiniBand substrate."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cluster import build_ib_cluster
from repro.core import setup_ib_connection
from repro.ib import CqConsumer, IbOpcode, Wqe, ibv_post_send, ibv_wait_cq
from repro.sim import join_result
from repro.units import KIB

BUF = 8 * KIB


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    writes=st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=512),        # size
            st.integers(min_value=0, max_value=BUF - 512),  # dst offset
            st.binary(min_size=1, max_size=8),              # pattern seed
        ),
        min_size=1, max_size=5,
    )
)
def test_property_random_rdma_writes_preserve_data(writes):
    cluster = build_ib_cluster()
    conn = setup_ib_connection(cluster, BUF, buffer_location="host")
    reference = bytearray(BUF)
    payloads = [(size, off, (seed * (size // len(seed) + 1))[:size])
                for size, off, seed in writes]

    def sender(ctx):
        consumer = conn.a.host_send_cq_consumer()
        for i, (size, dst_off, pattern) in enumerate(payloads):
            conn.a.node.gpu.dram.write(conn.a.send_buf.base, pattern)
            wqe = Wqe(opcode=IbOpcode.RDMA_WRITE, wr_id=i,
                      local_addr=conn.a.send_buf.base, lkey=conn.a.lkey,
                      length=size,
                      remote_addr=conn.a.remote_recv_addr + dst_off,
                      rkey=conn.a.rkey_remote)
            conn.a.sq_index = yield from ibv_post_send(
                ctx, conn.a.node.nic, conn.a.qp, wqe, conn.a.sq_index)
            # Wait for the completion so the next overwrite of the send
            # buffer cannot race the previous DMA read.
            yield from ibv_wait_cq(ctx, consumer)

    proc = conn.a.node.cpu.spawn(sender)
    cluster.sim.run_until_complete(proc, limit=10.0)
    join_result(proc)
    cluster.sim.run(until=cluster.sim.now + 2e-3)

    for size, dst_off, pattern in payloads:
        reference[dst_off:dst_off + size] = pattern
    got = conn.b.node.gpu.dram.read(conn.b.recv_buf.base, BUF)
    assert got == bytes(reference)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(n=st.integers(min_value=1, max_value=12))
def test_property_one_cqe_per_send_in_order(n):
    cluster = build_ib_cluster()
    conn = setup_ib_connection(cluster, 4 * KIB, buffer_location="host")

    def sender(ctx):
        consumer = conn.a.host_send_cq_consumer()
        ids = []
        for i in range(n):
            wqe = Wqe(opcode=IbOpcode.RDMA_WRITE, wr_id=1000 + i,
                      local_addr=conn.a.send_buf.base, lkey=conn.a.lkey,
                      length=64, remote_addr=conn.a.remote_recv_addr,
                      rkey=conn.a.rkey_remote)
            conn.a.sq_index = yield from ibv_post_send(
                ctx, conn.a.node.nic, conn.a.qp, wqe, conn.a.sq_index)
        for _ in range(n):
            cqe = yield from ibv_wait_cq(ctx, consumer)
            ids.append(cqe.wr_id)
        return ids

    proc = conn.a.node.cpu.spawn(sender)
    cluster.sim.run_until_complete(proc, limit=10.0)
    ids = join_result(proc)
    assert ids == [1000 + i for i in range(n)]


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(size=st.integers(min_value=8, max_value=2 * KIB))
def test_property_rdma_read_returns_remote_bytes(size):
    cluster = build_ib_cluster()
    conn = setup_ib_connection(cluster, 4 * KIB, buffer_location="host")
    pattern = bytes((i * 13 + 5) % 256 for i in range(size))
    conn.b.node.gpu.dram.write(conn.b.recv_buf.base, pattern)

    def reader(ctx):
        # Read the peer's recv buffer back into our own recv buffer.
        mr = conn.a.node.nic.register_memory(conn.a.recv_buf)
        wqe = Wqe(opcode=IbOpcode.RDMA_READ, wr_id=1,
                  local_addr=conn.a.recv_buf.base, lkey=mr.lkey, length=size,
                  remote_addr=conn.a.remote_recv_addr, rkey=conn.a.rkey_remote)
        conn.a.sq_index = yield from ibv_post_send(
            ctx, conn.a.node.nic, conn.a.qp, wqe, conn.a.sq_index)
        yield from ibv_wait_cq(ctx, conn.a.host_send_cq_consumer())

    proc = conn.a.node.cpu.spawn(reader)
    cluster.sim.run_until_complete(proc, limit=10.0)
    join_result(proc)
    assert conn.a.node.gpu.dram.read(conn.a.recv_buf.base, size) == pattern
