"""Integration tests: InfiniBand verbs across the two-node cluster."""

import pytest

from repro.cluster import build_ib_cluster
from repro.errors import QpStateError, VerbsError
from repro.ib import (
    CqConsumer,
    IbOpcode,
    IbResources,
    WcOpcode,
    WcStatus,
    Wqe,
    connect_qps,
    ibv_post_recv,
    ibv_post_send,
    ibv_wait_cq,
)
from repro.sim import join_result
from repro.units import KIB, US


@pytest.fixture
def testbed():
    cluster = build_ib_cluster()
    a, b = cluster.a, cluster.b
    res_a, res_b = IbResources(a, a.nic), IbResources(b, b.nic)
    qp_a = res_a.create_qp("host")
    qp_b = res_b.create_qp("host")
    connect_qps(qp_a, 0, qp_b, 1)
    return cluster, a, b, qp_a, qp_b


def test_rdma_write_moves_data_and_completes(testbed):
    cluster, a, b, qp_a, qp_b = testbed
    src = a.host_malloc(4 * KIB)
    dst = b.host_malloc(4 * KIB)
    payload = bytes(range(256)) * 16
    a.host_mem.write(src.base, payload)
    mr_src = a.nic.register_memory(src)
    mr_dst = b.nic.register_memory(dst)

    def sender(ctx):
        w = Wqe(opcode=IbOpcode.RDMA_WRITE, wr_id=77, local_addr=src.base,
                lkey=mr_src.lkey, length=4 * KIB, remote_addr=dst.base,
                rkey=mr_dst.rkey)
        yield from ibv_post_send(ctx, a.nic, qp_a, w, 0)
        cqe = yield from ibv_wait_cq(ctx, CqConsumer(qp_a.send_cq))
        return cqe

    sp = a.cpu.spawn(sender)
    cluster.sim.run_until_complete(sp, limit=1.0)
    cqe = join_result(sp)
    assert cqe.status is WcStatus.SUCCESS
    assert cqe.opcode is WcOpcode.RDMA_WRITE
    assert cqe.wr_id == 77
    assert cqe.byte_len == 4 * KIB
    assert b.host_mem.read(dst.base, 4 * KIB) == payload


def test_send_recv_roundtrip(testbed):
    cluster, a, b, qp_a, qp_b = testbed
    src = a.host_malloc(1 * KIB)
    dst = b.host_malloc(1 * KIB)
    a.host_mem.write(src.base, b"S" * 1024)
    mr_src = a.nic.register_memory(src)
    mr_dst = b.nic.register_memory(dst)

    def receiver(ctx):
        w = Wqe(opcode=IbOpcode.RECV, wr_id=5, local_addr=dst.base,
                lkey=mr_dst.lkey, length=1 * KIB)
        yield from ibv_post_recv(ctx, b.nic, qp_b, w, 0)
        cqe = yield from ibv_wait_cq(ctx, CqConsumer(qp_b.recv_cq))
        return cqe

    def sender(ctx):
        yield from ctx.sleep(5 * US)  # let the receive get posted
        w = Wqe(opcode=IbOpcode.SEND, wr_id=6, local_addr=src.base,
                lkey=mr_src.lkey, length=1 * KIB)
        yield from ibv_post_send(ctx, a.nic, qp_a, w, 0)
        cqe = yield from ibv_wait_cq(ctx, CqConsumer(qp_a.send_cq))
        return cqe

    rp = b.cpu.spawn(receiver)
    sp = a.cpu.spawn(sender)
    cluster.sim.run_until_complete(rp, sp, limit=1.0)
    rcqe, scqe = join_result(rp), join_result(sp)
    assert rcqe.opcode is WcOpcode.RECV
    assert rcqe.wr_id == 5
    assert scqe.opcode is WcOpcode.SEND
    assert b.host_mem.read(dst.base, 1024) == b"S" * 1024


def test_send_without_recv_fails(testbed):
    """§IV-A: a SEND with no matching receive request fails."""
    cluster, a, b, qp_a, qp_b = testbed
    src = a.host_malloc(64)
    mr_src = a.nic.register_memory(src)

    def sender(ctx):
        w = Wqe(opcode=IbOpcode.SEND, wr_id=1, local_addr=src.base,
                lkey=mr_src.lkey, length=64)
        yield from ibv_post_send(ctx, a.nic, qp_a, w, 0)

    sp = a.cpu.spawn(sender)
    cluster.sim.run_until_complete(sp, limit=1.0)
    cluster.sim.run(until=cluster.sim.now + 200 * US)
    assert len(b.nic.async_errors) == 1
    assert isinstance(b.nic.async_errors[0], VerbsError)
    assert "receiver-not-ready" in str(b.nic.async_errors[0])


def test_rdma_write_with_immediate_completes_both_sides(testbed):
    cluster, a, b, qp_a, qp_b = testbed
    src = a.host_malloc(256)
    dst = b.host_malloc(256)
    a.host_mem.write(src.base, b"I" * 256)
    mr_src = a.nic.register_memory(src)
    mr_dst = b.nic.register_memory(dst)

    def receiver(ctx):
        # Receive address may be zero for write-with-imm (§IV-A).
        w = Wqe(opcode=IbOpcode.RECV, wr_id=0, local_addr=0, lkey=0, length=256)
        yield from ibv_post_recv(ctx, b.nic, qp_b, w, 0)
        cqe = yield from ibv_wait_cq(ctx, CqConsumer(qp_b.recv_cq))
        return cqe

    def sender(ctx):
        yield from ctx.sleep(5 * US)
        w = Wqe(opcode=IbOpcode.RDMA_WRITE_WITH_IMM, wr_id=9,
                local_addr=src.base, lkey=mr_src.lkey, length=256,
                remote_addr=dst.base, rkey=mr_dst.rkey, immediate=0x1234)
        yield from ibv_post_send(ctx, a.nic, qp_a, w, 0)
        cqe = yield from ibv_wait_cq(ctx, CqConsumer(qp_a.send_cq))
        return cqe

    rp = b.cpu.spawn(receiver)
    sp = a.cpu.spawn(sender)
    cluster.sim.run_until_complete(rp, sp, limit=1.0)
    rcqe = join_result(rp)
    assert rcqe.opcode is WcOpcode.RECV_RDMA_WITH_IMM
    assert rcqe.immediate == 0x1234
    assert b.host_mem.read(dst.base, 256) == b"I" * 256


def test_rdma_read_pulls_remote_data(testbed):
    cluster, a, b, qp_a, qp_b = testbed
    local = a.host_malloc(2 * KIB)
    remote = b.host_malloc(2 * KIB)
    b.host_mem.write(remote.base, b"Q" * 2048)
    mr_local = a.nic.register_memory(local)
    mr_remote = b.nic.register_memory(remote)

    def reader(ctx):
        w = Wqe(opcode=IbOpcode.RDMA_READ, wr_id=3, local_addr=local.base,
                lkey=mr_local.lkey, length=2048, remote_addr=remote.base,
                rkey=mr_remote.rkey)
        yield from ibv_post_send(ctx, a.nic, qp_a, w, 0)
        cqe = yield from ibv_wait_cq(ctx, CqConsumer(qp_a.send_cq))
        return cqe

    rp = a.cpu.spawn(reader)
    cluster.sim.run_until_complete(rp, limit=1.0)
    cqe = join_result(rp)
    assert cqe.opcode is WcOpcode.RDMA_READ
    assert a.host_mem.read(local.base, 2048) == b"Q" * 2048


def test_gpu_resident_buffers_work(testbed):
    """dev2devBufOnGPU: rings + CQ + payload all in GPU device memory."""
    cluster, a, b, _, _ = testbed
    res_a, res_b = IbResources(a, a.nic), IbResources(b, b.nic)
    qp_a = res_a.create_qp("gpu")
    qp_b = res_b.create_qp("gpu")
    connect_qps(qp_a, 0, qp_b, 1)
    src = a.gpu_malloc(1 * KIB)
    dst = b.gpu_malloc(1 * KIB)
    a.gpu.dram.write(src.base, b"g" * 1024)
    mr_src = a.nic.register_memory(src)
    mr_dst = b.nic.register_memory(dst)

    def sender(ctx):
        w = Wqe(opcode=IbOpcode.RDMA_WRITE, wr_id=1, local_addr=src.base,
                lkey=mr_src.lkey, length=1024, remote_addr=dst.base,
                rkey=mr_dst.rkey)
        yield from ibv_post_send(ctx, a.nic, qp_a, w, 0)
        cqe = yield from ibv_wait_cq(ctx, CqConsumer(qp_a.send_cq))
        return cqe

    sp = a.cpu.spawn(sender)
    cluster.sim.run_until_complete(sp, limit=1.0)
    assert join_result(sp).status is WcStatus.SUCCESS
    assert b.gpu.dram.read(dst.base, 1024) == b"g" * 1024


def test_unconnected_qp_rejects_send(testbed):
    cluster, a, b, qp_a, qp_b = testbed
    res_a = IbResources(a, a.nic)
    lone_qp = res_a.create_qp("host")
    src = a.host_malloc(64)
    mr = a.nic.register_memory(src)

    def sender(ctx):
        w = Wqe(opcode=IbOpcode.SEND, wr_id=1, local_addr=src.base,
                lkey=mr.lkey, length=64)
        yield from ibv_post_send(ctx, a.nic, lone_qp, w, 0)

    sp = a.cpu.spawn(sender)
    cluster.sim.run(until=cluster.sim.now + 100 * US)
    with pytest.raises(QpStateError):
        join_result(sp)


def test_bad_rkey_rejected(testbed):
    cluster, a, b, qp_a, qp_b = testbed
    src = a.host_malloc(64)
    dst = b.host_malloc(64)
    mr_src = a.nic.register_memory(src)
    b.nic.register_memory(dst)

    def sender(ctx):
        w = Wqe(opcode=IbOpcode.RDMA_WRITE, wr_id=1, local_addr=src.base,
                lkey=mr_src.lkey, length=64, remote_addr=dst.base,
                rkey=0xBADBAD)
        yield from ibv_post_send(ctx, a.nic, qp_a, w, 0)

    sp = a.cpu.spawn(sender)
    cluster.sim.run_until_complete(sp, limit=1.0)
    cluster.sim.run(until=cluster.sim.now + 200 * US)
    from repro.errors import RegistrationError
    assert any(isinstance(e, RegistrationError) for e in b.nic.async_errors)
    assert b.host_mem.read(dst.base, 64) == bytes(64)  # nothing was written


def test_multiple_writes_complete_in_order(testbed):
    cluster, a, b, qp_a, qp_b = testbed
    src = a.host_malloc(8 * KIB)
    dst = b.host_malloc(8 * KIB)
    mr_src = a.nic.register_memory(src)
    mr_dst = b.nic.register_memory(dst)

    def sender(ctx):
        idx = 0
        for i in range(4):
            a.host_mem.write(src.base + i * KIB, bytes([i + 1]) * KIB)
            w = Wqe(opcode=IbOpcode.RDMA_WRITE, wr_id=100 + i,
                    local_addr=src.base + i * KIB, lkey=mr_src.lkey,
                    length=KIB, remote_addr=dst.base + i * KIB,
                    rkey=mr_dst.rkey)
            idx = yield from ibv_post_send(ctx, a.nic, qp_a, w, idx)
        consumer = CqConsumer(qp_a.send_cq)
        ids = []
        for _ in range(4):
            cqe = yield from ibv_wait_cq(ctx, consumer)
            ids.append(cqe.wr_id)
        return ids

    sp = a.cpu.spawn(sender)
    cluster.sim.run_until_complete(sp, limit=1.0)
    assert join_result(sp) == [100, 101, 102, 103]
    for i in range(4):
        assert b.host_mem.read(dst.base + i * KIB, KIB) == bytes([i + 1]) * KIB
