"""Unit + property tests for IB wire formats and registration."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import RegistrationError, VerbsError
from repro.ib import (
    Cqe,
    IbOpcode,
    MrTable,
    WcOpcode,
    WcStatus,
    Wqe,
    WQE_BYTES,
    poll_cq_instruction_cost,
    post_send_instruction_cost,
    post_send_instruction_cost_static_optimized,
)
from repro.memory import AddressRange


def wqe(**kw):
    defaults = dict(opcode=IbOpcode.RDMA_WRITE, wr_id=7, local_addr=0x1000,
                    lkey=0xC0DE, length=256, remote_addr=0x2000, rkey=0xC0DF)
    defaults.update(kw)
    return Wqe(**defaults)


def test_wqe_is_64_bytes():
    assert len(wqe().encode()) == WQE_BYTES == 64


def test_wqe_roundtrip():
    w = wqe(opcode=IbOpcode.SEND, immediate=0xABCD, flags=3)
    assert Wqe.decode(w.encode()) == w


def test_wqe_is_big_endian():
    w = wqe(length=0x01020304)
    raw = w.encode()
    # length sits in the low 32 bits of big-endian word 0.
    assert raw[4:8] == bytes([0x01, 0x02, 0x03, 0x04])


def test_wqe_validation():
    with pytest.raises(VerbsError):
        wqe(length=0)
    with pytest.raises(VerbsError):
        wqe(length=1 << 32)
    with pytest.raises(VerbsError):
        wqe(rkey=1 << 32)


def test_wqe_bad_opcode():
    raw = bytearray(wqe().encode())
    raw[0] = 0xEE
    with pytest.raises(VerbsError):
        Wqe.decode(bytes(raw))


@given(
    opcode=st.sampled_from([IbOpcode.RDMA_WRITE, IbOpcode.RDMA_WRITE_WITH_IMM,
                            IbOpcode.SEND, IbOpcode.RDMA_READ, IbOpcode.RECV]),
    wr_id=st.integers(0, 2**64 - 1),
    local=st.integers(0, 2**48),
    remote=st.integers(0, 2**48),
    lkey=st.integers(0, 2**32 - 1),
    rkey=st.integers(0, 2**32 - 1),
    length=st.integers(1, 2**32 - 1),
    imm=st.integers(0, 2**32 - 1),
)
def test_property_wqe_roundtrip(opcode, wr_id, local, remote, lkey, rkey,
                                length, imm):
    w = Wqe(opcode=opcode, wr_id=wr_id, local_addr=local, lkey=lkey,
            length=length, remote_addr=remote, rkey=rkey, immediate=imm)
    assert Wqe.decode(w.encode()) == w


def test_instruction_costs_match_paper():
    """§V-B3: 442 instructions to post a WR, 283 for a successful poll."""
    assert post_send_instruction_cost() == 442
    assert poll_cq_instruction_cost() == 283
    assert post_send_instruction_cost_static_optimized() < 442


# --- CQE ----------------------------------------------------------------------

def test_cqe_roundtrip():
    c = Cqe(wr_id=11, opcode=WcOpcode.RECV_RDMA_WITH_IMM,
            status=WcStatus.SUCCESS, qp_num=9, byte_len=4096, immediate=0xFE)
    assert Cqe.decode(c.encode()) == c


def test_cqe_valid_bit():
    c = Cqe(wr_id=1, opcode=WcOpcode.SEND, status=WcStatus.SUCCESS,
            qp_num=2, byte_len=8)
    word1 = int.from_bytes(c.encode()[8:16], "big")
    assert Cqe.is_valid_word(word1)
    assert not Cqe.is_valid_word(0)
    with pytest.raises(VerbsError):
        Cqe.decode(b"\x00" * 32)


@given(
    wr_id=st.integers(0, 2**64 - 1),
    opcode=st.sampled_from(list(WcOpcode)),
    status=st.sampled_from(list(WcStatus)),
    qp_num=st.integers(0, 2**24 - 1),
    blen=st.integers(0, 2**32 - 1),
)
def test_property_cqe_roundtrip(wr_id, opcode, status, qp_num, blen):
    c = Cqe(wr_id, opcode, status, qp_num, blen)
    assert Cqe.decode(c.encode()) == c


# --- MR table ----------------------------------------------------------------------

def test_mr_register_and_validate():
    t = MrTable()
    mr = t.register(AddressRange(0x1000, 4096))
    assert mr.lkey != mr.rkey
    t.validate_local(mr.lkey, 0x1000, 4096)
    t.validate_remote(mr.rkey, 0x1800, 8)


def test_mr_bad_key_rejected():
    t = MrTable()
    t.register(AddressRange(0x1000, 4096))
    with pytest.raises(RegistrationError):
        t.validate_local(0xDEAD, 0x1000, 8)
    with pytest.raises(RegistrationError):
        t.validate_remote(0xDEAD, 0x1000, 8)


def test_mr_out_of_bounds_rejected():
    t = MrTable()
    mr = t.register(AddressRange(0x1000, 4096))
    with pytest.raises(RegistrationError):
        t.validate_local(mr.lkey, 0x1000, 8192)
    with pytest.raises(RegistrationError):
        t.validate_remote(mr.rkey, 0x0F00, 8)


def test_mr_lkey_not_usable_as_rkey():
    t = MrTable()
    mr = t.register(AddressRange(0x1000, 4096))
    with pytest.raises(RegistrationError):
        t.validate_remote(mr.lkey, 0x1000, 8)


def test_mr_deregister():
    t = MrTable()
    mr = t.register(AddressRange(0x1000, 4096))
    t.deregister(mr)
    with pytest.raises(RegistrationError):
        t.validate_local(mr.lkey, 0x1000, 8)
    with pytest.raises(RegistrationError):
        t.deregister(mr)


def test_mr_keys_unique_across_registrations():
    t = MrTable()
    keys = set()
    for i in range(10):
        mr = t.register(AddressRange(0x1000 + i * 0x10000, 4096))
        keys.add(mr.lkey)
        keys.add(mr.rkey)
    assert len(keys) == 20
