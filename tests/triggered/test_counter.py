"""Unit tests for threshold counters and watches."""

import pytest

from repro.cluster import build_extoll_cluster
from repro.errors import TriggeredError
from repro.triggered import TriggeredUnit, triggered_unit


@pytest.fixture
def unit():
    cluster = build_extoll_cluster()
    return TriggeredUnit(cluster.a)


def test_counter_ids_are_sequential(unit):
    c0 = unit.counter("a")
    c1 = unit.counter("b")
    assert (c0.id, c1.id) == (0, 1)
    assert unit.counters[1] is c1
    assert c0.name == "a"


def test_watch_fires_at_threshold(unit):
    c = unit.counter()
    fired = []
    c.watch(3, lambda: fired.append(c.value))
    c.add()
    c.add()
    assert fired == []
    c.add()
    assert fired == [3]


def test_watch_fires_immediately_if_already_past(unit):
    c = unit.counter()
    c.add(5)
    fired = []
    w = c.watch(4, lambda: fired.append(True))
    assert fired == [True]
    assert w.fired


def test_watch_threshold_zero_fires_at_registration(unit):
    c = unit.counter()
    fired = []
    c.watch(0, lambda: fired.append(True))
    assert fired == [True]


def test_watches_fire_in_registration_order(unit):
    c = unit.counter()
    order = []
    c.watch(2, lambda: order.append("first"))
    c.watch(1, lambda: order.append("second"))
    c.add(2)
    assert order == ["first", "second"]


def test_watch_fires_once(unit):
    c = unit.counter()
    fired = []
    c.watch(1, lambda: fired.append(True))
    c.add()
    c.add()
    assert fired == [True]
    assert c.armed_watches == 0


def test_cancelled_watch_never_fires(unit):
    c = unit.counter()
    fired = []
    w = c.watch(1, lambda: fired.append(True))
    assert w.cancel()
    assert not w.cancel()  # idempotent
    c.add()
    assert fired == []
    assert c.armed_watches == 0


def test_callback_may_arm_new_watch_on_same_counter(unit):
    """A firing watch arming a follow-up (chain DAG pattern) must not be
    swept in the same pass unless the value already satisfies it."""
    c = unit.counter()
    order = []

    def first():
        order.append("first")
        c.watch(2, lambda: order.append("second"))

    c.watch(1, first)
    c.add()
    assert order == ["first"]
    c.add()
    assert order == ["first", "second"]


def test_non_positive_amount_rejected(unit):
    c = unit.counter()
    with pytest.raises(TriggeredError):
        c.add(0)
    with pytest.raises(TriggeredError):
        c.add(-2)


def test_negative_threshold_rejected(unit):
    c = unit.counter()
    with pytest.raises(TriggeredError):
        c.watch(-1, lambda: None)


def test_ticks_counted(unit):
    c = unit.counter()
    c.add(7)
    c.add(1)
    assert c.value == 8
    assert c.ticks == 2
    assert unit.stats.counter_ticks == 2


def test_triggered_unit_helper_is_idempotent():
    cluster = build_extoll_cluster()
    u1 = triggered_unit(cluster.a)
    u2 = triggered_unit(cluster.a)
    assert u1 is u2
    with pytest.raises(TriggeredError):
        TriggeredUnit(cluster.a)  # direct double-attach still rejected
