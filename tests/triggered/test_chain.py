"""Descriptor chains end to end: stage once, fire by counter, zero MMIO."""

import pytest

from repro.cluster import build_extoll_cluster
from repro.errors import TriggeredError
from repro.extoll import NotifyFlags, RmaOp, RmaWorkRequest
from repro.triggered import ChainState, TriggeredUnit
from repro.units import KIB, US


@pytest.fixture
def testbed():
    cluster = build_extoll_cluster()
    a, b = cluster.a, cluster.b
    a.nic.open_port(0)
    b.nic.open_port(0)
    return cluster, a, b, TriggeredUnit(a), TriggeredUnit(b)


def _staged_put(a, b, payload: bytes, port: int = 0, dst_node: int = 1,
                flags=NotifyFlags.NONE):
    """Register a src/dst pair and return the WR that puts payload a→b."""
    src = a.host_malloc(len(payload))
    dst = b.host_malloc(len(payload))
    a.host_mem.write(src.base, payload)
    src_nla = a.nic.register_memory(src)
    dst_nla = b.nic.register_memory(dst)
    wr = RmaWorkRequest(op=RmaOp.PUT, port=port, dst_node=dst_node,
                        src_nla=src_nla.base, dst_nla=dst_nla.base,
                        size=len(payload), flags=flags)
    return wr, dst


def test_fired_chain_moves_data_with_zero_mmio(testbed):
    cluster, a, b, ua, _ = testbed
    wr1, dst1 = _staged_put(a, b, b"x" * 1 * KIB)
    wr2, dst2 = _staged_put(a, b, b"y" * 2 * KIB)
    chain = ua.chain("pair").append(wr1).append(wr2)
    chain.fire()
    cluster.sim.run(until=200 * US)
    assert b.host_mem.read(dst1.base, 1 * KIB) == b"x" * 1 * KIB
    assert b.host_mem.read(dst2.base, 2 * KIB) == b"y" * 2 * KIB
    assert chain.state is ChainState.COMPLETED
    assert chain.completed.processed
    # NIC-internal fire: neither a WR post nor a doorbell crossed the BAR.
    assert a.nic.batch_doorbells == 0
    assert a.nic.trigger_doorbells == 0
    assert ua.stats.descriptors_fired == 2


def test_armed_chain_fires_when_counter_reaches_threshold(testbed):
    cluster, a, b, ua, _ = testbed
    wr, dst = _staged_put(a, b, b"z" * 64)
    c = ua.counter("go")
    chain = ua.chain().append(wr).arm(c, 2)
    assert chain.state is ChainState.ARMED
    assert ua.armed_chains == 1
    cluster.sim.run(until=10 * US)
    assert b.host_mem.read(dst.base, 64) != b"z" * 64  # not yet
    c.add()
    cluster.sim.run(until=50 * US)
    assert chain.state is ChainState.ARMED
    c.add()
    cluster.sim.run(until=200 * US)
    assert chain.state is ChainState.COMPLETED
    assert b.host_mem.read(dst.base, 64) == b"z" * 64
    assert ua.armed_chains == 0


def test_device_tick_doorbell_fires_chain(testbed):
    """One 8-byte GPU store rings the counter doorbell; the chain fires with
    no descriptor traffic from the device."""
    cluster, a, b, ua, _ = testbed
    from repro.memory import AddressRange
    port = a.nic.port_state(0)
    a.gpu.map_mmio(AddressRange(port.page_addr,
                                a.nic.config.requester_page_size))
    wr, dst = _staged_put(a, b, b"t" * 128)
    c = ua.counter("kick")
    ua.chain().append(wr).arm(c, 1)

    def kernel(ctx):
        yield from ua.device_tick(ctx, port.page_addr, c)
        yield from ctx.fence_system()

    h = a.gpu.launch(kernel)
    cluster.sim.run_until_complete(h, limit=1.0)
    cluster.sim.run(until=cluster.sim.now + 200 * US)
    assert b.host_mem.read(dst.base, 128) == b"t" * 128
    assert a.nic.trigger_doorbells == 1
    assert ua.stats.doorbells == 1
    assert c.value == 1


def test_arrival_counting_fires_remote_chain(testbed):
    """Puts-with-counting: a put landing on B ticks B's counter, which fires
    B's pre-staged response chain — no B-side host/GPU involvement."""
    cluster, a, b, ua, ub = testbed
    # B stages a response put (b -> a) armed on one arrival in its window.
    resp_wr, resp_dst = _staged_put(b, a, b"pong" * 16, dst_node=0)
    arrivals = ub.counter("arrivals")
    # A's request lands in this window on B.
    req_wr, req_dst = _staged_put(a, b, b"ping" * 16)
    ub.count_arrivals(arrivals, nla_base=req_wr.dst_nla, nla_size=64)
    ub.chain("response").append(resp_wr).arm(arrivals, 1)

    ua.chain("request").append(req_wr).fire()
    cluster.sim.run(until=500 * US)
    assert b.host_mem.read(req_dst.base, 64) == b"ping" * 16
    assert a.host_mem.read(resp_dst.base, 64) == b"pong" * 16
    assert arrivals.value == 1


def test_count_arrivals_filters_and_unregisters(testbed):
    cluster, a, b, ua, ub = testbed
    wr, _ = _staged_put(a, b, b"m" * 64)
    hits = ub.counter("hits")
    misses = ub.counter("misses")
    off = ub.count_arrivals(misses, nla_base=wr.dst_nla + 0x1000, nla_size=64)
    ub.count_arrivals(hits, nla_base=wr.dst_nla, nla_size=64)
    ua.chain().append(wr).fire()
    cluster.sim.run(until=200 * US)
    assert hits.value == 1
    assert misses.value == 0
    off()
    assert len(b.nic.rma.put_listeners) == 1


def test_chain_to_chain_dependency(testbed):
    """A completed chain ticks the counter a second chain is armed on — a
    two-stage round staged entirely up front, set off by one tick."""
    cluster, a, b, ua, _ = testbed
    wr1, dst1 = _staged_put(a, b, b"1" * 64)
    wr2, dst2 = _staged_put(a, b, b"2" * 64)
    stage2_ready = ua.counter("stage2")
    first = ua.chain("first").append(wr1).on_complete_tick(stage2_ready)
    second = ua.chain("second").append(wr2).arm(stage2_ready, 1)

    start = ua.counter("start")
    first.arm(start, 1)
    start.add()
    cluster.sim.run(until=500 * US)
    assert first.state is ChainState.COMPLETED
    assert second.state is ChainState.COMPLETED
    assert b.host_mem.read(dst1.base, 64) == b"1" * 64
    assert b.host_mem.read(dst2.base, 64) == b"2" * 64


def test_completed_event_is_waitable(testbed):
    cluster, a, b, ua, _ = testbed
    wr, _ = _staged_put(a, b, b"w" * 64)
    chain = ua.chain().append(wr)

    def waiter(ctx):
        yield from ctx.sleep(1 * US)
        chain.fire()
        yield chain.completed
        return cluster.sim.now

    p = a.cpu.spawn(waiter)
    cluster.sim.run_until_complete(p, limit=1.0)
    assert chain.state is ChainState.COMPLETED


def test_cancelled_armed_chain_never_fires(testbed):
    cluster, a, b, ua, _ = testbed
    wr, dst = _staged_put(a, b, b"c" * 64)
    c = ua.counter()
    chain = ua.chain().append(wr).arm(c, 1)
    chain.cancel()
    assert chain.state is ChainState.CANCELLED
    assert ua.armed_chains == 0
    c.add()
    cluster.sim.run(until=200 * US)
    assert b.host_mem.read(dst.base, 64) != b"c" * 64
    assert not chain.completed.triggered


def test_replace_wr_patches_descriptor(testbed):
    """The rendezvous pattern: stage with a placeholder destination, patch
    once the CTS carries the real NLA."""
    cluster, a, b, ua, _ = testbed
    wr, _ = _staged_put(a, b, b"r" * 64)
    real_dst = b.host_malloc(64)
    real_nla = b.nic.register_memory(real_dst)
    chain = ua.chain().append(wr)
    chain.replace_wr(0, dst_nla=real_nla.base)
    chain.fire()
    cluster.sim.run(until=200 * US)
    assert b.host_mem.read(real_dst.base, 64) == b"r" * 64


def test_lifecycle_violations_raise(testbed):
    cluster, a, b, ua, _ = testbed
    c = ua.counter()
    with pytest.raises(TriggeredError):
        ua.chain().arm(c, 1)          # empty chain
    with pytest.raises(TriggeredError):
        ua.chain().fire()             # empty chain
    wr, _ = _staged_put(a, b, b"v" * 64)
    chain = ua.chain().append(wr)
    chain.fire()
    with pytest.raises(TriggeredError):
        chain.fire()                  # already fired
    with pytest.raises(TriggeredError):
        chain.append(wr)              # sealed after fire
    with pytest.raises(TriggeredError):
        chain.cancel()                # too late to cancel


def test_unknown_counter_doorbell_is_async_error(testbed):
    cluster, a, b, ua, _ = testbed
    port = a.nic.port_state(0)
    word = (77 << 16) | 1

    def poke(ctx):
        yield from ctx.write_u64(
            port.page_addr + a.nic.config.trigger_doorbell_offset, word)
        yield from ctx.sleep(1 * US)

    p = a.cpu.spawn(poke)
    cluster.sim.run_until_complete(p, limit=1.0)
    assert len(a.nic.rma.async_errors) == 1
    assert isinstance(a.nic.rma.async_errors[0], TriggeredError)


def test_stats_snapshot_and_diff(testbed):
    cluster, a, b, ua, _ = testbed
    wr, _ = _staged_put(a, b, b"s" * 64)
    before = ua.stats.snapshot()
    c = ua.counter()
    ua.chain().append(wr).arm(c, 1)
    assert ua.stats.snapshot()["armed"] == 1
    c.add()
    cluster.sim.run(until=200 * US)
    delta = ua.stats.diff(before)
    assert delta["chains_fired"] == 1
    assert delta["chains_completed"] == 1
    assert delta["descriptors_fired"] == 1
    assert delta["armed"] == 0  # gauge, not a delta
