"""Stream-ordered communication: comm_enqueue serializes against kernels."""

import pytest

from repro.cluster import build_extoll_cluster
from repro.errors import TriggeredError
from repro.extoll import NotifyFlags, RmaOp, RmaWorkRequest
from repro.triggered import ChainState, TriggeredUnit, comm_enqueue
from repro.units import US


@pytest.fixture
def testbed():
    cluster = build_extoll_cluster()
    a, b = cluster.a, cluster.b
    a.nic.open_port(0)
    b.nic.open_port(0)
    return cluster, a, b, TriggeredUnit(a)


def _staged_put(a, b, payload: bytes):
    src = a.host_malloc(len(payload))
    dst = b.host_malloc(len(payload))
    a.host_mem.write(src.base, payload)
    wr = RmaWorkRequest(op=RmaOp.PUT, port=0, dst_node=1,
                        src_nla=a.nic.register_memory(src).base,
                        dst_nla=b.nic.register_memory(dst).base,
                        size=len(payload), flags=NotifyFlags.NONE)
    return wr, dst


def test_comm_enqueue_runs_after_prior_kernel(testbed):
    cluster, a, b, ua = testbed
    wr, dst = _staged_put(a, b, b"q" * 64)
    chain = ua.chain("send").append(wr)
    stream = a.gpu.stream("comm")
    order = []

    def compute(ctx):
        yield from ctx.alu(5000)
        order.append(("kernel", cluster.sim.now))

    a.gpu.launch(compute, stream=stream)
    handle = comm_enqueue(stream, chain)
    handle.add_callback(lambda _ev: order.append(("comm", cluster.sim.now)))
    cluster.sim.run(until=500 * US)
    assert [name for name, _ in order] == ["kernel", "comm"]
    assert order[1][1] > order[0][1]  # chain fired only after the kernel
    assert chain.state is ChainState.COMPLETED
    assert b.host_mem.read(dst.base, 64) == b"q" * 64
    assert ua.stats.stream_enqueues == 1


def test_later_kernel_waits_for_comm(testbed):
    cluster, a, b, ua = testbed
    wr, _ = _staged_put(a, b, b"k" * 64)
    chain = ua.chain().append(wr)
    stream = a.gpu.stream()
    comm_enqueue(stream, chain)
    seen = []

    def after(ctx):
        seen.append(chain.state)
        yield from ctx.alu(1)

    a.gpu.launch(after, stream=stream)
    cluster.sim.run(until=500 * US)
    assert seen == [ChainState.COMPLETED]


def test_chains_on_different_streams_overlap(testbed):
    cluster, a, b, ua = testbed
    wr1, dst1 = _staged_put(a, b, b"1" * 64)
    wr2, dst2 = _staged_put(a, b, b"2" * 64)
    s1, s2 = a.gpu.stream(), a.gpu.stream()
    h1 = comm_enqueue(s1, ua.chain().append(wr1))
    h2 = comm_enqueue(s2, ua.chain().append(wr2))
    cluster.sim.run(until=500 * US)
    assert h1.processed and h2.processed
    assert b.host_mem.read(dst1.base, 64) == b"1" * 64
    assert b.host_mem.read(dst2.base, 64) == b"2" * 64


def test_enqueue_rejects_armed_or_empty_chain(testbed):
    cluster, a, b, ua = testbed
    stream = a.gpu.stream()
    with pytest.raises(TriggeredError):
        comm_enqueue(stream, ua.chain())  # empty
    wr, _ = _staged_put(a, b, b"e" * 64)
    armed = ua.chain().append(wr).arm(ua.counter(), 1)
    with pytest.raises(TriggeredError):
        comm_enqueue(stream, armed)
