"""Unit tests for kernel launches, geometry, SM residency, and streams."""

import pytest

from repro.errors import LaunchError
from repro.gpu import GpuConfig
from repro.sim import join_result

from ..conftest import MiniNode


def test_kernel_runs_threads_and_collects_results(node):
    def k(ctx, base):
        yield from ctx.alu(1)
        return base + ctx.global_thread_idx

    h = node.gpu.launch(k, grid=2, block=3, args=(100,))
    node.sim.run()
    assert h.processed
    assert h.block_result(0, 0) == 100
    assert h.block_result(1, 2) == 105
    assert len(h.results) == 6


def test_kernel_launch_overhead_charged(node):
    def k(ctx):
        yield from ctx.alu(1)

    node.gpu.launch(k)
    node.sim.run()
    assert node.sim.now >= node.gpu.config.launch_overhead


def test_same_stream_kernels_serialize(node):
    order = []

    def k(ctx, tag):
        yield from ctx.alu(1000)
        order.append((tag, node.sim.now))

    node.gpu.launch(k, args=("first",))
    node.gpu.launch(k, args=("second",))
    node.sim.run()
    assert [t for t, _ in order] == ["first", "second"]
    # Strictly after: the second started only after the first finished.
    assert order[1][1] >= order[0][1] + 1000 * node.gpu.config.instruction_time


def test_different_streams_overlap(node):
    spans = {}

    def k(ctx, tag):
        start = node.sim.now
        yield from ctx.alu(10_000)
        spans[tag] = (start, node.sim.now)

    s1 = node.gpu.stream()
    s2 = node.gpu.stream()
    node.gpu.launch(k, args=("a",), stream=s1)
    node.gpu.launch(k, args=("b",), stream=s2)
    node.sim.run()
    (a0, a1), (b0, b1) = spans["a"], spans["b"]
    assert a0 < b1 and b0 < a1  # time ranges overlap


def test_sm_residency_limits_concurrent_blocks():
    node = MiniNode(GpuConfig(dram_bytes=16 * 1024 * 1024,
                              sm_count=1, max_blocks_per_sm=2))
    running = []
    peak = []

    def k(ctx):
        running.append(1)
        peak.append(len(running))
        yield from ctx.alu(1000)
        running.pop()

    node.gpu.launch(k, grid=8, block=1)
    node.sim.run()
    assert max(peak) <= 2


def test_stream_synchronize(node):
    def k(ctx):
        yield from ctx.alu(5000)

    s = node.gpu.stream()
    node.gpu.launch(k, stream=s)

    def waiter():
        yield from s.synchronize()
        return node.sim.now

    t = node.run(waiter())
    assert t >= 5000 * node.gpu.config.instruction_time
    assert s.idle


def test_invalid_geometry_rejected(node):
    def k(ctx):
        yield from ctx.alu(1)

    with pytest.raises(LaunchError):
        node.gpu.launch(k, grid=0)
    with pytest.raises(LaunchError):
        node.gpu.launch(k, block=0)
    with pytest.raises(LaunchError):
        node.gpu.launch(k, block=2048)


def test_non_generator_device_fn_fails(node):
    def not_a_kernel(ctx):
        return 42

    h = node.gpu.launch(not_a_kernel)
    node.sim.run()
    assert h.processed and not h.ok


def test_thread_crash_propagates(node):
    def k(ctx):
        yield from ctx.alu(1)
        raise ValueError("device-side assert")

    h = node.gpu.launch(k)
    node.sim.run()
    assert not h.ok
    with pytest.raises(ValueError, match="device-side assert"):
        raise h.value


def test_memcpy_roundtrip(node):
    from repro.memory import HOST_DRAM_BASE
    dbuf = node.gpu.malloc(4096)
    payload = bytes(range(256)) * 16
    node.host.write(HOST_DRAM_BASE + 0x4000, payload)

    def body():
        yield from node.gpu.memcpy_htod(dbuf.base, HOST_DRAM_BASE + 0x4000, 4096)
        yield from node.gpu.memcpy_dtoh(HOST_DRAM_BASE + 0x8000, dbuf.base, 4096)

    node.run(body())
    assert node.host.read(HOST_DRAM_BASE + 0x8000, 4096) == payload
