"""Tests for __syncthreads() / the block barrier."""

import pytest

from repro.errors import GpuError
from repro.gpu.thread import BlockBarrier, ThreadCtx
from repro.sim import join_result


def test_syncthreads_aligns_threads_in_time(node):
    """Threads with different amounts of work leave the barrier together."""
    exit_times = {}

    def k(ctx):
        yield from ctx.alu((ctx.thread_idx + 1) * 1000)  # staggered work
        yield from ctx.syncthreads()
        exit_times[ctx.thread_idx] = ctx.sim.now

    h = node.gpu.launch(k, grid=1, block=4)
    node.sim.run()
    assert h.ok
    assert len(set(exit_times.values())) == 1  # all left at the same instant


def test_syncthreads_orders_shared_data(node):
    """The classic pattern: thread 0 publishes, everyone reads after the
    barrier."""
    buf = node.gpu.malloc(64)

    def k(ctx):
        if ctx.thread_idx == 0:
            yield from ctx.store_u64(buf.base, 0x5EED)
        yield from ctx.syncthreads()
        val = yield from ctx.load_u64(buf.base)
        return val

    h = node.gpu.launch(k, grid=1, block=8)
    node.sim.run()
    assert all(h.block_result(0, t) == 0x5EED for t in range(8))


def test_barrier_is_reusable_across_generations(node):
    order = []

    def k(ctx):
        for phase in range(3):
            yield from ctx.alu((ctx.thread_idx + 1) * 100)
            yield from ctx.syncthreads()
            if ctx.thread_idx == 0:
                order.append(phase)

    h = node.gpu.launch(k, grid=1, block=4)
    node.sim.run()
    assert h.ok
    assert order == [0, 1, 2]


def test_blocks_have_independent_barriers(node):
    """A barrier only synchronizes within one block."""
    finish = {}

    def k(ctx):
        yield from ctx.alu((ctx.block_idx + 1) * 10_000)
        yield from ctx.syncthreads()
        finish[ctx.block_idx] = ctx.sim.now

    h = node.gpu.launch(k, grid=2, block=2)
    node.sim.run()
    assert h.ok
    assert finish[0] < finish[1]  # block 1 was not held back by block 0


def test_syncthreads_outside_kernel_rejected(node):
    ctx = ThreadCtx(node.gpu, 0, 0, 1, 1)  # no barrier attached

    def body():
        yield from ctx.syncthreads()

    proc = node.sim.process(body())
    node.sim.run()
    with pytest.raises(GpuError):
        join_result(proc)


def test_barrier_validation(node):
    with pytest.raises(GpuError):
        BlockBarrier(node.sim, 0)


def test_single_thread_barrier_is_immediate(node):
    def k(ctx):
        yield from ctx.syncthreads()
        return ctx.sim.now

    h = node.gpu.launch(k, grid=1, block=1)
    node.sim.run()
    assert h.ok
