"""Unit tests for ThreadCtx memory operations, timing, and counters."""

import pytest

from repro.errors import GpuError
from repro.gpu.thread import ThreadCtx
from repro.memory import HOST_DRAM_BASE, MMIO_BASE, AddressRange
from repro.sim import join_result


def ctx_for(node):
    return ThreadCtx(node.gpu, block_idx=0, thread_idx=0, block_dim=1, grid_dim=1)


def test_device_store_load_roundtrip(node):
    ctx = ctx_for(node)
    buf = node.gpu.malloc(64)

    def body():
        yield from ctx.store_u64(buf.base, 0xCAFEBABE)
        val = yield from ctx.load_u64(buf.base)
        return val

    assert node.run(body()) == 0xCAFEBABE


def test_device_load_counters(node):
    ctx = ctx_for(node)
    buf = node.gpu.malloc(64)

    def body():
        yield from ctx.load_u64(buf.base)   # cold: miss
        yield from ctx.load_u64(buf.base)   # warm: hit

    node.run(body())
    c = node.gpu.counters
    assert c.global_load_accesses == 2
    assert c.l2_read_requests == 2
    assert c.l2_read_hits == 1
    assert c.l2_read_misses == 1
    assert c.memory_accesses == 2
    assert c.sysmem_read_transactions == 0


def test_l2_hit_is_faster_than_miss(node):
    ctx = ctx_for(node)
    buf = node.gpu.malloc(64)
    times = []

    def body():
        t0 = node.sim.now
        yield from ctx.load_u64(buf.base)
        times.append(node.sim.now - t0)
        t0 = node.sim.now
        yield from ctx.load_u64(buf.base)
        times.append(node.sim.now - t0)

    node.run(body())
    assert times[1] < times[0]


def test_host_load_counts_sysmem_transactions(node):
    ctx = ctx_for(node)
    rng = AddressRange(HOST_DRAM_BASE + 0x1000, 0x1000)
    node.gpu.map_host_memory(rng)
    node.host.write_u64(rng.base, 7)

    def body():
        val = yield from ctx.load_u64(rng.base)
        return val

    assert node.run(body()) == 7
    c = node.gpu.counters
    assert c.sysmem_read_transactions == 1
    assert c.global_load_accesses == 0
    assert c.l2_read_requests == 0


def test_host_access_much_slower_than_device_hit(node):
    """The paper's core timing asymmetry: PCIe-bound polls vs L2 polls."""
    ctx = ctx_for(node)
    rng = AddressRange(HOST_DRAM_BASE + 0x1000, 0x1000)
    node.gpu.map_host_memory(rng)
    buf = node.gpu.malloc(64)

    def body():
        yield from ctx.load_u64(buf.base)   # warm the line
        t0 = node.sim.now
        yield from ctx.load_u64(buf.base)
        dev_time = node.sim.now - t0
        t0 = node.sim.now
        yield from ctx.load_u64(rng.base)
        host_time = node.sim.now - t0
        return dev_time, host_time

    dev_time, host_time = node.run(body())
    assert host_time > 2 * dev_time


def test_unmapped_uva_address_faults(node):
    ctx = ctx_for(node)

    def body():
        yield from ctx.load_u64(HOST_DRAM_BASE + 0x100)  # never mapped

    proc = node.sim.process(body())
    node.sim.run()
    from repro.errors import TranslationError
    with pytest.raises(TranslationError):
        join_result(proc)


def test_posted_store_to_host_and_fence(node):
    ctx = ctx_for(node)
    rng = AddressRange(HOST_DRAM_BASE + 0x2000, 0x1000)
    node.gpu.map_host_memory(rng)

    def body():
        yield from ctx.store_u64(rng.base, 99)
        yield from ctx.fence_system()
        return node.host.read_u64(rng.base)

    assert node.run(body()) == 99
    assert node.gpu.counters.sysmem_write_transactions == 1


def test_mmio_store_reaches_window_handler(node):
    ctx = ctx_for(node)
    rng = AddressRange(MMIO_BASE, 0x1000)
    node.gpu.map_mmio(rng)
    seen = []
    node.mmio.on_write(0, 0x100, lambda off, data: seen.append((off, data)))

    def body():
        yield from ctx.store_u64(MMIO_BASE + 0x10, 0xABCD)
        yield from ctx.fence_system()

    node.run(body())
    assert seen == [(0x10, (0xABCD).to_bytes(8, "little"))]


def test_alu_counts_instructions_and_time(node):
    ctx = ctx_for(node)

    def body():
        t0 = node.sim.now
        yield from ctx.alu(100)
        return node.sim.now - t0

    dt = node.run(body())
    assert node.gpu.counters.instructions_executed == 100
    assert dt == pytest.approx(100 * node.gpu.config.instruction_time)


def test_alu_zero_is_free(node):
    ctx = ctx_for(node)

    def body():
        yield from ctx.alu(0)
        yield from ctx.alu(1)

    node.run(body())
    assert node.gpu.counters.instructions_executed == 1


def test_spin_until_sees_external_dma_write(node):
    """pollOnGPU: a peer write to device memory is observed by a polling
    thread, and the poll loop mostly hits in L2 until the flag flips."""
    ctx = ctx_for(node)
    buf = node.gpu.malloc(64)

    def poller():
        val, polls = yield from ctx.spin_until_u64(buf.base, lambda v: v == 5)
        return val, polls

    def writer():
        yield node.sim.timeout(20e-6)
        yield from node.nic_port.write(buf.base, (5).to_bytes(8, "little"))

    node.sim.process(writer())
    val, polls = node.run(poller())
    assert val == 5
    assert polls > 10  # spun many times before the flag flipped
    c = node.gpu.counters
    assert c.l2_read_hits > 0.8 * c.l2_read_requests  # mostly L2 hits
    assert c.sysmem_read_transactions == 0


def test_spin_until_max_polls(node):
    ctx = ctx_for(node)
    buf = node.gpu.malloc(64)

    def body():
        yield from ctx.spin_until_u64(buf.base, lambda v: v == 1, max_polls=10)

    proc = node.sim.process(body())
    node.sim.run()
    with pytest.raises(GpuError):
        join_result(proc)


def test_sector_counting_for_wide_accesses(node):
    ctx = ctx_for(node)
    rng = AddressRange(HOST_DRAM_BASE + 0x3000, 0x1000)
    node.gpu.map_host_memory(rng)

    def body():
        yield from ctx.load(rng.base, 128)  # 4 sectors of 32B

    node.run(body())
    assert node.gpu.counters.sysmem_read_transactions == 4


def test_bad_sizes_rejected(node):
    ctx = ctx_for(node)

    def bad_load():
        yield from ctx.load(node.gpu.dram.range.base, 0)

    proc = node.sim.process(bad_load())
    node.sim.run()
    with pytest.raises(GpuError):
        join_result(proc)
