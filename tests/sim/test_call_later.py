"""call_later cancellation handles (ScheduledCall)."""

from repro.sim import ScheduledCall, Simulator


def test_call_later_fires_and_reports_state():
    sim = Simulator()
    hits = []
    h = sim.call_later(1.0, lambda: hits.append(sim.now))
    assert isinstance(h, ScheduledCall)
    assert h.active and not h.fired and not h.cancelled
    sim.run()
    assert hits == [1.0]
    assert h.fired and not h.active and not h.cancelled


def test_cancel_turns_fire_into_noop():
    sim = Simulator()
    hits = []
    h = sim.call_later(1.0, lambda: hits.append(True))
    assert h.cancel()
    sim.run()
    assert hits == []
    assert h.cancelled and not h.fired
    # The heap entry still drained (the event processed as a no-op).
    assert h.event.processed


def test_cancel_is_idempotent_and_fails_after_fire():
    sim = Simulator()
    h1 = sim.call_later(1.0, lambda: None)
    assert h1.cancel()
    assert not h1.cancel()
    h2 = sim.call_later(1.0, lambda: None)
    sim.run()
    assert not h2.cancel()


def test_cancel_releases_closure():
    import gc
    import weakref

    class Payload:
        pass

    sim = Simulator()

    def make():
        big = Payload()
        return weakref.ref(big), sim.call_later(5.0, lambda: big)

    ref, h = make()
    gc.collect()
    assert ref() is not None  # closure keeps it alive while scheduled
    h.cancel()
    gc.collect()
    assert ref() is None  # cancel dropped the only reference


def test_cancelled_call_does_not_block_other_calls():
    sim = Simulator()
    order = []
    h1 = sim.call_later(1.0, lambda: order.append("a"))
    sim.call_later(1.0, lambda: order.append("b"))
    sim.call_later(2.0, lambda: order.append("c"))
    h1.cancel()
    sim.run()
    assert order == ["b", "c"]


def test_rearm_from_callback():
    sim = Simulator()
    ticks = []

    def tick():
        ticks.append(sim.now)
        if len(ticks) < 3:
            sim.call_later(1.0, tick)

    sim.call_later(1.0, tick)
    sim.run()
    assert ticks == [1.0, 2.0, 3.0]
