"""Unit tests for coroutine processes."""

import pytest

from repro.errors import SimulationError
from repro.sim import Interrupt, Process, Simulator, join_result


def test_process_runs_and_returns_value():
    sim = Simulator()

    def body():
        yield sim.timeout(2.0)
        return 42

    proc = sim.process(body())
    sim.run()
    assert join_result(proc) == 42
    assert sim.now == 2.0


def test_process_receives_event_values():
    sim = Simulator()

    def body():
        got = yield sim.timeout(1.0, value="hello")
        return got

    proc = sim.process(body())
    sim.run()
    assert join_result(proc) == "hello"


def test_processes_interleave_by_time():
    sim = Simulator()
    log = []

    def worker(tag, step):
        for _ in range(3):
            yield sim.timeout(step)
            log.append((sim.now, tag))

    sim.process(worker("fast", 1.0))
    sim.process(worker("slow", 2.0))
    sim.run()
    # At the t=2.0 tie, slow's timeout was scheduled first (at t=0) so it
    # fires before fast's second timeout (scheduled at t=1).
    assert log == [
        (1.0, "fast"), (2.0, "slow"), (2.0, "fast"),
        (3.0, "fast"), (4.0, "slow"), (6.0, "slow"),
    ]


def test_process_joins_another_process():
    sim = Simulator()

    def child():
        yield sim.timeout(5.0)
        return "child-done"

    def parent():
        result = yield sim.process(child())
        return result

    proc = sim.process(parent())
    sim.run()
    assert join_result(proc) == "child-done"


def test_exception_propagates_to_joiner():
    sim = Simulator()

    def child():
        yield sim.timeout(1.0)
        raise ValueError("boom")

    def parent():
        try:
            yield sim.process(child())
        except ValueError as exc:
            return f"caught {exc}"

    proc = sim.process(parent())
    sim.run()
    assert join_result(proc) == "caught boom"


def test_unjoined_crash_surfaces_via_join_result():
    sim = Simulator()

    def body():
        yield sim.timeout(1.0)
        raise RuntimeError("unhandled")

    proc = sim.process(body())
    sim.run()
    with pytest.raises(RuntimeError, match="unhandled"):
        join_result(proc)


def test_yielding_non_event_fails_the_process():
    sim = Simulator()

    def body():
        yield 123  # type: ignore[misc]

    proc = sim.process(body())
    sim.run()
    with pytest.raises(SimulationError):
        join_result(proc)


def test_non_generator_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Process(sim, lambda: None)  # type: ignore[arg-type]


def test_interrupt_wakes_a_sleeping_process():
    sim = Simulator()

    def sleeper():
        try:
            yield sim.timeout(100.0)
            return "overslept"
        except Interrupt as irq:
            return f"woken:{irq.cause}"

    proc = sim.process(sleeper())

    def waker():
        yield sim.timeout(1.0)
        proc.interrupt("alarm")

    sim.process(waker())
    sim.run(until=200.0)
    assert join_result(proc) == "woken:alarm"


def test_interrupt_on_finished_process_rejected():
    sim = Simulator()

    def body():
        yield sim.timeout(1.0)

    proc = sim.process(body())
    sim.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_unhandled_interrupt_terminates_cleanly():
    sim = Simulator()

    def body():
        yield sim.timeout(100.0)

    proc = sim.process(body())

    def waker():
        yield sim.timeout(1.0)
        proc.interrupt()

    sim.process(waker())
    sim.run(until=200.0)
    assert proc.processed
    assert join_result(proc) is None


def test_two_waiters_on_one_event():
    sim = Simulator()
    shared = sim.event()
    results = []

    def waiter(tag):
        val = yield shared
        results.append((tag, val, sim.now))

    sim.process(waiter("a"))
    sim.process(waiter("b"))

    def trigger():
        yield sim.timeout(3.0)
        shared.succeed("go")

    sim.process(trigger())
    sim.run()
    assert results == [("a", "go", 3.0), ("b", "go", 3.0)]
