"""Unit tests for the simulator core: scheduling, time, determinism."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim import Simulator


def test_time_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_timeout_advances_time():
    sim = Simulator()
    ev = sim.timeout(5.0)
    sim.run()
    assert sim.now == 5.0
    assert ev.processed
    assert ev.ok


def test_timeout_carries_value():
    sim = Simulator()
    ev = sim.timeout(1.0, value="payload")
    sim.run()
    assert ev.value == "payload"


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1.0)


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    for delay in (3.0, 1.0, 2.0):
        ev = sim.timeout(delay)
        ev.add_callback(lambda e, d=delay: order.append(d))
    sim.run()
    assert order == [1.0, 2.0, 3.0]


def test_ties_broken_by_insertion_order():
    sim = Simulator()
    order = []
    for tag in "abc":
        ev = sim.timeout(1.0)
        ev.add_callback(lambda e, t=tag: order.append(t))
    sim.run()
    assert order == ["a", "b", "c"]


def test_run_until_stops_at_horizon():
    sim = Simulator()
    fired = []
    sim.timeout(1.0).add_callback(lambda e: fired.append(1))
    sim.timeout(10.0).add_callback(lambda e: fired.append(10))
    sim.run(until=5.0)
    assert fired == [1]
    assert sim.now == 5.0


def test_run_until_in_the_past_rejected():
    sim = Simulator()
    sim.timeout(2.0)
    sim.run()
    with pytest.raises(SimulationError):
        sim.run(until=1.0)


def test_step_on_empty_schedule_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.step()


def test_event_cannot_trigger_twice():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_value_before_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        _ = ev.value


def test_fail_requires_exception():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_callback_after_processed_runs_immediately():
    sim = Simulator()
    ev = sim.timeout(0.0)
    sim.run()
    hits = []
    ev.add_callback(lambda e: hits.append(e.value))
    assert hits == [None]


def test_run_until_complete_waits_for_named_events():
    sim = Simulator()
    a = sim.timeout(1.0)
    b = sim.timeout(3.0)
    sim.timeout(100.0)  # unrelated later event must not be required
    sim.run_until_complete(a, b)
    assert sim.now == 3.0


def test_run_until_complete_deadlock_detection():
    sim = Simulator()
    never = sim.event()  # nothing will ever trigger this
    with pytest.raises(DeadlockError):
        sim.run_until_complete(never)


def test_run_until_complete_time_limit():
    sim = Simulator()
    slow = sim.timeout(10.0)
    with pytest.raises(SimulationError):
        sim.run_until_complete(slow, limit=1.0)


def test_deterministic_schedules_across_runs():
    def build_and_run():
        sim = Simulator()
        log = []
        for i, d in enumerate([2.0, 2.0, 1.0, 3.0, 1.0]):
            sim.timeout(d).add_callback(lambda e, i=i: log.append((sim.now, i)))
        sim.run()
        return log

    assert build_and_run() == build_and_run()


def test_trace_hook_sees_every_event():
    seen = []
    sim = Simulator(trace=lambda t, desc: seen.append(t))
    sim.timeout(1.0)
    sim.timeout(2.0)
    sim.run()
    assert seen == [1.0, 2.0]
