"""Unit tests for resources, mutexes, and stores."""

import pytest

from repro.errors import SimulationError
from repro.sim import Mutex, Resource, Simulator, Store, join_result


def test_resource_serializes_beyond_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    spans = {}

    def worker(tag):
        yield res.acquire()
        start = sim.now
        yield sim.timeout(10.0)
        res.release()
        spans[tag] = (start, sim.now)

    for tag in "abc":
        sim.process(worker(tag))
    sim.run()
    assert spans["a"] == (0.0, 10.0)
    assert spans["b"] == (0.0, 10.0)
    assert spans["c"] == (10.0, 20.0)  # had to wait for a slot


def test_resource_fifo_grant_order():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    grants = []

    def worker(tag, arrive):
        yield sim.timeout(arrive)
        yield res.acquire()
        grants.append(tag)
        yield sim.timeout(5.0)
        res.release()

    sim.process(worker("first", 0.0))
    sim.process(worker("second", 1.0))
    sim.process(worker("third", 2.0))
    sim.run()
    assert grants == ["first", "second", "third"]


def test_release_without_acquire_rejected():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    with pytest.raises(SimulationError):
        res.release()


def test_capacity_must_be_positive():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Resource(sim, capacity=0)


def test_using_helper_holds_for_duration():
    sim = Simulator()
    mtx = Mutex(sim)

    def worker():
        yield from mtx.using(7.0)
        return sim.now

    a = sim.process(worker())
    b = sim.process(worker())
    sim.run()
    assert join_result(a) == 7.0
    assert join_result(b) == 14.0


def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)

    def producer():
        yield store.put("item")

    def consumer():
        item = yield store.get()
        return item

    sim.process(producer())
    cons = sim.process(consumer())
    sim.run()
    assert join_result(cons) == "item"


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)

    def consumer():
        item = yield store.get()
        return (item, sim.now)

    def producer():
        yield sim.timeout(4.0)
        yield store.put("late")

    cons = sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert join_result(cons) == ("late", 4.0)


def test_store_is_fifo():
    sim = Simulator()
    store = Store(sim)
    got = []

    def producer():
        for i in range(5):
            yield store.put(i)

    def consumer():
        for _ in range(5):
            item = yield store.get()
            got.append(item)

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert got == [0, 1, 2, 3, 4]


def test_bounded_store_blocks_producer():
    sim = Simulator()
    store = Store(sim, capacity=1)
    log = []

    def producer():
        yield store.put("a")
        log.append(("put-a", sim.now))
        yield store.put("b")  # blocks until consumer drains one
        log.append(("put-b", sim.now))

    def consumer():
        yield sim.timeout(10.0)
        item = yield store.get()
        log.append(("got-" + item, sim.now))

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert ("put-a", 0.0) in log
    assert ("put-b", 10.0) in log


def test_try_get_nonblocking():
    sim = Simulator()
    store = Store(sim)
    assert store.try_get() is None
    store.put("x")
    assert store.try_get() == "x"
    assert store.try_get() is None


def test_store_len_tracks_buffered_items():
    sim = Simulator()
    store = Store(sim)
    store.put(1)
    store.put(2)
    assert len(store) == 2
    store.get()
    assert len(store) == 1
