"""Unit tests for AllOf / AnyOf composition."""

import pytest

from repro.errors import SimulationError
from repro.sim import AllOf, AnyOf, Simulator, join_result


def test_all_of_waits_for_slowest():
    sim = Simulator()
    a = sim.timeout(1.0, value="a")
    b = sim.timeout(5.0, value="b")

    def body():
        values = yield AllOf(sim, [a, b])
        return (sim.now, values[a], values[b])

    proc = sim.process(body())
    sim.run()
    assert join_result(proc) == (5.0, "a", "b")


def test_any_of_returns_on_fastest():
    sim = Simulator()
    a = sim.timeout(1.0, value="fast")
    b = sim.timeout(5.0, value="slow")

    def body():
        values = yield AnyOf(sim, [a, b])
        return (sim.now, list(values.values()))

    proc = sim.process(body())
    sim.run()
    assert join_result(proc) == (1.0, ["fast"])


def test_all_of_fails_if_any_child_fails():
    sim = Simulator()
    ok = sim.timeout(10.0)
    bad = sim.event()

    def failer():
        yield sim.timeout(1.0)
        bad.fail(RuntimeError("child failed"))

    def body():
        yield AllOf(sim, [ok, bad])

    sim.process(failer())
    proc = sim.process(body())
    sim.run()
    with pytest.raises(RuntimeError, match="child failed"):
        join_result(proc)


def test_empty_all_of_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        AllOf(sim, [])


def test_empty_any_of_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        AnyOf(sim, [])


def test_cross_simulator_events_rejected():
    sim1 = Simulator()
    sim2 = Simulator()
    ev = sim2.timeout(1.0)
    with pytest.raises(SimulationError):
        AllOf(sim1, [ev])


def test_all_of_with_already_processed_children():
    sim = Simulator()
    a = sim.timeout(1.0, value=1)
    b = sim.timeout(2.0, value=2)
    sim.run()

    def body():
        values = yield AllOf(sim, [a, b])
        return sorted(values.values())

    proc = sim.process(body())
    sim.run()
    assert join_result(proc) == [1, 2]
