"""Unit tests for the tracing facility."""

import pytest

from repro.sim import NULL_TRACER, NullTracer, Simulator, TraceRecord, Tracer


def test_tracer_records_time_and_category():
    sim = Simulator()
    tracer = Tracer(sim)

    def body():
        yield sim.timeout(2.0)
        tracer.emit("rma", "posted WR")

    sim.process(body())
    sim.run()
    assert len(tracer.records) == 1
    rec = tracer.records[0]
    assert rec.time == 2.0
    assert rec.category == "rma"
    assert "posted WR" in rec.message


def test_tracer_category_filtering():
    sim = Simulator()
    tracer = Tracer(sim, categories={"keep"})
    tracer.emit("keep", "a")
    tracer.emit("drop", "b")
    assert [r.category for r in tracer.records] == ["keep"]


def test_tracer_filter_method():
    sim = Simulator()
    tracer = Tracer(sim)
    tracer.emit("x", "1")
    tracer.emit("y", "2")
    tracer.emit("x", "3")
    assert [r.message for r in tracer.filter("x")] == ["1", "3"]


def test_tracer_sink_callback():
    sim = Simulator()
    seen = []
    tracer = Tracer(sim, sink=seen.append)
    tracer.emit("cat", "msg")
    assert len(seen) == 1
    assert isinstance(seen[0], TraceRecord)


def test_tracer_clear():
    sim = Simulator()
    tracer = Tracer(sim)
    tracer.emit("a", "b")
    tracer.clear()
    assert tracer.records == []


def test_null_tracer_is_inert():
    NULL_TRACER.emit("anything", "goes")
    assert NULL_TRACER.records == []
    assert NULL_TRACER.filter("anything") == []
    NULL_TRACER.clear()
    assert not NullTracer.enabled
    assert Tracer.enabled


def test_trace_record_str_format():
    rec = TraceRecord(time=1.5e-6, category="pcie", message="TLP sent")
    s = str(rec)
    assert "1.500us" in s and "pcie" in s and "TLP sent" in s


def _emit_at(sim, tracer, times):
    def body():
        last = 0.0
        for t in times:
            yield sim.timeout(t - last)
            tracer.emit("cat", f"at-{t}")
            last = t
    sim.process(body())
    sim.run()


def test_tracer_time_window_filters_records():
    sim = Simulator()
    tracer = Tracer(sim, min_time=1.0, max_time=3.0)
    _emit_at(sim, tracer, [0.5, 1.0, 2.0, 3.0, 4.0])
    assert [r.time for r in tracer.records] == [1.0, 2.0, 3.0]


def test_tracer_window_is_inclusive_and_half_open_forms():
    sim = Simulator()
    lo_only = Tracer(sim, min_time=2.0)
    hi_only = Tracer(sim, max_time=2.0)
    for t in (1.0, 2.0, 3.0):
        sim._now = t  # drive the clock directly; emit() reads sim.now
        lo_only.emit("c", "m")
        hi_only.emit("c", "m")
    assert [r.time for r in lo_only.records] == [2.0, 3.0]
    assert [r.time for r in hi_only.records] == [1.0, 2.0]


def test_tracer_rejects_empty_window():
    with pytest.raises(ValueError):
        Tracer(Simulator(), min_time=5.0, max_time=1.0)


def test_tracer_sink_sees_only_filtered_records():
    # The sink must observe exactly what gets recorded: category and
    # window filters apply before the sink fires, not after.
    sim = Simulator()
    seen = []
    tracer = Tracer(sim, categories={"keep"}, min_time=1.0, max_time=3.0,
                    sink=seen.append)
    for t, cat in [(0.5, "keep"), (1.5, "drop"), (2.0, "keep"), (3.5, "keep")]:
        sim._now = t
        tracer.emit(cat, f"{cat}@{t}")
    assert [r.time for r in tracer.records] == [2.0]
    assert seen == tracer.records
