"""Unit tests for the tracing facility."""

from repro.sim import NULL_TRACER, NullTracer, Simulator, TraceRecord, Tracer


def test_tracer_records_time_and_category():
    sim = Simulator()
    tracer = Tracer(sim)

    def body():
        yield sim.timeout(2.0)
        tracer.emit("rma", "posted WR")

    sim.process(body())
    sim.run()
    assert len(tracer.records) == 1
    rec = tracer.records[0]
    assert rec.time == 2.0
    assert rec.category == "rma"
    assert "posted WR" in rec.message


def test_tracer_category_filtering():
    sim = Simulator()
    tracer = Tracer(sim, categories={"keep"})
    tracer.emit("keep", "a")
    tracer.emit("drop", "b")
    assert [r.category for r in tracer.records] == ["keep"]


def test_tracer_filter_method():
    sim = Simulator()
    tracer = Tracer(sim)
    tracer.emit("x", "1")
    tracer.emit("y", "2")
    tracer.emit("x", "3")
    assert [r.message for r in tracer.filter("x")] == ["1", "3"]


def test_tracer_sink_callback():
    sim = Simulator()
    seen = []
    tracer = Tracer(sim, sink=seen.append)
    tracer.emit("cat", "msg")
    assert len(seen) == 1
    assert isinstance(seen[0], TraceRecord)


def test_tracer_clear():
    sim = Simulator()
    tracer = Tracer(sim)
    tracer.emit("a", "b")
    tracer.clear()
    assert tracer.records == []


def test_null_tracer_is_inert():
    NULL_TRACER.emit("anything", "goes")
    assert NULL_TRACER.records == []
    assert NULL_TRACER.filter("anything") == []
    NULL_TRACER.clear()
    assert not NullTracer.enabled
    assert Tracer.enabled


def test_trace_record_str_format():
    rec = TraceRecord(time=1.5e-6, category="pcie", message="TLP sent")
    s = str(rec)
    assert "1.500us" in s and "pcie" in s and "TLP sent" in s
