"""The ``python -m repro`` subcommand registry and its dispatch rules."""

from __future__ import annotations

import os
import subprocess
import sys

from repro.__main__ import COMMANDS, main, render_command_table

EXPECTED = {"report", "trace", "profile", "bench", "collectives", "faults",
            "engine", "monitor", "triggered", "mpi", "workloads", "critpath",
            "fabrics"}


def test_registry_covers_every_subcommand():
    assert set(COMMANDS) == EXPECTED
    for name, (loader, description) in COMMANDS.items():
        assert callable(loader)
        assert description


def test_command_table_lists_everything():
    table = render_command_table()
    for name, (_loader, description) in COMMANDS.items():
        assert name in table
        assert description.split()[0] in table


def test_unknown_command_prints_table_and_exits_2(capsys):
    assert main(["definitely-not-a-command"]) == 2
    err = capsys.readouterr().err
    assert "unknown command" in err
    assert "workloads" in err           # the table came with the error


def test_unknown_command_via_subprocess():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "definitely-not-a-command"],
        capture_output=True, text=True, env=env)
    assert proc.returncode == 2
    assert "unknown command" in proc.stderr
    assert "commands:" in proc.stderr


def test_dispatch_reaches_the_loader(capsys):
    calls = []
    original = COMMANDS["workloads"]
    try:
        COMMANDS["workloads"] = (lambda argv: calls.append(argv) or 0,
                                 original[1])
        assert main(["workloads", "--quick"]) == 0
    finally:
        COMMANDS["workloads"] = original
    assert calls == [["--quick"]]
