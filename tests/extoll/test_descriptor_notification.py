"""Unit + property tests for EXTOLL wire formats and queue mechanics."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import NotificationOverflowError, RmaError
from repro.extoll import (
    Notification,
    NotificationQueue,
    NotifyFlags,
    RmaOp,
    RmaUnitKind,
    RmaWorkRequest,
    WR_BYTES,
)
from repro.memory import Memory, MemorySpace


def wr(**kw):
    defaults = dict(op=RmaOp.PUT, port=3, dst_node=1, src_nla=0x6000_0000_1000,
                    dst_nla=0x6000_0000_2000, size=4096)
    defaults.update(kw)
    return RmaWorkRequest(**defaults)


def test_wr_encode_is_192_bits():
    assert len(wr().encode()) == WR_BYTES == 24


def test_wr_roundtrip():
    original = wr(op=RmaOp.GET, port=17, dst_node=0, size=12345,
                  flags=NotifyFlags.REQUESTER)
    assert RmaWorkRequest.decode(original.encode()) == original


def test_wr_words_match_encoding():
    w = wr()
    w0, w1, w2 = w.words()
    assert w1 == w.src_nla
    assert w2 == w.dst_nla
    raw = (w0.to_bytes(8, "little") + w1.to_bytes(8, "little")
           + w2.to_bytes(8, "little"))
    assert RmaWorkRequest.decode(raw) == w


def test_wr_validation():
    with pytest.raises(RmaError):
        wr(size=0)
    with pytest.raises(RmaError):
        wr(size=1 << 40)
    with pytest.raises(RmaError):
        wr(port=256)
    with pytest.raises(RmaError):
        wr(dst_node=-1)


def test_wr_bad_opcode_rejected():
    raw = bytearray(wr().encode())
    raw[0] = (raw[0] & 0xF0) | 0xF  # opcode 15 does not exist
    with pytest.raises(RmaError):
        RmaWorkRequest.decode(bytes(raw))


def test_wr_wrong_length_rejected():
    with pytest.raises(RmaError):
        RmaWorkRequest.decode(b"\x00" * 23)


@given(
    op=st.sampled_from(list(RmaOp)),
    port=st.integers(0, 255),
    dst_node=st.integers(0, 255),
    src=st.integers(0, 2**63),
    dst=st.integers(0, 2**63),
    size=st.integers(1, (1 << 36) - 1),
    flags=st.integers(0, 7),
)
def test_property_wr_roundtrip(op, port, dst_node, src, dst, size, flags):
    w = RmaWorkRequest(op=op, port=port, dst_node=dst_node, src_nla=src,
                       dst_nla=dst, size=size, flags=NotifyFlags(flags))
    assert RmaWorkRequest.decode(w.encode()) == w


def test_notification_roundtrip():
    n = Notification(RmaUnitKind.COMPLETER, port=5, size=64, seq=42)
    assert Notification.decode(n.encode()) == n
    assert Notification.is_valid_word(int.from_bytes(n.encode()[:8], "little"))


def test_freed_notification_not_valid():
    assert not Notification.is_valid_word(0)
    with pytest.raises(RmaError):
        Notification.decode(b"\x00" * 16)


@given(
    unit=st.sampled_from(list(RmaUnitKind)),
    port=st.integers(0, 255),
    size=st.integers(0, (1 << 36) - 1),
    seq=st.integers(0, 2**63),
)
def test_property_notification_roundtrip(unit, port, size, seq):
    n = Notification(unit, port, size, seq)
    assert Notification.decode(n.encode()) == n


# --- NotificationQueue -------------------------------------------------------

def make_queue(entries=4):
    mem = Memory("kern", 0, 4096, MemorySpace.HOST_DRAM)
    return NotificationQueue("q", mem, 0, entries), mem


def test_queue_claim_advances_slots():
    q, mem = make_queue(entries=4)
    addrs = [q.hw_claim_slot() for _ in range(4)]
    assert addrs == [0, 16, 32, 48]


def test_queue_wraps():
    q, mem = make_queue(entries=4)
    for _ in range(4):
        q.hw_claim_slot()
    # Software consumed everything: publish read pointer 4.
    mem.write_u32(q.read_ptr_addr, 4)
    assert q.hw_claim_slot() == 0  # wrapped to slot 0


def test_queue_overflow_raises():
    q, mem = make_queue(entries=4)
    for _ in range(4):
        q.hw_claim_slot()
    with pytest.raises(NotificationOverflowError):
        q.hw_claim_slot()  # read pointer still 0 in memory


def test_queue_refreshes_read_ptr_before_overflow():
    q, mem = make_queue(entries=4)
    for _ in range(4):
        q.hw_claim_slot()
    mem.write_u32(q.read_ptr_addr, 2)  # software consumed two entries
    assert q.hw_claim_slot() == 0
    assert q.hw_claim_slot() == 16
    with pytest.raises(NotificationOverflowError):
        q.hw_claim_slot()


def test_queue_footprint():
    assert NotificationQueue.footprint_bytes(256) == 256 * 16 + 4


def test_queue_too_small_rejected():
    mem = Memory("kern", 0, 4096, MemorySpace.HOST_DRAM)
    with pytest.raises(RmaError):
        NotificationQueue("q", mem, 0, 1)
