"""Integration tests: EXTOLL put/get across the two-node cluster."""

import pytest

from repro.cluster import build_extoll_cluster
from repro.extoll import (
    NotificationCursor,
    NotifyFlags,
    RmaOp,
    RmaUnitKind,
    RmaWorkRequest,
    rma_post,
    rma_wait_notification,
)
from repro.sim import join_result
from repro.units import KIB, US


@pytest.fixture
def testbed():
    cluster = build_extoll_cluster()
    a, b = cluster.a, cluster.b
    port_a = a.nic.open_port(0)
    port_b = b.nic.open_port(0)
    return cluster, a, b, port_a, port_b


def test_host_controlled_put_moves_host_data(testbed):
    cluster, a, b, port_a, port_b = testbed
    src = a.host_malloc(4 * KIB)
    dst = b.host_malloc(4 * KIB)
    payload = bytes(range(256)) * 16
    a.host_mem.write(src.base, payload)

    src_nla = a.nic.register_memory(src)
    dst_nla = b.nic.register_memory(dst)

    def sender(ctx):
        w = RmaWorkRequest(op=RmaOp.PUT, port=0, dst_node=1,
                           src_nla=src_nla.base, dst_nla=dst_nla.base,
                           size=4 * KIB)
        yield from rma_post(ctx, port_a.page_addr, w)
        cursor = NotificationCursor(port_a.requester_queue)
        note = yield from rma_wait_notification(ctx, cursor)
        return note

    def receiver(ctx):
        cursor = NotificationCursor(port_b.completer_queue)
        note = yield from rma_wait_notification(ctx, cursor)
        return note

    sp = a.cpu.spawn(sender)
    rp = b.cpu.spawn(receiver)
    cluster.sim.run_until_complete(sp, rp, limit=1.0)
    sent = join_result(sp)
    recv = join_result(rp)
    assert sent.unit is RmaUnitKind.REQUESTER
    assert recv.unit is RmaUnitKind.COMPLETER
    assert recv.size == 4 * KIB
    assert b.host_mem.read(dst.base, 4 * KIB) == payload


def test_put_into_gpu_memory_gpudirect(testbed):
    """GPUDirect RDMA: the NIC DMA-writes the remote GPU's device memory."""
    cluster, a, b, port_a, port_b = testbed
    src = a.host_malloc(1 * KIB)
    dst = b.gpu_malloc(1 * KIB)
    a.host_mem.write(src.base, b"G" * 1024)
    src_nla = a.nic.register_memory(src)
    dst_nla = b.nic.register_memory(dst)   # GPU BAR1 range through the ATU

    def sender(ctx):
        w = RmaWorkRequest(op=RmaOp.PUT, port=0, dst_node=1,
                           src_nla=src_nla.base, dst_nla=dst_nla.base,
                           size=1024, flags=NotifyFlags.REQUESTER)
        yield from rma_post(ctx, port_a.page_addr, w)
        cursor = NotificationCursor(port_a.requester_queue)
        yield from rma_wait_notification(ctx, cursor)

    sp = a.cpu.spawn(sender)
    cluster.sim.run_until_complete(sp, limit=1.0)
    join_result(sp)
    cluster.sim.run(until=cluster.sim.now + 100 * US)  # drain delivery
    assert b.gpu.dram.read(dst.base, 1024) == b"G" * 1024


def test_get_pulls_remote_data(testbed):
    cluster, a, b, port_a, port_b = testbed
    remote = b.host_malloc(2 * KIB)
    local = a.host_malloc(2 * KIB)
    b.host_mem.write(remote.base, b"R" * 2048)
    remote_nla = b.nic.register_memory(remote)
    local_nla = a.nic.register_memory(local)

    def getter(ctx):
        w = RmaWorkRequest(op=RmaOp.GET, port=0, dst_node=1,
                           src_nla=remote_nla.base, dst_nla=local_nla.base,
                           size=2048,
                           flags=NotifyFlags.REQUESTER | NotifyFlags.COMPLETER)
        yield from rma_post(ctx, port_a.page_addr, w)
        cursor = NotificationCursor(port_a.completer_queue)
        note = yield from rma_wait_notification(ctx, cursor)
        return note

    gp = a.cpu.spawn(getter)
    cluster.sim.run_until_complete(gp, limit=1.0)
    note = join_result(gp)
    assert note.unit is RmaUnitKind.COMPLETER
    assert a.host_mem.read(local.base, 2048) == b"R" * 2048


def test_gpu_thread_posts_wr_via_mapped_bar(testbed):
    """§III-C: the BAR page is mapped into GPU UVA; a single device thread
    posts the descriptor with three 64-bit stores."""
    cluster, a, b, port_a, port_b = testbed
    src = a.gpu_malloc(256)
    dst = b.host_malloc(256)
    a.gpu.dram.write(src.base, b"D" * 256)
    src_nla = a.nic.register_memory(src)
    dst_nla = b.nic.register_memory(dst)
    from repro.memory import AddressRange
    a.gpu.map_mmio(AddressRange(port_a.page_addr, 4096))

    def kernel(ctx):
        w = RmaWorkRequest(op=RmaOp.PUT, port=0, dst_node=1,
                           src_nla=src_nla.base, dst_nla=dst_nla.base,
                           size=256, flags=NotifyFlags.NONE)
        w0, w1, w2 = w.words()
        yield from ctx.store_u64(port_a.page_addr, w0)
        yield from ctx.store_u64(port_a.page_addr + 8, w1)
        yield from ctx.store_u64(port_a.page_addr + 16, w2)
        yield from ctx.fence_system()

    h = a.gpu.launch(kernel)
    cluster.sim.run_until_complete(h, limit=1.0)
    cluster.sim.run(until=cluster.sim.now + 200 * US)
    assert b.host_mem.read(dst.base, 256) == b"D" * 256


def test_multiple_ports_are_independent(testbed):
    cluster, a, b, port_a, port_b = testbed
    port_a2 = a.nic.open_port(1)
    port_b2 = b.nic.open_port(1)
    bufs = {}
    for pid, (pa, pb) in enumerate([(port_a, port_b), (port_a2, port_b2)]):
        src = a.host_malloc(64)
        dst = b.host_malloc(64)
        a.host_mem.write(src.base, bytes([pid + 1]) * 64)
        bufs[pid] = (a.nic.register_memory(src), b.nic.register_memory(dst),
                     dst, pa)

    def sender(ctx):
        for pid, (src_nla, dst_nla, dst, pa) in bufs.items():
            w = RmaWorkRequest(op=RmaOp.PUT, port=pid, dst_node=1,
                               src_nla=src_nla.base, dst_nla=dst_nla.base,
                               size=64)
            yield from rma_post(ctx, pa.page_addr, w)
        # Wait for both requester notifications on their own queues.
        for pid, (_, _, _, pa) in bufs.items():
            cur = NotificationCursor(pa.requester_queue)
            yield from rma_wait_notification(ctx, cur)

    sp = a.cpu.spawn(sender)
    cluster.sim.run_until_complete(sp, limit=1.0)
    cluster.sim.run(until=cluster.sim.now + 200 * US)
    for pid, (_, _, dst, _) in bufs.items():
        assert b.host_mem.read(dst.base, 64) == bytes([pid + 1]) * 64


def test_duplicate_port_rejected(testbed):
    cluster, a, *_ = testbed
    import pytest
    from repro.errors import RmaError
    with pytest.raises(RmaError):
        a.nic.open_port(0)


def test_notifications_disabled_produce_none(testbed):
    cluster, a, b, port_a, port_b = testbed
    src = a.host_malloc(64)
    dst = b.host_malloc(64)
    src_nla = a.nic.register_memory(src)
    dst_nla = b.nic.register_memory(dst)

    def sender(ctx):
        w = RmaWorkRequest(op=RmaOp.PUT, port=0, dst_node=1,
                           src_nla=src_nla.base, dst_nla=dst_nla.base,
                           size=64, flags=NotifyFlags.NONE)
        yield from rma_post(ctx, port_a.page_addr, w)

    sp = a.cpu.spawn(sender)
    cluster.sim.run_until_complete(sp, limit=1.0)
    cluster.sim.run(until=cluster.sim.now + 100 * US)
    assert a.nic.rma.notifications_written == 0
    assert b.nic.rma.notifications_written == 0
    # Queue slots untouched (word0 still zero).
    assert a.host_mem.read_u64(port_a.requester_queue.slot_addr(0)) == 0
