"""Unit + property tests for the ATU / NLA translation."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import RegistrationError, TranslationError
from repro.extoll import Atu, NLA_PAGE
from repro.memory import AddressRange


def test_register_returns_nla_window_of_same_size():
    atu = Atu()
    nla = atu.register(AddressRange(0x1000, 8192))
    assert nla.size == 8192


def test_translate_roundtrip():
    atu = Atu()
    phys = AddressRange(0x20_0000, 4096)
    nla = atu.register(phys)
    assert atu.translate(nla.base) == phys.base
    assert atu.translate(nla.base + 100) == phys.base + 100
    assert atu.translate(nla.base + 4095) == phys.base + 4095


def test_unregistered_nla_faults():
    atu = Atu()
    with pytest.raises(TranslationError):
        atu.translate(0x6000_0000_0000)


def test_distinct_registrations_get_distinct_windows():
    atu = Atu()
    a = atu.register(AddressRange(0x1000, 4096))
    b = atu.register(AddressRange(0x9000, 4096))
    assert not a.overlaps(b)


def test_guard_page_between_windows():
    """Overrunning one registration never lands in the next."""
    atu = Atu()
    a = atu.register(AddressRange(0x1000, 4096))
    atu.register(AddressRange(0x9000, 4096))
    with pytest.raises(TranslationError):
        atu.translate(a.base + 4096)


def test_sub_page_registration_bounds_to_true_size():
    atu = Atu()
    nla = atu.register(AddressRange(0x1000, 100))
    assert atu.translate(nla.base + 99) == 0x1000 + 99
    with pytest.raises(TranslationError):
        atu.translate(nla.base + 100)


def test_deregister():
    atu = Atu()
    nla = atu.register(AddressRange(0x1000, 4096))
    atu.deregister(nla)
    assert not atu.is_registered(nla.base)
    with pytest.raises(RegistrationError):
        atu.deregister(nla)


def test_straddling_translation_rejected():
    atu = Atu()
    nla = atu.register(AddressRange(0x1000, 4096))
    with pytest.raises(TranslationError):
        atu.translate(nla.base + 4090, 16)


@given(st.lists(st.tuples(st.integers(0, 2**30), st.integers(1, 64 * 1024)),
                min_size=1, max_size=10))
def test_property_translations_preserve_offsets(regs):
    atu = Atu()
    base = 0
    for _, size in regs:
        phys = AddressRange(base + 1, size)  # non-overlapping physical ranges
        base = phys.end + NLA_PAGE
        nla = atu.register(phys)
        mid = nla.base + (size // 2)
        assert atu.translate(mid) - phys.base == mid - nla.base
