"""Error containment in the RMA unit: bad descriptors surface as async
errors instead of killing the hardware pipelines."""

import pytest

from repro.cluster import build_extoll_cluster
from repro.core import setup_extoll_connection
from repro.errors import TranslationError
from repro.extoll import NotificationCursor, NotifyFlags, RmaOp, RmaWorkRequest, \
    rma_post, rma_wait_notification
from repro.sim import join_result
from repro.units import KIB, US


def test_put_with_unregistered_nla_records_async_error():
    cluster = build_extoll_cluster()
    conn = setup_extoll_connection(cluster, 4 * KIB)

    def sender(ctx):
        wr = RmaWorkRequest(op=RmaOp.PUT, port=conn.a.port.port_id, dst_node=1,
                            src_nla=0x6000_DEAD_0000,  # never registered
                            dst_nla=conn.b.recv_nla.base, size=64,
                            flags=NotifyFlags.NONE)
        yield from rma_post(ctx, conn.a.port.page_addr, wr)

    proc = conn.a.node.cpu.spawn(sender)
    cluster.sim.run_until_complete(proc, limit=1.0)
    cluster.sim.run(until=cluster.sim.now + 100 * US)
    assert len(conn.a.node.nic.rma.async_errors) == 1
    assert isinstance(conn.a.node.nic.rma.async_errors[0], TranslationError)


def test_put_to_unregistered_remote_nla_errors_at_completer():
    cluster = build_extoll_cluster()
    conn = setup_extoll_connection(cluster, 4 * KIB)

    def sender(ctx):
        wr = RmaWorkRequest(op=RmaOp.PUT, port=conn.a.port.port_id, dst_node=1,
                            src_nla=conn.a.send_nla.base,
                            dst_nla=0x6000_BEEF_0000, size=64,
                            flags=NotifyFlags.NONE)
        yield from rma_post(ctx, conn.a.port.page_addr, wr)

    proc = conn.a.node.cpu.spawn(sender)
    cluster.sim.run_until_complete(proc, limit=1.0)
    cluster.sim.run(until=cluster.sim.now + 200 * US)
    assert len(conn.b.node.nic.rma.async_errors) == 1
    assert isinstance(conn.b.node.nic.rma.async_errors[0], TranslationError)
    # The origin side is clean — the fault is at the destination's ATU.
    assert conn.a.node.nic.rma.async_errors == []


def test_unit_survives_bad_descriptor_and_keeps_working():
    """After a faulting put, a good put on the same port still completes."""
    cluster = build_extoll_cluster()
    conn = setup_extoll_connection(cluster, 4 * KIB)
    conn.a.node.gpu.dram.write(conn.a.send_buf.base, b"OK" * 32)

    def sender(ctx):
        bad = RmaWorkRequest(op=RmaOp.PUT, port=conn.a.port.port_id, dst_node=1,
                             src_nla=0x6000_DEAD_0000,
                             dst_nla=conn.b.recv_nla.base, size=64,
                             flags=NotifyFlags.NONE)
        yield from rma_post(ctx, conn.a.port.page_addr, bad)
        yield from ctx.sleep(20 * US)
        good = RmaWorkRequest(op=RmaOp.PUT, port=conn.a.port.port_id,
                              dst_node=1, src_nla=conn.a.send_nla.base,
                              dst_nla=conn.b.recv_nla.base, size=64,
                              flags=NotifyFlags.REQUESTER)
        yield from rma_post(ctx, conn.a.port.page_addr, good)
        yield from rma_wait_notification(ctx, conn.a.requester_cursor())

    proc = conn.a.node.cpu.spawn(sender)
    cluster.sim.run_until_complete(proc, limit=1.0)
    join_result(proc)
    cluster.sim.run(until=cluster.sim.now + 200 * US)
    assert len(conn.a.node.nic.rma.async_errors) == 1
    assert conn.b.node.gpu.dram.read(conn.b.recv_buf.base, 64) == b"OK" * 32
