"""Property-based end-to-end tests: the RMA fabric preserves data under
random workloads."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cluster import build_extoll_cluster
from repro.core import setup_extoll_connection
from repro.extoll import NotificationCursor, NotifyFlags, RmaOp, RmaWorkRequest, \
    rma_post, rma_wait_notification
from repro.sim import join_result
from repro.units import KIB

BUF = 8 * KIB


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    chunks=st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=512),     # size
            st.integers(min_value=0, max_value=BUF - 512),  # dst offset
            st.binary(min_size=1, max_size=8),              # pattern seed
        ),
        min_size=1, max_size=6,
    )
)
def test_property_random_puts_preserve_data(chunks):
    """Any sequence of puts at random offsets leaves the destination buffer
    equal to a reference model."""
    cluster = build_extoll_cluster()
    conn = setup_extoll_connection(cluster, BUF)
    reference = bytearray(BUF)

    payloads = []
    for size, dst_off, seed in chunks:
        pattern = (seed * (size // len(seed) + 1))[:size]
        payloads.append((size, dst_off, pattern))

    def sender(ctx):
        cursor = conn.a.requester_cursor()
        for i, (size, dst_off, pattern) in enumerate(payloads):
            src_off = 0
            conn.a.node.gpu.dram.write(conn.a.send_buf.base + src_off, pattern)
            wr = RmaWorkRequest(
                op=RmaOp.PUT, port=conn.a.port.port_id, dst_node=1,
                src_nla=conn.a.send_nla.base + src_off,
                dst_nla=conn.b.recv_nla.base + dst_off,
                size=size, flags=NotifyFlags.REQUESTER)
            yield from rma_post(ctx, conn.a.port.page_addr, wr)
            yield from rma_wait_notification(ctx, cursor)

    proc = conn.a.node.cpu.spawn(sender)
    cluster.sim.run_until_complete(proc, limit=10.0)
    join_result(proc)
    cluster.sim.run(until=cluster.sim.now + 2e-3)  # drain deliveries

    for size, dst_off, pattern in payloads:
        reference[dst_off:dst_off + size] = pattern
    got = conn.b.node.gpu.dram.read(conn.b.recv_buf.base, BUF)
    assert got == bytes(reference)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(sizes=st.lists(st.integers(min_value=1, max_value=2 * KIB),
                      min_size=1, max_size=8))
def test_property_notification_count_matches_puts(sizes):
    """Exactly one requester and one completer notification per put."""
    cluster = build_extoll_cluster()
    conn = setup_extoll_connection(cluster, 4 * KIB)

    def sender(ctx):
        req = conn.a.requester_cursor()
        for size in sizes:
            wr = RmaWorkRequest(
                op=RmaOp.PUT, port=conn.a.port.port_id, dst_node=1,
                src_nla=conn.a.send_nla.base, dst_nla=conn.b.recv_nla.base,
                size=size,
                flags=NotifyFlags.REQUESTER | NotifyFlags.COMPLETER)
            yield from rma_post(ctx, conn.a.port.page_addr, wr)
            yield from rma_wait_notification(ctx, req)

    def receiver(ctx):
        cmpl = conn.b.completer_cursor()
        received = []
        for _ in sizes:
            note = yield from rma_wait_notification(ctx, cmpl)
            received.append(note.size)
        return received

    sp = conn.a.node.cpu.spawn(sender)
    rp = conn.b.node.cpu.spawn(receiver)
    cluster.sim.run_until_complete(sp, rp, limit=10.0)
    received = join_result(rp)
    assert received == sizes  # in order, one per put, correct sizes


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    put_first=st.booleans(),
    size=st.integers(min_value=8, max_value=1 * KIB),
)
def test_property_put_then_get_roundtrip(put_first, size):
    """put(x) to the peer followed by get of the same region returns x."""
    cluster = build_extoll_cluster()
    conn = setup_extoll_connection(cluster, 4 * KIB)
    pattern = bytes((i * 7 + 3) % 256 for i in range(size))
    conn.a.node.gpu.dram.write(conn.a.send_buf.base, pattern)

    def worker(ctx):
        req = conn.a.requester_cursor()
        cmpl = conn.a.completer_cursor()
        put = RmaWorkRequest(
            op=RmaOp.PUT, port=conn.a.port.port_id, dst_node=1,
            src_nla=conn.a.send_nla.base, dst_nla=conn.b.recv_nla.base,
            size=size, flags=NotifyFlags.REQUESTER)
        yield from rma_post(ctx, conn.a.port.page_addr, put)
        yield from rma_wait_notification(ctx, req)
        # Pull the data back into our own receive buffer.
        get = RmaWorkRequest(
            op=RmaOp.GET, port=conn.a.port.port_id, dst_node=1,
            src_nla=conn.b.recv_nla.base, dst_nla=conn.a.recv_nla.base,
            size=size,
            flags=NotifyFlags.REQUESTER | NotifyFlags.COMPLETER)
        yield from rma_post(ctx, conn.a.port.page_addr, get)
        yield from rma_wait_notification(ctx, req)
        yield from rma_wait_notification(ctx, cmpl)

    proc = conn.a.node.cpu.spawn(worker)
    cluster.sim.run_until_complete(proc, limit=10.0)
    join_result(proc)
    assert conn.a.node.gpu.dram.read(conn.a.recv_buf.base, size) == pattern
