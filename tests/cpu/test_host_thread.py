"""Unit tests for the host CPU model."""

import pytest

from repro.cpu import Cpu, CpuConfig
from repro.errors import ConfigError
from repro.memory import HOST_DRAM_BASE, MMIO_BASE
from repro.sim import join_result


def make_cpu(node):
    cpu = Cpu(node.sim)
    cpu.attach(node.fabric.root, node.host)
    return cpu


def test_host_memory_write_read(node):
    cpu = make_cpu(node)

    def body(ctx):
        yield from ctx.write_u64(HOST_DRAM_BASE + 0x10, 1234)
        val = yield from ctx.read_u64(HOST_DRAM_BASE + 0x10)
        return val

    proc = cpu.spawn(body)
    node.sim.run()
    assert join_result(proc) == 1234


def test_mmio_write_goes_through_fabric(node):
    cpu = make_cpu(node)
    seen = []
    node.mmio.on_write(0, 0x100, lambda off, data: seen.append(off))

    def body(ctx):
        yield from ctx.write_u32(MMIO_BASE + 0x20, 7)

    proc = cpu.spawn(body)
    node.sim.run()
    join_result(proc)
    assert seen == [0x20]


def test_mmio_slower_than_host_memory(node):
    cpu = make_cpu(node)

    def body(ctx):
        t0 = ctx.sim.now
        yield from ctx.write_u64(HOST_DRAM_BASE + 0x10, 1)
        host_t = ctx.sim.now - t0
        t0 = ctx.sim.now
        yield from ctx.write_u64(MMIO_BASE + 0x10, 1)
        mmio_t = ctx.sim.now - t0
        return host_t, mmio_t

    proc = cpu.spawn(body)
    node.sim.run()
    host_t, mmio_t = join_result(proc)
    assert mmio_t > host_t


def test_spin_until_sees_dma_write(node):
    """CPU polls a host flag; the 'NIC' flips it later via the fabric."""
    cpu = make_cpu(node)

    def poller(ctx):
        val, polls = yield from ctx.spin_until_u64(
            HOST_DRAM_BASE + 0x100, lambda v: v == 9)
        return val, polls

    def nic_writer():
        yield node.sim.timeout(5e-6)
        yield from node.nic_port.write(HOST_DRAM_BASE + 0x100,
                                       (9).to_bytes(8, "little"))

    node.sim.process(nic_writer())
    proc = cpu.spawn(poller)
    node.sim.run()
    val, polls = join_result(proc)
    assert val == 9
    assert polls > 100  # cached polls are cheap, so there are many


def test_cpu_polls_cheaper_than_gpu_polls(node):
    """The asymmetry behind the paper's host-controlled win: CPU polls of
    host memory are orders of magnitude cheaper than GPU polls of the same
    location over PCIe."""
    from repro.gpu.thread import ThreadCtx
    from repro.memory import AddressRange

    cpu = make_cpu(node)
    flag = HOST_DRAM_BASE + 0x200
    node.gpu.map_host_memory(AddressRange(flag, 0x1000))

    def cpu_poll(ctx):
        t0 = ctx.sim.now
        for _ in range(10):
            yield from ctx.spin_until_u64(flag, lambda v: True)
        return (ctx.sim.now - t0) / 10

    proc = cpu.spawn(cpu_poll)
    node.sim.run()
    cpu_cost = join_result(proc)

    gctx = ThreadCtx(node.gpu, 0, 0, 1, 1)

    def gpu_poll():
        t0 = node.sim.now
        for _ in range(10):
            yield from gctx.load_u64(flag)
        return (node.sim.now - t0) / 10

    gproc = node.sim.process(gpu_poll())
    node.sim.run()
    gpu_cost = join_result(gproc)
    assert gpu_cost > 10 * cpu_cost


def test_compute_time(node):
    cpu = make_cpu(node)

    def body(ctx):
        t0 = ctx.sim.now
        yield from ctx.compute(3000)
        return ctx.sim.now - t0

    proc = cpu.spawn(body)
    node.sim.run()
    assert join_result(proc) == pytest.approx(3000 / cpu.config.clock_hz)


def test_unattached_cpu_rejected(node):
    cpu = Cpu(node.sim)
    with pytest.raises(ConfigError):
        _ = cpu.port


def test_spin_max_polls(node):
    cpu = make_cpu(node)

    def body(ctx):
        yield from ctx.spin_until_u64(HOST_DRAM_BASE, lambda v: v == 1,
                                      max_polls=5)

    proc = cpu.spawn(body)
    node.sim.run()
    with pytest.raises(ConfigError):
        join_result(proc)
