"""End-to-end smoke for ``python -m repro engine``."""

import json

from repro.engine.cli import main


def test_quick_sweep_passes_all_invariants(capsys, tmp_path):
    trace = tmp_path / "engine.json"
    rc = main(["--quick", "--per-connection", "16", "--iterations", "8",
               "--warmup", "2", "--out", str(trace)])
    out = capsys.readouterr().out
    assert rc == 0, out
    assert "invariants hold" in out
    assert "FAIL" not in out
    # The traced rate run was exported as a loadable Chrome trace.
    events = json.loads(trace.read_text())["traceEvents"]
    assert any(e.get("name") == "batch-doorbell" for e in events)


def test_dispatch_from_package_main(capsys, tmp_path):
    """``python -m repro engine`` routes to the engine CLI."""
    from repro.__main__ import main as repro_main

    rc = repro_main(["engine", "--quick", "--per-connection", "16",
                     "--iterations", "6", "--warmup", "1"])
    assert rc == 0, capsys.readouterr().out
