"""Property tests for doorbell coalescing (pure queueing logic).

The batcher's correctness contract, driven by hypothesis over random
submission/timeout interleavings:

* every submitted descriptor appears in EXACTLY one flush,
* flushes preserve per-connection FIFO order,
* no flush carries more than ``max_descriptors``,
* the doorbell count never exceeds
  ``sum_c ceil(N_c / max_descriptors) + timeout_flushes`` — the bound the
  ``mmio-coalescing`` acceptance invariant checks on the live engine.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Aggregator, DoorbellBatcher, FlushPolicy
from repro.errors import ConfigError

# One random program step: submit to a connection, advance the clock, or
# scan for timeouts.  Items are sequence numbers so identity is unambiguous.
_step = st.one_of(
    st.tuples(st.just("submit"), st.integers(0, 2)),
    st.tuples(st.just("tick"), st.floats(0.1e-6, 5e-6, allow_nan=False)),
    st.tuples(st.just("poll"), st.just(0)),
)


def _run_program(policy, steps):
    """Execute a random program; returns (flushes, per-conn submissions)."""
    batcher = DoorbellBatcher(policy)
    flushes = []
    submitted = {c: [] for c in range(3)}
    now, seq = 0.0, 0
    for op, arg in steps:
        if op == "submit":
            submitted[arg].append(seq)
            flush = batcher.submit(arg, seq, nbytes=64, now=now)
            if flush is not None:
                flushes.append(flush)
            seq += 1
        elif op == "tick":
            now += arg
        else:
            flushes.extend(batcher.poll_timeouts(now))
    flushes.extend(batcher.drain())
    assert batcher.pending() == 0
    return batcher, flushes, submitted


@given(batch=st.integers(1, 5),
       timeout=st.one_of(st.none(), st.floats(0.5e-6, 3e-6, allow_nan=False)),
       steps=st.lists(_step, max_size=60))
@settings(max_examples=200, deadline=None)
def test_batcher_contract(batch, timeout, steps):
    policy = FlushPolicy(max_descriptors=batch, timeout=timeout)
    batcher, flushes, submitted = _run_program(policy, steps)

    # Exactly-once: the union of all flushed items is the submitted set.
    flushed = [item for f in flushes for item in f.items]
    assert sorted(flushed) == sorted(sum(submitted.values(), []))

    # Per-connection FIFO: concatenating a connection's flushes in emission
    # order reproduces its submission order.
    for conn, seqs in submitted.items():
        in_flush_order = [item for f in flushes if f.conn_id == conn
                          for item in f.items]
        assert in_flush_order == seqs

    # No flush exceeds the batch factor, and none is empty.
    assert all(1 <= len(f) <= batch for f in flushes)

    # The doorbell bound: count-triggered flushes carry exactly ``batch``
    # descriptors, so only timeouts can add partial batches mid-stream.
    bound = sum(math.ceil(len(seqs) / batch) for seqs in submitted.values())
    assert batcher.doorbells == len(flushes)
    assert batcher.doorbells <= bound + batcher.timeout_flushes
    assert batcher.descriptors == len(flushed)


@given(steps=st.lists(_step, max_size=60))
@settings(max_examples=50, deadline=None)
def test_batch_size_one_rings_per_descriptor(steps):
    """The degenerate policy is exactly the classic API: every submission
    flushes immediately, one doorbell per descriptor."""
    batcher, flushes, submitted = _run_program(
        FlushPolicy(max_descriptors=1), steps)
    n = sum(len(s) for s in submitted.values())
    assert batcher.doorbells == n
    assert all(len(f) == 1 and f.reason == "count" for f in flushes)


def test_timeout_flush_releases_stale_lane():
    batcher = DoorbellBatcher(FlushPolicy(max_descriptors=8, timeout=1e-6))
    assert batcher.submit(0, "a", now=0.0) is None
    assert batcher.poll_timeouts(0.5e-6) == []          # not stale yet
    (flush,) = batcher.poll_timeouts(2e-6)
    assert flush.items == ("a",) and flush.reason == "timeout"
    assert batcher.timeout_flushes == 1
    assert batcher.pending() == 0


def test_byte_trigger_flushes_before_count():
    batcher = DoorbellBatcher(FlushPolicy(max_descriptors=8, max_bytes=128))
    assert batcher.submit(0, "x", nbytes=64) is None
    flush = batcher.submit(0, "y", nbytes=64)
    assert flush is not None and flush.reason == "byte"
    assert len(flush) == 2


def test_drain_single_connection_leaves_others_pending():
    batcher = DoorbellBatcher(FlushPolicy(max_descriptors=8))
    batcher.submit(0, "a")
    batcher.submit(1, "b")
    (flush,) = batcher.drain(0)
    assert flush.conn_id == 0 and flush.reason == "drain"
    assert batcher.pending(0) == 0
    assert batcher.pending(1) == 1


@pytest.mark.parametrize("kwargs", [
    {"max_descriptors": 0},
    {"max_bytes": 0},
    {"timeout": 0.0},
])
def test_policy_validation(kwargs):
    with pytest.raises(ConfigError):
        FlushPolicy(**kwargs)


# -- aggregation --------------------------------------------------------------

def test_aggregator_merges_runs_of_four():
    """64 B messages against a 256 B cap merge four to a put — the factor
    behind the engine's descriptor-count reduction."""
    agg = Aggregator(256)
    done = [agg.add(0, 64) for _ in range(8)]
    closed = [a for a in done if a is not None]
    assert [(a.count, a.bytes) for a in closed] == [(4, 256), (4, 256)]
    assert agg.drain(0) == []


def test_aggregator_oversized_message_passes_through():
    agg = Aggregator(256)
    assert agg.add(0, 64) is None
    big = agg.add(0, 512)          # cannot join the open 64 B run
    assert (big.count, big.bytes) == (1, 64)
    (tail,) = agg.drain(0)
    assert (tail.count, tail.bytes) == (1, 512)


@given(sizes=st.lists(st.integers(1, 300), max_size=40))
@settings(max_examples=100, deadline=None)
def test_aggregator_conserves_messages_and_bytes(sizes):
    agg = Aggregator(256)
    closed = [a for a in (agg.add(0, n) for n in sizes) if a is not None]
    closed += agg.drain(0)
    assert sum(a.count for a in closed) == len(sizes)
    assert sum(a.bytes for a in closed) == sum(sizes)
