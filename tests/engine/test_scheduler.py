"""Unit tests for the engine's service-order and backoff policies."""

import pytest

from repro.engine import POLICIES, AdaptiveBackoff, Scheduler
from repro.errors import ConfigError


@pytest.mark.quick
def test_round_robin_rotates_the_first_slot():
    sched = Scheduler(3)
    orders = [sched.service_order() for _ in range(3)]
    assert orders == [[0, 1, 2], [1, 2, 0], [2, 0, 1]]
    assert sched.passes == 3
    # Over n_lanes passes every lane goes first exactly once.
    assert sorted(o[0] for o in orders) == [0, 1, 2]


def test_round_robin_is_a_permutation_every_pass():
    sched = Scheduler(5)
    for _ in range(11):
        assert sorted(sched.service_order()) == [0, 1, 2, 3, 4]


def test_priority_lane_always_served_first():
    sched = Scheduler(3, policy="priority", priorities=[0, 5, 0])
    orders = [sched.service_order() for _ in range(4)]
    assert all(o[0] == 1 for o in orders)
    # The equal-priority lanes still rotate among themselves.
    tails = [tuple(j for j in o if j != 1) for o in orders]
    assert set(tails) == {(0, 2), (2, 0)}


def test_priority_groups_sort_descending():
    sched = Scheduler(4, policy="priority", priorities=[1, 3, 2, 0])
    assert sched.service_order() == [1, 2, 0, 3]


@pytest.mark.parametrize("kwargs", [
    {"n_lanes": 0},
    {"n_lanes": 2, "policy": "weighted-fair"},
    {"n_lanes": 2, "priorities": [1, 2, 3]},
])
def test_scheduler_validation(kwargs):
    with pytest.raises(ConfigError):
        Scheduler(**kwargs)


def test_policies_tuple_is_the_public_contract():
    assert POLICIES == ("round-robin", "priority")


@pytest.mark.quick
def test_backoff_spins_then_doubles_to_the_cap():
    backoff = AdaptiveBackoff(spin_passes=2, base=1e-6, max_delay=4e-6)
    delays = [backoff.idle() for _ in range(6)]
    assert delays == [0.0, 0.0, 1e-6, 2e-6, 4e-6, 4e-6]
    assert backoff.yields == 4
    assert backoff.misses == 6


def test_backoff_reset_restarts_the_spin_phase():
    backoff = AdaptiveBackoff(spin_passes=1, base=1e-6, max_delay=8e-6)
    assert [backoff.idle() for _ in range(3)] == [0.0, 1e-6, 2e-6]
    backoff.reset()
    assert backoff.misses == 0
    assert backoff.idle() == 0.0
    assert backoff.idle() == 1e-6


def test_backoff_zero_spin_yields_immediately():
    backoff = AdaptiveBackoff(spin_passes=0, base=2e-6, max_delay=2e-6)
    assert backoff.idle() == 2e-6


@pytest.mark.parametrize("kwargs", [
    {"spin_passes": -1},
    {"base": 0.0},
    {"base": 2e-6, "max_delay": 1e-6},
])
def test_backoff_validation(kwargs):
    with pytest.raises(ConfigError):
        AdaptiveBackoff(**kwargs)
