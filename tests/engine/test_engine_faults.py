"""The engine proxy over reliable channels under injected faults.

The proxy multiplexes msglib channels exactly as it multiplexes raw
connections — so when the links drop and corrupt packets, the reliability
layer underneath must keep every channel's stream intact, and the whole
stack (engine scheduling + retransmission timers + fault injection) must
replay deterministically from the seed.
"""

import pytest

from repro import build_extoll_cluster
from repro.core.msglib import create_channel_between
from repro.engine import (
    EngineConfig,
    channel_payload,
    run_engine_channel_traffic,
)
from repro.faults import FaultInjector, FaultPlan
from repro.sim import Simulator

N_CHANNELS = 2
PER_CHANNEL = 8
PAYLOAD = 32


def make_testbed(plan, seed=1, reliable=True):
    sim = Simulator(seed=seed)
    cluster = build_extoll_cluster(sim=sim)
    channels = [create_channel_between(cluster, cluster.a, cluster.b,
                                       slots=4, port_id=j, reliable=reliable)
                for j in range(N_CHANNELS)]
    injector = FaultInjector(sim, plan).attach(cluster.net)
    return cluster, channels, injector


def expected_payloads():
    return [[channel_payload(j, i, PAYLOAD) for i in range(PER_CHANNEL)]
            for j in range(N_CHANNELS)]


def run_traffic(cluster, channels, config=None):
    return run_engine_channel_traffic(cluster, channels, PER_CHANNEL,
                                      payload_bytes=PAYLOAD, config=config)


@pytest.mark.quick
def test_engine_traffic_clean_links():
    cluster, channels, injector = make_testbed(FaultPlan.none())
    result = run_traffic(cluster, channels)
    assert result["received"] == expected_payloads()
    assert injector.states == {}
    assert all(ch.a_to_b.reliability.retransmits == 0 for ch in channels)


def test_engine_traffic_survives_loss_and_corruption():
    """Lossy links under the engine proxy: every channel still receives
    its full stream, in order, with the retransmission engines visibly
    doing the repair work."""
    cluster, channels, injector = make_testbed(
        FaultPlan.uniform(loss=0.15, corrupt=0.1, seed=3))
    result = run_traffic(cluster, channels)
    assert result["received"] == expected_payloads()
    assert injector.drops + injector.corruptions > 0
    assert sum(ch.a_to_b.reliability.retransmits
               + ch.b_to_a.reliability.retransmits for ch in channels) > 0
    assert all(end.reliability.error is None
               for ch in channels for end in (ch.a_to_b, ch.b_to_a))


def test_engine_traffic_priority_policy_under_loss():
    cluster, channels, injector = make_testbed(
        FaultPlan.uniform(loss=0.08, seed=5))
    config = EngineConfig(policy="priority",
                          priorities=tuple(range(N_CHANNELS)))
    result = run_traffic(cluster, channels, config=config)
    assert result["received"] == expected_payloads()
    assert injector.drops > 0


def test_engine_traffic_replays_deterministically():
    """Same seed, same plan: the full engine x reliability x faults stack
    must reproduce identical payloads, identical finish time, identical
    drop/retransmit counts — the property the chaos sweeps lean on."""
    outcomes = []
    for _ in range(2):
        cluster, channels, injector = make_testbed(
            FaultPlan.uniform(loss=0.12, corrupt=0.06, seed=11), seed=4)
        result = run_traffic(cluster, channels)
        outcomes.append((
            result["finished_at"],
            result["received"],
            injector.drops,
            injector.corruptions,
            tuple(ch.a_to_b.reliability.retransmits for ch in channels),
        ))
    assert outcomes[0] == outcomes[1]


def test_engine_traffic_different_seed_changes_the_schedule():
    """The determinism above is seed-driven, not accidental: a different
    fault seed must actually perturb the run (different faults fire)."""
    runs = []
    for fault_seed in (11, 12):
        cluster, channels, injector = make_testbed(
            FaultPlan.uniform(loss=0.12, corrupt=0.06, seed=fault_seed),
            seed=4)
        result = run_traffic(cluster, channels)
        assert result["received"] == expected_payloads()
        runs.append((result["finished_at"], injector.drops))
    assert runs[0] != runs[1]
