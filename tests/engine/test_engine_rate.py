"""The engine proxy under the Fig. 2 / Fig. 5 message-rate experiments."""

import pytest

from repro import build_extoll_cluster
from repro.analysis import invariants as inv
from repro.cluster import build_ib_cluster
from repro.core import setup_extoll_connections
from repro.core.message_rate import (
    MESSAGE_BYTES,
    run_extoll_message_rate,
    run_ib_message_rate,
)
from repro.core.modes import RateMethod
from repro.core.setup import setup_ib_connections
from repro.engine import (
    EngineConfig,
    aggregate_schedule,
    run_engine_ib_message_rate,
    run_engine_message_rate,
)
from repro.sim import Simulator
from repro.units import KIB

N_CONNS = 4
PER_CONN = 30
BUF = 16 * KIB


def fresh_extoll(seed=7):
    cluster = build_extoll_cluster(sim=Simulator(seed=seed))
    return cluster, setup_extoll_connections(cluster, BUF, N_CONNS)


def fresh_ib(seed=7):
    cluster = build_ib_cluster(sim=Simulator(seed=seed))
    return cluster, setup_ib_connections(cluster, BUF, N_CONNS)


# -- aggregation schedule -----------------------------------------------------

@pytest.mark.quick
def test_aggregate_schedule_merges_and_conserves_bytes():
    sizes = aggregate_schedule(30, MESSAGE_BYTES, 256)
    assert sum(sizes) == 30 * MESSAGE_BYTES
    assert sizes == [256] * 7 + [128]       # runs of four, partial tail


@pytest.mark.quick
def test_aggregate_schedule_disabled_is_identity():
    assert aggregate_schedule(5, 64, 0) == [64] * 5
    assert aggregate_schedule(5, 64, 64) == [64] * 5


# -- EXTOLL -------------------------------------------------------------------

def test_engine_all_on_beats_host_controlled():
    """The acceptance ordering at a modest connection count: one proxy
    block with every optimization armed out-rates the CPU proxy."""
    cluster, conns = fresh_extoll()
    host = run_extoll_message_rate(cluster, conns, RateMethod.HOST_CONTROLLED,
                                   per_connection=PER_CONN)
    cluster, conns = fresh_extoll()
    engine, _ = run_engine_message_rate(cluster, conns,
                                        per_connection=PER_CONN)
    assert engine.messages_per_s >= host.messages_per_s


def test_engine_stats_reconcile_with_hardware_counters():
    """Driver accounting vs the NIC: every WR and every doorbell the
    engine thinks it issued must show up in hardware, and the coalescing
    bound must hold."""
    cluster, conns = fresh_extoll()
    config = EngineConfig.all_on()
    point, stats = run_engine_message_rate(cluster, conns, config,
                                           per_connection=PER_CONN)
    nic = cluster.a.nic
    assert stats.messages == N_CONNS * PER_CONN == point.messages
    assert stats.wrs < stats.messages            # aggregation bit
    assert stats.doorbells < stats.wrs           # coalescing bit
    assert nic.batch_doorbells == stats.batches
    assert nic.batch_descriptors == stats.wrs
    ok, detail = inv.mmio_coalesced(stats.doorbells, stats.wrs,
                                    config.batch_size, stats.timeout_flushes,
                                    lanes=N_CONNS)
    assert ok, detail


def test_engine_baseline_issues_one_doorbell_per_message():
    cluster, conns = fresh_extoll()
    _, stats = run_engine_message_rate(cluster, conns,
                                       EngineConfig.baseline(),
                                       per_connection=PER_CONN)
    assert stats.wrs == stats.messages
    assert stats.doorbells == stats.wrs
    assert stats.batches == 0
    assert cluster.a.nic.batch_doorbells == 0    # classic trigger path


def test_rate_method_dispatch_routes_to_the_engine():
    """RateMethod.ENGINE_BATCHED through the generic entry point must be
    the engine proxy: identical rate to calling the driver directly."""
    cluster, conns = fresh_extoll()
    via_method = run_extoll_message_rate(cluster, conns,
                                         RateMethod.ENGINE_BATCHED,
                                         per_connection=PER_CONN)
    cluster, conns = fresh_extoll()
    direct, _ = run_engine_message_rate(cluster, conns,
                                        EngineConfig.all_on(),
                                        per_connection=PER_CONN)
    assert via_method.messages_per_s == direct.messages_per_s
    cluster, conns = fresh_extoll()
    via_engine = run_extoll_message_rate(cluster, conns, RateMethod.ENGINE,
                                         per_connection=PER_CONN)
    cluster, conns = fresh_extoll()
    warp, _ = run_engine_message_rate(cluster, conns,
                                      EngineConfig.warp_only(),
                                      per_connection=PER_CONN)
    assert via_engine.messages_per_s == warp.messages_per_s


def test_priority_policy_completes_with_identical_totals():
    cluster, conns = fresh_extoll()
    config = EngineConfig(policy="priority", priorities=(3, 2, 1, 0))
    point, stats = run_engine_message_rate(cluster, conns, config,
                                           per_connection=PER_CONN)
    assert point.messages == stats.messages == N_CONNS * PER_CONN
    assert stats.wrs == cluster.a.nic.batch_descriptors


# -- InfiniBand ---------------------------------------------------------------

def test_ib_engine_batches_doorbells_and_suppresses_cqes():
    cluster, conns = fresh_ib()
    config = EngineConfig.all_on()
    point, stats = run_engine_ib_message_rate(cluster, conns, config,
                                              per_connection=PER_CONN)
    assert point.messages == stats.messages == N_CONNS * PER_CONN
    assert stats.wrs == stats.messages           # IB batches, never merges
    assert stats.doorbells < stats.wrs           # cumulative-index coalescing
    # Selective signaling: only each batch's tail WQE completes, so hits
    # track doorbells (flushes), not WQEs.
    assert stats.poll_hits == stats.doorbells


def test_ib_engine_outrates_gpu_dispatch_at_scale():
    """The engine's batched path vs the paper's one-block-per-QP GPU
    dispatch (its best GPU-controlled IB rate)."""
    cluster, conns = fresh_ib()
    blocks = run_ib_message_rate(cluster, conns, RateMethod.BLOCKS,
                                 per_connection=PER_CONN)
    cluster, conns = fresh_ib()
    engine = run_ib_message_rate(cluster, conns, RateMethod.ENGINE_BATCHED,
                                 per_connection=PER_CONN)
    assert engine.messages_per_s > blocks.messages_per_s
