"""Warp-parallel generation and the batched-doorbell posting path."""

import pytest

from repro import build_extoll_cluster
from repro.core import (
    gpu_rma_post,
    gpu_rma_wait_notification,
    setup_extoll_connection,
)
from repro.engine import (
    engine_post_batch,
    engine_rma_post,
    engine_ring_batch_doorbell,
    engine_stage_batch,
    warp_cost,
)
from repro.errors import RmaError
from repro.extoll import NotifyFlags, RmaOp, RmaWorkRequest
from repro.units import KIB, US


@pytest.fixture
def testbed():
    cluster = build_extoll_cluster()
    conn = setup_extoll_connection(cluster, 4 * KIB)
    return cluster, conn


def put_wr(conn, size=64, offset=0, flags=NotifyFlags.REQUESTER):
    return RmaWorkRequest(op=RmaOp.PUT, port=conn.a.port.port_id, dst_node=1,
                          src_nla=conn.a.send_nla.base + offset,
                          dst_nla=conn.b.recv_nla.base + offset,
                          size=size, flags=flags)


@pytest.mark.quick
def test_warp_cost_is_the_ceiling_division():
    assert warp_cost(34, 8) == 5
    assert warp_cost(34, 1) == 34
    assert warp_cost(8, 8) == 1
    assert warp_cost(9, 8) == 2


def test_warp_parallel_post_beats_the_scalar_post(testbed):
    """Same descriptor, same port: collaborative assembly plus the wide
    store must be strictly cheaper than the scalar three-store post."""
    cluster, conn = testbed
    wr = put_wr(conn, flags=NotifyFlags.NONE)
    page = conn.a.port.page_addr

    def kernel(ctx):
        t0 = ctx.sim.now
        yield from gpu_rma_post(ctx, page, wr)
        scalar = ctx.sim.now - t0
        engine = yield from engine_rma_post(ctx, page, wr, lanes=8)
        return scalar, engine

    h = conn.a.node.gpu.launch(kernel)
    cluster.sim.run_until_complete(h, limit=1.0)
    scalar, engine = h.block_result(0)
    assert engine < scalar


def test_post_batch_delivers_all_descriptors_in_order(testbed):
    """Three puts staged behind ONE doorbell: every payload lands, every
    notification arrives in posting order, and the NIC counts one batched
    doorbell carrying three descriptors."""
    cluster, conn = testbed
    gpu_a = conn.a.node.gpu
    for i in range(3):
        gpu_a.dram.write(conn.a.send_buf.base + i * 64, bytes([0x40 + i]) * 64)
    wrs = [put_wr(conn, size=64, offset=i * 64) for i in range(3)]
    ncfg = conn.a.node.nic.config
    nic = conn.a.node.nic

    def kernel(ctx):
        cursor = conn.a.requester_cursor()
        yield from engine_post_batch(ctx, conn.a.port.page_addr,
                                     ncfg.batch_region_offset,
                                     ncfg.batch_doorbell_offset, wrs)
        for _ in wrs:
            yield from gpu_rma_wait_notification(ctx, cursor)

    h = gpu_a.launch(kernel)
    cluster.sim.run_until_complete(h, limit=1.0)
    cluster.sim.run(until=cluster.sim.now + 100 * US)
    assert nic.batch_doorbells == 1
    assert nic.batch_descriptors == 3
    gpu_b = conn.b.node.gpu
    for i in range(3):
        assert gpu_b.dram.read(conn.b.recv_buf.base + i * 64, 64) \
            == bytes([0x40 + i]) * 64


def test_staging_alone_triggers_nothing(testbed):
    """Writes into the batch region must NOT post — only the doorbell
    does.  This is what lets descriptors accumulate between flushes."""
    cluster, conn = testbed
    wrs = [put_wr(conn, size=64, flags=NotifyFlags.NONE)]
    ncfg = conn.a.node.nic.config
    marker = b"\xee" * 64
    conn.a.node.gpu.dram.write(conn.a.send_buf.base, marker)

    def kernel(ctx):
        yield from engine_stage_batch(ctx, conn.a.port.page_addr,
                                      ncfg.batch_region_offset, wrs)
        yield from ctx.fence_system()

    h = conn.a.node.gpu.launch(kernel)
    cluster.sim.run_until_complete(h, limit=1.0)
    cluster.sim.run(until=cluster.sim.now + 100 * US)
    assert conn.a.node.nic.batch_doorbells == 0
    assert conn.b.node.gpu.dram.read(conn.b.recv_buf.base, 64) != marker


def test_empty_batch_is_rejected(testbed):
    cluster, conn = testbed
    ncfg = conn.a.node.nic.config

    def kernel(ctx):
        with pytest.raises(RmaError):
            yield from engine_stage_batch(ctx, conn.a.port.page_addr,
                                          ncfg.batch_region_offset, [])

    h = conn.a.node.gpu.launch(kernel)
    cluster.sim.run_until_complete(h, limit=1.0)


def test_doorbell_count_must_match_staged_region(testbed):
    """A count outside 1..max_batch_descriptors is a programming error the
    NIC rejects (the delivery faults) rather than decoding garbage: no
    doorbell is accounted and no descriptor reaches the requester."""
    cluster, conn = testbed
    ncfg = conn.a.node.nic.config
    nic = conn.a.node.nic
    bogus = ncfg.max_batch_descriptors + 1

    def kernel(ctx):
        yield from engine_ring_batch_doorbell(ctx, conn.a.port.page_addr,
                                              ncfg.batch_doorbell_offset,
                                              bogus)

    h = conn.a.node.gpu.launch(kernel)
    cluster.sim.run_until_complete(h, limit=1.0)
    cluster.sim.run(until=cluster.sim.now + 100 * US)
    assert nic.batch_doorbells == 0
    assert nic.batch_descriptors == 0


def test_batch_region_capacity_matches_the_page_layout(testbed):
    _, conn = testbed
    ncfg = conn.a.node.nic.config
    span = ncfg.batch_doorbell_offset - ncfg.batch_region_offset
    assert ncfg.max_batch_descriptors == span // 24
    assert ncfg.max_batch_descriptors >= 8   # room for the default batch
