"""Engine ping-pong: config surface and the latency cost/benefit."""

import pytest

from repro import build_extoll_cluster
from repro.core import setup_extoll_connection
from repro.core.modes import ExtollMode, RateMethod
from repro.core.pingpong import run_extoll_pingpong
from repro.engine import PINGPONG_CONFIGS, EngineConfig, run_engine_pingpong
from repro.errors import BenchmarkError, ConfigError
from repro.obs.tracer import SpanTracer
from repro.sim import Simulator
from repro.units import KIB

ITERS = dict(iterations=10, warmup=2)


def fresh_conn(seed=7, tracer=None):
    sim = Simulator(seed=seed, tracer=tracer)
    cluster = build_extoll_cluster(sim=sim)
    return cluster, setup_extoll_connection(cluster, 16 * KIB)


# -- configuration surface ----------------------------------------------------

@pytest.mark.quick
def test_config_variant_flags():
    assert not EngineConfig.baseline().warp_parallel
    assert not EngineConfig.baseline().batching
    assert not EngineConfig.baseline().aggregating
    assert EngineConfig.warp_only().warp_parallel
    assert not EngineConfig.warp_only().batching
    assert EngineConfig.batch_only().batching
    assert not EngineConfig.batch_only().warp_parallel
    all_on = EngineConfig.all_on()
    assert all_on.warp_parallel and all_on.batching and all_on.aggregating


@pytest.mark.quick
def test_config_window_accommodates_the_batch():
    assert EngineConfig(window=2, batch_size=8).effective_window == 8
    assert EngineConfig(window=24, batch_size=8).effective_window == 24


@pytest.mark.parametrize("kwargs", [
    {"wqe_lanes": 0},
    {"wqe_lanes": 33},
    {"batch_size": 0},
    {"aggregate_bytes": -1},
    {"window": 0},
    {"flush_timeout": 0.0},
])
def test_config_validation(kwargs):
    with pytest.raises(ConfigError):
        EngineConfig(**kwargs)


def test_pingpong_config_names_are_rate_methods():
    """The CLI mode names double as RateMethod values so every surface
    (trace, bench, rate sweeps) spells the engine the same way."""
    values = {m.value for m in RateMethod}
    assert set(PINGPONG_CONFIGS) <= values


# -- latency ------------------------------------------------------------------

def test_baseline_engine_reproduces_direct_exactly():
    """With every optimization off, the engine's posting path IS the
    scalar dev2dev-direct path — latencies must agree bit-exactly, which
    pins the ablation's zero point to the paper's cost model."""
    cluster, conn = fresh_conn()
    direct = run_extoll_pingpong(cluster, conn, ExtollMode.DIRECT, 64, **ITERS)
    cluster, conn = fresh_conn()
    engine = run_engine_pingpong(cluster, conn, 64,
                                 config=EngineConfig.baseline(), **ITERS)
    assert engine.latency == direct.latency
    assert engine.post_time == direct.post_time


def test_all_on_engine_beats_direct_at_64b():
    cluster, conn = fresh_conn()
    direct = run_extoll_pingpong(cluster, conn, ExtollMode.DIRECT, 64, **ITERS)
    cluster, conn = fresh_conn()
    engine = run_engine_pingpong(cluster, conn, 64, **ITERS)
    assert engine.latency < direct.latency


def test_warp_parallelism_cuts_post_time():
    cluster, conn = fresh_conn()
    scalar = run_engine_pingpong(cluster, conn, 64,
                                 config=EngineConfig.baseline(), **ITERS)
    cluster, conn = fresh_conn()
    warp = run_engine_pingpong(cluster, conn, 64,
                               config=EngineConfig.warp_only(), **ITERS)
    assert warp.post_time < scalar.post_time
    assert warp.latency < scalar.latency


def test_pingpong_rejects_oversized_message():
    cluster, conn = fresh_conn()
    with pytest.raises(BenchmarkError):
        run_engine_pingpong(cluster, conn, 64 * KIB, **ITERS)


def test_traced_engine_pingpong_reconciles():
    """The engine driver's phase spans must account for the measured
    point the same way the scalar drivers do (the profiler contract)."""
    from repro.obs.export import reconcile_with_point

    tracer = SpanTracer()
    cluster, conn = fresh_conn(tracer=tracer)
    point = run_engine_pingpong(cluster, conn, 64, **ITERS)
    recon = reconcile_with_point(tracer, point, ITERS["iterations"])
    assert recon["phases"], "no phase spans recorded"
    assert all(r["ok"] for r in recon["phases"].values())
