"""FaultInjector / LinkFaultState against real links: drops, corruption,
delays, outages, and the zero-cost null path."""

import pytest

from repro.errors import ConfigError
from repro.faults import FaultInjector, FaultPlan, LinkFaults
from repro.network import NetLinkConfig, NetworkFabric, Packet, PacketKind
from repro.obs import SpanTracer
from repro.sim import Simulator


def make_pair(seed=1, tracer=None, config=None):
    sim = Simulator(seed=seed, tracer=tracer)
    fabric = NetworkFabric(sim)
    a, b = fabric.connect(0, 1, config)
    return sim, fabric, a, b


def pkt(payload=b"\xab" * 32):
    return Packet(PacketKind.RMA_PUT, 0, 1, 32, payload)


def pump(sim, a, b, count):
    """Send ``count`` packets a->b, return what landed in the receive-side
    inbox once the simulation ran dry."""

    def sender():
        for _ in range(count):
            yield from a.send(pkt())

    sim.process(sender())
    sim.run()
    return list(b.inbox._items)


@pytest.mark.quick
def test_null_plan_installs_nothing():
    sim, fabric, a, b = make_pair()
    injector = FaultInjector(sim, FaultPlan.none()).attach(fabric)
    assert injector.states == {}
    assert all(link.faults is None for link in fabric.links().values())
    assert len(pump(sim, a, b, 5)) == 5


@pytest.mark.quick
def test_total_loss_drops_everything():
    sim, fabric, a, b = make_pair()
    injector = FaultInjector(
        sim, FaultPlan.uniform(loss=1.0)).attach(fabric)
    received = pump(sim, a, b, 10)
    assert received == []
    assert injector.drops == 10
    assert injector.counters()  # per-link snapshot is populated


def test_partial_loss_is_seeded_and_counted():
    def run(seed):
        sim, fabric, a, b = make_pair(seed=seed)
        injector = FaultInjector(
            sim, FaultPlan.uniform(loss=0.5, seed=7)).attach(fabric)
        return len(pump(sim, a, b, 40)), injector.drops

    got1, drops1 = run(3)
    got2, drops2 = run(3)
    assert got1 + drops1 == 40
    assert 0 < drops1 < 40
    assert (got1, drops1) == (got2, drops2)   # deterministic replay
    # A different simulator seed reshuffles which packets die.
    assert run(4) != (got1, drops1) or run(5) != (got1, drops1)


def test_corruption_delivers_detectably_bad_clones():
    sim, fabric, a, b = make_pair()
    injector = FaultInjector(
        sim, FaultPlan.uniform(corrupt=1.0)).attach(fabric)
    original = pkt(b"\x11" * 64)

    def sender():
        yield from a.send(original)

    sim.process(sender())
    sim.run()
    [delivered] = b.inbox._items
    assert injector.corruptions == 1
    assert delivered.is_corrupt
    assert delivered is not original
    # The sender's copy (a retransmission source) stays pristine.
    assert original.payload == b"\x11" * 64
    assert not original.is_corrupt


def test_delay_keeps_packets_but_reorders_them():
    sim, fabric, a, b = make_pair(
        config=NetLinkConfig(bandwidth=1e12, latency=10e-9))
    plan = FaultPlan.for_links({(0, 1): LinkFaults(
        delay_prob=0.5, delay_max=50e-6)}, seed=2)
    injector = FaultInjector(sim, plan).attach(fabric)
    received = pump(sim, a, b, 30)
    assert len(received) == 30                  # delayed, never lost
    assert injector.delays > 0
    order = [p.seq for p in received]
    assert order != sorted(order)               # delays escape the chain


def test_down_window_drops_then_recovers():
    sim, fabric, a, b = make_pair(
        tracer=SpanTracer(),
        config=NetLinkConfig(bandwidth=1e12, latency=10e-9))
    plan = FaultPlan.for_links(
        {(0, 1): LinkFaults(down_windows=((1e-6, 5e-6),))})
    injector = FaultInjector(sim, plan).attach(fabric)

    def sender():
        # One packet before, several inside, one after the outage.
        yield from a.send(pkt())
        yield sim.timeout(2e-6)
        for _ in range(3):
            yield from a.send(pkt())
        yield sim.timeout(6e-6)
        yield from a.send(pkt())

    sim.process(sender())
    sim.run()
    assert len(b.inbox._items) == 2
    assert injector.down_drops == 3
    assert injector.transitions == 2            # down edge + up edge
    state = next(iter(injector.states.values()))
    assert state.up
    # The outage is recorded as 0/1 samples on a timeline metric.
    timeline = sim.tracer.metrics.timeline(f"fault.{state.link.name}.up")
    assert [v for _, v in timeline.points] == [0, 1]
    assert timeline.points[0][0] == pytest.approx(1e-6)
    assert timeline.points[1][0] == pytest.approx(6e-6)


def test_flap_schedule_toggles_repeatedly():
    sim, fabric, a, b = make_pair()
    plan = FaultPlan.for_links({(0, 1): LinkFaults(
        flap_start=1e-6, flap_count=3, flap_period=4e-6,
        flap_downtime=1e-6)})
    injector = FaultInjector(sim, plan).attach(fabric)
    sim.run()
    assert injector.transitions == 6            # 3 flaps x 2 edges
    assert all(s.up for s in injector.states.values())


def test_double_attach_and_stray_bring_up_rejected():
    sim, fabric, a, b = make_pair()
    link = next(iter(fabric.links().values()))
    injector = FaultInjector(sim, FaultPlan.uniform(loss=0.5))
    injector.attach_link(link, 0, 1)
    with pytest.raises(ConfigError):
        injector.attach_link(link, 0, 1)
    state = injector.states[link.name]
    with pytest.raises(ConfigError):
        state.bring_up()
