"""The chaos harness CLI (``python -m repro faults``) and its checks."""

import pytest

from repro.__main__ import main as repro_main
from repro.analysis.faults import (
    ChaosPoint,
    monotonic_check,
    render_chaos,
    zero_cost_check,
)
from repro.collectives.comm import CollectiveMode
from repro.faults.cli import main as faults_main


@pytest.mark.quick
def test_quick_sweep_passes(capsys):
    assert faults_main(["--quick"]) == 0
    out = capsys.readouterr().out
    assert "all chaos checks passed" in out
    assert "bit-identical OK" in out
    assert "monotonic degradation : OK" in out


def test_traced_run_reconciles(tmp_path, capsys):
    trace = tmp_path / "chaos.json"
    assert faults_main(["--loss", "0.02", "--sizes", "64",
                        "--mode", "dev2dev-pollOnGPU", "--nodes", "3",
                        "--iterations", "2", "--trace", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "retransmit reconcile" in out and "OK" in out
    assert trace.exists() and trace.stat().st_size > 0


def test_dispatch_through_python_m_repro(capsys):
    assert repro_main(["faults", "--quick"]) == 0
    assert "all chaos checks passed" in capsys.readouterr().out


def test_bad_loss_list_rejected():
    with pytest.raises(SystemExit):
        faults_main(["--loss", "nope"])
    with pytest.raises(SystemExit):
        faults_main(["--loss", "1.5"])


def _point(mode, size, loss, latency, goodput):
    return ChaosPoint(op="all-reduce", mode=mode, nodes=4, size=size,
                      loss=loss, corrupt=0.0, correct=True, latency=latency,
                      goodput=goodput, retransmits=0, ack_replays=0,
                      drops=0, corruptions=0, seed=1)


def test_monotonic_check_flags_improvements():
    good = [_point("m", 64, 0.0, 10e-6, 50.0),
            _point("m", 64, 0.01, 12e-6, 45.0),
            _point("m", 64, 0.02, 20e-6, 30.0)]
    assert monotonic_check(good)["ok"]
    bad = good + [_point("m", 64, 0.05, 2e-6, 200.0)]  # faster under MORE loss
    result = monotonic_check(bad)
    assert not result["ok"]
    assert len(result["violations"]) == 2  # latency AND goodput improved
    assert "x base" in render_chaos(bad)


def test_zero_cost_holds_for_direct_mode():
    zc = zero_cost_check(CollectiveMode.DIRECT, 64, nodes=3, iterations=2)
    assert zc["ok"], zc
