"""FaultPlan / LinkFaults: validation, lookup, seeded stream derivation."""

import pytest

from repro.errors import ConfigError
from repro.faults import FaultPlan, LinkFaults


def test_default_config_is_null():
    assert LinkFaults().is_null
    assert FaultPlan.none().is_null
    assert FaultPlan.uniform().is_null


def test_any_fault_clears_is_null():
    assert not LinkFaults(loss=0.1).is_null
    assert not LinkFaults(corrupt=0.1).is_null
    assert not LinkFaults(delay_prob=0.1, delay_max=1e-6).is_null
    assert not LinkFaults(down_windows=((1e-6, 1e-6),)).is_null
    assert not LinkFaults(flap_count=2, flap_period=2e-6,
                          flap_downtime=1e-6).is_null


@pytest.mark.parametrize("kwargs", [
    {"loss": -0.1},
    {"loss": 1.5},
    {"corrupt": 2.0},
    {"delay_prob": 0.5},                      # delay without delay_max
    {"delay_max": -1.0},
    {"down_windows": ((-1.0, 1.0),)},
    {"down_windows": ((0.0, 0.0),)},
    {"flap_count": -1},
    {"flap_count": 1},                        # flapping without period
    {"flap_count": 1, "flap_period": 1e-6, "flap_downtime": 2e-6},
])
def test_bad_configs_rejected(kwargs):
    with pytest.raises(ConfigError):
        LinkFaults(**kwargs)


def test_per_link_overrides_with_unordered_keys():
    lossy = LinkFaults(loss=0.5)
    plan = FaultPlan.for_links({(3, 1): lossy})
    assert plan.for_link(1, 3) is lossy
    assert plan.for_link(3, 1) is lossy
    assert plan.for_link(0, 1).is_null
    assert not plan.is_null


def test_uniform_applies_everywhere():
    plan = FaultPlan.uniform(loss=0.25, corrupt=0.125, seed=9)
    assert plan.for_link(0, 1).loss == 0.25
    assert plan.for_link(5, 7).corrupt == 0.125
    assert plan.seed == 9


def test_link_streams_are_deterministic_and_distinct():
    plan = FaultPlan.uniform(loss=0.1, seed=4)
    a1 = [plan.link_rng(1, "link0-1").random() for _ in range(8)]
    a2 = [plan.link_rng(1, "link0-1").random() for _ in range(8)]
    b = [plan.link_rng(1, "link1-2").random() for _ in range(8)]
    assert a1 == a2                       # same (sim seed, plan seed, link)
    assert a1 != b                        # different links diverge
    # Different plan seed and different sim seed each change the stream.
    assert plan.link_seed(1, "l") != plan.link_seed(2, "l")
    assert (FaultPlan.uniform(loss=0.1, seed=5).link_seed(1, "l")
            != plan.link_seed(1, "l"))


def test_plan_is_hashable_pure_data():
    plan = FaultPlan.for_links({(0, 1): LinkFaults(loss=0.5)},
                               default=LinkFaults(corrupt=0.1), seed=2)
    assert hash(plan) == hash(FaultPlan.for_links(
        {(1, 0): LinkFaults(loss=0.5)}, default=LinkFaults(corrupt=0.1),
        seed=2))
