"""IB go-back-N retransmission: RC verbs under injected loss/corruption."""

import pytest

from repro.cluster import build_ib_cluster
from repro.errors import RetryExhaustedError
from repro.faults import FaultInjector, FaultPlan, LinkFaults
from repro.ib import (
    CqConsumer,
    IbConfig,
    IbOpcode,
    IbResources,
    WcStatus,
    Wqe,
    connect_qps,
    ibv_post_recv,
    ibv_post_send,
    ibv_wait_cq,
)
from repro.sim import Simulator, join_result
from repro.units import KIB, US

FAST_RETX = IbConfig(reliability=True, retx_timeout=5 * US,
                     retx_max_timeout=80 * US, retx_max_retries=8)


def make_testbed(plan, config=FAST_RETX, seed=1):
    sim = Simulator(seed=seed)
    cluster = build_ib_cluster(nic_config=config, sim=sim)
    a, b = cluster.a, cluster.b
    res_a, res_b = IbResources(a, a.nic), IbResources(b, b.nic)
    qp_a = res_a.create_qp("host")
    qp_b = res_b.create_qp("host")
    connect_qps(qp_a, 0, qp_b, 1)
    injector = FaultInjector(sim, plan).attach(cluster.net)
    return cluster, a, b, qp_a, qp_b, injector


def test_default_config_keeps_reliability_off():
    assert not IbConfig().reliability


@pytest.mark.quick
def test_writes_complete_in_order_under_loss():
    cluster, a, b, qp_a, qp_b, injector = make_testbed(
        FaultPlan.uniform(loss=0.12, corrupt=0.08, seed=2))
    n = 10
    src = a.host_malloc(n * KIB)
    dst = b.host_malloc(n * KIB)
    mr_src = a.nic.register_memory(src)
    mr_dst = b.nic.register_memory(dst)

    def sender(ctx):
        idx = 0
        for i in range(n):
            a.host_mem.write(src.base + i * KIB, bytes([i + 1]) * KIB)
            w = Wqe(opcode=IbOpcode.RDMA_WRITE, wr_id=100 + i,
                    local_addr=src.base + i * KIB, lkey=mr_src.lkey,
                    length=KIB, remote_addr=dst.base + i * KIB,
                    rkey=mr_dst.rkey)
            idx = yield from ibv_post_send(ctx, a.nic, qp_a, w, idx)
        consumer = CqConsumer(qp_a.send_cq)
        ids = []
        for _ in range(n):
            cqe = yield from ibv_wait_cq(ctx, consumer)
            assert cqe.status is WcStatus.SUCCESS
            ids.append(cqe.wr_id)
        return ids

    sp = a.cpu.spawn(sender)
    cluster.sim.run_until_complete(sp, limit=0.1)
    assert join_result(sp) == list(range(100, 100 + n))
    for i in range(n):
        assert b.host_mem.read(dst.base + i * KIB, KIB) == bytes([i + 1]) * KIB
    assert injector.drops + injector.corruptions > 0
    assert a.nic.retransmits > 0
    assert not a.nic.async_errors and not b.nic.async_errors


def test_read_survives_lost_responses():
    cluster, a, b, qp_a, qp_b, injector = make_testbed(
        FaultPlan.uniform(loss=0.2, seed=6))
    local = a.host_malloc(2 * KIB)
    remote = b.host_malloc(2 * KIB)
    b.host_mem.write(remote.base, b"Q" * 2048)
    mr_local = a.nic.register_memory(local)
    mr_remote = b.nic.register_memory(remote)

    def reader(ctx):
        w = Wqe(opcode=IbOpcode.RDMA_READ, wr_id=3, local_addr=local.base,
                lkey=mr_local.lkey, length=2048, remote_addr=remote.base,
                rkey=mr_remote.rkey)
        yield from ibv_post_send(ctx, a.nic, qp_a, w, 0)
        return (yield from ibv_wait_cq(ctx, CqConsumer(qp_a.send_cq)))

    rp = a.cpu.spawn(reader)
    cluster.sim.run_until_complete(rp, limit=0.1)
    assert join_result(rp).status is WcStatus.SUCCESS
    assert a.host_mem.read(local.base, 2048) == b"Q" * 2048
    assert injector.drops > 0


def test_send_recv_survives_loss():
    cluster, a, b, qp_a, qp_b, injector = make_testbed(
        FaultPlan.uniform(loss=0.15, seed=4))
    src = a.host_malloc(1 * KIB)
    dst = b.host_malloc(1 * KIB)
    a.host_mem.write(src.base, b"S" * 1024)
    mr_src = a.nic.register_memory(src)
    mr_dst = b.nic.register_memory(dst)

    def receiver(ctx):
        w = Wqe(opcode=IbOpcode.RECV, wr_id=5, local_addr=dst.base,
                lkey=mr_dst.lkey, length=1 * KIB)
        yield from ibv_post_recv(ctx, b.nic, qp_b, w, 0)
        return (yield from ibv_wait_cq(ctx, CqConsumer(qp_b.recv_cq)))

    def sender(ctx):
        yield from ctx.sleep(5 * US)
        w = Wqe(opcode=IbOpcode.SEND, wr_id=6, local_addr=src.base,
                lkey=mr_src.lkey, length=1 * KIB)
        yield from ibv_post_send(ctx, a.nic, qp_a, w, 0)
        return (yield from ibv_wait_cq(ctx, CqConsumer(qp_a.send_cq)))

    rp = b.cpu.spawn(receiver)
    sp = a.cpu.spawn(sender)
    cluster.sim.run_until_complete(rp, sp, limit=0.1)
    assert join_result(rp).status is WcStatus.SUCCESS
    assert join_result(sp).status is WcStatus.SUCCESS
    assert b.host_mem.read(dst.base, 1024) == b"S" * 1024


def test_same_seed_replays_identical_retransmit_history():
    def run():
        cluster, a, b, qp_a, qp_b, injector = make_testbed(
            FaultPlan.uniform(loss=0.12, seed=2), seed=9)
        src = a.host_malloc(4 * KIB)
        dst = b.host_malloc(4 * KIB)
        mr_src = a.nic.register_memory(src)
        mr_dst = b.nic.register_memory(dst)

        def sender(ctx):
            idx = 0
            for i in range(4):
                w = Wqe(opcode=IbOpcode.RDMA_WRITE, wr_id=i,
                        local_addr=src.base + i * KIB, lkey=mr_src.lkey,
                        length=KIB, remote_addr=dst.base + i * KIB,
                        rkey=mr_dst.rkey)
                idx = yield from ibv_post_send(ctx, a.nic, qp_a, w, idx)
            consumer = CqConsumer(qp_a.send_cq)
            for _ in range(4):
                yield from ibv_wait_cq(ctx, consumer)

        sp = a.cpu.spawn(sender)
        cluster.sim.run_until_complete(sp, limit=0.1)
        return cluster.sim.now, a.nic.retransmits, injector.drops

    assert run() == run()


def test_permanent_outage_exhausts_ib_retries():
    config = IbConfig(reliability=True, retx_timeout=2 * US,
                      retx_max_timeout=8 * US, retx_max_retries=3)
    plan = FaultPlan.for_links({(0, 1): LinkFaults(
        down_windows=((0.0, 1.0),))})
    cluster, a, b, qp_a, qp_b, _ = make_testbed(plan, config=config)
    src = a.host_malloc(64)
    dst = b.host_malloc(64)
    mr_src = a.nic.register_memory(src)
    mr_dst = b.nic.register_memory(dst)

    def sender(ctx):
        w = Wqe(opcode=IbOpcode.RDMA_WRITE, wr_id=1, local_addr=src.base,
                lkey=mr_src.lkey, length=64, remote_addr=dst.base,
                rkey=mr_dst.rkey)
        yield from ibv_post_send(ctx, a.nic, qp_a, w, 0)

    sp = a.cpu.spawn(sender)
    cluster.sim.run_until_complete(sp, limit=1e-3)
    cluster.sim.run(until=cluster.sim.now + 1e-3)
    assert any(isinstance(e, RetryExhaustedError) for e in a.nic.async_errors)
    assert a.nic.retransmits >= config.retx_max_retries
