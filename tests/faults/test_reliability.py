"""Reliable msglib channels under injected faults: loss, corruption,
reordering, outages — and the acceptance grid across all control modes."""

import pytest

from repro import build_extoll_cluster
from repro.analysis.faults import run_chaos_point
from repro.collectives.comm import CollectiveMode
from repro.core.msglib import create_channel_between, gpu_recv, gpu_send
from repro.errors import RetryExhaustedError
from repro.faults import (
    FaultInjector,
    FaultPlan,
    LinkFaults,
    ReliabilityConfig,
)
from repro.sim import Simulator


def make_reliable_pair(plan, seed=1, slots=8, config=None):
    sim = Simulator(seed=seed)
    cluster = build_extoll_cluster(sim=sim)
    chan = create_channel_between(cluster, cluster.a, cluster.b,
                                  slots=slots, reliable=True,
                                  reliability_config=config)
    injector = FaultInjector(sim, plan).attach(cluster.net)
    return cluster, chan, injector


def run_pair(cluster, chan, messages, limit=5e-3):
    fwd = chan.end_for_sender(0)
    rev = chan.end_for_sender(1)

    def sender(ctx):
        for msg in messages:
            yield from gpu_send(ctx, fwd, msg)

    def receiver(ctx):
        got = []
        for _ in messages:
            got.append((yield from gpu_recv(ctx, fwd, rev)))
        return got

    hs = cluster.a.gpu.launch(sender)
    hr = cluster.b.gpu.launch(receiver)
    cluster.sim.run_until_complete(hs, hr, limit=limit)
    return hr.block_result(0)


@pytest.mark.quick
def test_reliable_channel_without_faults_never_retransmits():
    cluster, chan, injector = make_reliable_pair(FaultPlan.none())
    msgs = [f"msg-{i}".encode() for i in range(12)]
    assert run_pair(cluster, chan, msgs) == msgs
    assert injector.states == {}
    assert all(end.reliability.retransmits == 0 for end in (chan.a_to_b, chan.b_to_a))
    assert all(end.reliability.error is None for end in (chan.a_to_b, chan.b_to_a))


@pytest.mark.quick
def test_reliable_channel_survives_heavy_loss_and_corruption():
    cluster, chan, injector = make_reliable_pair(
        FaultPlan.uniform(loss=0.15, corrupt=0.1, seed=3), slots=4)
    msgs = [bytes([i]) * 48 for i in range(24)]  # 6x ring depth
    assert run_pair(cluster, chan, msgs, limit=20e-3) == msgs
    assert injector.drops + injector.corruptions > 0
    assert sum(end.reliability.retransmits for end in (chan.a_to_b, chan.b_to_a)) > 0
    assert all(end.reliability.error is None for end in (chan.a_to_b, chan.b_to_a))


def test_reliable_channel_survives_reordering():
    plan = FaultPlan.for_links({(0, 1): LinkFaults(
        loss=0.05, delay_prob=0.25, delay_max=20e-6)}, seed=5)
    cluster, chan, injector = make_reliable_pair(plan, slots=4)
    msgs = [f"ordered-{i:02d}".encode() for i in range(20)]
    assert run_pair(cluster, chan, msgs, limit=20e-3) == msgs
    assert injector.delays > 0


def test_reliable_channel_rides_out_an_outage():
    plan = FaultPlan.for_links({(0, 1): LinkFaults(
        down_windows=((5e-6, 60e-6),))})
    cluster, chan, injector = make_reliable_pair(plan, slots=4)
    msgs = [bytes([i]) * 32 for i in range(16)]
    assert run_pair(cluster, chan, msgs, limit=20e-3) == msgs
    assert injector.down_drops > 0
    assert sum(end.reliability.retransmits for end in (chan.a_to_b, chan.b_to_a)) > 0


def test_permanent_outage_exhausts_retries():
    config = ReliabilityConfig(timeout=2e-6, backoff=2.0,
                               max_timeout=8e-6, max_retries=4)
    plan = FaultPlan.for_links({(0, 1): LinkFaults(
        down_windows=((0.0, 1.0),))})     # dead for the whole run
    cluster, chan, _ = make_reliable_pair(plan, config=config)
    fwd = chan.end_for_sender(0)

    def sender(ctx):
        yield from gpu_send(ctx, fwd, b"into the void")

    hs = cluster.a.gpu.launch(sender)
    cluster.sim.run_until_complete(hs, limit=1e-3)
    cluster.sim.run(until=cluster.sim.now + 2e-3)
    err = fwd.reliability.error
    assert isinstance(err, RetryExhaustedError)
    assert fwd.reliability.retransmits >= config.max_retries
    # The error is also queued on the NIC for host-side harvesting.
    assert any(isinstance(e, RetryExhaustedError)
               for e in cluster.a.nic.rma.async_errors)


@pytest.mark.parametrize("mode", list(CollectiveMode),
                         ids=[m.value for m in CollectiveMode])
def test_ring_allreduce_correct_under_loss_in_every_mode(mode):
    """The acceptance grid: a 4-node ring all-reduce at 1% loss (plus
    0.5% corruption) must compute the exact right answer in all three
    control modes."""
    point, comm, injector = run_chaos_point(mode, 64, 0.01, corrupt=0.005,
                                            nodes=4, iterations=2, warmup=1)
    assert point.correct
    assert injector.drops + injector.corruptions > 0
    assert comm.retransmits > 0
    comm.check_reliability_errors()   # no engine died along the way
