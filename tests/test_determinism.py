"""The simulation must be deterministic: identical builds produce identical
results, event for event.  This is what makes the benchmark suite's shape
assertions trustworthy."""

from repro import build_extoll_cluster, build_ib_cluster
from repro.core import (
    ExtollMode,
    IbMode,
    RateMethod,
    run_extoll_message_rate,
    run_extoll_pingpong,
    run_ib_pingpong,
    setup_extoll_connection,
    setup_extoll_connections,
    setup_ib_connection,
)
from repro.units import KIB


def test_extoll_pingpong_bitwise_repeatable():
    results = []
    for _ in range(2):
        cluster = build_extoll_cluster()
        conn = setup_extoll_connection(cluster, 4 * KIB)
        p = run_extoll_pingpong(cluster, conn, ExtollMode.DIRECT, 1 * KIB,
                                iterations=6, warmup=1)
        results.append((p.latency, p.post_time, p.poll_time))
    assert results[0] == results[1]


def test_ib_pingpong_bitwise_repeatable():
    results = []
    for _ in range(2):
        cluster = build_ib_cluster()
        conn = setup_ib_connection(cluster, 4 * KIB)
        p = run_ib_pingpong(cluster, conn, IbMode.BUF_ON_GPU, 256,
                            iterations=6, warmup=1)
        results.append(p.latency)
    assert results[0] == results[1]


def test_message_rate_bitwise_repeatable():
    results = []
    for _ in range(2):
        cluster = build_extoll_cluster()
        conns = setup_extoll_connections(cluster, 4 * KIB, 4)
        r = run_extoll_message_rate(cluster, conns, RateMethod.BLOCKS,
                                    per_connection=20)
        results.append(r.elapsed)
    assert results[0] == results[1]


def test_faulted_run_bitwise_repeatable():
    """Fault injection is seeded: the same (simulator seed, plan seed) must
    reproduce the same drops, the same retransmissions, and the same
    trace, event for event."""
    from repro.analysis.faults import run_chaos_point
    from repro.collectives.comm import CollectiveMode
    from repro.obs import SpanTracer
    from repro.obs.export import chrome_trace_events

    def scrub(events):
        # Packet seqs and PCIe tags are allocated from process-global
        # counters (unique IDs, not simulation state): they differ between
        # two runs in ONE interpreter but never affect timing or ordering.
        return [{**ev, "args": {k: v for k, v in ev.get("args", {}).items()
                                if k not in ("seq", "tag")}}
                for ev in events]

    def run():
        tracer = SpanTracer()
        point, _, injector = run_chaos_point(
            CollectiveMode.POLL_ON_GPU, 64, 0.05, corrupt=0.02, nodes=3,
            iterations=2, warmup=1, seed=11, plan_seed=5, tracer=tracer)
        return point, injector.counters(), scrub(chrome_trace_events(tracer))

    p1, counters1, trace1 = run()
    p2, counters2, trace2 = run()
    assert p1 == p2
    assert p1.drops + p1.corruptions > 0    # faults actually fired
    assert counters1 == counters2
    assert trace1 == trace2                 # byte-identical trace events


def test_different_seed_changes_fault_pattern():
    from repro.analysis.faults import run_chaos_point
    from repro.collectives.comm import CollectiveMode

    def run(seed):
        point, _, _ = run_chaos_point(
            CollectiveMode.POLL_ON_GPU, 64, 0.05, corrupt=0.02, nodes=3,
            iterations=2, warmup=1, seed=seed, plan_seed=5)
        return point.latency, point.retransmits, point.drops

    runs = {run(seed) for seed in (11, 12, 13)}
    assert len(runs) > 1    # the seed genuinely steers the fault stream


def test_counters_bitwise_repeatable():
    counter_dumps = []
    for _ in range(2):
        cluster = build_extoll_cluster()
        conn = setup_extoll_connection(cluster, 4 * KIB)
        run_extoll_pingpong(cluster, conn, ExtollMode.POLL_ON_GPU, 1 * KIB,
                            iterations=10, warmup=0)
        counter_dumps.append(conn.a.node.gpu.counters.as_dict())
    assert counter_dumps[0] == counter_dumps[1]
