"""The simulation must be deterministic: identical builds produce identical
results, event for event.  This is what makes the benchmark suite's shape
assertions trustworthy."""

from repro import build_extoll_cluster, build_ib_cluster
from repro.core import (
    ExtollMode,
    IbMode,
    RateMethod,
    run_extoll_message_rate,
    run_extoll_pingpong,
    run_ib_pingpong,
    setup_extoll_connection,
    setup_extoll_connections,
    setup_ib_connection,
)
from repro.units import KIB


def test_extoll_pingpong_bitwise_repeatable():
    results = []
    for _ in range(2):
        cluster = build_extoll_cluster()
        conn = setup_extoll_connection(cluster, 4 * KIB)
        p = run_extoll_pingpong(cluster, conn, ExtollMode.DIRECT, 1 * KIB,
                                iterations=6, warmup=1)
        results.append((p.latency, p.post_time, p.poll_time))
    assert results[0] == results[1]


def test_ib_pingpong_bitwise_repeatable():
    results = []
    for _ in range(2):
        cluster = build_ib_cluster()
        conn = setup_ib_connection(cluster, 4 * KIB)
        p = run_ib_pingpong(cluster, conn, IbMode.BUF_ON_GPU, 256,
                            iterations=6, warmup=1)
        results.append(p.latency)
    assert results[0] == results[1]


def test_message_rate_bitwise_repeatable():
    results = []
    for _ in range(2):
        cluster = build_extoll_cluster()
        conns = setup_extoll_connections(cluster, 4 * KIB, 4)
        r = run_extoll_message_rate(cluster, conns, RateMethod.BLOCKS,
                                    per_connection=20)
        results.append(r.elapsed)
    assert results[0] == results[1]


def test_counters_bitwise_repeatable():
    counter_dumps = []
    for _ in range(2):
        cluster = build_extoll_cluster()
        conn = setup_extoll_connection(cluster, 4 * KIB)
        run_extoll_pingpong(cluster, conn, ExtollMode.POLL_ON_GPU, 1 * KIB,
                            iterations=10, warmup=0)
        counter_dumps.append(conn.a.node.gpu.counters.as_dict())
    assert counter_dumps[0] == counter_dumps[1]
