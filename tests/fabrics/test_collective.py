"""Topology-aware collectives: numerics, closed forms, bit-exactness."""

import pytest

from repro.fabrics import build_topology, instantiate, run_collective
from repro.fabrics.collective import (ALGORITHMS, expected_phases,
                                      expected_steps)
from repro.fabrics.topology import FabricConfig
from repro.sim import Simulator


def run(kind, algorithm, n=16, credits=None, elems=4, iterations=2, seed=1):
    sim = Simulator(seed=seed)
    inst = instantiate(sim, build_topology(kind, n),
                       FabricConfig(credits=credits))
    return run_collective(inst, algorithm, elems_per_rank=elems,
                          iterations=iterations)


def test_algorithms_registry():
    assert set(ALGORITHMS) == {"ring", "rh", "tree"}


@pytest.mark.parametrize("kind", ["fat-tree", "torus", "dragonfly"])
@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_correct_and_at_closed_form(kind, algorithm):
    r = run(kind, algorithm)
    assert r.correct
    assert r.steps == expected_steps(algorithm, 16)
    assert r.phases == expected_phases(algorithm, 16)


@pytest.mark.parametrize("kind", ["fat-tree", "torus"])
def test_bit_exact_across_algorithms(kind):
    digests = {run(kind, algo).digest for algo in ALGORITHMS}
    assert len(digests) == 1


def test_log_depth_schedules_beat_ring_at_16():
    ring = run("fat-tree", "ring").p50_time
    rh = run("fat-tree", "rh").p50_time
    assert rh < ring


def test_credits_disabled_is_bit_identical_to_uncontended():
    bare = run("torus", "ring", credits=None)
    generous = run("torus", "ring", credits=64)
    assert bare.times == generous.times
    assert bare.digest == generous.digest
    assert bare.stalls == 0 and generous.stalls == 0


def test_expected_steps_closed_forms():
    assert expected_steps("ring", 8) == 14          # 2*(N-1)
    assert expected_steps("rh", 8) == 6             # 2*log2 N
    assert expected_steps("tree", 8) == 3           # log2 N sends
    assert expected_phases("tree", 8) == 6          # 2*ceil(log2 N)
    assert expected_phases("ring", 5) == 8
