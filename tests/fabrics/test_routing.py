"""Routing properties: reachability, deadlock freedom, determinism.

Hypothesis drives the sampled cases; every run goes through the real
simulated fabric (policy routers forwarding packets hop by hop), not a
graph-theoretic shortcut.
"""

from hypothesis import given, settings, strategies as st

from repro.fabrics import build_topology, instantiate, run_permutation
from repro.fabrics.collective import FabricHost
from repro.fabrics.routing import ROUTINGS
from repro.fabrics.topology import TOPOLOGY_KINDS, FabricConfig
from repro.sim import Simulator

_SIZES = {"fat-tree": (8, 16), "dragonfly": (16, 32), "torus": (8, 16, 32)}


def _deliver(kind, n, pairs, routing="minimal", credits=None):
    """Send one tagged message per (src, dst) pair; return the payloads
    each destination pulled out."""
    sim = Simulator(seed=3)
    inst = instantiate(sim, build_topology(kind, n),
                       FabricConfig(credits=credits), routing=routing)
    hosts = [FabricHost(inst, r) for r in range(n)]
    got = {}

    def send(src, dst, tag):
        yield from hosts[src].send(dst, bytes([src, dst, tag]) * 16,
                                   tag=tag)

    def recv(src, dst, tag):
        payload = yield from hosts[dst].recv(src, tag=tag)
        got[(src, dst, tag)] = payload

    procs = []
    for tag, (src, dst) in enumerate(pairs):
        procs.append(sim.process(send(src, dst, tag)))
        procs.append(sim.process(recv(src, dst, tag)))
    sim.run_until_complete(*procs, limit=sim.now + 10.0)
    return got


@given(data=st.data())
@settings(max_examples=12, deadline=None)
def test_all_pairs_reachability(data):
    """Any (src, dst) pair on any topology delivers, payload intact."""
    kind = data.draw(st.sampled_from(TOPOLOGY_KINDS))
    n = data.draw(st.sampled_from(_SIZES[kind]))
    pairs = data.draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
        min_size=1, max_size=6).filter(
            lambda ps: all(s != d for s, d in ps)))
    got = _deliver(kind, n, pairs)
    assert len(got) == len(pairs)
    for tag, (src, dst) in enumerate(pairs):
        assert got[(src, dst, tag)] == bytes([src, dst, tag]) * 16


@given(n=st.sampled_from((8, 16, 32)), seed=st.integers(0, 7),
       credits=st.sampled_from((1, 2)))
@settings(max_examples=10, deadline=None)
def test_torus_dor_deadlock_freedom(n, seed, credits):
    """Dimension-order routing on a torus never deadlocks, even at one
    credit per VC: the dateline VC flip breaks the ring cycle."""
    sim = Simulator(seed=1)
    inst = instantiate(sim, build_topology("torus", n),
                       FabricConfig(credits=credits), routing="dor")
    result = run_permutation(inst, messages=3, payload=128, seed=seed)
    assert result.completed and not result.deadlocked


@given(routing=st.sampled_from(("ugal", "valiant", "minimal")),
       seed=st.integers(0, 5))
@settings(max_examples=10, deadline=None)
def test_adaptive_routes_are_deterministic(routing, seed):
    """Two fresh runs of the same adaptive-routing workload make the
    identical sequence of routing decisions (bit-identical replay)."""

    def paths():
        sim = Simulator(seed=5)
        inst = instantiate(sim, build_topology("dragonfly", 32),
                           FabricConfig(credits=4), routing=routing)
        inst.set_record_paths(True)
        result = run_permutation(inst, messages=3, payload=128, seed=seed)
        assert result.completed
        return (result.time, result.stalls,
                sorted(inst.link_packets().items()))

    assert paths() == paths()


def test_default_policies_match_their_topologies():
    from repro.fabrics.routing import (DimensionOrderPolicy, DragonflyPolicy,
                                       UpDownPolicy, default_policy)
    assert set(ROUTINGS) == {"minimal", "valiant", "ugal"}
    assert isinstance(default_policy(build_topology("torus", 16), "minimal"),
                      DimensionOrderPolicy)
    assert isinstance(default_policy(build_topology("fat-tree", 16),
                                     "minimal"), UpDownPolicy)
    assert isinstance(default_policy(build_topology("dragonfly", 32),
                                     "ugal"), DragonflyPolicy)
