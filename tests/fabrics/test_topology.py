"""Topology builders: deterministic shapes, validated parameters."""

import pytest

from repro.errors import NetworkError
from repro.fabrics import build_topology, dragonfly, fat_tree, torus
from repro.fabrics.topology import TOPOLOGY_KINDS


def test_topology_kinds_cover_the_builders():
    assert set(TOPOLOGY_KINDS) == {"dragonfly", "fat-tree", "torus"}


@pytest.mark.parametrize("kind", TOPOLOGY_KINDS)
@pytest.mark.parametrize("n", [16, 64])
def test_builders_are_deterministic(kind, n):
    a = build_topology(kind, n)
    b = build_topology(kind, n)
    assert a.n == b.n == n
    assert a.edges == b.edges
    assert a.switches == b.switches


def test_fat_tree_rejects_non_pow2():
    with pytest.raises(NetworkError):
        fat_tree(24)
    with pytest.raises(NetworkError):
        fat_tree(4)            # below the minimum pod shape


def test_fat_tree_hosts_attach_through_leaves():
    topo = fat_tree(16)
    assert sorted(topo.attach) == list(range(16))
    assert all(s in topo.switches for s in topo.attach.values())


def test_torus_dims_multiply_to_n():
    topo = torus(64)
    prod = 1
    for d in topo.dims:
        prod *= d
    assert prod == 64
    assert not topo.switches   # hosts are the routers


def test_torus_rejects_bad_dims():
    with pytest.raises(NetworkError):
        torus(12, dims=(5, 2))


def test_dragonfly_groups_scale_with_n():
    small, large = dragonfly(16), dragonfly(64)
    assert large.groups >= small.groups >= 2
    assert large.n == 64


def test_unknown_kind_is_an_error():
    with pytest.raises(NetworkError):
        build_topology("hypercube", 16)
