"""Tests for node composition and cluster builders."""

import pytest

from repro import NodeConfig, build_extoll_cluster, build_ib_cluster
from repro.errors import ConfigError
from repro.extoll import ExtollNic
from repro.ib import Hca
from repro.memory import MemorySpace
from repro.node import Node
from repro.sim import Simulator
from repro.units import MIB


def test_node_memory_layout():
    node = Node(Simulator(), 0)
    user = node.host_malloc(1024)
    kern = node.kernel_alloc.alloc(1024)
    assert node.host_mem.range.contains(user.base, user.size)
    assert node.host_mem.range.contains(kern.base, kern.size)
    assert not user.overlaps(kern)
    assert kern.base >= user.base  # kernel region sits above user space


def test_node_gpu_wired_to_fabric():
    node = Node(Simulator(), 0)
    assert node.gpu.port.fabric is node.pcie
    assert node.address_map.space_of(node.gpu.dram.range.base) is MemorySpace.GPU_DRAM


def test_node_config_validation():
    with pytest.raises(ConfigError):
        NodeConfig(host_mem_bytes=8 * MIB, kernel_mem_bytes=8 * MIB)


def test_extoll_cluster_builds_two_connected_nodes():
    cluster = build_extoll_cluster()
    assert len(cluster.nodes) == 2
    assert isinstance(cluster.a.nic, ExtollNic)
    assert isinstance(cluster.b.nic, ExtollNic)
    assert cluster.net.link_between(0, 1) is not None
    assert cluster.a.sim is cluster.b.sim


def test_ib_cluster_builds_hcas():
    cluster = build_ib_cluster()
    assert isinstance(cluster.a.nic, Hca)
    assert isinstance(cluster.b.nic, Hca)


def test_node_rejects_second_nic():
    cluster = build_extoll_cluster()
    with pytest.raises(ConfigError):
        cluster.a.attach_extoll(cluster.net.endpoint(0))


def test_custom_node_config_propagates():
    from repro.gpu import GpuConfig
    cfg = NodeConfig(gpu=GpuConfig(dram_bytes=32 * MIB, sm_count=4))
    cluster = build_extoll_cluster(cfg)
    assert cluster.a.gpu.config.sm_count == 4
    assert cluster.a.gpu.dram.range.size == 32 * MIB


def test_cluster_run_advances_shared_clock():
    cluster = build_extoll_cluster()
    cluster.sim.timeout(1e-3)
    cluster.run(until=1e-3)
    assert cluster.sim.now == 1e-3
