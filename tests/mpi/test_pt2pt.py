"""Point-to-point basics: eager, rendezvous, wildcards, ordering, errors."""

from __future__ import annotations

import pytest

from repro.cluster import build_extoll_cluster
from repro.errors import MpiError
from repro.mpi import ANY_SOURCE, ANY_TAG, MpiCommunicator, MpiConfig
from repro.sim import Simulator


def make_comm(num_nodes=2, seed=11, config=None, reliable=False,
              reliability_config=None):
    sim = Simulator(seed=seed)
    cluster = build_extoll_cluster(
        sim=sim, num_nodes=num_nodes,
        topology="pair" if num_nodes == 2 else "ring")
    return MpiCommunicator(cluster, config=config, reliable=reliable,
                           reliability_config=reliability_config)


@pytest.fixture
def comm():
    return make_comm()


def test_eager_send_recv(comm):
    r0, r1 = comm.ranks
    send = r0.isend(1, b"hello-mpi", tag=5)
    recv = r1.irecv(source=0, tag=5)
    comm.wait(send, recv)
    assert recv.data == b"hello-mpi"
    assert recv.matched_source == 0
    assert recv.matched_tag == 5
    assert send.test() and recv.test()
    comm.check_async_errors()


def test_eager_is_cpu_free_after_staging(comm):
    """The defining property: no WRs through the BAR, no doorbells."""
    r0, r1 = comm.ranks
    before = comm.snapshot()
    reqs = [r0.isend(1, b"x" * 64, tag=1), r1.irecv(source=0, tag=1)]
    comm.wait(*reqs)
    delta = comm.diff(before)
    assert delta["host_wr_posts"] == 0
    assert delta["batch_doorbells"] == 0
    assert delta["trigger_doorbells"] == 0
    assert delta["chains_fired"] == 1


def test_recv_posted_first(comm):
    r0, r1 = comm.ranks
    recv = r1.irecv(source=0, tag=9)
    assert not recv.test()
    send = r0.isend(1, b"late", tag=9)
    comm.wait(send, recv)
    assert recv.data == b"late"


def test_unexpected_queue_fifo(comm):
    """Two same-tag messages arrive before any recv: matched oldest-first."""
    r0, r1 = comm.ranks
    s1 = r0.isend(1, b"first", tag=3)
    s2 = r0.isend(1, b"second", tag=3)
    comm.wait(s1, s2)
    comm.sim.run(until=comm.sim.now + 0.001)   # let both land
    ra = r1.irecv(source=0, tag=3)
    rb = r1.irecv(source=0, tag=3)
    comm.wait(ra, rb)
    assert ra.data == b"first"
    assert rb.data == b"second"
    assert comm.snapshot()["unexpected_arrivals"] >= 2


def test_wildcard_source_and_tag():
    comm = make_comm(num_nodes=3)
    r0, r1, r2 = comm.ranks
    s = r2.isend(0, b"from-two", tag=7)
    recv = r0.irecv(source=ANY_SOURCE, tag=ANY_TAG)
    comm.wait(s, recv)
    assert recv.data == b"from-two"
    assert recv.matched_source == 2
    assert recv.matched_tag == 7


def test_tag_selectivity(comm):
    """A recv for tag 2 must not swallow the earlier tag-1 arrival."""
    r0, r1 = comm.ranks
    s1 = r0.isend(1, b"tag-one", tag=1)
    s2 = r0.isend(1, b"tag-two", tag=2)
    comm.wait(s1, s2)
    comm.sim.run(until=comm.sim.now + 0.001)
    recv2 = r1.irecv(source=0, tag=2)
    comm.wait(recv2)
    assert recv2.data == b"tag-two"
    recv1 = r1.irecv(source=0, tag=1)
    comm.wait(recv1)
    assert recv1.data == b"tag-one"


def test_rendezvous_roundtrip(comm):
    """Payloads above the eager threshold take RTS/CTS/data/FIN."""
    payload = bytes(i & 0xFF for i in range(4096))
    r0, r1 = comm.ranks
    before = comm.snapshot()
    send = r0.isend(1, payload, tag=4)
    recv = r1.irecv(source=0, tag=4)
    comm.wait(send, recv)
    assert recv.data == payload
    delta = comm.diff(before)
    assert delta["rndv_sent"] == 1
    assert delta["eager_sent"] == 0
    assert delta["host_wr_posts"] == 0          # still CPU-free
    assert comm.snapshot()["rendezvous_open"] == 0
    comm.check_async_errors()


def test_rendezvous_unexpected_rts(comm):
    """RTS arriving before the recv is queued and matched later."""
    payload = b"R" * 1000
    r0, r1 = comm.ranks
    send = r0.isend(1, payload, tag=8)
    comm.sim.run(until=comm.sim.now + 0.001)    # RTS lands unmatched
    recv = r1.irecv(source=0, tag=8)
    comm.wait(send, recv)
    assert recv.data == payload


def test_eager_rendezvous_boundary(comm):
    """<= threshold is eager, threshold+1 is rendezvous."""
    thr = comm.config.eager_threshold
    r0, r1 = comm.ranks
    pairs = [(b"e" * thr, "eager_sent"), (b"r" * (thr + 1), "rndv_sent")]
    for payload, counter in pairs:
        before = comm.snapshot()
        send = r0.isend(1, payload, tag=6)
        recv = r1.irecv(source=0, tag=6)
        comm.wait(send, recv)
        assert recv.data == payload
        assert comm.diff(before)[counter] == 1


def test_bidirectional_traffic(comm):
    r0, r1 = comm.ranks
    reqs = [r0.isend(1, b"a2b", tag=1), r1.isend(0, b"b2a", tag=1),
            r0.irecv(source=1, tag=1), r1.irecv(source=0, tag=1)]
    comm.wait(*reqs)
    assert reqs[2].data == b"b2a"
    assert reqs[3].data == b"a2b"


def test_many_messages_credit_flow(comm):
    """More sends than ring slots: credit thresholds pace the chains."""
    slots = comm.config.slots
    total = 3 * slots
    r0, r1 = comm.ranks
    recvs = [r1.irecv(source=0, tag=0) for _ in range(total)]
    sends = []
    for i in range(total):
        sends.append(r0.isend(1, b"m%03d" % i, tag=0))
        # Stay within the staging window: wait for fired chains to clear.
        if (i + 1) % slots == 0:
            comm.wait(*sends)
    comm.wait(*sends, *recvs)
    for i, recv in enumerate(recvs):
        assert recv.data == b"m%03d" % i
    comm.check_async_errors()


def test_send_window_exhaustion_raises(comm):
    r0, r1 = comm.ranks
    with pytest.raises(MpiError, match="exhausted"):
        for _ in range(comm.config.slots + 1):
            r0.isend(1, b"burst", tag=0)


def test_self_send_rejected(comm):
    with pytest.raises(MpiError):
        comm.ranks[0].isend(0, b"loop")
    with pytest.raises(MpiError):
        comm.ranks[0].irecv(source=0)


def test_oversized_eager_config_rejected():
    with pytest.raises(MpiError):
        MpiConfig(eager_threshold=256, slot_size=256)


def test_ring_connectivity_rejects_non_neighbors():
    comm = make_comm(num_nodes=4, config=MpiConfig(connectivity="ring"))
    with pytest.raises(MpiError, match="no channel"):
        comm.ranks[0].isend(2, b"far")


def test_stats_snapshot_diff(comm):
    before = comm.snapshot()
    r0, r1 = comm.ranks
    comm.wait(r0.isend(1, b"s", tag=0), r1.irecv(source=0, tag=0))
    delta = comm.diff(before)
    assert delta["eager_sent"] == 1
    assert delta["matches"] == 1
    assert delta["pending_sends"] == 0          # gauge, back to zero
    assert delta["posted_depth"] == 0
    assert delta["descriptors_fired"] == 1
    assert delta["armed_chains"] == 0           # gauge, nothing left armed
