"""The telemetry plane watching the triggered + MPI layers."""

from __future__ import annotations

from repro.cluster import build_extoll_cluster
from repro.mpi import MpiCommunicator
from repro.sim import Simulator
from repro.telemetry import TelemetryPlane
from repro.telemetry.recorder import DEFAULT_CATEGORIES


def test_recorder_keeps_trig_and_mpi_categories():
    assert "trig" in DEFAULT_CATEGORIES
    assert "mpi" in DEFAULT_CATEGORIES


def test_plane_watches_mpi_and_triggered_series():
    sim = Simulator()
    plane = TelemetryPlane(sim, interval=2e-6)
    cluster = build_extoll_cluster(sim=sim, num_nodes=2)
    comm = MpiCommunicator(cluster)
    plane.watch_mpi(comm)
    for unit in comm.units:
        plane.watch_triggered(unit)
    plane.start()

    r0, r1 = comm.ranks
    reqs = []
    for i in range(6):
        reqs.append(r0.isend(1, b"t%d" % i, tag=0))
        reqs.append(r1.irecv(source=0, tag=0))
    comm.wait(*reqs)
    sim.run(until=sim.now + 10e-6)      # a few sample windows
    plane.stop()

    series = plane.report()["series"]
    assert "mpi.eager_sent" in series
    assert "mpi.rank1.match.matches" in series
    trig_series = [s for s in series if s.startswith("trig.")]
    assert any(s.endswith(".chains_fired") for s in trig_series)
    points = plane.sampler.bank.get("mpi.eager_sent").points()
    assert sum(value for _t, value in points) == 6
    # Spans from the mpi/trig categories are recordable by default.
    assert plane.recorder.wants("mpi")
    assert plane.recorder.wants("trig")
