"""The MPI benchmarks and the ``python -m repro mpi`` / ``triggered`` CLIs."""

from __future__ import annotations

import json

import pytest

from repro.engine import batched_mmio_floor
from repro.errors import ConfigError, MpiError
from repro.mpi.bench import (
    run_mode_allreduce_mmio,
    run_mpi_allreduce,
    run_mpi_pingpong,
)
from repro.mpi.cli import main as mpi_main
from repro.obs.tracer import SpanTracer
from repro.triggered.cli import main as triggered_main
from repro.collectives.comm import CollectiveMode


def test_pingpong_crossover_and_zero_mmio():
    eager = run_mpi_pingpong(128, iterations=3, warmup=1)
    rndv = run_mpi_pingpong(129, iterations=3, warmup=1)
    assert eager.protocol == "eager" and eager.rndv_sent == 0
    assert rndv.protocol == "rendezvous" and rndv.eager_sent == 0
    assert rndv.point.latency > eager.point.latency
    assert eager.bar_mmio == rndv.bar_mmio == 0


def test_allreduce_reconciles_with_tracer():
    tracer = SpanTracer()
    r = run_mpi_allreduce(4, 128, iterations=3, warmup=1, tracer=tracer)
    assert r.correct
    assert r.bar_mmio == 0
    assert r.reconcile["ok"], r.reconcile
    assert "spans" in r.reconcile        # tracer attached -> 3-way check
    assert r.chains_fired == 4 * 2 * 3 * (3 + 1)


def test_host_assist_modes_pay_mmio():
    m = run_mode_allreduce_mmio(CollectiveMode.HOST_CONTROLLED, 2, 64,
                                iterations=2, warmup=1)
    assert m["correct"]
    assert m["bar_mmio"] > 0
    assert m["wrs_posted"] > 0


def test_bench_validation():
    with pytest.raises(MpiError):
        run_mpi_pingpong(0)
    with pytest.raises(MpiError):
        run_mpi_allreduce(1, 64)
    with pytest.raises(MpiError):
        run_mpi_allreduce(2, 63)


def test_batched_mmio_floor():
    assert batched_mmio_floor(0, 8) == 0
    assert batched_mmio_floor(1, 8) == 1
    assert batched_mmio_floor(8, 8) == 1
    assert batched_mmio_floor(9, 8) == 2
    with pytest.raises(ConfigError):
        batched_mmio_floor(4, 0)
    with pytest.raises(ConfigError):
        batched_mmio_floor(-1, 8)


def test_mpi_cli_quick_json(capsys):
    assert mpi_main(["--quick", "--json"]) == 0
    out = json.loads(capsys.readouterr().out)
    assert out["ok"] is True
    assert out["iallreduce"]["bar_mmio"] == 0
    assert all(out["verdicts"].values())
    protocols = [p["protocol"] for p in out["pingpong"]]
    assert "eager" in protocols and "rendezvous" in protocols


def test_mpi_cli_text(capsys):
    assert mpi_main(["--quick"]) == 0
    out = capsys.readouterr().out
    assert "triggered chains" in out
    assert "[PASS]" in out and "[FAIL]" not in out


def test_triggered_cli_quick_json(capsys):
    assert triggered_main(["--quick", "--json"]) == 0
    out = json.loads(capsys.readouterr().out)
    assert out["ok"] is True
    assert out["triggered"]["host_wr_posts"] == 0
    assert out["host_assist"]["wr_posts"] > 0


def test_mpi_cli_trace_out(tmp_path, capsys):
    path = tmp_path / "mpi.json"
    assert mpi_main(["--quick", "--out", str(path)]) == 0
    capsys.readouterr()
    trace = json.loads(path.read_text())
    assert trace["traceEvents"]
