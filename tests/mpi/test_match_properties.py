"""Property tests for the (source, tag) matching engine plus the
determinism and no-loss/no-dup guarantees of the full layer.

The pure-engine properties drive :class:`MatchEngine` directly (it is
sim-free by design); the end-to-end properties run real clusters — reliable
channels under a loss grid, and bit-identical replay across same-seed runs.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

import pytest

from repro.cluster import build_extoll_cluster
from repro.faults import FaultInjector, FaultPlan
from repro.mpi import (
    ANY_SOURCE,
    ANY_TAG,
    Envelope,
    Inbound,
    MatchEngine,
    MpiCommunicator,
    MpiRequest,
    MsgKind,
)
from repro.sim import Simulator

SOURCES = st.integers(min_value=0, max_value=2)
TAGS = st.integers(min_value=0, max_value=2)


def arrival(src: int, tag: int, stamp: int) -> Inbound:
    return Inbound(Envelope(kind=MsgKind.EAGER, src_rank=src, comm_id=0,
                            tag=tag, size=8),
                   payload=stamp.to_bytes(8, "little"))


def recv(source: int, tag: int) -> MpiRequest:
    """A bare request: the engine only reads .source/.tag."""
    return MpiRequest(Simulator(), "recv", 9, source=source, tag=tag)


#: An interleaving: ("msg", source, tag) arrivals and ("recv", source, tag)
#: posts, where source/tag may be the -1 wildcards on recvs.
ops = st.lists(
    st.one_of(
        st.tuples(st.just("msg"), SOURCES, TAGS),
        st.tuples(st.just("recv"),
                  st.one_of(SOURCES, st.just(ANY_SOURCE)),
                  st.one_of(TAGS, st.just(ANY_TAG)))),
    max_size=40)


def drive(sequence):
    """Run one interleaving; returns (engine, deliveries) where deliveries
    are (request, message) pairs in match order."""
    engine = MatchEngine(rank=9)
    deliveries = []
    for i, (op, source, tag) in enumerate(sequence):
        if op == "msg":
            req = engine.incoming(arrival(source, tag, stamp=i))
            if req is not None:
                deliveries.append((req, arrival(source, tag, stamp=i)))
        else:
            req = recv(source, tag)
            msg = engine.post(req)
            if msg is not None:
                deliveries.append((req, msg))
    return engine, deliveries


@settings(max_examples=120, deadline=None)
@given(ops)
def test_fifo_per_source_tag(sequence):
    """Messages from one (source, tag) stream are delivered in send order —
    MPI's non-overtaking rule — no matter how recvs interleave."""
    _engine, deliveries = drive(sequence)
    last_stamp = {}
    for _req, msg in deliveries:
        key = (msg.src_rank, msg.tag)
        stamp = int.from_bytes(msg.payload, "little")
        assert stamp > last_stamp.get(key, -1)
        last_stamp[key] = stamp


@settings(max_examples=120, deadline=None)
@given(ops)
def test_no_lost_no_duplicated_messages(sequence):
    """Every arrival is delivered at most once, every request matched at
    most once, and nothing vanishes: delivered + queued == arrived."""
    engine, deliveries = drive(sequence)
    stamps = [int.from_bytes(m.payload, "little") for _r, m in deliveries]
    assert len(stamps) == len(set(stamps))              # no duplicates
    reqs = [r for r, _m in deliveries]
    assert len(reqs) == len(set(id(r) for r in reqs))   # one match per recv
    arrived = sum(1 for op, *_ in sequence if op == "msg")
    assert len(deliveries) + len(engine.unexpected) == arrived
    # Drain with wildcards: everything left must come out, oldest first.
    leftovers = []
    for _ in range(len(engine.unexpected)):
        msg = engine.post(recv(ANY_SOURCE, ANY_TAG))
        assert msg is not None
        leftovers.append(int.from_bytes(msg.payload, "little"))
    assert leftovers == sorted(leftovers)
    assert not engine.unexpected
    assert len(deliveries) + len(leftovers) == arrived


@settings(max_examples=120, deadline=None)
@given(ops)
def test_match_order_is_a_pure_function_of_the_interleaving(sequence):
    """Replaying the same interleaving reproduces the same matches — the
    engine holds no hidden state, so determinism reduces to the transport
    delivering arrivals in the same order (fixed seed does exactly that)."""
    _e1, d1 = drive(sequence)
    _e2, d2 = drive(sequence)
    flat1 = [(m.src_rank, m.tag, m.payload) for _r, m in d1]
    flat2 = [(m.src_rank, m.tag, m.payload) for _r, m in d2]
    assert flat1 == flat2


@settings(max_examples=60, deadline=None)
@given(ops)
def test_wildcard_recv_takes_the_oldest_acceptable(sequence):
    """After any interleaving, a fresh wildcard recv matches the FRONT of
    the unexpected queue."""
    engine, _deliveries = drive(sequence)
    if not engine.unexpected:
        return
    oldest = engine.unexpected[0]
    msg = engine.post(recv(ANY_SOURCE, ANY_TAG))
    assert msg is oldest


# -- end-to-end: determinism and reliability ---------------------------------------

def _traffic_run(seed: int, loss: float = 0.0, reliable: bool = False):
    """A fixed mixed-tag traffic pattern; returns the per-rank list of
    (matched_source, matched_tag, payload) in completion order plus the
    comm for stats assertions."""
    sim = Simulator(seed=seed)
    cluster = build_extoll_cluster(sim=sim, num_nodes=2)
    comm = MpiCommunicator(cluster, reliable=reliable)
    if loss:
        FaultInjector(sim, FaultPlan.uniform(loss=loss, seed=5)).attach(
            cluster.net)
    r0, r1 = comm.ranks
    sends, recvs = [], []
    for i in range(12):
        sends.append(r0.isend(1, b"f%02d" % i, tag=i % 3))
        sends.append(r1.isend(0, b"g%02d" % i, tag=i % 3))
    for i in range(12):
        recvs.append(r1.irecv(source=ANY_SOURCE, tag=i % 3))
        recvs.append(r0.irecv(source=ANY_SOURCE, tag=ANY_TAG))
    comm.wait(*sends, *recvs, limit=1.0)
    comm.check_async_errors()
    log = [(q.matched_source, q.matched_tag, q.data) for q in recvs]
    return log, comm


def test_same_seed_same_match_order():
    first, _ = _traffic_run(seed=42)
    second, _ = _traffic_run(seed=42)
    assert first == second


@pytest.mark.parametrize("loss", [0.05, 0.15])
def test_reliable_channels_lose_and_duplicate_nothing(loss):
    """The faults grid: lossy links + retransmission below the MPI layer
    must still deliver every message exactly once, in per-stream order."""
    log, comm = _traffic_run(seed=7, loss=loss, reliable=True)
    payloads = [data for _s, _t, data in log]
    assert len(payloads) == len(set(payloads)) == 24    # no loss, no dups
    for prefix in (b"f", b"g"):
        per_tag = {}
        for _s, tag, data in log:
            if data.startswith(prefix):
                per_tag.setdefault(tag, []).append(data)
        for stream in per_tag.values():
            assert stream == sorted(stream)             # non-overtaking
    retransmits = sum(
        end.reliability.retransmits
        for chan in comm._channels.values()
        for end in (chan.a_to_b, chan.b_to_a))
    assert retransmits > 0                              # faults really bit
