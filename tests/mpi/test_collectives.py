"""Nonblocking collectives as chain DAGs — including the acceptance bar:
an 8-rank triggered iallreduce with ZERO host WR posts, bit-exact against
PR 2's ``ring_all_reduce`` on the same seed.
"""

from __future__ import annotations

import pytest

from repro.cluster import build_extoll_cluster
from repro.collectives import CollectiveMode, build_communicator
from repro.collectives.algorithms import _unpack, ring_all_reduce
from repro.collectives.bench import vector
from repro.mpi import MpiCommunicator, MpiConfig, iallreduce, ibarrier, ibcast
from repro.sim import Simulator


def make_comm(num_nodes, seed=11, **cfg):
    sim = Simulator(seed=seed)
    cluster = build_extoll_cluster(
        sim=sim, num_nodes=num_nodes,
        topology="pair" if num_nodes == 2 else "ring")
    config = MpiConfig(connectivity="ring", **cfg) if num_nodes > 2 \
        else MpiConfig(**cfg)
    return MpiCommunicator(cluster, config=config)


@pytest.mark.parametrize("nodes", [2, 4])
def test_ibarrier_completes_everywhere(nodes):
    comm = make_comm(nodes)
    reqs = [ibarrier(comm, rank) for rank in comm.ranks]
    comm.wait(*reqs)
    assert all(r.test() for r in reqs)
    comm.check_async_errors()


def test_ibarrier_release_after_last_entry():
    """Nobody leaves the barrier before the last rank has entered: rank 0
    only starts the ring token once IT calls ibarrier, so delaying rank 0
    delays every completion past the entry."""
    comm = make_comm(4)
    late = {}
    reqs = [ibarrier(comm, rank) for rank in comm.ranks[1:]]
    comm.sim.run(until=comm.sim.now + 0.0005)
    assert not any(r.test() for r in reqs)      # stuck: rank 0 absent
    reqs.append(ibarrier(comm, comm.ranks[0]))
    comm.wait(*reqs)
    assert all(r.test() for r in reqs)


@pytest.mark.parametrize("root", [0, 2])
def test_ibcast_relays_payload(root):
    comm = make_comm(4)
    payload = bytes((i * 7 + 1) & 0xFF for i in range(1000))  # rendezvous
    reqs = [ibcast(comm, rank, payload if rank.rank == root else None,
                   root=root)
            for rank in comm.ranks]
    comm.wait(*reqs)
    assert all(r.data == payload for r in reqs)
    comm.check_async_errors()


@pytest.mark.parametrize("nodes,size", [(2, 64), (4, 128), (4, 512)])
def test_iallreduce_sums_exactly(nodes, size):
    comm = make_comm(nodes, eager_threshold=256, slot_size=512)
    vectors = [vector(r, nodes, size) for r in range(nodes)]
    expected = [sum(col) for col in zip(*vectors)]
    reqs = [iallreduce(comm, rank, vectors[rank.rank])
            for rank in comm.ranks]
    comm.wait(*reqs)
    for req in reqs:
        got = _unpack(req.data)
        assert got == pytest.approx(expected)
    comm.check_async_errors()


def test_collectives_back_to_back_tags_do_not_collide():
    comm = make_comm(4)
    b1 = [ibarrier(comm, rank) for rank in comm.ranks]
    b2 = [ibarrier(comm, rank) for rank in comm.ranks]
    comm.wait(*b1, *b2)
    assert all(r.test() for r in b1 + b2)
    comm.check_async_errors()


# -- the acceptance test ----------------------------------------------------------

def _pr2_ring_all_reduce_finals(nodes, size, seed):
    """Run PR 2's collectives stack (device mode) and return the final
    vector every rank holds."""
    sim = Simulator(seed=seed)
    cluster, comm = build_communicator(nodes, size,
                                       mode=CollectiveMode.POLL_ON_GPU,
                                       sim=sim)
    finals = {}

    def body(ctx, rc):
        out, _steps = yield from ring_all_reduce(
            ctx, rc, vector(rc.rank, rc.size, size))
        finals[rc.rank] = out

    handles = comm.launch(body)
    cluster.sim.run_until_complete(*handles, limit=1.0)
    return finals


def test_iallreduce_n8_cpu_free_and_bit_exact_vs_pr2():
    nodes, size, seed = 8, 256, 23
    baseline = _pr2_ring_all_reduce_finals(nodes, size, seed)

    comm = make_comm(nodes, seed=seed, eager_threshold=256, slot_size=512)
    before = comm.snapshot()
    reqs = [iallreduce(comm, rank, vector(rank.rank, nodes, size))
            for rank in comm.ranks]
    comm.wait(*reqs)
    comm.check_async_errors()
    delta = comm.diff(before)

    # Zero host-proxy control: nothing crossed any BAR after arming.
    assert delta["host_wr_posts"] == 0
    assert delta["batch_doorbells"] == 0
    assert delta["trigger_doorbells"] == 0
    # 2*(N-1) steps per rank, one chain per step.
    assert delta["chains_fired"] == nodes * 2 * (nodes - 1)

    # Bit-exact against the PR 2 datapath: same schedule, same association
    # order, so float64 results agree to the last bit.
    for rank in comm.ranks:
        got = _unpack(reqs[rank.rank].data)
        assert got == baseline[rank.rank]       # exact ==, not approx
