"""Unit tests for the DMA engine."""

import pytest

from repro.errors import PcieError
from repro.memory import (
    GPU_DRAM_BASE,
    HOST_DRAM_BASE,
    AddressMap,
    Memory,
    MemorySpace,
)
from repro.pcie import DmaConfig, DmaEngine, PcieFabric
from repro.sim import Simulator, join_result
from repro.units import KIB, MIB


def build():
    sim = Simulator()
    amap = AddressMap()
    host = Memory("host", HOST_DRAM_BASE, 4 * MIB, MemorySpace.HOST_DRAM)
    gpu = Memory("gpu", GPU_DRAM_BASE, 4 * MIB, MemorySpace.GPU_DRAM)
    amap.add(host)
    amap.add(gpu)
    fabric = PcieFabric(sim, amap)
    gpu_port = fabric.attach("gpu")
    nic_port = fabric.attach("nic")
    fabric.claim(fabric.root, host)
    fabric.claim(gpu_port, gpu)
    dma = DmaEngine(sim, nic_port, "nic-dma")
    return sim, host, gpu, dma


def run(sim, gen):
    proc = sim.process(gen)
    sim.run()
    return join_result(proc)


def test_dma_read_gathers_bytes():
    sim, host, gpu, dma = build()
    gpu.write(GPU_DRAM_BASE + 100, b"x" * 10)

    def body():
        data = yield from dma.read(GPU_DRAM_BASE + 100, 10)
        return data

    assert run(sim, body()) == b"x" * 10


def test_dma_write_scatters_bytes():
    sim, host, gpu, dma = build()

    def body():
        yield from dma.write(HOST_DRAM_BASE + 64, b"y" * 100)

    run(sim, body())
    assert host.read(HOST_DRAM_BASE + 64, 100) == b"y" * 100


def test_dma_large_transfer_chunked_roundtrip():
    sim, host, gpu, dma = build()
    payload = bytes(range(256)) * (64 * KIB // 256)
    gpu.write(GPU_DRAM_BASE, payload)

    def body():
        data = yield from dma.read(GPU_DRAM_BASE, len(payload))
        yield from dma.write(HOST_DRAM_BASE, data)

    run(sim, body())
    assert host.read(HOST_DRAM_BASE, len(payload)) == payload


def test_dma_engine_serializes_transfers():
    sim, host, gpu, dma = build()
    finish = []

    def xfer(tag):
        yield from dma.write(HOST_DRAM_BASE, b"\x00" * (1 * MIB))
        finish.append((tag, sim.now))

    sim.process(xfer("a"))
    sim.process(xfer("b"))
    sim.run()
    assert finish[0][0] == "a"
    assert finish[1][1] >= finish[0][1] * 1.9  # b waited for a


def test_dma_counts_stats():
    sim, host, gpu, dma = build()

    def body():
        yield from dma.write(HOST_DRAM_BASE, b"\x00" * 128)
        yield from dma.read(HOST_DRAM_BASE, 128)

    run(sim, body())
    assert dma.transfers == 2
    assert dma.bytes_moved == 256


def test_dma_setup_time_charged():
    # Compare two engines, one with setup time.
    sim1, host1, gpu1, dma1 = build()
    def b1():
        start = sim1.now
        yield from dma1.write(HOST_DRAM_BASE, b"\x00" * 8)
        return sim1.now - start
    t_no_setup = run(sim1, b1())

    sim2, host2, gpu2, dma2 = build()
    dma2.config = DmaConfig(setup_time=1e-6)
    def b2():
        start = sim2.now
        yield from dma2.write(HOST_DRAM_BASE, b"\x00" * 8)
        return sim2.now - start
    t_setup = run(sim2, b2())
    assert t_setup == pytest.approx(t_no_setup + 1e-6, rel=1e-6)


def test_dma_zero_length_rejected():
    sim, host, gpu, dma = build()

    def body():
        yield from dma.read(HOST_DRAM_BASE, 0)

    proc = sim.process(body())
    sim.run()
    with pytest.raises(PcieError):
        join_result(proc)


def test_dma_bad_config_rejected():
    with pytest.raises(PcieError):
        DmaConfig(chunk_bytes=0)
    with pytest.raises(PcieError):
        DmaConfig(setup_time=-1.0)
