"""Unit tests for the PCIe fabric: routing, timing, P2P pathology."""

import pytest

from repro.errors import PcieError
from repro.memory import (
    GPU_DRAM_BASE,
    HOST_DRAM_BASE,
    MMIO_BASE,
    AddressMap,
    Memory,
    MemorySpace,
    MmioWindow,
)
from repro.pcie import FabricConfig, PcieFabric, PcieLinkConfig
from repro.sim import Simulator, join_result
from repro.units import GB_PER_S, KIB, MIB, NS, US


def build_node(p2p_enabled=True):
    """A minimal node: host DRAM behind root, GPU DRAM + NIC BAR behind ports."""
    sim = Simulator()
    amap = AddressMap()
    host = Memory("host", HOST_DRAM_BASE, 4 * MIB, MemorySpace.HOST_DRAM)
    gpu = Memory("gpu", GPU_DRAM_BASE, 8 * MIB, MemorySpace.GPU_DRAM)
    bar = MmioWindow("nic-bar", MMIO_BASE, 64 * KIB)
    for t in (host, gpu, bar):
        amap.add(t)
    fabric = PcieFabric(sim, amap, FabricConfig(p2p_pathology_enabled=p2p_enabled))
    gpu_port = fabric.attach("gpu")
    nic_port = fabric.attach("nic")
    fabric.claim(fabric.root, host)
    fabric.claim(gpu_port, gpu)
    fabric.claim(nic_port, bar)
    return sim, fabric, host, gpu, bar, gpu_port, nic_port


def run(sim, gen):
    proc = sim.process(gen)
    sim.run()
    return join_result(proc)


def test_write_moves_data_functionally():
    sim, fabric, host, gpu, bar, gpu_port, nic_port = build_node()

    def body():
        yield from gpu_port.write(HOST_DRAM_BASE + 0x100, b"from-gpu")

    run(sim, body())
    assert host.read(HOST_DRAM_BASE + 0x100, 8) == b"from-gpu"


def test_read_returns_target_data():
    sim, fabric, host, gpu, bar, gpu_port, nic_port = build_node()
    gpu.write(GPU_DRAM_BASE + 0x40, b"gpudata!")

    def body():
        data = yield from nic_port.read(GPU_DRAM_BASE + 0x40, 8)
        return data

    assert run(sim, body()) == b"gpudata!"


def test_mmio_write_triggers_handler_at_delivery_time():
    sim, fabric, host, gpu, bar, gpu_port, nic_port = build_node()
    hits = []
    bar.on_write(0x0, 0x40, lambda off, data: hits.append((sim.now, off, data)))

    def body():
        yield from gpu_port.write(MMIO_BASE + 0x10, b"\x01\x02\x03\x04")

    run(sim, body())
    assert len(hits) == 1
    t, off, data = hits[0]
    assert off == 0x10 and data == b"\x01\x02\x03\x04"
    assert t > 0.0  # delivery takes simulated time


def test_device_to_host_crosses_one_link():
    """Host access latency ~ link latency + host memory latency."""
    sim, fabric, *_rest, gpu_port, nic_port = build_node()

    def body():
        start = sim.now
        yield from gpu_port.write(HOST_DRAM_BASE, b"\x00" * 8)
        return sim.now - start

    dt = run(sim, body())
    cfg = PcieLinkConfig()
    fcfg = FabricConfig()
    assert dt == pytest.approx(cfg.latency + fcfg.host_memory_latency, rel=0.5)


def test_peer_to_peer_crosses_two_links():
    """NIC -> GPU memory is strictly slower than NIC -> host memory."""
    # Build two fresh nodes to time each path independently.
    sim1, *_r1, gp1, np1 = build_node()
    def w_host():
        start = sim1.now
        yield from np1.write(HOST_DRAM_BASE, b"\x00" * 64)
        return sim1.now - start
    t_host = run(sim1, w_host())

    sim2, *_r2, gp2, np2 = build_node()
    def w_gpu():
        start = sim2.now
        yield from np2.write(GPU_DRAM_BASE, b"\x00" * 64)
        return sim2.now - start
    t_gpu = run(sim2, w_gpu())
    assert t_gpu > t_host


def test_reads_cost_more_than_writes():
    """Round trip vs posted: the reason notification polling hurts (§V-A3)."""
    sim1, *_r1, gp1, np1 = build_node()
    def w():
        start = sim1.now
        yield from gp1.write(HOST_DRAM_BASE, b"\x00" * 16)
        return sim1.now - start
    t_write = run(sim1, w())

    sim2, *_r2, gp2, np2 = build_node()
    def r():
        start = sim2.now
        yield from gp2.read(HOST_DRAM_BASE, 16)
        return sim2.now - start
    t_read = run(sim2, r())
    assert t_read > t_write


def test_p2p_pathology_degrades_large_reads():
    def time_read(stream_total, enabled):
        sim, fabric, host, gpu, bar, gpu_port, nic_port = build_node(p2p_enabled=enabled)

        def body():
            start = sim.now
            yield from nic_port.read(GPU_DRAM_BASE, 256 * KIB,
                                     stream_total=stream_total)
            return sim.now - start

        return run(sim, body())

    small_stream = time_read(stream_total=256 * KIB, enabled=True)
    large_stream = time_read(stream_total=4 * MIB, enabled=True)
    large_no_path = time_read(stream_total=4 * MIB, enabled=False)
    assert large_stream > small_stream * 1.3
    assert large_no_path == pytest.approx(small_stream, rel=1e-6)


def test_host_initiated_reads_unaffected_by_pathology():
    sim, fabric, host, gpu, bar, gpu_port, nic_port = build_node(p2p_enabled=True)

    def body():
        start = sim.now
        yield from fabric.root.read(GPU_DRAM_BASE, 64 * KIB, stream_total=16 * MIB)
        return sim.now - start

    t_large = run(sim, body())

    sim2, fabric2, *_rest, gp2, np2 = build_node(p2p_enabled=True)
    def body2():
        start = sim2.now
        yield from fabric2.root.read(GPU_DRAM_BASE, 64 * KIB, stream_total=1 * KIB)
        return sim2.now - start

    t_small = run(sim2, body2())
    assert t_large == pytest.approx(t_small, rel=1e-6)


def test_bandwidth_serialization_scales_with_size():
    sim, fabric, *_rest, gpu_port, nic_port = build_node()

    def timed_write(n):
        def body():
            start = sim.now
            yield from gpu_port.write(HOST_DRAM_BASE, b"\x00" * n)
            return sim.now - start
        return run(sim, body())

    t1 = timed_write(1 * KIB)
    sim2, fabric2, *_rest2, gp2, np2 = build_node()
    def body2():
        start = sim2.now
        yield from gp2.write(HOST_DRAM_BASE, b"\x00" * (1 * MIB))
        return sim2.now - start
    t2 = run(sim2, body2())
    # 1 MiB should take roughly 1024x the serialization of 1 KiB, far more
    # than fixed latencies.
    assert t2 > t1 * 100


def test_concurrent_writers_contend_on_link():
    sim, fabric, *_rest, gpu_port, nic_port = build_node()
    done = []

    def writer(tag):
        yield from gpu_port.write(HOST_DRAM_BASE + 0x1000, b"\x00" * (1 * MIB))
        done.append((tag, sim.now))

    sim.process(writer("a"))
    sim.process(writer("b"))
    sim.run()
    # Second writer finishes roughly twice as late as a lone writer would.
    assert done[1][1] > done[0][1] * 1.5


def test_zero_length_accesses_rejected():
    sim, fabric, *_rest, gpu_port, nic_port = build_node()

    def bad_write():
        yield from gpu_port.write(HOST_DRAM_BASE, b"")

    proc = sim.process(bad_write())
    sim.run()
    with pytest.raises(PcieError):
        join_result(proc)


def test_unclaimed_target_rejected():
    sim = Simulator()
    amap = AddressMap()
    mem = Memory("host", 0, 1024, MemorySpace.HOST_DRAM)
    amap.add(mem)
    fabric = PcieFabric(sim, amap)
    port = fabric.attach("dev")

    def body():
        yield from port.read(0, 8)

    proc = sim.process(body())
    sim.run()
    with pytest.raises(PcieError):
        join_result(proc)


def test_duplicate_port_name_rejected():
    sim, fabric, *_rest = build_node()
    with pytest.raises(PcieError):
        fabric.attach("gpu")
