"""Cost-attribution profiler: exact reconciliation and paper-shaped output.

The acceptance bar: attributed phases must reconcile with the end-to-end
``LatencyPoint`` within 1% for every control-flow mode, and the breakdown
must tell the paper's story — system-memory polling pays per-poll PCIe
round trips (Table I), host WR generation is negligible (§V-B1).
"""

import json

import pytest

from repro.perf import PHASE_ORDER, profile_pingpong, render_profile

EXTOLL_MODES = ("dev2dev-direct", "dev2dev-pollOnGPU", "dev2dev-assisted",
                "dev2dev-hostControlled")
IB_MODES = ("dev2dev-bufOnGPU", "dev2dev-bufOnHost", "dev2dev-assisted",
            "dev2dev-hostControlled")
ITER, WARMUP = 6, 1


@pytest.fixture(scope="module")
def profiles():
    out = {}
    for mode in EXTOLL_MODES:
        out[("extoll", mode)] = profile_pingpong("extoll", mode, 64,
                                                 iterations=ITER,
                                                 warmup=WARMUP)
    for mode in IB_MODES:
        out[("ib", mode)] = profile_pingpong("ib", mode, 64,
                                             iterations=ITER, warmup=WARMUP)
    return out


def test_reconciles_within_one_percent_every_mode(profiles):
    for (fabric, mode), p in profiles.items():
        assert p.reconciles, (fabric, mode, p.reconciliation_error)
        # In practice the phase spans tile the region exactly.
        assert p.reconciliation_error < 1e-9, (fabric, mode)


def test_phases_are_a_partition(profiles):
    for p in profiles.values():
        assert all(c.seconds >= 0.0 for c in p.phases)
        assert sum(c.share for c in p.phases) == pytest.approx(1.0, abs=1e-9)
        names = [c.name for c in p.phases]
        assert names == [n for n in PHASE_ORDER if n in names]  # canonical order
        assert len(names) == len(set(names))


def test_sysmem_polling_pays_pcie_per_poll(profiles):
    """Table I: direct mode polls notifications in system memory — each
    poll is a PCIe round trip — while pollOnGPU polls device memory and
    its polling-window PCIe share collapses."""
    direct = profiles[("extoll", "dev2dev-direct")]
    devmem = profiles[("extoll", "dev2dev-pollOnGPU")]
    assert direct.per_iteration_us("completion-mmio") > \
        3.0 * devmem.per_iteration_us("completion-mmio")


def test_host_wr_generation_negligible(profiles):
    """§V-B1: host-controlled WR generation costs far less than the GPU
    assembling the same descriptor."""
    gpu = profiles[("extoll", "dev2dev-direct")]
    host = profiles[("extoll", "dev2dev-hostControlled")]
    assert host.per_iteration_us("wqe-generation") < \
        0.5 * gpu.per_iteration_us("wqe-generation")


def test_assisted_mode_reports_host_assist(profiles):
    for fabric in ("extoll", "ib"):
        p = profiles[(fabric, "dev2dev-assisted")]
        assert p.phase("host-assist").seconds > 0.0
        assert p.phase("wqe-generation").seconds == 0.0
    assert profiles[("extoll", "dev2dev-direct")].phase("host-assist") \
        .seconds == 0.0


def test_to_dict_is_json_safe_and_complete(profiles):
    p = profiles[("extoll", "dev2dev-direct")]
    doc = json.loads(json.dumps(p.to_dict()))
    assert doc["reconciles"] is True
    assert doc["point"]["latency_us"] == pytest.approx(p.point.latency_us)
    assert sum(row["us"] for row in doc["phases"]) == \
        pytest.approx(doc["attributed_us"])
    assert any(k.startswith("net.") for k in doc["counters"])


def test_render_is_readable(profiles):
    text = render_profile(profiles[("extoll", "dev2dev-direct")])
    for needle in ("wqe-generation", "completion-polling", "reconciliation",
                   "OK", "poll/post ratio"):
        assert needle in text
