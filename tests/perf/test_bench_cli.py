"""End-to-end CLI tests: record/check round trips and injected regressions.

The acceptance checks live here: ``bench --check`` must pass cleanly
against a fresh recording and must exit nonzero when (a) a baseline value
is tampered with and (b) the latency model itself is deliberately
perturbed — the scenario the harness exists to catch.
"""

import json

import pytest

from repro.perf import SCENARIOS, check, record
from repro.perf.cli import bench_main, profile_main
from repro.sim import Simulator


def test_bench_list():
    assert bench_main(["--list"]) == 0


def test_unknown_scenario_is_a_usage_error(tmp_path):
    assert bench_main(["--check", "--scenario", "nope",
                       "--dir", str(tmp_path)]) == 2


def test_record_then_check_round_trip(tmp_path, capsys):
    rc = bench_main(["--record", "--scenario", "sim-throughput",
                     "--dir", str(tmp_path)])
    assert rc == 0
    assert (tmp_path / "BENCH_SIM_THROUGHPUT.json").exists()
    rc = bench_main(["--check", "--scenario", "sim-throughput",
                     "--dir", str(tmp_path)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "within tolerance" in out


def test_tampered_baseline_fails_check(tmp_path, capsys):
    bench_main(["--record", "--scenario", "sim-throughput",
                "--dir", str(tmp_path)])
    path = tmp_path / "BENCH_SIM_THROUGHPUT.json"
    doc = json.loads(path.read_text())
    doc["metrics"]["sim_events"]["value"] *= 1.10
    path.write_text(json.dumps(doc))
    rc = bench_main(["--check", "--scenario", "sim-throughput",
                     "--dir", str(tmp_path)])
    out = capsys.readouterr().out
    assert rc == 1
    assert "REGRESSION" in out and "sim_events" in out


def test_missing_baseline_fails_check(tmp_path, capsys):
    rc = bench_main(["--check", "--scenario", "sim-throughput",
                     "--dir", str(tmp_path)])
    assert rc == 1
    assert "no baseline" in capsys.readouterr().out


def test_injected_latency_regression_is_caught(tmp_path, monkeypatch):
    """Perturb the latency model itself — every simulated delay 5% slower —
    and the checked scenario must fail its sim-metric bands while count
    metrics (steps) stay exact."""
    scenario = SCENARIOS["collectives-allreduce"]
    record(scenario, str(tmp_path))

    original = Simulator.timeout

    def inflated(self, delay, value=None, name=""):
        return original(self, delay * 1.05, value, name)

    monkeypatch.setattr(Simulator, "timeout", inflated)
    report = check(scenario, str(tmp_path))
    assert not report.ok
    regressed = {d.name for d in report.regressions}
    assert any(name.endswith("latency_us") for name in regressed)
    assert not any(name.endswith("steps") for name in regressed)


def test_profile_cli_writes_json(tmp_path, capsys):
    out_path = tmp_path / "profile.json"
    rc = profile_main(["--mode", "dev2dev-direct", "--size", "64",
                       "--iterations", "4", "--warmup", "1",
                       "--json", str(out_path)])
    printed = capsys.readouterr().out
    assert rc == 0
    assert "reconciliation" in printed
    doc = json.loads(out_path.read_text())
    assert doc["reconciles"] is True
    assert {row["name"] for row in doc["phases"]} >= {
        "wqe-generation", "wire", "completion-polling"}


def test_every_registered_scenario_has_unique_baseline_name():
    names = [s.baseline_filename for s in SCENARIOS.values()]
    assert len(names) == len(set(names))
    assert all(n.startswith("BENCH_") and n.endswith(".json") for n in names)


def test_quick_excludes_slow_scenarios(tmp_path, monkeypatch):
    """--quick must skip the full-only scenarios (extoll-bandwidth)."""
    from repro.perf import ScenarioResult
    from repro.perf import scenarios as scen_mod
    ran = []

    def fake(name):
        def run():
            ran.append(name)
            return ScenarioResult()
        return run

    patched = {n: s.__class__(name=s.name, description=s.description,
                              run=fake(n), quick=s.quick)
               for n, s in scen_mod.SCENARIOS.items()}
    monkeypatch.setattr(scen_mod, "SCENARIOS", patched)
    assert bench_main(["--record", "--quick", "--dir", str(tmp_path)]) == 0
    assert "extoll-bandwidth" not in ran
    assert "sim-throughput" in ran
    ran.clear()
    assert bench_main(["--check", "--quick", "--dir", str(tmp_path)]) == 0
    assert "extoll-bandwidth" not in ran
    assert "sim-throughput" in ran
