"""Unit tests for the regression harness — no simulator involved.

Synthetic scenarios with hand-built results exercise every comparison
path: tolerance bands per metric kind, missing/new metrics, invariant
verdicts, wall-clock direction handling, schema guarding.
"""

import json

import pytest

from repro.perf import (
    SCHEMA_VERSION,
    Metric,
    Scenario,
    ScenarioResult,
    baseline_path,
    check,
    load_baseline,
    record,
    render_reports,
)


def make_scenario(results):
    """A scenario whose run() pops pre-built results off a list."""
    return Scenario(name="synthetic", description="hand-built",
                    run=lambda: results.pop(0))


def result(latency=10.0, events=100, rate=1e6, inv=True, extra=None):
    res = ScenarioResult()
    res.metric("latency_us", latency, unit="us")
    res.metric("events", events, kind="count")
    res.metric("rate", rate, kind="wallclock", unit="events/s")
    res.invariant("shape-holds", (inv, "detail line"))
    if extra:
        res.metric(extra, 1.0)
    return res


def test_record_then_identical_check_passes(tmp_path):
    s = make_scenario([result(), result()])
    path = record(s, str(tmp_path))
    assert path == baseline_path(s, str(tmp_path))
    assert path.endswith("BENCH_SYNTHETIC.json")
    doc = json.load(open(path))
    assert doc["schema"] == SCHEMA_VERSION
    assert doc["metrics"]["latency_us"]["value"] == 10.0
    assert doc["invariants"]["shape-holds"] is True
    report = check(s, str(tmp_path))
    assert report.ok and not report.regressions


def test_sim_metric_outside_tolerance_regresses(tmp_path):
    s = make_scenario([result(), result(latency=10.02)])  # +0.2% > 0.1%
    record(s, str(tmp_path))
    report = check(s, str(tmp_path))
    assert not report.ok
    assert [d.name for d in report.regressions] == ["latency_us"]
    assert "tolerance" in report.regressions[0].detail
    assert "FAIL" in report.render()


def test_sim_metric_inside_tolerance_passes(tmp_path):
    s = make_scenario([result(), result(latency=10.0 + 10.0 * 5e-4)])
    record(s, str(tmp_path))
    assert check(s, str(tmp_path)).ok


def test_count_metric_is_exact(tmp_path):
    s = make_scenario([result(), result(events=101)])
    record(s, str(tmp_path))
    report = check(s, str(tmp_path))
    assert [d.name for d in report.regressions] == ["events"]


def test_custom_tolerance_band(tmp_path):
    res = ScenarioResult()
    res.metric("noisy", 100.0, tol=0.10)
    res2 = ScenarioResult()
    res2.metric("noisy", 108.0, tol=0.10)   # +8% < 10%
    s = make_scenario([res, res2])
    record(s, str(tmp_path))
    assert check(s, str(tmp_path)).ok


def test_wallclock_collapse_warns_not_fails(tmp_path):
    s = make_scenario([result(), result(rate=1e5)])  # 10x slower
    record(s, str(tmp_path))
    report = check(s, str(tmp_path))
    assert report.ok
    assert [d.name for d in report.warnings] == ["rate"]


def test_wallclock_collapse_fails_when_strict(tmp_path):
    s = make_scenario([result(), result(rate=1e5)])
    record(s, str(tmp_path))
    report = check(s, str(tmp_path), strict_wallclock=True)
    assert not report.ok


def test_wallclock_duration_direction(tmp_path):
    """Seconds-style wall metrics regress when they grow, not shrink."""
    def with_wall(seconds):
        res = ScenarioResult()
        res.metric("wall_s", seconds, kind="wallclock", unit="s")
        return res
    s = make_scenario([with_wall(1.0), with_wall(0.1), with_wall(8.0)])
    record(s, str(tmp_path))
    assert not check(s, str(tmp_path)).warnings          # 10x faster: fine
    assert check(s, str(tmp_path)).warnings              # 8x slower: warn


def test_faster_wallclock_rate_is_fine(tmp_path):
    s = make_scenario([result(), result(rate=1e7)])
    record(s, str(tmp_path))
    report = check(s, str(tmp_path))
    assert report.ok and not report.warnings


def test_missing_metric_is_regression_new_metric_is_info(tmp_path):
    s = make_scenario([result(extra="old_only"), result(extra=None)])
    record(s, str(tmp_path))
    report = check(s, str(tmp_path))
    assert any(d.name == "old_only" and d.status == "regression"
               for d in report.deviations)
    s2 = make_scenario([result(extra=None), result(extra="brand_new")])
    record(s2, str(tmp_path))
    report2 = check(s2, str(tmp_path))
    assert report2.ok
    assert any(d.name == "brand_new" and d.status == "new"
               for d in report2.deviations)


def test_fresh_invariant_violation_is_regression(tmp_path):
    s = make_scenario([result(inv=True), result(inv=False)])
    record(s, str(tmp_path))
    report = check(s, str(tmp_path))
    assert not report.ok
    assert any(d.name == "invariant:shape-holds" for d in report.regressions)
    assert "detail line" in report.render()


def test_missing_baseline_reports_error(tmp_path):
    s = make_scenario([result()])
    report = check(s, str(tmp_path))
    assert not report.ok
    assert "no baseline" in report.error


def test_schema_mismatch_refuses_comparison(tmp_path):
    s = make_scenario([result(), result()])
    path = record(s, str(tmp_path))
    doc = json.load(open(path))
    doc["schema"] = SCHEMA_VERSION + 1
    json.dump(doc, open(path, "w"))
    with pytest.raises(ValueError, match="schema"):
        load_baseline(s, str(tmp_path))
    report = check(s, str(tmp_path))
    assert not report.ok and "schema" in report.error


def test_render_reports_summarizes(tmp_path):
    good = make_scenario([result(), result()])
    record(good, str(tmp_path))
    text = render_reports([check(good, str(tmp_path))])
    assert "within tolerance" in text
    bad = make_scenario([result(), result(latency=99.0)])
    record(bad, str(tmp_path))
    text = render_reports([check(bad, str(tmp_path))])
    assert "FAILED" in text and "synthetic" in text


def test_metric_roundtrip():
    m = Metric(3.5, kind="count", unit="events", tol=0.5)
    assert Metric.from_dict(m.to_dict()) == m
    assert Metric(1.0).tolerance() == pytest.approx(1e-3)
    assert Metric(1.0, kind="count").tolerance() == 0.0
    assert Metric(1.0, kind="wallclock").tolerance() is None
