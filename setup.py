"""Setup shim for environments without the `wheel` package (offline boxes).

`pip install -e . --no-build-isolation --no-use-pep517` uses this legacy
path; everything else is declared in pyproject.toml.
"""

from setuptools import setup

setup()
