#!/usr/bin/env python
"""Quickstart: a GPU thread sends data to a remote GPU, no CPU involved.

Builds the simulated two-node EXTOLL testbed, registers GPU buffers with the
NIC, maps the RMA requester page into the GPU's address space (the paper's
driver patch, §III-C), and runs a single device thread that

1. writes a payload into its send buffer (device memory),
2. posts a put descriptor straight to the NIC with three 64-bit stores,
3. waits for the requester notification.

The remote GPU polls its receive buffer until the payload lands.

Run:  python examples/quickstart.py
"""

from repro import build_extoll_cluster
from repro.core import (
    gpu_rma_poll_last_element,
    gpu_rma_post,
    gpu_rma_wait_notification,
    setup_extoll_connection,
)
from repro.extoll import NotifyFlags, RmaOp, RmaWorkRequest
from repro.sim import join_result
from repro.units import KIB, format_time


def main() -> None:
    # One simulator, two nodes (CPU + GPU + EXTOLL NIC each), one cable.
    cluster = build_extoll_cluster()
    conn = setup_extoll_connection(cluster, buf_bytes=4 * KIB)
    sender, receiver = conn.a, conn.b

    message = b"hello from the GPU on node 0!" + bytes(3)  # pad to 8B multiple
    size = len(message)

    put = RmaWorkRequest(
        op=RmaOp.PUT, port=sender.port.port_id, dst_node=receiver.node.node_id,
        src_nla=sender.send_nla.base, dst_nla=receiver.recv_nla.base,
        size=size, flags=NotifyFlags.REQUESTER,
    )

    def send_kernel(ctx):
        """Runs on node 0's GPU — one thread drives the NIC directly."""
        yield from ctx.store(sender.send_buf.base, message)
        t0 = ctx.sim.now
        yield from gpu_rma_post(ctx, sender.port.page_addr, put)
        note, polls = yield from gpu_rma_wait_notification(
            ctx, sender.requester_cursor())
        return ctx.sim.now - t0, polls

    def recv_kernel(ctx):
        """Runs on node 1's GPU — spin until the last element arrives."""
        expected = int.from_bytes(message[-8:], "little")
        t0 = ctx.sim.now
        yield from gpu_rma_poll_last_element(
            ctx, receiver.recv_buf.base + size - 8, expected)
        return ctx.sim.now - t0

    send = sender.node.gpu.launch(send_kernel)
    recv = receiver.node.gpu.launch(recv_kernel)
    cluster.sim.run_until_complete(send, recv, limit=1.0)

    post_time, polls = send.block_result(0)
    arrival_time = recv.block_result(0)
    landed = receiver.node.gpu.dram.read(receiver.recv_buf.base, size)

    print(f"payload delivered intact : {landed == message}")
    print(f"sender post+notification : {format_time(post_time)} "
          f"({polls} notification polls over PCIe)")
    print(f"receiver wait (devmem)   : {format_time(arrival_time)}")
    print(f"simulated time total     : {format_time(cluster.sim.now)}")
    assert landed == message


if __name__ == "__main__":
    main()
