#!/usr/bin/env python
"""GPU-to-GPU messaging without notifications, doorbells, or the CPU.

The paper's closing line (§VIII) promises "GPU communication libraries that
meet the previously stated claims".  `repro.core.msglib` is that library:
a credit-flow-controlled two-sided channel where

* arrival detection and flow control poll *device memory* (L2 hits),
* descriptors are posted with one warp-wide store,
* the only PCIe control traffic is one 8-byte credit return per half ring.

This example runs a request/reply worker pair — node 0's GPU streams work
items, node 1's GPU transforms and answers each — then shows the §VI scoreboard:
zero PCIe reads issued by either GPU.

Run:  python examples/gpu_messaging.py
"""

from repro import build_extoll_cluster
from repro.core import create_channel, gpu_recv, gpu_send
from repro.units import format_time

N_ITEMS = 24


def main() -> None:
    cluster = build_extoll_cluster()
    chan = create_channel(cluster, slot_size=128, slots=8)
    a2b = chan.end_for_sender(0)
    b2a = chan.end_for_sender(1)

    items = [f"item-{i:02d}".encode() for i in range(N_ITEMS)]

    def client(ctx):
        """Node 0: pipeline requests, collect replies."""
        replies = []
        sent = 0
        # Keep up to 4 requests in flight.
        for msg in items[:4]:
            yield from gpu_send(ctx, a2b, msg)
            sent += 1
        for i in range(N_ITEMS):
            replies.append((yield from gpu_recv(ctx, b2a, a2b)))
            if sent < N_ITEMS:
                yield from gpu_send(ctx, a2b, items[sent])
                sent += 1
        return replies

    def server(ctx):
        """Node 1: receive, 'compute', reply."""
        for _ in range(N_ITEMS):
            msg = yield from gpu_recv(ctx, a2b, b2a)
            yield from ctx.alu(200)  # pretend to work on it
            yield from gpu_send(ctx, b2a, msg.upper())

    hc = cluster.a.gpu.launch(client)
    hs = cluster.b.gpu.launch(server)
    cluster.sim.run_until_complete(hc, hs, limit=30.0)
    replies = hc.block_result(0)

    assert replies == [m.upper() for m in items], "replies must match requests"
    a, b = cluster.a.gpu.counters, cluster.b.gpu.counters
    print(f"items processed          : {N_ITEMS} (all replies correct)")
    print(f"simulated time           : {format_time(cluster.sim.now)}")
    print(f"per round trip           : {format_time(cluster.sim.now / N_ITEMS)}")
    print(f"GPU PCIe reads issued    : node0={a.sysmem_read_transactions} "
          f"node1={b.sysmem_read_transactions}  <- §VI claim 3")
    print(f"GPU PCIe writes issued   : node0={a.sysmem_write_transactions} "
          f"node1={b.sysmem_write_transactions} (descriptor posts + credits)")
    print(f"L2 hit rate (node 0)     : "
          f"{a.l2_read_hits / max(a.l2_read_requests, 1):.1%} of polls")
    assert a.sysmem_read_transactions == 0
    assert b.sysmem_read_transactions == 0


if __name__ == "__main__":
    main()
