#!/usr/bin/env python
"""Halo exchange: a 1-D Jacobi stencil distributed over two GPUs.

The workload the paper's introduction motivates: iterative computation on
each GPU with a boundary (halo) exchange between iterations.  The exchange
runs entirely GPU-controlled — each device thread puts its boundary cells to
the neighbor and polls for the neighbor's cells in device memory — so the
CPU never wakes up during the solve (§III-C's goal: 'completely frees the
CPU while communication is offloaded').

Each node owns half of a 1-D rod; the stencil is u[i] = (u[i-1]+u[i+1])/2
with fixed boundary temperatures.  Numerics run in numpy alongside the
simulation; communication costs come from the simulated fabric.

Run:  python examples/halo_exchange.py
"""

import numpy as np

from repro import build_extoll_cluster
from repro.core import gpu_rma_post, setup_extoll_connection
from repro.extoll import NotifyFlags, RmaOp, RmaWorkRequest
from repro.units import KIB, format_time

CELLS_PER_NODE = 64          # local domain size
ITERATIONS = 40
LEFT_TEMP, RIGHT_TEMP = 100.0, 0.0


def main() -> None:
    cluster = build_extoll_cluster()
    conn = setup_extoll_connection(cluster, buf_bytes=4 * KIB)

    # Local domains (+2 ghost cells each side).
    domains = {
        0: np.full(CELLS_PER_NODE + 2, LEFT_TEMP / 2),
        1: np.full(CELLS_PER_NODE + 2, RIGHT_TEMP / 2),
    }
    domains[0][0] = LEFT_TEMP
    domains[1][-1] = RIGHT_TEMP

    def halo_wr(end, peer):
        return RmaWorkRequest(
            op=RmaOp.PUT, port=end.port.port_id, dst_node=peer.node.node_id,
            src_nla=end.send_nla.base, dst_nla=peer.recv_nla.base,
            size=16, flags=NotifyFlags.NONE)

    def solver_kernel(ctx, end, peer, node_id):
        u = domains[node_id]
        for it in range(1, ITERATIONS + 1):
            # Local Jacobi sweep: ~6 instructions per cell on this thread.
            yield from ctx.alu(6 * CELLS_PER_NODE)
            interior = u[1:-1].copy()
            u[1:-1] = 0.5 * (u[:-2] + u[2:])[:]
            if node_id == 0:
                u[0] = LEFT_TEMP
            else:
                u[-1] = RIGHT_TEMP

            # Publish my boundary cell + iteration tag, put it to the peer.
            boundary = u[-2] if node_id == 0 else u[1]
            payload = (np.float64(boundary).tobytes()
                       + it.to_bytes(8, "little"))
            yield from ctx.store(end.send_buf.base, payload)
            yield from gpu_rma_post(ctx, end.port.page_addr, halo_wr(end, peer))

            # Wait for the peer's boundary of the same iteration (in-order
            # delivery makes the tag check sufficient).
            yield from ctx.spin_until_u64(end.recv_buf.base + 8,
                                          lambda v, it=it: v == it)
            ghost = np.frombuffer(
                end.node.gpu.dram.read(end.recv_buf.base, 8), np.float64)[0]
            if node_id == 0:
                u[-1] = ghost
            else:
                u[0] = ghost
        return u

    h0 = conn.a.node.gpu.launch(solver_kernel, args=(conn.a, conn.b, 0))
    h1 = conn.b.node.gpu.launch(solver_kernel, args=(conn.b, conn.a, 1))
    cluster.sim.run_until_complete(h0, h1, limit=5.0)

    u = np.concatenate([domains[0][1:-1], domains[1][1:-1]])
    # The solution relaxes toward the linear profile between the two ends.
    expected = np.linspace(LEFT_TEMP, RIGHT_TEMP, len(u) + 2)[1:-1]
    err = np.abs(u - expected).max()

    print(f"iterations                : {ITERATIONS}")
    print(f"halo exchanges (puts)     : {2 * ITERATIONS}")
    print(f"simulated solve time      : {format_time(cluster.sim.now)}")
    print(f"temperature profile       : monotone={bool(np.all(np.diff(u) <= 1e-9))}")
    print(f"max deviation from steady state: {err:.2f} "
          f"(relaxation incomplete by design)")
    print(f"CPU threads woken during solve : 0")
    assert np.all(np.diff(u) <= 1e-9), "profile must decrease left-to-right"
    assert u[0] > u[-1]


if __name__ == "__main__":
    main()
