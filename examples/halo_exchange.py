#!/usr/bin/env python
"""Halo exchange: a 1-D Jacobi stencil distributed over N GPUs.

The workload the paper's introduction motivates: iterative computation on
each GPU with a boundary (halo) exchange between iterations.  The exchange
runs through :mod:`repro.collectives` — by default entirely GPU-controlled,
each device thread putting its boundary cells to the neighbors and polling
for theirs in device memory, so the CPU never wakes up during the solve
(§III-C's goal: 'completely frees the CPU while communication is
offloaded').  ``--mode hostControlled`` shows the same solve with CPUs
driving the NICs; ``--nodes N`` scales the rod across more GPUs.

Each node owns a slice of a 1-D rod; the stencil is u[i] = (u[i-1]+u[i+1])/2
with fixed boundary temperatures.  Numerics run in numpy alongside the
simulation; communication costs come from the simulated fabric.

Run:  python examples/halo_exchange.py [--nodes 4] [--mode dev2dev-direct]
"""

import argparse

import numpy as np

from repro.collectives import CollectiveMode, build_communicator, collective_mode
from repro.collectives.algorithms import halo_exchange
from repro.units import format_time

CELLS_PER_NODE = 64          # local domain size
ITERATIONS = 40
HALO_BYTES = 8               # one float64 boundary cell per side
LEFT_TEMP, RIGHT_TEMP = 100.0, 0.0


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=2,
                        help="GPUs the rod is distributed over (default: 2)")
    parser.add_argument("--mode", default=CollectiveMode.POLL_ON_GPU.value,
                        choices=[m.value for m in CollectiveMode],
                        help="who drives the NICs (default: dev2dev-pollOnGPU)")
    parser.add_argument("--topology", default="auto",
                        help="fabric topology (default: auto)")
    args = parser.parse_args(argv)
    n = args.nodes

    cluster, comm = build_communicator(n, HALO_BYTES,
                                       collective_mode(args.mode),
                                       args.topology)

    # Local domains (+1 ghost cell each side), seeded with a per-rank flat
    # guess that keeps the global profile monotone from the start.
    domains = {
        r: np.full(CELLS_PER_NODE + 2,
                   LEFT_TEMP - (LEFT_TEMP - RIGHT_TEMP) * (r + 0.5) / n)
        for r in range(n)
    }
    domains[0][0] = LEFT_TEMP
    domains[n - 1][-1] = RIGHT_TEMP
    exchanges = {r: 0 for r in range(n)}

    def solver_kernel(ctx, rc):
        u = domains[rc.rank]
        for _it in range(ITERATIONS):
            # Local Jacobi sweep: ~6 instructions per cell on this thread.
            yield from rc.compute(ctx, 6 * CELLS_PER_NODE)
            u[1:-1] = 0.5 * (u[:-2] + u[2:])
            if rc.rank == 0:
                u[0] = LEFT_TEMP
            if rc.rank == rc.size - 1:
                u[-1] = RIGHT_TEMP
            # Trade boundary cells with both neighbors; the rod's outer
            # ends stay pinned (non-periodic).
            (left, right), steps = yield from halo_exchange(
                ctx, rc, u[1:-1].tobytes(), HALO_BYTES, periodic=False)
            if left is not None:
                u[0] = np.frombuffer(left, np.float64)[0]
            if right is not None:
                u[-1] = np.frombuffer(right, np.float64)[0]
            exchanges[rc.rank] += steps

    handles = comm.launch(solver_kernel)
    cluster.sim.run_until_complete(*handles, limit=60.0)

    u = np.concatenate([domains[r][1:-1] for r in range(n)])
    # The solution relaxes toward the linear profile between the two ends.
    expected = np.linspace(LEFT_TEMP, RIGHT_TEMP, len(u) + 2)[1:-1]
    err = np.abs(u - expected).max()

    print(f"nodes x cells             : {n} x {CELLS_PER_NODE}")
    print(f"mode / topology           : {comm.mode.value} / {cluster.topology}")
    print(f"iterations                : {ITERATIONS}")
    print(f"halo exchanges (puts)     : {sum(exchanges.values())}")
    print(f"simulated solve time      : {format_time(cluster.sim.now)}")
    print(f"temperature profile       : monotone={bool(np.all(np.diff(u) <= 1e-9))}")
    print(f"max deviation from steady state: {err:.2f} "
          f"(relaxation incomplete by design)")
    cpu_woken = n if comm.mode.host_driven else 0
    print(f"CPU threads woken during solve : {cpu_woken}")
    assert np.all(np.diff(u) <= 1e-9), "profile must decrease left-to-right"
    assert u[0] > u[-1]


if __name__ == "__main__":
    main()
