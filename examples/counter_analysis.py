#!/usr/bin/env python
"""Profile the GPU like the paper does: regenerate Tables I and II.

Runs the 100-iteration, 1 KiB ping-pong under both EXTOLL polling strategies
and both InfiniBand buffer placements, collecting the simulated GPU's
performance counters, and prints them next to the paper's numbers.

Run:  python examples/counter_analysis.py [--iterations 100]
"""

import argparse

from repro.analysis import (
    PAPER_SINGLE_OP,
    PAPER_TABLE1,
    PAPER_TABLE2,
    single_op_costs,
    table1_extoll_polling,
    table2_ib_buffers,
)
from repro.core import render_counter_table


def print_with_paper(reports, paper, title):
    print(render_counter_table(list(reports), title))
    print("\n  paper reference (same layout):")
    metrics = reports[0].counters.table_rows()
    for metric, _ in metrics:
        key = {
            "sysmem reads (32B accesses)": "sysmem_read_transactions",
            "sysmem writes (32B accesses)": "sysmem_write_transactions",
            "globmem64 reads (accesses)": "global_load_accesses",
            "globmem64 writes (accesses)": "global_store_accesses",
            "l2 read misses": "l2_read_misses",
            "l2 read hits": "l2_read_hits",
            "l2 read requests": "l2_read_requests",
            "l2 write requests": "l2_write_requests",
            "memory accesses (r/w)": "memory_accesses",
            "instruction executed": "instructions_executed",
        }[metric]
        row = f"  {metric.ljust(32)}"
        for label in paper:
            row += f"{paper[label].get(key, '-')!s:>18}"
        print(row)
    print()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--iterations", type=int, default=100)
    args = parser.parse_args()

    t1 = table1_extoll_polling(iterations=args.iterations)
    print_with_paper(t1, PAPER_TABLE1,
                     f"Table I — EXTOLL polling ({args.iterations} iters, 1 KiB)")

    t2 = table2_ib_buffers(iterations=args.iterations)
    print_with_paper(t2, PAPER_TABLE2,
                     f"Table II — IB buffer placement ({args.iterations} iters, 1 KiB)")

    ops = single_op_costs()
    print("Single-operation instruction counts (§V-B3)")
    print(f"  ibv_post_send : measured {ops['ibv_post_send']:>4}   paper {PAPER_SINGLE_OP['ibv_post_send']}")
    print(f"  ibv_poll_cq   : measured {ops['ibv_poll_cq']:>4}   paper {PAPER_SINGLE_OP['ibv_poll_cq']}")
    print(f"  EXTOLL post   : measured {ops['extoll_post']:>4}   paper 'a few tens'")


if __name__ == "__main__":
    main()
