#!/usr/bin/env python
"""What if the NIC followed the paper's §VI design rules?

The paper closes with three claims for future put/get interfaces: small
footprint, thread-collaborative posting, minimal PCIe control traffic.
This library implements them (see ``repro.core.future``):

* the 192-bit descriptor is posted as ONE warp-coalesced store,
* the notification queues live in GPU device memory, so polling runs out of
  the L2 instead of crossing PCIe.

This example measures how much of the GPU-vs-CPU gap the proposal recovers,
under identical dev2dev-direct semantics.

Run:  python examples/future_api.py
"""

from repro import build_extoll_cluster
from repro.core import (
    ExtollMode,
    run_extoll_pingpong,
    run_future_extoll_pingpong,
    setup_extoll_connection,
    setup_future_extoll_connection,
)
from repro.units import KIB

SIZES = [16, 256, 1 * KIB, 4 * KIB]
ITERS = 15


def main() -> None:
    rows = []
    for size in SIZES:
        cluster = build_extoll_cluster()
        conn = setup_extoll_connection(cluster, max(size, 4 * KIB))
        today = run_extoll_pingpong(cluster, conn, ExtollMode.DIRECT, size,
                                    iterations=ITERS)
        host = run_extoll_pingpong(cluster, conn, ExtollMode.HOST_CONTROLLED,
                                   size, iterations=ITERS)
        cluster2 = build_extoll_cluster()
        conn2 = setup_future_extoll_connection(cluster2, max(size, 4 * KIB))
        future = run_future_extoll_pingpong(cluster2, conn2, size,
                                            iterations=ITERS)
        rows.append((size, today, future, host))

    print(f"{'size':>8} {'today (direct)':>16} {'§VI proposal':>14} "
          f"{'hostControlled':>16} {'gap recovered':>14}")
    for size, today, future, host in rows:
        gap = today.latency - host.latency
        recovered = (today.latency - future.latency) / gap if gap > 0 else 0.0
        print(f"{size:>8} {today.latency_us:>14.2f}us {future.latency_us:>12.2f}us "
              f"{host.latency_us:>14.2f}us {recovered:>13.0%}")

    t, f, h = rows[0][1].latency, rows[0][2].latency, rows[0][3].latency
    assert h < f < t, "expected host < future < today's direct"
    print("\nThe proposed interface sits between today's GPU-controlled path "
          "and the CPU-controlled bound, recovering most of the polling cost "
          "(§VI claims 1-3).")


if __name__ == "__main__":
    main()
