#!/usr/bin/env python
"""Compare all communication configurations on both fabrics.

A compact version of the paper's Figs. 1a and 4a: ping-pong latency for
every control-path configuration at a few message sizes, printed as the
tables the figures plot.

Run:  python examples/mode_comparison.py [--sizes 16 1024 65536]
"""

import argparse

from repro import build_extoll_cluster, build_ib_cluster
from repro.core import (
    ExtollMode,
    IbMode,
    Series,
    render_latency_table,
    run_extoll_pingpong,
    run_ib_pingpong,
    setup_extoll_connection,
    setup_ib_connection,
)
from repro.units import KIB

IB_LOCATION = {
    IbMode.BUF_ON_GPU: "gpu",
    IbMode.BUF_ON_HOST: "host",
    IbMode.ASSISTED: "host",
    IbMode.HOST_CONTROLLED: "host",
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sizes", type=int, nargs="+",
                        default=[16, 1 * KIB, 64 * KIB])
    parser.add_argument("--iterations", type=int, default=15)
    args = parser.parse_args()

    extoll_series = []
    for mode in ExtollMode:
        series = Series(mode.value)
        for size in args.sizes:
            cluster = build_extoll_cluster()
            conn = setup_extoll_connection(cluster, max(size, 4 * KIB))
            series.points.append(run_extoll_pingpong(
                cluster, conn, mode, size, iterations=args.iterations))
        extoll_series.append(series)
    print(render_latency_table(extoll_series, "EXTOLL ping-pong latency"))
    print()

    ib_series = []
    for mode in IbMode:
        series = Series(mode.value)
        for size in args.sizes:
            cluster = build_ib_cluster()
            conn = setup_ib_connection(cluster, max(size, 4 * KIB),
                                       buffer_location=IB_LOCATION[mode])
            series.points.append(run_ib_pingpong(
                cluster, conn, mode, size, iterations=args.iterations))
        ib_series.append(series)
    print(render_latency_table(ib_series, "InfiniBand ping-pong latency"))

    # The paper's summary line (§VI): CPU control always wins today.
    for series_list, name in ((extoll_series, "EXTOLL"), (ib_series, "IB")):
        host = next(s for s in series_list if "hostControlled" in s.label)
        fastest_gpu = min(
            (p.latency for s in series_list if "hostControlled" not in s.label
             for p in s.points if p.size == args.sizes[0]))
        host_lat = host.points[0].latency
        print(f"\n{name}: best GPU-controlled small-message latency is "
              f"{fastest_gpu / host_lat:.2f}x the host-controlled one")


if __name__ == "__main__":
    main()
