"""Network model: packets, in-order links, N-node routed fabric."""

from .fabric import Endpoint, NetworkFabric, RouterEndpoint
from .link import NetLink, NetLinkConfig
from .packet import Packet, PacketKind

__all__ = [
    "Endpoint",
    "NetworkFabric",
    "RouterEndpoint",
    "NetLink",
    "NetLinkConfig",
    "Packet",
    "PacketKind",
]
