"""Network model: packets, in-order links, two-node fabric."""

from .fabric import Endpoint, NetworkFabric
from .link import NetLink, NetLinkConfig
from .packet import Packet, PacketKind

__all__ = [
    "Endpoint",
    "NetworkFabric",
    "NetLink",
    "NetLinkConfig",
    "Packet",
    "PacketKind",
]
