"""Network model: packets, in-order links, N-node routed fabric."""

from .fabric import Endpoint, NetworkFabric, RouterEndpoint
from .link import FORWARD_TIME, FlowState, NetLink, NetLinkConfig
from .packet import Packet, PacketKind

__all__ = [
    "Endpoint",
    "NetworkFabric",
    "RouterEndpoint",
    "FORWARD_TIME",
    "FlowState",
    "NetLink",
    "NetLinkConfig",
    "Packet",
    "PacketKind",
]
