"""The network fabric: point-to-point links, N-node topologies, routing.

Wires NIC endpoints together over :class:`NetLink`s and gives each NIC an
``endpoint`` handle with ``send``/``recv``.  The paper's testbed is exactly
two nodes per fabric (two EXTOLL Galibier nodes, two IB FDR nodes); the
fabric also supports arbitrary N-node topologies: a node that participates
in several links attaches through a :class:`RouterEndpoint`, which picks the
outgoing link per destination and relays transit packets store-and-forward
(the same hop discipline as :mod:`repro.pcie.switch`), so rings and switched
star topologies route multi-hop traffic without the NICs knowing.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from ..errors import NetworkError
from ..sim import Simulator, Store
from .link import FORWARD_TIME, NetLink, NetLinkConfig
from .packet import Packet

__all__ = ["FORWARD_TIME", "Endpoint", "RouterEndpoint", "NetworkFabric"]


class Endpoint:
    """One NIC's attachment to a single link."""

    def __init__(self, link: NetLink, side: int, node_id: int,
                 peer_id: int) -> None:
        self.link = link
        self.side = side
        self.node_id = node_id
        self.peer_id = peer_id
        # When the link runs credit flow control, a plain endpoint returns
        # the credit as soon as its consumer drains the inbox; a router
        # flips this off and releases manually AFTER relaying, so a full
        # switch buffer backpressures the upstream hop.
        self.auto_credit = True

    def send(self, packet: Packet):
        """Process fragment: transmit a packet toward the peer."""
        trc = self.link.sim.tracer
        if trc.enabled:
            trc.metrics.counter(f"net.node{self.node_id}.sends").inc()
        return self.link.send(self.side, packet)

    @property
    def inbox(self) -> Store:
        return self.link.inbox[self.side]

    def recv(self):
        """Event: the next packet addressed to this endpoint."""
        ev = self.inbox.get()
        if self.link.flow is not None and self.auto_credit:
            side = self.side
            link = self.link

            def _release(e, _side=side, _link=link):
                if e.ok:
                    _link.release_credit(_side, e.value)

            ev.add_callback(_release)
        return ev

    def credit_release(self, packet: Packet, vc: Optional[int] = None) -> None:
        """Manually return the credit ``packet`` held on its way in (used
        by routers, which disable ``auto_credit``).  ``vc`` is the arrival
        VC, captured before any re-stamping for the next hop."""
        if self.link.flow is not None and not self.auto_credit:
            self.link.release_credit(self.side, packet, vc)


class RouterEndpoint:
    """A node's attachment when it has several links (or acts as a switch).

    Presents the same ``send``/``recv``/``node_id`` surface a NIC expects
    from :class:`Endpoint`, on top of

    * a routing table mapping destination node id -> first-hop link endpoint,
    * one pump process per member link that sorts arrivals: packets for this
      node land in the unified ``inbox``; transit packets are handed to a
      per-virtual-channel relay worker that forwards them onto the next hop
      after a store-and-forward delay.

    Per-(link, VC) in-order delivery is preserved (each relay worker
    forwards serially); packets on different VCs or paths may interleave,
    exactly like a real multi-path fabric.  The per-VC workers are what
    makes dateline VC schemes sound: a packet blocked on a congested
    output holds only its own VC's queue, so escape-VC traffic on the same
    input link keeps moving instead of deadlocking behind it.
    """

    def __init__(self, sim: Simulator, node_id: int,
                 forward_time: Optional[float] = FORWARD_TIME) -> None:
        self.sim = sim
        self.node_id = node_id
        #: Per-node override of the relay cost; ``None`` defers to each
        #: outgoing link's ``config.forward_time``, letting switch classes
        #: (core vs leaf) carry different costs.  The default keeps the
        #: historical uniform 120 ns.
        self.forward_time = forward_time
        self.inbox: Store = Store(sim, name=f"router{node_id}.inbox")
        self._links: Dict[int, Endpoint] = {}     # peer id -> link endpoint
        self._routes: Dict[int, int] = {}         # dst node id -> peer id
        self.packets_forwarded = 0
        self.packets_terminated = 0

    # -- wiring ------------------------------------------------------------------
    def add_link(self, endpoint: Endpoint) -> None:
        if endpoint.peer_id in self._links:
            raise NetworkError(
                f"router {self.node_id} already attached to {endpoint.peer_id}")
        endpoint.auto_credit = False    # routers release after relaying
        self._links[endpoint.peer_id] = endpoint
        self.sim.process(self._pump(endpoint),
                         name=f"router{self.node_id}.rx{endpoint.peer_id}")

    def set_route(self, dst: int, via_peer: int) -> None:
        if via_peer not in self._links:
            raise NetworkError(
                f"router {self.node_id}: no link to next hop {via_peer}")
        self._routes[dst] = via_peer

    def next_hop(self, dst: int) -> Endpoint:
        if dst in self._links:          # directly connected beats any route
            return self._links[dst]
        try:
            return self._links[self._routes[dst]]
        except KeyError:
            raise NetworkError(
                f"router {self.node_id} has no route to node {dst}") from None

    @property
    def peers(self) -> List[int]:
        return sorted(self._links)

    # -- NIC-facing surface ----------------------------------------------------------
    def route(self, packet: Packet) -> Endpoint:
        """The outgoing endpoint for ``packet`` — the per-packet routing
        hook.  The base class does static table lookup by destination;
        policy routers (:mod:`repro.fabrics.routing`) override this to
        pick per-packet adaptive routes and stamp VCs."""
        return self.next_hop(packet.dst_node)

    def send(self, packet: Packet):
        """Process fragment: transmit toward ``packet.dst_node`` on the
        routed first hop."""
        return self.route(packet).send(packet)

    def recv(self):
        """Event: the next packet terminating at this node."""
        return self.inbox.get()

    def relay_cost(self, out: Endpoint) -> float:
        return (self.forward_time if self.forward_time is not None
                else out.link.config.forward_time)

    # -- relaying ----------------------------------------------------------------
    def _pump(self, endpoint: Endpoint):
        # Demux arrivals: ejections terminate here; transit packets queue
        # on their arrival VC's relay worker (spawned lazily, so links
        # that never see a second VC never pay for one).
        queues: Dict[int, Store] = {}
        while True:
            packet = yield endpoint.recv()
            if packet.dst_node == self.node_id:
                self.packets_terminated += 1
                yield self.inbox.put(packet)
                endpoint.credit_release(packet)
                continue
            vc = packet.meta.get("vc", 0)
            queue = queues.get(vc)
            if queue is None:
                queue = Store(self.sim,
                              name=f"router{self.node_id}"
                                   f".rx{endpoint.peer_id}.vc{vc}")
                queues[vc] = queue
                self.sim.process(
                    self._relay(endpoint, queue, vc),
                    name=f"router{self.node_id}.fwd{endpoint.peer_id}"
                         f".vc{vc}")
            yield queue.put(packet)

    def _relay(self, endpoint: Endpoint, queue: Store, vc: int):
        trc = self.sim.tracer
        actor = f"fab.s{self.node_id}"
        while True:
            packet = yield queue.get()
            # Store-and-forward relay: decode + route, then pay the next
            # link's serialization.  The worker blocks until the packet
            # has left, preserving per-(input-link, VC) order — a blocked
            # head packet never stalls the other VCs of this link, which
            # is what lets a dateline VC scheme actually break deadlock
            # cycles.
            self.packets_forwarded += 1
            if trc.enabled:
                trc.instant("net", "forward", track=f"router{self.node_id}",
                            seq=packet.seq, dst=packet.dst_node)
                trc.metrics.counter(f"net.router{self.node_id}.forwards").inc()
            out = self.route(packet)    # re-stamps meta["vc"] for the next hop
            yield self.sim.timeout(self.relay_cost(out))
            yield from out.send(packet)
            # Only now — the packet has fully left this hop — hand the
            # input-link credit back, so a congested output propagates
            # backpressure upstream.
            endpoint.credit_release(packet, vc)
            if trc.enabled and trc.wants("causal"):
                caddr = packet.meta.get("caddr")
                if caddr is not None:
                    trc.flow_event("hop", actor, addr=caddr,
                                   via=out.peer_id)


class NetworkFabric:
    """A collection of point-to-point links keyed by node-id pairs."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._links: Dict[Tuple[int, int], NetLink] = {}
        # Keyed by (node, peer): a node keeps one endpoint per link it is
        # on, so participating in several links no longer overwrites the
        # registry entry.
        self._endpoints: Dict[Tuple[int, int], Endpoint] = {}
        self._routers: Dict[int, RouterEndpoint] = {}

    def connect(self, node_a: int, node_b: int,
                config: NetLinkConfig | None = None) -> Tuple[Endpoint, Endpoint]:
        if node_a == node_b:
            raise NetworkError("cannot connect a node to itself")
        key = (min(node_a, node_b), max(node_a, node_b))
        if key in self._links:
            raise NetworkError(f"nodes {key} already connected")
        link = NetLink(self.sim, f"link{node_a}-{node_b}", config)
        ep_a = Endpoint(link, 0 if node_a < node_b else 1, node_a, node_b)
        ep_b = Endpoint(link, 0 if node_b < node_a else 1, node_b, node_a)
        self._links[key] = link
        self._endpoints[(node_a, node_b)] = ep_a
        self._endpoints[(node_b, node_a)] = ep_b
        return ep_a, ep_b

    def endpoint(self, node_id: int, peer_id: Optional[int] = None) -> Endpoint:
        """The endpoint of ``node_id`` toward ``peer_id``.

        Without ``peer_id`` the node must be on exactly one link (the
        two-node testbeds); a multi-link node makes the bare lookup
        ambiguous.
        """
        if peer_id is not None:
            try:
                return self._endpoints[(node_id, peer_id)]
            except KeyError:
                raise NetworkError(
                    f"node {node_id} has no endpoint toward {peer_id}") from None
        mine = [ep for (nid, _peer), ep in sorted(self._endpoints.items())
                if nid == node_id]
        if not mine:
            raise NetworkError(f"node {node_id} has no endpoint")
        if len(mine) > 1:
            raise NetworkError(
                f"node {node_id} is on {len(mine)} links; pass peer_id "
                f"(one of {self.neighbors(node_id)})")
        return mine[0]

    def neighbors(self, node_id: int) -> List[int]:
        return sorted(peer for (nid, peer) in self._endpoints if nid == node_id)

    def node_ids(self) -> List[int]:
        return sorted({nid for (nid, _peer) in self._endpoints})

    def link_between(self, node_a: int, node_b: int) -> NetLink:
        key = (min(node_a, node_b), max(node_a, node_b))
        try:
            return self._links[key]
        except KeyError:
            raise NetworkError(f"no link between {node_a} and {node_b}") from None

    def links(self) -> Dict[Tuple[int, int], NetLink]:
        return dict(self._links)

    # -- N-node routing ------------------------------------------------------------
    def make_router(self, node_id: int,
                    forward_time: Optional[float] = FORWARD_TIME,
                    factory=None) -> RouterEndpoint:
        """Bundle every link of ``node_id`` behind a routing endpoint.

        ``factory(sim, node_id, forward_time)`` may supply a
        :class:`RouterEndpoint` subclass (policy routers).
        """
        if node_id in self._routers:
            raise NetworkError(f"node {node_id} already has a router")
        peers = self.neighbors(node_id)
        if not peers:
            raise NetworkError(f"node {node_id} has no links to route over")
        if factory is None:
            router = RouterEndpoint(self.sim, node_id, forward_time)
        else:
            router = factory(self.sim, node_id, forward_time)
        for peer in peers:
            router.add_link(self._endpoints[(node_id, peer)])
        self._routers[node_id] = router
        return router

    def router(self, node_id: int) -> RouterEndpoint:
        try:
            return self._routers[node_id]
        except KeyError:
            raise NetworkError(f"node {node_id} has no router") from None

    def attachment(self, node_id: int):
        """What a NIC on ``node_id`` talks to: its router if one exists,
        else its single link endpoint."""
        return self._routers.get(node_id) or self.endpoint(node_id)

    def compute_routes(self) -> None:
        """Fill every router's table with BFS shortest-path first hops.

        Deterministic: neighbors are explored in sorted order, so ties are
        broken toward the lowest-numbered next hop.  Call after all
        ``connect``/``make_router`` calls.
        """
        all_ids = self.node_ids()
        for router in self._routers.values():
            src = router.node_id
            first_hop: Dict[int, int] = {}
            visited = {src}
            frontier = deque()
            for peer in router.peers:
                first_hop[peer] = peer
                visited.add(peer)
                frontier.append(peer)
            while frontier:
                u = frontier.popleft()
                for v in self.neighbors(u):
                    if v not in visited:
                        visited.add(v)
                        first_hop[v] = first_hop[u]
                        frontier.append(v)
            for dst in all_ids:
                if dst == src:
                    continue
                if dst not in first_hop:
                    raise NetworkError(
                        f"node {dst} unreachable from node {src}")
                router.set_route(dst, first_hop[dst])
