"""The two-node network fabric.

Wires NIC endpoints together over :class:`NetLink`s and gives each NIC an
``endpoint`` handle with ``send``/``recv``.  The paper's testbed is exactly
two nodes per fabric (two EXTOLL Galibier nodes, two IB FDR nodes), but the
fabric supports any number of point-to-point links.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..errors import NetworkError
from ..sim import Simulator, Store
from .link import NetLink, NetLinkConfig
from .packet import Packet


class Endpoint:
    """One NIC's attachment to a link."""

    def __init__(self, link: NetLink, side: int, node_id: int) -> None:
        self.link = link
        self.side = side
        self.node_id = node_id

    def send(self, packet: Packet):
        """Process fragment: transmit a packet toward the peer."""
        trc = self.link.sim.tracer
        if trc.enabled:
            trc.metrics.counter(f"net.node{self.node_id}.sends").inc()
        return self.link.send(self.side, packet)

    @property
    def inbox(self) -> Store:
        return self.link.inbox[self.side]

    def recv(self):
        """Event: the next packet addressed to this endpoint."""
        return self.inbox.get()


class NetworkFabric:
    """A collection of point-to-point links keyed by node-id pairs."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._links: Dict[Tuple[int, int], NetLink] = {}
        self._endpoints: Dict[int, Endpoint] = {}

    def connect(self, node_a: int, node_b: int,
                config: NetLinkConfig | None = None) -> Tuple[Endpoint, Endpoint]:
        if node_a == node_b:
            raise NetworkError("cannot connect a node to itself")
        key = (min(node_a, node_b), max(node_a, node_b))
        if key in self._links:
            raise NetworkError(f"nodes {key} already connected")
        link = NetLink(self.sim, f"link{node_a}-{node_b}", config)
        ep_a = Endpoint(link, 0 if node_a < node_b else 1, node_a)
        ep_b = Endpoint(link, 0 if node_b < node_a else 1, node_b)
        self._links[key] = link
        self._endpoints[node_a] = ep_a
        self._endpoints[node_b] = ep_b
        return ep_a, ep_b

    def endpoint(self, node_id: int) -> Endpoint:
        try:
            return self._endpoints[node_id]
        except KeyError:
            raise NetworkError(f"node {node_id} has no endpoint") from None

    def link_between(self, node_a: int, node_b: int) -> NetLink:
        key = (min(node_a, node_b), max(node_a, node_b))
        try:
            return self._links[key]
        except KeyError:
            raise NetworkError(f"no link between {node_a} and {node_b}") from None
