"""Point-to-point network links with in-order delivery.

One :class:`NetLink` direction serializes packets at the link bandwidth and
delivers them, after the propagation latency, into the receiver's inbox
(:class:`~repro.sim.Store`) in exactly the order they were sent — both
EXTOLL and InfiniBand RC guarantee in-order delivery, which the paper's
``pollOnGPU`` / poll-last-element trick depends on (§V-B1).

Fault injection: a link optionally carries a
:class:`~repro.faults.injector.LinkFaultState` in ``self.faults``
(installed by :class:`~repro.faults.FaultInjector`; ``None`` by default,
costing one attribute check).  The state is consulted once per packet
after serialization and may drop it (loss or a downed link), substitute a
corrupted clone, or add extra delay — delayed packets skip the in-order
delivery chain, so they reorder against their neighbors exactly like a
stray packet taking a slow path through a real switch.

Credit-based flow control: when :attr:`NetLinkConfig.credits` is set, the
link carries a :class:`FlowState` in ``self.flow`` modelling the finite
receive buffer of the far side — ``credits`` slots per virtual channel
per direction.  A sender acquires one credit *before* it may start
serializing; the credit is returned only when the receiver consumes the
packet (an endpoint draining its inbox, or a router that has finished
relaying it onward).  A hop that is out of credits therefore blocks its
upstream pump in simulated time, which in turn stops draining *its*
input link — congestion propagates backward exactly like real link-level
flow control.  ``credits=None`` (the default) keeps the infinite-buffer
fabric at the cost of one attribute check per send, mirroring the
``faults`` hook: disabled flow control is bit-identical to the seed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional

from ..errors import NetworkError
from ..sim import Event, NULL_SPAN, Resource, Simulator, Store
from ..units import GB_PER_S, NS
from .packet import Packet

#: Per-hop relay cost of a store-and-forward node (header decode + route
#: lookup + buffer hand-off), paid on top of the next link's serialization.
#: Promoted from a module constant in :mod:`repro.network.fabric` to a
#: per-link :class:`NetLinkConfig` field so switch classes (core vs leaf)
#: can carry different relay costs; the default preserves prior behavior.
FORWARD_TIME = 120 * NS


@dataclass(frozen=True)
class NetLinkConfig:
    bandwidth: float = 5.0 * GB_PER_S   # bytes/second per direction
    latency: float = 550 * NS           # wire + switch traversal, one way
    #: Store-and-forward relay cost charged by a router forwarding ONTO
    #: this link (when the router has no per-node override).
    forward_time: float = FORWARD_TIME
    #: Receive-buffer credits per virtual channel per direction; ``None``
    #: disables flow control entirely (infinite buffering, zero cost).
    credits: Optional[int] = None
    #: Virtual channels (only meaningful with ``credits``); packets pick a
    #: VC via ``packet.meta["vc"]``, defaulting to 0.
    vcs: int = 1

    def __post_init__(self) -> None:
        if self.bandwidth <= 0 or self.latency < 0:
            raise NetworkError("bad link parameters")
        if self.forward_time < 0:
            raise NetworkError("forward_time must be >= 0")
        if self.credits is not None and self.credits < 1:
            raise NetworkError("credits must be >= 1 (or None to disable)")
        if self.vcs < 1:
            raise NetworkError("vcs must be >= 1")


class FlowState:
    """Per-direction, per-VC credit pools for one link.

    ``acquire`` is the sender-side gate: it either takes a credit
    immediately (returning ``None`` — no event, no heap traffic on the
    uncontended path) or returns a pending :class:`~repro.sim.Event` the
    sender must yield on.  ``release`` hands the credit to the oldest
    waiter (FIFO per VC) or returns it to the pool.
    """

    __slots__ = ("link", "credits", "vcs", "_avail", "_waiters",
                 "stalls", "stall_time", "peak_in_flight")

    def __init__(self, link: "NetLink") -> None:
        cfg = link.config
        self.link = link
        self.credits = cfg.credits
        self.vcs = cfg.vcs
        self._avail = [[cfg.credits] * cfg.vcs, [cfg.credits] * cfg.vcs]
        self._waiters = [[deque() for _ in range(cfg.vcs)],
                         [deque() for _ in range(cfg.vcs)]]
        self.stalls = [0, 0]            # sends that had to wait, per dir
        self.stall_time = [0.0, 0.0]    # total sim-time spent waiting
        self.peak_in_flight = [0, 0]    # high-water credit occupancy

    def acquire(self, direction: int, vc: int) -> Optional[Event]:
        if not 0 <= vc < self.vcs:
            raise NetworkError(
                f"{self.link.name}: packet asks for VC {vc} but the link "
                f"has {self.vcs}")
        avail = self._avail[direction]
        if avail[vc] > 0:
            avail[vc] -= 1
            occ = self.in_flight(direction)
            if occ > self.peak_in_flight[direction]:
                self.peak_in_flight[direction] = occ
            return None
        ev = Event(self.link.sim, name=f"{self.link.name}.crd{direction}v{vc}")
        self._waiters[direction][vc].append(ev)
        return ev

    def release(self, direction: int, vc: int) -> None:
        waiters = self._waiters[direction][vc]
        if waiters:
            # Hand the credit straight to the oldest waiter; occupancy is
            # unchanged (the slot moves from one packet to the next).
            waiters.popleft().succeed()
            return
        self._avail[direction][vc] += 1
        if self._avail[direction][vc] > self.credits:
            raise NetworkError(
                f"{self.link.name}: credit over-release on dir {direction} "
                f"vc {vc}")

    def in_flight(self, direction: int) -> int:
        """Credits currently held by in-flight packets, this direction."""
        return self.credits * self.vcs - sum(self._avail[direction])

    def waiting(self, direction: int) -> int:
        return sum(len(q) for q in self._waiters[direction])

    @property
    def total_stalls(self) -> int:
        return self.stalls[0] + self.stalls[1]

    @property
    def total_stall_time(self) -> float:
        return self.stall_time[0] + self.stall_time[1]


class NetLink:
    """A full-duplex cable between two NICs (endpoints 0 and 1)."""

    def __init__(self, sim: Simulator, name: str = "netlink",
                 config: NetLinkConfig | None = None) -> None:
        self.sim = sim
        self.name = name
        self.config = config or NetLinkConfig()
        # Per-direction serializer + receiver inbox.
        self._tx = [Resource(sim, 1, f"{name}.tx0"), Resource(sim, 1, f"{name}.tx1")]
        self.inbox = [Store(sim, name=f"{name}.rx0"), Store(sim, name=f"{name}.rx1")]
        self.packets_sent = [0, 0]
        self.bytes_sent = [0, 0]
        # In-order delivery despite concurrent senders: a delivery chain per
        # direction (each delivery waits on the previous one).
        self._last_delivery = [None, None]
        # Fault-injection state; None (the default) keeps the reliable
        # fabric of the paper at the cost of one attribute check per send.
        self.faults = None
        # Credit-based flow control; None unless the config asks for it.
        self.flow = FlowState(self) if self.config.credits else None
        # Causal actor label of each side's sender (e.g. "n3", "fab.s17"),
        # set by fabric builders so credit stalls can be blamed.
        self.actor_labels: list = [None, None]

    def send(self, endpoint: int, packet: Packet):
        """Process fragment: transmit ``packet`` from ``endpoint``; returns
        once the last byte has left the NIC (delivery happens later)."""
        if endpoint not in (0, 1):
            raise NetworkError(f"bad endpoint {endpoint}")
        trc = self.sim.tracer
        flow = self.flow
        vc = 0
        if flow is not None:
            vc = packet.meta.get("vc", 0)
            gate = flow.acquire(endpoint, vc)
            if gate is not None:
                stall_from = self.sim.now
                yield gate
                stalled = self.sim.now - stall_from
                flow.stalls[endpoint] += 1
                flow.stall_time[endpoint] += stalled
                occ = flow.in_flight(endpoint)
                if occ > flow.peak_in_flight[endpoint]:
                    flow.peak_in_flight[endpoint] = occ
                if trc.enabled:
                    trc.metrics.counter("fabric.credit_stalls").inc()
                    if trc.wants("causal"):
                        caddr = packet.meta.get("caddr")
                        actor = self.actor_labels[endpoint]
                        if caddr is not None and actor is not None:
                            trc.flow_event("hop.crd", actor, addr=caddr,
                                           link=self.name, vc=vc,
                                           stalled=stalled)
        tx = self._tx[endpoint]
        yield tx.acquire()
        # Span covers the exclusive serialization window of this direction.
        span = (trc.begin("net", packet.kind.value,
                          track=f"{self.name}.tx{endpoint}",
                          seq=packet.seq, bytes=packet.wire_bytes)
                if trc.enabled else NULL_SPAN)
        try:
            yield self.sim.timeout(packet.wire_bytes / self.config.bandwidth)
        finally:
            span.end()
            tx.release()
        self.packets_sent[endpoint] += 1
        self.bytes_sent[endpoint] += packet.wire_bytes
        if trc.enabled:
            trc.metrics.counter("net.packets").inc()
            trc.metrics.counter("net.wire_bytes").inc(packet.wire_bytes)
        extra_delay = 0.0
        if self.faults is not None:
            verdict = self.faults.filter_tx(packet)
            if verdict is None:
                if flow is not None:
                    flow.release(endpoint, vc)  # dropped: slot never filled
                return                      # dropped: no delivery at all
            packet, extra_delay = verdict
        # Chain delivery so packets arrive strictly in send-completion order.
        dst_inbox = self.inbox[1 - endpoint]
        prev = self._last_delivery[endpoint]

        def deliver():
            yield self.sim.timeout(self.config.latency)
            if prev is not None and not prev.processed:
                yield prev
            if self.sim.tracer.enabled:
                self.sim.tracer.instant(
                    "net", f"deliver:{packet.kind.value}",
                    track=f"{self.name}.rx{1 - endpoint}", seq=packet.seq)
            yield dst_inbox.put(packet)

        def deliver_late():
            # Fault-delayed: off the in-order chain, free to reorder.
            yield self.sim.timeout(self.config.latency + extra_delay)
            if self.sim.tracer.enabled:
                self.sim.tracer.instant(
                    "net", f"deliver-late:{packet.kind.value}",
                    track=f"{self.name}.rx{1 - endpoint}", seq=packet.seq)
            yield dst_inbox.put(packet)

        if extra_delay > 0.0:
            self.sim.process(deliver_late(),
                             name=f"{self.name}.deliver-late{packet.seq}")
        else:
            self._last_delivery[endpoint] = self.sim.process(
                deliver(), name=f"{self.name}.deliver{packet.seq}")

    def release_credit(self, consumer_side: int, packet: Packet,
                       vc: Optional[int] = None) -> None:
        """Return the credit a packet held on its way INTO ``consumer_side``
        (i.e. the credit its sender acquired on the opposite direction).
        ``vc`` must be the VC the packet ARRIVED on when a router has
        already re-stamped ``meta["vc"]`` for its next hop.  No-op when
        flow control is disabled."""
        if self.flow is not None:
            if vc is None:
                vc = packet.meta.get("vc", 0)
            self.flow.release(1 - consumer_side, vc)

    def serialization_time(self, wire_bytes: int) -> float:
        return wire_bytes / self.config.bandwidth
