"""Point-to-point network links with in-order delivery.

One :class:`NetLink` direction serializes packets at the link bandwidth and
delivers them, after the propagation latency, into the receiver's inbox
(:class:`~repro.sim.Store`) in exactly the order they were sent — both
EXTOLL and InfiniBand RC guarantee in-order delivery, which the paper's
``pollOnGPU`` / poll-last-element trick depends on (§V-B1).

Fault injection: a link optionally carries a
:class:`~repro.faults.injector.LinkFaultState` in ``self.faults``
(installed by :class:`~repro.faults.FaultInjector`; ``None`` by default,
costing one attribute check).  The state is consulted once per packet
after serialization and may drop it (loss or a downed link), substitute a
corrupted clone, or add extra delay — delayed packets skip the in-order
delivery chain, so they reorder against their neighbors exactly like a
stray packet taking a slow path through a real switch.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import NetworkError
from ..sim import NULL_SPAN, Resource, Simulator, Store
from ..units import GB_PER_S, NS
from .packet import Packet


@dataclass(frozen=True)
class NetLinkConfig:
    bandwidth: float = 5.0 * GB_PER_S   # bytes/second per direction
    latency: float = 550 * NS           # wire + switch traversal, one way

    def __post_init__(self) -> None:
        if self.bandwidth <= 0 or self.latency < 0:
            raise NetworkError("bad link parameters")


class NetLink:
    """A full-duplex cable between two NICs (endpoints 0 and 1)."""

    def __init__(self, sim: Simulator, name: str = "netlink",
                 config: NetLinkConfig | None = None) -> None:
        self.sim = sim
        self.name = name
        self.config = config or NetLinkConfig()
        # Per-direction serializer + receiver inbox.
        self._tx = [Resource(sim, 1, f"{name}.tx0"), Resource(sim, 1, f"{name}.tx1")]
        self.inbox = [Store(sim, name=f"{name}.rx0"), Store(sim, name=f"{name}.rx1")]
        self.packets_sent = [0, 0]
        self.bytes_sent = [0, 0]
        # In-order delivery despite concurrent senders: a delivery chain per
        # direction (each delivery waits on the previous one).
        self._last_delivery = [None, None]
        # Fault-injection state; None (the default) keeps the reliable
        # fabric of the paper at the cost of one attribute check per send.
        self.faults = None

    def send(self, endpoint: int, packet: Packet):
        """Process fragment: transmit ``packet`` from ``endpoint``; returns
        once the last byte has left the NIC (delivery happens later)."""
        if endpoint not in (0, 1):
            raise NetworkError(f"bad endpoint {endpoint}")
        tx = self._tx[endpoint]
        trc = self.sim.tracer
        yield tx.acquire()
        # Span covers the exclusive serialization window of this direction.
        span = (trc.begin("net", packet.kind.value,
                          track=f"{self.name}.tx{endpoint}",
                          seq=packet.seq, bytes=packet.wire_bytes)
                if trc.enabled else NULL_SPAN)
        try:
            yield self.sim.timeout(packet.wire_bytes / self.config.bandwidth)
        finally:
            span.end()
            tx.release()
        self.packets_sent[endpoint] += 1
        self.bytes_sent[endpoint] += packet.wire_bytes
        if trc.enabled:
            trc.metrics.counter("net.packets").inc()
            trc.metrics.counter("net.wire_bytes").inc(packet.wire_bytes)
        extra_delay = 0.0
        if self.faults is not None:
            verdict = self.faults.filter_tx(packet)
            if verdict is None:
                return                      # dropped: no delivery at all
            packet, extra_delay = verdict
        # Chain delivery so packets arrive strictly in send-completion order.
        dst_inbox = self.inbox[1 - endpoint]
        prev = self._last_delivery[endpoint]

        def deliver():
            yield self.sim.timeout(self.config.latency)
            if prev is not None and not prev.processed:
                yield prev
            if self.sim.tracer.enabled:
                self.sim.tracer.instant(
                    "net", f"deliver:{packet.kind.value}",
                    track=f"{self.name}.rx{1 - endpoint}", seq=packet.seq)
            yield dst_inbox.put(packet)

        def deliver_late():
            # Fault-delayed: off the in-order chain, free to reorder.
            yield self.sim.timeout(self.config.latency + extra_delay)
            if self.sim.tracer.enabled:
                self.sim.tracer.instant(
                    "net", f"deliver-late:{packet.kind.value}",
                    track=f"{self.name}.rx{1 - endpoint}", seq=packet.seq)
            yield dst_inbox.put(packet)

        if extra_delay > 0.0:
            self.sim.process(deliver_late(),
                             name=f"{self.name}.deliver-late{packet.seq}")
        else:
            self._last_delivery[endpoint] = self.sim.process(
                deliver(), name=f"{self.name}.deliver{packet.seq}")

    def serialization_time(self, wire_bytes: int) -> float:
        return wire_bytes / self.config.bandwidth
