"""Network packets exchanged between NICs.

A packet carries a functional payload (``data``) plus the metadata the NIC
pipelines need.  ``wire_bytes`` determines serialization time; each fabric
defines its own per-packet header overhead.

Integrity: packets optionally carry a link-layer ``checksum`` (CRC-32 of
the payload).  The default is ``None`` — the reliable-fabric assumption of
the paper — and costs nothing.  The fault injector :mod:`repro.faults`
seals a packet before flipping payload bytes, so receivers can detect the
corruption with :attr:`Packet.is_corrupt` exactly the way real link-layer
CRCs catch bad frames.
"""

from __future__ import annotations

import enum
import itertools
import zlib
from dataclasses import dataclass, field
from typing import Optional


class PacketKind(enum.Enum):
    RMA_PUT = "rma_put"               # EXTOLL put: header + payload
    RMA_GET_REQUEST = "rma_get_req"   # EXTOLL get: header only
    RMA_GET_RESPONSE = "rma_get_rsp"  # EXTOLL responder payload
    IB_RDMA_WRITE = "ib_rdma_write"
    IB_RDMA_READ_REQ = "ib_rdma_read_req"
    IB_RDMA_READ_RSP = "ib_rdma_read_rsp"
    IB_SEND = "ib_send"
    IB_ACK = "ib_ack"
    FABRIC = "fabric"                 # scale-out fabric message (repro.fabrics)


_seq = itertools.count()


@dataclass
class Packet:
    kind: PacketKind
    src_node: int
    dst_node: int
    header_bytes: int
    payload: bytes = b""
    meta: dict = field(default_factory=dict)
    seq: int = field(default_factory=lambda: next(_seq))
    # Link-layer CRC of the payload; None (the default) means "not sealed"
    # and all integrity checks pass for free.
    checksum: Optional[int] = None

    @property
    def wire_bytes(self) -> int:
        return self.header_bytes + len(self.payload)

    # -- integrity ---------------------------------------------------------------
    def compute_checksum(self) -> int:
        return zlib.crc32(self.payload)

    def seal(self) -> "Packet":
        """Stamp the link-layer CRC of the current payload."""
        self.checksum = self.compute_checksum()
        return self

    @property
    def is_corrupt(self) -> bool:
        """True iff the packet was sealed and the payload no longer matches
        its CRC.  Unsealed packets (the default, zero-cost path) are never
        corrupt."""
        return (self.checksum is not None
                and self.checksum != zlib.crc32(self.payload))

    def clone(self, payload: Optional[bytes] = None) -> "Packet":
        """An independent copy (fresh trace seq) — used by the fault
        injector to corrupt a delivery without touching the sender's
        retransmission copy, and by retransmission engines to re-send."""
        return Packet(self.kind, self.src_node, self.dst_node,
                      self.header_bytes,
                      self.payload if payload is None else payload,
                      dict(self.meta), checksum=self.checksum)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Packet {self.kind.value} {self.src_node}->{self.dst_node} "
                f"{len(self.payload)}B>")
