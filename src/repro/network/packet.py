"""Network packets exchanged between NICs.

A packet carries a functional payload (``data``) plus the metadata the NIC
pipelines need.  ``wire_bytes`` determines serialization time; each fabric
defines its own per-packet header overhead.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field


class PacketKind(enum.Enum):
    RMA_PUT = "rma_put"               # EXTOLL put: header + payload
    RMA_GET_REQUEST = "rma_get_req"   # EXTOLL get: header only
    RMA_GET_RESPONSE = "rma_get_rsp"  # EXTOLL responder payload
    IB_RDMA_WRITE = "ib_rdma_write"
    IB_RDMA_READ_REQ = "ib_rdma_read_req"
    IB_RDMA_READ_RSP = "ib_rdma_read_rsp"
    IB_SEND = "ib_send"
    IB_ACK = "ib_ack"


_seq = itertools.count()


@dataclass
class Packet:
    kind: PacketKind
    src_node: int
    dst_node: int
    header_bytes: int
    payload: bytes = b""
    meta: dict = field(default_factory=dict)
    seq: int = field(default_factory=lambda: next(_seq))

    @property
    def wire_bytes(self) -> int:
        return self.header_bytes + len(self.payload)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Packet {self.kind.value} {self.src_node}->{self.dst_node} "
                f"{len(self.payload)}B>")
