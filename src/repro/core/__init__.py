"""The paper's contribution: GPU-resident put/get APIs on two NICs, the four
control configurations per fabric, and the microbenchmark programs that
evaluate them."""

from .bandwidth import default_message_count, run_extoll_bandwidth, run_ib_bandwidth
from .counters import (
    measure_extoll_polling_counters,
    measure_ib_buffer_counters,
    measure_single_op_instructions,
)
from .future import (
    gpu_rma_post_wide,
    run_future_extoll_pingpong,
    setup_future_extoll_connection,
)
from .msglib import (
    Channel,
    ChannelEnd,
    create_channel,
    create_channel_between,
    gpu_recv,
    gpu_recv_ready,
    gpu_send,
)
from .gpu_rma import (
    GpuNotificationCursor,
    gpu_rma_poll_last_element,
    gpu_rma_post,
    gpu_rma_wait_notification,
)
from .gpu_verbs import (
    GpuCqConsumer,
    gpu_poll_cq,
    gpu_poll_last_element,
    gpu_post_recv,
    gpu_post_send,
    gpu_wait_cq,
)
from .message_rate import run_extoll_message_rate, run_ib_message_rate
from .modes import ExtollMode, FabricKind, IbMode, RateMethod
from .pingpong import run_extoll_pingpong, run_ib_pingpong
from .results import (
    BandwidthPoint,
    CounterReport,
    LatencyPoint,
    RatePoint,
    Series,
    render_bandwidth_table,
    render_counter_table,
    render_latency_table,
    render_rate_table,
)
from .setup import (
    ExtollConnection,
    ExtollEnd,
    IbConnection,
    IbEnd,
    setup_extoll_connection,
    setup_extoll_connections,
    setup_ib_connection,
    setup_ib_connections,
)

__all__ = [
    "ExtollMode", "IbMode", "RateMethod", "FabricKind",
    "gpu_rma_post_wide", "run_future_extoll_pingpong",
    "setup_future_extoll_connection",
    "Channel", "ChannelEnd", "create_channel", "create_channel_between",
    "gpu_send", "gpu_recv", "gpu_recv_ready",
    "GpuNotificationCursor", "gpu_rma_post", "gpu_rma_wait_notification",
    "gpu_rma_poll_last_element",
    "GpuCqConsumer", "gpu_post_send", "gpu_post_recv", "gpu_poll_cq",
    "gpu_wait_cq", "gpu_poll_last_element",
    "run_extoll_pingpong", "run_ib_pingpong",
    "run_extoll_bandwidth", "run_ib_bandwidth", "default_message_count",
    "run_extoll_message_rate", "run_ib_message_rate",
    "measure_extoll_polling_counters", "measure_ib_buffer_counters",
    "measure_single_op_instructions",
    "LatencyPoint", "BandwidthPoint", "RatePoint", "Series", "CounterReport",
    "render_latency_table", "render_bandwidth_table", "render_rate_table",
    "render_counter_table",
    "ExtollConnection", "ExtollEnd", "IbConnection", "IbEnd",
    "setup_extoll_connection", "setup_extoll_connections",
    "setup_ib_connection", "setup_ib_connections",
]
