"""The paper's proposed future put/get interface (§VI), implemented.

The discussion closes with three claims for future GPU networking APIs:

1. **small footprint** — notification structures must be small because GPU
   memory is scarce *and* they are inevitable,
2. **thread-collaborative interfaces** — posting must match the GPU's
   execution model instead of a single-thread scalar store sequence,
3. **minimal PCIe control traffic** — both WR generation and the
   notification queues the NIC updates must stay off the PCIe hot path.

This module builds that API on the EXTOLL substrate:

* :func:`gpu_rma_post_wide` posts the 192-bit descriptor as ONE
  warp-coalesced store (claim 2) instead of three dependent scalar stores,
* :func:`setup_future_extoll_connection` opens ports whose notification
  queues live in **GPU device memory** (claims 1 and 3): the NIC DMA-writes
  the 16-byte records over PCIe once, and the polling loop runs entirely
  out of the L2,
* :func:`run_future_extoll_pingpong` is the dev2dev-direct program on the
  new interface, so the gain is measured under identical semantics
  (explicit requester/completer notifications, no last-element trick).
"""

from __future__ import annotations

from ..cluster import Cluster
from ..errors import BenchmarkError
from ..extoll import NotifyFlags, RmaOp, RmaWorkRequest
from ..gpu import ThreadCtx
from .gpu_rma import (
    POST_ASSEMBLE_COST,
    GpuNotificationCursor,
    gpu_rma_wait_notification,
)
from .results import LatencyPoint
from .setup import ExtollConnection, ExtollEnd

# A warp assembles descriptor words in parallel: the packing work divides
# across lanes instead of serializing on one thread.
WIDE_POST_ASSEMBLE_COST = max(6, POST_ASSEMBLE_COST // 3)


def gpu_rma_post_wide(ctx: ThreadCtx, page_addr: int, wr: RmaWorkRequest):
    """Post a put/get descriptor as one coalesced 24-byte store (§VI claim
    2).  Returns the simulated time spent."""
    start = ctx.sim.now
    yield from ctx.alu(WIDE_POST_ASSEMBLE_COST)
    yield from ctx.store_wide(page_addr, wr.encode())
    return ctx.sim.now - start


def setup_future_extoll_connection(cluster: Cluster, buf_bytes: int,
                                   port_id: int | None = None) -> ExtollConnection:
    """Like :func:`repro.core.setup_extoll_connection`, but the notification
    queues are allocated in each GPU's device memory (§VI claims 1/3)."""
    from ..memory import AddressRange

    ends = []
    ports = [
        cluster.a.nic.open_port(port_id,
                                notification_alloc=cluster.a.gpu.allocator),
        cluster.b.nic.open_port(port_id,
                                notification_alloc=cluster.b.gpu.allocator),
    ]
    for node, port in zip(cluster.nodes, ports):
        send_buf = node.gpu_malloc(buf_bytes)
        recv_buf = node.gpu_malloc(buf_bytes)
        flag_page = node.host_malloc(4096)
        node.host_mem.fill(flag_page.base, flag_page.size, 0)
        end = ExtollEnd(
            node=node, port=port,
            send_buf=send_buf, recv_buf=recv_buf,
            send_nla=node.nic.register_memory(send_buf),
            recv_nla=node.nic.register_memory(recv_buf),
            flag_page=flag_page,
        )
        node.gpu.map_mmio(AddressRange(port.page_addr, 4096))
        # No host mappings needed: queues already live in device memory.
        node.gpu.map_host_memory(flag_page)
        ends.append(end)
    return ExtollConnection(*ends)


def run_future_extoll_pingpong(cluster: Cluster, conn: ExtollConnection,
                               size: int, iterations: int = 30,
                               warmup: int = 3) -> LatencyPoint:
    """dev2dev-direct semantics on the future interface: wide posting plus
    notification polling that hits in the L2."""
    if size <= 0:
        raise BenchmarkError(f"message size must be positive, got {size}")
    if size > conn.a.send_buf.size:
        raise BenchmarkError(f"size {size} exceeds buffer {conn.a.send_buf.size}")
    if iterations < 1 or warmup < 0:
        raise BenchmarkError("need iterations >= 1 and warmup >= 0")
    total = iterations + warmup
    flags = NotifyFlags.REQUESTER | NotifyFlags.COMPLETER
    timing = {"start": 0.0, "end": 0.0, "post": 0.0, "poll": 0.0}

    def wr_for(end: ExtollEnd, peer: ExtollEnd) -> RmaWorkRequest:
        return RmaWorkRequest(op=RmaOp.PUT, port=end.port.port_id,
                              dst_node=peer.node.node_id,
                              src_nla=end.send_nla.base,
                              dst_nla=peer.recv_nla.base, size=size,
                              flags=flags)

    wr_ping = wr_for(conn.a, conn.b)
    wr_pong = wr_for(conn.b, conn.a)

    def ping(ctx):
        req_cur = conn.a.requester_cursor()
        cmpl_cur = conn.a.completer_cursor()
        for i in range(1, total + 1):
            if i == warmup + 1:
                timing["start"] = ctx.sim.now
            t0 = ctx.sim.now
            yield from gpu_rma_post_wide(ctx, conn.a.port.page_addr, wr_ping)
            t1 = ctx.sim.now
            yield from gpu_rma_wait_notification(ctx, req_cur)
            yield from gpu_rma_wait_notification(ctx, cmpl_cur)
            if i > warmup:
                timing["post"] += t1 - t0
                timing["poll"] += ctx.sim.now - t1
        timing["end"] = ctx.sim.now

    def pong(ctx):
        req_cur = conn.b.requester_cursor()
        cmpl_cur = conn.b.completer_cursor()
        for i in range(1, total + 1):
            yield from gpu_rma_wait_notification(ctx, cmpl_cur)
            yield from gpu_rma_post_wide(ctx, conn.b.port.page_addr, wr_pong)
            yield from gpu_rma_wait_notification(ctx, req_cur)

    handles = [conn.a.node.gpu.launch(ping), conn.b.node.gpu.launch(pong)]
    cluster.sim.run_until_complete(*handles, limit=cluster.sim.now + 600.0)
    elapsed = timing["end"] - timing["start"]
    return LatencyPoint(size=size, latency=elapsed / (2 * iterations),
                        post_time=timing["post"] / iterations,
                        poll_time=timing["poll"] / iterations)
