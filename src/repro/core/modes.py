"""The communication configurations evaluated in the paper (§V)."""

from __future__ import annotations

import enum


class FabricKind(enum.Enum):
    EXTOLL = "extoll"
    INFINIBAND = "infiniband"


class ExtollMode(enum.Enum):
    """EXTOLL latency/bandwidth configurations (Fig. 1)."""

    DIRECT = "dev2dev-direct"              # GPU posts, GPU polls notifications
    POLL_ON_GPU = "dev2dev-pollOnGPU"      # GPU posts, polls last element in device mem
    ASSISTED = "dev2dev-assisted"          # GPU triggers a CPU proxy via a flag
    HOST_CONTROLLED = "dev2dev-hostControlled"  # CPU controls everything


class IbMode(enum.Enum):
    """InfiniBand latency/bandwidth configurations (Fig. 4)."""

    BUF_ON_GPU = "dev2dev-bufOnGPU"        # GPU controls; WQ/CQ rings in GPU memory
    BUF_ON_HOST = "dev2dev-bufOnHost"      # GPU controls; rings in host memory
    ASSISTED = "dev2dev-assisted"
    HOST_CONTROLLED = "dev2dev-hostControlled"


class RateMethod(enum.Enum):
    """Message-rate methods (Figs. 2 and 5)."""

    BLOCKS = "dev2dev-blocks"              # one CUDA block per connection
    KERNELS = "dev2dev-kernels"            # one single-block kernel per stream
    ASSISTED = "dev2dev-assisted"          # one CPU proxy serves all blocks
    HOST_CONTROLLED = "dev2dev-hostControlled"
    # Offload-engine methods (repro.engine): ONE persistent proxy block
    # multiplexes every connection through the engine posting paths.
    ENGINE = "dev2dev-engine"              # warp-parallel generation only
    ENGINE_BATCHED = "dev2dev-engineBatched"  # + doorbell coalescing + aggregation
