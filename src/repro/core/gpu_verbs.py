"""The GPU-resident InfiniBand Verbs API (§IV-B).

``ibv_post_send``, ``ibv_post_recv`` and ``ibv_poll_cq`` ported to device
code.  The posting path shows why InfiniBand is expensive to drive from a
GPU thread (§V-B3):

* the 64-byte WQE must be assembled in **big-endian**: every dynamic field
  (addresses, size) costs byteswap instruction sequences; constant fields
  can be pre-converted once (``optimized=True``, the paper's optimization),
* old queue elements must be *stamped* so the HCA prefetcher recognizes
  reused slots,
* the WQE is written to the queue buffer (device or host memory), a memory
  fence orders it, and only then is the doorbell register rung — a second
  PCIe store.

All of this is executed by a *single thread*: "most of these instructions
have to be performed by a single thread, since the work request generation
cannot be parallelized" (§V-B3).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import VerbsError
from ..gpu import ThreadCtx
from ..ib import CQE_BYTES, Cqe, Wqe
from ..sim import NULL_SPAN
from ..ib.hca import Hca, encode_doorbell
from ..ib.qp import QueuePair
from ..ib.wqe import (
    CQE_PARSE_BASE_COST,
    CQ_QP_LOOKUP_COST,
    CQE_CONSUME_COST,
    ENDIAN_SWAP_COST,
    WQE_STAMP_COST,
    poll_cq_instruction_cost,
    post_send_instruction_cost,
    post_send_instruction_cost_static_optimized,
)

# Memory operations issued by the post path (they count as instructions on
# their own): 8x u64 WQE stores + 1 doorbell store + fence.
_POST_MEMORY_INSTRUCTIONS = 10
_POLL_MEMORY_INSTRUCTIONS = 3  # word1 peek + CQE load + invalidating store


@dataclass
class GpuCqConsumer:
    """Device-side CQ consumer state."""

    cq_buffer_base: int
    entries: int
    consumer_index: int = 0

    def slot_addr(self, index: int | None = None) -> int:
        idx = self.consumer_index if index is None else index
        return self.cq_buffer_base + (idx % self.entries) * CQE_BYTES


def gpu_post_send(ctx: ThreadCtx, hca: Hca, qp: QueuePair, wqe: Wqe,
                  producer_index: int, optimized: bool = True):
    """Post one send WR from a single device thread.  Returns the new SQ
    producer index.

    ``optimized`` selects the paper's static-conversion variant, where only
    the per-request fields (addresses, size) are byte-swapped.
    """
    qp.require_rts()
    trc = ctx.sim.tracer
    span = (trc.begin("ib.api", "gpu_post_send", track=ctx.track,
                      qp=qp.qp_num, bytes=wqe.length, optimized=optimized)
            if trc.enabled else NULL_SPAN)
    total = (post_send_instruction_cost_static_optimized() if optimized
             else post_send_instruction_cost())
    yield from ctx.alu(total - _POST_MEMORY_INSTRUCTIONS)
    # Write the WQE into the ring (device memory: through L2; host memory:
    # posted PCIe stores), as eight 64-bit stores.
    slot = qp.sq_slot_addr(producer_index)
    raw = wqe.encode()
    for word in range(8):
        yield from ctx.store(slot + word * 8, raw[word * 8:(word + 1) * 8])
    # Order the WQE ahead of the doorbell, then ring it.
    yield from ctx.fence_system()
    yield from ctx.store_u64(hca.doorbell_addr(qp),
                             encode_doorbell(producer_index + 1))
    span.end()
    return producer_index + 1


def gpu_post_recv(ctx: ThreadCtx, hca: Hca, qp: QueuePair, wqe: Wqe,
                  producer_index: int):
    """Post one receive WR from a device thread ("this would add a lot of
    overhead to the GPU due to the generation of receive work requests",
    §V-B1 — provided for completeness; the GPU paths poll the last element
    instead)."""
    qp.require_rtr()
    yield from ctx.alu(140)
    slot = qp.rq_slot_addr(producer_index)
    raw = wqe.encode()
    for word in range(8):
        yield from ctx.store(slot + word * 8, raw[word * 8:(word + 1) * 8])
    yield from ctx.fence_system()
    yield from ctx.store_u64(hca.doorbell_addr(qp),
                             encode_doorbell(producer_index + 1, is_rq=True))
    return producer_index + 1


def gpu_poll_cq(ctx: ThreadCtx, consumer: GpuCqConsumer):
    """One non-blocking CQ poll from a device thread.  Returns a
    :class:`Cqe` or ``None``.

    A successful poll costs the full ~283 instructions: CQE parse, QP-list
    lookup, consumer bookkeeping (§V-B3).  A miss costs only the peek.
    """
    word1 = yield from ctx.load(consumer.slot_addr() + 8, 8)
    yield from ctx.alu(6)
    if not Cqe.is_valid_word(int.from_bytes(word1, "big")):
        return None
    yield from ctx.alu(poll_cq_instruction_cost() - _POLL_MEMORY_INSTRUCTIONS - 6)
    raw = yield from ctx.load(consumer.slot_addr(), CQE_BYTES)
    cqe = Cqe.decode(raw)
    yield from ctx.store_u64(consumer.slot_addr() + 8, 0)
    consumer.consumer_index += 1
    return cqe


def gpu_wait_cq(ctx: ThreadCtx, consumer: GpuCqConsumer,
                max_polls: int | None = 1_000_000):
    """Spin :func:`gpu_poll_cq` until a completion arrives.  Returns
    ``(Cqe, polls)``."""
    trc = ctx.sim.tracer
    # Polling layer ("ib.poll"): per-message span volume, filtered out of
    # the telemetry flight recorder by default (see gpu_rma_wait_notification).
    traced = trc.wants("ib.poll")
    span = (trc.begin("ib.poll", "gpu_wait_cq", track=ctx.track)
            if traced else NULL_SPAN)
    polls = 0
    while True:
        cqe = yield from gpu_poll_cq(ctx, consumer)
        polls += 1
        if cqe is not None:
            span.end(polls=polls)
            if traced:
                trc.metrics.histogram("ib.gpu_cq_polls").observe(polls)
            return cqe, polls
        if max_polls is not None and polls >= max_polls:
            raise VerbsError(f"GPU CQ wait exceeded {max_polls} polls")
        if polls > 64:  # long wait: progressive backoff
            yield ctx.sim.timeout(min(1e-6 * (2 ** ((polls - 64) // 32)), 50e-6))


def gpu_poll_last_element(ctx: ThreadCtx, flag_addr: int, expected: int,
                          max_polls: int | None = 5_000_000):
    """Poll the last received element (in-order RC delivery makes this safe,
    §V-B1).  Returns the poll count."""
    _value, polls = yield from ctx.spin_until_u64(
        flag_addr, lambda v: v == expected, loop_instructions=4,
        max_polls=max_polls)
    return polls
