"""Sustained message-rate microbenchmarks (Figs. 2 and 5).

64-byte messages over 1..32 connection pairs.  "For every port that is
opened a new requester page on the PCIe BAR is allocated avoiding race
conditions when multiple descriptors are posted in parallel" (§V-A2) — each
block, kernel, or host loop owns a private connection.

Methods:

* ``dev2dev-blocks``  — one kernel, one CUDA block per connection,
* ``dev2dev-kernels`` — one single-block kernel per stream per connection,
* ``dev2dev-assisted`` — blocks raise flags; ONE CPU proxy thread serves all
  connections round-robin ("If one block or kernel has a communication
  request, the thread is blocked for all other aspirants"),
* ``dev2dev-hostControlled`` — one CPU thread drives all connections,
  pipelining posts and reaping notifications/CQEs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..cluster import Cluster
from ..errors import BenchmarkError
from ..extoll import (
    NotifyFlags,
    RmaOp,
    RmaWorkRequest,
    rma_post,
    rma_try_notification,
    rma_wait_notification,
)
from ..ib import IbOpcode, Wqe, ibv_poll_cq, ibv_post_send, ibv_wait_cq
from ..sim import NULL_SPAN
from .gpu_rma import gpu_rma_post, gpu_rma_wait_notification
from .gpu_verbs import gpu_post_send, gpu_wait_cq
from .modes import RateMethod
from .pingpong import FLAG_REQUEST, FLAG_SENT
from .results import RatePoint
from .setup import ExtollConnection, IbConnection

MESSAGE_BYTES = 64


@dataclass
class _RateTiming:
    starts: List[float] = field(default_factory=list)
    ends: List[float] = field(default_factory=list)

    @property
    def elapsed(self) -> float:
        return max(self.ends) - min(self.starts)


def _check(connections, per_connection):
    if not connections:
        raise BenchmarkError("need at least one connection")
    if per_connection < 1:
        raise BenchmarkError("need at least one message per connection")


# =============================================================================
# EXTOLL (Fig. 2)
# =============================================================================

def _extoll_rate_wr(conn: ExtollConnection) -> RmaWorkRequest:
    return RmaWorkRequest(
        op=RmaOp.PUT, port=conn.a.port.port_id, dst_node=1,
        src_nla=conn.a.send_nla.base, dst_nla=conn.b.recv_nla.base,
        size=MESSAGE_BYTES, flags=NotifyFlags.REQUESTER)


def run_extoll_message_rate(cluster: Cluster,
                            connections: List[ExtollConnection],
                            method: RateMethod,
                            per_connection: int = 120) -> RatePoint:
    _check(connections, per_connection)
    timing = _RateTiming()
    for conn in connections:
        conn.a.reset_flags()
        conn.b.reset_flags()

    if method is RateMethod.BLOCKS:
        handles = _extoll_rate_blocks(cluster, connections, per_connection,
                                      timing, kernels=False)
    elif method is RateMethod.KERNELS:
        handles = _extoll_rate_blocks(cluster, connections, per_connection,
                                      timing, kernels=True)
    elif method is RateMethod.ASSISTED:
        handles = _extoll_rate_assisted(cluster, connections, per_connection,
                                        timing)
    elif method is RateMethod.HOST_CONTROLLED:
        handles = _extoll_rate_host(cluster, connections, per_connection,
                                    timing)
    elif method in (RateMethod.ENGINE, RateMethod.ENGINE_BATCHED):
        handles = _extoll_rate_engine(cluster, connections, per_connection,
                                      timing, method)
    else:  # pragma: no cover
        raise BenchmarkError(f"unknown method {method}")

    trc = cluster.sim.tracer
    bench = (trc.begin("bench", f"message-rate:{method.value}", track="bench",
                       connections=len(connections),
                       per_connection=per_connection)
             if trc.enabled else NULL_SPAN)
    cluster.sim.run_until_complete(*handles, limit=cluster.sim.now + 600.0)
    bench.end()
    return RatePoint(connections=len(connections),
                     messages=len(connections) * per_connection,
                     elapsed=timing.elapsed)


def _extoll_rate_engine(cluster: Cluster, connections: List[ExtollConnection],
                        per_connection: int, timing: _RateTiming,
                        method: RateMethod) -> List:
    """The offload-engine methods: one persistent proxy block multiplexes
    every connection (import deferred — repro.engine builds on this
    module)."""
    from ..engine import EngineConfig, engine_extoll_rate_handles

    config = (EngineConfig.all_on() if method is RateMethod.ENGINE_BATCHED
              else EngineConfig.warp_only())
    return engine_extoll_rate_handles(cluster, connections, per_connection,
                                      timing, config)


def _extoll_block_body(conn: ExtollConnection, per_connection: int,
                       timing: _RateTiming):
    wr = _extoll_rate_wr(conn)

    def body(ctx):
        req_cur = conn.a.requester_cursor()
        timing.starts.append(ctx.sim.now)
        for _ in range(per_connection):
            yield from gpu_rma_post(ctx, conn.a.port.page_addr, wr)
            yield from gpu_rma_wait_notification(ctx, req_cur)
        timing.ends.append(ctx.sim.now)

    return body


def _extoll_rate_blocks(cluster, connections, per_connection, timing, kernels):
    gpu = connections[0].a.node.gpu
    bodies = [_extoll_block_body(c, per_connection, timing)
              for c in connections]
    if kernels:
        # One single-block kernel per stream (§V-A2).
        return [gpu.launch(body, grid=1, block=1, stream=gpu.stream())
                for body in bodies]

    # One kernel, one block per connection: block_idx selects the body.
    def dispatch(ctx):
        yield from bodies[ctx.block_idx](ctx)

    return [gpu.launch(dispatch, grid=len(connections), block=1)]


def _extoll_rate_assisted(cluster, connections, per_connection, timing):
    """One CPU proxy serves every block's requests round-robin."""
    gpu = connections[0].a.node.gpu
    cpu = connections[0].a.node.cpu

    def gpu_block(ctx):
        conn = connections[ctx.block_idx]
        flags = conn.a.flag_page.base
        timing.starts.append(ctx.sim.now)
        for i in range(1, per_connection + 1):
            yield from ctx.store_u64(flags + FLAG_REQUEST, i)
            yield from ctx.spin_until_u64(flags + FLAG_SENT,
                                          lambda v, i=i: v == i)
        timing.ends.append(ctx.sim.now)

    def proxy(ctx):
        wrs = [_extoll_rate_wr(c) for c in connections]
        cursors = [c.a.requester_cursor() for c in connections]
        served = [0] * len(connections)
        acked = [0] * len(connections)
        while any(s < per_connection for s in served):
            progressed = False
            for j, conn in enumerate(connections):
                if served[j] >= per_connection:
                    continue
                flags = conn.a.flag_page.base
                req = yield from ctx.read_u64(flags + FLAG_REQUEST)
                if req > acked[j]:
                    # Serve this block, blocking all other aspirants (§V-B2).
                    yield from rma_post(ctx, conn.a.port.page_addr, wrs[j])
                    yield from rma_wait_notification(ctx, cursors[j])
                    acked[j] += 1
                    served[j] += 1
                    yield from ctx.write_u64(flags + FLAG_SENT, acked[j])
                    progressed = True
            if not progressed:
                yield from ctx.sleep(0.5e-6)

    return [gpu.launch(gpu_block, grid=len(connections), block=1),
            cpu.spawn(proxy, name="rate-proxy")]


def _extoll_rate_host(cluster, connections, per_connection, timing):
    """One CPU thread pipelines posts across every port, reaping requester
    notifications to bound per-port outstanding descriptors."""
    cpu = connections[0].a.node.cpu

    def body(ctx):
        wrs = [_extoll_rate_wr(c) for c in connections]
        cursors = [c.a.requester_cursor() for c in connections]
        posted = [0] * len(connections)
        reaped = [0] * len(connections)
        timing.starts.append(ctx.sim.now)
        while any(r < per_connection for r in reaped):
            for j, conn in enumerate(connections):
                if posted[j] < per_connection and posted[j] - reaped[j] < 2:
                    yield from rma_post(ctx, conn.a.port.page_addr, wrs[j])
                    posted[j] += 1
                if reaped[j] < posted[j]:
                    note = yield from rma_try_notification(ctx, cursors[j])
                    if note is not None:
                        reaped[j] += 1
        timing.ends.append(ctx.sim.now)

    return [cpu.spawn(body, name="rate-host")]


# =============================================================================
# InfiniBand (Fig. 5)
# =============================================================================

def run_ib_message_rate(cluster: Cluster, connections: List[IbConnection],
                        method: RateMethod,
                        per_connection: int = 120) -> RatePoint:
    _check(connections, per_connection)
    timing = _RateTiming()
    for conn in connections:
        conn.a.reset_flags()
        conn.b.reset_flags()

    if method is RateMethod.BLOCKS:
        handles = _ib_rate_blocks(cluster, connections, per_connection,
                                  timing, kernels=False)
    elif method is RateMethod.KERNELS:
        handles = _ib_rate_blocks(cluster, connections, per_connection,
                                  timing, kernels=True)
    elif method is RateMethod.ASSISTED:
        handles = _ib_rate_assisted(cluster, connections, per_connection,
                                    timing)
    elif method is RateMethod.HOST_CONTROLLED:
        handles = _ib_rate_host(cluster, connections, per_connection, timing)
    elif method in (RateMethod.ENGINE, RateMethod.ENGINE_BATCHED):
        from ..engine import EngineConfig, engine_ib_rate_handles

        config = (EngineConfig.all_on() if method is RateMethod.ENGINE_BATCHED
                  else EngineConfig.warp_only())
        handles = engine_ib_rate_handles(cluster, connections, per_connection,
                                         timing, config)
    else:  # pragma: no cover
        raise BenchmarkError(f"unknown method {method}")

    trc = cluster.sim.tracer
    bench = (trc.begin("bench", f"message-rate:{method.value}", track="bench",
                       connections=len(connections),
                       per_connection=per_connection)
             if trc.enabled else NULL_SPAN)
    cluster.sim.run_until_complete(*handles, limit=cluster.sim.now + 600.0)
    bench.end()
    return RatePoint(connections=len(connections),
                     messages=len(connections) * per_connection,
                     elapsed=timing.elapsed)


def _ib_rate_wqe(conn: IbConnection, wr_id: int) -> Wqe:
    return Wqe(opcode=IbOpcode.RDMA_WRITE, wr_id=wr_id,
               local_addr=conn.a.send_buf.base, lkey=conn.a.lkey,
               length=MESSAGE_BYTES, remote_addr=conn.a.remote_recv_addr,
               rkey=conn.a.rkey_remote)


def _ib_block_body(conn: IbConnection, per_connection: int,
                   timing: _RateTiming):
    def body(ctx):
        consumer = conn.a.send_cq_consumer()
        timing.starts.append(ctx.sim.now)
        for i in range(1, per_connection + 1):
            conn.a.sq_index = yield from gpu_post_send(
                ctx, conn.a.node.nic, conn.a.qp, _ib_rate_wqe(conn, i),
                conn.a.sq_index)
            yield from gpu_wait_cq(ctx, consumer)
        timing.ends.append(ctx.sim.now)

    return body


def _ib_rate_blocks(cluster, connections, per_connection, timing, kernels):
    gpu = connections[0].a.node.gpu
    bodies = [_ib_block_body(c, per_connection, timing) for c in connections]
    if kernels:
        return [gpu.launch(body, grid=1, block=1, stream=gpu.stream())
                for body in bodies]

    def dispatch(ctx):
        yield from bodies[ctx.block_idx](ctx)

    return [gpu.launch(dispatch, grid=len(connections), block=1)]


def _ib_rate_assisted(cluster, connections, per_connection, timing):
    gpu = connections[0].a.node.gpu
    cpu = connections[0].a.node.cpu

    def gpu_block(ctx):
        conn = connections[ctx.block_idx]
        flags = conn.a.flag_page.base
        timing.starts.append(ctx.sim.now)
        for i in range(1, per_connection + 1):
            yield from ctx.store_u64(flags + FLAG_REQUEST, i)
            yield from ctx.spin_until_u64(flags + FLAG_SENT,
                                          lambda v, i=i: v == i)
        timing.ends.append(ctx.sim.now)

    def proxy(ctx):
        consumers = [c.a.host_send_cq_consumer() for c in connections]
        served = [0] * len(connections)
        while any(s < per_connection for s in served):
            progressed = False
            for j, conn in enumerate(connections):
                if served[j] >= per_connection:
                    continue
                flags = conn.a.flag_page.base
                req = yield from ctx.read_u64(flags + FLAG_REQUEST)
                if req > served[j]:
                    conn.a.sq_index = yield from ibv_post_send(
                        ctx, conn.a.node.nic, conn.a.qp,
                        _ib_rate_wqe(conn, served[j] + 1), conn.a.sq_index)
                    yield from ibv_wait_cq(ctx, consumers[j])
                    served[j] += 1
                    yield from ctx.write_u64(flags + FLAG_SENT, served[j])
                    progressed = True
            if not progressed:
                yield from ctx.sleep(0.5e-6)

    return [gpu.launch(gpu_block, grid=len(connections), block=1),
            cpu.spawn(proxy, name="ib-rate-proxy")]


def _ib_rate_host(cluster, connections, per_connection, timing):
    cpu = connections[0].a.node.cpu

    def body(ctx):
        consumers = [c.a.host_send_cq_consumer() for c in connections]
        posted = [0] * len(connections)
        reaped = [0] * len(connections)
        timing.starts.append(ctx.sim.now)
        while any(r < per_connection for r in reaped):
            for j, conn in enumerate(connections):
                if posted[j] < per_connection and posted[j] - reaped[j] < 4:
                    conn.a.sq_index = yield from ibv_post_send(
                        ctx, conn.a.node.nic, conn.a.qp,
                        _ib_rate_wqe(conn, posted[j] + 1), conn.a.sq_index)
                    posted[j] += 1
                if reaped[j] < posted[j]:
                    cqe = yield from ibv_poll_cq(ctx, consumers[j])
                    if cqe is not None:
                        reaped[j] += 1
        timing.ends.append(ctx.sim.now)

    return [cpu.spawn(body, name="ib-rate-host")]
