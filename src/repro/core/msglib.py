"""A GPU-resident two-sided messaging layer over put/get — the paper's
stated future work ("we gear to work towards GPU communication libraries
that meet the previously stated claims", §VIII).

Design, following the §VI claims:

* **claim 1 (small footprint)** — per channel direction: a ring of ``slots``
  fixed-size slots in the *receiver's* device memory plus one 8-byte credit
  word in the *sender's* device memory.  No notification queues at all.
* **claim 2 (thread-collaborative)** — descriptors are posted with the wide
  store of :mod:`repro.core.future`.
* **claim 3 (minimal PCIe control traffic)** — all polling (message arrival,
  credit return) happens in device memory through the L2; the only PCIe
  traffic a message costs is its payload put and, every ``slots/2``
  messages, one 8-byte credit-return put.

Wire format of a slot: ``payload .. | header:u64`` where
``header = (seq << 16) | length``.  EXTOLL delivers puts in order, so the
header landing implies the payload landed (§V-B1's last-element argument).
Messages up to ``slot_size - 8`` bytes travel in one slot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, TYPE_CHECKING

from ..cluster import Cluster
from ..errors import BenchmarkError
from ..extoll import NotifyFlags, RmaOp, RmaWorkRequest
from ..gpu import ThreadCtx
from ..memory import AddressRange
from .future import gpu_rma_post_wide

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..extoll import RmaPort
    from ..node import Node

_HEADER_BYTES = 8
_SEQ_SHIFT = 16
_LEN_MASK = (1 << _SEQ_SHIFT) - 1


@dataclass
class ChannelEnd:
    """One direction of a channel, as seen by its *sender*.

    The receiver uses the same object through :func:`gpu_recv`; device code
    on each node only ever touches addresses local to (or mapped into) its
    own GPU.
    """

    # Topology.
    src_node_id: int
    dst_node_id: int
    port_id: int
    page_addr: int                 # sender-side BAR requester page
    # Sender-local resources.
    staging: AddressRange          # device memory the payload is built in
    staging_nla: AddressRange
    credit_word: AddressRange      # device memory; receiver puts credits here
    credit_word_nla: AddressRange
    # Receiver-local resources (NLAs are what the sender addresses).
    ring: AddressRange             # device memory ring in the receiver GPU
    ring_nla: AddressRange
    slot_size: int
    slots: int
    # Receiver-side scratch for credit-return puts (in the receiver's GPU,
    # i.e. local to whoever calls gpu_recv on this end's messages).
    credit_staging: AddressRange = None
    credit_staging_nla: AddressRange = None
    # Progress counters (software state).
    next_seq: int = 1              # sender: next message sequence number
    consumed: int = 0              # receiver: messages taken out of the ring
    credits_returned: int = 0      # receiver: last credit value put back
    # Flow control cadence: credits go back every this-many consumed
    # messages.  slots//2 keeps control traffic minimal (§VI-3); reliable
    # channels use 1 so the credit word doubles as a cumulative ACK.
    credit_interval: int = 0       # 0 = default slots//2 cadence
    # Reliability engine (repro.faults.reliability.ChannelReliability) for
    # this direction, or None on the default lossless fabric.
    reliability: Optional[object] = None
    # The sender-side RMA port object (its notification queues serve the
    # notified send/recv variants used by repro.collectives).
    port: Optional["RmaPort"] = None

    @property
    def payload_capacity(self) -> int:
        return self.slot_size - _HEADER_BYTES

    def slot_offset(self, seq: int) -> int:
        return ((seq - 1) % self.slots) * self.slot_size


@dataclass
class Channel:
    """A bidirectional channel between two nodes: one ring per direction."""

    a_to_b: ChannelEnd
    b_to_a: ChannelEnd

    def end_for_sender(self, node_id: int) -> ChannelEnd:
        return self.a_to_b if node_id == self.a_to_b.src_node_id else self.b_to_a

    def end_for_receiver(self, node_id: int) -> ChannelEnd:
        return self.a_to_b if node_id == self.a_to_b.dst_node_id else self.b_to_a


def create_channel_between(cluster: Cluster, src: "Node", dst: "Node",
                           slot_size: int = 256, slots: int = 16,
                           port_id: Optional[int] = None,
                           map_notifications: bool = False,
                           control_space: str = "gpu",
                           reliable: bool = False,
                           reliability_config=None,
                           replay_flags: Optional[NotifyFlags] = None) -> Channel:
    """Host-side setup of a bidirectional channel between two arbitrary
    nodes: allocate rings/staging/credit words, register them, open a port
    pair, map everything the device code needs.

    ``port_id`` pins the SAME id on both NICs — required when a cluster
    carries several channels, because completer notifications are routed by
    the port id the put descriptor carries.

    ``map_notifications`` additionally maps each port's requester/completer
    queues into its GPU's address space, enabling the notification-driven
    (``dev2dev-direct``) send/recv variants of :mod:`repro.collectives`.

    ``control_space`` places the flow-control state (credit word + credit
    staging): ``"gpu"`` keeps the sender's polling in device memory (the
    §VI design); ``"hostControlled"`` collectives pass ``"host"`` so the
    driving CPUs poll credits out of their own cache.

    ``reliable`` arms a :class:`repro.faults.reliability.ChannelReliability`
    engine per direction: credits return after every message (turning the
    credit word into a cumulative ACK) and a NIC-resident retransmission
    engine replays unacknowledged slots after a timeout — ``gpu_send`` /
    ``gpu_recv`` then survive packet loss, corruption, and link flaps
    transparently.  ``reliability_config`` tunes its timeouts/budgets, and
    ``replay_flags`` sets the notification flags replayed puts carry
    (default: ``COMPLETER`` when the receive path waits on completer
    notifications — i.e. ``map_notifications`` — else ``NONE``).
    """
    if slot_size <= _HEADER_BYTES or slot_size % 8:
        raise BenchmarkError(
            f"slot_size must be a multiple of 8 and > {_HEADER_BYTES}")
    if slots < 2:
        raise BenchmarkError("need at least 2 slots for flow control")
    if control_space not in ("gpu", "host"):
        raise BenchmarkError(f"bad control space {control_space!r}")

    ports = [src.nic.open_port(port_id), dst.nic.open_port(port_id)]
    if ports[0].port_id != ports[1].port_id:
        raise BenchmarkError(
            f"channel port ids diverged ({ports[0].port_id} vs "
            f"{ports[1].port_id}); pin port_id explicitly")
    ends = []
    for end_src, end_dst, port in ((src, dst, ports[0]),
                                   (dst, src, ports[1])):
        # Staging mirrors the ring depth: slot for seq is reused only after
        # the flow-control credit proves the receiver consumed seq-slots,
        # which in turn proves the NIC finished its DMA read long before.
        staging = end_src.gpu_malloc(slot_size * slots)
        if control_space == "gpu":
            credit = end_src.gpu_malloc(8)
            credit_staging = end_dst.gpu_malloc(8)  # receiver-side scratch
            end_src.gpu.dram.write_u64(credit.base, 0)
        else:
            credit = end_src.host_malloc(8)
            credit_staging = end_dst.host_malloc(8)
            end_src.host_mem.write_u64(credit.base, 0)
        ring = end_dst.gpu_malloc(slot_size * slots)
        end_dst.gpu.dram.fill(ring.base, ring.size, 0)
        end_src.gpu.map_mmio(AddressRange(port.page_addr, 4096))
        if control_space == "host":
            end_src.gpu.map_host_memory(credit)
        if map_notifications:
            for q in (port.requester_queue, port.completer_queue):
                end_src.gpu.map_host_memory(q.range)
        ends.append(ChannelEnd(
            src_node_id=end_src.node_id, dst_node_id=end_dst.node_id,
            port_id=port.port_id, page_addr=port.page_addr,
            staging=staging, staging_nla=end_src.nic.register_memory(staging),
            credit_word=credit,
            credit_word_nla=end_src.nic.register_memory(credit),
            credit_staging=credit_staging,
            credit_staging_nla=end_dst.nic.register_memory(credit_staging),
            ring=ring, ring_nla=end_dst.nic.register_memory(ring),
            slot_size=slot_size, slots=slots,
            credit_interval=1 if reliable else max(1, slots // 2),
            port=port,
        ))
    channel = Channel(*ends)
    if reliable:
        # Lazy import: repro.core must not depend on repro.faults unless
        # reliability is actually requested.
        from ..faults.reliability import ChannelReliability
        if replay_flags is None:
            replay_flags = (NotifyFlags.COMPLETER if map_notifications
                            else NotifyFlags.NONE)
        for end, end_src, end_dst in ((channel.a_to_b, src, dst),
                                      (channel.b_to_a, dst, src)):
            end.reliability = ChannelReliability(
                cluster.sim, end_src, end_dst, end,
                config=reliability_config, replay_flags=replay_flags)
    return channel


def create_channel(cluster: Cluster, slot_size: int = 256,
                   slots: int = 16) -> Channel:
    """The two-node convenience wrapper: a channel between the paper pair."""
    return create_channel_between(cluster, cluster.a, cluster.b,
                                  slot_size=slot_size, slots=slots)


# --- device-side API --------------------------------------------------------------

def gpu_stage_send(ctx: ThreadCtx, end: ChannelEnd, data: bytes,
                   flags: NotifyFlags = NotifyFlags.NONE):
    """Credit-gate and stage one message (device code, sender side) WITHOUT
    posting it.

    Spins on the local credit word (an L2 hit) while the remote ring is
    full, stages payload + header into the message's staging slot, and
    returns the put work request covering the whole slot.  Callers pick the
    control path that posts it — the classic wide post (:func:`gpu_send`)
    or the offload engine's batched doorbell — and must call
    :func:`gpu_finish_send` once the post is issued.
    """
    if len(data) > end.payload_capacity:
        raise BenchmarkError(
            f"message of {len(data)} bytes exceeds slot payload "
            f"{end.payload_capacity}")
    seq = end.next_seq
    trc = ctx.sim.tracer
    causal = trc.wants("causal")
    if causal:
        # The slot put's address key; every later hop (NIC, receiver)
        # recomputes the same key from its own view of the protocol state.
        addr = (end.dst_node_id, end.ring_nla.base + end.slot_offset(seq))
        actor = f"n{end.src_node_id}"
        trc.flow_event("snd", actor, addr=addr, seq=seq, bytes=len(data))
    # Flow control: at most ``slots`` unacked messages in flight.
    gated = seq - 1 >= end.slots
    if gated:
        min_credit = seq - end.slots
        yield from ctx.spin_until_u64(end.credit_word.base,
                                      lambda v, m=min_credit: v >= m)
    if causal:
        trc.flow_event("crd", actor, addr=addr, seq=seq, gated=gated,
                       waited_on=(end.src_node_id, end.credit_word_nla.base))
    # Stage payload (padded to 8-byte words) then the header, in this
    # message's staging slot.
    stage_base = end.staging.base + end.slot_offset(seq)
    padded = data + bytes(-len(data) % 8)
    offset = 0
    while offset < len(padded):
        chunk = padded[offset:offset + 8]
        yield from ctx.store(stage_base + offset, chunk)
        offset += 8
    header = (seq << _SEQ_SHIFT) | len(data)
    yield from ctx.store_u64(stage_base + end.slot_size - _HEADER_BYTES,
                             header)
    if causal:
        trc.flow_event("stg", actor, addr=addr, seq=seq, bytes=len(data))
    return RmaWorkRequest(
        op=RmaOp.PUT, port=end.port_id, dst_node=end.dst_node_id,
        src_nla=end.staging_nla.base + end.slot_offset(seq),
        dst_nla=end.ring_nla.base + end.slot_offset(seq),
        size=end.slot_size, flags=flags)


def gpu_finish_send(end: ChannelEnd) -> None:
    """Advance the sender's sequence after a staged message was posted
    (and let the reliability engine, when armed, start tracking it)."""
    seq = end.next_seq
    end.next_seq += 1
    if end.reliability is not None:
        end.reliability.note_send(seq)


def gpu_send(ctx: ThreadCtx, end: ChannelEnd, data: bytes,
             flags: NotifyFlags = NotifyFlags.NONE):
    """Send one message (device code, sender side).

    Blocks (spinning on the local credit word, an L2 hit) while the remote
    ring is full; then stages payload+header and posts a single put covering
    the whole slot.  ``flags`` optionally requests requester/completer
    notifications for the put (the collectives' ``dev2dev-direct`` variant);
    the default keeps the §VI design of no notifications at all.
    """
    wr = yield from gpu_stage_send(ctx, end, data, flags)
    yield from gpu_rma_post_wide(ctx, end.page_addr, wr)
    trc = ctx.sim.tracer
    if trc.wants("causal"):
        trc.flow_event("pst", f"n{end.src_node_id}",
                       addr=(wr.dst_node, wr.dst_nla), via="mmio")
    gpu_finish_send(end)


def gpu_recv(ctx: ThreadCtx, end: ChannelEnd, reverse: ChannelEnd,
             announce: bool = True):
    """Receive the next message (device code, receiver side).

    ``reverse`` is the opposite-direction end (sender side on this node),
    used to put credit returns back.  Returns the payload bytes.
    ``announce=False`` suppresses the causal ``rcv`` breadcrumb for callers
    that already stamped the receive at its true call time (before their
    own wait), so the walk sees the wait and not a late re-anchor.
    """
    seq = end.consumed + 1
    slot_base = end.ring.base + end.slot_offset(seq)
    trc = ctx.sim.tracer
    if announce and trc.wants("causal"):
        trc.flow_event("rcv", f"n{end.dst_node_id}",
                       addr=(end.dst_node_id,
                             end.ring_nla.base + end.slot_offset(seq)),
                       seq=seq)
    header_addr = slot_base + end.slot_size - _HEADER_BYTES
    header, _polls = yield from ctx.spin_until_u64(
        header_addr, lambda v, s=seq: (v >> _SEQ_SHIFT) == s)
    data = yield from _consume_slot(ctx, end, reverse, seq, header)
    return data


def gpu_recv_ready(ctx: ThreadCtx, end: ChannelEnd, reverse: ChannelEnd,
                   announce: bool = True):
    """Consume the next message whose arrival is already proven (device
    code, receiver side).

    The notification-driven (``dev2dev-direct``) receive path: after the
    completer notification lands there is nothing left to poll — the header
    is read once from device memory and the slot is drained.  ``reverse``
    serves credit returns exactly as in :func:`gpu_recv` (as does
    ``announce``).
    """
    seq = end.consumed + 1
    slot_base = end.ring.base + end.slot_offset(seq)
    trc = ctx.sim.tracer
    if announce and trc.wants("causal"):
        trc.flow_event("rcv", f"n{end.dst_node_id}",
                       addr=(end.dst_node_id,
                             end.ring_nla.base + end.slot_offset(seq)),
                       seq=seq, via="notif")
    header = yield from ctx.load_u64(slot_base + end.slot_size - _HEADER_BYTES)
    if (header >> _SEQ_SHIFT) != seq:
        raise BenchmarkError(
            f"gpu_recv_ready: slot carries seq {header >> _SEQ_SHIFT}, "
            f"expected {seq} (arrival not proven?)")
    data = yield from _consume_slot(ctx, end, reverse, seq, header,
                                    via="notif")
    return data


def _consume_slot(ctx: ThreadCtx, end: ChannelEnd, reverse: ChannelEnd,
                  seq: int, header: int, via: str = "poll"):
    """Drain one arrived slot and return credits when due."""
    slot_base = end.ring.base + end.slot_offset(seq)
    length = header & _LEN_MASK
    data = b""
    offset = 0
    while offset < length:
        step = min(8, length - offset)
        word = yield from ctx.load(slot_base + offset, 8)
        data += word[:step]
        offset += step
    end.consumed = seq
    trc = ctx.sim.tracer
    if trc.wants("causal"):
        trc.flow_event("rcd", f"n{end.dst_node_id}",
                       addr=(end.dst_node_id,
                             end.ring_nla.base + end.slot_offset(seq)),
                       seq=seq, via=via, bytes=length)
    # Return credits every half ring so the sender rarely stalls, and the
    # control traffic stays at one 8-byte put per slots/2 messages (§VI-3).
    # The scratch word and the outgoing port both belong to *this* node:
    # `end.credit_staging` lives in the receiver's GPU, `reverse` is this
    # node's sending direction.
    if (end.consumed - end.credits_returned
            >= (end.credit_interval or max(1, end.slots // 2))):
        yield from ctx.store_u64(end.credit_staging.base, end.consumed)
        credit_wr = RmaWorkRequest(
            op=RmaOp.PUT, port=reverse.port_id, dst_node=reverse.dst_node_id,
            src_nla=end.credit_staging_nla.base,
            dst_nla=end.credit_word_nla.base, size=8, flags=NotifyFlags.NONE)
        yield from gpu_rma_post_wide(ctx, reverse.page_addr, credit_wr)
        end.credits_returned = end.consumed
    return data
