"""A GPU-resident two-sided messaging layer over put/get — the paper's
stated future work ("we gear to work towards GPU communication libraries
that meet the previously stated claims", §VIII).

Design, following the §VI claims:

* **claim 1 (small footprint)** — per channel direction: a ring of ``slots``
  fixed-size slots in the *receiver's* device memory plus one 8-byte credit
  word in the *sender's* device memory.  No notification queues at all.
* **claim 2 (thread-collaborative)** — descriptors are posted with the wide
  store of :mod:`repro.core.future`.
* **claim 3 (minimal PCIe control traffic)** — all polling (message arrival,
  credit return) happens in device memory through the L2; the only PCIe
  traffic a message costs is its payload put and, every ``slots/2``
  messages, one 8-byte credit-return put.

Wire format of a slot: ``payload .. | header:u64`` where
``header = (seq << 16) | length``.  EXTOLL delivers puts in order, so the
header landing implies the payload landed (§V-B1's last-element argument).
Messages up to ``slot_size - 8`` bytes travel in one slot.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster import Cluster
from ..errors import BenchmarkError
from ..extoll import NotifyFlags, RmaOp, RmaWorkRequest
from ..gpu import ThreadCtx
from ..memory import AddressRange
from .future import gpu_rma_post_wide

_HEADER_BYTES = 8
_SEQ_SHIFT = 16
_LEN_MASK = (1 << _SEQ_SHIFT) - 1


@dataclass
class ChannelEnd:
    """One direction of a channel, as seen by its *sender*.

    The receiver uses the same object through :func:`gpu_recv`; device code
    on each node only ever touches addresses local to (or mapped into) its
    own GPU.
    """

    # Topology.
    src_node_id: int
    dst_node_id: int
    port_id: int
    page_addr: int                 # sender-side BAR requester page
    # Sender-local resources.
    staging: AddressRange          # device memory the payload is built in
    staging_nla: AddressRange
    credit_word: AddressRange      # device memory; receiver puts credits here
    credit_word_nla: AddressRange
    # Receiver-local resources (NLAs are what the sender addresses).
    ring: AddressRange             # device memory ring in the receiver GPU
    ring_nla: AddressRange
    slot_size: int
    slots: int
    # Receiver-side scratch for credit-return puts (in the receiver's GPU,
    # i.e. local to whoever calls gpu_recv on this end's messages).
    credit_staging: AddressRange = None
    credit_staging_nla: AddressRange = None
    # Progress counters (software state).
    next_seq: int = 1              # sender: next message sequence number
    consumed: int = 0              # receiver: messages taken out of the ring
    credits_returned: int = 0      # receiver: last credit value put back

    @property
    def payload_capacity(self) -> int:
        return self.slot_size - _HEADER_BYTES

    def slot_offset(self, seq: int) -> int:
        return ((seq - 1) % self.slots) * self.slot_size


@dataclass
class Channel:
    """A bidirectional channel between two nodes: one ring per direction."""

    a_to_b: ChannelEnd
    b_to_a: ChannelEnd

    def end_for_sender(self, node_id: int) -> ChannelEnd:
        return self.a_to_b if node_id == self.a_to_b.src_node_id else self.b_to_a

    def end_for_receiver(self, node_id: int) -> ChannelEnd:
        return self.a_to_b if node_id == self.a_to_b.dst_node_id else self.b_to_a


def create_channel(cluster: Cluster, slot_size: int = 256,
                   slots: int = 16) -> Channel:
    """Host-side setup: allocate rings/staging/credit words, register them,
    open a port pair, map everything the device code needs."""
    if slot_size <= _HEADER_BYTES or slot_size % 8:
        raise BenchmarkError(
            f"slot_size must be a multiple of 8 and > {_HEADER_BYTES}")
    if slots < 2:
        raise BenchmarkError("need at least 2 slots for flow control")

    ports = [cluster.a.nic.open_port(), cluster.b.nic.open_port()]
    ends = []
    for src, dst, port in ((cluster.a, cluster.b, ports[0]),
                           (cluster.b, cluster.a, ports[1])):
        # Staging mirrors the ring depth: slot for seq is reused only after
        # the flow-control credit proves the receiver consumed seq-slots,
        # which in turn proves the NIC finished its DMA read long before.
        staging = src.gpu_malloc(slot_size * slots)
        credit = src.gpu_malloc(8)
        credit_staging = dst.gpu_malloc(8)  # receiver-side scratch
        ring = dst.gpu_malloc(slot_size * slots)
        dst.gpu.dram.fill(ring.base, ring.size, 0)
        src.gpu.dram.write_u64(credit.base, 0)
        src.gpu.map_mmio(AddressRange(port.page_addr, 4096))
        ends.append(ChannelEnd(
            src_node_id=src.node_id, dst_node_id=dst.node_id,
            port_id=port.port_id, page_addr=port.page_addr,
            staging=staging, staging_nla=src.nic.register_memory(staging),
            credit_word=credit,
            credit_word_nla=src.nic.register_memory(credit),
            credit_staging=credit_staging,
            credit_staging_nla=dst.nic.register_memory(credit_staging),
            ring=ring, ring_nla=dst.nic.register_memory(ring),
            slot_size=slot_size, slots=slots,
        ))
    return Channel(*ends)


# --- device-side API --------------------------------------------------------------

def gpu_send(ctx: ThreadCtx, end: ChannelEnd, data: bytes):
    """Send one message (device code, sender side).

    Blocks (spinning on the local credit word, an L2 hit) while the remote
    ring is full; then stages payload+header and posts a single put covering
    the whole slot.
    """
    if len(data) > end.payload_capacity:
        raise BenchmarkError(
            f"message of {len(data)} bytes exceeds slot payload "
            f"{end.payload_capacity}")
    seq = end.next_seq
    # Flow control: at most ``slots`` unacked messages in flight.
    if seq - 1 >= end.slots:
        min_credit = seq - end.slots
        yield from ctx.spin_until_u64(end.credit_word.base,
                                      lambda v, m=min_credit: v >= m)
    # Stage payload (padded to 8-byte words) then the header, in this
    # message's staging slot.
    stage_base = end.staging.base + end.slot_offset(seq)
    padded = data + bytes(-len(data) % 8)
    offset = 0
    while offset < len(padded):
        chunk = padded[offset:offset + 8]
        yield from ctx.store(stage_base + offset, chunk)
        offset += 8
    header = (seq << _SEQ_SHIFT) | len(data)
    yield from ctx.store_u64(stage_base + end.slot_size - _HEADER_BYTES,
                             header)
    wr = RmaWorkRequest(
        op=RmaOp.PUT, port=end.port_id, dst_node=end.dst_node_id,
        src_nla=end.staging_nla.base + end.slot_offset(seq),
        dst_nla=end.ring_nla.base + end.slot_offset(seq),
        size=end.slot_size, flags=NotifyFlags.NONE)
    yield from gpu_rma_post_wide(ctx, end.page_addr, wr)
    end.next_seq += 1


def gpu_recv(ctx: ThreadCtx, end: ChannelEnd, reverse: ChannelEnd):
    """Receive the next message (device code, receiver side).

    ``reverse`` is the opposite-direction end (sender side on this node),
    used to put credit returns back.  Returns the payload bytes.
    """
    seq = end.consumed + 1
    slot_base = end.ring.base + end.slot_offset(seq)
    header_addr = slot_base + end.slot_size - _HEADER_BYTES
    header, _polls = yield from ctx.spin_until_u64(
        header_addr, lambda v, s=seq: (v >> _SEQ_SHIFT) == s)
    length = header & _LEN_MASK
    data = b""
    offset = 0
    while offset < length:
        step = min(8, length - offset)
        word = yield from ctx.load(slot_base + offset, 8)
        data += word[:step]
        offset += step
    end.consumed = seq
    # Return credits every half ring so the sender rarely stalls, and the
    # control traffic stays at one 8-byte put per slots/2 messages (§VI-3).
    # The scratch word and the outgoing port both belong to *this* node:
    # `end.credit_staging` lives in the receiver's GPU, `reverse` is this
    # node's sending direction.
    if end.consumed - end.credits_returned >= max(1, end.slots // 2):
        yield from ctx.store_u64(end.credit_staging.base, end.consumed)
        credit_wr = RmaWorkRequest(
            op=RmaOp.PUT, port=reverse.port_id, dst_node=reverse.dst_node_id,
            src_nla=end.credit_staging_nla.base,
            dst_nla=end.credit_word_nla.base, size=8, flags=NotifyFlags.NONE)
        yield from gpu_rma_post_wide(ctx, reverse.page_addr, credit_wr)
        end.credits_returned = end.consumed
    return data
