"""Performance-counter analysis programs (Tables I and II, §V-A3/§V-B3).

Both tables instrument the *ping-side GPU* over a 100-iteration, 1 KiB
ping-pong and compare two variants:

* Table I (EXTOLL): polling notifications in **system memory**
  (``dev2dev-direct``) vs polling the last received element in **device
  memory** (``dev2dev-pollOnGPU``),
* Table II (InfiniBand): WQ/CQ buffers in **host memory** vs **GPU memory**.

Counters are read as snapshots around the measured region, exactly like
wrapping the kernel in a profiler session.
"""

from __future__ import annotations

from typing import Tuple

from ..cluster import build_extoll_cluster, build_ib_cluster
from ..units import KIB
from .modes import ExtollMode, IbMode
from .pingpong import run_extoll_pingpong, run_ib_pingpong
from .results import CounterReport
from .setup import setup_extoll_connection, setup_ib_connection

TABLE_ITERATIONS = 100
TABLE_PAYLOAD = 1 * KIB


def measure_extoll_polling_counters(
        iterations: int = TABLE_ITERATIONS,
        payload: int = TABLE_PAYLOAD) -> Tuple[CounterReport, CounterReport]:
    """Table I: (system-memory polling, device-memory polling) reports."""
    reports = []
    for mode, label in ((ExtollMode.DIRECT, "system memory"),
                        (ExtollMode.POLL_ON_GPU, "device memory")):
        cluster = build_extoll_cluster()
        conn = setup_extoll_connection(cluster, max(payload, 4 * KIB))
        gpu = conn.a.node.gpu
        before = gpu.counters.snapshot()
        run_extoll_pingpong(cluster, conn, mode, payload,
                            iterations=iterations, warmup=0)
        reports.append(CounterReport(label, iterations,
                                     gpu.counters.diff(before)))
    return tuple(reports)


def measure_ib_buffer_counters(
        iterations: int = TABLE_ITERATIONS,
        payload: int = TABLE_PAYLOAD) -> Tuple[CounterReport, CounterReport]:
    """Table II: (buffer on host, buffer on GPU) reports."""
    reports = []
    for location, mode, label in (("host", IbMode.BUF_ON_HOST, "Buffer on Host"),
                                  ("gpu", IbMode.BUF_ON_GPU, "Buffer on GPU")):
        cluster = build_ib_cluster()
        conn = setup_ib_connection(cluster, max(payload, 4 * KIB),
                                   buffer_location=location)
        gpu = conn.a.node.gpu
        before = gpu.counters.snapshot()
        run_ib_pingpong(cluster, conn, mode, payload,
                        iterations=iterations, warmup=0)
        reports.append(CounterReport(label, iterations,
                                     gpu.counters.diff(before)))
    return tuple(reports)


def measure_single_op_instructions() -> dict:
    """§V-B3 single-operation costs, measured by executing exactly one op on
    an otherwise idle GPU: instructions for one ``ibv_post_send`` and one
    successful ``ibv_poll_cq``, plus the EXTOLL posting cost for contrast."""
    from ..extoll import NotifyFlags, RmaOp, RmaWorkRequest
    from ..ib import IbOpcode, Wqe
    from .gpu_rma import gpu_rma_post
    from .gpu_verbs import gpu_post_send, gpu_wait_cq

    out = {}

    # --- EXTOLL post -----------------------------------------------------------
    cluster = build_extoll_cluster()
    conn = setup_extoll_connection(cluster, 4 * KIB)
    gpu = conn.a.node.gpu
    wr = RmaWorkRequest(op=RmaOp.PUT, port=conn.a.port.port_id, dst_node=1,
                        src_nla=conn.a.send_nla.base,
                        dst_nla=conn.b.recv_nla.base, size=64,
                        flags=NotifyFlags.NONE)

    def extoll_post(ctx):
        yield from gpu_rma_post(ctx, conn.a.port.page_addr, wr)

    before = gpu.counters.snapshot()
    h = gpu.launch(extoll_post)
    cluster.sim.run_until_complete(h, limit=1.0)
    cluster.sim.run(until=cluster.sim.now + 1e-3)
    out["extoll_post"] = gpu.counters.diff(before).instructions_executed

    # --- IB post + poll ---------------------------------------------------------
    cluster = build_ib_cluster()
    conn = setup_ib_connection(cluster, 4 * KIB, buffer_location="gpu")
    gpu = conn.a.node.gpu
    wqe = Wqe(opcode=IbOpcode.RDMA_WRITE, wr_id=1,
              local_addr=conn.a.send_buf.base, lkey=conn.a.lkey, length=64,
              remote_addr=conn.a.remote_recv_addr, rkey=conn.a.rkey_remote)

    marks = {}

    def ib_post_then_poll(ctx):
        before_post = ctx.gpu.counters.snapshot()
        yield from gpu_post_send(ctx, conn.a.node.nic, conn.a.qp, wqe, 0,
                                 optimized=False)
        marks["post"] = ctx.gpu.counters.diff(before_post).instructions_executed
        # Let the completion arrive so the first poll succeeds.
        yield ctx.sim.timeout(100e-6)
        before_poll = ctx.gpu.counters.snapshot()
        yield from gpu_wait_cq(ctx, conn.a.send_cq_consumer())
        marks["poll"] = ctx.gpu.counters.diff(before_poll).instructions_executed

    h = gpu.launch(ib_post_then_poll)
    cluster.sim.run_until_complete(h, limit=1.0)
    out["ibv_post_send"] = marks["post"]
    out["ibv_poll_cq"] = marks["poll"]
    return out
