"""Streaming-bandwidth microbenchmarks (Figs. 1b and 4b).

Unidirectional: node A streams ``count`` messages of ``size`` bytes into
node B's GPU memory, keeping a bounded window of outstanding transfers.
Bandwidth = moved bytes / (time from first post to last confirmed arrival).

``dev2dev-pollOnGPU`` is deliberately absent: "this is only applicable for
the ping-pong test" (§V-A1).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster import Cluster
from ..errors import BenchmarkError
from ..extoll import (
    NotifyFlags,
    RmaWorkRequest,
    RmaOp,
    rma_post,
    rma_wait_notification,
)
from ..ib import IbOpcode, Wqe, ibv_post_recv, ibv_post_send, ibv_wait_cq
from ..sim import NULL_SPAN
from ..units import MIB
from .gpu_rma import gpu_rma_post, gpu_rma_wait_notification
from .gpu_verbs import gpu_post_send, gpu_wait_cq
from .modes import ExtollMode, IbMode
from .pingpong import FLAG_REQUEST, FLAG_SENT, _gpu_write_marker, _marker_offset, _marker_predicate
from .results import BandwidthPoint
from .setup import ExtollConnection, IbConnection

_WINDOW = 4


def default_message_count(size: int) -> int:
    """Enough messages to amortize startup without exploding the event count."""
    return max(8, min(48, (8 * MIB) // size))


@dataclass
class _StreamTiming:
    start: float = 0.0
    end: float = 0.0


def run_extoll_bandwidth(cluster: Cluster, conn: ExtollConnection,
                         mode: ExtollMode, size: int,
                         count: int | None = None) -> BandwidthPoint:
    if size <= 0:
        raise BenchmarkError(f"size must be positive, got {size}")
    if size > conn.a.send_buf.size:
        raise BenchmarkError(f"size {size} exceeds buffer")
    count = count or default_message_count(size)
    timing = _StreamTiming()
    for end in (conn.a, conn.b):
        end.reset_flags()

    if mode is ExtollMode.DIRECT:
        handles = _extoll_bw_direct(conn, size, count, timing)
    elif mode is ExtollMode.ASSISTED:
        handles = _extoll_bw_assisted(conn, size, count, timing)
    elif mode is ExtollMode.HOST_CONTROLLED:
        handles = _extoll_bw_host(conn, size, count, timing)
    else:
        raise BenchmarkError(f"{mode} is not a bandwidth configuration (§V-A1)")

    trc = cluster.sim.tracer
    bench = (trc.begin("bench", f"bandwidth:{mode.value}", track="bench",
                       size=size, count=count)
             if trc.enabled else NULL_SPAN)
    cluster.sim.run_until_complete(*handles, limit=cluster.sim.now + 600.0)
    bench.end()
    return BandwidthPoint(size=size, bytes_moved=size * count,
                          elapsed=timing.end - timing.start)


def _extoll_bw_wr(conn, size, flags):
    return RmaWorkRequest(op=RmaOp.PUT, port=conn.a.port.port_id, dst_node=1,
                          src_nla=conn.a.send_nla.base,
                          dst_nla=conn.b.recv_nla.base, size=size, flags=flags)


def _extoll_bw_direct(conn, size, count, timing):
    """GPU streams puts, pipelining on requester notifications; the remote
    GPU consumes completer notifications to confirm arrival."""
    wr = _extoll_bw_wr(conn, size,
                       NotifyFlags.REQUESTER | NotifyFlags.COMPLETER)

    def sender(ctx):
        req_cur = conn.a.requester_cursor()
        timing.start = ctx.sim.now
        outstanding = 0
        for _ in range(count):
            if outstanding >= _WINDOW:
                yield from gpu_rma_wait_notification(ctx, req_cur)
                outstanding -= 1
            yield from gpu_rma_post(ctx, conn.a.port.page_addr, wr)
            outstanding += 1
        while outstanding:
            yield from gpu_rma_wait_notification(ctx, req_cur)
            outstanding -= 1

    def receiver(ctx):
        cmpl_cur = conn.b.completer_cursor()
        for _ in range(count):
            yield from gpu_rma_wait_notification(ctx, cmpl_cur)
        timing.end = ctx.sim.now

    return [conn.a.node.gpu.launch(sender), conn.b.node.gpu.launch(receiver)]


def _extoll_bw_assisted(conn, size, count, timing):
    """Per-message GPU->CPU handshake; the CPU posts; the remote CPU confirms
    arrivals and releases the remote GPU at the end."""
    wr = _extoll_bw_wr(conn, size,
                       NotifyFlags.REQUESTER | NotifyFlags.COMPLETER)
    flags_a = conn.a.flag_page.base
    flags_b = conn.b.flag_page.base

    def gpu_sender(ctx):
        timing.start = ctx.sim.now
        for i in range(1, count + 1):
            yield from ctx.store_u64(flags_a + FLAG_REQUEST, i)
            yield from ctx.spin_until_u64(flags_a + FLAG_SENT,
                                          lambda v, i=i: v == i)

    def cpu_sender_proxy(ctx):
        req_cur = conn.a.requester_cursor()
        for i in range(1, count + 1):
            yield from ctx.spin_until_u64(flags_a + FLAG_REQUEST,
                                          lambda v, i=i: v >= i)
            yield from rma_post(ctx, conn.a.port.page_addr, wr)
            yield from rma_wait_notification(ctx, req_cur)
            yield from ctx.write_u64(flags_a + FLAG_SENT, i)

    def cpu_receiver(ctx):
        cmpl_cur = conn.b.completer_cursor()
        for _ in range(count):
            yield from rma_wait_notification(ctx, cmpl_cur)
        timing.end = ctx.sim.now
        yield from ctx.write_u64(flags_b + FLAG_REQUEST, count)

    def gpu_receiver(ctx):
        yield from ctx.spin_until_u64(flags_b + FLAG_REQUEST,
                                      lambda v: v == count)

    return [conn.a.node.gpu.launch(gpu_sender),
            conn.a.node.cpu.spawn(cpu_sender_proxy, name="bw-proxy"),
            conn.b.node.cpu.spawn(cpu_receiver, name="bw-recv"),
            conn.b.node.gpu.launch(gpu_receiver)]


def _extoll_bw_host(conn, size, count, timing):
    wr = _extoll_bw_wr(conn, size,
                       NotifyFlags.REQUESTER | NotifyFlags.COMPLETER)

    def sender(ctx):
        req_cur = conn.a.requester_cursor()
        timing.start = ctx.sim.now
        outstanding = 0
        for _ in range(count):
            if outstanding >= _WINDOW:
                yield from rma_wait_notification(ctx, req_cur)
                outstanding -= 1
            yield from rma_post(ctx, conn.a.port.page_addr, wr)
            outstanding += 1
        while outstanding:
            yield from rma_wait_notification(ctx, req_cur)
            outstanding -= 1

    def receiver(ctx):
        cmpl_cur = conn.b.completer_cursor()
        for _ in range(count):
            yield from rma_wait_notification(ctx, cmpl_cur)
        timing.end = ctx.sim.now

    return [conn.a.node.cpu.spawn(sender, name="bw-send"),
            conn.b.node.cpu.spawn(receiver, name="bw-recv")]


# =============================================================================
# InfiniBand
# =============================================================================

def run_ib_bandwidth(cluster: Cluster, conn: IbConnection, mode: IbMode,
                     size: int, count: int | None = None) -> BandwidthPoint:
    if size <= 0:
        raise BenchmarkError(f"size must be positive, got {size}")
    if size > conn.a.send_buf.size:
        raise BenchmarkError(f"size {size} exceeds buffer")
    count = count or default_message_count(size)
    timing = _StreamTiming()
    off = _marker_offset(size)
    for end in (conn.a, conn.b):
        end.reset_flags()
        end.node.gpu.dram.write_u64(end.recv_buf.base + off, 0)
        end.node.gpu.l2.invalidate(end.recv_buf.base + off, 8)

    if mode in (IbMode.BUF_ON_GPU, IbMode.BUF_ON_HOST):
        handles = _ib_bw_gpu(conn, size, count, timing)
    elif mode is IbMode.ASSISTED:
        handles = _ib_bw_assisted(conn, size, count, timing)
    elif mode is IbMode.HOST_CONTROLLED:
        handles = _ib_bw_host(conn, size, count, timing)
    else:  # pragma: no cover
        raise BenchmarkError(f"unknown mode {mode}")

    trc = cluster.sim.tracer
    bench = (trc.begin("bench", f"bandwidth:{mode.value}", track="bench",
                       size=size, count=count)
             if trc.enabled else NULL_SPAN)
    cluster.sim.run_until_complete(*handles, limit=cluster.sim.now + 600.0)
    bench.end()
    return BandwidthPoint(size=size, bytes_moved=size * count,
                          elapsed=timing.end - timing.start)


def _ib_bw_gpu(conn, size, count, timing):
    """GPU streams RDMA writes, windowed on send CQEs; the remote GPU polls
    the last element of the final message (in-order RC, §V-B1)."""
    off = _marker_offset(size)

    def sender(ctx):
        consumer = conn.a.send_cq_consumer()
        outstanding = 0
        timing.start = ctx.sim.now
        for i in range(1, count + 1):
            if outstanding >= _WINDOW:
                yield from gpu_wait_cq(ctx, consumer)
                outstanding -= 1
            yield from _gpu_write_marker(ctx, conn.a.send_buf.base, size, i)
            wqe = Wqe(opcode=IbOpcode.RDMA_WRITE, wr_id=i,
                      local_addr=conn.a.send_buf.base, lkey=conn.a.lkey,
                      length=size, remote_addr=conn.a.remote_recv_addr,
                      rkey=conn.a.rkey_remote)
            conn.a.sq_index = yield from gpu_post_send(
                ctx, conn.a.node.nic, conn.a.qp, wqe, conn.a.sq_index)
            outstanding += 1
        while outstanding:
            yield from gpu_wait_cq(ctx, consumer)
            outstanding -= 1

    def receiver(ctx):
        yield from ctx.spin_until_u64(conn.b.recv_buf.base + off,
                                      _marker_predicate(size, count))
        timing.end = ctx.sim.now

    return [conn.a.node.gpu.launch(sender), conn.b.node.gpu.launch(receiver)]


def _ib_bw_assisted(conn, size, count, timing):
    """GPU->CPU handshake per message; CPU posts write-with-immediate; the
    remote CPU reaps receive CQEs."""
    flags_a = conn.a.flag_page.base
    flags_b = conn.b.flag_page.base

    def gpu_sender(ctx):
        timing.start = ctx.sim.now
        for i in range(1, count + 1):
            yield from ctx.store_u64(flags_a + FLAG_REQUEST, i)
            yield from ctx.spin_until_u64(flags_a + FLAG_SENT,
                                          lambda v, i=i: v == i)

    def cpu_sender(ctx):
        hca = conn.a.node.nic
        consumer = conn.a.host_send_cq_consumer()
        for i in range(1, count + 1):
            yield from ctx.spin_until_u64(flags_a + FLAG_REQUEST,
                                          lambda v, i=i: v >= i)
            wqe = Wqe(opcode=IbOpcode.RDMA_WRITE_WITH_IMM, wr_id=i,
                      local_addr=conn.a.send_buf.base, lkey=conn.a.lkey,
                      length=size, remote_addr=conn.a.remote_recv_addr,
                      rkey=conn.a.rkey_remote, immediate=i)
            conn.a.sq_index = yield from ibv_post_send(
                ctx, hca, conn.a.qp, wqe, conn.a.sq_index)
            yield from ibv_wait_cq(ctx, consumer)
            yield from ctx.write_u64(flags_a + FLAG_SENT, i)

    def cpu_receiver(ctx):
        hca = conn.b.node.nic
        consumer = conn.b.host_recv_cq_consumer()
        for _ in range(min(16, count)):
            conn.b.rq_index = yield from ibv_post_recv(
                ctx, hca, conn.b.qp,
                Wqe(opcode=IbOpcode.RECV, wr_id=0, local_addr=0, lkey=0,
                    length=max(size, 1)), conn.b.rq_index)
        for i in range(count):
            yield from ibv_wait_cq(ctx, consumer)
            if i + 16 < count:
                conn.b.rq_index = yield from ibv_post_recv(
                    ctx, hca, conn.b.qp,
                    Wqe(opcode=IbOpcode.RECV, wr_id=0, local_addr=0, lkey=0,
                        length=max(size, 1)), conn.b.rq_index)
        timing.end = ctx.sim.now
        yield from ctx.write_u64(flags_b + FLAG_REQUEST, count)

    def gpu_receiver(ctx):
        yield from ctx.spin_until_u64(flags_b + FLAG_REQUEST,
                                      lambda v: v == count)

    return [conn.a.node.gpu.launch(gpu_sender),
            conn.a.node.cpu.spawn(cpu_sender, name="ib-bw-proxy"),
            conn.b.node.cpu.spawn(cpu_receiver, name="ib-bw-recv"),
            conn.b.node.gpu.launch(gpu_receiver)]


def _ib_bw_host(conn, size, count, timing):
    """CPU streams write-with-immediate, windowed on send CQEs; the remote
    CPU counts receive CQEs."""

    def sender(ctx):
        hca = conn.a.node.nic
        consumer = conn.a.host_send_cq_consumer()
        outstanding = 0
        timing.start = ctx.sim.now
        for i in range(1, count + 1):
            if outstanding >= _WINDOW:
                yield from ibv_wait_cq(ctx, consumer)
                outstanding -= 1
            wqe = Wqe(opcode=IbOpcode.RDMA_WRITE_WITH_IMM, wr_id=i,
                      local_addr=conn.a.send_buf.base, lkey=conn.a.lkey,
                      length=size, remote_addr=conn.a.remote_recv_addr,
                      rkey=conn.a.rkey_remote, immediate=i)
            conn.a.sq_index = yield from ibv_post_send(
                ctx, hca, conn.a.qp, wqe, conn.a.sq_index)
            outstanding += 1
        while outstanding:
            yield from ibv_wait_cq(ctx, consumer)
            outstanding -= 1

    def receiver(ctx):
        hca = conn.b.node.nic
        consumer = conn.b.host_recv_cq_consumer()
        for _ in range(min(32, count)):
            conn.b.rq_index = yield from ibv_post_recv(
                ctx, hca, conn.b.qp,
                Wqe(opcode=IbOpcode.RECV, wr_id=0, local_addr=0, lkey=0,
                    length=max(size, 1)), conn.b.rq_index)
        for i in range(count):
            yield from ibv_wait_cq(ctx, consumer)
            if i + 32 < count:
                conn.b.rq_index = yield from ibv_post_recv(
                    ctx, hca, conn.b.qp,
                    Wqe(opcode=IbOpcode.RECV, wr_id=0, local_addr=0, lkey=0,
                        length=max(size, 1)), conn.b.rq_index)
        timing.end = ctx.sim.now

    return [conn.a.node.cpu.spawn(sender, name="ib-bw-send"),
            conn.b.node.cpu.spawn(receiver, name="ib-bw-recv")]
