"""Ping-pong latency microbenchmarks (Figs. 1a and 4a, Fig. 3 phase split).

One iteration: the ping node sends ``size`` bytes to the pong node; the pong
node detects arrival and sends ``size`` bytes back; the ping node detects the
reply.  Reported latency is the half round trip, averaged over the measured
iterations (after warmup).  GPU payload buffers on both sides — every
configuration is *dev2dev*; only the control path differs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster import Cluster
from ..errors import BenchmarkError
from ..extoll import (
    NotifyFlags,
    RmaOp,
    RmaWorkRequest,
    rma_post,
    rma_wait_notification,
)
from ..ib import IbOpcode, Wqe, ibv_post_recv, ibv_post_send, ibv_wait_cq
from ..sim import NULL_SPAN
from .gpu_rma import (
    GpuNotificationCursor,
    gpu_rma_poll_last_element,
    gpu_rma_post,
    gpu_rma_wait_notification,
)
from .gpu_verbs import (
    GpuCqConsumer,
    gpu_poll_last_element,
    gpu_post_send,
    gpu_wait_cq,
)
from .modes import ExtollMode, IbMode
from .results import LatencyPoint
from .setup import ExtollConnection, IbConnection

# Flag-page layout for the assisted modes (host memory, GPU-mapped).
FLAG_REQUEST = 0    # GPU -> CPU: "send message i"
FLAG_SENT = 8       # CPU -> GPU: "message i is on the wire"
FLAG_ARRIVED = 16   # CPU -> GPU: "message i has arrived"


def _marker_offset(size: int) -> int:
    return max(0, size - 8)


def _marker_predicate(size: int, expected: int):
    if size >= 8:
        return lambda v: v == expected
    return lambda v: (v & 0xFFFFFFFF) == (expected & 0xFFFFFFFF)


def _gpu_write_marker(ctx, buf_base: int, size: int, value: int):
    """Stamp the last element of the outgoing message (device memory)."""
    if size >= 8:
        yield from ctx.store_u64(buf_base + _marker_offset(size), value)
    else:
        yield from ctx.store_u32(buf_base, value)


def _validate(size: int, iterations: int, warmup: int) -> None:
    if size <= 0:
        raise BenchmarkError(f"message size must be positive, got {size}")
    if iterations < 1 or warmup < 0:
        raise BenchmarkError("need iterations >= 1 and warmup >= 0")


@dataclass
class _PingTiming:
    start: float = 0.0
    end: float = 0.0
    post_time: float = 0.0
    poll_time: float = 0.0


def _phase(trc, name: str, measured: bool, i: int):
    """A driver-level phase span on the ``ping`` track, opened only for
    measured iterations so its summed duration reconciles exactly with the
    ``LatencyPoint`` post/poll accumulators (the ``trace`` CLI checks this)."""
    if not measured:
        return NULL_SPAN
    return trc.begin("phase", name, track="ping", iter=i)


# =============================================================================
# EXTOLL
# =============================================================================

def _extoll_wr(end, peer, size: int, flags: NotifyFlags) -> RmaWorkRequest:
    return RmaWorkRequest(
        op=RmaOp.PUT, port=end.port.port_id, dst_node=peer.node.node_id,
        src_nla=end.send_nla.base, dst_nla=peer.recv_nla.base, size=size,
        flags=flags)


def run_extoll_pingpong(cluster: Cluster, conn: ExtollConnection,
                        mode: ExtollMode, size: int, iterations: int = 30,
                        warmup: int = 3) -> LatencyPoint:
    """Run one ping-pong measurement; returns the half-round-trip latency
    with the Fig. 3 post/poll phase split (ping side)."""
    _validate(size, iterations, warmup)
    if size > conn.a.send_buf.size:
        raise BenchmarkError(f"size {size} exceeds buffer {conn.a.send_buf.size}")
    total = iterations + warmup
    timing = _PingTiming()

    # Make the connection reusable across measurements: clear flag pages and
    # stale markers (functional setup, outside the timed region).
    off = _marker_offset(size)
    for end in (conn.a, conn.b):
        end.reset_flags()
        end.node.gpu.dram.write_u64(end.recv_buf.base + off, 0)
        end.node.gpu.l2.invalidate(end.recv_buf.base + off, 8)

    if mode is ExtollMode.DIRECT:
        handles = _extoll_direct(cluster, conn, size, total, warmup, timing)
    elif mode is ExtollMode.POLL_ON_GPU:
        handles = _extoll_poll_on_gpu(cluster, conn, size, total, warmup, timing)
    elif mode is ExtollMode.ASSISTED:
        handles = _extoll_assisted(cluster, conn, size, total, warmup, timing)
    elif mode is ExtollMode.HOST_CONTROLLED:
        handles = _extoll_host_controlled(cluster, conn, size, total, warmup,
                                          timing)
    else:  # pragma: no cover
        raise BenchmarkError(f"unknown mode {mode}")

    trc = cluster.sim.tracer
    bench = (trc.begin("bench", f"pingpong:{mode.value}", track="bench",
                       size=size, iterations=iterations, warmup=warmup)
             if trc.enabled else NULL_SPAN)
    cluster.sim.run_until_complete(*handles, limit=cluster.sim.now + 600.0)
    bench.end()
    elapsed = timing.end - timing.start
    return LatencyPoint(size=size, latency=elapsed / (2 * iterations),
                        post_time=timing.post_time / iterations,
                        poll_time=timing.poll_time / iterations)


def _extoll_direct(cluster, conn, size, total, warmup, timing):
    """GPU posts; GPU polls requester + completer notifications in host
    memory (dev2dev-direct)."""
    flags = NotifyFlags.REQUESTER | NotifyFlags.COMPLETER
    wr_ping = _extoll_wr(conn.a, conn.b, size, flags)
    wr_pong = _extoll_wr(conn.b, conn.a, size, flags)

    def ping(ctx):
        trc = ctx.sim.tracer
        req_cur = conn.a.requester_cursor()
        cmpl_cur = conn.a.completer_cursor()
        for i in range(1, total + 1):
            if i == warmup + 1:
                timing.start = ctx.sim.now
            measured = trc.enabled and i > warmup
            span = _phase(trc, "wr-generation", measured, i)
            t0 = ctx.sim.now
            yield from gpu_rma_post(ctx, conn.a.port.page_addr, wr_ping)
            t1 = ctx.sim.now
            span.end()
            span = _phase(trc, "polling", measured, i)
            yield from gpu_rma_wait_notification(ctx, req_cur)
            yield from gpu_rma_wait_notification(ctx, cmpl_cur)
            span.end()
            if i > warmup:
                timing.post_time += t1 - t0
                timing.poll_time += ctx.sim.now - t1
        timing.end = ctx.sim.now

    def pong(ctx):
        req_cur = conn.b.requester_cursor()
        cmpl_cur = conn.b.completer_cursor()
        for i in range(1, total + 1):
            yield from gpu_rma_wait_notification(ctx, cmpl_cur)
            yield from gpu_rma_post(ctx, conn.b.port.page_addr, wr_pong)
            yield from gpu_rma_wait_notification(ctx, req_cur)

    return [conn.a.node.gpu.launch(ping), conn.b.node.gpu.launch(pong)]


def _extoll_poll_on_gpu(cluster, conn, size, total, warmup, timing):
    """GPU posts; completion detected by polling the last received element
    in device memory (dev2dev-pollOnGPU).  No notifications are created."""
    wr_ping = _extoll_wr(conn.a, conn.b, size, NotifyFlags.NONE)
    wr_pong = _extoll_wr(conn.b, conn.a, size, NotifyFlags.NONE)
    off = _marker_offset(size)

    def ping(ctx):
        trc = ctx.sim.tracer
        for i in range(1, total + 1):
            if i == warmup + 1:
                timing.start = ctx.sim.now
            measured = trc.enabled and i > warmup
            span = _phase(trc, "wr-generation", measured, i)
            t0 = ctx.sim.now
            yield from _gpu_write_marker(ctx, conn.a.send_buf.base, size, i)
            yield from gpu_rma_post(ctx, conn.a.port.page_addr, wr_ping)
            t1 = ctx.sim.now
            span.end()
            span = _phase(trc, "polling", measured, i)
            yield from ctx.spin_until_u64(conn.a.recv_buf.base + off,
                                          _marker_predicate(size, i))
            span.end()
            if i > warmup:
                timing.post_time += t1 - t0
                timing.poll_time += ctx.sim.now - t1
        timing.end = ctx.sim.now

    def pong(ctx):
        for i in range(1, total + 1):
            yield from ctx.spin_until_u64(conn.b.recv_buf.base + off,
                                          _marker_predicate(size, i))
            yield from _gpu_write_marker(ctx, conn.b.send_buf.base, size, i)
            yield from gpu_rma_post(ctx, conn.b.port.page_addr, wr_pong)

    return [conn.a.node.gpu.launch(ping), conn.b.node.gpu.launch(pong)]


def _extoll_assisted(cluster, conn, size, total, warmup, timing):
    """GPU kernels synchronize with per-node CPU proxies through flags in
    host memory (dev2dev-assisted)."""
    handles = []
    for end, is_ping in ((conn.a, True), (conn.b, False)):
        peer = conn.peer_of(end)
        flags = end.flag_page.base
        wr = _extoll_wr(end, peer, size, NotifyFlags.REQUESTER | NotifyFlags.COMPLETER)

        def gpu_ping(ctx, flags=flags):
            trc = ctx.sim.tracer
            for i in range(1, total + 1):
                if i == warmup + 1:
                    timing.start = ctx.sim.now
                measured = trc.enabled and i > warmup
                span = _phase(trc, "wr-generation", measured, i)
                t0 = ctx.sim.now
                yield from ctx.store_u64(flags + FLAG_REQUEST, i)
                yield from ctx.spin_until_u64(flags + FLAG_SENT, lambda v, i=i: v == i)
                t1 = ctx.sim.now
                span.end()
                span = _phase(trc, "polling", measured, i)
                yield from ctx.spin_until_u64(flags + FLAG_ARRIVED, lambda v, i=i: v == i)
                span.end()
                if i > warmup:
                    timing.post_time += t1 - t0
                    timing.poll_time += ctx.sim.now - t1
            timing.end = ctx.sim.now

        def gpu_pong(ctx, flags=flags):
            for i in range(1, total + 1):
                yield from ctx.spin_until_u64(flags + FLAG_ARRIVED, lambda v, i=i: v == i)
                yield from ctx.store_u64(flags + FLAG_REQUEST, i)
                yield from ctx.spin_until_u64(flags + FLAG_SENT, lambda v, i=i: v == i)

        def cpu_send_proxy(ctx, end=end, wr=wr, flags=flags):
            req_cur = end.requester_cursor()
            for i in range(1, total + 1):
                yield from ctx.spin_until_u64(flags + FLAG_REQUEST,
                                              lambda v, i=i: v >= i)
                yield from rma_post(ctx, end.port.page_addr, wr)
                yield from rma_wait_notification(ctx, req_cur)
                yield from ctx.write_u64(flags + FLAG_SENT, i)

        def cpu_recv_proxy(ctx, end=end, flags=flags):
            cmpl_cur = end.completer_cursor()
            for i in range(1, total + 1):
                yield from rma_wait_notification(ctx, cmpl_cur)
                yield from ctx.write_u64(flags + FLAG_ARRIVED, i)

        handles.append(end.node.gpu.launch(gpu_ping if is_ping else gpu_pong))
        handles.append(end.node.cpu.spawn(cpu_send_proxy, name=f"proxy-send{end.node.node_id}"))
        handles.append(end.node.cpu.spawn(cpu_recv_proxy, name=f"proxy-recv{end.node.node_id}"))
    return handles


def _extoll_host_controlled(cluster, conn, size, total, warmup, timing):
    """CPUs drive everything; data still moves GPU-to-GPU by GPUDirect."""
    flags = NotifyFlags.REQUESTER | NotifyFlags.COMPLETER
    wr_ping = _extoll_wr(conn.a, conn.b, size, flags)
    wr_pong = _extoll_wr(conn.b, conn.a, size, flags)

    def ping(ctx):
        trc = ctx.sim.tracer
        req_cur = conn.a.requester_cursor()
        cmpl_cur = conn.a.completer_cursor()
        for i in range(1, total + 1):
            if i == warmup + 1:
                timing.start = ctx.sim.now
            measured = trc.enabled and i > warmup
            span = _phase(trc, "wr-generation", measured, i)
            t0 = ctx.sim.now
            yield from rma_post(ctx, conn.a.port.page_addr, wr_ping)
            t1 = ctx.sim.now
            span.end()
            span = _phase(trc, "polling", measured, i)
            yield from rma_wait_notification(ctx, req_cur)
            yield from rma_wait_notification(ctx, cmpl_cur)
            span.end()
            if i > warmup:
                timing.post_time += t1 - t0
                timing.poll_time += ctx.sim.now - t1
        timing.end = ctx.sim.now

    def pong(ctx):
        req_cur = conn.b.requester_cursor()
        cmpl_cur = conn.b.completer_cursor()
        for i in range(1, total + 1):
            yield from rma_wait_notification(ctx, cmpl_cur)
            yield from rma_post(ctx, conn.b.port.page_addr, wr_pong)
            yield from rma_wait_notification(ctx, req_cur)

    return [conn.a.node.cpu.spawn(ping, name="ping"),
            conn.b.node.cpu.spawn(pong, name="pong")]


# =============================================================================
# InfiniBand
# =============================================================================

def _ib_write_wqe(end, size: int, wr_id: int,
                  opcode: IbOpcode = IbOpcode.RDMA_WRITE,
                  immediate: int = 0) -> Wqe:
    return Wqe(opcode=opcode, wr_id=wr_id, local_addr=end.send_buf.base,
               lkey=end.lkey, length=size, remote_addr=end.remote_recv_addr,
               rkey=end.rkey_remote, immediate=immediate)


def run_ib_pingpong(cluster: Cluster, conn: IbConnection, mode: IbMode,
                    size: int, iterations: int = 30,
                    warmup: int = 3) -> LatencyPoint:
    _validate(size, iterations, warmup)
    if size > conn.a.send_buf.size:
        raise BenchmarkError(f"size {size} exceeds buffer {conn.a.send_buf.size}")
    total = iterations + warmup
    timing = _PingTiming()

    off = _marker_offset(size)
    for end in (conn.a, conn.b):
        end.reset_flags()
        end.node.gpu.dram.write_u64(end.recv_buf.base + off, 0)
        end.node.gpu.l2.invalidate(end.recv_buf.base + off, 8)

    if mode in (IbMode.BUF_ON_GPU, IbMode.BUF_ON_HOST):
        handles = _ib_gpu_controlled(cluster, conn, size, total, warmup, timing)
    elif mode is IbMode.ASSISTED:
        handles = _ib_assisted(cluster, conn, size, total, warmup, timing)
    elif mode is IbMode.HOST_CONTROLLED:
        handles = _ib_host_controlled(cluster, conn, size, total, warmup, timing)
    else:  # pragma: no cover
        raise BenchmarkError(f"unknown mode {mode}")

    trc = cluster.sim.tracer
    bench = (trc.begin("bench", f"pingpong:{mode.value}", track="bench",
                       size=size, iterations=iterations, warmup=warmup)
             if trc.enabled else NULL_SPAN)
    cluster.sim.run_until_complete(*handles, limit=cluster.sim.now + 600.0)
    bench.end()
    elapsed = timing.end - timing.start
    return LatencyPoint(size=size, latency=elapsed / (2 * iterations),
                        post_time=timing.post_time / iterations,
                        poll_time=timing.poll_time / iterations)


def _ib_gpu_controlled(cluster, conn, size, total, warmup, timing):
    """dev2dev-bufOnGPU / bufOnHost: GPU posts RDMA writes and polls the last
    received element; the buffer location is baked into the connection."""
    off = _marker_offset(size)

    def ping(ctx):
        trc = ctx.sim.tracer
        consumer = conn.a.send_cq_consumer()
        for i in range(1, total + 1):
            if i == warmup + 1:
                timing.start = ctx.sim.now
            measured = trc.enabled and i > warmup
            span = _phase(trc, "wr-generation", measured, i)
            t0 = ctx.sim.now
            yield from _gpu_write_marker(ctx, conn.a.send_buf.base, size, i)
            wqe = _ib_write_wqe(conn.a, size, wr_id=i)
            conn.a.sq_index = yield from gpu_post_send(
                ctx, conn.a.node.nic, conn.a.qp, wqe, conn.a.sq_index)
            t1 = ctx.sim.now
            span.end()
            span = _phase(trc, "polling", measured, i)
            yield from gpu_wait_cq(ctx, consumer)
            yield from ctx.spin_until_u64(conn.a.recv_buf.base + off,
                                          _marker_predicate(size, i))
            span.end()
            if i > warmup:
                timing.post_time += t1 - t0
                timing.poll_time += ctx.sim.now - t1
        timing.end = ctx.sim.now

    def pong(ctx):
        consumer = conn.b.send_cq_consumer()
        for i in range(1, total + 1):
            yield from ctx.spin_until_u64(conn.b.recv_buf.base + off,
                                          _marker_predicate(size, i))
            yield from _gpu_write_marker(ctx, conn.b.send_buf.base, size, i)
            wqe = _ib_write_wqe(conn.b, size, wr_id=i)
            conn.b.sq_index = yield from gpu_post_send(
                ctx, conn.b.node.nic, conn.b.qp, wqe, conn.b.sq_index)
            yield from gpu_wait_cq(ctx, consumer)

    return [conn.a.node.gpu.launch(ping), conn.b.node.gpu.launch(pong)]


def _ib_assisted(cluster, conn, size, total, warmup, timing):
    """dev2dev-assisted: the GPU triggers a CPU proxy by writing a flag; the
    CPU runs the verbs (write-with-immediate so the host sees arrivals)."""
    handles = []
    for end, is_ping in ((conn.a, True), (conn.b, False)):
        flags = end.flag_page.base

        def gpu_ping(ctx, flags=flags):
            trc = ctx.sim.tracer
            for i in range(1, total + 1):
                if i == warmup + 1:
                    timing.start = ctx.sim.now
                measured = trc.enabled and i > warmup
                span = _phase(trc, "wr-generation", measured, i)
                t0 = ctx.sim.now
                yield from ctx.store_u64(flags + FLAG_REQUEST, i)
                yield from ctx.spin_until_u64(flags + FLAG_SENT, lambda v, i=i: v == i)
                t1 = ctx.sim.now
                span.end()
                span = _phase(trc, "polling", measured, i)
                yield from ctx.spin_until_u64(flags + FLAG_ARRIVED, lambda v, i=i: v == i)
                span.end()
                if i > warmup:
                    timing.post_time += t1 - t0
                    timing.poll_time += ctx.sim.now - t1
            timing.end = ctx.sim.now

        def gpu_pong(ctx, flags=flags):
            for i in range(1, total + 1):
                yield from ctx.spin_until_u64(flags + FLAG_ARRIVED, lambda v, i=i: v == i)
                yield from ctx.store_u64(flags + FLAG_REQUEST, i)
                yield from ctx.spin_until_u64(flags + FLAG_SENT, lambda v, i=i: v == i)

        def cpu_proxy(ctx, end=end, flags=flags):
            hca = end.node.nic
            send_consumer = end.host_send_cq_consumer()
            recv_consumer = end.host_recv_cq_consumer()
            # Pre-post a batch of receives (addresses may be zero, §IV-A).
            for _ in range(min(16, total)):
                end.rq_index = yield from ibv_post_recv(
                    ctx, hca, end.qp,
                    Wqe(opcode=IbOpcode.RECV, wr_id=0, local_addr=0, lkey=0,
                        length=max(size, 1)), end.rq_index)

            def service_send(i):
                wqe = _ib_write_wqe(end, size, wr_id=i,
                                    opcode=IbOpcode.RDMA_WRITE_WITH_IMM,
                                    immediate=i)
                end.sq_index = yield from ibv_post_send(ctx, hca, end.qp, wqe,
                                                        end.sq_index)
                yield from ibv_wait_cq(ctx, send_consumer)
                yield from ctx.write_u64(flags + FLAG_SENT, i)

            def service_recv(i):
                yield from ibv_wait_cq(ctx, recv_consumer)
                end.rq_index = yield from ibv_post_recv(
                    ctx, hca, end.qp,
                    Wqe(opcode=IbOpcode.RECV, wr_id=0, local_addr=0, lkey=0,
                        length=max(size, 1)), end.rq_index)
                yield from ctx.write_u64(flags + FLAG_ARRIVED, i)

            for i in range(1, total + 1):
                if end.node.node_id == 0:  # ping side: send then recv
                    yield from ctx.spin_until_u64(flags + FLAG_REQUEST,
                                                  lambda v, i=i: v >= i)
                    yield from service_send(i)
                    yield from service_recv(i)
                else:                       # pong side: recv then send
                    yield from service_recv(i)
                    yield from ctx.spin_until_u64(flags + FLAG_REQUEST,
                                                  lambda v, i=i: v >= i)
                    yield from service_send(i)

        handles.append(end.node.gpu.launch(gpu_ping if is_ping else gpu_pong))
        handles.append(end.node.cpu.spawn(cpu_proxy,
                                          name=f"ib-proxy{end.node.node_id}"))
    return handles


def _ib_host_controlled(cluster, conn, size, total, warmup, timing):
    """dev2dev-hostControlled: write-with-immediate to synchronize ping and
    pong on the CPUs (§V-B1); payloads still move GPU to GPU."""

    def side(end, is_ping):
        def body(ctx):
            hca = end.node.nic
            send_consumer = end.host_send_cq_consumer()
            recv_consumer = end.host_recv_cq_consumer()
            for _ in range(min(16, total)):
                end.rq_index = yield from ibv_post_recv(
                    ctx, hca, end.qp,
                    Wqe(opcode=IbOpcode.RECV, wr_id=0, local_addr=0, lkey=0,
                        length=max(size, 1)), end.rq_index)

            def do_send(i):
                wqe = _ib_write_wqe(end, size, wr_id=i,
                                    opcode=IbOpcode.RDMA_WRITE_WITH_IMM,
                                    immediate=i)
                end.sq_index = yield from ibv_post_send(ctx, hca, end.qp, wqe,
                                                        end.sq_index)
                yield from ibv_wait_cq(ctx, send_consumer)

            def do_recv(i):
                yield from ibv_wait_cq(ctx, recv_consumer)
                end.rq_index = yield from ibv_post_recv(
                    ctx, hca, end.qp,
                    Wqe(opcode=IbOpcode.RECV, wr_id=0, local_addr=0, lkey=0,
                        length=max(size, 1)), end.rq_index)

            trc = ctx.sim.tracer
            for i in range(1, total + 1):
                if is_ping:
                    if i == warmup + 1:
                        timing.start = ctx.sim.now
                    measured = trc.enabled and i > warmup
                    span = _phase(trc, "wr-generation", measured, i)
                    t0 = ctx.sim.now
                    yield from do_send(i)
                    t1 = ctx.sim.now
                    span.end()
                    span = _phase(trc, "polling", measured, i)
                    yield from do_recv(i)
                    span.end()
                    if i > warmup:
                        timing.post_time += t1 - t0
                        timing.poll_time += ctx.sim.now - t1
                else:
                    yield from do_recv(i)
                    yield from do_send(i)
            if is_ping:
                timing.end = ctx.sim.now
        return body

    return [conn.a.node.cpu.spawn(side(conn.a, True), name="ib-ping"),
            conn.b.node.cpu.spawn(side(conn.b, False), name="ib-pong")]
