"""Connection setup for the benchmark programs.

These builders do the host-side preparation the paper's test programs
perform before the timed region: allocate payload buffers (in GPU device
memory — all configurations are *dev2dev*), register them with the NIC,
open ports / connect queue pairs, and map the control resources (BAR pages,
doorbells, queues, flags) into the GPU's address space where a configuration
needs device-side access.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..cluster import Cluster
from ..errors import BenchmarkError
from ..extoll import RmaPort
from ..ib import IbResources, QueuePair, connect_qps
from ..memory import AddressRange
from ..node import Node
from .gpu_rma import GpuNotificationCursor
from .gpu_verbs import GpuCqConsumer


@dataclass
class ExtollEnd:
    """One side of an EXTOLL connection."""

    node: Node
    port: RmaPort
    send_buf: AddressRange           # GPU device memory
    recv_buf: AddressRange           # GPU device memory
    send_nla: AddressRange
    recv_nla: AddressRange
    # Host-memory flag page for the assisted mode (mapped into GPU UVA).
    flag_page: AddressRange

    def __post_init__(self) -> None:
        # One persistent consumer cursor per queue: measurements on the same
        # connection continue where the previous one left off, exactly like
        # reusing a port in the real library.
        self._req_cursor = GpuNotificationCursor(self.port.requester_queue)
        self._cmpl_cursor = GpuNotificationCursor(self.port.completer_queue)

    def requester_cursor(self) -> GpuNotificationCursor:
        return self._req_cursor

    def completer_cursor(self) -> GpuNotificationCursor:
        return self._cmpl_cursor

    def reset_flags(self) -> None:
        """Zero the assisted-mode flag page (between measurements)."""
        self.node.host_mem.fill(self.flag_page.base, self.flag_page.size, 0)


@dataclass
class ExtollConnection:
    a: ExtollEnd
    b: ExtollEnd

    def peer_of(self, end: ExtollEnd) -> ExtollEnd:
        return self.b if end is self.a else self.a


def setup_extoll_connection(cluster: Cluster, buf_bytes: int,
                            port_id: Optional[int] = None) -> ExtollConnection:
    """Open one port pair and register GPU payload buffers on both nodes."""
    ends = []
    ports = [cluster.a.nic.open_port(port_id), cluster.b.nic.open_port(port_id)]
    for node, port in zip(cluster.nodes, ports):
        send_buf = node.gpu_malloc(buf_bytes)
        recv_buf = node.gpu_malloc(buf_bytes)
        flag_page = node.host_malloc(4096)
        node.host_mem.fill(flag_page.base, flag_page.size, 0)
        end = ExtollEnd(
            node=node, port=port,
            send_buf=send_buf, recv_buf=recv_buf,
            send_nla=node.nic.register_memory(send_buf),
            recv_nla=node.nic.register_memory(recv_buf),
            flag_page=flag_page,
        )
        # Device-side access: the requester page (driver patch, §III-C), the
        # kernel-space notification queues, and the assisted-mode flag page.
        node.gpu.map_mmio(AddressRange(port.page_addr, 4096))
        for q in (port.requester_queue, port.completer_queue):
            node.gpu.map_host_memory(q.range)
        node.gpu.map_host_memory(flag_page)
        ends.append(end)
    return ExtollConnection(*ends)


def setup_extoll_connections(cluster: Cluster, buf_bytes: int,
                             count: int) -> List[ExtollConnection]:
    """N independent connections (ports 0..N-1 on both nodes), as the
    message-rate benchmark requires (§V-A2: 'Each message is sent over a
    different EXTOLL RMA port')."""
    if count < 1:
        raise BenchmarkError("need at least one connection")
    return [setup_extoll_connection(cluster, buf_bytes, port_id=i)
            for i in range(count)]


@dataclass
class IbEnd:
    """One side of an InfiniBand connection."""

    node: Node
    qp: QueuePair
    send_cq_consumer_base: int       # CQ buffer base for consumers
    send_buf: AddressRange           # GPU device memory
    recv_buf: AddressRange
    lkey: int
    rkey_remote: int = 0             # peer's rkey for its recv_buf
    remote_recv_addr: int = 0
    flag_page: AddressRange = None   # assisted-mode flag page
    # Persistent ring producer indices — a QP's rings keep advancing across
    # measurements, exactly like a long-lived QP in the real library.
    sq_index: int = 0
    rq_index: int = 0

    def __post_init__(self) -> None:
        from ..ib import CqConsumer

        self._gpu_send_consumer = GpuCqConsumer(self.qp.send_cq.buffer.base,
                                                self.qp.send_cq.entries)
        self._gpu_recv_consumer = GpuCqConsumer(self.qp.recv_cq.buffer.base,
                                                self.qp.recv_cq.entries)
        self._host_send_consumer = CqConsumer(self.qp.send_cq)
        self._host_recv_consumer = CqConsumer(self.qp.recv_cq)

    def send_cq_consumer(self) -> GpuCqConsumer:
        return self._gpu_send_consumer

    def recv_cq_consumer(self) -> GpuCqConsumer:
        return self._gpu_recv_consumer

    def host_send_cq_consumer(self):
        return self._host_send_consumer

    def host_recv_cq_consumer(self):
        return self._host_recv_consumer

    def reset_flags(self) -> None:
        self.node.host_mem.fill(self.flag_page.base, self.flag_page.size, 0)


@dataclass
class IbConnection:
    a: IbEnd
    b: IbEnd

    def peer_of(self, end: IbEnd) -> IbEnd:
        return self.b if end is self.a else self.a


def setup_ib_connection(cluster: Cluster, buf_bytes: int,
                        buffer_location: str = "gpu") -> IbConnection:
    """Create a connected QP pair with WQ/CQ rings on ``buffer_location``
    ('gpu' = dev2devBufOnGPU, 'host' = dev2devBufOnHost) and registered GPU
    payload buffers on both nodes."""
    if buffer_location not in ("gpu", "host"):
        raise BenchmarkError(f"bad buffer location {buffer_location!r}")
    ends = []
    qps = []
    for node in cluster.nodes:
        res = IbResources(node, node.nic)
        qp = res.create_qp(buffer_location)
        qps.append(qp)
        send_buf = node.gpu_malloc(buf_bytes)
        recv_buf = node.gpu_malloc(buf_bytes)
        mr_send = node.nic.register_memory(send_buf)
        mr_recv = node.nic.register_memory(recv_buf)
        flag_page = node.host_malloc(4096)
        node.host_mem.fill(flag_page.base, flag_page.size, 0)
        end = IbEnd(node=node, qp=qp,
                    send_cq_consumer_base=qp.send_cq.buffer.base,
                    send_buf=send_buf, recv_buf=recv_buf,
                    lkey=mr_send.lkey, flag_page=flag_page)
        end._mr_recv_rkey = mr_recv.rkey
        # GPU access to the control path: the doorbell page and, when the
        # rings live in host memory, the ring/CQ buffers (§IV-B).
        node.gpu.map_mmio(node.nic.bar.range)
        if buffer_location == "host":
            for rng in (qp.sq_buffer, qp.rq_buffer,
                        qp.send_cq.buffer, qp.recv_cq.buffer):
                node.gpu.map_host_memory(rng)
        node.gpu.map_host_memory(flag_page)
        ends.append(end)
    connect_qps(qps[0], 0, qps[1], 1)
    # Exchange rkeys/addresses out of band.
    ends[0].rkey_remote = ends[1]._mr_recv_rkey
    ends[0].remote_recv_addr = ends[1].recv_buf.base
    ends[1].rkey_remote = ends[0]._mr_recv_rkey
    ends[1].remote_recv_addr = ends[0].recv_buf.base
    return IbConnection(*ends)


def setup_ib_connections(cluster: Cluster, buf_bytes: int, count: int,
                         buffer_location: str = "gpu") -> List[IbConnection]:
    """N connected QP pairs, one per block/kernel (§V-B2)."""
    if count < 1:
        raise BenchmarkError("need at least one connection")
    conns = []
    for i in range(count):
        conns.append(setup_ib_connection(cluster, buf_bytes, buffer_location))
    return conns
