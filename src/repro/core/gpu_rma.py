"""The GPU-resident EXTOLL RMA API (§III-C) — the paper's contribution.

Device threads drive the RMA unit directly:

* :func:`gpu_rma_post` — a single thread assembles the 192-bit descriptor and
  stores its three 64-bit words into the UVA-mapped BAR requester page.
* :func:`gpu_rma_wait_notification` — spin on the next notification slot *in
  host memory* (one PCIe round trip per poll), then consume and free it:
  two 64-bit zeroing stores plus the 32-bit read-pointer store, exactly the
  traffic Table I decomposes.
* :func:`gpu_rma_poll_last_element` — the ``dev2dev-pollOnGPU`` alternative:
  spin on the last payload element in *device memory*, where the poll loop
  runs out of the L2.

Instruction budgets (ALU work around the memory operations) are charged
explicitly so ``instructions executed`` in Table I emerges from execution.
"""

from __future__ import annotations

from ..errors import RmaError
from ..extoll import Notification, NotificationCursor, RmaWorkRequest
from ..gpu import ThreadCtx
from ..sim import NULL_SPAN

# ALU instruction budgets (loads/stores add their own instruction counts).
POST_ASSEMBLE_COST = 34        # pack the three descriptor words
# Each notification poll re-derives the slot address (ring wrap, pointer
# arithmetic), tests the valid bit, and branches — far more work per
# iteration than a flag compare, which is why Table I shows the
# notification-polling kernel executing ~2x the instructions.
POLL_LOOP_COST = 26
CONSUME_COST = 22              # decode, ring bookkeeping after a hit
DEVICE_POLL_LOOP_COST = 4      # compare + branch on the payload flag


# The consumer state is the same whether a host thread or a device thread
# drains the queue — only the access timing differs.  Sharing the class lets
# a connection keep ONE persistent cursor per queue across measurements.
GpuNotificationCursor = NotificationCursor


def gpu_rma_post(ctx: ThreadCtx, page_addr: int, wr: RmaWorkRequest):
    """Post a put/get descriptor from a single device thread: three 64-bit
    stores into the BAR requester page; the third triggers execution.

    Returns the simulated time spent (used by the Fig. 3 phase split).
    """
    start = ctx.sim.now
    trc = ctx.sim.tracer
    span = (trc.begin("rma.api", "gpu_rma_post", track=ctx.track,
                      op=wr.op.name.lower(), bytes=wr.size)
            if trc.enabled else NULL_SPAN)
    yield from ctx.alu(POST_ASSEMBLE_COST)
    w0, w1, w2 = wr.words()
    yield from ctx.store_u64(page_addr, w0)
    yield from ctx.store_u64(page_addr + 8, w1)
    yield from ctx.store_u64(page_addr + 16, w2)
    span.end()
    return ctx.sim.now - start


def gpu_rma_wait_notification(ctx: ThreadCtx, cursor: GpuNotificationCursor,
                              max_polls: int | None = 1_000_000):
    """Spin until the next notification arrives, then consume and free it.

    Every poll is a 64-bit load from the kernel-space queue in host memory —
    a full PCIe round trip from the GPU's point of view.  Returns
    ``(Notification, polls)``.
    """
    trc = ctx.sim.tracer
    # Notification waits are the polling layer — one span per *wait*, but
    # there are as many waits as messages, so this is a microscopic
    # category ("rma.poll") that the telemetry flight recorder filters out
    # by default; gate on wants() so the filtered case pays one check.
    traced = trc.wants("rma.poll")
    span = (trc.begin("rma.poll", "wait-notification", track=ctx.track)
            if traced else NULL_SPAN)
    polls = 0
    while True:
        word0 = yield from ctx.load_u64(cursor.slot_addr)
        polls += 1
        yield from ctx.alu(POLL_LOOP_COST)
        if Notification.is_valid_word(word0):
            break
        if max_polls is not None and polls >= max_polls:
            raise RmaError(f"GPU notification wait exceeded {max_polls} polls")
        if polls > 64:  # long wait: progressive backoff (see ThreadCtx.spin_until_u64)
            yield ctx.sim.timeout(min(1e-6 * (2 ** ((polls - 64) // 32)), 50e-6))
    record = yield from _consume_notification(ctx, cursor)
    span.end(polls=polls)
    if traced:
        trc.metrics.histogram("rma.notification_polls").observe(polls)
    return record, polls


def _consume_notification(ctx: ThreadCtx, cursor: GpuNotificationCursor):
    """Read, decode, and free the current slot; advance the cursor."""
    raw = yield from ctx.load(cursor.slot_addr, 16)
    record = Notification.decode(raw)
    yield from ctx.alu(CONSUME_COST)
    # Free the record (128 bits, two 64-bit stores) and publish the new
    # 32-bit read pointer — all system-memory writes (§V-A3).
    yield from ctx.store_u64(cursor.slot_addr, 0)
    yield from ctx.store_u64(cursor.slot_addr + 8, 0)
    cursor.read_index += 1
    yield from ctx.store_u32(cursor.queue.read_ptr_addr,
                             cursor.read_index % (1 << 32))
    return record


def gpu_rma_try_notification(ctx: ThreadCtx, cursor: GpuNotificationCursor):
    """Non-blocking notification check: one poll, consume on a hit.

    The engine's scheduler interleaves many connections, so it cannot park
    a thread in :func:`gpu_rma_wait_notification`'s spin loop; instead it
    probes each cursor once per service pass.  A miss costs one PCIe load
    plus the loop ALU work; a hit additionally pays the consume sequence.
    Returns the :class:`Notification` or ``None``.
    """
    word0 = yield from ctx.load_u64(cursor.slot_addr)
    yield from ctx.alu(POLL_LOOP_COST)
    if not Notification.is_valid_word(word0):
        return None
    record = yield from _consume_notification(ctx, cursor)
    trc = ctx.sim.tracer
    if trc.enabled:
        trc.metrics.counter("rma.try_notification_hits").inc()
    return record


def gpu_rma_poll_last_element(ctx: ThreadCtx, flag_addr: int, expected: int,
                              max_polls: int | None = 5_000_000):
    """``dev2dev-pollOnGPU``: spin on the last 64-bit element the incoming
    message will write, in device memory.  Valid because EXTOLL delivers
    in-order.  Returns the poll count."""
    _value, polls = yield from ctx.spin_until_u64(
        flag_addr, lambda v: v == expected,
        loop_instructions=DEVICE_POLL_LOOP_COST, max_polls=max_polls)
    return polls
