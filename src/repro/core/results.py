"""Result containers shared by the benchmark programs and the analysis layer."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..gpu import CounterSet
from ..units import format_size, mb_per_s


@dataclass(frozen=True)
class LatencyPoint:
    """One (message size, half-round-trip latency) sample."""

    size: int
    latency: float            # seconds
    post_time: float = 0.0    # time spent generating/posting the WR (Fig. 3)
    poll_time: float = 0.0    # time spent polling for completion (Fig. 3)

    @property
    def latency_us(self) -> float:
        return self.latency * 1e6

    @property
    def poll_to_post_ratio(self) -> float:
        """Polling time over WR-generation time — the quantity Fig. 3 plots
        (§V-A3: 'polling on system memory needs ten times the time than it
        is needed to post the WR').

        A measurement that spent time polling but recorded no posting time
        has an unbounded ratio (``inf``); the ratio is undefined (``nan``)
        only when neither phase was measured.
        """
        if self.post_time <= 0.0:
            return float("inf") if self.poll_time > 0.0 else float("nan")
        return self.poll_time / self.post_time

    def to_dict(self) -> dict:
        """JSON-safe view for baselines and profile reports (the unbounded
        / undefined ratio serializes as ``None``, never ``inf``/``nan``)."""
        ratio = self.poll_to_post_ratio
        return {"size": self.size, "latency_us": self.latency_us,
                "post_time_us": self.post_time * 1e6,
                "poll_time_us": self.poll_time * 1e6,
                "poll_to_post_ratio":
                    ratio if ratio == ratio and ratio != float("inf") else None}


@dataclass(frozen=True)
class BandwidthPoint:
    size: int
    bytes_moved: int
    elapsed: float

    @property
    def mb_per_s(self) -> float:
        return mb_per_s(self.bytes_moved, self.elapsed)

    def to_dict(self) -> dict:
        return {"size": self.size, "bytes_moved": self.bytes_moved,
                "elapsed_us": self.elapsed * 1e6, "mb_per_s": self.mb_per_s}


@dataclass(frozen=True)
class RatePoint:
    connections: int
    messages: int
    elapsed: float

    @property
    def messages_per_s(self) -> float:
        return self.messages / self.elapsed


@dataclass
class Series:
    """One labeled curve of a figure."""

    label: str
    points: list = field(default_factory=list)

    def by_x(self) -> dict:
        out = {}
        for p in self.points:
            x = getattr(p, "size", None)
            if x is None:
                x = getattr(p, "connections")
            out[x] = p
        return out


@dataclass
class CounterReport:
    """Counters of one GPU over a measured region, normalized per iteration."""

    label: str
    iterations: int
    counters: CounterSet

    def per_iteration(self, field_name: str) -> float:
        return getattr(self.counters, field_name) / self.iterations


def render_latency_table(series: List[Series], title: str) -> str:
    """Text rendering in the layout of the paper's latency figures."""
    sizes = sorted({p.size for s in series for p in s.points})
    width = max(len(s.label) for s in series) + 2
    lines = [title, "=" * len(title)]
    header = "size".rjust(10) + "".join(s.label.rjust(width + 12)[:width + 12]
                                        for s in series)
    lines.append(header)
    for size in sizes:
        row = format_size(size).rjust(10)
        for s in series:
            p = s.by_x().get(size)
            cell = f"{p.latency_us:.2f}us" if p else "-"
            row += cell.rjust(width + 12)
        lines.append(row)
    return "\n".join(lines)


def render_bandwidth_table(series: List[Series], title: str) -> str:
    sizes = sorted({p.size for s in series for p in s.points})
    width = max(len(s.label) for s in series) + 2
    lines = [title, "=" * len(title)]
    lines.append("size".rjust(10) + "".join(s.label.rjust(width + 12)[:width + 12]
                                            for s in series))
    for size in sizes:
        row = format_size(size).rjust(10)
        for s in series:
            p = s.by_x().get(size)
            cell = f"{p.mb_per_s:.1f}MB/s" if p else "-"
            row += cell.rjust(width + 12)
        lines.append(row)
    return "\n".join(lines)


def render_rate_table(series: List[Series], title: str) -> str:
    xs = sorted({p.connections for s in series for p in s.points})
    width = max(len(s.label) for s in series) + 2
    lines = [title, "=" * len(title)]
    lines.append("conns".rjust(8) + "".join(s.label.rjust(width + 14)[:width + 14]
                                            for s in series))
    for x in xs:
        row = str(x).rjust(8)
        for s in series:
            p = s.by_x().get(x)
            cell = f"{p.messages_per_s:,.0f}/s" if p else "-"
            row += cell.rjust(width + 14)
        lines.append(row)
    return "\n".join(lines)


def render_counter_table(reports: List[CounterReport], title: str) -> str:
    """Text rendering in the layout of Tables I and II."""
    lines = [title, "=" * len(title)]
    labels = [r.label for r in reports]
    lines.append("metric".ljust(34) + "".join(l.rjust(18) for l in labels))
    rows = reports[0].counters.table_rows()
    for i, (metric, _) in enumerate(rows):
        row = metric.ljust(34)
        for r in reports:
            row += f"{r.counters.table_rows()[i][1]:,}".rjust(18)
        lines.append(row)
    return "\n".join(lines)
