"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch one type.  Subsystems raise the most specific subclass available.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """Misuse of the discrete-event simulation engine."""


class DeadlockError(SimulationError):
    """The simulator ran out of events while processes were still waiting."""


class MemoryError_(ReproError):
    """Base class for memory-subsystem errors (trailing underscore: the
    builtin ``MemoryError`` means the interpreter is out of memory, which is
    not what these signal)."""


class AddressError(MemoryError_):
    """An access touched an unmapped or out-of-range address."""


class AllocationError(MemoryError_):
    """An allocator could not satisfy a request."""


class TranslationError(MemoryError_):
    """Address translation (ATU / page table) failed."""


class PcieError(ReproError):
    """PCIe fabric misconfiguration or routing failure."""


class GpuError(ReproError):
    """GPU model misuse (bad launch geometry, unmapped UVA address, ...)."""


class LaunchError(GpuError):
    """Invalid kernel launch configuration."""


class NetworkError(ReproError):
    """Network fabric errors (unknown destination, link down, ...)."""


class NicError(ReproError):
    """Base class for NIC-model errors."""


class RmaError(NicError):
    """EXTOLL RMA unit errors (bad descriptor, queue overflow, ...)."""


class NotificationOverflowError(RmaError):
    """An EXTOLL notification queue overflowed because entries were not
    consumed and freed in time (the failure mode §III-A warns about)."""


class VerbsError(NicError):
    """InfiniBand Verbs errors (bad WR, QP in wrong state, ...)."""


class QpStateError(VerbsError):
    """Operation attempted on a queue pair in an incompatible state."""


class CompletionError(VerbsError):
    """A work request completed with an error status."""


class RegistrationError(NicError):
    """Memory (de)registration failed or a key/NLA did not validate."""


class FaultError(ReproError):
    """Base class for fault-injection and reliability-layer errors."""


class RetryExhaustedError(FaultError):
    """A reliability engine gave up after its retransmission budget: the
    peer never acknowledged despite exponential-backoff retries."""


class CorruptionError(FaultError):
    """Payload bytes failed their checksum — a corrupted packet reached a
    consumer that cannot tolerate it (reliable paths drop-and-retry
    instead of raising this)."""


class TriggeredError(NicError):
    """Misuse of the triggered-operations layer (arming a fired chain,
    ticking an unknown counter, overflowing a staged channel, ...)."""


class MpiError(ReproError):
    """Misuse of the MPI-shaped layer (bad rank/tag, request reuse,
    communicator driven after shutdown, ...)."""


class ConfigError(ReproError):
    """Invalid configuration parameters."""


class BenchmarkError(ReproError):
    """A benchmark harness was driven with inconsistent arguments."""


class CausalError(ReproError):
    """The causal DAG could not be assembled or walked (missing flow
    events, a dead-ended critical path, an unreconcilable request)."""
