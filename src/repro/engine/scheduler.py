"""Multi-connection service order and polling backoff — pure logic.

The engine replaces the paper's one-block-per-connection structure with a
single persistent proxy loop that owns M connections.  This module decides
*which lane gets served next* and *how hard to poll when nothing moves*;
like :mod:`repro.engine.batch` it is simulator-free so the policies can be
unit-tested directly.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..errors import ConfigError

POLICIES = ("round-robin", "priority")


class Scheduler:
    """Service-order policy over ``n_lanes`` submission rings.

    ``round-robin``
        Each service pass starts one lane past where the previous pass
        started, so no lane structurally goes first.
    ``priority``
        Lanes are served in descending ``priorities`` order every pass;
        ties rotate round-robin among themselves so equal-priority lanes
        still share fairly.
    """

    def __init__(self, n_lanes: int, policy: str = "round-robin",
                 priorities: Optional[Sequence[int]] = None) -> None:
        if n_lanes < 1:
            raise ConfigError(f"need >= 1 lane, got {n_lanes}")
        if policy not in POLICIES:
            raise ConfigError(
                f"unknown policy {policy!r} (choose from {POLICIES})")
        if priorities is not None and len(priorities) != n_lanes:
            raise ConfigError(
                f"{len(priorities)} priorities for {n_lanes} lanes")
        self.n_lanes = n_lanes
        self.policy = policy
        self.priorities = list(priorities) if priorities is not None \
            else [0] * n_lanes
        self._cursor = 0
        self.passes = 0

    def service_order(self) -> List[int]:
        """Lane indices for the next service pass."""
        self.passes += 1
        start = self._cursor
        self._cursor = (self._cursor + 1) % self.n_lanes
        rotated = [(start + i) % self.n_lanes for i in range(self.n_lanes)]
        if self.policy == "round-robin":
            return rotated
        # Priority: stable sort of the rotated order by descending
        # priority — rotation breaks ties, priority decides groups.
        return sorted(rotated, key=lambda j: -self.priorities[j])


class AdaptiveBackoff:
    """Spin -> yield with exponential backoff for the completion side.

    The proxy loop calls :meth:`idle` after a service pass that made no
    progress: the first ``spin_passes`` misses return ``0.0`` (keep
    spinning — latency matters while traffic is in flight), after which
    the returned delay doubles from ``base`` up to ``max_delay`` (the
    warp yields; a parked engine must not saturate PCIe with polls).
    Any progress resets the ladder via :meth:`reset`.
    """

    def __init__(self, spin_passes: int = 4, base: float = 0.5e-6,
                 max_delay: float = 50e-6) -> None:
        if spin_passes < 0:
            raise ConfigError(f"spin_passes must be >= 0, got {spin_passes}")
        if base <= 0 or max_delay < base:
            raise ConfigError("need 0 < base <= max_delay")
        self.spin_passes = spin_passes
        self.base = base
        self.max_delay = max_delay
        self._misses = 0
        self.yields = 0

    def idle(self) -> float:
        """Record one empty pass; returns the delay to sleep (0.0 while
        still in the spin phase)."""
        self._misses += 1
        if self._misses <= self.spin_passes:
            return 0.0
        self.yields += 1
        exp = self._misses - self.spin_passes - 1
        return min(self.base * (2 ** exp), self.max_delay)

    def reset(self) -> None:
        self._misses = 0

    @property
    def misses(self) -> int:
        return self._misses
