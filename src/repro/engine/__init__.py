"""The GPU communication offload engine.

Sits between the benchmark drivers and the raw ``extoll``/``ib`` device
APIs and recovers the efficiency the paper's one-thread-one-doorbell model
leaves on the table, with three independently switchable optimizations:

* **Warp-parallel WQE generation** (:mod:`repro.engine.wqe_gen`) — the
  descriptor-assembly ALU work divides across the warp's lanes and the
  finished bytes leave as wide stores.
* **Doorbell coalescing + aggregation** (:mod:`repro.engine.batch`) — N
  descriptors, one batched doorbell (one PCIe control TLP); runs of small
  messages optionally merge into one put.
* **Multi-connection scheduling** (:mod:`repro.engine.scheduler`,
  :mod:`repro.engine.engine`) — one persistent proxy block services M
  connections (round-robin or priority) with spin-then-yield adaptive
  polling backoff, replacing one-block-per-connection.

``python -m repro engine`` sweeps baseline vs each optimization vs all-on
and checks the acceptance invariants against the span trace.
"""

from .batch import Aggregate, Aggregator, DoorbellBatcher, Flush, \
    FlushPolicy, batched_mmio_floor
from .engine import (
    PINGPONG_CONFIGS,
    EngineConfig,
    EngineStats,
    aggregate_schedule,
    channel_payload,
    engine_extoll_rate_handles,
    engine_ib_rate_handles,
    run_engine_channel_traffic,
    run_engine_ib_message_rate,
    run_engine_message_rate,
    run_engine_pingpong,
)
from .scheduler import POLICIES, AdaptiveBackoff, Scheduler
from .wqe_gen import (
    BATCH_DOORBELL_COST,
    DEFAULT_LANES,
    engine_post_batch,
    engine_post_send_batch,
    engine_rma_post,
    engine_ring_batch_doorbell,
    engine_stage_batch,
    warp_cost,
)

__all__ = [
    "Aggregate",
    "Aggregator",
    "DoorbellBatcher",
    "Flush",
    "FlushPolicy",
    "PINGPONG_CONFIGS",
    "EngineConfig",
    "EngineStats",
    "aggregate_schedule",
    "batched_mmio_floor",
    "channel_payload",
    "engine_extoll_rate_handles",
    "engine_ib_rate_handles",
    "run_engine_channel_traffic",
    "run_engine_ib_message_rate",
    "run_engine_message_rate",
    "run_engine_pingpong",
    "POLICIES",
    "AdaptiveBackoff",
    "Scheduler",
    "BATCH_DOORBELL_COST",
    "DEFAULT_LANES",
    "engine_post_batch",
    "engine_post_send_batch",
    "engine_rma_post",
    "engine_ring_batch_doorbell",
    "engine_stage_batch",
    "warp_cost",
]
