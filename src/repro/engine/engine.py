"""The GPU communication offload engine: configuration and drivers.

One persistent proxy block owns M connections and drives them through the
engine's three optimizations (warp-parallel generation, doorbell
coalescing + aggregation, scheduled multiplexing with adaptive backoff) —
the structure later work converged on for GPU-initiated communication
(fully offloaded stream-aware message passing, arXiv:2306.15773; deferred/
triggered operation scheduling, arXiv:2406.05594), built here on the
paper's put/get substrate so every saving is attributable in the same
cost model the baselines use.

Drivers:

* :func:`run_engine_pingpong` — dev2dev-direct semantics through the
  engine posting path (the latency cost/benefit of each optimization).
* :func:`run_engine_message_rate` — the Fig. 2 experiment with the
  one-block-per-connection structure replaced by the engine proxy.
* :func:`run_engine_ib_message_rate` — the Fig. 5 analogue: batched WQEs,
  one doorbell per batch (the HCA's cumulative producer index makes
  doorbell coalescing native).
* :func:`run_engine_channel_traffic` — the proxy multiplexing msglib
  channels, for the faults/reliability interaction tests.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from ..cluster import Cluster
from ..errors import BenchmarkError, ConfigError
from ..extoll import NotifyFlags, RmaOp, RmaWorkRequest
from ..ib import WQE_FLAG_UNSIGNALED, IbOpcode, Wqe
from ..sim import NULL_SPAN
from ..core.gpu_rma import gpu_rma_post, gpu_rma_try_notification, \
    gpu_rma_wait_notification
from ..core.gpu_verbs import gpu_poll_cq
from ..core.message_rate import MESSAGE_BYTES, _RateTiming
from ..core.msglib import Channel, gpu_recv, gpu_send
from ..core.pingpong import _PingTiming, _phase, _validate
from ..core.results import LatencyPoint, RatePoint
from ..core.setup import ExtollConnection, IbConnection
from .batch import Aggregator, DoorbellBatcher, FlushPolicy
from .scheduler import AdaptiveBackoff, Scheduler
from .wqe_gen import (
    DEFAULT_LANES,
    engine_post_batch,
    engine_post_send_batch,
    engine_rma_post,
)


@dataclass(frozen=True)
class EngineConfig:
    """Which of the engine's optimizations are armed, and their knobs."""

    wqe_lanes: int = DEFAULT_LANES   # 1 = scalar single-thread generation
    batch_size: int = 8              # 1 = one doorbell per descriptor
    aggregate_bytes: int = 256       # 0 = no small-message aggregation
    flush_timeout: float = 2e-6      # batch latency bound (simulated s)
    policy: str = "round-robin"      # or "priority"
    priorities: Optional[Tuple[int, ...]] = None
    window: int = 16                 # per-connection outstanding WRs
    spin_passes: int = 4             # idle passes before backoff engages
    backoff_base: float = 0.5e-6
    backoff_max: float = 50e-6

    def __post_init__(self) -> None:
        if self.wqe_lanes < 1 or self.wqe_lanes > 32:
            raise ConfigError(f"wqe_lanes must be 1..32, got {self.wqe_lanes}")
        if self.batch_size < 1:
            raise ConfigError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.aggregate_bytes < 0:
            raise ConfigError("aggregate_bytes must be >= 0")
        if self.window < 1:
            raise ConfigError(f"window must be >= 1, got {self.window}")
        if self.flush_timeout <= 0:
            raise ConfigError("flush_timeout must be > 0")

    # -- which optimizations are on ---------------------------------------------
    @property
    def warp_parallel(self) -> bool:
        return self.wqe_lanes > 1

    @property
    def batching(self) -> bool:
        return self.batch_size > 1

    @property
    def aggregating(self) -> bool:
        return self.aggregate_bytes > MESSAGE_BYTES

    @property
    def effective_window(self) -> int:
        """Outstanding-WR bound; a batch must fit inside the window."""
        return max(self.window, self.batch_size)

    # -- the sweep's canonical variants -----------------------------------------
    @classmethod
    def baseline(cls) -> "EngineConfig":
        """The scalar path through the engine scheduler: no warp assembly,
        no coalescing, no aggregation — isolates the proxy structure."""
        return cls(wqe_lanes=1, batch_size=1, aggregate_bytes=0)

    @classmethod
    def warp_only(cls) -> "EngineConfig":
        return cls(batch_size=1, aggregate_bytes=0)

    @classmethod
    def batch_only(cls) -> "EngineConfig":
        return cls(wqe_lanes=1)

    @classmethod
    def all_on(cls) -> "EngineConfig":
        return cls()

    def describe(self) -> str:
        return (f"lanes={self.wqe_lanes} batch={self.batch_size} "
                f"agg={self.aggregate_bytes}B window={self.effective_window} "
                f"policy={self.policy}")


#: Engine pingpong variants exposed as CLI mode names (obs/perf CLIs).
PINGPONG_CONFIGS: Dict[str, EngineConfig] = {
    "dev2dev-engine": EngineConfig.warp_only(),
    "dev2dev-engineBatched": EngineConfig.all_on(),
}


@dataclass
class EngineStats:
    """Driver-side accounting of one engine run — reconciled against the
    NIC's hardware counters and the span trace by the invariant checks.

    Every field except ``inflight`` is a monotonic counter; ``inflight`` is
    a gauge (descriptors posted but not yet reaped) maintained live by the
    proxy loops so the telemetry sampler can read proxy occupancy mid-run.
    Implements the uniform ``snapshot()``/``diff()`` protocol the sampler
    polls (:mod:`repro.telemetry.sampler`).
    """

    messages: int = 0
    wrs: int = 0                 # descriptors/WQEs handed to the NIC
    doorbells: int = 0           # doorbell/trigger MMIO stores issued
    batches: int = 0             # batched doorbells among them
    timeout_flushes: int = 0
    passes: int = 0              # scheduler service passes
    backoff_yields: int = 0
    polls: int = 0               # completion probes
    poll_hits: int = 0
    inflight: int = 0            # GAUGE: posted minus reaped descriptors

    #: Fields that are instantaneous levels, not monotonic totals.
    GAUGES = ("inflight",)

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)

    def snapshot(self) -> Dict[str, int]:
        """Point-in-time copy of every counter and gauge (plain dict)."""
        return self.as_dict()

    def diff(self, earlier: Dict[str, int]) -> Dict[str, int]:
        """Counters accumulated since ``earlier`` (a prior
        :meth:`snapshot`); gauges report their *current* level, not a
        delta.  Fields unseen by ``earlier`` diff against zero."""
        out = {}
        for name, value in self.as_dict().items():
            if name in self.GAUGES:
                out[name] = value
            else:
                out[name] = value - earlier.get(name, 0)
        return out


def aggregate_schedule(per_connection: int, message_bytes: int,
                       max_bytes: int) -> List[int]:
    """Per-lane put sizes after aggregation: ``per_connection`` messages of
    ``message_bytes`` merged into runs of at most ``max_bytes``."""
    if max_bytes <= message_bytes:
        return [message_bytes] * per_connection
    agg = Aggregator(max_bytes)
    sizes: List[int] = []
    for _ in range(per_connection):
        done = agg.add(0, message_bytes)
        if done is not None:
            sizes.append(done.bytes)
    sizes.extend(a.bytes for a in agg.drain(0))
    return sizes


# =============================================================================
# Latency: engine ping-pong (dev2dev-direct semantics)
# =============================================================================

def _engine_wr(end, peer, size: int) -> RmaWorkRequest:
    return RmaWorkRequest(
        op=RmaOp.PUT, port=end.port.port_id, dst_node=peer.node.node_id,
        src_nla=end.send_nla.base, dst_nla=peer.recv_nla.base, size=size,
        flags=NotifyFlags.REQUESTER | NotifyFlags.COMPLETER)


def _engine_post(ctx, end, wr: RmaWorkRequest, config: EngineConfig):
    """Post one descriptor through whichever engine path is armed."""
    ncfg = end.node.nic.config
    if config.batching:
        yield from engine_post_batch(ctx, end.port.page_addr,
                                     ncfg.batch_region_offset,
                                     ncfg.batch_doorbell_offset, [wr],
                                     config.wqe_lanes)
    elif config.warp_parallel:
        yield from engine_rma_post(ctx, end.port.page_addr, wr,
                                   config.wqe_lanes)
    else:
        yield from gpu_rma_post(ctx, end.port.page_addr, wr)


def run_engine_pingpong(cluster: Cluster, conn: ExtollConnection, size: int,
                        iterations: int = 30, warmup: int = 3,
                        config: Optional[EngineConfig] = None) -> LatencyPoint:
    """dev2dev-direct ping-pong with the engine posting path on both sides:
    explicit requester+completer notifications, identical semantics to the
    baseline — only WR generation and doorbell mechanics differ."""
    config = config or EngineConfig.all_on()
    _validate(size, iterations, warmup)
    if size > conn.a.send_buf.size:
        raise BenchmarkError(f"size {size} exceeds buffer {conn.a.send_buf.size}")
    total = iterations + warmup
    timing = _PingTiming()
    for end in (conn.a, conn.b):
        end.reset_flags()

    wr_ping = _engine_wr(conn.a, conn.b, size)
    wr_pong = _engine_wr(conn.b, conn.a, size)

    def ping(ctx):
        trc = ctx.sim.tracer
        req_cur = conn.a.requester_cursor()
        cmpl_cur = conn.a.completer_cursor()
        for i in range(1, total + 1):
            if i == warmup + 1:
                timing.start = ctx.sim.now
            measured = trc.enabled and i > warmup
            span = _phase(trc, "wr-generation", measured, i)
            t0 = ctx.sim.now
            yield from _engine_post(ctx, conn.a, wr_ping, config)
            t1 = ctx.sim.now
            span.end()
            span = _phase(trc, "polling", measured, i)
            yield from gpu_rma_wait_notification(ctx, req_cur)
            yield from gpu_rma_wait_notification(ctx, cmpl_cur)
            span.end()
            if i > warmup:
                timing.post_time += t1 - t0
                timing.poll_time += ctx.sim.now - t1
        timing.end = ctx.sim.now

    def pong(ctx):
        req_cur = conn.b.requester_cursor()
        cmpl_cur = conn.b.completer_cursor()
        for i in range(1, total + 1):
            yield from gpu_rma_wait_notification(ctx, cmpl_cur)
            yield from _engine_post(ctx, conn.b, wr_pong, config)
            yield from gpu_rma_wait_notification(ctx, req_cur)

    handles = [conn.a.node.gpu.launch(ping), conn.b.node.gpu.launch(pong)]
    trc = cluster.sim.tracer
    bench = (trc.begin("bench", "pingpong:engine", track="bench", size=size,
                       iterations=iterations, warmup=warmup,
                       engine=config.describe())
             if trc.enabled else NULL_SPAN)
    cluster.sim.run_until_complete(*handles, limit=cluster.sim.now + 600.0)
    bench.end()
    elapsed = timing.end - timing.start
    return LatencyPoint(size=size, latency=elapsed / (2 * iterations),
                        post_time=timing.post_time / iterations,
                        poll_time=timing.poll_time / iterations)


# =============================================================================
# Message rate: the EXTOLL engine proxy (Fig. 2 structure replaced)
# =============================================================================

def engine_extoll_rate_handles(cluster: Cluster,
                               connections: Sequence[ExtollConnection],
                               per_connection: int, timing: _RateTiming,
                               config: EngineConfig,
                               stats: Optional[EngineStats] = None) -> list:
    """Build the engine proxy process for the EXTOLL message-rate
    benchmark: ONE persistent block multiplexing every connection."""
    stats = stats if stats is not None else EngineStats()
    gpu = connections[0].a.node.gpu
    lanes_n = len(connections)
    schedule = aggregate_schedule(
        per_connection, MESSAGE_BYTES,
        config.aggregate_bytes if config.aggregating else 0)
    target_wrs = len(schedule)

    def make_wr(conn: ExtollConnection, nbytes: int,
                signal: bool) -> RmaWorkRequest:
        return RmaWorkRequest(
            op=RmaOp.PUT, port=conn.a.port.port_id,
            dst_node=conn.b.node.node_id, src_nla=conn.a.send_nla.base,
            dst_nla=conn.b.recv_nla.base, size=nbytes,
            flags=NotifyFlags.REQUESTER if signal else NotifyFlags.NONE)

    def proxy(ctx):
        sched = Scheduler(lanes_n, config.policy, config.priorities)
        backoff = AdaptiveBackoff(config.spin_passes, config.backoff_base,
                                  config.backoff_max)
        # The batcher queues put *sizes*; descriptors are built at flush
        # time so only the batch's LAST put requests a requester
        # notification — EXTOLL executes one port's descriptors in order,
        # so its notification confirms the whole batch (the selective-
        # signaling the scalar one-doorbell-per-WR API cannot express).
        batcher = DoorbellBatcher(FlushPolicy(
            max_descriptors=config.batch_size,
            timeout=config.flush_timeout if config.batching else None))
        cursors = [c.a.requester_cursor() for c in connections]
        next_wr = [0] * lanes_n
        posted = [0] * lanes_n
        reaped = [0] * lanes_n
        inflight: List[Deque[int]] = [deque() for _ in range(lanes_n)]
        window = config.effective_window

        def post_flush(j: int, sizes):
            conn = connections[j]
            ncfg = conn.a.node.nic.config
            last = len(sizes) - 1
            wrs = [make_wr(conn, nbytes, signal=(i == last or not config.batching))
                   for i, nbytes in enumerate(sizes)]
            if config.batching:
                yield from engine_post_batch(
                    ctx, conn.a.port.page_addr, ncfg.batch_region_offset,
                    ncfg.batch_doorbell_offset, wrs, config.wqe_lanes)
                stats.batches += 1
                stats.doorbells += 1
                inflight[j].append(len(wrs))
            else:
                for wr in wrs:
                    if config.warp_parallel:
                        yield from engine_rma_post(ctx, conn.a.port.page_addr,
                                                   wr, config.wqe_lanes)
                    else:
                        yield from gpu_rma_post(ctx, conn.a.port.page_addr, wr)
                    stats.doorbells += 1
                    inflight[j].append(1)
            stats.wrs += len(wrs)
            stats.inflight += len(wrs)
            # Live message accounting (each aggregate carries size/64B
            # messages) so rate samplers see progress, not an upfront total.
            stats.messages += sum(nbytes // MESSAGE_BYTES for nbytes in sizes)
            posted[j] += len(wrs)

        def lane_done(j: int) -> bool:
            return (next_wr[j] >= target_wrs and batcher.pending(j) == 0
                    and reaped[j] >= target_wrs)

        timing.starts.append(ctx.sim.now)
        while not all(lane_done(j) for j in range(lanes_n)):
            progressed = False
            stats.passes += 1
            for flush in batcher.poll_timeouts(ctx.sim.now):
                yield from post_flush(flush.conn_id, flush.items)
                progressed = True
            for j in sched.service_order():
                conn = connections[j]
                # Submission side: feed the batcher while the window has
                # room; stop after one posted flush per visit (fairness).
                while (next_wr[j] < target_wrs
                       and posted[j] - reaped[j] + batcher.pending(j) < window):
                    nbytes = schedule[next_wr[j]]
                    next_wr[j] += 1
                    flush = batcher.submit(j, nbytes, nbytes, ctx.sim.now)
                    flushes = [flush] if flush is not None else []
                    if next_wr[j] >= target_wrs and batcher.pending(j):
                        # Lane exhausted: drain the tail now, no later
                        # traffic will trip the count trigger.
                        flushes.extend(batcher.drain(j))
                    for f in flushes:
                        yield from post_flush(f.conn_id, f.items)
                    if flushes:
                        progressed = True
                        break
                # Completion side: one non-blocking probe per visit; a hit
                # retires the oldest outstanding flush (its signaled tail).
                if reaped[j] < posted[j]:
                    stats.polls += 1
                    note = yield from gpu_rma_try_notification(ctx, cursors[j])
                    if note is not None:
                        done = inflight[j].popleft()
                        reaped[j] += done
                        stats.inflight -= done
                        stats.poll_hits += 1
                        progressed = True
            if progressed:
                backoff.reset()
            else:
                delay = backoff.idle()
                if delay > 0:
                    yield ctx.sim.timeout(delay)
                else:
                    yield from ctx.alu(4)   # spin pass: compare + branch
        timing.ends.append(ctx.sim.now)
        stats.timeout_flushes += batcher.timeout_flushes
        stats.backoff_yields += backoff.yields

    return [gpu.launch(proxy, grid=1, block=1)]


def run_engine_message_rate(cluster: Cluster,
                            connections: Sequence[ExtollConnection],
                            config: Optional[EngineConfig] = None,
                            per_connection: int = 120,
                            stats: Optional[EngineStats] = None,
                            ) -> Tuple[RatePoint, EngineStats]:
    """The Fig. 2 message-rate experiment through the engine proxy.
    Returns the measured :class:`RatePoint` plus the engine's accounting
    (for the MMIO-coalescing invariants).  Pass ``stats`` to share the
    accounting object with a live observer (the telemetry sampler polls it
    mid-run); omitted, a fresh one is created."""
    if not connections:
        raise BenchmarkError("need at least one connection")
    if per_connection < 1:
        raise BenchmarkError("need at least one message per connection")
    config = config or EngineConfig.all_on()
    timing = _RateTiming()
    stats = stats if stats is not None else EngineStats()
    for conn in connections:
        conn.a.reset_flags()
        conn.b.reset_flags()
    handles = engine_extoll_rate_handles(cluster, connections, per_connection,
                                         timing, config, stats)
    trc = cluster.sim.tracer
    bench = (trc.begin("bench", "message-rate:engine", track="bench",
                       connections=len(connections),
                       per_connection=per_connection,
                       engine=config.describe())
             if trc.enabled else NULL_SPAN)
    cluster.sim.run_until_complete(*handles, limit=cluster.sim.now + 600.0)
    bench.end()
    point = RatePoint(connections=len(connections),
                      messages=len(connections) * per_connection,
                      elapsed=timing.elapsed)
    return point, stats


# =============================================================================
# Message rate: the InfiniBand engine proxy (Fig. 5 structure replaced)
# =============================================================================

def engine_ib_rate_handles(cluster: Cluster,
                           connections: Sequence[IbConnection],
                           per_connection: int, timing: _RateTiming,
                           config: EngineConfig,
                           stats: Optional[EngineStats] = None) -> list:
    """One persistent block posting batched WQEs over every QP: N wide WQE
    stores, one fence, ONE doorbell per batch (cumulative producer index).
    Aggregation is an EXTOLL-side device; IB batches descriptors only."""
    stats = stats if stats is not None else EngineStats()
    gpu = connections[0].a.node.gpu
    lanes_n = len(connections)

    def make_wqe(conn: IbConnection, wr_id: int, signal: bool) -> Wqe:
        return Wqe(opcode=IbOpcode.RDMA_WRITE, wr_id=wr_id,
                   local_addr=conn.a.send_buf.base, lkey=conn.a.lkey,
                   length=MESSAGE_BYTES, remote_addr=conn.a.remote_recv_addr,
                   rkey=conn.a.rkey_remote,
                   flags=0 if signal else WQE_FLAG_UNSIGNALED)

    def proxy(ctx):
        sched = Scheduler(lanes_n, config.policy, config.priorities)
        backoff = AdaptiveBackoff(config.spin_passes, config.backoff_base,
                                  config.backoff_max)
        consumers = [c.a.send_cq_consumer() for c in connections]
        posted = [0] * lanes_n
        reaped = [0] * lanes_n
        inflight: List[Deque[int]] = [deque() for _ in range(lanes_n)]
        window = config.effective_window
        timing.starts.append(ctx.sim.now)
        while not all(posted[j] >= per_connection
                      and reaped[j] >= per_connection
                      for j in range(lanes_n)):
            progressed = False
            stats.passes += 1
            for j in sched.service_order():
                conn = connections[j]
                room = window - (posted[j] - reaped[j])
                todo = per_connection - posted[j]
                # Post whole batches (a partial one only as the tail): RC
                # ordering lets the batch's last WQE carry the only CQE.
                k = min(config.batch_size, todo)
                if 1 <= k <= room:
                    wqes = [make_wqe(conn, posted[j] + i + 1,
                                     signal=(i == k - 1 or not config.batching))
                            for i in range(k)]
                    conn.a.sq_index = yield from engine_post_send_batch(
                        ctx, conn.a.node.nic, conn.a.qp, wqes,
                        conn.a.sq_index, config.wqe_lanes)
                    posted[j] += k
                    stats.wrs += k
                    stats.inflight += k
                    stats.messages += k   # IB: one WQE per message, live
                    stats.doorbells += 1
                    if k > 1:
                        stats.batches += 1
                    if config.batching:
                        inflight[j].append(k)
                    else:
                        inflight[j].extend([1] * k)
                    progressed = True
                if reaped[j] < posted[j]:
                    stats.polls += 1
                    cqe = yield from gpu_poll_cq(ctx, consumers[j])
                    if cqe is not None:
                        done = inflight[j].popleft()
                        reaped[j] += done
                        stats.inflight -= done
                        stats.poll_hits += 1
                        progressed = True
            if progressed:
                backoff.reset()
            else:
                delay = backoff.idle()
                if delay > 0:
                    yield ctx.sim.timeout(delay)
                else:
                    yield from ctx.alu(4)
        timing.ends.append(ctx.sim.now)
        stats.backoff_yields += backoff.yields

    return [gpu.launch(proxy, grid=1, block=1)]


def run_engine_ib_message_rate(cluster: Cluster,
                               connections: Sequence[IbConnection],
                               config: Optional[EngineConfig] = None,
                               per_connection: int = 120,
                               ) -> Tuple[RatePoint, EngineStats]:
    if not connections:
        raise BenchmarkError("need at least one connection")
    if per_connection < 1:
        raise BenchmarkError("need at least one message per connection")
    config = config or EngineConfig.all_on()
    timing = _RateTiming()
    stats = EngineStats()
    handles = engine_ib_rate_handles(cluster, connections, per_connection,
                                     timing, config, stats)
    trc = cluster.sim.tracer
    bench = (trc.begin("bench", "message-rate:ib-engine", track="bench",
                       connections=len(connections),
                       per_connection=per_connection,
                       engine=config.describe())
             if trc.enabled else NULL_SPAN)
    cluster.sim.run_until_complete(*handles, limit=cluster.sim.now + 600.0)
    bench.end()
    point = RatePoint(connections=len(connections),
                      messages=len(connections) * per_connection,
                      elapsed=timing.elapsed)
    return point, stats


# =============================================================================
# Channel traffic: the proxy over msglib channels (faults interaction)
# =============================================================================

def channel_payload(channel_idx: int, msg_idx: int, nbytes: int) -> bytes:
    """Deterministic, distinct payload for (channel, message) — what the
    replay tests compare across runs."""
    return bytes((channel_idx * 37 + msg_idx * 11 + k) % 251
                 for k in range(nbytes))


def run_engine_channel_traffic(cluster: Cluster, channels: Sequence[Channel],
                               per_channel: int, payload_bytes: int = 32,
                               config: Optional[EngineConfig] = None,
                               limit: float = 600.0) -> Dict[str, object]:
    """One engine proxy on node A multiplexes sends over every channel in
    scheduler order; per-channel receivers on node B drain them.  Works
    unchanged over lossy links when the channels are reliable.  Returns
    the received payloads (per channel, in order) and the finish time."""
    if not channels:
        raise BenchmarkError("need at least one channel")
    if per_channel < 1:
        raise BenchmarkError("need at least one message per channel")
    config = config or EngineConfig.all_on()
    ends = [ch.a_to_b for ch in channels]
    reverses = [ch.b_to_a for ch in channels]
    received: List[List[bytes]] = [[] for _ in channels]

    def proxy(ctx):
        sched = Scheduler(len(channels), config.policy, config.priorities)
        sent = [0] * len(channels)
        while any(s < per_channel for s in sent):
            for j in sched.service_order():
                if sent[j] < per_channel:
                    data = channel_payload(j, sent[j], payload_bytes)
                    yield from gpu_send(ctx, ends[j], data)
                    sent[j] += 1

    def receiver(j: int):
        def body(ctx):
            for _ in range(per_channel):
                data = yield from gpu_recv(ctx, ends[j], reverses[j])
                received[j].append(data)
        return body

    # Each receiver on its own stream: they must run concurrently, or a
    # full ring on one channel would deadlock the serialized kernel queue.
    handles = [cluster.a.gpu.launch(proxy, grid=1, block=1)]
    handles += [cluster.b.gpu.launch(receiver(j), grid=1, block=1,
                                     stream=cluster.b.gpu.stream())
                for j in range(len(channels))]
    cluster.sim.run_until_complete(*handles, limit=cluster.sim.now + limit)
    return {"received": received, "finished_at": cluster.sim.now}
