"""Warp-parallel descriptor/WQE generation (device code).

The paper measures single-threaded work-request generation as the dominant
posting cost — ~442 instructions for ``ibv_post_send`` (§V-B3), 34+stores
for the EXTOLL descriptor — and notes "the work request generation cannot
be parallelized" *under the scalar API*.  The engine changes the API: the
warp's lanes each pack a slice of the descriptor, so the ALU critical path
shrinks to ``ceil(cost / lanes)`` (``ThreadCtx.alu_parallel``; counters
still record all issued instructions), and the finished bytes leave as
warp-coalesced wide stores instead of scalar store sequences.

Three posting shapes on EXTOLL:

* :func:`engine_rma_post` — one descriptor, one wide store into the classic
  trigger region (the §VI wide post with warp-parallel assembly).
* :func:`engine_stage_batch` + :func:`engine_ring_batch_doorbell` — the
  coalesced path: descriptors packed back-to-back into the requester
  page's staging region (5 per 128-byte TLP), then ONE 8-byte doorbell
  carrying the count posts them all.

And on InfiniBand:

* :func:`engine_post_send_batch` — build N WQEs warp-parallel, write each
  as ONE 64-byte wide store, fence once, ring ONE doorbell with the final
  producer index (the HCA fetches every fresh slot from the cumulative
  index, so doorbell coalescing needs no hardware change).
"""

from __future__ import annotations

from typing import List, Sequence

from ..errors import RmaError
from ..extoll import RmaWorkRequest
from ..extoll.descriptor import WR_BYTES
from ..gpu import ThreadCtx
from ..ib.hca import Hca, encode_doorbell
from ..ib.qp import QueuePair
from ..ib.wqe import (
    DOORBELL_BUILD_COST,
    Wqe,
    post_send_instruction_cost_static_optimized,
)
from ..sim import NULL_SPAN
from ..core.gpu_rma import POST_ASSEMBLE_COST

#: Default lane count for collaborative assembly: a quarter warp is enough
#: to flatten the 34-instruction descriptor pack; full 32 lanes buy nothing
#: once the critical path is a handful of instructions.
DEFAULT_LANES = 8

#: Descriptors per wide store when staging a batch: 5 x 24 B = 120 B fits
#: one 128-byte warp transaction.
_WRS_PER_WIDE_STORE = 128 // WR_BYTES

#: Assembling the count word for the batch doorbell (compare + pack).
BATCH_DOORBELL_COST = 6

#: IB post-path memory instructions on the engine path: one wide WQE store,
#: one fence, one doorbell store (vs 10 on the scalar path).
_ENGINE_POST_MEMORY_INSTRUCTIONS = 3


def warp_cost(cost: int, lanes: int) -> int:
    """The ALU critical path of ``cost`` instructions over ``lanes``."""
    return -(-cost // lanes)


# =============================================================================
# EXTOLL
# =============================================================================

def engine_rma_post(ctx: ThreadCtx, page_addr: int, wr: RmaWorkRequest,
                    lanes: int = DEFAULT_LANES):
    """Post one descriptor: warp-parallel assembly + one wide store into
    the trigger region.  Returns the simulated time spent."""
    start = ctx.sim.now
    trc = ctx.sim.tracer
    span = (trc.begin("rma.api", "engine_rma_post", track=ctx.track,
                      op=wr.op.name.lower(), bytes=wr.size, lanes=lanes)
            if trc.enabled else NULL_SPAN)
    yield from ctx.alu_parallel(POST_ASSEMBLE_COST, lanes)
    yield from ctx.store_wide(page_addr, wr.encode())
    span.end()
    return ctx.sim.now - start


def engine_stage_batch(ctx: ThreadCtx, page_addr: int, region_offset: int,
                       wrs: Sequence[RmaWorkRequest],
                       lanes: int = DEFAULT_LANES):
    """Stage descriptors back-to-back in the page's batch region without
    triggering anything: all of them assembled warp-parallel, packed five
    to a 128-byte wide store."""
    if not wrs:
        raise RmaError("empty descriptor batch")
    yield from ctx.alu_parallel(POST_ASSEMBLE_COST * len(wrs), lanes)
    raw = b"".join(wr.encode() for wr in wrs)
    chunk = _WRS_PER_WIDE_STORE * WR_BYTES
    for off in range(0, len(raw), chunk):
        yield from ctx.store_wide(page_addr + region_offset + off,
                                  raw[off:off + chunk])


def engine_ring_batch_doorbell(ctx: ThreadCtx, page_addr: int,
                               doorbell_offset: int, count: int):
    """Ring the page's batch doorbell: ONE 8-byte control store posts
    ``count`` staged descriptors (vs ``count`` trigger stores)."""
    trc = ctx.sim.tracer
    if trc.enabled:
        trc.instant("rma.api", "engine-doorbell", track=ctx.track,
                    descriptors=count)
    yield from ctx.alu(BATCH_DOORBELL_COST)
    yield from ctx.store_u64(page_addr + doorbell_offset, count)


def engine_post_batch(ctx: ThreadCtx, page_addr: int, region_offset: int,
                      doorbell_offset: int, wrs: Sequence[RmaWorkRequest],
                      lanes: int = DEFAULT_LANES):
    """Stage + ring in one call; the PCIe link's FIFO ordering guarantees
    every staged descriptor lands before the doorbell, the same guarantee
    the classic three-store post relies on.  Returns the time spent."""
    start = ctx.sim.now
    trc = ctx.sim.tracer
    span = (trc.begin("rma.api", "engine_post_batch", track=ctx.track,
                      descriptors=len(wrs), lanes=lanes)
            if trc.enabled else NULL_SPAN)
    yield from engine_stage_batch(ctx, page_addr, region_offset, wrs, lanes)
    yield from engine_ring_batch_doorbell(ctx, page_addr, doorbell_offset,
                                          len(wrs))
    span.end()
    return ctx.sim.now - start


# =============================================================================
# InfiniBand
# =============================================================================

def engine_post_send_batch(ctx: ThreadCtx, hca: Hca, qp: QueuePair,
                           wqes: Sequence[Wqe], producer_index: int,
                           lanes: int = DEFAULT_LANES):
    """Post N send WQEs with one doorbell.

    Per WQE: the build/byteswap/stamp work divides across the warp's
    lanes and the 64-byte descriptor leaves as one wide store.  Then one
    fence orders the whole batch and one doorbell carrying the *final*
    producer index rings it — the HCA's cumulative-index fetch loop picks
    up every fresh slot.  Returns the new producer index.
    """
    if not wqes:
        raise RmaError("empty WQE batch")
    qp.require_rts()
    trc = ctx.sim.tracer
    span = (trc.begin("ib.api", "engine_post_send_batch", track=ctx.track,
                      qp=qp.qp_num, wqes=len(wqes), lanes=lanes)
            if trc.enabled else NULL_SPAN)
    build = (post_send_instruction_cost_static_optimized()
             - DOORBELL_BUILD_COST - _ENGINE_POST_MEMORY_INSTRUCTIONS)
    index = producer_index
    for wqe in wqes:
        yield from ctx.alu_parallel(build, lanes)
        yield from ctx.store_wide(qp.sq_slot_addr(index), wqe.encode())
        index += 1
    yield from ctx.fence_system()
    # Doorbell assembly stays serial (one lane owns the register write).
    yield from ctx.alu(DOORBELL_BUILD_COST)
    yield from ctx.store_u64(hca.doorbell_addr(qp), encode_doorbell(index))
    span.end()
    if trc.enabled:
        trc.metrics.counter("ib.engine_batched_wqes").inc(len(wqes))
    return index


__all__ = [
    "DEFAULT_LANES",
    "BATCH_DOORBELL_COST",
    "warp_cost",
    "engine_rma_post",
    "engine_stage_batch",
    "engine_ring_batch_doorbell",
    "engine_post_batch",
    "engine_post_send_batch",
]
