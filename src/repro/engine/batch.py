"""Doorbell coalescing and small-message aggregation — pure queueing logic.

The offload engine's MMIO savings come from *when* it rings doorbells, not
from how descriptors are built, so the flush decision lives here as plain
data-structure code with no simulator dependency: the scheduler feeds
submissions in, this module answers "flush now?" and with what, and the
property tests (tests/engine) can exercise every policy corner without
spinning up a cluster.

Two independent mechanisms:

* :class:`DoorbellBatcher` — queue descriptors per connection and release
  them in batches, so one batched doorbell (one PCIe control TLP) posts N
  descriptors instead of N trigger stores.  Flush triggers: descriptor
  count, payload bytes, a timeout on the oldest queued descriptor, and an
  explicit drain.
* :class:`Aggregator` — merge runs of small back-to-back messages on one
  connection into a single larger put, trading per-message NIC descriptor
  decode (the ~2M WR/s requester cap) for payload size.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from ..errors import ConfigError


@dataclass(frozen=True)
class FlushPolicy:
    """When does a connection's pending batch go to the NIC?

    ``max_descriptors``
        Flush as soon as this many descriptors are queued (1 = no
        coalescing, every submission rings its own doorbell).
    ``max_bytes``
        Flush when queued payload bytes reach this (``None`` = unbounded).
    ``timeout``
        Flush when the oldest queued descriptor has waited this long in
        simulated seconds (``None`` = wait for count/bytes/drain).  The
        latency cost of coalescing is bounded by this knob.
    """

    max_descriptors: int = 8
    max_bytes: Optional[int] = None
    timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_descriptors < 1:
            raise ConfigError(
                f"max_descriptors must be >= 1, got {self.max_descriptors}")
        if self.max_bytes is not None and self.max_bytes < 1:
            raise ConfigError(f"max_bytes must be >= 1, got {self.max_bytes}")
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigError(f"timeout must be > 0, got {self.timeout}")


@dataclass(frozen=True)
class Flush:
    """One released batch: ring one doorbell for ``items``, in order."""

    conn_id: int
    items: Tuple[object, ...]
    reason: str           # "count" | "bytes" | "timeout" | "drain"

    def __len__(self) -> int:
        return len(self.items)


@dataclass
class _Lane:
    items: Deque[object] = field(default_factory=deque)
    bytes: int = 0
    oldest: float = 0.0   # submit time of the head item


class DoorbellBatcher:
    """Per-connection descriptor queues with a shared flush policy.

    Correctness contract (the hypothesis properties in tests/engine):
    every submitted item appears in exactly one flush, flushes preserve
    per-connection FIFO order, no flush exceeds ``max_descriptors``, and —
    absent byte-triggered flushes — the total number of flushes for a
    connection with N submissions is at most
    ``ceil(N / max_descriptors) + timeout_flushes``.
    """

    def __init__(self, policy: Optional[FlushPolicy] = None) -> None:
        self.policy = policy or FlushPolicy()
        # Ordered so timeout scans and drains are deterministic.
        self._lanes: "OrderedDict[int, _Lane]" = OrderedDict()
        self.doorbells = 0
        self.descriptors = 0
        self.count_flushes = 0
        self.byte_flushes = 0
        self.timeout_flushes = 0
        self.drain_flushes = 0

    def _lane(self, conn_id: int) -> _Lane:
        lane = self._lanes.get(conn_id)
        if lane is None:
            lane = self._lanes[conn_id] = _Lane()
        return lane

    def _release(self, conn_id: int, lane: _Lane, reason: str) -> Flush:
        take = min(len(lane.items), self.policy.max_descriptors)
        items = tuple(lane.items.popleft() for _ in range(take))
        lane.bytes = 0 if not lane.items else lane.bytes  # recomputed below
        flush = Flush(conn_id, items, reason)
        self.doorbells += 1
        self.descriptors += take
        setattr(self, f"{reason}_flushes",
                getattr(self, f"{reason}_flushes") + 1)
        return flush

    def submit(self, conn_id: int, item: object, nbytes: int = 0,
               now: float = 0.0) -> Optional[Flush]:
        """Queue one descriptor; returns a :class:`Flush` if the policy
        tripped, else ``None`` (the item stays pending)."""
        lane = self._lane(conn_id)
        if not lane.items:
            lane.oldest = now
        lane.items.append(item)
        lane.bytes += nbytes
        if len(lane.items) >= self.policy.max_descriptors:
            return self._release(conn_id, lane, "count")
        if self.policy.max_bytes is not None \
                and lane.bytes >= self.policy.max_bytes:
            flush = self._release(conn_id, lane, "byte")
            # Queued-byte accounting is approximate after a partial
            # release; zero it so byte flushes cannot cascade spuriously.
            lane.bytes = 0
            return flush
        return None

    def poll_timeouts(self, now: float) -> List[Flush]:
        """Release every lane whose head item has waited past the policy
        timeout.  Call from the scheduler's idle path."""
        if self.policy.timeout is None:
            return []
        out = []
        for conn_id, lane in self._lanes.items():
            if lane.items and now - lane.oldest >= self.policy.timeout:
                out.append(self._release(conn_id, lane, "timeout"))
                lane.bytes = 0
                lane.oldest = now
        return out

    def drain(self, conn_id: Optional[int] = None) -> List[Flush]:
        """Flush everything pending (one connection, or all of them) —
        the end-of-run tail, and the ``batch_size=1`` degenerate case."""
        lanes = ([(conn_id, self._lane(conn_id))] if conn_id is not None
                 else list(self._lanes.items()))
        out = []
        for cid, lane in lanes:
            while lane.items:
                out.append(self._release(cid, lane, "drain"))
            lane.bytes = 0
        return out

    def pending(self, conn_id: Optional[int] = None) -> int:
        if conn_id is not None:
            return len(self._lane(conn_id).items)
        return sum(len(lane.items) for lane in self._lanes.values())

    def stats(self) -> Dict[str, int]:
        return {
            "doorbells": self.doorbells,
            "descriptors": self.descriptors,
            "count_flushes": self.count_flushes,
            "byte_flushes": self.byte_flushes,
            "timeout_flushes": self.timeout_flushes,
            "drain_flushes": self.drain_flushes,
        }


@dataclass(frozen=True)
class Aggregate:
    """A run of consecutive small messages merged into one put."""

    conn_id: int
    count: int
    bytes: int


class Aggregator:
    """Merge back-to-back small messages on one connection into one put.

    ``max_bytes`` caps the merged payload (the staging window in the send
    buffer); a message larger than the cap passes through unmerged.  The
    requester decodes ONE descriptor per aggregate, which is how the
    engine beats the NIC's serial ~2M WR/s descriptor cap at 64 B.
    """

    def __init__(self, max_bytes: int = 256) -> None:
        if max_bytes < 1:
            raise ConfigError(f"max_bytes must be >= 1, got {max_bytes}")
        self.max_bytes = max_bytes
        self._open: Dict[int, Tuple[int, int]] = {}  # conn -> (count, bytes)
        self.messages = 0
        self.aggregates = 0

    def add(self, conn_id: int, nbytes: int) -> Optional[Aggregate]:
        """Account one message; returns a completed :class:`Aggregate`
        once the open run can no longer grow, else ``None``."""
        self.messages += 1
        count, total = self._open.get(conn_id, (0, 0))
        if total + nbytes > self.max_bytes and count > 0:
            # Close the open run, start a new one with this message.
            self._open[conn_id] = (1, nbytes)
            self.aggregates += 1
            return Aggregate(conn_id, count, total)
        count, total = count + 1, total + nbytes
        if total >= self.max_bytes:
            self._open[conn_id] = (0, 0)
            self.aggregates += 1
            return Aggregate(conn_id, count, total)
        self._open[conn_id] = (count, total)
        return None

    def drain(self, conn_id: Optional[int] = None) -> List[Aggregate]:
        conns = [conn_id] if conn_id is not None else list(self._open)
        out = []
        for cid in conns:
            count, total = self._open.get(cid, (0, 0))
            if count:
                out.append(Aggregate(cid, count, total))
                self.aggregates += 1
                self._open[cid] = (0, 0)
        return out


def batched_mmio_floor(wr_count: int, batch_size: int) -> int:
    """The engine's control-path floor: posting ``wr_count`` descriptors
    with perfect ``batch_size`` coalescing costs this many MMIO operations
    (one batched doorbell per full-or-final batch).  The triggered layer's
    claim is that it beats even this — zero BAR crossings after staging —
    so benchmarks compare against the floor, not against naive posting."""
    if wr_count < 0:
        raise ConfigError(f"negative descriptor count {wr_count}")
    if batch_size < 1:
        raise ConfigError(f"batch_size must be >= 1, got {batch_size}")
    return -(-wr_count // batch_size)
