"""``python -m repro engine`` — sweep the offload engine, verify its claims.

Three stages:

1. **Latency sweep** — ping-pong over message sizes: ``dev2dev-direct``
   (the paper's best GPU-controlled mode) vs the engine with each
   optimization alone and all of them armed.
2. **Rate sweep** — message rate over 1..32 connections: the paper's
   ``dev2dev-hostControlled`` / ``dev2dev-blocks`` references vs the same
   engine variants driven by ONE persistent proxy block.
3. **Verification** — the acceptance invariants, cross-checked three ways:
   driver-side :class:`~repro.engine.EngineStats`, the NIC's hardware
   counters, and the span trace's metric counters, plus the traced
   pingpong's phase spans reconciled against the measured point within 1%.

Exit status is non-zero if any invariant fails, so CI can gate on it.
"""

from __future__ import annotations

import argparse
from typing import Dict, List, Optional, Tuple

from ..analysis import invariants as inv
from ..cluster import build_extoll_cluster
from ..core.message_rate import run_extoll_message_rate
from ..core.modes import ExtollMode, RateMethod
from ..core.pingpong import run_extoll_pingpong
from ..core.setup import setup_extoll_connection, setup_extoll_connections
from ..obs.export import reconcile_with_point, write_chrome_trace
from ..obs.tracer import SpanTracer
from ..perf.profiler import RECONCILE_TOLERANCE
from ..sim import Simulator
from .engine import EngineConfig, EngineStats, run_engine_message_rate, \
    run_engine_pingpong

_BUF_BYTES = 64 * 1024

#: The sweep's engine variants, in ablation order.
VARIANTS: List[Tuple[str, EngineConfig]] = [
    ("engine-baseline", EngineConfig.baseline()),
    ("engine-warp", EngineConfig.warp_only()),
    ("engine-batch", EngineConfig.batch_only()),
    ("engine-all", EngineConfig.all_on()),
]

FULL_SIZES = [64, 256, 1024, 4096]
QUICK_SIZES = [64]
FULL_CONNECTIONS = [1, 2, 4, 8, 16, 32]
QUICK_CONNECTIONS = [1, 32]


def _fresh_extoll(seed: int, tracer: Optional[SpanTracer] = None):
    sim = Simulator(seed=seed, tracer=tracer)
    return build_extoll_cluster(sim=sim)


def latency_sweep(sizes: List[int], iterations: int, warmup: int,
                  seed: int) -> Dict[int, Dict[str, float]]:
    """Half-round-trip latency per size: direct reference + every engine
    variant.  Each cell runs on a fresh cluster so ports/cursors are
    independent."""
    out: Dict[int, Dict[str, float]] = {}
    for size in sizes:
        row: Dict[str, float] = {}
        cluster = _fresh_extoll(seed)
        conn = setup_extoll_connection(cluster, max(_BUF_BYTES, size))
        row["dev2dev-direct"] = run_extoll_pingpong(
            cluster, conn, ExtollMode.DIRECT, size,
            iterations=iterations, warmup=warmup).latency
        for name, config in VARIANTS:
            cluster = _fresh_extoll(seed)
            conn = setup_extoll_connection(cluster, max(_BUF_BYTES, size))
            row[name] = run_engine_pingpong(
                cluster, conn, size, iterations=iterations, warmup=warmup,
                config=config).latency
        out[size] = row
    return out


def rate_sweep(conn_counts: List[int], per_connection: int, seed: int,
               ) -> Tuple[Dict[int, Dict[str, float]], Dict[int, EngineStats]]:
    """Messages/s per connection count: host-controlled and blocks
    references + every engine variant.  Also returns the all-on variant's
    :class:`EngineStats` per count (for the MMIO verdicts)."""
    rates: Dict[int, Dict[str, float]] = {}
    all_stats: Dict[int, EngineStats] = {}
    for n in conn_counts:
        row: Dict[str, float] = {}
        for method in (RateMethod.HOST_CONTROLLED, RateMethod.BLOCKS):
            cluster = _fresh_extoll(seed)
            conns = setup_extoll_connections(cluster, _BUF_BYTES, n)
            row[method.value] = run_extoll_message_rate(
                cluster, conns, method,
                per_connection=per_connection).messages_per_s
        for name, config in VARIANTS:
            cluster = _fresh_extoll(seed)
            conns = setup_extoll_connections(cluster, _BUF_BYTES, n)
            point, stats = run_engine_message_rate(
                cluster, conns, config, per_connection=per_connection)
            row[name] = point.messages_per_s
            if name == "engine-all":
                all_stats[n] = stats
        rates[n] = row
    return rates, all_stats


def verification(latencies: Dict[int, Dict[str, float]],
                 rates: Dict[int, Dict[str, float]],
                 all_stats: Dict[int, EngineStats],
                 per_connection: int, iterations: int, warmup: int,
                 seed: int, trace_out: Optional[str] = None,
                 ) -> List[Tuple[str, Tuple[bool, str]]]:
    """The acceptance invariants, plus trace-reconciliation runs."""
    verdicts: List[Tuple[str, Tuple[bool, str]]] = []
    config = EngineConfig.all_on()

    # 1. Small-message latency: all-on engine must beat dev2dev-direct.
    lat_row = latencies[min(latencies)]
    verdicts.append(("latency-64B", inv.faster_than(
        lat_row["engine-all"], lat_row["dev2dev-direct"],
        "engine-all", "dev2dev-direct")))

    # 2. Many-connection rate: all-on engine >= dev2dev-hostControlled.
    top = max(rates)
    verdicts.append((f"rate-{top}conn", inv.rate_at_least(
        rates[top]["engine-all"], rates[top][RateMethod.HOST_CONTROLLED.value],
        "engine-all msg/s", "hostControlled msg/s")))

    # 3. MMIO coalescing: the configured batch factor must materialize.
    stats = all_stats[top]
    verdicts.append(("mmio-coalescing", inv.mmio_coalesced(
        stats.doorbells, stats.wrs, config.batch_size,
        stats.timeout_flushes, lanes=top)))

    # 4. Three-way counter reconciliation on a TRACED all-on rate run:
    # driver stats vs NIC hardware counters vs span-trace metrics.
    tracer = SpanTracer()
    cluster = _fresh_extoll(seed, tracer=tracer)
    conns = setup_extoll_connections(cluster, _BUF_BYTES, top)
    nic = cluster.a.nic
    _, traced_stats = run_engine_message_rate(
        cluster, conns, config, per_connection=per_connection)
    verdicts.append(("nic-doorbell-counter", inv.counter_reconciles(
        nic.batch_doorbells, traced_stats.batches, "nic batch doorbells")))
    verdicts.append(("nic-descriptor-counter", inv.counter_reconciles(
        nic.batch_descriptors, traced_stats.wrs, "nic batch descriptors")))
    verdicts.append(("trace-doorbell-counter", inv.counter_reconciles(
        tracer.metrics.counter("rma.batch_doorbells").value,
        traced_stats.batches, "traced batch doorbells")))
    verdicts.append(("trace-wr-counter", inv.counter_reconciles(
        tracer.metrics.counter("rma.wr_triggers").value,
        traced_stats.wrs, "traced WR triggers")))
    if trace_out:
        write_chrome_trace(tracer, trace_out)

    # 5. Traced engine pingpong: driver phase spans must reconcile with the
    # measured point within the profiler's 1% tolerance.
    ping_tracer = SpanTracer()
    cluster = _fresh_extoll(seed, tracer=ping_tracer)
    conn = setup_extoll_connection(cluster, _BUF_BYTES)
    point = run_engine_pingpong(cluster, conn, min(latencies),
                                iterations=iterations, warmup=warmup,
                                config=config)
    recon = reconcile_with_point(ping_tracer, point, iterations)
    for phase, r in recon["phases"].items():
        verdicts.append((f"span-reconcile-{phase}", (
            r["ok"], f"traced {r['traced'] * 1e6:.3f}us vs measured "
                     f"{r['expected'] * 1e6:.3f}us "
                     f"(rel err {r['rel_err'] * 100:.3f}%, "
                     f"allowed {RECONCILE_TOLERANCE * 100:g}%)")))
    return verdicts


def _render_table(title: str, unit: str, col_key: str,
                  data: Dict[int, Dict[str, float]],
                  scale: float) -> List[str]:
    columns = list(next(iter(data.values())).keys())
    lines = [title, "=" * len(title)]
    header = f"{col_key:>10} " + "".join(f"{c:>22}" for c in columns)
    lines.append(header)
    for key in sorted(data):
        row = data[key]
        lines.append(f"{key:>10} " + "".join(
            f"{row[c] * scale:>20.3f}{'':2}" for c in columns))
    lines.append(f"(values in {unit})")
    return lines


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro engine",
        description="Sweep the GPU offload engine and verify its claims.")
    parser.add_argument("--quick", action="store_true",
                        help="small sweep for CI (64B; 1 and 32 connections)")
    parser.add_argument("--per-connection", type=int, default=None,
                        help="messages per connection in the rate sweep "
                             "(default: 60, quick: 30)")
    parser.add_argument("--iterations", type=int, default=None,
                        help="pingpong iterations (default: 30, quick: 20)")
    parser.add_argument("--warmup", type=int, default=3,
                        help="pingpong warmup iterations (default: 3)")
    parser.add_argument("--seed", type=int, default=7,
                        help="simulator seed (default: 7)")
    parser.add_argument("--out", default=None,
                        help="write the traced rate run as a Chrome trace")
    args = parser.parse_args(argv)

    sizes = QUICK_SIZES if args.quick else FULL_SIZES
    conn_counts = QUICK_CONNECTIONS if args.quick else FULL_CONNECTIONS
    per_connection = args.per_connection or (30 if args.quick else 60)
    iterations = args.iterations or (20 if args.quick else 30)

    latencies = latency_sweep(sizes, iterations, args.warmup, args.seed)
    for line in _render_table("Engine latency sweep (half round trip)", "us",
                              "size/B", latencies, 1e6):
        print(line)
    print()

    rates, all_stats = rate_sweep(conn_counts, per_connection, args.seed)
    for line in _render_table("Engine message-rate sweep", "M msg/s",
                              "conns", rates, 1e-6):
        print(line)
    stats = all_stats[max(all_stats)]
    print(f"engine-all @ {max(all_stats)} connections: "
          f"{stats.messages} messages -> {stats.wrs} descriptors "
          f"(aggregation) -> {stats.doorbells} doorbell MMIO writes "
          f"(coalescing); {stats.passes} scheduler passes, "
          f"{stats.backoff_yields} backoff yields")
    print()

    verdicts = verification(latencies, rates, all_stats, per_connection,
                            iterations, args.warmup, args.seed, args.out)
    failed = 0
    print("Acceptance invariants")
    print("=====================")
    for name, (ok, detail) in verdicts:
        print(f"[{'PASS' if ok else 'FAIL'}] {name:<26} {detail}")
        failed += 0 if ok else 1
    if args.out:
        print(f"\ntrace written to {args.out}")
    if failed:
        print(f"\n{failed} invariant(s) FAILED")
        return 1
    print(f"\nall {len(verdicts)} invariants hold")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
