"""``python -m repro`` — print the reproduction report.

Equivalent to ``python -m repro.analysis.report``; see ``--help`` for the
scale option.
"""

import sys

from .analysis.report import main

if __name__ == "__main__":
    sys.exit(main())
