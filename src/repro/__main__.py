"""``python -m repro`` — the command-line entry point.

Subcommands:

* ``report`` (default) — print the full reproduction report
  (``python -m repro [report] [--scale S] [--trace PATH]``),
* ``trace`` — run one traced ping-pong and export a Chrome trace
  (``python -m repro trace --mode dev2dev-direct --size 64 --out trace.json``),
* ``collectives`` — N-node collective sweeps and traced runs
  (``python -m repro collectives --op all-reduce --nodes 2,4,8``),
* ``faults`` — chaos sweeps under deterministic fault injection
  (``python -m repro faults --loss 0,0.01,0.05 --mode all``),
* ``profile`` — cost-attribute one measurement into phases
  (``python -m repro profile --mode dev2dev-direct --size 64``),
* ``bench`` — record/check benchmark-regression baselines
  (``python -m repro bench --check --quick``),
* ``engine`` — sweep the GPU offload engine's optimizations and check its
  acceptance invariants (``python -m repro engine --quick``),
* ``monitor`` — run a scenario under the live telemetry plane: sampled
  time series, SLO verdicts, flight-recorder dumps
  (``python -m repro monitor engine --quick``),
* ``triggered`` — stage a ring exchange as counter-fired descriptor chains
  and compare its control path against host assist
  (``python -m repro triggered --nodes 4``),
* ``mpi`` — the MPI-shaped layer: tagged ping-pong across the
  eager/rendezvous crossover plus the triggered iallreduce ablation
  (``python -m repro mpi --nodes 4 --size 256``).
"""

import sys


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "trace":
        from .obs.cli import main as trace_main
        return trace_main(argv[1:])
    if argv and argv[0] == "profile":
        from .perf.cli import profile_main
        return profile_main(argv[1:])
    if argv and argv[0] == "bench":
        from .perf.cli import bench_main
        return bench_main(argv[1:])
    if argv and argv[0] == "collectives":
        from .collectives.cli import main as coll_main
        return coll_main(argv[1:])
    if argv and argv[0] == "faults":
        from .faults.cli import main as faults_main
        return faults_main(argv[1:])
    if argv and argv[0] == "engine":
        from .engine.cli import main as engine_main
        return engine_main(argv[1:])
    if argv and argv[0] == "monitor":
        from .telemetry.cli import main as monitor_main
        return monitor_main(argv[1:])
    if argv and argv[0] == "triggered":
        from .triggered.cli import main as triggered_main
        return triggered_main(argv[1:])
    if argv and argv[0] == "mpi":
        from .mpi.cli import main as mpi_main
        return mpi_main(argv[1:])
    if argv and argv[0] == "report":
        argv = argv[1:]
    from .analysis.report import main as report_main
    return report_main(argv)


if __name__ == "__main__":
    sys.exit(main())
