"""``python -m repro`` — the command-line entry point.

Subcommands are dispatched through :data:`COMMANDS`, a registry mapping
each name to a lazy loader plus a one-line description (printed by the
help table).  An unknown subcommand prints the table and exits 2 instead
of falling through to the default report with a confusing argparse error.
Bare flags (``python -m repro --scale 2``) still reach ``report``, which
stays the default command.
"""

import sys
from typing import Callable, Dict, List, Optional, Tuple


def _report(argv: List[str]) -> int:
    from .analysis.report import main
    return main(argv)


def _trace(argv: List[str]) -> int:
    from .obs.cli import main
    return main(argv)


def _profile(argv: List[str]) -> int:
    from .perf.cli import profile_main
    return profile_main(argv)


def _bench(argv: List[str]) -> int:
    from .perf.cli import bench_main
    return bench_main(argv)


def _collectives(argv: List[str]) -> int:
    from .collectives.cli import main
    return main(argv)


def _faults(argv: List[str]) -> int:
    from .faults.cli import main
    return main(argv)


def _engine(argv: List[str]) -> int:
    from .engine.cli import main
    return main(argv)


def _monitor(argv: List[str]) -> int:
    from .telemetry.cli import main
    return main(argv)


def _triggered(argv: List[str]) -> int:
    from .triggered.cli import main
    return main(argv)


def _mpi(argv: List[str]) -> int:
    from .mpi.cli import main
    return main(argv)


def _workloads(argv: List[str]) -> int:
    from .workloads.cli import main
    return main(argv)


def _critpath(argv: List[str]) -> int:
    from .causal.cli import main
    return main(argv)


def _fabrics(argv: List[str]) -> int:
    from .fabrics.cli import main
    return main(argv)


#: name -> (loader, one-line description).  Loaders import lazily so
#: ``python -m repro bench`` never pays for the telemetry stack and vice
#: versa.
COMMANDS: Dict[str, Tuple[Callable[[List[str]], int], str]] = {
    "report": (_report, "print the full reproduction report (default)"),
    "trace": (_trace, "run one traced ping-pong, export a Chrome trace"),
    "profile": (_profile, "cost-attribute one measurement into phases"),
    "bench": (_bench, "record/check benchmark-regression baselines"),
    "collectives": (_collectives, "N-node collective sweeps + traced runs"),
    "faults": (_faults, "chaos sweeps under deterministic fault injection"),
    "engine": (_engine, "offload-engine ablation sweep + invariants"),
    "monitor": (_monitor, "run a scenario under the live telemetry plane"),
    "triggered": (_triggered, "counter-fired descriptor chains vs host "
                              "assist"),
    "mpi": (_mpi, "tagged ping-pong + triggered iallreduce ablation"),
    "workloads": (_workloads, "open-loop service traffic: app workloads "
                              "x control modes, p50/p99/p999 vs SLOs"),
    "critpath": (_critpath, "causal critical paths per request: exact "
                            "blame, stragglers, 0% reconciliation"),
    "fabrics": (_fabrics, "scale-out topologies: ring vs tree vs halving "
                          "crossovers, credit congestion, canaries"),
}


def render_command_table() -> str:
    width = max(len(name) for name in COMMANDS) + 2
    lines = ["usage: python -m repro <command> [options]", "", "commands:"]
    for name, (_fn, desc) in COMMANDS.items():
        lines.append(f"  {name.ljust(width)}{desc}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0].startswith("-"):
        # Bare flags (--scale, --trace) belong to the default report.
        return _report(argv)
    name, rest = argv[0], argv[1:]
    entry = COMMANDS.get(name)
    if entry is None:
        print(f"unknown command {name!r}\n", file=sys.stderr)
        print(render_command_table(), file=sys.stderr)
        return 2
    return entry[0](rest)


if __name__ == "__main__":
    sys.exit(main())
