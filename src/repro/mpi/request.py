"""Request objects: the nonblocking-completion handles of the MPI layer."""

from __future__ import annotations

from typing import Iterable, List, Optional

from ..errors import MpiError
from ..sim import Event


class MpiRequest:
    """One outstanding operation (send, recv, or collective).

    Completion is an :class:`~repro.sim.event.Event`, so requests compose
    with every waiting idiom in the repo: sim processes ``yield`` it
    (:meth:`wait_in`), host code drives the simulator to it
    (:meth:`MpiCommunicator.wait <repro.mpi.comm.MpiCommunicator.wait>`),
    and the NIC-resident collective engines chain callbacks on it.
    """

    _next_id = 0

    def __init__(self, sim, kind: str, rank: int,
                 source: int = -1, tag: int = -1) -> None:
        MpiRequest._next_id += 1
        self.id = MpiRequest._next_id
        self.kind = kind              # "send" | "recv" | collective name
        self.rank = rank              # the rank this request belongs to
        self.source = source          # recv: accepted source (ANY_SOURCE ok)
        self.tag = tag                # recv: accepted tag (ANY_TAG ok)
        self.done: Event = sim.event(name=f"mpi:{kind}:{self.id}")
        self.data: Optional[bytes] = None   # recv/collective result payload
        self.matched_source: Optional[int] = None
        self.matched_tag: Optional[int] = None

    def test(self) -> bool:
        """Nonblocking completion probe (MPI_Test)."""
        return self.done.processed

    def complete(self, data: Optional[bytes] = None,
                 source: Optional[int] = None,
                 tag: Optional[int] = None) -> None:
        if self.done.triggered:
            raise MpiError(f"request {self.id} completed twice")
        self.data = data
        self.matched_source = source
        self.matched_tag = tag
        self.done.succeed(self)

    def wait_in(self, ctx):
        """Process fragment: block the calling sim process until done."""
        if not self.done.processed:
            yield self.done
        return self.data

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done.processed else "pending"
        return f"<MpiRequest {self.kind} #{self.id} rank={self.rank} {state}>"


def waitall_in(ctx, requests: Iterable[MpiRequest]):
    """Process fragment: block until every request completes (MPI_Waitall)."""
    out: List[Optional[bytes]] = []
    for req in requests:
        data = yield from req.wait_in(ctx)
        out.append(data)
    return out
