"""``python -m repro mpi`` — the MPI-shaped layer's self-checking demo.

Runs the tagged ping-pong sweep across the eager/rendezvous crossover and
the triggered iallreduce against all three PR 2 control modes, then renders
the ablation table the experiment is about: host-assist control paths pay
BAR crossings per step, the triggered layer pays zero — below even the
offload engine's batched-doorbell floor.

Verdicts (exit status is non-zero if any fails):

* ping-pong payloads survive both protocols, with the protocol switch
  landing exactly at ``eager_threshold``,
* the MPI layer's entire sweep posts ZERO work requests through any BAR,
* the triggered iallreduce matches the exact expected sums,
* its chain/span/latency bookkeeping reconciles within 1%,
* its BAR MMIO sits at or below the engine floor for the same WR count.
"""

from __future__ import annotations

import argparse
import json
from typing import Dict, List, Tuple

from ..collectives.comm import CollectiveMode
from ..engine import batched_mmio_floor
from ..obs.export import write_chrome_trace
from ..obs.tracer import SpanTracer
from .bench import pingpong_sweep, run_mode_allreduce_mmio, run_mpi_allreduce
from .comm import MpiConfig


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro mpi",
        description="Tagged ping-pong + triggered iallreduce vs the three "
                    "host-assist control modes.")
    parser.add_argument("--nodes", type=int, default=4,
                        help="iallreduce ring size (default: 4)")
    parser.add_argument("--size", type=int, default=256,
                        help="iallreduce vector bytes per rank chunk "
                             "(default: 256)")
    parser.add_argument("--iterations", type=int, default=4,
                        help="measured rounds (default: 4)")
    parser.add_argument("--algorithm", default="ring",
                        choices=("ring", "rh", "tree"),
                        help="iallreduce schedule: ring 2(N-1), recursive "
                             "halving 2*log2 N, binomial tree "
                             "(default: ring)")
    parser.add_argument("--quick", action="store_true",
                        help="small run for CI (2 nodes, 2 iterations)")
    parser.add_argument("--seed", type=int, default=11,
                        help="simulator seed (default: 11)")
    parser.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON instead of text")
    parser.add_argument("--out", default=None,
                        help="write the iallreduce run as a Chrome trace")
    parser.add_argument("--force-mismatch", action="store_true",
                        help="append a deliberately failing verdict (CI "
                             "canary: proves mismatches gate the exit "
                             "status and still emit the report)")
    args = parser.parse_args(argv)

    nodes = 2 if args.quick else args.nodes
    iterations = 2 if args.quick else args.iterations
    size = args.size

    config = MpiConfig()
    thr = config.eager_threshold
    sizes = [thr // 2, thr, thr + 1, 8 * thr]
    pp = pingpong_sweep(sizes, iterations=iterations, seed=args.seed,
                        config=config)

    tracer = SpanTracer()
    ar = run_mpi_allreduce(nodes, size, iterations=iterations,
                           seed=args.seed, tracer=tracer,
                           algorithm=args.algorithm)
    if args.out:
        write_chrome_trace(tracer, args.out)
    modes = [run_mode_allreduce_mmio(mode, nodes, size,
                                     iterations=iterations, seed=args.seed)
             for mode in CollectiveMode]
    floor = batched_mmio_floor(max(m["wrs_posted"] for m in modes), 8)

    crossover_ok = all(
        (p.rndv_sent == 0) == (p.size <= thr) and
        (p.eager_sent > 0) == (p.size <= thr) for p in pp)
    verdicts: List[Tuple[str, bool, str]] = [
        ("pingpong-crossover", crossover_ok,
         f"protocol switches eager->rendezvous above {thr} B"),
        ("zero-bar-mmio", ar.bar_mmio == 0 and all(p.bar_mmio == 0
                                                   for p in pp),
         f"MPI-layer BAR crossings: pingpong "
         f"{sum(p.bar_mmio for p in pp)}, iallreduce {ar.bar_mmio}"),
        ("allreduce-exact", ar.correct,
         f"{nodes}-rank sums exact over {iterations} rounds"),
        ("allreduce-reconciles", bool(ar.reconcile["ok"]),
         "chains vs spans vs LatencyPoint within 1%"),
        ("below-engine-floor", ar.bar_mmio <= floor,
         f"triggered MMIO {ar.bar_mmio} <= batched floor {floor}"),
        ("host-assist-pays-mmio", all(m["bar_mmio"] > 0 for m in modes),
         "every PR 2 control mode crosses the BAR"),
    ]
    if args.force_mismatch:
        verdicts.append(("forced-mismatch", False,
                         "deliberate failure requested via --force-mismatch"))
    ok = all(v for _, v, _ in verdicts)

    if args.json:
        print(json.dumps({
            "nodes": nodes, "size": size, "iterations": iterations,
            "seed": args.seed, "eager_threshold": thr,
            "pingpong": [{
                "size": p.size, "latency_us": p.point.latency_us,
                "protocol": p.protocol, "eager_sent": p.eager_sent,
                "rndv_sent": p.rndv_sent, "bar_mmio": p.bar_mmio,
            } for p in pp],
            "iallreduce": {
                "algorithm": ar.algorithm,
                "latency_us": ar.point.latency_us,
                "chains_fired": ar.chains_fired,
                "descriptors_fired": ar.descriptors_fired,
                "bar_mmio": ar.bar_mmio, "correct": ar.correct,
                "reconcile": ar.reconcile,
            },
            "modes": modes, "engine_floor": floor,
            "verdicts": {name: v for name, v, _ in verdicts},
            "ok": ok,
        }, indent=2))
        return 0 if ok else 1

    print(f"MPI-shaped layer: tagged ping-pong + {nodes}-rank iallreduce "
          f"({size} B chunks, {iterations} rounds)")
    print("=" * 64)
    print(f"{'size':>8} {'protocol':>12} {'latency':>12} {'BAR MMIO':>10}")
    for p in pp:
        print(f"{p.size:>8} {p.protocol:>12} "
              f"{p.point.latency_us:>10.2f}us {p.bar_mmio:>10}")
    print()
    print(f"{'control path':>24} {'latency':>12} {'BAR MMIO':>10}")
    print(f"{'mpi (triggered chains)':>24} "
          f"{ar.point.latency_us:>10.2f}us {ar.bar_mmio:>10}")
    for m in modes:
        print(f"{m['mode']:>24} {m['latency_us']:>10.2f}us "
              f"{m['bar_mmio']:>10}")
    print(f"{'engine batched floor':>24} {'-':>12} {floor:>10}")
    print()
    for name, verdict, detail in verdicts:
        print(f"[{'PASS' if verdict else 'FAIL'}] {name}: {detail}")
    return 0 if ok else 1
