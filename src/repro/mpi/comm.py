"""CPU-free MPI-shaped communicators over put/get.

An :class:`MpiCommunicator` wires every rank pair with a msglib channel
(slot rings + credit words, §VI's small-footprint design) and compiles all
point-to-point traffic down to :mod:`repro.triggered` descriptor chains:

* **isend** stages the slot (envelope + payload + header) in the sender's
  staging ring and arms a one-put chain against the direction's *credit
  counter* at threshold ``seq - slots`` — flow control IS a triggered
  threshold, so the send fires the instant the receiver's cumulative credit
  proves a ring slot is free, with no host or GPU in the loop.
* **arrivals** are consumed by a NIC-resident engine (puts-with-counting on
  the ring window, exactly like the reliability layer's listeners): slots
  are drained in seq order, envelopes parsed, credits returned through the
  NIC-internal post path, and the matching engine fed.
* **rendezvous** (above the eager threshold) runs RTS → CTS → data+FIN: the
  data put is staged at ``isend`` time with a placeholder destination, the
  CTS patches the real NLA into the staged descriptor, and the FIN envelope
  rides the same in-order path as the data so its arrival proves delivery.

The result: after staging, the only BAR crossings a message can cost are
zero — every descriptor is fired by a counter threshold.  NIC hardware
counters (``wr_posts``, ``batch_doorbells``, ``trigger_doorbells``) verify
that claim in the benchmarks.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from ..cluster import Cluster
from ..core.msglib import _HEADER_BYTES, _SEQ_SHIFT, Channel, ChannelEnd, \
    create_channel_between
from ..errors import MpiError
from ..extoll import NotifyFlags, RmaOp, RmaWorkRequest
from ..triggered import DescriptorChain, TriggerCounter, TriggeredUnit, \
    triggered_unit
from .envelope import ANY_SOURCE, ANY_TAG, ENVELOPE_BYTES, Envelope, MsgKind
from .match import Inbound, MatchEngine
from .request import MpiRequest

_LEN_MASK = (1 << _SEQ_SHIFT) - 1


def _round8(n: int) -> int:
    return (n + 7) // 8 * 8


@dataclasses.dataclass(frozen=True)
class MpiConfig:
    """Layer tuning knobs.

    ``eager_threshold`` is the classic crossover: payloads at or below it
    ride inside the envelope slot; larger messages negotiate a rendezvous
    and travel as one raw put into a receiver-registered buffer.
    """

    eager_threshold: int = 128
    slot_size: int = 256
    slots: int = 16
    connectivity: str = "full"      # "full" | "ring"

    def __post_init__(self) -> None:
        if self.eager_threshold < 0:
            raise MpiError("eager_threshold must be >= 0")
        if self.slot_size - _HEADER_BYTES - ENVELOPE_BYTES \
                < self.eager_threshold:
            raise MpiError(
                f"slot_size {self.slot_size} cannot carry the envelope plus "
                f"an eager payload of {self.eager_threshold} bytes")
        if self.connectivity not in ("full", "ring"):
            raise MpiError(f"bad connectivity {self.connectivity!r}")

    @property
    def payload_capacity(self) -> int:
        return self.slot_size - _HEADER_BYTES - ENVELOPE_BYTES


class _SendWindow:
    """Sender-side state for one directed channel end: the credit counter
    the chains arm against, plus staged-chain bookkeeping."""

    def __init__(self, end: ChannelEnd, counter: TriggerCounter) -> None:
        self.end = end
        self.counter = counter        # cumulative credit, as ticks
        self.credit_seen = 0          # last cumulative credit value read
        self.stage_seq = 0            # last staged slot sequence number
        self.chains: Dict[int, DescriptorChain] = {}   # seq -> chain


class MpiCommunicator:
    """N ranks over one cluster, point-to-point compiled to chains."""

    GAUGES = ("pending_sends", "posted_depth", "unexpected_depth",
              "armed_chains", "rendezvous_open")

    def __init__(self, cluster: Cluster, config: Optional[MpiConfig] = None,
                 comm_id: int = 0, reliable: bool = False,
                 reliability_config=None) -> None:
        self.cluster = cluster
        self.sim = cluster.sim
        self.config = config or MpiConfig()
        self.comm_id = comm_id
        self.size = len(cluster)
        self.reliable = reliable
        if self.size < 2:
            raise MpiError("a communicator needs at least 2 ranks")
        if self.size > 256:
            raise MpiError("rank ids must fit the 8-bit envelope field")
        self.units: List[TriggeredUnit] = [
            triggered_unit(node) for node in cluster.nodes]
        self._channels: Dict[Tuple[int, int], Channel] = {}
        self._windows: Dict[Tuple[int, int], _SendWindow] = {}
        if self.config.connectivity == "full" or self.size == 2:
            edges = [(i, j) for i in range(self.size)
                     for j in range(i + 1, self.size)]
        else:
            edges = ([(0, 1)] if self.size == 2 else
                     [(k, (k + 1) % self.size) for k in range(self.size)])
        for port_id, (i, j) in enumerate(edges):
            channel = create_channel_between(
                cluster, cluster.node(i), cluster.node(j),
                slot_size=self.config.slot_size, slots=self.config.slots,
                port_id=port_id, reliable=reliable,
                reliability_config=reliability_config,
                replay_flags=NotifyFlags.NONE)
            self._channels[(min(i, j), max(i, j))] = channel
            for end in (channel.a_to_b, channel.b_to_a):
                self._attach_direction(end)
        self.ranks = [MpiRank(self, r) for r in range(self.size)]
        # Sticky protocol errors surfaced by the NIC-resident engines.
        self.async_errors: List[Exception] = []

    # -- wiring --------------------------------------------------------------------
    def _attach_direction(self, end: ChannelEnd) -> None:
        """Hook one directed end: credit counting at the sender, slot
        draining at the receiver."""
        src_unit = self.units[end.src_node_id]
        counter = src_unit.counter(
            f"credit:{end.src_node_id}->{end.dst_node_id}")
        window = _SendWindow(end, counter)
        self._windows[(end.src_node_id, end.dst_node_id)] = window
        # Credit returns land in the sender's credit word; convert the
        # cumulative value into counter ticks (replays deliver the same
        # value again — the delta is then 0 and nothing ticks).
        sender_node = self.cluster.node(end.src_node_id)

        def on_credit(_packet, window=window, node=sender_node) -> None:
            value = self._credit_value(node, window.end)
            delta = value - window.credit_seen
            if delta > 0:
                window.credit_seen = value
                window.counter.add(delta)

        sender_node.nic.rma.put_listeners.append(
            self._window_filter(end.credit_word_nla.base, 8, on_credit))
        # Arrivals: drain the ring in sequence order at the receiver.
        recv_node = self.cluster.node(end.dst_node_id)

        def on_arrival(_packet, end=end) -> None:
            self._drain(end)

        recv_node.nic.rma.put_listeners.append(
            self._window_filter(end.ring_nla.base, end.ring_nla.size,
                                on_arrival))

    @staticmethod
    def _window_filter(base: int, size: int, fn):
        def listener(packet) -> None:
            dst = packet.meta.get("dst_nla", -1)
            if base <= dst < base + size:
                fn(packet)
        return listener

    def _credit_value(self, node, end: ChannelEnd) -> int:
        return node.gpu.dram.read_u64(end.credit_word.base)

    # -- topology ------------------------------------------------------------------
    def channel(self, a: int, b: int) -> Channel:
        try:
            return self._channels[(min(a, b), max(a, b))]
        except KeyError:
            raise MpiError(
                f"no channel between ranks {a} and {b} "
                f"(connectivity={self.config.connectivity!r})") from None

    def window(self, src: int, dst: int) -> _SendWindow:
        if src == dst:
            raise MpiError(f"rank {src} cannot message itself")
        self.channel(src, dst)  # raises with context if unwired
        return self._windows[(src, dst)]

    # -- the staged send path ------------------------------------------------------
    def _stage_slot(self, window: _SendWindow, envelope: Envelope,
                    payload: bytes) -> Tuple[int, RmaWorkRequest]:
        """Write [envelope | payload | header] into the next staging slot
        and return (seq, the put WR covering it)."""
        end = window.end
        if len(payload) > self.config.payload_capacity:
            raise MpiError(
                f"payload of {len(payload)} bytes exceeds slot capacity "
                f"{self.config.payload_capacity}")
        seq = window.stage_seq + 1
        # The staging slot for seq is shared with seq-slots; it is free only
        # once that older chain has fired (its descriptor read the slot).
        prior = window.chains.get(seq - end.slots)
        if prior is not None and not prior.completed.triggered:
            raise MpiError(
                f"send window {end.src_node_id}->{end.dst_node_id} "
                f"exhausted: more than {end.slots} staged sends in flight")
        window.stage_seq = seq
        window.chains.pop(seq - end.slots, None)
        node = self.cluster.node(end.src_node_id)
        stage = end.staging.base + end.slot_offset(seq)
        body = envelope.encode() + payload
        padded = body + bytes(-len(body) % 8)
        node.gpu.dram.write(stage, padded)
        node.gpu.dram.write_u64(stage + end.slot_size - _HEADER_BYTES,
                                (seq << _SEQ_SHIFT) | len(body))
        wr = RmaWorkRequest(
            op=RmaOp.PUT, port=end.port_id, dst_node=end.dst_node_id,
            src_nla=end.staging_nla.base + end.slot_offset(seq),
            dst_nla=end.ring_nla.base + end.slot_offset(seq),
            size=end.slot_size, flags=NotifyFlags.NONE)
        trc = self.sim.tracer
        if trc.wants("causal"):
            trc.flow_event("stg", f"n{end.src_node_id}",
                           addr=(end.dst_node_id, wr.dst_nla), seq=seq,
                           msg=envelope.kind.name.lower(),
                           bytes=len(payload))
        return seq, wr

    def _arm_send(self, window: _SendWindow, seq: int,
                  chain: DescriptorChain) -> None:
        """Fire the chain once credit admits ``seq`` into the remote ring."""
        end = window.end

        def on_fired(_ev, end=end, seq=seq) -> None:
            end.next_seq = max(end.next_seq, seq + 1)
            if end.reliability is not None:
                end.reliability.note_send(seq)

        chain.completed.add_callback(on_fired)
        window.chains[seq] = chain
        # The arming counter counts credit deliveries into the sender's
        # credit word; name that address so the chain's causal `pst` can
        # carry the credit->send edge.
        chain.wait_hint = (end.src_node_id, end.credit_word_nla.base)
        chain.arm(window.counter, max(0, seq - end.slots))

    # -- the NIC-resident receive engine -------------------------------------------
    def _drain(self, end: ChannelEnd) -> None:
        """Consume every contiguous arrived slot of one inbound direction."""
        node = self.cluster.node(end.dst_node_id)
        rank = self.ranks[end.dst_node_id]
        while True:
            seq = end.consumed + 1
            slot = end.ring.base + end.slot_offset(seq)
            header = node.gpu.dram.read_u64(
                slot + end.slot_size - _HEADER_BYTES)
            if (header >> _SEQ_SHIFT) != seq:
                return                      # out of order / duplicate / idle
            length = header & _LEN_MASK
            body = bytes(node.gpu.dram.read(slot, length))
            end.consumed = seq
            self._return_credit(end)
            trc = self.sim.tracer
            if trc.wants("causal"):
                # Emitted on the receiving RANK's actor (not the NIC): every
                # request completion this drain triggers happens
                # synchronously at this same instant, so actor program-order
                # links it to the rest of the rank's timeline.
                trc.flow_event("mrx", f"n{end.dst_node_id}",
                               addr=(end.dst_node_id,
                                     end.ring_nla.base + end.slot_offset(seq)),
                               seq=seq, bytes=length)
            try:
                envelope = Envelope.decode(body[:ENVELOPE_BYTES])
            except MpiError as exc:
                self.async_errors.append(exc)
                continue
            if envelope.comm_id != self.comm_id:
                self.async_errors.append(MpiError(
                    f"rank {rank.rank}: envelope for foreign communicator "
                    f"{envelope.comm_id}"))
                continue
            rank._on_envelope(envelope, body[ENVELOPE_BYTES:])

    def _return_credit(self, end: ChannelEnd) -> None:
        """Put the cumulative credit back to the sender — NIC-internal post,
        zero MMIO, mirroring the reliability engine's ack path."""
        interval = end.credit_interval or max(1, end.slots // 2)
        if end.consumed - end.credits_returned < interval:
            return
        node = self.cluster.node(end.dst_node_id)
        node.gpu.dram.write_u64(end.credit_staging.base, end.consumed)
        reverse = self.channel(end.src_node_id,
                               end.dst_node_id).end_for_sender(
                                   end.dst_node_id)
        node.nic.rma.post(RmaWorkRequest(
            op=RmaOp.PUT, port=reverse.port_id, dst_node=reverse.dst_node_id,
            src_nla=end.credit_staging_nla.base,
            dst_nla=end.credit_word_nla.base, size=8,
            flags=NotifyFlags.NONE))
        end.credits_returned = end.consumed

    # -- host-side conveniences ----------------------------------------------------
    def wait(self, *requests: MpiRequest, limit: float = 10.0) -> None:
        """Drive the simulator until every request completes (host-side
        test harness idiom; device/host sim code uses ``wait_in``)."""
        pending = [r.done for r in requests if not r.done.processed]
        if pending:
            self.sim.run_until_complete(*pending,
                                        limit=self.sim.now + limit)

    def check_async_errors(self) -> None:
        if self.async_errors:
            raise self.async_errors[0]
        for node in self.cluster.nodes:
            for exc in node.nic.rma.async_errors:
                raise exc

    # -- uniform stats protocol ----------------------------------------------------
    def snapshot(self) -> Dict[str, int]:
        out = {
            "eager_sent": 0, "rndv_sent": 0, "matches": 0,
            "unexpected_arrivals": 0, "chains_fired": 0,
            "descriptors_fired": 0, "counter_ticks": 0,
            "host_wr_posts": 0, "batch_doorbells": 0, "trigger_doorbells": 0,
            "pending_sends": 0, "posted_depth": 0, "unexpected_depth": 0,
            "armed_chains": 0, "rendezvous_open": 0,
        }
        for rank in self.ranks:
            out["eager_sent"] += rank.eager_sent
            out["rndv_sent"] += rank.rndv_sent
            out["pending_sends"] += rank.pending_sends
            out["rendezvous_open"] += (len(rank._rndv_send)
                                       + len(rank._rndv_recv))
            for name in ("matches", "unexpected_arrivals"):
                out[name] += rank.matcher.snapshot()[name]
            out["posted_depth"] += len(rank.matcher.posted)
            out["unexpected_depth"] += len(rank.matcher.unexpected)
        for unit in self.units:
            out["chains_fired"] += unit.stats.chains_fired
            out["descriptors_fired"] += unit.stats.descriptors_fired
            out["counter_ticks"] += unit.stats.counter_ticks
            out["armed_chains"] += unit.armed_chains
        for node in self.cluster.nodes:
            out["host_wr_posts"] += node.nic.wr_posts
            out["batch_doorbells"] += node.nic.batch_doorbells
            out["trigger_doorbells"] += node.nic.trigger_doorbells
        return out

    def diff(self, earlier: Dict[str, int]) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for name, value in self.snapshot().items():
            if name in self.GAUGES:
                out[name] = value
            else:
                out[name] = value - earlier.get(name, 0)
        return out


class MpiRank:
    """One rank's endpoint: isend/irecv plus the protocol state machines."""

    def __init__(self, comm: MpiCommunicator, rank: int) -> None:
        self.comm = comm
        self.rank = rank
        self.node = comm.cluster.node(rank)
        self.matcher = MatchEngine(rank)
        self.eager_sent = 0
        self.rndv_sent = 0
        self.pending_sends = 0
        self.coll_seq = 0     # collective-ordering counter (see collectives)
        # Sender side: op id -> (request, staged data WR, dst rank).
        self._rndv_send: Dict[int, Tuple[MpiRequest, RmaWorkRequest, int]] = {}
        # Receiver side: (src rank, op id) -> (request, buffer, size).
        self._rndv_recv: Dict[Tuple[int, int], Tuple[MpiRequest, object, int]] = {}

    @property
    def size(self) -> int:
        return self.comm.size

    @property
    def next(self) -> int:
        return (self.rank + 1) % self.size

    @property
    def prev(self) -> int:
        return (self.rank - 1) % self.size

    # -- API -----------------------------------------------------------------------
    def isend(self, dest: int, data: bytes, tag: int = 0) -> MpiRequest:
        """Nonblocking tagged send; the request completes when the message
        (eager) or its payload put (rendezvous) has been handed to the wire.
        """
        if dest == self.rank:
            raise MpiError(f"rank {self.rank} cannot send to itself")
        req = MpiRequest(self.comm.sim, "send", self.rank, source=dest,
                         tag=tag)
        self.pending_sends += 1
        req.done.add_callback(lambda _ev: self._send_done())
        trc = self.comm.sim.tracer
        if trc.wants("mpi"):
            trc.instant("mpi", "isend", track=f"mpi.rank{self.rank}",
                        dest=dest, tag=tag, bytes=len(data))
        if trc.wants("causal"):
            trc.flow_event("snd", f"n{self.rank}", dest=dest, tag=tag,
                           bytes=len(data))
        if len(data) <= self.comm.config.eager_threshold:
            self._send_eager(dest, data, tag, req)
        else:
            self._send_rts(dest, data, tag, req)
        return req

    def irecv(self, source: int = ANY_SOURCE,
              tag: int = ANY_TAG) -> MpiRequest:
        """Nonblocking tagged receive; ``req.data`` carries the payload."""
        if source == self.rank:
            raise MpiError(f"rank {self.rank} cannot receive from itself")
        req = MpiRequest(self.comm.sim, "recv", self.rank, source=source,
                         tag=tag)
        trc = self.comm.sim.tracer
        if trc.wants("mpi"):
            trc.instant("mpi", "irecv", track=f"mpi.rank{self.rank}",
                        source=source, tag=tag)
        if trc.wants("causal"):
            trc.flow_event("rcv", f"n{self.rank}", source=source, tag=tag)
        msg = self.matcher.post(req)
        if msg is not None:
            self._deliver(req, msg)
        return req

    def _send_done(self) -> None:
        self.pending_sends -= 1

    def _complete_send(self, req: MpiRequest, addr) -> None:
        """Complete a send request when its chain finished, stamping the
        causal completion on this rank's actor."""
        trc = self.comm.sim.tracer
        if trc.wants("causal"):
            trc.flow_event("snd.done", f"n{self.rank}", addr=addr)
        req.complete()

    # -- eager ---------------------------------------------------------------------
    def _send_eager(self, dest: int, data: bytes, tag: int,
                    req: MpiRequest) -> None:
        window = self.comm.window(self.rank, dest)
        envelope = Envelope(kind=MsgKind.EAGER, src_rank=self.rank,
                            comm_id=self.comm.comm_id, tag=tag,
                            size=len(data))
        seq, wr = self.comm._stage_slot(window, envelope, data)
        unit = self.comm.units[self.rank]
        chain = unit.chain(f"r{self.rank}>r{dest}.eager{seq}").append(wr)
        chain.completed.add_callback(
            lambda _ev, addr=(wr.dst_node, wr.dst_nla):
            self._complete_send(req, addr))
        self.comm._arm_send(window, seq, chain)
        self.eager_sent += 1

    # -- rendezvous ----------------------------------------------------------------
    def _send_rts(self, dest: int, data: bytes, tag: int,
                  req: MpiRequest) -> None:
        window = self.comm.window(self.rank, dest)
        # Stage the payload once in a dedicated registered buffer; the put
        # descriptor waits (destination unknown) until the CTS patches it.
        buf = self.node.gpu_malloc(_round8(len(data)))
        self.node.gpu.dram.write(buf.base, data)
        nla = self.node.nic.register_memory(buf)
        data_wr = RmaWorkRequest(
            op=RmaOp.PUT, port=window.end.port_id, dst_node=dest,
            src_nla=nla.base, dst_nla=0, size=len(data),
            flags=NotifyFlags.NONE)
        self._rndv_send[req.id] = (req, data_wr, dest)
        envelope = Envelope(kind=MsgKind.RTS, src_rank=self.rank,
                            comm_id=self.comm.comm_id, tag=tag,
                            size=len(data), handle=req.id)
        seq, wr = self.comm._stage_slot(window, envelope, b"")
        unit = self.comm.units[self.rank]
        chain = unit.chain(f"r{self.rank}>r{dest}.rts{req.id}").append(wr)
        self.comm._arm_send(window, seq, chain)
        self.rndv_sent += 1

    def _on_cts(self, envelope: Envelope) -> None:
        """Sender side: the receiver's buffer is ready — patch the staged
        descriptor, chase it with the FIN envelope, fire both as one chain.
        """
        entry = self._rndv_send.pop(envelope.handle, None)
        if entry is None:
            self.comm.async_errors.append(MpiError(
                f"rank {self.rank}: CTS for unknown op {envelope.handle}"))
            return
        req, data_wr, dest = entry
        window = self.comm.window(self.rank, dest)
        fin = Envelope(kind=MsgKind.FIN, src_rank=self.rank,
                       comm_id=self.comm.comm_id, tag=envelope.tag,
                       handle=envelope.handle)
        seq, fin_wr = self.comm._stage_slot(window, fin, b"")
        unit = self.comm.units[self.rank]
        chain = unit.chain(f"r{self.rank}>r{dest}.data{envelope.handle}")
        chain.append(data_wr).append(fin_wr)
        # EXTOLL keeps same-path puts in order: FIN lands after the payload.
        chain.replace_wr(0, dst_nla=envelope.size)
        trc = self.comm.sim.tracer
        if trc.wants("causal"):
            # The rendezvous payload is read straight from the registered
            # user buffer — no slot staging — so its WQE-generation moment
            # (the causal ``stg`` its chain-fired ``pst`` walks back to) is
            # the descriptor patch here, on CTS receipt.
            trc.flow_event("stg", f"n{self.rank}",
                           addr=(dest, envelope.size), msg="data",
                           bytes=data_wr.size)
        chain.completed.add_callback(
            lambda _ev, addr=(fin_wr.dst_node, fin_wr.dst_nla):
            self._complete_send(req, addr))
        self.comm._arm_send(window, seq, chain)

    def _on_fin(self, envelope: Envelope) -> None:
        """Receiver side: the payload put has landed (it preceded this FIN
        on the same ordered path) — read it out and complete the receive."""
        key = (envelope.src_rank, envelope.handle)
        entry = self._rndv_recv.pop(key, None)
        if entry is None:
            self.comm.async_errors.append(MpiError(
                f"rank {self.rank}: FIN for unknown op {envelope.handle} "
                f"from rank {envelope.src_rank}"))
            return
        req, buf, size = entry
        data = bytes(self.node.gpu.dram.read(buf.base, size))
        req.complete(data, source=envelope.src_rank, tag=envelope.tag)

    def _start_rendezvous_recv(self, req: MpiRequest,
                               envelope: Envelope) -> None:
        """Matched an RTS: register a landing buffer and send the CTS."""
        buf = self.node.gpu_malloc(_round8(envelope.size))
        nla = self.node.nic.register_memory(buf)
        self._rndv_recv[(envelope.src_rank, envelope.handle)] = (
            req, buf, envelope.size)
        cts = Envelope(kind=MsgKind.CTS, src_rank=self.rank,
                       comm_id=self.comm.comm_id, tag=envelope.tag,
                       size=nla.base, handle=envelope.handle)
        window = self.comm.window(self.rank, envelope.src_rank)
        seq, wr = self.comm._stage_slot(window, cts, b"")
        unit = self.comm.units[self.rank]
        chain = unit.chain(
            f"r{self.rank}>r{envelope.src_rank}.cts{envelope.handle}")
        chain.append(wr)
        self.comm._arm_send(window, seq, chain)

    # -- arrival dispatch ----------------------------------------------------------
    def _on_envelope(self, envelope: Envelope, payload: bytes) -> None:
        trc = self.comm.sim.tracer
        if trc.wants("mpi"):
            trc.instant("mpi", envelope.kind.name.lower(),
                        track=f"mpi.rank{self.rank}",
                        source=envelope.src_rank, tag=envelope.tag)
        if envelope.kind is MsgKind.CTS:
            self._on_cts(envelope)
            return
        if envelope.kind is MsgKind.FIN:
            self._on_fin(envelope)
            return
        # EAGER and RTS go through matching.
        req = self.matcher.incoming(Inbound(envelope, payload))
        if req is not None:
            self._deliver(req, Inbound(envelope, payload))

    def _deliver(self, req: MpiRequest, msg: Inbound) -> None:
        if msg.envelope.kind is MsgKind.EAGER:
            req.complete(msg.payload, source=msg.src_rank,
                         tag=msg.tag)
        else:  # RTS
            self._start_rendezvous_recv(req, msg.envelope)
