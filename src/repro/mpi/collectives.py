"""Nonblocking collectives staged as chain DAGs.

Each collective is written as a plain generator over ``isend``/``irecv``
requests (and float compute charges) and driven by a callback *pump*: when
the generator yields an already-complete request the pump advances
immediately, otherwise it parks a callback on the request's ``done`` event
and returns.  Every hop therefore runs entirely inside NIC completion
callbacks — the host never polls, and the only work between messages is
the triggered layer arming the next pre-staged chain.

The algorithms mirror :mod:`repro.collectives.algorithms` step for step
(same ring schedule, same chunk indexing, same reduction association
order), so an ``iallreduce`` here is bit-exact against PR 2's
``ring_all_reduce`` for the same input vector.
"""

from __future__ import annotations

from typing import List, Optional

from ..collectives.algorithms import REDUCE_OPS, _pack, _unpack
from ..errors import MpiError
from .comm import MpiCommunicator, MpiRank
from .request import MpiRequest

#: Collective traffic lives in the top half of the 16-bit tag space so it
#: can never collide with user point-to-point tags (kept below it by
#: convention) — and successive collectives on one communicator use
#: successive tags, which keeps concurrent collectives separated too.
_COLL_TAG_BASE = 1 << 15
_COLL_TAG_SPAN = 1 << 15


def _coll_tag(rank: MpiRank) -> int:
    """Per-rank collective sequence number mapped into the reserved tag
    space.  MPI requires every rank to start the same collectives in the
    same order, which makes the local counter globally consistent."""
    seq = rank.coll_seq
    rank.coll_seq += 1
    return _COLL_TAG_BASE + seq % _COLL_TAG_SPAN


def _pump(comm: MpiCommunicator, gen, req: MpiRequest) -> None:
    """Drive ``gen`` to completion through completion callbacks."""
    sim = comm.sim

    def step(value=None) -> None:
        item_value = value
        while True:
            try:
                item = gen.send(item_value)
            except StopIteration as stop:
                req.complete(stop.value)
                return
            except Exception as exc:  # surfaces in check_async_errors
                comm.async_errors.append(exc)
                req.complete(None)
                return
            if isinstance(item, MpiRequest):
                if item.done.processed:
                    item_value = item.data
                    continue
                item.done.add_callback(lambda _ev, it=item: step(it.data))
                return
            # A float is a compute charge (reduction arithmetic).
            sim.call_later(float(item), step,
                           name=f"mpi:compute:{req.kind}:{req.rank}")
            return

    step()


# -- the collectives -------------------------------------------------------------

def ibarrier(comm: MpiCommunicator, rank: MpiRank) -> MpiRequest:
    """Ring token barrier (two sweeps), returning immediately with a
    request that completes once every rank has entered."""
    tag = _coll_tag(rank)
    req = MpiRequest(comm.sim, "barrier", rank.rank)

    def body():
        for _sweep in range(2):
            if rank.rank == 0:
                yield rank.isend(rank.next, b"\xb0" * 8, tag=tag)
                yield rank.irecv(source=rank.prev, tag=tag)
            else:
                yield rank.irecv(source=rank.prev, tag=tag)
                yield rank.isend(rank.next, b"\xb0" * 8, tag=tag)

    _pump(comm, body(), req)
    return req


def ibcast(comm: MpiCommunicator, rank: MpiRank,
           data: Optional[bytes] = None, root: int = 0) -> MpiRequest:
    """Ring broadcast from ``root``; ``req.data`` is the payload."""
    tag = _coll_tag(rank)
    req = MpiRequest(comm.sim, "bcast", rank.rank)
    pos = (rank.rank - root) % rank.size
    if pos == 0 and data is None:
        raise MpiError("ibcast root must supply data")

    def body():
        payload = data
        if pos == 0:
            yield rank.isend(rank.next, payload, tag=tag)
        else:
            payload = yield rank.irecv(source=rank.prev, tag=tag)
            if pos != rank.size - 1:
                yield rank.isend(rank.next, payload, tag=tag)
        return payload

    _pump(comm, body(), req)
    return req


#: The all-reduce schedules :func:`iallreduce` can stage.
ALLREDUCE_ALGORITHMS = ("ring", "rh", "tree")


def iallreduce(comm: MpiCommunicator, rank: MpiRank,
               values: List[float], op: str = "sum",
               algorithm: str = "ring") -> MpiRequest:
    """Nonblocking all-reduce of a float64 vector; ``req.data`` holds the
    packed result (``struct '<{n}d'``, same as PR 2's collectives).

    ``algorithm`` picks the chain DAG that gets staged:

    * ``"ring"`` — ``ring_all_reduce``'s schedule verbatim: reduce-scatter
      then all-gather, ``2*(N-1)`` steps;
    * ``"rh"`` — recursive halving/doubling, ``2*log2 N`` pairwise
      exchange phases (power-of-two N);
    * ``"tree"`` — binomial reduce to rank 0 + binomial broadcast,
      ``2*ceil(log2 N)`` phases of full-vector messages.

    All three apply the reduction (any ``op`` from
    :data:`~repro.collectives.algorithms.REDUCE_OPS`) in the identical
    ``op(owned, incoming)`` association order as their PR 2 counterparts,
    so results are bit-exact across layers AND across algorithms for
    integer-valued inputs.

    Rendezvous deadlock avoidance is uniform: a send only finishes once
    the peer's matching receive produced the CTS, so every schedule posts
    its ``isend`` without waiting, blocks on the ``irecv``, and drains
    the send requests at the end.
    """
    n = rank.size
    if op not in REDUCE_OPS:
        raise MpiError(f"unknown reduction op {op!r} (choose from: "
                       f"{', '.join(sorted(REDUCE_OPS))})")
    if algorithm not in ALLREDUCE_ALGORITHMS:
        raise MpiError(f"unknown all-reduce algorithm {algorithm!r} "
                       f"(choose from: {', '.join(ALLREDUCE_ALGORITHMS)})")
    combine = REDUCE_OPS[op]
    if not values or len(values) % n:
        raise MpiError(
            f"all-reduce vector length {len(values)} must be a positive "
            f"multiple of the {n} ranks")
    if algorithm == "rh" and n & (n - 1):
        raise MpiError(f"recursive halving needs a power-of-two rank "
                       f"count, got {n}")
    tag = _coll_tag(rank)
    req = MpiRequest(comm.sim, "allreduce", rank.rank)
    chunk_len = len(values) // n
    per_instr = rank.node.gpu.config.instruction_time

    def ring_body():
        chunks = [list(values[i * chunk_len:(i + 1) * chunk_len])
                  for i in range(n)]
        sends = []
        for s in range(n - 1):
            send_idx = (rank.rank - s) % n
            recv_idx = (rank.rank - s - 1) % n
            sends.append(rank.isend(rank.next, _pack(chunks[send_idx]),
                                    tag=tag))
            incoming = _unpack((yield rank.irecv(source=rank.prev,
                                                 tag=tag)))
            yield 2 * chunk_len * per_instr     # fused combine of one chunk
            chunks[recv_idx] = [combine(a, b)
                                for a, b in zip(chunks[recv_idx], incoming)]
        for s in range(n - 1):
            send_idx = (rank.rank + 1 - s) % n
            recv_idx = (rank.rank - s) % n
            sends.append(rank.isend(rank.next, _pack(chunks[send_idx]),
                                    tag=tag))
            chunks[recv_idx] = _unpack((yield rank.irecv(source=rank.prev,
                                                         tag=tag)))
        for sreq in sends:
            yield sreq
        return _pack([v for chunk in chunks for v in chunk])

    def rh_body():
        out = list(values)
        sends = []
        lo, hi = 0, len(out)            # this rank's active window
        dist = n // 2
        while dist >= 1:                # reduce-scatter, halving
            partner = rank.rank ^ dist
            mid = (lo + hi) // 2
            if rank.rank & dist:        # I keep the upper half
                send_lo, send_hi, keep_lo, keep_hi = lo, mid, mid, hi
            else:
                send_lo, send_hi, keep_lo, keep_hi = mid, hi, lo, mid
            sends.append(rank.isend(partner, _pack(out[send_lo:send_hi]),
                                    tag=tag))
            incoming = _unpack((yield rank.irecv(source=partner, tag=tag)))
            yield 2 * len(incoming) * per_instr
            for i, v in enumerate(incoming):
                out[keep_lo + i] = combine(out[keep_lo + i], v)
            lo, hi = keep_lo, keep_hi
            dist //= 2
        dist = 1
        while dist < n:                 # allgather, doubling (mirror)
            partner = rank.rank ^ dist
            sends.append(rank.isend(partner, _pack(out[lo:hi]), tag=tag))
            incoming = _unpack((yield rank.irecv(source=partner, tag=tag)))
            if rank.rank & dist:        # partner held the half below mine
                out[2 * lo - hi:lo] = incoming
                lo = 2 * lo - hi
            else:
                out[hi:2 * hi - lo] = incoming
                hi = 2 * hi - lo
            dist *= 2
        for sreq in sends:
            yield sreq
        return _pack(out)

    def tree_body():
        out = list(values)
        sends = []
        mask = 1
        while mask < n:                 # binomial reduce toward rank 0
            if rank.rank & mask:
                sends.append(rank.isend(rank.rank ^ mask, _pack(out),
                                        tag=tag))
                break                   # my subtree went up; wait for bcast
            src = rank.rank | mask
            if src < n:
                incoming = _unpack((yield rank.irecv(source=src, tag=tag)))
                yield 2 * len(incoming) * per_instr
                for i, v in enumerate(incoming):
                    out[i] = combine(out[i], v)
            mask <<= 1
        recv_mask = rank.rank & -rank.rank if rank.rank else 0
        if rank.rank != 0:
            out = _unpack((yield rank.irecv(source=rank.rank ^ recv_mask,
                                            tag=tag)))
        m = recv_mask >> 1
        if rank.rank == 0:
            m = 1
            while m < n:
                m <<= 1
            m >>= 1
        while m >= 1:                   # broadcast down, widest subtree first
            child = rank.rank | m
            if child < n and child != rank.rank:
                sends.append(rank.isend(child, _pack(out), tag=tag))
            m >>= 1
        for sreq in sends:
            yield sreq
        return _pack(out)

    bodies = {"ring": ring_body, "rh": rh_body, "tree": tree_body}
    _pump(comm, bodies[algorithm](), req)
    return req
