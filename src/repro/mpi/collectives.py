"""Nonblocking collectives staged as chain DAGs.

Each collective is written as a plain generator over ``isend``/``irecv``
requests (and float compute charges) and driven by a callback *pump*: when
the generator yields an already-complete request the pump advances
immediately, otherwise it parks a callback on the request's ``done`` event
and returns.  Every hop therefore runs entirely inside NIC completion
callbacks — the host never polls, and the only work between messages is
the triggered layer arming the next pre-staged chain.

The algorithms mirror :mod:`repro.collectives.algorithms` step for step
(same ring schedule, same chunk indexing, same reduction association
order), so an ``iallreduce`` here is bit-exact against PR 2's
``ring_all_reduce`` for the same input vector.
"""

from __future__ import annotations

from typing import List, Optional

from ..collectives.algorithms import REDUCE_OPS, _pack, _unpack
from ..errors import MpiError
from .comm import MpiCommunicator, MpiRank
from .request import MpiRequest

#: Collective traffic lives in the top half of the 16-bit tag space so it
#: can never collide with user point-to-point tags (kept below it by
#: convention) — and successive collectives on one communicator use
#: successive tags, which keeps concurrent collectives separated too.
_COLL_TAG_BASE = 1 << 15
_COLL_TAG_SPAN = 1 << 15


def _coll_tag(rank: MpiRank) -> int:
    """Per-rank collective sequence number mapped into the reserved tag
    space.  MPI requires every rank to start the same collectives in the
    same order, which makes the local counter globally consistent."""
    seq = rank.coll_seq
    rank.coll_seq += 1
    return _COLL_TAG_BASE + seq % _COLL_TAG_SPAN


def _pump(comm: MpiCommunicator, gen, req: MpiRequest) -> None:
    """Drive ``gen`` to completion through completion callbacks."""
    sim = comm.sim

    def step(value=None) -> None:
        item_value = value
        while True:
            try:
                item = gen.send(item_value)
            except StopIteration as stop:
                req.complete(stop.value)
                return
            except Exception as exc:  # surfaces in check_async_errors
                comm.async_errors.append(exc)
                req.complete(None)
                return
            if isinstance(item, MpiRequest):
                if item.done.processed:
                    item_value = item.data
                    continue
                item.done.add_callback(lambda _ev, it=item: step(it.data))
                return
            # A float is a compute charge (reduction arithmetic).
            sim.call_later(float(item), step,
                           name=f"mpi:compute:{req.kind}:{req.rank}")
            return

    step()


# -- the collectives -------------------------------------------------------------

def ibarrier(comm: MpiCommunicator, rank: MpiRank) -> MpiRequest:
    """Ring token barrier (two sweeps), returning immediately with a
    request that completes once every rank has entered."""
    tag = _coll_tag(rank)
    req = MpiRequest(comm.sim, "barrier", rank.rank)

    def body():
        for _sweep in range(2):
            if rank.rank == 0:
                yield rank.isend(rank.next, b"\xb0" * 8, tag=tag)
                yield rank.irecv(source=rank.prev, tag=tag)
            else:
                yield rank.irecv(source=rank.prev, tag=tag)
                yield rank.isend(rank.next, b"\xb0" * 8, tag=tag)

    _pump(comm, body(), req)
    return req


def ibcast(comm: MpiCommunicator, rank: MpiRank,
           data: Optional[bytes] = None, root: int = 0) -> MpiRequest:
    """Ring broadcast from ``root``; ``req.data`` is the payload."""
    tag = _coll_tag(rank)
    req = MpiRequest(comm.sim, "bcast", rank.rank)
    pos = (rank.rank - root) % rank.size
    if pos == 0 and data is None:
        raise MpiError("ibcast root must supply data")

    def body():
        payload = data
        if pos == 0:
            yield rank.isend(rank.next, payload, tag=tag)
        else:
            payload = yield rank.irecv(source=rank.prev, tag=tag)
            if pos != rank.size - 1:
                yield rank.isend(rank.next, payload, tag=tag)
        return payload

    _pump(comm, body(), req)
    return req


def iallreduce(comm: MpiCommunicator, rank: MpiRank,
               values: List[float], op: str = "sum") -> MpiRequest:
    """Ring all-reduce of a float64 vector; ``req.data`` holds the packed
    result (``struct '<{n}d'``, same as PR 2's collectives).

    The schedule is ``ring_all_reduce``'s, verbatim: a reduce-scatter pass
    then an all-gather pass, ``2*(N-1)`` steps, with the reduction (any
    ``op`` from :data:`~repro.collectives.algorithms.REDUCE_OPS` —
    ``sum``/``max``/``min``/``prod``) applied in the identical
    ``op(owned, incoming)`` association order — which is what makes the
    result bit-exact against the PR 2 path for every op.
    """
    n = rank.size
    if op not in REDUCE_OPS:
        raise MpiError(f"unknown reduction op {op!r} (choose from: "
                       f"{', '.join(sorted(REDUCE_OPS))})")
    combine = REDUCE_OPS[op]
    if not values or len(values) % n:
        raise MpiError(
            f"all-reduce vector length {len(values)} must be a positive "
            f"multiple of the {n} ranks")
    tag = _coll_tag(rank)
    req = MpiRequest(comm.sim, "allreduce", rank.rank)
    chunk_len = len(values) // n
    per_instr = rank.node.gpu.config.instruction_time

    def body():
        chunks = [list(values[i * chunk_len:(i + 1) * chunk_len])
                  for i in range(n)]
        # Sends are issued WITHOUT waiting on their completion: a rendezvous
        # send only finishes once the peer's matching receive produced the
        # CTS, so send-then-wait-then-recv would deadlock the symmetric
        # ring.  Post the send, block on the receive, drain sends at the
        # end.
        sends = []
        for s in range(n - 1):
            send_idx = (rank.rank - s) % n
            recv_idx = (rank.rank - s - 1) % n
            sends.append(rank.isend(rank.next, _pack(chunks[send_idx]),
                                    tag=tag))
            incoming = _unpack((yield rank.irecv(source=rank.prev,
                                                 tag=tag)))
            yield 2 * chunk_len * per_instr     # fused combine of one chunk
            chunks[recv_idx] = [combine(a, b)
                                for a, b in zip(chunks[recv_idx], incoming)]
        for s in range(n - 1):
            send_idx = (rank.rank + 1 - s) % n
            recv_idx = (rank.rank - s) % n
            sends.append(rank.isend(rank.next, _pack(chunks[send_idx]),
                                    tag=tag))
            chunks[recv_idx] = _unpack((yield rank.irecv(source=rank.prev,
                                                         tag=tag)))
        for sreq in sends:
            yield sreq
        return _pack([v for chunk in chunks for v in chunk])

    _pump(comm, body(), req)
    return req
