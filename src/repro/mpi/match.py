"""The (source, tag, comm) matching engine.

MPI's matching rule: a receive matches the oldest incoming message whose
``(source, tag)`` it accepts (``ANY_SOURCE`` / ``ANY_TAG`` wildcards), and
messages between one (source, destination, tag) pair are delivered in the
order they were sent — non-overtaking.  Both queues are plain FIFOs scanned
front to back, which gives exactly those semantics and makes the match
order a pure function of arrival order; the transport is deterministic for
a fixed seed, so match order replays identically.

The engine is NIC-resident model state (libfabric-style offloaded
matching): entries are posted/consumed by plain function calls from the
communicator's arrival hooks, with no simulated host cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

from .envelope import ANY_SOURCE, ANY_TAG, Envelope

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .request import MpiRequest


@dataclass
class Inbound:
    """One arrived-but-possibly-unmatched message."""

    envelope: Envelope
    payload: bytes = b""    # EAGER only; rendezvous data lands later

    @property
    def src_rank(self) -> int:
        return self.envelope.src_rank

    @property
    def tag(self) -> int:
        return self.envelope.tag


class MatchEngine:
    """Posted-receive and unexpected-message queues for one rank."""

    GAUGES = ("posted_depth", "unexpected_depth")

    def __init__(self, rank: int) -> None:
        self.rank = rank
        self.posted: List["MpiRequest"] = []
        self.unexpected: List[Inbound] = []
        self.matches = 0
        self.unexpected_arrivals = 0
        self.posted_peak = 0
        self.unexpected_peak = 0

    @staticmethod
    def _accepts(req: "MpiRequest", msg: Inbound) -> bool:
        return ((req.source == ANY_SOURCE or req.source == msg.src_rank)
                and (req.tag == ANY_TAG or req.tag == msg.tag))

    def post(self, req: "MpiRequest") -> Optional[Inbound]:
        """Post a receive.  Returns the unexpected message it matches (oldest
        acceptable arrival), or None after queuing it."""
        for i, msg in enumerate(self.unexpected):
            if self._accepts(req, msg):
                self.matches += 1
                return self.unexpected.pop(i)
        self.posted.append(req)
        self.posted_peak = max(self.posted_peak, len(self.posted))
        return None

    def incoming(self, msg: Inbound) -> Optional["MpiRequest"]:
        """Feed an arrival.  Returns the posted receive it matches (oldest
        acceptable), or None after queuing it as unexpected."""
        for i, req in enumerate(self.posted):
            if self._accepts(req, msg):
                self.matches += 1
                return self.posted.pop(i)
        self.unexpected.append(msg)
        self.unexpected_arrivals += 1
        self.unexpected_peak = max(self.unexpected_peak,
                                   len(self.unexpected))
        return None

    def cancel(self, req: "MpiRequest") -> bool:
        """Withdraw a posted receive; False if it already matched."""
        try:
            self.posted.remove(req)
            return True
        except ValueError:
            return False

    # -- uniform stats protocol ----------------------------------------------------
    def snapshot(self) -> Dict[str, int]:
        return {
            "matches": self.matches,
            "unexpected_arrivals": self.unexpected_arrivals,
            "posted_peak": self.posted_peak,
            "unexpected_peak": self.unexpected_peak,
            "posted_depth": len(self.posted),
            "unexpected_depth": len(self.unexpected),
        }

    def diff(self, earlier: Dict[str, int]) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for name, value in self.snapshot().items():
            if name in self.GAUGES:
                out[name] = value
            else:
                out[name] = value - earlier.get(name, 0)
        return out
