"""MPI-layer benchmarks: tagged ping-pong and triggered iallreduce.

Two measurements, both returning LatencyPoints plus the NIC's own control-
path counters so invariants can be checked against hardware truth instead
of model bookkeeping:

* :func:`run_mpi_pingpong` — tagged eager/rendezvous ping-pong across a
  size sweep; the protocol crossover at ``eager_threshold`` must show up in
  the per-size ``rndv_sent`` counts.
* :func:`run_mpi_allreduce` — the triggered-chain ``iallreduce``, measured
  per round with ``phase`` spans so span totals, the LatencyPoint, and the
  chain counters reconcile three ways (the engine CLI's verification
  pattern applied to this layer).
* :func:`run_mode_allreduce_mmio` — the PR 2 collectives stack in any of
  its three control modes, counting what its control path pushes through
  the BAR, for the host-assist-vs-triggered ablation.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from ..cluster import build_extoll_cluster
from ..collectives.algorithms import _unpack
from ..collectives.bench import build_communicator, run_collective, vector
from ..collectives.comm import CollectiveMode
from ..core.results import LatencyPoint
from ..errors import MpiError
from ..obs.export import phase_breakdown
from ..obs.tracer import SpanTracer
from ..sim import NULL_SPAN, Simulator
from .collectives import iallreduce
from .comm import MpiCommunicator, MpiConfig

_LIMIT = 600.0


@dataclasses.dataclass(frozen=True)
class MpiPingPongResult:
    """One ping-pong size point."""

    size: int
    iterations: int
    point: LatencyPoint
    eager_sent: int
    rndv_sent: int
    bar_mmio: int              # WR posts + doorbells of any kind

    @property
    def protocol(self) -> str:
        return "rendezvous" if self.rndv_sent else "eager"


@dataclasses.dataclass(frozen=True)
class MpiAllreduceResult:
    """One measured iallreduce configuration."""

    nodes: int
    size: int
    iterations: int
    point: LatencyPoint
    chains_fired: int
    descriptors_fired: int
    bar_mmio: int
    correct: bool
    reconcile: Dict[str, object]
    algorithm: str = "ring"


def _build(num_nodes: int, seed: int, config: MpiConfig,
           tracer: Optional[SpanTracer]):
    sim = Simulator(seed=seed, tracer=tracer)
    cluster = build_extoll_cluster(
        sim=sim, num_nodes=num_nodes,
        topology="pair" if num_nodes == 2 else "ring")
    return MpiCommunicator(cluster, config=config)


def _bar_mmio(delta: Dict[str, int]) -> int:
    return (delta["host_wr_posts"] + delta["batch_doorbells"]
            + delta["trigger_doorbells"])


def run_mpi_pingpong(size: int, iterations: int = 8, warmup: int = 2,
                     seed: int = 11, config: Optional[MpiConfig] = None,
                     tracer: Optional[SpanTracer] = None) -> MpiPingPongResult:
    """Half-round-trip latency of a tagged 2-rank ping-pong at ``size``."""
    if size < 1 or iterations < 1 or warmup < 0:
        raise MpiError("need size >= 1, iterations >= 1, warmup >= 0")
    config = config or MpiConfig()
    comm = _build(2, seed, config, tracer)
    r0, r1 = comm.ranks
    trc = comm.sim.tracer
    payload = bytes(i & 0xFF for i in range(size))
    before = comm.snapshot()
    start = None
    for i in range(iterations + warmup):
        measured = i >= warmup
        if measured and start is None:
            start = comm.sim.now
        span = (trc.begin("phase", "pingpong", track="mpi", iter=i)
                if trc.enabled and measured else NULL_SPAN)
        ping = [r0.isend(1, payload, tag=1), r1.irecv(source=0, tag=1)]
        comm.wait(*ping, limit=_LIMIT)
        pong = [r1.isend(0, ping[1].data, tag=2), r0.irecv(source=1, tag=2)]
        comm.wait(*pong, limit=_LIMIT)
        span.end()
        if pong[1].data != payload:
            raise MpiError(f"ping-pong payload mismatch at {size} B")
    elapsed = comm.sim.now - start
    comm.check_async_errors()
    delta = comm.diff(before)
    return MpiPingPongResult(
        size=size, iterations=iterations,
        point=LatencyPoint(size=size, latency=elapsed / (2 * iterations)),
        eager_sent=delta["eager_sent"], rndv_sent=delta["rndv_sent"],
        bar_mmio=_bar_mmio(delta))


def allreduce_message_count(algorithm: str, nodes: int) -> int:
    """Total fabric messages ONE all-reduce round injects, by schedule:
    the chain-counter reconcile's expectation.  ``log2`` terms assume a
    power-of-two N (enforced by :func:`~repro.mpi.collectives.iallreduce`
    for ``rh``)."""
    log = max(1, (nodes - 1).bit_length())
    if algorithm == "ring":
        return nodes * 2 * (nodes - 1)
    if algorithm == "rh":
        return nodes * 2 * log
    if algorithm == "tree":
        return 2 * (nodes - 1)          # N-1 up the tree, N-1 back down
    raise MpiError(f"unknown all-reduce algorithm {algorithm!r}")


def run_mpi_allreduce(nodes: int, size: int, iterations: int = 4,
                      warmup: int = 1, seed: int = 11,
                      tracer: Optional[SpanTracer] = None,
                      reconcile_tolerance: float = 0.01,
                      algorithm: str = "ring") -> MpiAllreduceResult:
    """Measured triggered-chain iallreduce rounds, with a three-way
    reconcile: NIC chain counters vs ``phase`` span totals vs the
    LatencyPoint must agree to ``reconcile_tolerance``.  ``algorithm``
    picks the staged schedule (``ring``/``rh``/``tree``); the non-ring
    schedules exchange with ``rank ^ dist`` partners and so wire
    all-pairs connectivity with slots sized for their largest message."""
    if nodes < 2 or size < 8 or size % 8:
        raise MpiError("need nodes >= 2 and a size that is a multiple of 8")
    # Largest single message: one chunk for the ring, half/whole vector
    # for halving/tree.
    if algorithm == "tree":
        max_msg = nodes * size
    elif algorithm == "rh":
        max_msg = max(size, nodes * size // 2)
    else:
        max_msg = size
    slot = max(512, max_msg + 64)
    connectivity = ("full" if algorithm != "ring" or nodes == 2
                    else "ring")
    config = MpiConfig(eager_threshold=slot - 64, slot_size=slot,
                       connectivity=connectivity)
    comm = _build(nodes, seed, config, tracer)
    trc = comm.sim.tracer
    vectors = [vector(r, nodes, size) for r in range(nodes)]
    expected = [sum(col) for col in zip(*vectors)]
    before = comm.snapshot()
    start = None
    correct = True
    measured_rounds = 0
    for i in range(iterations + warmup):
        measured = i >= warmup
        if measured and start is None:
            start = comm.sim.now
        span = (trc.begin("phase", "iallreduce", track="mpi", iter=i)
                if trc.enabled and measured else NULL_SPAN)
        reqs = [iallreduce(comm, rank, vectors[rank.rank],
                           algorithm=algorithm)
                for rank in comm.ranks]
        comm.wait(*reqs, limit=_LIMIT)
        span.end()
        if measured:
            measured_rounds += 1
        for req in reqs:
            got = _unpack(req.data)
            if any(abs(a - b) > 1e-9 * max(1.0, abs(b))
                   for a, b in zip(got, expected)):
                correct = False
    elapsed = comm.sim.now - start
    comm.check_async_errors()
    delta = comm.diff(before)
    point = LatencyPoint(size=size, latency=elapsed / iterations)

    # Three-way reconcile: chains the units say fired vs the chain count
    # the schedule implies, and traced span time vs the timed elapsed.
    expected_chains = (allreduce_message_count(algorithm, nodes)
                       * (iterations + warmup))
    chain_err = (abs(delta["chains_fired"] - expected_chains)
                 / expected_chains)
    reconcile: Dict[str, object] = {
        "chains": {"observed": delta["chains_fired"],
                   "expected": expected_chains, "rel_err": chain_err,
                   "ok": chain_err <= reconcile_tolerance},
    }
    if trc is not None and trc.enabled:
        stat = phase_breakdown(trc).get("iallreduce")
        traced = stat.total if stat else 0.0
        expected_total = point.latency * measured_rounds
        span_err = (abs(traced - expected_total) / expected_total
                    if expected_total else 0.0)
        reconcile["spans"] = {"traced": traced, "expected": expected_total,
                              "rel_err": span_err,
                              "ok": span_err <= reconcile_tolerance}
    reconcile["ok"] = all(v["ok"] for k, v in reconcile.items()
                          if isinstance(v, dict))
    return MpiAllreduceResult(
        nodes=nodes, size=size, iterations=iterations, point=point,
        chains_fired=delta["chains_fired"],
        descriptors_fired=delta["descriptors_fired"],
        bar_mmio=_bar_mmio(delta), correct=correct, reconcile=reconcile,
        algorithm=algorithm)


def run_mode_allreduce_mmio(mode: CollectiveMode, nodes: int, size: int,
                            iterations: int = 4, warmup: int = 1,
                            seed: int = 11) -> Dict[str, object]:
    """PR 2's all-reduce in one control mode, with the NIC's count of what
    the control path pushed through the BAR (single WR posts + batched
    doorbells) — the host-assist numbers the triggered layer is up against.
    """
    sim = Simulator(seed=seed)
    cluster, comm = build_communicator(nodes, size, mode, sim=sim)
    result = run_collective(cluster, comm, "all-reduce", size,
                            iterations=iterations, warmup=warmup)
    mmio = sum(node.nic.wr_posts + node.nic.batch_doorbells
               + node.nic.trigger_doorbells for node in cluster.nodes)
    wrs = sum(node.nic.wr_posts + node.nic.batch_descriptors
              for node in cluster.nodes)
    return {"mode": mode.value, "latency_us": result.point.latency_us,
            "correct": result.correct, "bar_mmio": mmio, "wrs_posted": wrs}


def pingpong_sweep(sizes: List[int], iterations: int = 8, warmup: int = 2,
                   seed: int = 11,
                   config: Optional[MpiConfig] = None
                   ) -> List[MpiPingPongResult]:
    """Fresh communicator per size so points never share warmed state."""
    return [run_mpi_pingpong(size, iterations=iterations, warmup=warmup,
                             seed=seed, config=config) for size in sizes]
