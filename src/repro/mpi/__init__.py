"""repro.mpi — a CPU-free MPI-shaped layer compiled onto triggered put/get.

Tagged nonblocking point-to-point (eager + rendezvous), deterministic
(source, tag, comm) matching, requests with test/wait/waitall, and
nonblocking collectives staged as chain DAGs — all driven by NIC-resident
counters and listeners, never by a host progress thread.
"""

from .collectives import iallreduce, ibarrier, ibcast
from .comm import MpiCommunicator, MpiConfig, MpiRank
from .envelope import ANY_SOURCE, ANY_TAG, ENVELOPE_BYTES, Envelope, MsgKind
from .match import Inbound, MatchEngine
from .request import MpiRequest, waitall_in

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "ENVELOPE_BYTES",
    "Envelope",
    "Inbound",
    "MatchEngine",
    "MpiCommunicator",
    "MpiConfig",
    "MpiRank",
    "MpiRequest",
    "MsgKind",
    "iallreduce",
    "ibarrier",
    "ibcast",
    "waitall_in",
]
