"""Message envelopes — the 24-byte MPI header travelling inside msglib slots.

Every MPI-layer message is one msglib slot whose payload begins with an
envelope; the slot header (``(seq << 16) | length``) stays untouched, so the
transport's in-order / last-element-written arguments keep holding.

Envelope layout (three little-endian u64 words):

* word 0: | kind:4 | src_rank:8 | comm_id:8 | tag:16 |
* word 1: size — payload bytes (EAGER), message bytes (RTS),
          destination NLA (CTS)
* word 2: handle — the sender-side rendezvous operation id (RTS/CTS/FIN)

Protocol kinds:

* ``EAGER`` — payload rides in the same slot, right after the envelope.
* ``RTS``   — ready to send: a message above the eager threshold announces
  itself; no payload.
* ``CTS``   — clear to send: the receiver's reply carrying the NLA of the
  landing buffer it registered.
* ``FIN``   — the sender's last word: it follows the raw-data put on the
  same in-order path, so its arrival proves the payload landed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import MpiError

ENVELOPE_BYTES = 24

#: Wildcards accepted by ``irecv`` (matched in software, never on the wire).
ANY_SOURCE = -1
ANY_TAG = -1

MAX_TAG = (1 << 16) - 1


class MsgKind(enum.IntEnum):
    EAGER = 1
    RTS = 2
    CTS = 3
    FIN = 4


@dataclass(frozen=True)
class Envelope:
    kind: MsgKind
    src_rank: int
    comm_id: int
    tag: int
    size: int = 0
    handle: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.tag <= MAX_TAG:
            raise MpiError(f"tag {self.tag} outside 0..{MAX_TAG}")
        if not 0 <= self.src_rank < 256:
            raise MpiError(f"source rank {self.src_rank} outside 0..255")
        if not 0 <= self.comm_id < 256:
            raise MpiError(f"comm id {self.comm_id} outside 0..255")

    def encode(self) -> bytes:
        word0 = (int(self.kind) & 0xF) \
            | ((self.src_rank & 0xFF) << 4) \
            | ((self.comm_id & 0xFF) << 12) \
            | ((self.tag & 0xFFFF) << 20)
        return (word0.to_bytes(8, "little")
                + self.size.to_bytes(8, "little")
                + self.handle.to_bytes(8, "little"))

    @classmethod
    def decode(cls, raw: bytes) -> "Envelope":
        if len(raw) != ENVELOPE_BYTES:
            raise MpiError(
                f"envelope must be {ENVELOPE_BYTES} bytes, got {len(raw)}")
        word0 = int.from_bytes(raw[0:8], "little")
        kind_val = word0 & 0xF
        try:
            kind = MsgKind(kind_val)
        except ValueError:
            raise MpiError(f"bad envelope kind {kind_val}") from None
        return cls(
            kind=kind,
            src_rank=(word0 >> 4) & 0xFF,
            comm_id=(word0 >> 12) & 0xFF,
            tag=(word0 >> 20) & 0xFFFF,
            size=int.from_bytes(raw[8:16], "little"),
            handle=int.from_bytes(raw[16:24], "little"),
        )
