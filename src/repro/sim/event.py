"""Events — the unit of synchronization in the discrete-event engine.

An :class:`Event` starts *pending*, is *triggered* exactly once (either
succeeded with a value or failed with an exception), and then runs its
callbacks when the simulator processes it.  Processes wait on events by
``yield``-ing them; see :mod:`repro.sim.process`.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, List, Optional, TYPE_CHECKING

from ..errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import Simulator


class EventState(enum.Enum):
    PENDING = "pending"
    TRIGGERED = "triggered"  # scheduled, callbacks not yet run
    PROCESSED = "processed"  # callbacks have run


class Event:
    """A one-shot occurrence at a point in simulated time.

    Parameters
    ----------
    sim:
        The owning simulator.  Events are bound to exactly one simulator.
    name:
        Optional label used by tracing and ``repr``.
    """

    __slots__ = ("sim", "name", "_state", "_value", "_ok", "callbacks")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._state = EventState.PENDING
        self._value: Any = None
        self._ok: Optional[bool] = None
        self.callbacks: List[Callable[["Event"], None]] = []

    # -- state inspection ---------------------------------------------------
    @property
    def state(self) -> EventState:
        return self._state

    @property
    def pending(self) -> bool:
        return self._state is EventState.PENDING

    @property
    def triggered(self) -> bool:
        return self._state is not EventState.PENDING

    @property
    def processed(self) -> bool:
        return self._state is EventState.PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError(f"{self!r} has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The success value or the failure exception."""
        if self._state is EventState.PENDING:
            raise SimulationError(f"{self!r} has no value yet")
        return self._value

    # -- triggering ---------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully, scheduling callbacks after
        ``delay`` seconds of simulated time."""
        self._trigger(True, value, delay)
        return self

    def fail(self, exc: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event as failed with ``exc``."""
        if not isinstance(exc, BaseException):
            raise TypeError(f"fail() needs an exception, got {exc!r}")
        self._trigger(False, exc, delay)
        return self

    def _trigger(self, ok: bool, value: Any, delay: float) -> None:
        if self._state is not EventState.PENDING:
            raise SimulationError(f"{self!r} already triggered")
        if delay < 0.0:
            raise SimulationError(f"negative delay: {delay!r}")
        self._state = EventState.TRIGGERED
        self._ok = ok
        self._value = value
        self.sim._schedule(self, delay)

    def _run_callbacks(self) -> None:
        """Called by the simulator when the event's time arrives."""
        self._state = EventState.PROCESSED
        callbacks, self.callbacks = self.callbacks, []
        for cb in callbacks:
            cb(self)

    def add_callback(self, cb: Callable[["Event"], None]) -> None:
        """Register ``cb`` to run when the event is processed.  If the event
        was already processed the callback runs immediately."""
        if self._state is EventState.PROCESSED:
            cb(self)
        else:
            self.callbacks.append(cb)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} {self._state.value}>"


class Timeout(Event):
    """An event that succeeds after a fixed delay.  The canonical way for a
    process to spend simulated time."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None,
                 name: str = "") -> None:
        if delay < 0.0:
            raise SimulationError(f"negative timeout: {delay!r}")
        super().__init__(sim, name or f"timeout({delay:g})")
        self.delay = delay
        self.succeed(value, delay=delay)
