"""Shared-resource primitives: counted resources, mutexes, and FIFO stores.

These model contention: a PCIe link serializing MMIO stores, an SM with a
bounded number of resident blocks, a NIC requester accepting one descriptor
at a time.  All wait queues are FIFO, which keeps runs deterministic.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, Optional, TYPE_CHECKING

from ..errors import SimulationError
from .event import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import Simulator


class Resource:
    """A counted resource with ``capacity`` concurrent slots.

    Usage from a process::

        req = resource.acquire()
        yield req
        try:
            ...
        finally:
            resource.release()
    """

    def __init__(self, sim: "Simulator", capacity: int = 1, name: str = "") -> None:
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queued(self) -> int:
        return len(self._waiters)

    def acquire(self) -> Event:
        """An event that fires when a slot is granted to the caller."""
        ev = self.sim.event(f"acquire:{self.name}")
        if self._in_use < self.capacity:
            self._in_use += 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        """Return a slot; hands it directly to the longest-waiting acquirer."""
        if self._in_use <= 0:
            raise SimulationError(f"release() without acquire on {self.name!r}")
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self._in_use -= 1

    def using(self, duration: float) -> Generator[Event, Any, None]:
        """Convenience process fragment: hold one slot for ``duration``."""
        yield self.acquire()
        try:
            yield self.sim.timeout(duration)
        finally:
            self.release()


class Mutex(Resource):
    """A capacity-1 resource."""

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        super().__init__(sim, capacity=1, name=name)


class Store:
    """An unbounded-or-bounded FIFO channel of Python objects.

    ``put`` returns an event that fires once the item is accepted (immediately
    unless the store is bounded and full); ``get`` returns an event that fires
    with the next item.  This is the mailbox used between pipeline stages
    (e.g. NIC units handing descriptors to each other).
    """

    def __init__(self, sim: "Simulator", capacity: Optional[int] = None,
                 name: str = "") -> None:
        if capacity is not None and capacity < 1:
            raise SimulationError(f"capacity must be >= 1 or None, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def getters_waiting(self) -> int:
        return len(self._getters)

    def put(self, item: Any) -> Event:
        ev = self.sim.event(f"put:{self.name}")
        if self._getters:
            # Hand straight to a waiting consumer.
            self._getters.popleft().succeed(item)
            ev.succeed()
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            ev.succeed()
        else:
            self._putters.append((ev, item))
        return ev

    def get(self) -> Event:
        ev = self.sim.event(f"get:{self.name}")
        if self._items:
            item = self._items.popleft()
            # A blocked producer can now deposit its item.
            if self._putters:
                pev, pitem = self._putters.popleft()
                self._items.append(pitem)
                pev.succeed()
            ev.succeed(item)
        elif self._putters:
            pev, pitem = self._putters.popleft()
            pev.succeed()
            ev.succeed(pitem)
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> Optional[Any]:
        """Non-blocking get: the next item, or None if empty."""
        if not self._items and not self._putters:
            return None
        ev = self.get()
        assert ev.triggered
        return ev.value
