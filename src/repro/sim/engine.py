"""The discrete-event simulator core.

A :class:`Simulator` owns a time-ordered event heap and advances simulated
time by processing events in (time, insertion-order) order.  All model state
changes happen inside event callbacks, which in practice means inside
coroutine *processes* (:mod:`repro.sim.process`).

Determinism: ties in time are broken by a monotonically increasing sequence
number, so two runs of the same model produce identical schedules.
"""

from __future__ import annotations

import heapq
import random
from typing import Any, Callable, Generator, List, Optional, Tuple

from ..errors import DeadlockError, SimulationError
from .event import Event, Timeout
from .trace import NULL_TRACER, get_default_tracer


class ScheduledCall:
    """Cancellable handle returned by :meth:`Simulator.call_later`.

    The underlying :class:`~repro.sim.event.Timeout` is already on the heap
    the moment it is created, so cancellation cannot unschedule it; instead
    :meth:`cancel` drops the function reference and the heap entry fires as
    a no-op.  That is exactly what the triggered-operations layer needs to
    retire rendezvous timeouts and armed-but-never-fired chains: the closure
    (and everything it captures) is released immediately, and nothing runs
    when the slot's time arrives.
    """

    __slots__ = ("event", "_fn", "_fired")

    def __init__(self, event: Timeout, fn: Callable[[], None]) -> None:
        self.event = event
        self._fn: Optional[Callable[[], None]] = fn
        self._fired = False

    @property
    def fired(self) -> bool:
        """True once the callback has actually run."""
        return self._fired

    @property
    def cancelled(self) -> bool:
        return self._fn is None and not self._fired

    @property
    def active(self) -> bool:
        """Still scheduled: neither fired nor cancelled."""
        return self._fn is not None

    def cancel(self) -> bool:
        """Retire the call; returns False if it already fired or was
        already cancelled."""
        if self._fn is None:
            return False
        self._fn = None
        return True

    def _run(self, _ev: Event) -> None:
        fn, self._fn = self._fn, None
        if fn is not None:
            self._fired = True
            fn()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "fired" if self._fired else (
            "cancelled" if self._fn is None else "scheduled")
        return f"<ScheduledCall {self.event.name!r} {state}>"


class Simulator:
    """Event loop for one simulated system.

    Attributes
    ----------
    now:
        Current simulated time in seconds.
    tracer:
        The observability tracer models report to (``self.sim.tracer``).
        Defaults to the process-wide default (normally the zero-cost
        :data:`~repro.sim.trace.NULL_TRACER`); install a real one with
        :meth:`set_tracer` or :func:`repro.sim.trace.set_default_tracer`.
    rng:
        The simulation's seeded random stream (``random.Random``) — the ONLY
        source of randomness models may use, so that two simulators built
        with the same ``seed`` replay byte-identically.  Never seeded from
        wall-clock: the default seed is 0.
    """

    def __init__(self, trace: Optional[Callable[[float, str], None]] = None,
                 tracer=None, seed: int = 0) -> None:
        self._now: float = 0.0
        self._heap: List[Tuple[float, int, Event]] = []
        self._seq: int = 0
        self._trace = trace
        self._active_processes: int = 0
        #: Events processed since construction.  Deterministic for a given
        #: model + seed, which makes it the machine-independent proxy for
        #: simulator work that the bench harness tracks alongside raw
        #: wall-clock (``python -m repro bench``).
        self.events_processed: int = 0
        self.seed = seed
        self.rng = random.Random(seed)
        self.tracer = tracer if tracer is not None else get_default_tracer()
        if self.tracer is not NULL_TRACER:
            self.tracer.bind(self)

    def set_tracer(self, tracer) -> None:
        """Install ``tracer`` (binding it to this simulator's clock)."""
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.tracer.bind(self)

    # -- time -----------------------------------------------------------------
    @property
    def now(self) -> float:
        return self._now

    # -- event construction -----------------------------------------------------
    def event(self, name: str = "") -> Event:
        """A fresh pending event bound to this simulator."""
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None, name: str = "") -> Timeout:
        """An event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value, name)

    def process(self, generator: Generator, name: str = "") -> "Process":
        """Spawn a coroutine process (see :mod:`repro.sim.process`)."""
        from .process import Process  # local import to avoid a cycle

        return Process(self, generator, name)

    def call_later(self, delay: float, fn: Callable[[], None],
                   name: str = "") -> ScheduledCall:
        """Run ``fn()`` after ``delay`` seconds of simulated time.

        One heap entry, no coroutine machinery — the cheapest way to hook
        periodic observers (e.g. the telemetry sampler) onto the event
        loop; ``fn`` may re-arm itself by calling :meth:`call_later` again.
        Returns a :class:`ScheduledCall` whose :meth:`~ScheduledCall.cancel`
        turns the pending fire into a no-op and releases ``fn``.
        """
        ev = Timeout(self, delay, name=name or "call_later")
        handle = ScheduledCall(ev, fn)
        ev.add_callback(handle._run)
        return handle

    # -- scheduling -------------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        when = self._now + delay
        heapq.heappush(self._heap, (when, self._seq, event))
        self._seq += 1

    # -- running ----------------------------------------------------------------
    def peek(self) -> float:
        """Time of the next scheduled event, or ``float('inf')`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        if not self._heap:
            raise SimulationError("step() on an empty schedule")
        when, _seq, event = heapq.heappop(self._heap)
        if when < self._now:  # pragma: no cover - guarded by _schedule
            raise SimulationError("time went backwards")
        self._now = when
        self.events_processed += 1
        if self._trace is not None:
            self._trace(when, repr(event))
        event._run_callbacks()

    def run(self, until: Optional[float] = None) -> None:
        """Run until the schedule drains or simulated time reaches ``until``.

        Raises
        ------
        DeadlockError
            If the schedule drains while processes are still alive and no
            ``until`` horizon was given (the model is stuck).
        """
        if until is not None and until < self._now:
            raise SimulationError(f"until={until!r} is in the past (now={self._now!r})")
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                self._now = until
                return
            self.step()
        if until is not None:
            self._now = until
        elif self._active_processes > 0:
            raise DeadlockError(
                f"schedule drained with {self._active_processes} process(es) still waiting"
            )

    def run_until_complete(self, *events: Event, limit: Optional[float] = None) -> None:
        """Run until every event in ``events`` has been processed.

        ``limit`` bounds simulated time; exceeding it raises
        :class:`SimulationError` (useful to catch livelocks in tests).
        """
        if not events:
            raise SimulationError("run_until_complete() needs at least one event")
        while not all(e.processed for e in events):
            if not self._heap:
                raise DeadlockError(
                    "schedule drained before awaited events completed: "
                    + ", ".join(repr(e) for e in events if not e.processed)
                )
            if limit is not None and self._heap[0][0] > limit:
                raise SimulationError(f"simulated time limit {limit!r}s exceeded")
            self.step()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator now={self._now:g} queued={len(self._heap)}>"
