"""Composite wait conditions: wait for all / any of several events."""

from __future__ import annotations

from typing import Dict, List, TYPE_CHECKING

from ..errors import SimulationError
from .event import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import Simulator


class AllOf(Event):
    """Succeeds when every child event has succeeded.

    The value is a dict mapping each child event to its value, preserving the
    order the children were given in.  Fails as soon as any child fails.
    """

    __slots__ = ("_children", "_remaining")

    def __init__(self, sim: "Simulator", events: List[Event], name: str = "") -> None:
        super().__init__(sim, name or "all_of")
        if not events:
            raise SimulationError("AllOf needs at least one event")
        self._children = list(events)
        self._remaining = len(self._children)
        for ev in self._children:
            if ev.sim is not sim:
                raise SimulationError("AllOf mixes events from different simulators")
            ev.add_callback(self._on_child)

    def _on_child(self, child: Event) -> None:
        if self.triggered:
            return
        if not child.ok:
            self.fail(child.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            values: Dict[Event, object] = {ev: ev.value for ev in self._children}
            self.succeed(values)


class AnyOf(Event):
    """Succeeds (or fails) as soon as the first child event triggers.

    The value is a dict with the single finished child and its value.
    """

    __slots__ = ("_children",)

    def __init__(self, sim: "Simulator", events: List[Event], name: str = "") -> None:
        super().__init__(sim, name or "any_of")
        if not events:
            raise SimulationError("AnyOf needs at least one event")
        self._children = list(events)
        for ev in self._children:
            if ev.sim is not sim:
                raise SimulationError("AnyOf mixes events from different simulators")
            ev.add_callback(self._on_child)

    def _on_child(self, child: Event) -> None:
        if self.triggered:
            return
        if child.ok:
            self.succeed({child: child.value})
        else:
            self.fail(child.value)
