"""Discrete-event simulation engine.

The rest of the library is built on four ideas:

* :class:`Simulator` — the event loop and clock,
* :class:`Event` / :class:`Timeout` — one-shot occurrences,
* :class:`Process` — coroutines that ``yield`` events to wait on them,
* :class:`Resource` / :class:`Mutex` / :class:`Store` — contention and
  message-passing between processes.
"""

from .engine import ScheduledCall, Simulator
from .event import Event, EventState, Timeout
from .primitives import AllOf, AnyOf
from .process import Interrupt, Process, join_result
from .resource import Mutex, Resource, Store
from .trace import (
    NULL_METRICS,
    NULL_SPAN,
    NULL_TRACER,
    NullSpan,
    NullTracer,
    TraceRecord,
    Tracer,
    get_default_tracer,
    set_default_tracer,
)

__all__ = [
    "Simulator",
    "ScheduledCall",
    "Event",
    "EventState",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "Process",
    "join_result",
    "Mutex",
    "Resource",
    "Store",
    "Tracer",
    "NullTracer",
    "NullSpan",
    "NULL_TRACER",
    "NULL_SPAN",
    "NULL_METRICS",
    "TraceRecord",
    "get_default_tracer",
    "set_default_tracer",
]
