"""Lightweight tracing: record (time, category, message) tuples.

Models call ``tracer.emit(...)`` at interesting points; tests and examples
can assert on, or pretty-print, what happened and when.  Tracing is off by
default (a ``NullTracer``) so the hot paths pay one attribute check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import Simulator


@dataclass(frozen=True)
class TraceRecord:
    time: float
    category: str
    message: str

    def __str__(self) -> str:
        return f"[{self.time * 1e6:12.3f}us] {self.category:<12} {self.message}"


class Tracer:
    """Collects trace records, optionally filtered by category."""

    enabled = True

    def __init__(self, sim: "Simulator",
                 categories: Optional[Iterable[str]] = None,
                 sink: Optional[Callable[[TraceRecord], None]] = None) -> None:
        self.sim = sim
        self.categories = set(categories) if categories is not None else None
        self.records: List[TraceRecord] = []
        self._sink = sink

    def emit(self, category: str, message: str) -> None:
        if self.categories is not None and category not in self.categories:
            return
        rec = TraceRecord(self.sim.now, category, message)
        self.records.append(rec)
        if self._sink is not None:
            self._sink(rec)

    def filter(self, category: str) -> List[TraceRecord]:
        return [r for r in self.records if r.category == category]

    def clear(self) -> None:
        self.records.clear()


class NullTracer:
    """A tracer that drops everything (the default)."""

    enabled = False
    records: List[TraceRecord] = []

    def emit(self, category: str, message: str) -> None:
        pass

    def filter(self, category: str) -> List[TraceRecord]:
        return []

    def clear(self) -> None:
        pass


NULL_TRACER = NullTracer()
