"""Tracing protocol: flat records, the span/metrics interface, null objects.

Two tracer families implement this protocol:

* :class:`Tracer` (here) — the original flat ``(time, category, message)``
  recorder, kept for lightweight tests and as the base class,
* :class:`repro.obs.SpanTracer` — the full observability tracer with
  hierarchical spans, instants, and a metrics registry.

Every :class:`~repro.sim.engine.Simulator` carries a ``tracer`` attribute
(default :data:`NULL_TRACER`), so models reach it as ``self.sim.tracer``.
Tracing is off by default; the hot paths pay one attribute check
(``tracer.enabled``) plus, at most, a no-op method call on the null objects.

This module deliberately knows nothing about :mod:`repro.obs` — the
dependency points the other way — but it hosts the *null* implementations
of the span and metrics interfaces so the default path needs no imports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import Simulator


@dataclass(frozen=True)
class TraceRecord:
    time: float
    category: str
    message: str

    def __str__(self) -> str:
        return f"[{self.time * 1e6:12.3f}us] {self.category:<12} {self.message}"


# -- null span / metrics --------------------------------------------------------

class NullSpan:
    """The span every disabled (or filtered-out) ``begin`` returns: all
    operations are no-ops, so instrumented code never branches on whether
    tracing is live."""

    __slots__ = ()

    def end(self, **attrs) -> None:
        pass

    def set(self, **attrs) -> None:
        pass

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


NULL_SPAN = NullSpan()


class _NullMetric:
    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def record(self, time: float, value: float) -> None:
        pass


_NULL_METRIC = _NullMetric()


class NullMetricsRegistry:
    """Metrics registry that swallows everything."""

    __slots__ = ()

    def counter(self, name: str) -> _NullMetric:
        return _NULL_METRIC

    def histogram(self, name: str) -> _NullMetric:
        return _NULL_METRIC

    def timeline(self, name: str) -> _NullMetric:
        return _NULL_METRIC

    def snapshot(self) -> dict:
        return {}


NULL_METRICS = NullMetricsRegistry()


# -- tracers --------------------------------------------------------------------

class Tracer:
    """Collects flat trace records, optionally filtered by category and by a
    ``[min_time, max_time]`` simulated-time window.

    Subclasses (notably :class:`repro.obs.SpanTracer`) extend this with
    hierarchical spans; the base class accepts the span calls but degrades
    them to nothing, so a flat tracer can be installed as ``sim.tracer``
    without breaking instrumented models.
    """

    enabled = True

    def __init__(self, sim: Optional["Simulator"] = None,
                 categories: Optional[Iterable[str]] = None,
                 sink: Optional[Callable[[TraceRecord], None]] = None,
                 min_time: Optional[float] = None,
                 max_time: Optional[float] = None) -> None:
        if (min_time is not None and max_time is not None
                and min_time > max_time):
            raise ValueError(f"empty trace window [{min_time}, {max_time}]")
        self.sim = sim
        self.categories = set(categories) if categories is not None else None
        self.min_time = min_time
        self.max_time = max_time
        self.records: List[TraceRecord] = []
        self.metrics = NULL_METRICS
        self._sink = sink

    # -- wiring ---------------------------------------------------------------
    def bind(self, sim: "Simulator") -> None:
        """Adopt ``sim`` as the clock source.  Called by the simulator when
        this tracer is installed on it."""
        self.sim = sim

    def now(self) -> float:
        return self.sim.now if self.sim is not None else 0.0

    # -- filtering -------------------------------------------------------------
    def wants(self, category: str) -> bool:
        """True when instrumentation in ``category`` should bother building
        its records.  The microscopically hot sites (per-TLP, per-poll) use
        ``trc.wants("pcie")`` instead of ``trc.enabled`` so a
        category-filtered tracer (e.g. the telemetry flight recorder) skips
        not just the span, but the *argument construction* for it."""
        return self.categories is None or category in self.categories

    def _passes_category(self, category: str) -> bool:
        return self.categories is None or category in self.categories

    def _passes_window(self, time: float) -> bool:
        if self.min_time is not None and time < self.min_time:
            return False
        if self.max_time is not None and time > self.max_time:
            return False
        return True

    # -- flat records ------------------------------------------------------------
    def emit(self, category: str, message: str) -> None:
        if not self._passes_category(category):
            return
        time = self.now()
        if not self._passes_window(time):
            return
        rec = TraceRecord(time, category, message)
        self.records.append(rec)
        if self._sink is not None:
            self._sink(rec)

    def filter(self, category: str) -> List[TraceRecord]:
        return [r for r in self.records if r.category == category]

    def clear(self) -> None:
        self.records.clear()

    # -- span interface (degraded: flat tracers keep no hierarchy) ---------------
    def begin(self, category: str, name: str, track: str = "main",
              **attrs) -> NullSpan:
        return NULL_SPAN

    def instant(self, category: str, name: str, track: str = "main",
                **attrs) -> None:
        self.emit(category, name)

    # -- causal flow events (degraded: flat tracers keep no flow log) -------------
    def flow_event(self, kind: str, actor: str, addr=None, **attrs) -> None:
        """Record one causal flow event (see :mod:`repro.causal`).  Flat
        tracers drop them; :class:`repro.obs.SpanTracer` stores them when the
        ``"causal"`` category passes its filter.  Emission sites guard with
        ``trc.wants("causal")`` so the disarmed path never builds arguments."""


class NullTracer:
    """A tracer that drops everything (the default).  Shares the full
    protocol — ``emit``, ``begin``, ``instant``, ``metrics`` — as no-ops."""

    enabled = False
    records: List[TraceRecord] = []
    metrics = NULL_METRICS

    def bind(self, sim: "Simulator") -> None:
        pass

    def now(self) -> float:
        return 0.0

    def wants(self, category: str) -> bool:
        return False

    def emit(self, category: str, message: str) -> None:
        pass

    def begin(self, category: str, name: str, track: str = "main",
              **attrs) -> NullSpan:
        return NULL_SPAN

    def instant(self, category: str, name: str, track: str = "main",
                **attrs) -> None:
        pass

    def flow_event(self, kind: str, actor: str, addr=None, **attrs) -> None:
        pass

    def filter(self, category: str) -> List[TraceRecord]:
        return []

    def clear(self) -> None:
        pass


NULL_TRACER = NullTracer()


# -- default tracer --------------------------------------------------------------
# New simulators pick this up at construction, which lets entry points (e.g.
# ``python -m repro --trace``) trace code paths that build clusters
# internally without threading a tracer through every call.

_default_tracer = NULL_TRACER


def set_default_tracer(tracer) -> None:
    """Install ``tracer`` as the default for newly created simulators
    (``None`` restores the null tracer)."""
    global _default_tracer
    _default_tracer = tracer if tracer is not None else NULL_TRACER


def get_default_tracer():
    return _default_tracer
