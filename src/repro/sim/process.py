"""Coroutine processes.

A *process* wraps a Python generator.  The generator ``yield``s
:class:`~repro.sim.event.Event` instances (or other processes, which are
themselves events); the process suspends until the yielded event fires and
then resumes with the event's value (or with the event's exception thrown
into the generator, so models can use ordinary ``try/except``).

A process is itself an event that succeeds with the generator's return value,
so processes compose: ``yield other_process`` joins it.
"""

from __future__ import annotations

from typing import Any, Generator, TYPE_CHECKING

from ..errors import SimulationError
from .event import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import Simulator


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Process(Event):
    """A running coroutine.  Succeeds when the generator returns."""

    __slots__ = ("_generator", "_waiting_on")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = "") -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(
                f"process body must be a generator, got {type(generator).__name__} "
                "(did you forget a 'yield'?)"
            )
        super().__init__(sim, name or getattr(generator, "__name__", "process"))
        self._generator = generator
        self._waiting_on: Event | None = None
        sim._active_processes += 1
        # Kick off the coroutine via an immediately-scheduled event so that
        # process start order is deterministic and start happens *inside* the
        # event loop.
        start = Event(sim, f"start:{self.name}")
        start.callbacks.append(self._resume)
        start.succeed()

    @property
    def is_alive(self) -> bool:
        return self.pending

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Only valid while the process is suspended on an event.
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt finished {self!r}")
        target = self._waiting_on
        if target is not None and not target.processed:
            # Detach from what we were waiting on; the event may still fire
            # later but we will ignore it.
            try:
                target.callbacks.remove(self._resume)
            except ValueError:  # pragma: no cover - already detached
                pass
        self._waiting_on = None
        wake = Event(self.sim, f"interrupt:{self.name}")
        wake.callbacks.append(self._resume)
        wake.fail(Interrupt(cause))

    # -- engine plumbing ------------------------------------------------------
    def _resume(self, trigger: Event) -> None:
        self._waiting_on = None
        try:
            if trigger.ok:
                nxt = self._generator.send(trigger.value)
            else:
                nxt = self._generator.throw(trigger.value)
        except StopIteration as stop:
            self.sim._active_processes -= 1
            self.succeed(stop.value)
            return
        except Interrupt:
            # An unhandled interrupt terminates the process cleanly.
            self.sim._active_processes -= 1
            self.succeed(None)
            return
        except Exception as exc:
            # Propagate through the event so joiners see it; if nobody joins,
            # join_result() or the event's value still surfaces it.
            self.sim._active_processes -= 1
            self.fail(exc)
            return
        if not isinstance(nxt, Event):
            self.sim._active_processes -= 1
            err = SimulationError(
                f"process {self.name!r} yielded {nxt!r}; processes may only "
                "yield Event instances"
            )
            self.fail(err)
            return
        if nxt.sim is not self.sim:
            self.sim._active_processes -= 1
            self.fail(SimulationError("yielded an event from a different simulator"))
            return
        self._waiting_on = nxt
        nxt.add_callback(self._resume)


def join_result(process: Process) -> Any:
    """Return the process result after the simulation has run, re-raising
    its failure exception if it crashed."""
    if not process.processed and process.pending:
        raise SimulationError(f"{process!r} has not finished")
    if not process.ok:
        raise process.value
    return process.value
