"""Happens-before DAG assembly from flow-event breadcrumbs.

The builder consumes a :class:`~repro.obs.tracer.SpanTracer`'s ``flows``
list (emission order == deterministic simulator order) and indexes it
three ways:

* **actor program order** — every actor's events, in order; the implicit
  serialization edge of one rank / NIC unit / driver,
* **address ladders** — for each ``(addr, kind)``, the occurrences in
  order; the i-th occurrence is *wave* i, and the i-th ``pst`` at an
  address pairs with the i-th ``txr``/``dlv``/... there (sound in
  fault-free runs: slot reuse at one address is credit-separated, and
  EXTOLL keeps same-path puts in order),
* **request brackets** — ``req.begin``/``req.end`` and the per-rank
  ``rank.begin``/``rank.end`` keyed by their ``req`` attribute.

:meth:`CausalDag.predecessor` resolves one event's critical predecessor:
the latest of its *causal candidate set*, which is deliberately narrow
per kind (see the table in the code) so the backward walk can never
escape the current request's bracket — credit-wait references
(``crd.waited_on``, chain ``wait_hint``) label segments but never redirect
the walk into the credit flow's own history.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import CausalError
from ..obs.tracer import FlowRecord
from .events import KNOWN_KINDS

#: Kinds whose only causal input is their actor's previous event.
#: ``inj`` qualifies: a source-side credit stall (``hop.crd``) is emitted
#: by the same rank actor, so program order already covers it.
_ACTOR_ONLY = frozenset({"snd", "rcv", "crd", "stg", "cmp", "rank.end",
                         "chain.fire", "chain.done", "inj"})

#: Same-message ladder: kind -> the upstream kind of its wave twin.
_LADDER = {"txr": "pst", "txd": "txr", "rxs": "txd", "dlv": "rxs"}

#: Fabric-hop kinds chained per address in emission order: one message's
#: multi-hop traversal (inj -> [hop.crd ->] hop -> ... -> eject).  Wave
#: pairing cannot express this — several ``hop`` events share one address
#: — so each address keeps its own ordered chain.
_FABRIC_CHAIN = frozenset({"inj", "hop.crd", "hop", "eject"})


def _key(ev: FlowRecord) -> Tuple[float, int]:
    return (ev.time, ev.seq)


class CausalDag:
    """Index + predecessor rules over one run's flow events."""

    def __init__(self, flows: Sequence[FlowRecord]) -> None:
        self.flows: List[FlowRecord] = list(flows)
        self.unknown_kinds: Set[str] = set()
        self._by_actor: Dict[str, List[FlowRecord]] = {}
        self._actor_pos: Dict[int, int] = {}
        self._ladders: Dict[tuple, List[FlowRecord]] = {}
        self._wave: Dict[int, int] = {}
        self._chains: Dict[object, List[FlowRecord]] = {}
        self._chain_pos: Dict[int, int] = {}
        self._req_begin: Dict[int, FlowRecord] = {}
        self._req_end: Dict[int, FlowRecord] = {}
        self._rank_ends: Dict[int, List[FlowRecord]] = {}
        self._rank_begins: Dict[int, List[FlowRecord]] = {}
        for ev in self.flows:
            if ev.kind not in KNOWN_KINDS:
                self.unknown_kinds.add(ev.kind)
            order = self._by_actor.setdefault(ev.actor, [])
            self._actor_pos[ev.seq] = len(order)
            order.append(ev)
            if ev.addr is not None:
                ladder = self._ladders.setdefault((ev.addr, ev.kind), [])
                self._wave[ev.seq] = len(ladder)
                ladder.append(ev)
                if ev.kind in _FABRIC_CHAIN:
                    chain = self._chains.setdefault(ev.addr, [])
                    self._chain_pos[ev.seq] = len(chain)
                    chain.append(ev)
            if ev.kind == "req.begin":
                self._req_begin[ev.attrs["req"]] = ev
            elif ev.kind == "req.end":
                self._req_end[ev.attrs["req"]] = ev
            elif ev.kind == "rank.end":
                self._rank_ends.setdefault(ev.attrs["req"], []).append(ev)
            elif ev.kind == "rank.begin":
                self._rank_begins.setdefault(ev.attrs["req"], []).append(ev)

    # -- lookups -------------------------------------------------------------------
    def requests(self) -> List[int]:
        """Request ids with a complete begin/end bracket, in order."""
        return sorted(r for r in self._req_begin if r in self._req_end)

    def bracket(self, req: int) -> Tuple[FlowRecord, FlowRecord]:
        try:
            return self._req_begin[req], self._req_end[req]
        except KeyError:
            raise CausalError(f"request {req} has no complete "
                              f"req.begin/req.end bracket") from None

    def rank_ends(self, req: int) -> List[FlowRecord]:
        return list(self._rank_ends.get(req, []))

    def rank_begins(self, req: int) -> List[FlowRecord]:
        return list(self._rank_begins.get(req, []))

    def actor_pred(self, ev: FlowRecord) -> Optional[FlowRecord]:
        pos = self._actor_pos[ev.seq]
        return self._by_actor[ev.actor][pos - 1] if pos else None

    def wave(self, ev: FlowRecord) -> Optional[int]:
        return self._wave.get(ev.seq)

    def chain_pred(self, ev: FlowRecord) -> Optional[FlowRecord]:
        """The previous fabric-hop event of ``ev``'s message, or None at
        the head of the chain (the injection)."""
        pos = self._chain_pos.get(ev.seq)
        if pos is None or pos == 0:
            return None
        return self._chains[ev.addr][pos - 1]

    def chain_last(self, addr) -> Optional[FlowRecord]:
        chain = self._chains.get(addr)
        return chain[-1] if chain else None

    def wave_pred(self, kind: str,
                  ev: FlowRecord) -> Optional[FlowRecord]:
        """``kind``'s event in the same wave at ``ev``'s address."""
        wave = self._wave.get(ev.seq)
        if wave is None:
            return None
        ladder = self._ladders.get((ev.addr, kind))
        if ladder is None or wave >= len(ladder):
            return None
        return ladder[wave]

    # -- predecessor rules ---------------------------------------------------------
    def candidates(self, ev: FlowRecord) -> List[FlowRecord]:
        """The causal candidate set of ``ev`` (unfiltered may hold None)."""
        kind = ev.kind
        if kind == "req.begin":
            return []                                    # walk terminus
        if kind == "req.end":
            # The last rank to finish IS the critical dependency; the
            # others' gaps are the per-rank slack.
            cands: List[Optional[FlowRecord]] = \
                list(self._rank_ends.get(ev.attrs["req"], []))
        elif kind == "rank.begin":
            cands = [self._req_begin.get(ev.attrs["req"])]
        elif kind in _ACTOR_ONLY:
            cands = [self.actor_pred(ev)]
        elif kind == "pst":
            if ev.attrs.get("via") == "chain":
                # Chain-fired posts continue at THIS message's staging:
                # the trigger unit's program order would walk into other
                # chains' history, and the arming counter's credit flow is
                # label-only (wait_hint) by design.
                cands = [self.wave_pred("stg", ev)]
            else:
                cands = [self.actor_pred(ev), self.wave_pred("stg", ev)]
        elif kind in _LADDER:
            cands = [self.wave_pred(_LADDER[kind], ev)]
        elif kind in ("hop", "eject"):
            # Mid-chain fabric events: the relay that handed the packet
            # over.  Never the switch actor's program order — that would
            # walk into OTHER messages relayed by the same switch.
            cands = [self.chain_pred(ev)]
        elif kind == "hop.crd":
            # A stalled credit gate mid-fabric chains to the previous hop;
            # at the source (chain head) the emitting actor is the sending
            # rank itself, whose program order is sound.
            prev = self.chain_pred(ev)
            cands = [prev] if prev is not None else [self.actor_pred(ev)]
        elif kind in ("rcd", "mrx"):
            cands = [self.actor_pred(ev), self.wave_pred("dlv", ev),
                     self.wave_pred("eject", ev)]
        elif kind == "snd.done":
            cands = [self.actor_pred(ev), self.wave_pred("txd", ev),
                     self.wave_pred("txr", ev)]
        else:
            cands = [self.actor_pred(ev)]
        mine = _key(ev)
        return [c for c in cands if c is not None and _key(c) < mine]

    def predecessor(self, ev: FlowRecord) -> Optional[FlowRecord]:
        """The critical (latest-arriving) causal predecessor of ``ev``."""
        cands = self.candidates(ev)
        if not cands:
            return None
        return max(cands, key=_key)


__all__ = ["CausalDag"]
