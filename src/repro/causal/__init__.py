"""Causal tracing + critical-path analysis across the put/get stack.

Every message the stack moves — msglib slot puts, raw RMA/IB work
requests, engine batches, triggered chains, MPI envelopes, workload
requests — already flows through a handful of chokepoints (staging,
posting, DMA, wire, delivery, drain).  This package turns the
:meth:`~repro.sim.trace.Tracer.flow_event` breadcrumbs those chokepoints
drop into a happens-before DAG and walks it backward from each request's
completion to its dispatch, yielding the request's **critical path**: the
single chain of dependencies whose durations sum *exactly* to the
measured end-to-end latency (the DES is deterministic, so reconciliation
is 0%, not approximate).

Flow identity is **address-keyed**: both ends of a message independently
compute ``(dst_node, dst_nla)`` from protocol state they already share
(ring slot arithmetic, descriptor fields), so causal context rides
in-band as span attributes and the wire format carries zero tracing
payload.  Repeated use of one address (slot-ring reuse) is disambiguated
by *wave*: the i-th ``pst`` at an address pairs with the i-th ``dlv``
there, which is sound because slot reuse is credit-separated in
fault-free runs.

Layout:

* :mod:`~repro.causal.events` — the event vocabulary and the per-segment
  blame categories (PR 4's six-phase vocabulary plus ``blocked-on-credit``
  / ``blocked-on-remote``),
* :mod:`~repro.causal.dag` — wave indexing + per-kind predecessor rules,
* :mod:`~repro.causal.critpath` — extraction, blame shares, straggler /
  per-rank slack, reconciliation gates,
* :mod:`~repro.causal.export` — waterfall text report + annotated Chrome
  trace with flow arrows,
* :mod:`~repro.causal.cli` — ``python -m repro critpath``.
"""

from .critpath import (CriticalPath, RunAnalysis, Segment, analyze_run,
                       extract_path)
from .dag import CausalDag
from .events import CATEGORY_ORDER, EDGE_KINDS, KNOWN_KINDS

__all__ = [
    "CATEGORY_ORDER",
    "CausalDag",
    "CriticalPath",
    "EDGE_KINDS",
    "KNOWN_KINDS",
    "RunAnalysis",
    "Segment",
    "analyze_run",
    "extract_path",
]
