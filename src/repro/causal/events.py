"""The causal event vocabulary and the blame-category mapping.

Event kinds, in the order one message traverses them::

    snd   app decided to send                      (rank actor  n{src})
    crd   credit gate passed   [gated, waited_on]  (rank actor)
    stg   slot/descriptor staged    [via=host?]    (rank actor)
    pst   descriptor reached the NIC [via=mmio|host|engine|chain]
    txr   requester read the payload (DMA done)    (NIC actor {nic}.rma)
    txd   packet injected into the wire            (NIC actor)
    rxs   completer picked the packet up           (dst NIC actor)
    dlv   payload DMA-written at the destination   (dst NIC actor)
    rcd   receiver drained the message [via=poll|notif]  (rank actor n{dst})
    mrx   MPI progress engine drained an envelope  (rank actor n{dst})

plus the app-level brackets ``snd.done`` / ``rcv`` / ``cmp`` /
``rank.begin`` / ``rank.end`` (rank actors), ``req.begin`` / ``req.end``
(the ``driver`` actor), and the triggered-unit lifecycle ``chain.fire`` /
``chain.done`` (``{nic}.trig`` actors).

Blame categories reuse PR 4's six-phase vocabulary —
``wqe-generation`` / ``host-assist`` / ``doorbell-mmio`` / ``wire`` /
``data-dma`` / ``completion-mmio`` / ``completion-polling`` — extended
with ``compute`` and ``app`` for the segments the transport does not own,
and ``blocked-on-credit`` for segments spent waiting on flow-control
(gated credit spins, chains armed on credit counters).
``blocked-on-remote`` is an *edge* classification (a receiver-side event
whose critical predecessor is a remote delivery), reported as wait time
alongside — not inside — the category partition, because the partition
attributes that same time to the remote side's phases.
"""

from __future__ import annotations

#: Every kind an instrumented site may emit (the DAG builder warns on
#: anything else rather than mis-walking silently).
KNOWN_KINDS = frozenset({
    "snd", "crd", "stg", "pst", "txr", "txd", "rxs", "dlv", "rcd", "mrx",
    "rcv", "snd.done", "cmp", "rank.begin", "rank.end", "req.begin",
    "req.end", "chain.fire", "chain.done",
    # Fabric-hop vocabulary (repro.fabrics): one message's multi-hop
    # traversal, chained per-address in emission order.
    "inj",        # injected: source serialization finished  (rank actor)
    "hop.crd",    # a hop's credit gate granted after a stall (link actor)
    "hop",        # store-and-forward relay left a switch     (fab.s{id})
    "eject",      # drained off the fabric at the destination (n{id}.fab)
})

#: Report order of the blame partition (PR 4's six phases first).
CATEGORY_ORDER = ("wqe-generation", "host-assist", "doorbell-mmio",
                  "data-dma", "wire", "completion-mmio",
                  "completion-polling", "blocked-on-credit", "compute",
                  "app")

#: Edge classifications a critical-path segment can carry.
EDGE_KINDS = ("local", "flow", "blocked-on-remote", "blocked-on-credit")


def categorize(pred, ev) -> str:
    """Blame category of the critical-path segment ``pred -> ev``.

    The category keys off the *destination* event: the interval ending at
    ``ev`` is the time the stack spent producing ``ev``.
    """
    kind = ev.kind
    via = ev.attrs.get("via")
    if kind == "crd":
        return "blocked-on-credit" if ev.attrs.get("gated") \
            else "wqe-generation"
    if kind == "stg":
        return "host-assist" if via == "host" else "wqe-generation"
    if kind == "pst":
        if via == "host":
            return "host-assist"
        if via == "chain":
            # Time from staging to a chain-fired post is dominated by the
            # arming counter's wait; when the chain was armed on a credit
            # counter (wait_hint names the credit word) that wait IS the
            # credit wait.
            return ("blocked-on-credit" if ev.attrs.get("wait_hint")
                    else "wqe-generation")
        return "doorbell-mmio"           # mmio and engine batch doorbells
    if kind == "txr":
        return "data-dma"                # descriptor fetch + payload read
    if kind in ("txd", "rxs"):
        return "wire"
    if kind in ("inj", "hop", "eject"):
        return "wire"                    # fabric traversal segments
    if kind == "hop.crd":
        return "blocked-on-credit"       # only emitted after a real stall
    if kind == "dlv":
        return "data-dma"                # completer write to dst memory
    if kind in ("rcd", "mrx"):
        return "completion-mmio" if via == "notif" else "completion-polling"
    if kind == "snd.done":
        return "completion-polling"
    if kind == "cmp":
        return "compute"
    # snd, rcv, rank.begin/end, req.end, chain.* — application / harness.
    return "app"


def edge_kind(pred, ev) -> str:
    """Classify the DAG edge ``pred -> ev`` for the waterfall report."""
    if ev.kind in ("rcd", "mrx") and pred.kind in ("dlv", "eject"):
        return "blocked-on-remote"       # cross-node join: rank waited
    if ev.kind == "crd" and ev.attrs.get("gated"):
        return "blocked-on-credit"
    if ev.kind == "hop.crd":
        return "blocked-on-credit"
    if ev.kind == "pst" and ev.attrs.get("via") == "chain" \
            and ev.attrs.get("wait_hint"):
        return "blocked-on-credit"
    if pred.actor == ev.actor:
        return "local"
    return "flow"


__all__ = ["CATEGORY_ORDER", "EDGE_KINDS", "KNOWN_KINDS", "categorize",
           "edge_kind"]
