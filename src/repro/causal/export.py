"""Critical-path exporters: waterfall text report + annotated Chrome trace.

The waterfall renders one path forward in time, one segment per line, with
blame category and edge classification; the Chrome exporter rides
:func:`repro.obs.export.chrome_trace_events` (which already carries the
per-message flow arrows) and overlays one ``s``/``f`` arrow pair per
critical-path hop under the ``critpath`` category, so Perfetto draws the
exact dependency chain the blame table summed.
"""

from __future__ import annotations

import json
import os
from typing import IO, Dict, List, Union

from ..obs.export import chrome_trace_events, track_tids
from ..obs.tracer import SpanTracer
from .critpath import CriticalPath, RunAnalysis
from .events import CATEGORY_ORDER

_US = 1e6

_EDGE_MARK = {"local": "", "flow": "  ~>",
              "blocked-on-remote": "  <=remote",
              "blocked-on-credit": "  <=credit"}


def render_waterfall(path: CriticalPath, title: str = "") -> str:
    """One request's critical path, forward in time."""
    head = title or f"critical path: request {path.req}"
    lines = [head, "=" * len(head),
             f"{len(path.segments)} hops, total "
             f"{path.total * _US:.3f}us"]
    for seg in path.segments:
        offset = (seg.begin - path.begin) * _US
        hop = f"{seg.pred.kind} -> {seg.ev.kind}"
        addr = f" @{seg.ev.addr}" if seg.ev.addr is not None else ""
        wait = (f" (waited {seg.wait * _US:.3f}us)"
                if seg.wait > 0 else "")
        lines.append(
            f"  t+{offset:10.3f}us  +{seg.duration * _US:9.3f}us  "
            f"{seg.ev.actor:<12} {hop:<22} "
            f"[{seg.category}]{_EDGE_MARK.get(seg.edge, '')}{wait}{addr}")
    lines.append("")
    lines.append(render_blame({c: v for c, v in path.categories().items()},
                              path.total))
    if path.rank_slack or path.rank_time:
        lines.append("")
        lines.append("per-rank view: slack at req.end / time owned on the "
                     "critical path")
        for rank in sorted(set(path.rank_slack) | set(path.rank_time)):
            mark = "  <-- straggler" if rank == path.straggler else ""
            slack = path.rank_slack.get(rank, 0.0)
            owned = path.rank_time.get(rank, 0.0)
            lines.append(f"  rank {rank}: {slack * _US:10.3f}us / "
                         f"{owned * _US:10.3f}us{mark}")
    return "\n".join(lines)


def render_blame(categories: Dict[str, float], total: float,
                 title: str = "blame by category") -> str:
    lines = [title, "-" * len(title)]
    ordered = [c for c in CATEGORY_ORDER if c in categories]
    ordered += [c for c in sorted(categories) if c not in CATEGORY_ORDER]
    for cat in ordered:
        val = categories[cat]
        share = (val / total * 100.0) if total > 0 else 0.0
        lines.append(f"  {cat:<20} {val * _US:12.3f}us  {share:6.2f}%")
    lines.append(f"  {'total':<20} {total * _US:12.3f}us  100.00%")
    return "\n".join(lines)


def render_slack(analysis: RunAnalysis) -> str:
    """Per-rank slack histogram across every request of a run."""
    hists = analysis.slack_histograms()
    if not hists:
        return "(no per-rank brackets recorded)"
    lines = ["per-rank slack across requests (us): min / mean / max, "
             "straggler count"]
    stragglers = list(analysis.stragglers().values())
    for rank in sorted(hists):
        vals = hists[rank]
        crit = stragglers.count(rank)
        lines.append(f"  rank {rank}: {min(vals) * _US:10.3f} / "
                     f"{sum(vals) / len(vals) * _US:10.3f} / "
                     f"{max(vals) * _US:10.3f}   straggler in "
                     f"{crit}/{len(analysis.paths)} requests")
    return "\n".join(lines)


def annotated_trace_events(tracer: SpanTracer,
                           analysis: RunAnalysis,
                           pid: int = 0) -> List[dict]:
    """The run's Chrome trace plus one flow arrow per critical-path hop."""
    events = chrome_trace_events(tracer, pid)
    tids = track_tids(tracer)
    arrows: List[dict] = []
    flow_id = 1 << 20          # clear of the per-message arrow ids
    for path in analysis.paths:
        for seg in path.segments:
            if seg.pred.actor == seg.ev.actor:
                continue       # same-row hops render as adjacency already
            name = f"critpath.req{path.req}"
            arrows.append({"ph": "s", "name": name, "cat": "critpath",
                           "id": flow_id, "ts": seg.begin * _US,
                           "pid": pid, "tid": tids[seg.pred.actor],
                           "args": {"kind": seg.pred.kind,
                                    "category": seg.category}})
            arrows.append({"ph": "f", "bp": "e", "name": name,
                           "cat": "critpath", "id": flow_id,
                           "ts": seg.end * _US, "pid": pid,
                           "tid": tids[seg.ev.actor],
                           "args": {"kind": seg.ev.kind,
                                    "edge": seg.edge}})
            flow_id += 1
    merged = events + arrows
    # Stable sort by timestamp: equal-ts base events keep their carefully
    # chosen B/E order, arrows slot in after them.
    merged.sort(key=lambda ev: ev.get("ts", float("-inf")))
    return merged


def write_annotated_trace(tracer: SpanTracer, analysis: RunAnalysis,
                          out: Union[str, IO[str]], pid: int = 0) -> dict:
    doc = {
        "traceEvents": annotated_trace_events(tracer, analysis, pid),
        "displayTimeUnit": "ns",
        "otherData": {
            "generator": "repro.causal",
            "requests": analysis.requests,
            "blame": {c: v for c, v in analysis.blame().items()},
        },
    }
    if isinstance(out, str):
        parent = os.path.dirname(out)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=1)
    else:
        json.dump(doc, out, indent=1)
    return doc


__all__ = ["annotated_trace_events", "render_blame", "render_slack",
           "render_waterfall", "write_annotated_trace"]
