"""``python -m repro critpath`` — causal critical paths per request.

Scenarios::

    pingpong    2-node request/echo rounds, every control mode
    allreduce   N-node ring all-reduce, every control mode
    mpi         rendezvous-sized all-reduce on the triggered-MPI path only
    workloads   one app-suite workload (--workload) across control modes

Each (workload, mode) cell runs a closed-loop :class:`WorkloadRun` under
a causal-enabled :class:`~repro.obs.SpanTracer`, assembles the
happens-before DAG, extracts every request's critical path, and prints
blame tables plus the per-rank straggler view.  Gates, runnable from CI:

* ``--reconcile`` — every request's path must telescope to the measured
  service time at EXACTLY 0%% relative error, with a category partition
  residual within 1e-9 s.  Exit 2 on failure.
* ``--verify`` — re-run one identical cell with the tracing disarmed
  (:class:`~repro.sim.trace.NullTracer`): the latency/service/wait
  sequences must be bit-identical — causal tracing observes, never
  perturbs.  Exit 2 on divergence.
* ``--expect-straggler R`` — every request in every cell must name rank
  ``R`` the straggler (the forced-skew canary).  Exit 2 otherwise.

``--skew RANK:INSTR`` charges extra compute on one rank (pingpong /
allreduce workloads only); ``--out DIR`` writes one annotated Chrome
trace and one waterfall per cell.
"""

from __future__ import annotations

import argparse
import json
import os
from typing import List, Optional, Tuple

from ..errors import ReproError
from ..obs import SpanTracer
from ..sim import Simulator
from ..workloads.apps import get_workload
from ..workloads.generator import RunResult, WorkloadRun
from ..workloads.transport import MODES
from .critpath import RunAnalysis, analyze_run
from .export import (render_blame, render_slack, render_waterfall,
                     write_annotated_trace)

_US = 1e6

#: scenario -> (workload, nodes, size, modes).  The ``mpi`` scenario's
#: 256-byte messages sit past the 128-byte eager threshold, so its paths
#: traverse the full RTS/CTS/FIN rendezvous chain.
_SCENARIOS = {
    "pingpong": ("pingpong", 2, 64, MODES),
    "allreduce": ("allreduce", 4, 64, MODES),
    "mpi": ("allreduce", 4, 256, ("mpi",)),
    "workloads": (None, 4, 64, MODES),
}


def _parse_skew(spec: str) -> Tuple[int, int]:
    try:
        rank, instr = spec.split(":")
        return int(rank), int(instr)
    except ValueError:
        raise ReproError(f"--skew wants RANK:INSTR, got {spec!r}") from None


def _run_cell(workload, mode: str, nodes: int, size: int, requests: int,
              seed: int, traced: bool,
              ) -> Tuple[RunResult, Optional[SpanTracer]]:
    sim = Simulator(seed=seed)
    tracer = None
    if traced:
        tracer = SpanTracer(sim, categories=("causal", "workload"))
        sim.set_tracer(tracer)
    run = WorkloadRun(workload, mode, nodes=nodes, size=size,
                      requests=requests, loop="closed", seed=seed, sim=sim)
    return run.execute(), tracer


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro critpath",
        description="causal critical-path analysis across the put/get "
                    "stack")
    parser.add_argument("scenario", choices=sorted(_SCENARIOS))
    parser.add_argument("--modes", default=None,
                        help="comma-separated control modes (default: the "
                             "scenario's set)")
    parser.add_argument("--nodes", type=int, default=None)
    parser.add_argument("--size", type=int, default=None)
    parser.add_argument("--requests", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workload", default="trainstep",
                        help="app workload for the 'workloads' scenario")
    parser.add_argument("--skew", default=None, metavar="RANK:INSTR",
                        help="charge extra compute on one rank (pingpong/"
                             "allreduce only)")
    parser.add_argument("--expect-straggler", type=int, default=None,
                        help="fail unless this rank is named straggler in "
                             "every request")
    parser.add_argument("--verify", action="store_true",
                        help="prove the disarmed run is bit-identical")
    parser.add_argument("--reconcile", action="store_true",
                        help="gate every path at exactly 0%% error")
    parser.add_argument("--waterfall", action="store_true",
                        help="print request 0's waterfall per cell")
    parser.add_argument("--out", default=None,
                        help="write annotated traces + waterfalls here")
    parser.add_argument("--json", action="store_true", dest="as_json")
    args = parser.parse_args(argv)

    name, nodes, size, modes = _SCENARIOS[args.scenario]
    if args.scenario == "workloads":
        name = args.workload
    nodes = args.nodes if args.nodes is not None else nodes
    size = args.size if args.size is not None else size
    if args.modes:
        modes = tuple(m.strip() for m in args.modes.split(",") if m.strip())
    knobs = {}
    if args.skew:
        rank, instr = _parse_skew(args.skew)
        knobs = {"skew_rank": rank, "skew_instr": instr}
    workload = get_workload(name, **knobs)

    report: dict = {"scenario": args.scenario, "workload": name,
                    "nodes": nodes, "size": size,
                    "requests": args.requests, "seed": args.seed,
                    "modes": {}}
    failures: List[str] = []
    out_lines: List[str] = []

    for mode in modes:
        result, tracer = _run_cell(workload, mode, nodes, size,
                                   args.requests, args.seed, traced=True)
        analysis: RunAnalysis = analyze_run(tracer)
        recon = analysis.reconcile(result.service_times)
        cell = {
            "verified_results": result.verified,
            "blame_us": {c: v * _US for c, v in analysis.blame().items()},
            "blame_shares": analysis.blame_shares(),
            "reconcile": recon,
            "stragglers": {str(r): s
                           for r, s in analysis.stragglers().items()},
            "slack_us": {str(r): [v * _US for v in vals]
                         for r, vals in
                         analysis.slack_histograms().items()},
            "remote_wait_us": analysis.remote_wait() * _US,
            "hops": [len(p.segments) for p in analysis.paths],
        }

        if args.verify:
            bare, _ = _run_cell(workload, mode, nodes, size,
                                args.requests, args.seed, traced=False)
            identical = (bare.latencies == result.latencies
                         and bare.service_times == result.service_times
                         and bare.waits == result.waits)
            cell["verify_bit_identical"] = identical
            if not identical:
                failures.append(f"{mode}: disarmed run diverged — causal "
                                f"tracing perturbed the simulation")
        if args.reconcile and not recon["ok"]:
            failures.append(
                f"{mode}: reconciliation failed (max error "
                f"{recon['max_error']:.3e}, max residual "
                f"{recon['max_residual']:.3e})")
        if not result.verified:
            failures.append(f"{mode}: workload results failed verification")
        if args.expect_straggler is not None:
            wrong = {r: s for r, s in analysis.stragglers().items()
                     if s != args.expect_straggler}
            if wrong:
                failures.append(
                    f"{mode}: expected rank {args.expect_straggler} as "
                    f"straggler, got {wrong}")

        report["modes"][mode] = cell

        title = (f"{args.scenario}/{name} mode={mode} N={nodes} "
                 f"size={size}B x{args.requests}")
        out_lines.append(title)
        out_lines.append("=" * len(title))
        total = sum(p.total for p in analysis.paths)
        out_lines.append(render_blame(analysis.blame(), total))
        out_lines.append(render_slack(analysis))
        status = "exact (0%)" if recon["ok"] else "FAILED"
        out_lines.append(
            f"reconciliation: {status} over {len(analysis.paths)} "
            f"request(s), {sum(cell['hops'])} hops, partition residual "
            f"<= {recon['max_residual']:.1e}s")
        if args.verify:
            out_lines.append("disarmed replay: "
                             + ("bit-identical"
                                if cell.get("verify_bit_identical")
                                else "DIVERGED"))
        if args.waterfall:
            out_lines.append("")
            out_lines.append(render_waterfall(
                analysis.paths[0],
                title=f"critical path: request 0 ({mode})"))
        out_lines.append("")

        if args.out:
            base = os.path.join(args.out,
                                f"critpath-{args.scenario}-{mode}")
            write_annotated_trace(tracer, analysis, base + ".json")
            os.makedirs(args.out, exist_ok=True)
            with open(base + ".txt", "w", encoding="utf-8") as fh:
                for path in analysis.paths:
                    fh.write(render_waterfall(path) + "\n\n")

    if args.as_json:
        report["failures"] = failures
        print(json.dumps(report, indent=2, default=str))
    else:
        print("\n".join(out_lines).rstrip())
        if failures:
            print()
            for failure in failures:
                print(f"FAIL: {failure}")
    return 2 if failures else 0


__all__ = ["main"]
