"""Exact critical-path extraction + blame attribution + straggler view.

The walk starts at a request's ``req.end`` and repeatedly takes the
critical predecessor until it reaches ``req.begin``.  Because every
segment spans exactly ``[pred.time, ev.time]`` and consecutive segments
share their boundary event, the path **telescopes**: its duration is
``req.end.time - req.begin.time`` analytically, and both endpoints are
stamped at the very ``sim.now`` instants the workload generator records
``dispatch`` and ``completion`` at — so against the measured service
time the headline reconciliation error is exactly ``0.0``, not "small".
The per-category partition is checked separately (``math.fsum`` of the
segment durations vs the total): individual boundary subtractions round,
so the residual is bounded at 1e-9 rather than zero.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..errors import CausalError
from ..obs.tracer import FlowRecord
from .dag import CausalDag
from .events import CATEGORY_ORDER, categorize, edge_kind

#: fsum-vs-total partition tolerance (seconds): float boundary
#: subtraction is inexact; the telescoped headline total is not.
PARTITION_TOLERANCE = 1e-9

_RANK_ACTOR = re.compile(r"^n(\d+)$")


@dataclass(frozen=True)
class Segment:
    """One critical-path hop: the interval that *produced* ``ev``."""

    pred: FlowRecord
    ev: FlowRecord
    category: str
    edge: str
    #: For blocked-on-remote joins: how long the consuming actor had
    #: already been waiting when the remote delivery landed (overlaps the
    #: remote side's phases; reported beside, not inside, the partition).
    wait: float = 0.0

    @property
    def begin(self) -> float:
        return self.pred.time

    @property
    def end(self) -> float:
        return self.ev.time

    @property
    def duration(self) -> float:
        return self.ev.time - self.pred.time


@dataclass
class CriticalPath:
    """One request's exact critical path."""

    req: int
    events: List[FlowRecord]          # forward: req.begin ... req.end
    segments: List[Segment]           # forward, len(events) - 1
    rank_slack: Dict[int, float]      # rank -> req.end - its rank.end
    rank_time: Dict[int, float]       # rank -> critical-path time it owns
    straggler: Optional[int]          # rank owning the most path time

    @property
    def begin(self) -> float:
        return self.events[0].time

    @property
    def end(self) -> float:
        return self.events[-1].time

    @property
    def total(self) -> float:
        """Telescoped path duration — exact by construction."""
        return self.end - self.begin

    def categories(self) -> Dict[str, float]:
        """Per-category partition of the path (fsum per bucket)."""
        buckets: Dict[str, List[float]] = {}
        for seg in self.segments:
            buckets.setdefault(seg.category, []).append(seg.duration)
        return {cat: math.fsum(vals) for cat, vals in buckets.items()}

    def shares(self) -> Dict[str, float]:
        total = self.total
        if total <= 0:
            return {}
        return {cat: val / total for cat, val in self.categories().items()}

    def remote_wait(self) -> float:
        """Total blocked-on-remote wait along the path (overlap view)."""
        return math.fsum(s.wait for s in self.segments
                         if s.edge == "blocked-on-remote")

    def partition_residual(self) -> float:
        return abs(math.fsum(s.duration for s in self.segments)
                   - self.total)

    def reconcile(self, measured: float) -> dict:
        """Gate the path against the harness's measured service time.

        ``error`` is the relative headline error and must be exactly 0.0:
        both endpoints were stamped at the same simulated instants the
        measurement used, and the path total telescopes to their
        difference.  ``residual`` is the fsum partition check.
        """
        error = (abs(self.total - measured) / measured if measured > 0
                 else abs(self.total - measured))
        residual = self.partition_residual()
        return {
            "req": self.req,
            "path": self.total,
            "measured": measured,
            "error": error,
            "residual": residual,
            "hops": len(self.segments),
            "ok": error == 0.0 and residual <= PARTITION_TOLERANCE,
        }


def extract_path(dag: CausalDag, req: int) -> CriticalPath:
    """Walk backward from ``req.end`` to ``req.begin``; raises
    :class:`~repro.errors.CausalError` on a dead end (an uninstrumented
    emission site) or a non-terminating walk."""
    begin, end = dag.bracket(req)
    chain: List[FlowRecord] = [end]
    ev = end
    limit = len(dag.flows) + 1
    while ev.seq != begin.seq:
        pred = dag.predecessor(ev)
        if pred is None:
            raise CausalError(
                f"request {req}: critical path dead-ends at {ev} — an "
                f"emission site is missing its causal predecessor")
        chain.append(pred)
        ev = pred
        if len(chain) > limit:
            raise CausalError(f"request {req}: walk exceeded "
                              f"{limit} hops (cycle?)")
    chain.reverse()
    segments: List[Segment] = []
    for pred, ev in zip(chain, chain[1:]):
        edge = edge_kind(pred, ev)
        wait = 0.0
        if edge == "blocked-on-remote":
            stalled_since = dag.actor_pred(ev)
            if stalled_since is not None:
                wait = max(0.0, pred.time - stalled_since.time)
        segments.append(Segment(pred, ev, categorize(pred, ev), edge,
                                wait))
    rank_slack: Dict[int, float] = {}
    latest_rank: Optional[int] = None
    latest = None
    for rend in dag.rank_ends(req):
        rank = int(rend.actor[1:])
        rank_slack[rank] = end.time - rend.time
        if latest is None or (rend.time, rend.seq) > latest:
            latest = (rend.time, rend.seq)
            latest_rank = rank
    # The straggler is the rank the request spent the most critical-path
    # time ON, not simply the last rank to finish: in a ring collective
    # the last ``rank.end`` is fixed by ring position, while a delayed
    # rank shows up as path time (its compute/staging segments ride the
    # path) no matter where it sits.
    rank_time: Dict[int, List[float]] = {}
    for seg in segments:
        m = _RANK_ACTOR.match(seg.ev.actor)
        if m:
            rank_time.setdefault(int(m.group(1)), []).append(seg.duration)
    owned = {rank: math.fsum(vals) for rank, vals in rank_time.items()}
    if owned:
        straggler = max(sorted(owned), key=lambda r: owned[r])
    else:
        straggler = latest_rank
    return CriticalPath(req=req, events=chain, segments=segments,
                        rank_slack=rank_slack, rank_time=owned,
                        straggler=straggler)


@dataclass
class RunAnalysis:
    """Every request's critical path for one (workload, mode) run."""

    paths: List[CriticalPath] = field(default_factory=list)

    @property
    def requests(self) -> List[int]:
        return [p.req for p in self.paths]

    def blame(self) -> Dict[str, float]:
        """Category totals across all requests, report-ordered."""
        buckets: Dict[str, List[float]] = {}
        for path in self.paths:
            for cat, val in path.categories().items():
                buckets.setdefault(cat, []).append(val)
        totals = {cat: math.fsum(vals) for cat, vals in buckets.items()}
        ordered = {cat: totals[cat] for cat in CATEGORY_ORDER
                   if cat in totals}
        for cat in sorted(totals):
            ordered.setdefault(cat, totals[cat])
        return ordered

    def blame_shares(self) -> Dict[str, float]:
        total = math.fsum(p.total for p in self.paths)
        if total <= 0:
            return {}
        return {cat: val / total for cat, val in self.blame().items()}

    def slack_histograms(self) -> Dict[int, List[float]]:
        """rank -> its slack in every request (0.0 == was the straggler)."""
        out: Dict[int, List[float]] = {}
        for path in self.paths:
            for rank, slack in sorted(path.rank_slack.items()):
                out.setdefault(rank, []).append(slack)
        return out

    def stragglers(self) -> Dict[int, Optional[int]]:
        return {p.req: p.straggler for p in self.paths}

    def remote_wait(self) -> float:
        return math.fsum(p.remote_wait() for p in self.paths)

    def reconcile(self, service_times: Sequence[float]) -> dict:
        """Gate every request's path against its measured service time.
        ``service_times`` is indexed by request id (the generator runs one
        request at a time, so completion order == request order)."""
        per_req = []
        for path in self.paths:
            if path.req >= len(service_times):
                raise CausalError(
                    f"request {path.req} has no measured service time")
            per_req.append(path.reconcile(service_times[path.req]))
        return {
            "requests": per_req,
            "max_error": max((r["error"] for r in per_req), default=0.0),
            "max_residual": max((r["residual"] for r in per_req),
                                default=0.0),
            "ok": all(r["ok"] for r in per_req),
        }


def analyze_run(tracer, requests: Optional[Sequence[int]] = None,
                ) -> RunAnalysis:
    """Assemble the DAG from ``tracer.flows`` and extract every bracketed
    request's critical path (or just ``requests`` if given)."""
    dag = CausalDag(tracer.flows)
    wanted = dag.requests() if requests is None else list(requests)
    if not wanted:
        raise CausalError("no req.begin/req.end brackets in the trace — "
                          "was the run built with a causal-enabled tracer?")
    return RunAnalysis(paths=[extract_path(dag, r) for r in wanted])


__all__ = ["PARTITION_TOLERANCE", "CriticalPath", "RunAnalysis", "Segment",
           "analyze_run", "extract_path"]
