"""``python -m repro workloads`` — open-loop service traffic over the grid.

For every selected (workload, control mode) cell the CLI runs a
closed-loop calibration (pure service time, zero queueing by
construction), then an open-loop run at ``--saturation`` of the measured
service rate with a :class:`~repro.telemetry.TelemetryPlane` armed:
request latencies land in live histograms, SLO monitors judge every
sampling window, and the flight recorder dumps on the first breach.

Proof obligations, runnable from CI:

* **open >= closed** — at ``--saturation`` of at least 0.8 the open-loop
  p99 must be at or above the closed-loop p99 (queueing delay exists and
  the closed loop cannot see it);
* **reconciliation** — the recorder's ``span.workload.request`` histogram
  must agree with the generator's exact latency list on count and sum
  within 1%;
* **zero-cost** — one representative cell re-runs bare (no plane): the
  latency sequence must be bit-identical (telemetry observes, never
  perturbs);
* **replay** — the same cell re-runs with the same seed and must
  reproduce the latency sequence bit-identically;
* ``--force-breach`` arms an unsatisfiable objective so every cell
  breaches in its first window and produces a flight-recorder dump
  artifact under ``--out``.

Exit status: 0 on success, 1 on SLO breach (pipelines gate on it),
2 on a proof-obligation failure.
"""

from __future__ import annotations

import argparse
import json
import os
from typing import List, Optional, Tuple

from ..errors import ReproError
from ..sim import Simulator
from ..telemetry.export import write_flight_record
from ..telemetry.plane import TelemetryPlane
from ..telemetry.slo import Objective
from .apps import WORKLOADS
from .generator import WorkloadRun, reconcile, saturation_sweep
from .transport import MODES

#: Default objectives: generous tails (the grid spans modes whose service
#: times differ 5x) plus a hard zero on wrong results.
_PRESETS = [
    Objective("request tail latency", "span.workload.request", "p99", "<",
              5e-3, unit="s", budget=0.25),
    Objective("no failed requests", "workload.failures", "total", "<=",
              0.0, budget=0.0),
]

_FORCE_BREACH = Objective("forced breach (sim always makes progress)",
                          "sim.events", "total", "<=", 0.0, budget=0.0)


def _build_plane(args, sim: Simulator) -> TelemetryPlane:
    objectives: List[Objective] = []
    if not args.no_presets:
        objectives.extend(_PRESETS)
    for spec in args.slo or ():
        objectives.append(Objective.parse(spec))
    if args.force_breach:
        objectives.append(_FORCE_BREACH)
    return TelemetryPlane(sim, interval=args.interval,
                          objectives=objectives)


def _fault_plan(args):
    if not args.loss:
        return None
    from ..faults.plan import FaultPlan
    return FaultPlan.uniform(loss=args.loss, corrupt=args.loss / 2,
                             seed=args.seed)


def _open_run(args, workload: str, mode: str, rate: float,
              sim: Optional[Simulator] = None) -> WorkloadRun:
    return WorkloadRun(
        workload, mode, nodes=args.nodes, size=args.size,
        requests=args.requests, loop="open", arrival=args.arrival,
        rate=rate, seed=args.seed, fault_plan=_fault_plan(args),
        reliable=bool(args.loss), sim=sim)


def _run_cell(args, workload: str, mode: str) -> dict:
    """One grid cell: closed calibration + instrumented open-loop run."""
    closed = WorkloadRun(
        workload, mode, nodes=args.nodes, size=args.size,
        requests=args.requests, loop="closed", seed=args.seed,
        fault_plan=_fault_plan(args), reliable=bool(args.loss)).execute()
    rate = args.saturation / closed.mean_service
    if args.no_telemetry:
        plane = None
        result = _open_run(args, workload, mode, rate).execute()
        recon = None
    else:
        sim = Simulator(seed=args.seed)
        plane = _build_plane(args, sim)
        run = _open_run(args, workload, mode, rate, sim=sim)
        plane.watch_workloads(run)
        plane.start()
        result = run.execute()
        plane.stop()
        recon = reconcile(result, plane.recorder)
    return {
        "workload": workload, "mode": mode, "rate": rate,
        "closed": closed.summary(), "open": result.summary(),
        "open_ge_closed": result.p99 >= closed.p99,
        "reconcile": recon,
        "slo": plane.verdicts() if plane is not None else [],
        "breached": plane.breached if plane is not None else False,
        "dumps": plane.dumps if plane is not None else [],
    }


def _check_zero_cost(args, workload: str, mode: str) -> Tuple[bool, str]:
    """The instrumented cell against a bare re-run: identical latencies."""
    closed = WorkloadRun(
        workload, mode, nodes=args.nodes, size=args.size,
        requests=args.requests, loop="closed", seed=args.seed,
        fault_plan=_fault_plan(args), reliable=bool(args.loss)).execute()
    rate = args.saturation / closed.mean_service
    sim = Simulator(seed=args.seed)
    plane = _build_plane(args, sim)
    run = _open_run(args, workload, mode, rate, sim=sim)
    plane.watch_workloads(run)
    plane.start()
    instrumented = run.execute()
    plane.stop()
    bare = _open_run(args, workload, mode, rate).execute()
    same = (bare.latencies == instrumented.latencies
            and bare.last_completion == instrumented.last_completion)
    return same, (f"{workload}/{mode}: bare and instrumented latency "
                  f"sequences {'identical' if same else 'DIVERGED'} "
                  f"({len(bare.latencies)} requests, "
                  f"{plane.sampler.ticks} samples taken)")


def _check_replay(args, workload: str, mode: str) -> Tuple[bool, str]:
    closed = WorkloadRun(
        workload, mode, nodes=args.nodes, size=args.size,
        requests=args.requests, loop="closed", seed=args.seed,
        fault_plan=_fault_plan(args), reliable=bool(args.loss)).execute()
    rate = args.saturation / closed.mean_service
    first = _open_run(args, workload, mode, rate).execute()
    second = _open_run(args, workload, mode, rate).execute()
    same = first.latencies == second.latencies
    return same, (f"{workload}/{mode}: same-seed open-loop replay "
                  f"{'bit-identical' if same else 'DIVERGED'} "
                  f"({len(first.latencies)} latencies compared)")


def _fmt_us(seconds: float) -> str:
    return f"{seconds * 1e6:10.2f}us"


def _render_cells(cells: List[dict]) -> str:
    header = ("workload".ljust(11) + "mode".ljust(17) + "loop".ljust(8)
              + "rate/s".rjust(10) + "p50".rjust(12) + "p99".rjust(12)
              + "p999".rjust(12) + "  ok")
    lines = [header, "-" * len(header)]
    for cell in cells:
        for loop in ("closed", "open"):
            row = cell[loop]
            rate = "-" if loop == "closed" else f"{cell['rate']:,.0f}"
            lines.append(
                cell["workload"].ljust(11) + cell["mode"].ljust(17)
                + loop.ljust(8) + rate.rjust(10)
                + _fmt_us(row["p50"]).rjust(12)
                + _fmt_us(row["p99"]).rjust(12)
                + _fmt_us(row["p999"]).rjust(12)
                + ("   OK" if row["verified"] else "   FAIL"))
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro workloads",
        description="Open-loop service traffic: application workloads x "
                    "control modes, tail latency vs SLOs.")
    parser.add_argument("--workload", action="append",
                        choices=sorted(WORKLOADS), metavar="NAME",
                        help=f"restrict to one workload (repeatable; "
                             f"choices: {', '.join(sorted(WORKLOADS))})")
    parser.add_argument("--mode", action="append", choices=MODES,
                        metavar="NAME",
                        help=f"restrict to one control mode (repeatable; "
                             f"choices: {', '.join(MODES)})")
    parser.add_argument("--quick", action="store_true",
                        help="small run for CI")
    parser.add_argument("--nodes", type=int, default=4)
    parser.add_argument("--size", type=int, default=256,
                        help="payload bytes per message (default: 256)")
    parser.add_argument("--requests", type=int, default=None,
                        help="requests per run (default: 32, quick: 10)")
    parser.add_argument("--arrival", default="poisson",
                        choices=("poisson", "bursty"))
    parser.add_argument("--saturation", type=float, default=0.85,
                        help="open-loop offered load as a fraction of the "
                             "closed-loop service rate (default: 0.85)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--loss", type=float, default=0.0,
                        help="per-packet loss probability (arms reliable "
                             "channels and the fault injector)")
    parser.add_argument("--interval", type=float, default=20e-6,
                        help="telemetry sampling cadence (simulated s)")
    parser.add_argument("--slo", action="append", metavar="SPEC",
                        help="extra objective, e.g. "
                             "'p99:span.workload.request<1e-3' (repeatable)")
    parser.add_argument("--no-presets", action="store_true",
                        help="drop the built-in objectives")
    parser.add_argument("--no-telemetry", action="store_true",
                        help="run every cell bare (no plane, no "
                             "reconciliation)")
    parser.add_argument("--force-breach", action="store_true",
                        help="arm an unsatisfiable objective (dump "
                             "artifact smoke test)")
    parser.add_argument("--knee", action="store_true",
                        help="additionally sweep offered load on the first "
                             "cell and report the saturation knee")
    parser.add_argument("--json", action="store_true",
                        help="print the full JSON document instead of "
                             "tables")
    parser.add_argument("--out", default=None, metavar="DIR",
                        help="write flight dumps and slo-report.json "
                             "under DIR")
    args = parser.parse_args(argv)
    args.requests = args.requests or (10 if args.quick else 32)
    workloads = args.workload or sorted(WORKLOADS)
    modes = args.mode or list(MODES)

    cells = []
    verdicts: List[Tuple[str, bool, str]] = []
    try:
        for workload in workloads:
            for mode in modes:
                cells.append(_run_cell(args, workload, mode))
        rep_wl, rep_mode = workloads[0], modes[0]
        if not args.no_telemetry:
            ok, detail = _check_zero_cost(args, rep_wl, rep_mode)
            verdicts.append(("zero-cost when disarmed", ok, detail))
        ok, detail = _check_replay(args, rep_wl, rep_mode)
        verdicts.append(("deterministic replay", ok, detail))
        knee = None
        if args.knee:
            knee = saturation_sweep(
                rep_wl, rep_mode, nodes=args.nodes, size=args.size,
                requests=args.requests, arrival=args.arrival,
                seed=args.seed, fault_plan=_fault_plan(args),
                reliable=bool(args.loss)).as_dict()
    except ReproError as exc:
        print(f"workload run failed: {exc}")
        return 2

    # -- grid-wide proof obligations ---------------------------------------------
    bad_verify = [f"{c['workload']}/{c['mode']}" for c in cells
                  if not (c["closed"]["verified"] and c["open"]["verified"])]
    verdicts.append((
        "all results exact", not bad_verify,
        f"{2 * len(cells)} runs verified rank-by-rank against host-side "
        f"expectations" if not bad_verify
        else f"wrong results in: {', '.join(bad_verify)}"))
    # Under injected loss the service time itself is stochastic (one
    # retransmission storm in the closed calibration can outweigh the
    # open loop's queueing), so the tail-gap verdict is only a theorem on
    # clean links.
    if args.saturation >= 0.8 and not args.loss:
        bad_gap = [f"{c['workload']}/{c['mode']}" for c in cells
                   if not c["open_ge_closed"]]
        verdicts.append((
            "open-loop p99 >= closed-loop p99", not bad_gap,
            f"queueing delay visible in every cell at "
            f"{args.saturation:.0%} saturation" if not bad_gap
            else f"no queueing gap in: {', '.join(bad_gap)}"))
    if not args.no_telemetry:
        bad_recon = [f"{c['workload']}/{c['mode']}" for c in cells
                     if not (c["reconcile"] and c["reconcile"]["ok"])]
        verdicts.append((
            "trace<->histogram reconciliation <= 1%", not bad_recon,
            "recorder histograms match the exact latency lists on count "
            "and sum" if not bad_recon
            else f"mismatch in: {', '.join(bad_recon)}"))

    breached = any(c["breached"] for c in cells)
    all_ok = all(ok for _name, ok, _detail in verdicts)

    doc = {
        "nodes": args.nodes, "size": args.size, "requests": args.requests,
        "arrival": args.arrival, "saturation": args.saturation,
        "seed": args.seed, "loss": args.loss,
        "cells": [{k: v for k, v in c.items() if k != "dumps"}
                  for c in cells],
        "verdicts": [{"name": n, "ok": ok, "detail": d}
                     for n, ok, d in verdicts],
        "breached": breached,
        "ok": all_ok,
    }
    if args.knee:
        doc["knee"] = knee

    if args.json:
        print(json.dumps(doc, indent=1, sort_keys=True))
    else:
        print(_render_cells(cells))
        print()
        for name, ok, detail in verdicts:
            print(f"[{'PASS' if ok else 'FAIL'}] {name}: {detail}")
        if args.knee and knee is not None:
            print()
            print(f"saturation knee ({rep_wl}/{rep_mode}): "
                  f"{knee['knee']:,.0f} req/s "
                  f"(service rate {knee['base_rate']:,.0f} req/s)")
            for p in knee["points"]:
                print(f"  offered {p['offered']:10,.0f}/s -> achieved "
                      f"{p['achieved']:10,.0f}/s (eff {p['efficiency']:.2f})"
                      f"  p99 {p['p99'] * 1e6:9.2f}us")
        if breached:
            print("\nSLO BREACH in at least one cell "
                  "(see --json or --out for verdict details)")

    if args.out:
        os.makedirs(args.out, exist_ok=True)
        count = 0
        for cell in cells:
            for dump in cell["dumps"]:
                write_flight_record(
                    os.path.join(args.out, f"flight-record-{count}.json"),
                    dump)
                count += 1
        with open(os.path.join(args.out, "slo-report.json"), "w",
                  encoding="utf-8") as fh:
            json.dump(doc, fh, indent=1, sort_keys=True)
        if not args.json:
            print(f"\nartifacts written to {args.out}/ "
                  f"({count} flight dump(s))")

    if not all_ok:
        return 2
    return 1 if breached else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
