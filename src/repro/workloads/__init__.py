"""Service-scale workloads: open-loop traffic over the put/get stacks.

The paper benchmarks one operation at a time in a closed loop; this
package asks the service-scale question instead — what do p50/p99/p999
look like when requests arrive on their own clock?  Four application
workloads (data-parallel training step, MoE all-to-all, KV-cache
handover, parameter-server fan-in) are written once in a three-word op
vocabulary and executed under four control modes (hostControlled,
dev2dev-direct, offload engine, triggered MPI), driven by seeded Poisson
or bursty arrival processes.  ``python -m repro workloads`` sweeps the
grid and judges the results against declarative SLOs.
"""

from .apps import WORKLOADS, Workload, get_workload
from .arrivals import (
    ARRIVALS,
    ArrivalProcess,
    BurstyArrivals,
    MAX_BURST,
    PoissonArrivals,
    arrival_process,
)
from .generator import (
    DEFAULT_FRACTIONS,
    KNEE_EFFICIENCY,
    RunResult,
    SaturationPoint,
    SaturationResult,
    WorkloadRun,
    WorkloadStats,
    exact_percentile,
    reconcile,
    saturation_sweep,
)
from .transport import MODES, WorkloadTransport

__all__ = [
    "ARRIVALS",
    "ArrivalProcess",
    "BurstyArrivals",
    "DEFAULT_FRACTIONS",
    "KNEE_EFFICIENCY",
    "MAX_BURST",
    "MODES",
    "PoissonArrivals",
    "RunResult",
    "SaturationPoint",
    "SaturationResult",
    "WORKLOADS",
    "Workload",
    "WorkloadRun",
    "WorkloadStats",
    "WorkloadTransport",
    "arrival_process",
    "exact_percentile",
    "get_workload",
    "reconcile",
    "saturation_sweep",
]
