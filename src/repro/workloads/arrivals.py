"""Seeded arrival processes for the open-loop traffic generator.

An arrival process is a deterministic stream of inter-arrival gaps drawn
from its OWN ``random.Random(seed)`` — never from ``sim.rng`` — so the
offered traffic replays bit-identically whatever the model underneath does
(retries, faults, telemetry ticks all consume the simulator's stream, not
this one).  Two processes built with the same parameters produce the same
gaps forever; that is the replay property the hypothesis suite pins.

Both processes converge to the configured mean ``rate`` (requests per
simulated second):

* :class:`PoissonArrivals` — memoryless exponential gaps, the classic
  open-system model.
* :class:`BurstyArrivals` — an on/off process with heavy-tailed burst
  lengths: bursts of ``n ~ Pareto(alpha)`` requests arrive at
  ``burst_factor x rate``, separated by idle gaps sized so each burst of
  ``n`` requests still takes ``n/rate`` expected seconds end to end.  The
  long-run mean rate is therefore exactly ``rate``, but arrivals clump —
  the shape that exposes queueing where Poisson smooths it out.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Type

from ..errors import BenchmarkError

#: Heavy-tail burst lengths are capped so one astronomically unlucky draw
#: cannot stall a bounded run (Pareto(1.1) has infinite variance).
MAX_BURST = 4096


class ArrivalProcess:
    """Base class: a seeded stream of positive inter-arrival gaps."""

    kind = "abstract"

    def __init__(self, rate: float, seed: int = 0) -> None:
        if rate <= 0:
            raise BenchmarkError(f"arrival rate must be > 0, got {rate!r}")
        self.rate = rate
        self.seed = seed
        self._rng = self._fresh_rng()

    def _fresh_rng(self) -> random.Random:
        # String seeding is hashed with sha512 (stable across processes and
        # machines, unlike tuple hashing under PYTHONHASHSEED) — required
        # for bench baselines recorded on one host to check on another.
        return random.Random(f"{self.kind}:{self.seed}")

    def reset(self) -> None:
        """Rewind to the first gap (same stream all over again)."""
        self._rng = self._fresh_rng()

    def next_gap(self) -> float:
        raise NotImplementedError

    def gaps(self, n: int) -> List[float]:
        """The next ``n`` gaps (advances the stream)."""
        return [self.next_gap() for _ in range(n)]

    def arrival_times(self, n: int) -> Iterator[float]:
        """Cumulative arrival instants for ``n`` requests from t=0."""
        t = 0.0
        for _ in range(n):
            t += self.next_gap()
            yield t

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<{type(self).__name__} rate={self.rate:g}/s "
                f"seed={self.seed}>")


class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals: exponential gaps with mean ``1/rate``."""

    kind = "poisson"

    def next_gap(self) -> float:
        return self._rng.expovariate(self.rate)


class BurstyArrivals(ArrivalProcess):
    """On/off arrivals with heavy-tailed (Pareto) burst lengths.

    Each burst holds ``n = min(int(pareto(alpha)), MAX_BURST)`` requests
    (at least 1).  The burst opens with one exponential OFF gap of mean
    ``n/rate - (n-1)/(burst_factor*rate)`` and then delivers its remaining
    ``n-1`` requests at ``burst_factor x rate`` — so conditioned on any
    ``n`` the expected time per request is exactly ``1/rate``, and the
    long-run mean rate converges to ``rate`` while short windows see
    ``burst_factor``-times the load.
    """

    kind = "bursty"

    def __init__(self, rate: float, seed: int = 0,
                 burst_factor: float = 8.0, alpha: float = 1.5) -> None:
        if burst_factor <= 1.0:
            raise BenchmarkError(
                f"burst_factor must be > 1 (got {burst_factor!r}); "
                f"use PoissonArrivals for smooth traffic")
        if alpha <= 1.0:
            raise BenchmarkError(
                f"alpha must be > 1 for a finite mean burst length, "
                f"got {alpha!r}")
        super().__init__(rate, seed)
        self.burst_factor = burst_factor
        self.alpha = alpha
        self._burst_remaining = 0

    def reset(self) -> None:
        super().reset()
        self._burst_remaining = 0

    def next_gap(self) -> float:
        if self._burst_remaining > 0:
            self._burst_remaining -= 1
            return self._rng.expovariate(self.burst_factor * self.rate)
        n = min(int(self._rng.paretovariate(self.alpha)), MAX_BURST)
        n = max(n, 1)
        self._burst_remaining = n - 1
        off_mean = n / self.rate - (n - 1) / (self.burst_factor * self.rate)
        return self._rng.expovariate(1.0 / off_mean)


#: Process kinds by CLI/config name.
ARRIVALS: Dict[str, Type[ArrivalProcess]] = {
    PoissonArrivals.kind: PoissonArrivals,
    BurstyArrivals.kind: BurstyArrivals,
}


def arrival_process(kind: str, rate: float, seed: int = 0,
                    **kwargs) -> ArrivalProcess:
    """Build the named arrival process (``poisson`` or ``bursty``)."""
    cls = ARRIVALS.get(kind)
    if cls is None:
        raise BenchmarkError(f"unknown arrival process {kind!r} "
                             f"(choose from: {', '.join(sorted(ARRIVALS))})")
    return cls(rate, seed=seed, **kwargs)
