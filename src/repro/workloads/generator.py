"""Open-loop traffic generation: the service-time view of put/get APIs.

The paper's benchmarks (and PR 2–7's harnesses) are *closed loops*: each
iteration starts when the previous one finishes, so measured latency is
pure service time and queueing is invisible by construction.  A service
keeps no such discipline — requests arrive on their own clock.  This
module drives workload requests from a seeded
:class:`~repro.workloads.arrivals.ArrivalProcess` through
``Simulator.call_later``, issuing on the arrival clock *regardless of
completions*, so queueing delay becomes part of every recorded latency
and the tail (p99/p999) blows up as offered load approaches the service
rate — the behavior closed loops cannot exhibit.

One :class:`WorkloadRun` is single-shot and fully deterministic: the
arrival stream replays bit-identically from its own seed, the model from
the simulator's.  ``loop="closed"`` runs the same machinery with each
request arriving the instant its predecessor completes — the zero-queue
reference the open-loop numbers are judged against, and the calibration
source for :func:`saturation_sweep`'s offered-load grid.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from ..cluster import build_extoll_cluster
from ..errors import BenchmarkError
from ..faults.injector import FaultInjector
from ..sim import Simulator
from .apps import Workload, get_workload
from .arrivals import arrival_process
from .transport import WorkloadTransport

#: Offered-load grid of :func:`saturation_sweep`, as fractions of the
#: closed-loop service rate.  1.2 drives past saturation on purpose.
DEFAULT_FRACTIONS = (0.2, 0.5, 0.8, 0.9, 1.0, 1.2)

#: A point "keeps up" while achieved throughput is >= 95% of offered.
KNEE_EFFICIENCY = 0.95


@dataclass
class WorkloadStats:
    """Live request accounting, in the uniform ``snapshot()``/``diff()``
    shape the telemetry sampler polls (counters accumulate; the two
    gauges report instantaneous levels)."""

    issued: int = 0         # requests arrived (issued to the queue)
    completed: int = 0      # requests fully finished on every rank
    verified: int = 0       # ... with every rank's result exact
    failures: int = 0       # ... with at least one wrong result
    queue_depth: int = 0    # GAUGE: arrived but not yet dispatched
    inflight: int = 0       # GAUGE: dispatched but not yet completed

    GAUGES = ("queue_depth", "inflight")

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)

    def snapshot(self) -> Dict[str, int]:
        return self.as_dict()

    def diff(self, earlier: Dict[str, int]) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for name, value in self.as_dict().items():
            if name in self.GAUGES:
                out[name] = value
            else:
                out[name] = value - earlier.get(name, 0)
        return out


def exact_percentile(values: List[float], q: float) -> float:
    """The ``q``-th percentile (0..100) of the EXACT sample set — the
    ground truth the recorder's power-of-two histograms approximate."""
    if not 0 <= q <= 100:
        raise BenchmarkError(f"percentile must be in 0..100, got {q!r}")
    if not values:
        return 0.0
    ordered = sorted(values)
    idx = max(0, math.ceil(q / 100.0 * len(ordered)) - 1)
    return ordered[idx]


@dataclass(frozen=True)
class RunResult:
    """One run's complete measurement record."""

    workload: str
    mode: str
    loop: str                   # "open" | "closed"
    arrival: str                # arrival-process kind ("closed" loop: "-")
    rate: float                 # offered req/s (closed loop: 0.0)
    nodes: int
    size: int
    requests: int
    seed: int
    latencies: Tuple[float, ...]      # completion - arrival (sojourn)
    service_times: Tuple[float, ...]  # completion - dispatch
    waits: Tuple[float, ...]          # dispatch - arrival (queueing)
    first_arrival: float
    last_arrival: float
    first_completion: float
    last_completion: float
    verified: bool
    stats: WorkloadStats

    @property
    def elapsed(self) -> float:
        return self.last_completion - self.first_arrival

    @property
    def offered_measured(self) -> float:
        """The arrival rate actually realized (n-1 inter-arrival
        intervals) — the fair yardstick for achieved throughput, since a
        finite seeded sample never hits the configured mean exactly."""
        span = self.last_arrival - self.first_arrival
        if self.requests < 2 or span <= 0:
            return self.rate
        return (self.requests - 1) / span

    @property
    def achieved_rate(self) -> float:
        """Completion throughput over the matching n-1 inter-completion
        intervals.  While the system keeps up this tracks
        :attr:`offered_measured`; past saturation it pins at the service
        rate while arrivals race ahead."""
        span = self.last_completion - self.first_completion
        if self.requests < 2 or span <= 0:
            return self.requests / self.elapsed if self.elapsed > 0 else 0.0
        return (self.requests - 1) / span

    @property
    def mean_latency(self) -> float:
        return sum(self.latencies) / len(self.latencies)

    @property
    def mean_service(self) -> float:
        return sum(self.service_times) / len(self.service_times)

    @property
    def mean_wait(self) -> float:
        return sum(self.waits) / len(self.waits)

    def percentile(self, q: float) -> float:
        return exact_percentile(list(self.latencies), q)

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    @property
    def p999(self) -> float:
        return self.percentile(99.9)

    def summary(self) -> dict:
        """JSON-safe digest (times in seconds)."""
        return {
            "workload": self.workload, "mode": self.mode, "loop": self.loop,
            "arrival": self.arrival, "rate": self.rate, "nodes": self.nodes,
            "size": self.size, "requests": self.requests, "seed": self.seed,
            "p50": self.p50, "p99": self.p99, "p999": self.p999,
            "mean_latency": self.mean_latency,
            "mean_service": self.mean_service,
            "mean_wait": self.mean_wait,
            "offered_measured": self.offered_measured,
            "achieved_rate": self.achieved_rate,
            "elapsed": self.elapsed,
            "verified": self.verified,
            "stats": self.stats.snapshot(),
        }


class WorkloadRun:
    """One single-shot (workload, mode, loop discipline) measurement.

    Pass ``sim`` to wire a telemetry plane around the run: build the
    simulator, construct the :class:`~repro.telemetry.TelemetryPlane` on
    it, then hand it here and call ``plane.watch_workloads(run)`` before
    :meth:`execute`.  Without a tracer the run records only the exact
    in-memory latency lists — no spans, no histograms, no overhead.
    """

    def __init__(self, workload: Union[str, Workload], mode: str,
                 nodes: int = 4, size: int = 256, requests: int = 32,
                 loop: str = "open", arrival: str = "poisson",
                 rate: float = 0.0, seed: int = 0,
                 burst_factor: float = 8.0, alpha: float = 1.5,
                 fault_plan=None, reliable: bool = False,
                 reliability_config=None, slots: int = 16,
                 sim: Optional[Simulator] = None) -> None:
        if isinstance(workload, str):
            workload = get_workload(workload)
        if loop not in ("open", "closed"):
            raise BenchmarkError(
                f"unknown loop discipline {loop!r} (choose from: open, "
                f"closed)")
        if requests < 1:
            raise BenchmarkError(f"need requests >= 1, got {requests}")
        if fault_plan is not None and not reliable:
            raise BenchmarkError(
                "fault injection drops raw puts on the floor; build the "
                "run with reliable=True so the retransmission engines "
                "recover them")
        self.workload = workload
        self.mode = mode
        self.loop = loop
        self.nodes = nodes
        self.size = size
        self.requests = requests
        self.seed = seed
        self.sim = sim if sim is not None else Simulator(seed=seed)
        self.cluster = build_extoll_cluster(sim=self.sim, num_nodes=nodes)
        if fault_plan is not None:
            self.injector = FaultInjector(self.sim, fault_plan)
            self.injector.attach(self.cluster.net)
        else:
            self.injector = None
        if loop == "open":
            if rate <= 0:
                raise BenchmarkError(
                    "an open-loop run needs an offered rate > 0 req/s")
            kwargs = (dict(burst_factor=burst_factor, alpha=alpha)
                      if arrival == "bursty" else {})
            self.arrivals = arrival_process(arrival, rate, seed, **kwargs)
            self.arrival_kind = arrival
            self.rate = rate
        else:
            self.arrivals = None
            self.arrival_kind = "-"
            self.rate = 0.0
        self.transport = WorkloadTransport(
            self.cluster, workload, mode, size, slots=slots,
            reliable=reliable, reliability_config=reliability_config)
        self.stats = WorkloadStats()
        self._executed = False

    def execute(self, limit: float = 600.0) -> RunResult:
        """Run to completion of all requests; returns the result record."""
        if self._executed:
            raise BenchmarkError(
                "a WorkloadRun is single-shot (channel sequence state and "
                "the arrival stream advance); build a fresh run")
        self._executed = True
        sim, stats = self.sim, self.stats
        trc = sim.tracer
        queue: deque = deque()
        arrival_at: Dict[int, float] = {}
        dispatch_at: Dict[int, float] = {}
        spans: Dict[int, object] = {}
        latencies: List[float] = []
        services: List[float] = []
        waits: List[float] = []
        busy = [False]
        all_ok = [True]
        first_arrival = [float("inf")]
        last_arrival = [0.0]
        first_completion = [float("inf")]
        last_completion = [0.0]
        done = sim.event(name="workload:done")

        def arrive(req: int) -> None:
            now = sim.now
            first_arrival[0] = min(first_arrival[0], now)
            last_arrival[0] = max(last_arrival[0], now)
            arrival_at[req] = now
            stats.issued += 1
            if trc.enabled:
                # One track per request: queued requests' spans overlap,
                # which a shared track's span stack would misparent.
                spans[req] = trc.begin(
                    "workload", "request", track=f"workload.req{req}",
                    req=req, workload=self.workload.name, mode=self.mode)
            queue.append(req)
            stats.queue_depth = len(queue)
            dispatch()

        def dispatch() -> None:
            if busy[0] or not queue:
                return
            req = queue.popleft()
            stats.queue_depth = len(queue)
            busy[0] = True
            stats.inflight = 1
            dispatch_at[req] = sim.now
            if trc.wants("causal"):
                # Stamped at the same instant service_times starts counting,
                # so the critical path reconciles against it exactly.
                trc.flow_event("req.begin", "driver", req=req)
            self.transport.start_request(
                req, lambda results, r=req: complete(r, results))

        def complete(req: int, results: Dict[int, object]) -> None:
            now = sim.now
            if trc.wants("causal"):
                trc.flow_event("req.end", "driver", req=req)
            first_completion[0] = min(first_completion[0], now)
            last_completion[0] = now
            busy[0] = False
            stats.inflight = 0
            stats.completed += 1
            good = all(
                self.workload.verify(req, r, self.nodes, self.size,
                                     results.get(r))
                for r in range(self.nodes))
            if good:
                stats.verified += 1
            else:
                stats.failures += 1
                all_ok[0] = False
            span = spans.pop(req, None)
            if span is not None:
                span.end(verified=good)
            latencies.append(now - arrival_at[req])
            services.append(now - dispatch_at[req])
            waits.append(dispatch_at[req] - arrival_at[req])
            if stats.completed == self.requests:
                done.succeed()
                return
            if self.loop == "closed":
                arrive(stats.issued)
            dispatch()

        if self.loop == "open":
            # The open loop: a self-re-arming call_later chain fires every
            # arrival on the arrival process's clock, completions be damned.
            issued = [0]

            def fire() -> None:
                arrive(issued[0])
                issued[0] += 1
                if issued[0] < self.requests:
                    sim.call_later(self.arrivals.next_gap(), fire,
                                   name="workload:arrival")

            sim.call_later(self.arrivals.next_gap(), fire,
                           name="workload:arrival")
        else:
            arrive(0)

        sim.run_until_complete(done, limit=sim.now + limit)
        self.transport.check_errors()
        return RunResult(
            workload=self.workload.name, mode=self.mode, loop=self.loop,
            arrival=self.arrival_kind, rate=self.rate, nodes=self.nodes,
            size=self.size, requests=self.requests, seed=self.seed,
            latencies=tuple(latencies), service_times=tuple(services),
            waits=tuple(waits), first_arrival=first_arrival[0],
            last_arrival=last_arrival[0],
            first_completion=first_completion[0],
            last_completion=last_completion[0], verified=all_ok[0],
            stats=stats)


def reconcile(result: RunResult, recorder) -> dict:
    """Cross-check the recorder's ``span.workload.request`` histogram
    against the run's exact latency list (count and sum — the recorder's
    power-of-two percentiles are octave-accurate by design, so they are
    not the comparable quantity)."""
    hist = recorder.metrics.histogram("span.workload.request")
    exact_count = len(result.latencies)
    exact_sum = sum(result.latencies)
    count_err = (abs(hist.count - exact_count) / exact_count
                 if exact_count else 0.0)
    sum_err = abs(hist.total - exact_sum) / exact_sum if exact_sum else 0.0
    return {
        "span_count": hist.count, "exact_count": exact_count,
        "span_sum": hist.total, "exact_sum": exact_sum,
        "count_err": count_err, "sum_err": sum_err,
        "ok": count_err <= 0.01 and sum_err <= 0.01,
    }


@dataclass(frozen=True)
class SaturationPoint:
    """One offered-load point of a saturation sweep."""

    offered: float           # nominal configured rate (req/s)
    offered_measured: float  # arrival rate the seeded sample realized
    achieved: float          # completion rate actually sustained
    p50: float
    p99: float
    p999: float

    @property
    def efficiency(self) -> float:
        """Achieved over *measured* offered: judging against the realized
        arrival stream keeps finite-sample noise out of the knee."""
        if not self.offered_measured:
            return 0.0
        return self.achieved / self.offered_measured


@dataclass(frozen=True)
class SaturationResult:
    """Offered-load vs achieved-throughput curve plus its knee."""

    workload: str
    mode: str
    nodes: int
    size: int
    base_rate: float            # 1 / closed-loop mean service time
    closed: RunResult
    points: Tuple[SaturationPoint, ...]
    knee: float                 # highest offered rate that kept up

    def as_dict(self) -> dict:
        return {
            "workload": self.workload, "mode": self.mode,
            "nodes": self.nodes, "size": self.size,
            "base_rate": self.base_rate, "knee": self.knee,
            "closed_p99": self.closed.p99,
            "points": [{"offered": p.offered,
                        "offered_measured": p.offered_measured,
                        "achieved": p.achieved,
                        "efficiency": p.efficiency, "p50": p.p50,
                        "p99": p.p99, "p999": p.p999}
                       for p in self.points],
        }


def saturation_sweep(workload: Union[str, Workload], mode: str,
                     nodes: int = 4, size: int = 256, requests: int = 32,
                     arrival: str = "poisson", seed: int = 0,
                     fractions: Tuple[float, ...] = DEFAULT_FRACTIONS,
                     **run_kwargs) -> SaturationResult:
    """Calibrate the service rate with one closed-loop run, then sweep
    open-loop offered load across ``fractions`` of it.  Each point gets a
    fresh simulator/cluster, so points are independent and the whole sweep
    replays deterministically from ``seed``."""
    closed = WorkloadRun(workload, mode, nodes=nodes, size=size,
                         requests=requests, loop="closed", seed=seed,
                         **run_kwargs).execute()
    base_rate = 1.0 / closed.mean_service
    points = []
    knee = 0.0
    for fraction in fractions:
        rate = fraction * base_rate
        result = WorkloadRun(workload, mode, nodes=nodes, size=size,
                             requests=requests, loop="open",
                             arrival=arrival, rate=rate, seed=seed,
                             **run_kwargs).execute()
        point = SaturationPoint(offered=rate,
                                offered_measured=result.offered_measured,
                                achieved=result.achieved_rate,
                                p50=result.p50, p99=result.p99,
                                p999=result.p999)
        points.append(point)
        if point.efficiency >= KNEE_EFFICIENCY:
            knee = max(knee, rate)
    return SaturationResult(
        workload=closed.workload, mode=mode, nodes=nodes, size=size,
        base_rate=base_rate, closed=closed, points=tuple(points),
        knee=knee)


__all__ = [
    "DEFAULT_FRACTIONS",
    "KNEE_EFFICIENCY",
    "RunResult",
    "SaturationPoint",
    "SaturationResult",
    "WorkloadRun",
    "WorkloadStats",
    "exact_percentile",
    "reconcile",
    "saturation_sweep",
]
