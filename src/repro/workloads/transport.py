"""Control-mode transports: run one op script under each put/get variant.

A :class:`WorkloadTransport` wires a cluster for one workload's
connectivity once, then executes requests on demand.  Four control modes
interpret the same script:

* ``hostControlled``   — host threads drive the NIC (§III-B librma API),
* ``dev2dev-direct``   — device threads post notified puts and poll the
  notification queues in host memory (§III-C),
* ``engine``           — device threads stage msglib sends and post them
  through the offload engine's batched doorbell (PR 5's warp-parallel
  descriptor path over PR 1's slot rings),
* ``mpi``              — the triggered-MPI layer (PR 7): tagged
  isend/irecv over counter-fired descriptor chains, the CPU-free path.

The first three ride PR 2's :class:`~repro.collectives.comm.Communicator`
(the engine mode reuses its ``pollOnGPU`` channel wiring and replaces only
the posting path).  Requests are launched *asynchronously* — completion
arrives via callback — which is what lets the open-loop generator keep
issuing on the arrival clock instead of the completion clock.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..cluster import Cluster
from ..collectives.comm import CollectiveMode, Communicator
from ..core.msglib import gpu_finish_send, gpu_stage_send
from ..engine import DEFAULT_LANES, EngineStats, engine_post_batch
from ..errors import BenchmarkError
from ..mpi.collectives import _pump
from ..mpi.comm import MpiCommunicator, MpiConfig
from ..mpi.envelope import ENVELOPE_BYTES
from ..mpi.request import MpiRequest
from .apps import Workload

#: Control modes the workloads sweep, in report order.
MODES = ("hostControlled", "dev2dev-direct", "engine", "mpi")

#: Channel-communicator mode behind each non-MPI workload mode.  The
#: engine transport uses the pollOnGPU wiring (header spinning, no
#: notifications) and swaps only how the put descriptor reaches the NIC.
_CHANNEL_MODES = {
    "hostControlled": CollectiveMode.HOST_CONTROLLED,
    "dev2dev-direct": CollectiveMode.DIRECT,
    "engine": CollectiveMode.POLL_ON_GPU,
}

#: MPI user tags live below the collective band (1 << 15); one tag per
#: in-flight request keeps concurrent rounds' envelopes apart.
_TAG_SPAN = 1 << 12


def _round8(n: int) -> int:
    return (n + 7) // 8 * 8


class WorkloadTransport:
    """One (cluster, workload, control mode) execution engine."""

    def __init__(self, cluster: Cluster, workload: Workload, mode: str,
                 size: int, slots: int = 16, reliable: bool = False,
                 reliability_config=None,
                 lanes: int = DEFAULT_LANES) -> None:
        if mode not in MODES:
            raise BenchmarkError(f"unknown workload mode {mode!r} "
                                 f"(choose from: {', '.join(MODES)})")
        if size < 8 or size % 8:
            raise BenchmarkError(
                f"workload message size must be a positive multiple of 8, "
                f"got {size}")
        if len(cluster) < workload.min_nodes:
            raise BenchmarkError(
                f"workload {workload.name!r} needs at least "
                f"{workload.min_nodes} nodes, cluster has {len(cluster)}")
        self.cluster = cluster
        self.sim = cluster.sim
        self.workload = workload
        self.mode = mode
        self.size = size
        self.nodes = len(cluster)
        self.lanes = lanes
        self.engine_stats = EngineStats()   # populated by the engine mode
        self._requests_launched = 0
        if mode == "mpi":
            mcfg = MpiConfig(connectivity=workload.connectivity,
                             slots=slots)
            if reliable and size > mcfg.eager_threshold:
                # Rendezvous payloads travel as ONE raw put outside the
                # slot rings, so the channel retransmission engines never
                # see them — under injected loss they would vanish.  Widen
                # the eager threshold so every workload message rides the
                # reliable rings.
                mcfg = MpiConfig(
                    connectivity=workload.connectivity, slots=slots,
                    eager_threshold=size,
                    slot_size=_round8(size + ENVELOPE_BYTES) + 8)
            self.comm: Optional[Communicator] = None
            self.mpi: Optional[MpiCommunicator] = MpiCommunicator(
                cluster, mcfg,
                reliable=reliable, reliability_config=reliability_config)
        else:
            self.mpi = None
            self.comm = Communicator(
                cluster, _CHANNEL_MODES[mode],
                slot_size=max(64, _round8(size) + 8), slots=slots,
                reliable=reliable, reliability_config=reliability_config,
                connectivity=workload.connectivity)

    # -- async request execution --------------------------------------------------

    def start_request(self, req: int,
                      on_done: Callable[[Dict[int, object]], None]) -> None:
        """Launch request ``req`` on every rank; ``on_done(results)`` fires
        at the simulated instant the LAST rank finishes."""
        self._requests_launched += 1
        results: Dict[int, object] = {}
        if self.mpi is not None:
            self._start_mpi(req, results, on_done)
        else:
            self._start_channels(req, results, on_done)

    def check_errors(self) -> None:
        """Surface sticky async/reliability errors after a run."""
        if self.mpi is not None:
            self.mpi.check_async_errors()
        else:
            self.comm.check_reliability_errors()

    # -- channel modes (hostControlled / direct / engine) -------------------------

    def _start_channels(self, req: int, results: Dict[int, object],
                        on_done: Callable) -> None:
        engine = self.mode == "engine"

        def body(ctx, rc):
            trc = ctx.sim.tracer
            causal = trc.wants("causal")
            if causal:
                trc.flow_event("rank.begin", f"n{rc.rank}", req=req)
            gen = self.workload.script(req, rc.rank, self.nodes, self.size)
            results[rc.rank] = yield from self._interpret(ctx, rc, gen,
                                                          engine)
            if causal:
                trc.flow_event("rank.end", f"n{rc.rank}", req=req)

        handles = self.comm.launch(body)
        remaining = [len(handles)]

        def one_done(_ev) -> None:
            remaining[0] -= 1
            if remaining[0] == 0:
                on_done(results)

        for handle in handles:
            handle.add_callback(one_done)

    def _interpret(self, ctx, rc, gen, engine: bool):
        """Drive one rank's op script over RankComm primitives."""
        value = None
        while True:
            try:
                op = gen.send(value)
            except StopIteration as stop:
                return stop.value
            kind = op[0]
            if kind == "send":
                if engine:
                    yield from self._engine_send(ctx, rc, op[1], op[2])
                else:
                    yield from rc.send(ctx, op[1], op[2])
                value = None
            elif kind == "recv":
                value = yield from rc.recv(ctx, op[1])
            elif kind == "compute":
                yield from rc.compute(ctx, op[1])
                trc = ctx.sim.tracer
                if trc.wants("causal"):
                    trc.flow_event("cmp", f"n{rc.rank}", instr=op[1])
                value = None
            else:
                raise BenchmarkError(f"unknown workload op {kind!r}")

    def _engine_send(self, ctx, rc, peer: int, data: bytes):
        """msglib send with the offload engine posting the put: stage the
        slot, then one warp-parallel descriptor batch + count doorbell."""
        end = rc.send_end(peer)
        ncfg = rc.node.nic.config
        wr = yield from gpu_stage_send(ctx, end, data)
        yield from engine_post_batch(ctx, end.page_addr,
                                     ncfg.batch_region_offset,
                                     ncfg.batch_doorbell_offset, [wr],
                                     self.lanes)
        trc = ctx.sim.tracer
        if trc.wants("causal"):
            trc.flow_event("pst", f"n{end.src_node_id}",
                           addr=(wr.dst_node, wr.dst_nla), via="engine")
        gpu_finish_send(end)
        stats = self.engine_stats
        stats.messages += 1
        stats.wrs += 1
        stats.doorbells += 1
        stats.batches += 1

    # -- triggered-MPI mode -------------------------------------------------------

    def _start_mpi(self, req: int, results: Dict[int, object],
                   on_done: Callable) -> None:
        remaining = [self.mpi.size]
        tag = req % _TAG_SPAN
        trc = self.sim.tracer
        causal = trc.wants("causal")

        def one_done(rank: int, mreq: MpiRequest) -> None:
            if causal:
                trc.flow_event("rank.end", f"n{rank}", req=req)
            results[rank] = mreq.data
            remaining[0] -= 1
            if remaining[0] == 0:
                on_done(results)

        for rank in self.mpi.ranks:
            if causal:
                trc.flow_event("rank.begin", f"n{rank.rank}", req=req)
            mreq = MpiRequest(self.sim, "workload", rank.rank)
            mreq.done.add_callback(
                lambda _ev, r=rank.rank, q=mreq: one_done(r, q))
            gen = self.workload.script(req, rank.rank, self.nodes, self.size)
            _pump(self.mpi, self._mpi_adapter(rank, gen, tag), mreq)

    def _mpi_adapter(self, rank, gen, tag: int):
        """Translate op words into the MPI layer's pump vocabulary
        (MpiRequest yields and float compute charges).

        Sends are posted without waiting and drained at script end —
        rendezvous sends only complete once the peer's matching receive
        produces the CTS, so awaiting them inline would deadlock symmetric
        exchange patterns (the same discipline as the MPI collectives).
        """
        per_instr = rank.node.gpu.config.instruction_time
        trc = self.sim.tracer
        sends: List[MpiRequest] = []
        value = None
        while True:
            try:
                op = gen.send(value)
            except StopIteration as stop:
                result = stop.value
                break
            kind = op[0]
            if kind == "send":
                sends.append(rank.isend(op[1], op[2], tag=tag))
                value = None
            elif kind == "recv":
                value = yield rank.irecv(source=op[1], tag=tag)
            elif kind == "compute":
                yield op[1] * per_instr
                if trc.wants("causal"):
                    trc.flow_event("cmp", f"n{rank.rank}", instr=op[1])
                value = None
            else:
                raise BenchmarkError(f"unknown workload op {op[0]!r}")
        for sreq in sends:
            yield sreq
        return result


__all__ = ["MODES", "WorkloadTransport"]
