"""The application workload suite: ML communication patterns as requests.

Each workload describes ONE service request as a set of per-rank *op
scripts* — plain generators over a three-word vocabulary:

* ``("send", peer, data)`` — hand ``data`` to ``peer`` (completes per the
  control mode's local-completion semantics),
* ``("recv", peer)`` — block for the next message from ``peer``; the
  payload comes back as the yield value,
* ``("compute", instructions)`` — charge local arithmetic.

The scripts never touch a channel, a work request, or an MPI request:
:mod:`repro.workloads.transport` interprets the same script under every
control mode (hostControlled / dev2dev-direct / engine / triggered-MPI),
which is what makes the four-mode sweep a single implementation.  All
payloads are deterministic functions of ``(request, src rank, peer)``, so
every mode's result is verified exactly and replays bit-identically.

The four patterns are the ones the *GPU-centric Communication Schemes*
survey (arXiv:2503.24230) names as the service-scale stressors:

* ``trainstep`` — data-parallel training step: exposed (non-overlapped)
  gradient compute followed by a ring all-reduce, PR 2's exact schedule.
* ``moe``       — mixture-of-experts all-to-all: token dispatch to every
  peer, expert compute, combine back along the reverse paths.
* ``kvcache``   — prefill→decode KV-cache handover: large asymmetric
  chunked puts one way, one tiny ack back.
* ``psfanin``   — parameter-server fan-in: every worker pushes gradients
  to rank 0, which reduces in fixed order and fans the update back out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, List

from ..collectives.algorithms import REDUCE_OPS, _pack, _unpack
from ..errors import BenchmarkError

#: Instructions charged per reduced element (fused multiply-add idiom used
#: by the PR 2 collectives).
_INSTR_PER_ELEMENT = 2

#: The 8-byte ack a decode node returns after absorbing a KV handover.
_ACK = bytes(range(8))


def payload(req: int, src: int, dst: int, nbytes: int) -> bytes:
    """Deterministic, distinct bytes for (request, src, dst)."""
    base = (req * 131 + src * 37 + dst * 17) % 251
    return bytes((base + 11 * i + 5) % 251 for i in range(nbytes))


def grad_vector(req: int, rank: int, elements: int) -> List[float]:
    """Deterministic per-(request, rank) float64 gradient vector."""
    return [float((req * 31 + 7 * rank + 3 * i + 1) % 97)
            for i in range(elements)]


def expert_transform(data: bytes) -> bytes:
    """What an expert does to a token chunk (cheap, deterministic)."""
    return bytes((b * 2 + 1) % 251 for b in data)


@dataclass(frozen=True)
class Workload:
    """One service-request shape, runnable under every control mode."""

    name: str
    description: str
    connectivity: str     # channel layout the mode transports must wire
    min_nodes: int
    #: (req, rank, nodes, size) -> op generator returning the rank's result
    script: Callable[[int, int, int, int], Generator]
    #: (req, rank, nodes, size, result) -> bool — exact host-side check
    verify: Callable[[int, int, int, int, object], bool]
    #: (nodes, size) -> payload bytes one request moves across all ranks
    request_bytes: Callable[[int, int], int]
    knobs: Dict[str, float] = field(default_factory=dict)


# =============================================================================
# trainstep — all-reduce dominated, compute/comm overlap knob
# =============================================================================

def _allreduce_ops(req: int, rank: int, nodes: int, size: int,
                   op: str = "sum"):
    """PR 2's ring all-reduce schedule in op-vocabulary form: identical
    chunking, identical ``op(owned, incoming)`` association order."""
    combine = REDUCE_OPS[op]
    values = grad_vector(req, rank, nodes * (size // 8))
    chunk_len = len(values) // nodes
    chunks = [list(values[i * chunk_len:(i + 1) * chunk_len])
              for i in range(nodes)]
    nxt, prv = (rank + 1) % nodes, (rank - 1) % nodes
    for s in range(nodes - 1):
        send_idx = (rank - s) % nodes
        recv_idx = (rank - s - 1) % nodes
        yield ("send", nxt, _pack(chunks[send_idx]))
        incoming = _unpack((yield ("recv", prv)))
        yield ("compute", _INSTR_PER_ELEMENT * chunk_len)
        chunks[recv_idx] = [combine(a, b)
                            for a, b in zip(chunks[recv_idx], incoming)]
    for s in range(nodes - 1):
        send_idx = (rank + 1 - s) % nodes
        recv_idx = (rank - s) % nodes
        yield ("send", nxt, _pack(chunks[send_idx]))
        chunks[recv_idx] = _unpack((yield ("recv", prv)))
    return [v for chunk in chunks for v in chunk]


def _trainstep(compute_instr: int, overlap: float) -> Workload:
    exposed = int(compute_instr * (1.0 - overlap))

    def script(req: int, rank: int, nodes: int, size: int):
        # The overlap knob hides that fraction of the backward-pass compute
        # behind the collective; only the exposed remainder serializes in
        # front of it.
        if exposed:
            yield ("compute", exposed)
        result = yield from _allreduce_ops(req, rank, nodes, size)
        return result

    def verify(req: int, rank: int, nodes: int, size: int,
               result: object) -> bool:
        vectors = [grad_vector(req, r, nodes * (size // 8))
                   for r in range(nodes)]
        expected = [sum(col) for col in zip(*vectors)]
        return (isinstance(result, list) and len(result) == len(expected)
                and all(abs(a - b) <= 1e-9
                        for a, b in zip(result, expected)))

    return Workload(
        name="trainstep",
        description="data-parallel training step: exposed compute + ring "
                    "all-reduce of the gradient vector",
        connectivity="ring", min_nodes=2, script=script, verify=verify,
        request_bytes=lambda nodes, size: 2 * (nodes - 1) * nodes * size,
        knobs={"compute_instr": compute_instr, "overlap": overlap})


# =============================================================================
# moe — all-to-all dispatch/combine
# =============================================================================

def _moe(expert_instr: int) -> Workload:
    def script(req: int, rank: int, nodes: int, size: int):
        peers = [p for p in range(nodes) if p != rank]
        # Dispatch: route this rank's token chunks to every expert.  Sends
        # are slot-buffered, so send-all-then-recv-all never deadlocks.
        for p in peers:
            yield ("send", p, payload(req, rank, p, size))
        inbox = {}
        for p in peers:
            inbox[p] = yield ("recv", p)
        # Expert FFN over every received chunk.
        yield ("compute", expert_instr * len(peers))
        # Combine: processed tokens travel the reverse paths.
        for p in peers:
            yield ("send", p, expert_transform(inbox[p]))
        combined = {}
        for p in peers:
            combined[p] = yield ("recv", p)
        return combined

    def verify(req: int, rank: int, nodes: int, size: int,
               result: object) -> bool:
        if not isinstance(result, dict):
            return False
        peers = [p for p in range(nodes) if p != rank]
        return (sorted(result) == peers
                and all(result[p] == expert_transform(
                            payload(req, rank, p, size))
                        for p in peers))

    return Workload(
        name="moe",
        description="MoE all-to-all: token dispatch to every expert, "
                    "expert compute, combine along the reverse paths",
        connectivity="full", min_nodes=2, script=script, verify=verify,
        request_bytes=lambda nodes, size: 2 * nodes * (nodes - 1) * size,
        knobs={"expert_instr": expert_instr})


# =============================================================================
# kvcache — prefill -> decode handover, large asymmetric puts
# =============================================================================

def _kvcache(kv_chunks: int, append_instr: int) -> Workload:
    def script(req: int, rank: int, nodes: int, size: int):
        pairs = nodes // 2
        if rank >= 2 * pairs:       # odd node out: no pair, no traffic
            return None
        if rank < pairs:            # prefill side: stream the cache over
            peer = rank + pairs
            for c in range(kv_chunks):
                yield ("send", peer, payload(req + c, rank, peer, size))
            ack = yield ("recv", peer)
            return ack
        peer = rank - pairs         # decode side: absorb, append, ack
        chunks = []
        for _c in range(kv_chunks):
            chunks.append((yield ("recv", peer)))
            yield ("compute", append_instr)
        yield ("send", peer, _ACK)
        return chunks

    def verify(req: int, rank: int, nodes: int, size: int,
               result: object) -> bool:
        pairs = nodes // 2
        if rank >= 2 * pairs:
            return result is None
        if rank < pairs:
            return result == _ACK
        peer = rank - pairs
        expected = [payload(req + c, peer, rank, size)
                    for c in range(kv_chunks)]
        return result == expected

    return Workload(
        name="kvcache",
        description="KV-cache transfer prefill->decode: chunked large puts "
                    "one way, an 8-byte ack back",
        connectivity="full", min_nodes=2, script=script, verify=verify,
        request_bytes=lambda nodes, size:
            (nodes // 2) * (kv_chunks * size + len(_ACK)),
        knobs={"kv_chunks": kv_chunks, "append_instr": append_instr})


# =============================================================================
# psfanin — parameter-server fan-in / fan-out
# =============================================================================

def _psfanin(reduce_instr_per_el: int) -> Workload:
    def script(req: int, rank: int, nodes: int, size: int):
        elements = size // 8
        if rank == 0:               # the server: gather, reduce, fan out
            total = [0.0] * elements
            for w in range(1, nodes):
                grads = _unpack((yield ("recv", w)))
                yield ("compute", reduce_instr_per_el * elements)
                total = [a + b for a, b in zip(total, grads)]
            update = _pack(total)
            for w in range(1, nodes):
                yield ("send", w, update)
            return total
        yield ("send", 0, _pack(grad_vector(req, rank, elements)))
        update = yield ("recv", 0)
        return _unpack(update)

    def verify(req: int, rank: int, nodes: int, size: int,
               result: object) -> bool:
        elements = size // 8
        total = [0.0] * elements
        # Same fixed worker order as the server: float sums are bit-exact.
        for w in range(1, nodes):
            total = [a + b
                     for a, b in zip(total, grad_vector(req, w, elements))]
        return result == total

    return Workload(
        name="psfanin",
        description="parameter-server fan-in: workers push gradients to "
                    "rank 0, which reduces in order and fans the update "
                    "back out",
        connectivity="full", min_nodes=2, script=script, verify=verify,
        request_bytes=lambda nodes, size: 2 * (nodes - 1) * size,
        knobs={"reduce_instr_per_el": reduce_instr_per_el})


# =============================================================================
# pingpong — the paper's §V latency microbenchmark as a request
# =============================================================================

def _pingpong(rounds: int, skew_rank: int, skew_instr: int) -> Workload:
    """Rank 0 and rank 1 exchange one message per round; other ranks idle.
    The skew knobs charge ``skew_instr`` extra instructions on
    ``skew_rank`` before its first op — the forced-straggler canary the
    critical-path analyzer must name."""

    def script(req: int, rank: int, nodes: int, size: int):
        if rank >= 2:
            return None
        if rank == skew_rank and skew_instr:
            yield ("compute", skew_instr)
        if rank == 0:
            echoes = []
            for r in range(rounds):
                yield ("send", 1, payload(req + r, 0, 1, size))
                echoes.append((yield ("recv", 1)))
            return echoes
        for r in range(rounds):
            ball = yield ("recv", 0)
            yield ("send", 0, expert_transform(ball))
        return None

    def verify(req: int, rank: int, nodes: int, size: int,
               result: object) -> bool:
        if rank != 0:
            return result is None
        expected = [expert_transform(payload(req + r, 0, 1, size))
                    for r in range(rounds)]
        return result == expected

    return Workload(
        name="pingpong",
        description="rank 0 <-> rank 1 request/echo rounds: the latency "
                    "microbenchmark in service-request form",
        connectivity="ring", min_nodes=2, script=script, verify=verify,
        request_bytes=lambda nodes, size: 2 * rounds * size,
        knobs={"rounds": rounds, "skew_rank": skew_rank,
               "skew_instr": skew_instr})


# =============================================================================
# allreduce — the bare ring collective (trainstep without the compute)
# =============================================================================

def _allreduce(skew_rank: int, skew_instr: int) -> Workload:
    def script(req: int, rank: int, nodes: int, size: int):
        if rank == skew_rank and skew_instr:
            yield ("compute", skew_instr)
        result = yield from _allreduce_ops(req, rank, nodes, size)
        return result

    def verify(req: int, rank: int, nodes: int, size: int,
               result: object) -> bool:
        vectors = [grad_vector(req, r, nodes * (size // 8))
                   for r in range(nodes)]
        expected = [sum(col) for col in zip(*vectors)]
        return (isinstance(result, list) and len(result) == len(expected)
                and all(abs(a - b) <= 1e-9
                        for a, b in zip(result, expected)))

    return Workload(
        name="allreduce",
        description="bare ring all-reduce of one gradient vector, with a "
                    "forced-straggler skew knob",
        connectivity="ring", min_nodes=2, script=script, verify=verify,
        request_bytes=lambda nodes, size: 2 * (nodes - 1) * nodes * size,
        knobs={"skew_rank": skew_rank, "skew_instr": skew_instr})


# =============================================================================
# registry
# =============================================================================

#: The suite with its default knobs, by name.
WORKLOADS: Dict[str, Workload] = {
    w.name: w for w in (
        _trainstep(compute_instr=2000, overlap=0.5),
        _moe(expert_instr=400),
        _kvcache(kv_chunks=4, append_instr=100),
        _psfanin(reduce_instr_per_el=2),
        _pingpong(rounds=4, skew_rank=-1, skew_instr=0),
        _allreduce(skew_rank=-1, skew_instr=0),
    )
}


def get_workload(name: str, **knobs) -> Workload:
    """Resolve a workload by name; knob overrides rebuild it."""
    if name not in WORKLOADS:
        raise BenchmarkError(f"unknown workload {name!r} (choose from: "
                             f"{', '.join(sorted(WORKLOADS))})")
    if not knobs:
        return WORKLOADS[name]
    builders = {
        "trainstep": lambda: _trainstep(
            compute_instr=int(knobs.get("compute_instr", 2000)),
            overlap=float(knobs.get("overlap", 0.5))),
        "moe": lambda: _moe(expert_instr=int(knobs.get("expert_instr",
                                                       400))),
        "kvcache": lambda: _kvcache(
            kv_chunks=int(knobs.get("kv_chunks", 4)),
            append_instr=int(knobs.get("append_instr", 100))),
        "psfanin": lambda: _psfanin(
            reduce_instr_per_el=int(knobs.get("reduce_instr_per_el", 2))),
        "pingpong": lambda: _pingpong(
            rounds=int(knobs.get("rounds", 4)),
            skew_rank=int(knobs.get("skew_rank", -1)),
            skew_instr=int(knobs.get("skew_instr", 0))),
        "allreduce": lambda: _allreduce(
            skew_rank=int(knobs.get("skew_rank", -1)),
            skew_instr=int(knobs.get("skew_instr", 0))),
    }
    return builders[name]()
