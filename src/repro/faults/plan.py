"""Fault plans: the declarative, seeded description of what goes wrong.

A :class:`FaultPlan` says, per link (or for every link), how often packets
are dropped, corrupted, or delayed out of order, and when links go down —
one-shot windows, periodic flaps, or probabilistic flaps.  The plan is pure
data; :class:`repro.faults.FaultInjector` turns it into link state and
scheduled processes on a concrete cluster.

Determinism: every random decision is drawn from a per-link
``random.Random`` stream derived from ``(simulator seed, plan seed, link
name)`` — never from wall-clock — so two runs with the same seeds replay
the same faults event for event, which is what lets
``tests/test_determinism.py`` assert byte-identical traces for chaos runs.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..errors import ConfigError


@dataclass(frozen=True)
class LinkFaults:
    """Fault behavior of one link (both directions).

    ``loss``/``corrupt``/``delay_prob`` are per-packet probabilities;
    ``delay_max`` bounds the uniform extra delay of a delayed packet, which
    bypasses the link's in-order delivery chain — delayed packets may
    overtake or be overtaken (reordering).  ``down_windows`` are explicit
    ``(start, duration)`` outages; the ``flap_*`` family schedules periodic
    outages: from ``flap_start``, every ``flap_period`` seconds the link
    goes down for ``flap_downtime`` with probability ``flap_prob``,
    ``flap_count`` times.
    """

    loss: float = 0.0
    corrupt: float = 0.0
    delay_prob: float = 0.0
    delay_max: float = 0.0
    down_windows: Tuple[Tuple[float, float], ...] = ()
    flap_start: float = 0.0
    flap_period: float = 0.0
    flap_downtime: float = 0.0
    flap_count: int = 0
    flap_prob: float = 1.0

    def __post_init__(self) -> None:
        for name in ("loss", "corrupt", "delay_prob", "flap_prob"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ConfigError(f"{name} must be a probability, got {p}")
        if self.delay_max < 0 or self.flap_start < 0:
            raise ConfigError("delay_max/flap_start must be >= 0")
        if self.delay_prob > 0 and self.delay_max <= 0:
            raise ConfigError("delay_prob > 0 needs delay_max > 0")
        if self.flap_count < 0:
            raise ConfigError(f"flap_count must be >= 0, got {self.flap_count}")
        if self.flap_count > 0:
            if self.flap_period <= 0 or self.flap_downtime <= 0:
                raise ConfigError("flapping needs flap_period and "
                                  "flap_downtime > 0")
            if self.flap_downtime >= self.flap_period:
                raise ConfigError("flap_downtime must be < flap_period "
                                  "(the link must come back up)")
        for start, duration in self.down_windows:
            if start < 0 or duration <= 0:
                raise ConfigError(
                    f"bad down window ({start}, {duration})")

    @property
    def is_null(self) -> bool:
        """True iff this config injects nothing at all — the zero-cost
        path: the injector installs no state and no processes for it."""
        return (self.loss == 0.0 and self.corrupt == 0.0
                and self.delay_prob == 0.0 and not self.down_windows
                and self.flap_count == 0)


@dataclass(frozen=True)
class FaultPlan:
    """Which faults to inject where.

    ``default`` applies to every link; ``links`` overrides individual links
    keyed by the unordered node-id pair.  ``seed`` perturbs the per-link
    random streams independently of the simulator seed, so one cluster
    seed can host many distinct chaos scenarios.
    """

    seed: int = 0
    default: LinkFaults = field(default_factory=LinkFaults)
    links: Tuple[Tuple[Tuple[int, int], LinkFaults], ...] = ()

    @classmethod
    def none(cls) -> "FaultPlan":
        """The empty plan: attaching it is exactly a no-op."""
        return cls()

    @classmethod
    def uniform(cls, loss: float = 0.0, corrupt: float = 0.0,
                delay_prob: float = 0.0, delay_max: float = 0.0,
                seed: int = 0) -> "FaultPlan":
        """Same packet-level faults on every link, no outages."""
        return cls(seed=seed, default=LinkFaults(
            loss=loss, corrupt=corrupt,
            delay_prob=delay_prob, delay_max=delay_max))

    @classmethod
    def for_links(cls, overrides: Dict[Tuple[int, int], LinkFaults],
                  default: Optional[LinkFaults] = None,
                  seed: int = 0) -> "FaultPlan":
        """Per-link overrides (keys are unordered node-id pairs)."""
        normalized = tuple(sorted(
            ((min(a, b), max(a, b)), cfg) for (a, b), cfg in overrides.items()))
        return cls(seed=seed, default=default or LinkFaults(),
                   links=normalized)

    def for_link(self, node_a: int, node_b: int) -> LinkFaults:
        key = (min(node_a, node_b), max(node_a, node_b))
        for k, cfg in self.links:
            if k == key:
                return cfg
        return self.default

    @property
    def is_null(self) -> bool:
        return self.default.is_null and all(cfg.is_null
                                            for _k, cfg in self.links)

    def link_seed(self, sim_seed: int, link_name: str) -> int:
        """The derived seed of one link's random stream.  Stable across
        processes (CRC of the name, not Python's salted ``hash``)."""
        return (sim_seed * 1000003 + self.seed * 8191) ^ zlib.crc32(
            link_name.encode())

    def link_rng(self, sim_seed: int, link_name: str) -> random.Random:
        return random.Random(self.link_seed(sim_seed, link_name))
