"""``python -m repro faults`` — the chaos harness.

Sweeps loss rate x message size x control mode over an N-node collective
with the reliability engines armed, and asserts three properties:

1. every point still computes the exact correct result (retransmission
   works under loss, corruption, and reordering),
2. a traced run's ``fault/retransmit`` instants reconcile with the
   engines' counters within 1% (the books balance),
3. latency/goodput degrade monotonically with loss, and the fault layer is
   bit-for-bit free when idle (``FaultPlan.none()``).

Examples::

    python -m repro faults
    python -m repro faults --loss 0,0.01,0.05 --sizes 64,256 --mode all
    python -m repro faults --trace faults.json --loss 0.02
    python -m repro faults --quick        # CI smoke subset
"""

from __future__ import annotations

import argparse
import sys

from ..analysis.faults import (
    chaos_sweep,
    monotonic_check,
    reconcile_retransmits,
    render_chaos,
    run_chaos_point,
    zero_cost_check,
)
from ..collectives.bench import OPS
from ..collectives.comm import CollectiveMode, collective_mode
from ..obs import SpanTracer
from ..obs.export import (
    chrome_trace_events,
    validate_chrome_trace,
    write_chrome_trace,
)


def _csv_floats(text: str, what: str):
    try:
        values = [float(v) for v in text.split(",") if v.strip()]
    except ValueError:
        raise SystemExit(f"bad {what} list {text!r}")
    if not values:
        raise SystemExit(f"empty {what} list")
    return values


def _csv_ints(text: str, what: str):
    try:
        values = [int(v) for v in text.split(",") if v.strip()]
    except ValueError:
        raise SystemExit(f"bad {what} list {text!r}")
    if not values:
        raise SystemExit(f"empty {what} list")
    return values


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro faults",
        description="Chaos sweeps: collectives under deterministic fault "
                    "injection, with retransmission armed.")
    parser.add_argument("--op", default="all-reduce", choices=OPS,
                        help="collective operation (default: all-reduce)")
    parser.add_argument("--nodes", type=int, default=4,
                        help="ring size (default: 4)")
    parser.add_argument("--loss", default="0,0.005,0.01,0.02",
                        help="comma-separated per-packet loss rates "
                             "(default: 0,0.005,0.01,0.02; corruption rides "
                             "along at half each rate)")
    parser.add_argument("--sizes", default="64,256",
                        help="comma-separated payload bytes, multiples of 8 "
                             "(default: 64,256)")
    parser.add_argument("--mode", default="all",
                        choices=["all"] + [m.value for m in CollectiveMode],
                        help="control mode to sweep (default: all three)")
    parser.add_argument("--iterations", type=int, default=4,
                        help="measured rounds per point (default: 4)")
    parser.add_argument("--warmup", type=int, default=1,
                        help="warmup rounds per point (default: 1)")
    parser.add_argument("--seed", type=int, default=1,
                        help="simulator seed (default: 1)")
    parser.add_argument("--trace", nargs="?", const="faults-trace.json",
                        default=None, metavar="PATH",
                        help="additionally trace ONE faulted configuration "
                             "and write a Chrome trace "
                             "(default path: faults-trace.json)")
    parser.add_argument("--quick", action="store_true",
                        help="small fixed sweep for CI smoke runs")
    args = parser.parse_args(argv)

    if args.quick:
        loss_rates, sizes = [0.0, 0.01], [64]
        modes = [CollectiveMode.POLL_ON_GPU, CollectiveMode.HOST_CONTROLLED]
        nodes, iterations, warmup = 3, 2, 1
    else:
        loss_rates = sorted(_csv_floats(args.loss, "loss rate"))
        sizes = _csv_ints(args.sizes, "size")
        modes = (list(CollectiveMode) if args.mode == "all"
                 else [collective_mode(args.mode)])
        nodes, iterations, warmup = args.nodes, args.iterations, args.warmup
    if any(l < 0 or l >= 1 for l in loss_rates):
        raise SystemExit("loss rates must be in [0, 1)")
    if 0.0 not in loss_rates:
        loss_rates = [0.0] + loss_rates   # degradation needs its baseline

    failures = []

    # 1. The grid: every point must still compute the right answer.
    points = chaos_sweep(loss_rates, sizes, modes, nodes=nodes, op=args.op,
                         iterations=iterations, warmup=warmup,
                         seed=args.seed)
    print(f"{args.op} on {nodes} nodes, {iterations} iterations per point, "
          f"seed {args.seed}:")
    print(render_chaos(points))
    bad = [p for p in points if not p.correct]
    if bad:
        failures.append(f"{len(bad)} chaos point(s) computed a WRONG result")

    # 2. Zero cost when idle: FaultPlan.none() must be bit-identical.
    zc = zero_cost_check(modes[0], sizes[0], nodes=nodes, op=args.op,
                         iterations=iterations, warmup=warmup,
                         seed=args.seed)
    print(f"\nzero-cost check       : bare {zc['bare_latency'] * 1e6:.3f}us "
          f"vs null-plan {zc['null_latency'] * 1e6:.3f}us -> "
          f"{'bit-identical OK' if zc['ok'] else 'MISMATCH'}")
    if not zc["ok"]:
        failures.append("FaultPlan.none() changed a fault-free run")

    # 3. Monotonic degradation with loss.
    mono = monotonic_check(points)
    print(f"monotonic degradation : "
          f"{'OK' if mono['ok'] else 'VIOLATED'}")
    for v in mono["violations"]:
        print(f"  {v}")
    if not mono["ok"]:
        failures.append("degradation is not monotonic with loss")

    # 4. Traced run: retransmit instants vs engine counters.
    if args.trace is not None:
        tracer = SpanTracer()
        trace_loss = max(loss_rates) or 0.01
        point, comm, _ = run_chaos_point(
            modes[0], sizes[0], trace_loss, corrupt=trace_loss / 2,
            nodes=nodes, op=args.op, iterations=iterations, warmup=warmup,
            seed=args.seed, tracer=tracer)
        events = chrome_trace_events(tracer)
        validate_chrome_trace(events)
        write_chrome_trace(tracer, args.trace)
        recon = reconcile_retransmits(tracer, comm)
        print(f"retransmit reconcile  : trace {recon['traced']} vs "
              f"counters {recon['counted']} "
              f"(rel err {recon['rel_err'] * 100:.2f}%) "
              f"{'OK' if recon['ok'] else 'MISMATCH'}")
        print(f"{len(tracer.spans)} spans, {len(tracer.instants)} instants "
              f"-> {args.trace}")
        if not (recon["ok"] and point.correct):
            failures.append("traced run failed reconciliation")

    if failures:
        print(f"\n{len(failures)} check(s) FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nall chaos checks passed")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
