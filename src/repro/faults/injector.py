"""The fault injector: turns a :class:`~repro.faults.FaultPlan` into live
link state on a concrete :class:`~repro.network.NetworkFabric`.

Per faulted link the injector installs a :class:`LinkFaultState` as
``NetLink.faults`` — consulted by :meth:`repro.network.NetLink.send` after
serialization — and spawns the outage schedules (one-shot windows and
periodic flaps) as simulator processes.  Links whose config
:attr:`~repro.faults.LinkFaults.is_null` get NOTHING attached, so
``FaultPlan.none()`` leaves every link exactly as it was: the zero-cost
path, mirroring :class:`~repro.sim.trace.NullTracer`.

Observability: every drop/corruption/delay emits a ``fault`` trace instant
and bumps per-link counters; link outages open/close ``fault``-category
``link-down`` spans and record 0/1 transitions into a
:class:`~repro.obs.metrics.Timeline` metric, so the Chrome-trace and
timeline exporters show the fault windows alongside the traffic they hit.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigError
from ..network import NetLink, NetworkFabric, Packet
from ..sim import NULL_SPAN, Simulator
from .plan import FaultPlan, LinkFaults


class LinkFaultState:
    """Live fault state of one link: its RNG stream, up/down status, and
    drop/corruption/delay counters."""

    __slots__ = ("sim", "link", "cfg", "rng", "down_depth", "drops",
                 "corruptions", "delays", "down_drops", "transitions",
                 "_down_span")

    def __init__(self, sim: Simulator, link: NetLink, cfg: LinkFaults,
                 rng: random.Random) -> None:
        self.sim = sim
        self.link = link
        self.cfg = cfg
        self.rng = rng
        # Overlapping outage schedules nest: the link is up iff depth == 0.
        self.down_depth = 0
        self.drops = 0          # probabilistic losses
        self.corruptions = 0
        self.delays = 0
        self.down_drops = 0     # packets sent into a dead cable
        self.transitions = 0    # up<->down edges
        self._down_span = None

    @property
    def up(self) -> bool:
        return self.down_depth == 0

    # -- packet-level decisions (called from NetLink.send) --------------------
    def filter_tx(self, packet: Packet) -> Optional[Tuple[Packet, float]]:
        """Decide one packet's fate after it left the NIC.

        Returns ``None`` to drop it, else ``(packet, extra_delay)`` where a
        positive ``extra_delay`` also releases the packet from the link's
        in-order delivery chain (reordering).  A corrupted packet is a
        *clone* with flipped payload bytes and the original CRC sealed in,
        so retransmission copies held upstream stay pristine.
        """
        if self.down_depth:
            self.down_drops += 1
            self._record("drop:link-down", packet)
            return None
        cfg = self.cfg
        rng = self.rng
        if cfg.loss and rng.random() < cfg.loss:
            self.drops += 1
            self._record("drop:loss", packet)
            return None
        if cfg.corrupt and rng.random() < cfg.corrupt:
            packet = self._corrupt(packet)
        extra = 0.0
        if cfg.delay_prob and rng.random() < cfg.delay_prob:
            extra = rng.uniform(0.25 * cfg.delay_max, cfg.delay_max)
            self.delays += 1
            self._record("delay", packet, extra=extra)
        return packet, extra

    def _corrupt(self, packet: Packet) -> Packet:
        """Seal the true CRC, then flip payload bytes in a clone."""
        self.corruptions += 1
        self._record("corrupt", packet)
        true_crc = packet.compute_checksum()
        if packet.payload:
            mutated = bytearray(packet.payload)
            for _ in range(self.rng.randint(1, min(3, len(mutated)))):
                idx = self.rng.randrange(len(mutated))
                mutated[idx] ^= self.rng.randint(1, 255)
            bad = packet.clone(payload=bytes(mutated))
            bad.checksum = true_crc
            # A vanishingly unlikely no-op flip still must corrupt.
            if not bad.is_corrupt:
                bad.checksum = true_crc ^ 0x5A5A5A5A
        else:
            # Header-only packets: poison the CRC itself.
            bad = packet.clone()
            bad.checksum = true_crc ^ 0x5A5A5A5A
        return bad

    def _record(self, what: str, packet: Packet, **attrs) -> None:
        trc = self.sim.tracer
        if trc.enabled:
            trc.instant("fault", what, track=self.link.name,
                        seq=packet.seq, kind=packet.kind.value, **attrs)
            trc.metrics.counter(f"fault.{self.link.name}.{what}").inc()

    # -- outage transitions (called by the injector's schedule processes) -----
    def take_down(self) -> None:
        self.down_depth += 1
        if self.down_depth == 1:
            self.transitions += 1
            trc = self.sim.tracer
            if trc.enabled:
                self._down_span = trc.begin("fault", "link-down",
                                            track=self.link.name)
                trc.metrics.timeline(
                    f"fault.{self.link.name}.up").record(self.sim.now, 0)

    def bring_up(self) -> None:
        if self.down_depth <= 0:
            raise ConfigError(f"{self.link.name}: bring_up without take_down")
        self.down_depth -= 1
        if self.down_depth == 0:
            self.transitions += 1
            trc = self.sim.tracer
            if trc.enabled:
                (self._down_span or NULL_SPAN).end()
                self._down_span = None
                trc.metrics.timeline(
                    f"fault.{self.link.name}.up").record(self.sim.now, 1)

    def snapshot(self) -> Dict[str, int]:
        """Uniform stats protocol (counters plus the ``up`` gauge)."""
        return {"drops": self.drops, "corruptions": self.corruptions,
                "delays": self.delays, "down_drops": self.down_drops,
                "transitions": self.transitions, "up": int(self.up)}


class FaultInjector:
    """Attaches a :class:`FaultPlan` to a cluster's network fabric."""

    def __init__(self, sim: Simulator, plan: Optional[FaultPlan] = None) -> None:
        self.sim = sim
        self.plan = plan or FaultPlan.none()
        self.states: Dict[str, LinkFaultState] = {}

    # -- wiring ---------------------------------------------------------------
    def attach(self, fabric: NetworkFabric) -> "FaultInjector":
        """Install fault state on every fabric link the plan faults.  A null
        plan (or all-null link configs) installs nothing at all."""
        for (a, b), link in sorted(fabric.links().items()):
            self.attach_link(link, a, b)
        return self

    def attach_link(self, link: NetLink, node_a: int, node_b: int) -> None:
        cfg = self.plan.for_link(node_a, node_b)
        if cfg.is_null:
            return
        if link.faults is not None:
            raise ConfigError(f"{link.name} already has fault state")
        state = LinkFaultState(
            self.sim, link, cfg,
            self.plan.link_rng(self.sim.seed, link.name))
        link.faults = state
        self.states[link.name] = state
        if cfg.down_windows:
            self.sim.process(self._window_schedule(state),
                             name=f"faults.{link.name}.windows")
        if cfg.flap_count:
            self.sim.process(self._flap_schedule(state),
                             name=f"faults.{link.name}.flap")

    # -- outage schedules -----------------------------------------------------
    def _window_schedule(self, state: LinkFaultState):
        for start, duration in sorted(state.cfg.down_windows):
            gap = start - self.sim.now
            if gap > 0:
                yield self.sim.timeout(gap)
            state.take_down()
            yield self.sim.timeout(duration)
            state.bring_up()

    def _flap_schedule(self, state: LinkFaultState):
        cfg = state.cfg
        if cfg.flap_start > 0:
            yield self.sim.timeout(cfg.flap_start)
        for _cycle in range(cfg.flap_count):
            flap = cfg.flap_prob >= 1.0 or state.rng.random() < cfg.flap_prob
            if flap:
                state.take_down()
                yield self.sim.timeout(cfg.flap_downtime)
                state.bring_up()
                yield self.sim.timeout(cfg.flap_period - cfg.flap_downtime)
            else:
                yield self.sim.timeout(cfg.flap_period)

    # -- aggregate counters ---------------------------------------------------
    def _total(self, attr: str) -> int:
        return sum(getattr(s, attr) for s in self.states.values())

    @property
    def drops(self) -> int:
        return self._total("drops")

    @property
    def corruptions(self) -> int:
        return self._total("corruptions")

    @property
    def delays(self) -> int:
        return self._total("delays")

    @property
    def down_drops(self) -> int:
        return self._total("down_drops")

    @property
    def transitions(self) -> int:
        return self._total("transitions")

    def counters(self) -> Dict[str, Dict[str, int]]:
        """Per-link counter snapshot (for reports and reconciliation)."""
        return {name: {"drops": s.drops, "corruptions": s.corruptions,
                       "delays": s.delays, "down_drops": s.down_drops,
                       "transitions": s.transitions}
                for name, s in sorted(self.states.items())}

    # -- uniform stats protocol -------------------------------------------------
    GAUGES = ("links_down",)

    def snapshot(self) -> Dict[str, int]:
        """Aggregate totals in the uniform ``snapshot()/diff()`` shape the
        telemetry sampler polls: flat ``{name: int}``, counters monotonic,
        gauges (``links_down``) reporting the current level."""
        return {"drops": self.drops, "corruptions": self.corruptions,
                "delays": self.delays, "down_drops": self.down_drops,
                "transitions": self.transitions,
                "links_down": sum(0 if s.up else 1
                                  for s in self.states.values())}

    def diff(self, earlier: Dict[str, int]) -> Dict[str, int]:
        """Change since an ``earlier`` :meth:`snapshot` (gauges pass through
        as levels, counters as deltas)."""
        out: Dict[str, int] = {}
        for name, value in self.snapshot().items():
            if name in self.GAUGES:
                out[name] = value
            else:
                out[name] = value - earlier.get(name, 0)
        return out
