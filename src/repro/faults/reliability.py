"""Reliability for msglib channels: cumulative-credit ACKs, timeout +
exponential backoff, go-back-N replay.

The §VI slot-ring protocol already carries everything a reliability layer
needs: the sender's *credit word* is a cumulative acknowledgement (the
receiver writes back the highest sequence number it consumed), and the
staging ring keeps every unacknowledged slot's bytes exactly until the
credit proves consumption.  A reliable channel therefore needs only

* the receiver to return credit after EVERY message
  (``ChannelEnd.credit_interval = 1``) instead of every ``slots/2``,
* a per-direction :class:`ChannelReliability` engine on the sender's NIC
  that watches ``credit < next_seq - 1`` and, after an exponentially
  backed-off timeout without progress, re-posts the puts for every
  unacknowledged slot (go-back-N: slots ``credit+1 .. next_seq-1``), and
* a duplicate detector on the receiver's NIC (an :class:`~repro.extoll.rma
  .RmaUnit` put listener): a replayed put landing on an already-consumed
  slot means the *credit return* was lost, so the receiver re-puts the
  credit word — the ack-of-a-lost-ack every retransmission protocol needs.

The engines are NIC-resident model processes (hardware retransmission
offload), not device code: ``gpu_send``/``gpu_recv`` keep their fast paths
and only pay a plain attribute check plus :meth:`ChannelReliability
.note_send` when reliability is on, and literally nothing when it is off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, TYPE_CHECKING

from ..errors import ConfigError, RetryExhaustedError
from ..extoll import NotifyFlags, RmaOp, RmaWorkRequest
from ..network import Packet
from ..sim import Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.msglib import ChannelEnd
    from ..node import Node


@dataclass(frozen=True)
class ReliabilityConfig:
    """Timeout/backoff/budget knobs of the retransmission engines."""

    timeout: float = 30e-6        # initial retransmission timeout (RTO)
    backoff: float = 2.0          # RTO multiplier per fruitless timeout
    max_timeout: float = 2e-3     # RTO ceiling
    max_retries: int = 24         # fruitless timeouts before giving up
    replay_overhead: float = 500e-9   # NIC re-issue cost per replayed WR
    ack_replay_delay: float = 2e-6    # receiver-side credit re-put delay

    def __post_init__(self) -> None:
        if self.timeout <= 0 or self.max_timeout < self.timeout:
            raise ConfigError("need 0 < timeout <= max_timeout")
        if self.backoff < 1.0:
            raise ConfigError(f"backoff must be >= 1, got {self.backoff}")
        if self.max_retries < 1:
            raise ConfigError("need max_retries >= 1")


def _memory_for(node: "Node", addr: int):
    """The Memory object (GPU DRAM or host DRAM) backing ``addr`` — the
    reliability engines read/write protocol state at model level, like the
    NIC's DMA units they stand in for."""
    if node.gpu.dram.range.contains(addr, 8):
        return node.gpu.dram
    return node.host_mem


class ChannelReliability:
    """One direction's retransmission engine (sender side) plus duplicate
    re-ack hook (receiver side)."""

    def __init__(self, sim: Simulator, src_node: "Node", dst_node: "Node",
                 end: "ChannelEnd", config: Optional[ReliabilityConfig] = None,
                 replay_flags: NotifyFlags = NotifyFlags.NONE) -> None:
        self.sim = sim
        self.src_node = src_node
        self.dst_node = dst_node
        self.end = end
        self.config = config or ReliabilityConfig()
        self.replay_flags = replay_flags
        self._credit_mem = _memory_for(src_node, end.credit_word.base)
        self._staging_mem = _memory_for(dst_node, end.credit_staging.base)
        # Stats the chaos harness reconciles against the Chrome trace.
        self.retransmits = 0          # replayed data puts
        self.timeouts = 0             # fruitless RTO expirations
        self.ack_replays = 0          # receiver-side credit re-puts
        self.error: Optional[RetryExhaustedError] = None
        self._kick = None
        self._ack_replay_pending = False
        sim.process(self._tx_loop(),
                    name=f"rel.{end.src_node_id}->{end.dst_node_id}.tx")
        dst_node.nic.rma.put_listeners.append(self._on_put_completed)

    # -- sender-visible state -----------------------------------------------------
    def acked(self) -> int:
        """Cumulative ack: the credit word in the sender's memory."""
        return self._credit_mem.read_u64(self.end.credit_word.base)

    @property
    def highest_sent(self) -> int:
        return self.end.next_seq - 1

    @property
    def outstanding(self) -> int:
        return max(0, self.highest_sent - self.acked())

    def note_send(self, seq: int) -> None:
        """Called by ``gpu_send``/host send right after posting ``seq`` —
        wakes the parked engine.  Plain function call, no simulated cost."""
        if self._kick is not None and not self._kick.triggered:
            self._kick.succeed()

    # -- uniform stats protocol -----------------------------------------------
    GAUGES = ("outstanding",)

    def snapshot(self) -> dict:
        """Uniform ``snapshot()/diff()`` shape for the telemetry sampler:
        monotonic retransmission counters plus the ``outstanding`` gauge
        (unacked slots right now) and a sticky ``exhausted`` flag."""
        return {"retransmits": self.retransmits, "timeouts": self.timeouts,
                "ack_replays": self.ack_replays,
                "exhausted": int(self.error is not None),
                "outstanding": self.outstanding}

    def diff(self, earlier: dict) -> dict:
        out = {}
        for name, value in self.snapshot().items():
            if name in self.GAUGES:
                out[name] = value
            else:
                out[name] = value - earlier.get(name, 0)
        return out

    # -- sender engine ------------------------------------------------------------
    def _tx_loop(self):
        cfg = self.config
        while True:
            if self.outstanding == 0:
                self._kick = self.sim.event("rel.kick")
                yield self._kick
                continue
            rto = cfg.timeout
            retries = 0
            while self.outstanding > 0:
                before = self.acked()
                yield self.sim.timeout(rto)
                now_acked = self.acked()
                if now_acked >= self.highest_sent:
                    break
                if now_acked > before:
                    # Progress without our help: fresh RTO, no replay.
                    rto = cfg.timeout
                    retries = 0
                    continue
                self.timeouts += 1
                retries += 1
                if retries > cfg.max_retries:
                    self.error = RetryExhaustedError(
                        f"channel {self.end.src_node_id}->"
                        f"{self.end.dst_node_id}: seq "
                        f"{now_acked + 1}..{self.highest_sent} unacked after "
                        f"{cfg.max_retries} retries")
                    self.src_node.nic.rma.async_errors.append(self.error)
                    trc = self.sim.tracer
                    if trc.enabled:
                        # The flight recorder auto-dumps on this instant.
                        trc.instant(
                            "fault", "retry-exhausted",
                            track=f"rel.{self.end.src_node_id}->"
                                  f"{self.end.dst_node_id}",
                            detail=str(self.error))
                        trc.metrics.counter("faults.retry_exhausted").inc()
                    return
                yield from self._replay(now_acked)
                rto = min(rto * cfg.backoff, cfg.max_timeout)

    def _replay(self, acked: int):
        """Go-back-N: re-post every unacknowledged slot's put."""
        end = self.end
        first = acked + 1
        last = min(self.highest_sent, acked + end.slots)
        trc = self.sim.tracer
        for seq in range(first, last + 1):
            yield self.sim.timeout(self.config.replay_overhead)
            # Raced ack while pacing the replays: stop re-sending old data.
            if self.acked() >= seq:
                continue
            wr = RmaWorkRequest(
                op=RmaOp.PUT, port=end.port_id, dst_node=end.dst_node_id,
                src_nla=end.staging_nla.base + end.slot_offset(seq),
                dst_nla=end.ring_nla.base + end.slot_offset(seq),
                size=end.slot_size, flags=self.replay_flags)
            self.src_node.nic.rma.post(wr)
            self.retransmits += 1
            if trc.enabled:
                trc.instant("fault", "retransmit",
                            track=f"rel.{end.src_node_id}->{end.dst_node_id}",
                            seq=seq)
                trc.metrics.counter("faults.retransmits").inc()

    # -- receiver-side duplicate handling ------------------------------------------
    def _on_put_completed(self, packet: Packet) -> None:
        """RmaUnit put listener on the RECEIVER's NIC: a put landing on an
        already-consumed ring slot is a replay, which means the sender
        never saw our credit — re-put it."""
        end = self.end
        meta = packet.meta
        dst_nla = meta.get("dst_nla")
        if dst_nla is None or not end.ring_nla.contains(dst_nla, 1):
            return
        offset = dst_nla - end.ring_nla.base
        header_addr = end.ring.base + offset + end.slot_size - 8
        ring_mem = self.dst_node.gpu.dram
        seq = ring_mem.read_u64(header_addr) >> 16
        if seq == 0 or seq > end.consumed:
            return                       # fresh data: the normal path owns it
        if self._ack_replay_pending:
            return                       # one credit re-put in flight at a time
        self._ack_replay_pending = True
        self.sim.process(self._replay_credit(),
                         name=f"rel.{end.src_node_id}->"
                              f"{end.dst_node_id}.reack")

    def _replay_credit(self):
        end = self.end
        yield self.sim.timeout(self.config.ack_replay_delay)
        self._ack_replay_pending = False
        consumed = end.consumed
        if consumed == 0:
            return
        self._staging_mem.write_u64(end.credit_staging.base, consumed)
        wr = RmaWorkRequest(
            op=RmaOp.PUT, port=end.port_id, dst_node=end.src_node_id,
            src_nla=end.credit_staging_nla.base,
            dst_nla=end.credit_word_nla.base, size=8,
            flags=NotifyFlags.NONE)
        self.dst_node.nic.rma.post(wr)
        self.ack_replays += 1
        trc = self.sim.tracer
        if trc.enabled:
            trc.instant("fault", "ack-replay",
                        track=f"rel.{end.src_node_id}->{end.dst_node_id}",
                        credit=consumed)
            trc.metrics.counter("faults.ack_replays").inc()
