"""repro.faults — deterministic fault injection and reliability.

Three pieces:

* :class:`FaultPlan` / :class:`LinkFaults` — a declarative, hashable
  description of what goes wrong on which links (loss, corruption, delay /
  reorder, outage windows, periodic flaps), seeded so every run replays
  bit-identically.
* :class:`FaultInjector` — attaches a plan to a concrete network fabric,
  installing :class:`LinkFaultState` on each faulted
  :class:`~repro.network.NetLink` and driving the outage schedules.
* :class:`ChannelReliability` / :class:`ReliabilityConfig` — the
  retransmission engines behind ``create_channel_between(reliable=True)``:
  per-message cumulative ACKs via the credit word, timeout + exponential
  backoff, go-back-N replay, and receiver-side credit re-acks.

``FaultPlan.none()`` (the default everywhere) installs nothing at all, so
the fault layer is bit-for-bit invisible until asked for — the same
zero-cost contract as :class:`~repro.sim.trace.NullTracer`.
"""

from .injector import FaultInjector, LinkFaultState
from .plan import FaultPlan, LinkFaults
from .reliability import ChannelReliability, ReliabilityConfig

__all__ = [
    "ChannelReliability",
    "FaultInjector",
    "FaultPlan",
    "LinkFaults",
    "LinkFaultState",
    "ReliabilityConfig",
]
