"""Memory-mapped IO windows.

Devices expose registers and doorbell pages as :class:`MmioWindow`s in the
node's physical address map.  Stores/loads that the interconnect routes here
invoke the device's handler *functionally at the time of delivery*; all
timing is accounted by the path that carried the access (PCIe link model).

This is how the paper's two posting mechanisms are modeled:

* EXTOLL: writing a work request directly to the RMA requester page in the
  NIC's PCIe BAR (three 64-bit stores; the last one triggers execution),
* InfiniBand: ringing the doorbell register after writing the WQE to a queue
  buffer in ordinary memory.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..errors import AddressError
from .address import AddressRange, MemorySpace
from .backing import ByteStore

WriteHandler = Callable[[int, bytes], None]   # (offset, data)
ReadHandler = Callable[[int, int], bytes]     # (offset, length) -> data


class MmioWindow:
    """A device-register window in the physical address map.

    The window keeps a backing store so unhandled reads return the last
    written value (real BARs behave like device SRAM for scratch areas);
    handlers registered for sub-ranges intercept accesses.
    """

    def __init__(self, name: str, base: int, size: int) -> None:
        self.name = name
        self.range = AddressRange(base, size)
        self.space = MemorySpace.MMIO
        self.store = ByteStore(size)
        self._write_handlers: Dict[AddressRange, WriteHandler] = {}
        self._read_handlers: Dict[AddressRange, ReadHandler] = {}

    # -- handler registration ---------------------------------------------------
    def on_write(self, offset: int, size: int, handler: WriteHandler) -> None:
        rng = AddressRange(offset, size)
        for existing in self._write_handlers:
            if existing.overlaps(rng):
                raise AddressError(f"write handler overlap at {rng} in {self.name}")
        self._write_handlers[rng] = handler

    def on_read(self, offset: int, size: int, handler: ReadHandler) -> None:
        rng = AddressRange(offset, size)
        for existing in self._read_handlers:
            if existing.overlaps(rng):
                raise AddressError(f"read handler overlap at {rng} in {self.name}")
        self._read_handlers[rng] = handler

    # -- access (called by the interconnect at delivery time) -------------------
    def write(self, offset: int, data: bytes) -> None:
        self.store.write(offset, data)
        for rng, handler in self._write_handlers.items():
            if rng.contains(offset, len(data)):
                handler(offset - rng.base, data)
                return

    def read(self, offset: int, length: int) -> bytes:
        for rng, handler in self._read_handlers.items():
            if rng.contains(offset, length):
                return handler(offset - rng.base, length)
        return self.store.read(offset, length)

    def find_handler(self, offset: int) -> Optional[WriteHandler]:
        for rng, handler in self._write_handlers.items():
            if rng.contains(offset):
                return handler
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MmioWindow {self.name} {self.range}>"
