"""Generic page-granular address translation.

Used twice in the library:

* the EXTOLL ATU translates Network Logical Addresses (NLAs) to node-physical
  addresses (§III-A),
* the GPU's UVA layer translates unified virtual addresses to node-physical
  addresses (device memory, host mappings, and the MMIO mappings that the
  paper's NVIDIA-driver patch enables).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import TranslationError
from .address import AddressRange


@dataclass(frozen=True)
class Mapping:
    """One contiguous translation entry: virtual → physical."""

    virtual: AddressRange
    physical_base: int
    writable: bool = True
    label: str = ""

    def translate(self, vaddr: int, length: int) -> int:
        if not self.virtual.contains(vaddr, length):
            raise TranslationError(f"{vaddr:#x}+{length} outside {self.virtual}")
        return self.physical_base + (vaddr - self.virtual.base)


class TranslationTable:
    """An ordered collection of non-overlapping virtual mappings."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._mappings: list[Mapping] = []

    def map(self, virtual: AddressRange, physical_base: int, *,
            writable: bool = True, label: str = "") -> Mapping:
        for m in self._mappings:
            if m.virtual.overlaps(virtual):
                raise TranslationError(
                    f"{self.name}: new mapping {virtual} overlaps {m.virtual}"
                )
        mapping = Mapping(virtual, physical_base, writable, label)
        self._mappings.append(mapping)
        self._mappings.sort(key=lambda m: m.virtual.base)
        return mapping

    def unmap(self, virtual: AddressRange) -> None:
        for i, m in enumerate(self._mappings):
            if m.virtual == virtual:
                del self._mappings[i]
                return
        raise TranslationError(f"{self.name}: no mapping at {virtual}")

    def lookup(self, vaddr: int, length: int = 1) -> Mapping:
        for m in self._mappings:
            if m.virtual.contains(vaddr, length):
                return m
            if m.virtual.contains(vaddr) and not m.virtual.contains(vaddr, length):
                raise TranslationError(
                    f"{self.name}: access {vaddr:#x}+{length} straddles {m.virtual}"
                )
        raise TranslationError(f"{self.name}: translation fault at {vaddr:#x}")

    def translate(self, vaddr: int, length: int = 1, *, write: bool = False) -> int:
        m = self.lookup(vaddr, length)
        if write and not m.writable:
            raise TranslationError(f"{self.name}: write to read-only {m.virtual}")
        return m.translate(vaddr, length)

    def try_translate(self, vaddr: int, length: int = 1) -> Optional[int]:
        try:
            return self.translate(vaddr, length)
        except TranslationError:
            return None

    @property
    def mappings(self) -> list[Mapping]:
        return list(self._mappings)

    def __len__(self) -> int:
        return len(self._mappings)
