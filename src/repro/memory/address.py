"""Address ranges, address spaces, and the per-node physical address map.

Each simulated node has one *physical* address map that routes accesses from
any agent (CPU, GPU L2 front-end, NIC DMA engine) to a target: a RAM-backed
:class:`~repro.memory.region.Memory` or an :class:`~repro.memory.mmio.MmioWindow`.
The conventional layout mirrors a real PCIe system:

* ``0x0000_0000_0000`` — host DRAM
* ``0x2000_0000_0000`` — GPU device memory (exposed via PCIe BAR1 for
  GPUDirect RDMA)
* ``0x4000_0000_0000`` — device MMIO (NIC BARs, doorbells)
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List, Tuple

from ..errors import AddressError


class MemorySpace(enum.Enum):
    """Which physical resource a given address resolves to."""

    HOST_DRAM = "host_dram"
    GPU_DRAM = "gpu_dram"
    MMIO = "mmio"


# Conventional base addresses of the three windows in a node's physical map.
HOST_DRAM_BASE = 0x0000_0000_0000
GPU_DRAM_BASE = 0x2000_0000_0000
MMIO_BASE = 0x4000_0000_0000


@dataclass(frozen=True)
class AddressRange:
    """A half-open interval [base, base+size) of physical addresses."""

    base: int
    size: int

    def __post_init__(self) -> None:
        if self.base < 0:
            raise AddressError(f"negative base address {self.base:#x}")
        if self.size <= 0:
            raise AddressError(f"non-positive range size {self.size}")

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, addr: int, length: int = 1) -> bool:
        return self.base <= addr and addr + length <= self.end

    def overlaps(self, other: "AddressRange") -> bool:
        return self.base < other.end and other.base < self.end

    def offset_of(self, addr: int) -> int:
        if not self.contains(addr):
            raise AddressError(f"{addr:#x} outside {self}")
        return addr - self.base

    def split(self, chunk: int) -> Iterator["AddressRange"]:
        """Yield consecutive sub-ranges of at most ``chunk`` bytes."""
        if chunk <= 0:
            raise AddressError(f"non-positive chunk {chunk}")
        addr = self.base
        while addr < self.end:
            step = min(chunk, self.end - addr)
            yield AddressRange(addr, step)
            addr += step

    def __str__(self) -> str:
        return f"[{self.base:#x}, {self.end:#x})"


class AddressMap:
    """Routes physical addresses to mapped targets.

    Targets are any object exposing a ``range`` attribute of type
    :class:`AddressRange` and a ``space`` attribute of type
    :class:`MemorySpace`.  Lookups reject accesses that straddle a mapping
    boundary, as real interconnects would.
    """

    def __init__(self) -> None:
        self._entries: List[Tuple[AddressRange, object]] = []

    def add(self, target: object) -> None:
        rng: AddressRange = getattr(target, "range")
        for existing, _ in self._entries:
            if existing.overlaps(rng):
                raise AddressError(f"mapping {rng} overlaps existing {existing}")
        self._entries.append((rng, target))
        self._entries.sort(key=lambda e: e[0].base)

    def resolve(self, addr: int, length: int = 1) -> Tuple[object, int]:
        """Return ``(target, offset_within_target)`` for an access."""
        for rng, target in self._entries:
            if rng.contains(addr, length):
                return target, addr - rng.base
            if rng.contains(addr) and not rng.contains(addr, length):
                raise AddressError(
                    f"access [{addr:#x}, {addr + length:#x}) straddles mapping {rng}"
                )
        raise AddressError(f"unmapped physical address {addr:#x} (+{length})")

    def space_of(self, addr: int) -> MemorySpace:
        target, _ = self.resolve(addr)
        return getattr(target, "space")

    def targets(self) -> List[object]:
        return [t for _, t in self._entries]
