"""Set-associative cache model (the GPU's L2).

The model tracks *which lines are resident* and produces hit/miss outcomes
plus statistics; it does not store data (data always lives in the backing
memory — the cache only changes timing and counters, which is exactly what
the paper's performance-counter analysis needs).

Granularity follows NVIDIA's L2: 32-byte sectors within 128-byte lines; we
model at sector granularity, which is what the ``l2_read_requests`` /
``l2_read_hits`` counters in Tables I and II count.

Eviction is LRU within a set.  Writes are modeled write-back/write-allocate
for device-memory traffic (a store brings the sector in), which reproduces
the effect that polling a just-written flag in device memory hits in L2.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List

from ..errors import ConfigError


@dataclass
class CacheStats:
    read_requests: int = 0
    read_hits: int = 0
    read_misses: int = 0
    write_requests: int = 0
    write_hits: int = 0
    write_misses: int = 0

    def reset(self) -> None:
        for name in vars(self):
            setattr(self, name, 0)

    def snapshot(self) -> "CacheStats":
        return CacheStats(**vars(self))


@dataclass(frozen=True)
class CacheConfig:
    size_bytes: int = 1536 * 1024   # Kepler GK110: 1.5 MiB L2
    line_bytes: int = 32            # sector granularity
    ways: int = 16

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.line_bytes <= 0 or self.ways <= 0:
            raise ConfigError("cache geometry must be positive")
        if self.size_bytes % (self.line_bytes * self.ways) != 0:
            raise ConfigError(
                f"cache size {self.size_bytes} not divisible by "
                f"line*ways={self.line_bytes * self.ways}"
            )
        if self.line_bytes & (self.line_bytes - 1):
            raise ConfigError("line size must be a power of two")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.ways)


class Cache:
    """LRU set-associative presence cache."""

    def __init__(self, config: CacheConfig | None = None) -> None:
        self.config = config or CacheConfig()
        self.stats = CacheStats()
        # One OrderedDict per set: tag -> True, LRU order = insertion order.
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(self.config.num_sets)]

    # -- address math -----------------------------------------------------------
    def _locate(self, addr: int) -> tuple[int, int]:
        line = addr // self.config.line_bytes
        set_idx = line % self.config.num_sets
        tag = line // self.config.num_sets
        return set_idx, tag

    def _touch(self, set_idx: int, tag: int) -> bool:
        """Return hit/miss and update LRU; fills on miss."""
        s = self._sets[set_idx]
        if tag in s:
            s.move_to_end(tag)
            return True
        s[tag] = True
        if len(s) > self.config.ways:
            s.popitem(last=False)  # evict LRU
        return False

    def _sectors(self, addr: int, length: int) -> range:
        first = addr // self.config.line_bytes
        last = (addr + max(length, 1) - 1) // self.config.line_bytes
        return range(first, last + 1)

    # -- access API ---------------------------------------------------------------
    def read(self, addr: int, length: int) -> tuple[int, int]:
        """Access ``length`` bytes at ``addr``.  Returns (hits, misses) in
        sector units and updates stats."""
        hits = misses = 0
        for line in self._sectors(addr, length):
            set_idx, tag = self._locate(line * self.config.line_bytes)
            if self._touch(set_idx, tag):
                hits += 1
            else:
                misses += 1
        self.stats.read_requests += hits + misses
        self.stats.read_hits += hits
        self.stats.read_misses += misses
        return hits, misses

    def write(self, addr: int, length: int) -> tuple[int, int]:
        """Write-allocate access; returns (hits, misses) in sector units."""
        hits = misses = 0
        for line in self._sectors(addr, length):
            set_idx, tag = self._locate(line * self.config.line_bytes)
            if self._touch(set_idx, tag):
                hits += 1
            else:
                misses += 1
        self.stats.write_requests += hits + misses
        self.stats.write_hits += hits
        self.stats.write_misses += misses
        return hits, misses

    def invalidate(self, addr: int, length: int) -> int:
        """Drop any resident sectors overlapping the range (used when another
        PCIe agent DMA-writes device memory); returns sectors dropped."""
        dropped = 0
        for line in self._sectors(addr, length):
            set_idx, tag = self._locate(line * self.config.line_bytes)
            if tag in self._sets[set_idx]:
                del self._sets[set_idx][tag]
                dropped += 1
        return dropped

    def contains(self, addr: int) -> bool:
        set_idx, tag = self._locate(addr)
        return tag in self._sets[set_idx]

    @property
    def resident_sectors(self) -> int:
        return sum(len(s) for s in self._sets)

    def flush(self) -> None:
        for s in self._sets:
            s.clear()
