"""RAM-backed memories and a first-fit allocator.

A :class:`Memory` is a contiguous physical window (host DRAM or GPU DRAM)
backed by a :class:`~repro.memory.backing.ByteStore`; an :class:`Allocator`
hands out sub-ranges of it, so benchmark code can ``malloc``/``free`` buffers
the way the original C code would have.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import AllocationError
from .address import AddressRange, MemorySpace
from .backing import ByteStore


class Memory:
    """A physical memory window: an address range plus its backing bytes."""

    def __init__(self, name: str, base: int, size: int, space: MemorySpace) -> None:
        self.name = name
        self.range = AddressRange(base, size)
        self.space = space
        self.store = ByteStore(size)
        # Called as hook(offset, length) when an *external* agent (PCIe
        # fabric delivery) writes this memory — e.g. the GPU invalidates L2
        # sectors when a NIC DMA-writes device DRAM.
        self.write_hooks: list = []

    # Typed convenience accessors keyed by *physical address*.
    def read(self, addr: int, length: int) -> bytes:
        return self.store.read(self.range.offset_of(addr), length)

    def write(self, addr: int, data: bytes) -> None:
        self.store.write(self.range.offset_of(addr), data)

    def read_u64(self, addr: int) -> int:
        return self.store.read_u64(self.range.offset_of(addr))

    def write_u64(self, addr: int, value: int) -> None:
        self.store.write_u64(self.range.offset_of(addr), value)

    def read_u32(self, addr: int) -> int:
        return self.store.read_u32(self.range.offset_of(addr))

    def write_u32(self, addr: int, value: int) -> None:
        self.store.write_u32(self.range.offset_of(addr), value)

    def fill(self, addr: int, length: int, value: int) -> None:
        self.store.fill(self.range.offset_of(addr), length, value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Memory {self.name} {self.range}>"


class Allocator:
    """First-fit allocator over a :class:`Memory` with coalescing free.

    Alignment defaults to 256 bytes (GPU malloc granularity); allocations are
    tracked so double-free and foreign-free raise.
    """

    def __init__(self, memory: Memory, alignment: int = 256,
                 region: Optional[AddressRange] = None) -> None:
        if alignment <= 0 or (alignment & (alignment - 1)) != 0:
            raise AllocationError(f"alignment must be a power of two, got {alignment}")
        self.memory = memory
        self.alignment = alignment
        self.region = region or memory.range
        if not memory.range.contains(self.region.base, self.region.size):
            raise AllocationError(
                f"allocator region {self.region} outside {memory.range}")
        # Free list of (base, size), sorted by base, non-adjacent.
        self._free: List[Tuple[int, int]] = [(self.region.base, self.region.size)]
        self._live: dict[int, int] = {}

    @property
    def bytes_free(self) -> int:
        return sum(size for _, size in self._free)

    @property
    def bytes_live(self) -> int:
        return sum(self._live.values())

    def alloc(self, size: int) -> AddressRange:
        if size <= 0:
            raise AllocationError(f"allocation size must be positive, got {size}")
        # Round the *placement* up to alignment within each free block.
        for i, (base, free_size) in enumerate(self._free):
            aligned = (base + self.alignment - 1) & ~(self.alignment - 1)
            pad = aligned - base
            if free_size - pad >= size:
                # Carve [aligned, aligned+size) out of this free block.
                remaining_head = (base, pad) if pad else None
                tail_base = aligned + size
                tail_size = base + free_size - tail_base
                pieces = []
                if remaining_head:
                    pieces.append(remaining_head)
                if tail_size:
                    pieces.append((tail_base, tail_size))
                self._free[i:i + 1] = pieces
                self._live[aligned] = size
                return AddressRange(aligned, size)
        raise AllocationError(
            f"out of memory in {self.memory.name}: requested {size}, "
            f"largest-capable free list exhausted ({self.bytes_free} total free)"
        )

    def free(self, rng: AddressRange) -> None:
        size = self._live.pop(rng.base, None)
        if size is None:
            raise AllocationError(f"free of unallocated range {rng}")
        if size != rng.size:
            self._live[rng.base] = size
            raise AllocationError(
                f"free size mismatch at {rng.base:#x}: allocated {size}, freed {rng.size}"
            )
        self._free.append((rng.base, rng.size))
        self._free.sort()
        # Coalesce adjacent blocks.
        merged: List[Tuple[int, int]] = []
        for base, sz in self._free:
            if merged and merged[-1][0] + merged[-1][1] == base:
                merged[-1] = (merged[-1][0], merged[-1][1] + sz)
            else:
                merged.append((base, sz))
        self._free = merged

    def owns(self, addr: int) -> bool:
        """True if ``addr`` falls inside a live allocation."""
        for base, size in self._live.items():
            if base <= addr < base + size:
                return True
        return False
