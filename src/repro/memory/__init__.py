"""Memory subsystem: backing stores, address maps, allocators, caches,
MMIO windows, and page-granular translation."""

from .address import (
    GPU_DRAM_BASE,
    HOST_DRAM_BASE,
    MMIO_BASE,
    AddressMap,
    AddressRange,
    MemorySpace,
)
from .backing import ByteStore
from .cache import Cache, CacheConfig, CacheStats
from .mmio import MmioWindow
from .region import Allocator, Memory
from .translation import Mapping, TranslationTable

__all__ = [
    "AddressMap",
    "AddressRange",
    "MemorySpace",
    "HOST_DRAM_BASE",
    "GPU_DRAM_BASE",
    "MMIO_BASE",
    "ByteStore",
    "Cache",
    "CacheConfig",
    "CacheStats",
    "MmioWindow",
    "Allocator",
    "Memory",
    "Mapping",
    "TranslationTable",
]
