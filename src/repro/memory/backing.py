"""Byte-addressable backing storage.

Every simulated memory (host DRAM, GPU device memory, NIC SRAM) stores its
contents in a :class:`ByteStore` — a NumPy ``uint8`` array with typed
accessors.  All multi-byte accessors are little-endian, matching the x86/GPU
side of the paper's testbed; the InfiniBand model converts to big-endian
explicitly (that conversion cost is part of the paper's story, §V-B).
"""

from __future__ import annotations

import numpy as np

from ..errors import AddressError


class ByteStore:
    """A flat array of ``size`` bytes with bounds-checked typed access."""

    def __init__(self, size: int, fill: int = 0) -> None:
        if size <= 0:
            raise AddressError(f"backing store size must be positive, got {size}")
        self.size = size
        if fill == 0:
            # calloc-backed: pages materialize only when touched, so large
            # simulated memories cost real RAM proportional to actual use.
            self._data = np.zeros(size, dtype=np.uint8)
        else:
            self._data = np.full(size, fill, dtype=np.uint8)

    # -- bounds ---------------------------------------------------------------
    def _check(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0 or offset + length > self.size:
            raise AddressError(
                f"access [{offset:#x}, {offset + length:#x}) outside store of "
                f"{self.size:#x} bytes"
            )

    # -- raw bytes --------------------------------------------------------------
    def read(self, offset: int, length: int) -> bytes:
        self._check(offset, length)
        return self._data[offset:offset + length].tobytes()

    def write(self, offset: int, data: bytes | bytearray | memoryview | np.ndarray) -> None:
        buf = np.frombuffer(bytes(data), dtype=np.uint8) if not isinstance(data, np.ndarray) \
            else data.astype(np.uint8, copy=False).ravel()
        self._check(offset, len(buf))
        self._data[offset:offset + len(buf)] = buf

    def view(self, offset: int, length: int) -> np.ndarray:
        """A zero-copy view (mutations write through)."""
        self._check(offset, length)
        return self._data[offset:offset + length]

    def fill(self, offset: int, length: int, value: int) -> None:
        self._check(offset, length)
        self._data[offset:offset + length] = value

    def copy_within(self, src: int, dst: int, length: int) -> None:
        """memmove-style copy inside this store."""
        self._check(src, length)
        self._check(dst, length)
        self._data[dst:dst + length] = self._data[src:src + length].copy()

    @staticmethod
    def copy(src: "ByteStore", src_off: int, dst: "ByteStore", dst_off: int,
             length: int) -> None:
        """Copy ``length`` bytes between two stores (the DMA primitive)."""
        src._check(src_off, length)
        dst._check(dst_off, length)
        dst._data[dst_off:dst_off + length] = src._data[src_off:src_off + length]

    # -- typed little-endian accessors -----------------------------------------
    def read_u32(self, offset: int) -> int:
        self._check(offset, 4)
        return int.from_bytes(self._data[offset:offset + 4].tobytes(), "little")

    def write_u32(self, offset: int, value: int) -> None:
        self._check(offset, 4)
        self._data[offset:offset + 4] = np.frombuffer(
            (value & 0xFFFFFFFF).to_bytes(4, "little"), dtype=np.uint8)

    def read_u64(self, offset: int) -> int:
        self._check(offset, 8)
        return int.from_bytes(self._data[offset:offset + 8].tobytes(), "little")

    def write_u64(self, offset: int, value: int) -> None:
        self._check(offset, 8)
        self._data[offset:offset + 8] = np.frombuffer(
            (value & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little"), dtype=np.uint8)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ByteStore {self.size:#x} bytes>"
