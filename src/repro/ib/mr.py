"""Memory regions: registration and key validation (§IV-A).

Unlike EXTOLL's NLA indirection, InfiniBand addresses remote memory by the
*virtual* address plus a key pair: the local key (lkey) authorizes local
DMA, the remote key (rkey) authorizes incoming RDMA.  The HCA validates
every access against the registered range.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..errors import RegistrationError
from ..memory import AddressRange


@dataclass(frozen=True)
class MemoryRegion:
    addr: AddressRange
    lkey: int
    rkey: int


class MrTable:
    """Per-HCA registration table."""

    _KEY_SEED = 0xC0DE

    def __init__(self, name: str = "mr-table") -> None:
        self.name = name
        self._by_lkey: Dict[int, MemoryRegion] = {}
        self._by_rkey: Dict[int, MemoryRegion] = {}
        self._next_key = self._KEY_SEED

    def register(self, rng: AddressRange) -> MemoryRegion:
        if rng.size <= 0:
            raise RegistrationError(f"cannot register empty range {rng}")
        lkey = self._next_key
        rkey = self._next_key + 1
        self._next_key += 2
        mr = MemoryRegion(rng, lkey, rkey)
        self._by_lkey[lkey] = mr
        self._by_rkey[rkey] = mr
        return mr

    def deregister(self, mr: MemoryRegion) -> None:
        if self._by_lkey.pop(mr.lkey, None) is None:
            raise RegistrationError(f"{self.name}: MR not registered")
        self._by_rkey.pop(mr.rkey, None)

    def validate_local(self, lkey: int, addr: int, length: int) -> None:
        mr = self._by_lkey.get(lkey)
        if mr is None:
            raise RegistrationError(f"{self.name}: bad lkey {lkey:#x}")
        if not mr.addr.contains(addr, length):
            raise RegistrationError(
                f"{self.name}: local access {addr:#x}+{length} outside {mr.addr}")

    def validate_remote(self, rkey: int, addr: int, length: int) -> None:
        mr = self._by_rkey.get(rkey)
        if mr is None:
            raise RegistrationError(f"{self.name}: bad rkey {rkey:#x}")
        if not mr.addr.contains(addr, length):
            raise RegistrationError(
                f"{self.name}: remote access {addr:#x}+{length} outside {mr.addr}")
